package fsio

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestFlakyScriptedStep(t *testing.T) {
	dir := t.TempDir()
	fl := NewFlaky(OS)

	// counting run: mkdir(1), create(2), write(3), sync(4), rename(5), syncdir(6)
	write := func(fl *Flaky, sub string) error {
		d := filepath.Join(dir, sub)
		if err := fl.MkdirAll(d); err != nil {
			return err
		}
		f, err := fl.Create(filepath.Join(d, "f.tmp"))
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("payload")); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := fl.Rename(filepath.Join(d, "f.tmp"), filepath.Join(d, "f")); err != nil {
			return err
		}
		return fl.SyncDir(d)
	}
	if err := write(fl, "count"); err != nil {
		t.Fatalf("counting run failed: %v", err)
	}
	steps := fl.Steps()
	if steps != 6 {
		t.Fatalf("counting run took %d steps, want 6", steps)
	}

	// inject EIO at each step of a fresh run; the op must fail without
	// crashing the injector, and a healed retry must succeed
	for i := int64(1); i <= steps; i++ {
		fl := NewFlaky(OS)
		fl.FailAt(i, ErrIO)
		sub := "run" + string(rune('a'+i))
		err := write(fl, sub)
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("step %d: got %v, want EIO", i, err)
		}
		if fl.Injected() != 1 {
			t.Fatalf("step %d: injected %d faults, want 1", i, fl.Injected())
		}
		// scripted faults are one-shot: the same flaky retries clean
		if err := write(fl, sub+"-retry"); err != nil {
			t.Fatalf("step %d retry: %v", i, err)
		}
	}
}

func TestFlakyFailAllAndHeal(t *testing.T) {
	dir := t.TempDir()
	fl := NewFlaky(OS)
	fl.FailAll(ErrDiskFull)

	if err := fl.MkdirAll(filepath.Join(dir, "x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("mkdir under full disk: %v", err)
	}
	if _, err := fl.Create(filepath.Join(dir, "f")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("create under full disk: %v", err)
	}
	if _, err := os.Lstat(filepath.Join(dir, "f")); !os.IsNotExist(err) {
		t.Fatal("faulted create still touched the disk")
	}

	fl.Heal()
	f, err := fl.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatalf("create after heal: %v", err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil || string(got) != "ok" {
		t.Fatalf("read back %q, %v", got, err)
	}
}

func TestFlakyProbabilisticReproducible(t *testing.T) {
	dir := t.TempDir()
	run := func() []bool {
		fl := NewFlaky(OS)
		fl.FailProb(0.5, 42, ErrIO)
		outcomes := make([]bool, 64)
		for i := range outcomes {
			err := fl.MkdirAll(filepath.Join(dir, "p"))
			outcomes[i] = err != nil
			if err != nil && !errors.Is(err, syscall.EIO) {
				t.Fatalf("unexpected error: %v", err)
			}
		}
		return outcomes
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverge at op %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("p=0.5 produced %d/%d failures; injector not probabilistic", fails, len(a))
	}
}
