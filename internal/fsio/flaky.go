package fsio

import (
	"fmt"
	"math/rand"
	"sync"
	"syscall"
)

// Flaky wraps an FS and injects transient I/O errors — the disk faults a
// process lives through, as opposed to Fault's power cut. Every mutating
// operation (mkdir, open, write, sync, rename, truncate, remove) is one
// numbered step, exactly like Fault's step accounting, so a test can run
// a workload once against a counting Flaky and then replay it injecting
// a fault at any step. A faulted operation returns an error *without*
// executing: the bytes never reached the kernel, which is the honest
// model for EIO/ENOSPC returned by write or fsync (for fsync the
// on-disk effect is genuinely uncertain; the store must treat it that
// way regardless of what the injector did).
//
// Faults come in three flavors, and all of them clear on Heal:
//
//   - FailAt schedules one scripted error at a numbered upcoming step
//     (one-shot: it fires once and clears);
//   - FailAll makes every subsequent mutation fail, simulating a full
//     disk (ENOSPC) or a dead device (EIO) until the disk "recovers";
//   - FailProb makes each mutation fail independently with probability
//     p, from a seeded generator so chaos runs are reproducible.
//
// Reads are not intercepted, matching the package's seam: read paths
// stay on the plain os package.
type Flaky struct {
	inner FS

	mu       sync.Mutex
	step     int64
	failAt   map[int64]error
	failAll  error
	prob     float64
	probErr  error
	rng      *rand.Rand
	injected int64
}

// NewFlaky wraps inner (usually OS) with no faults armed.
func NewFlaky(inner FS) *Flaky {
	return &Flaky{inner: inner, failAt: make(map[int64]error)}
}

// ErrDiskFull and ErrIO are the two canonical injected errors; both are
// real syscall errnos so store-side classification via
// errors.Is(err, syscall.ENOSPC) behaves exactly as with a real disk.
var (
	ErrDiskFull = syscall.ENOSPC
	ErrIO       = syscall.EIO
)

// Steps returns the number of mutation steps executed or refused so far.
func (f *Flaky) Steps() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.step
}

// Injected returns how many operations have been failed so far.
func (f *Flaky) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// FailAt schedules err at the 1-based step number n (counted from the
// beginning of the Flaky's life). The fault fires once and clears.
func (f *Flaky) FailAt(n int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt[n] = err
}

// FailAll makes every subsequent mutation fail with err until Heal.
func (f *Flaky) FailAll(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAll = err
}

// FailProb makes each subsequent mutation fail independently with
// probability p, drawing from a generator seeded with seed.
func (f *Flaky) FailProb(p float64, seed int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.prob = p
	f.probErr = err
	f.rng = rand.New(rand.NewSource(seed))
}

// Heal clears every armed fault: the disk has recovered. The step
// counter keeps running so later FailAt scripting stays meaningful.
func (f *Flaky) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = make(map[int64]error)
	f.failAll = nil
	f.prob = 0
	f.probErr = nil
	f.rng = nil
}

// op accounts one mutation step and decides whether it faults. Callers
// hold f.mu.
func (f *Flaky) op(opName, path string) error {
	f.step++
	var base error
	switch {
	case f.failAll != nil:
		base = f.failAll
	case f.failAt[f.step] != nil:
		base = f.failAt[f.step]
		delete(f.failAt, f.step)
	case f.prob > 0 && f.rng.Float64() < f.prob:
		base = f.probErr
	default:
		return nil
	}
	f.injected++
	return fmt.Errorf("fsio: injected fault on %s %s: %w", opName, path, base)
}

func (f *Flaky) MkdirAll(path string) error {
	f.mu.Lock()
	err := f.op("mkdir", path)
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.MkdirAll(path)
}

func (f *Flaky) Append(path string) (File, error) {
	f.mu.Lock()
	err := f.op("open", path)
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	file, err := f.inner.Append(path)
	if err != nil {
		return nil, err
	}
	return &flakyFile{fs: f, f: file, path: path}, nil
}

func (f *Flaky) Create(path string) (File, error) {
	f.mu.Lock()
	err := f.op("create", path)
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &flakyFile{fs: f, f: file, path: path}, nil
}

func (f *Flaky) Rename(oldPath, newPath string) error {
	f.mu.Lock()
	err := f.op("rename", newPath)
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.Rename(oldPath, newPath)
}

func (f *Flaky) SyncDir(path string) error {
	f.mu.Lock()
	err := f.op("syncdir", path)
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.SyncDir(path)
}

func (f *Flaky) Truncate(path string, size int64) error {
	f.mu.Lock()
	err := f.op("truncate", path)
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.Truncate(path, size)
}

func (f *Flaky) Remove(path string) error {
	f.mu.Lock()
	err := f.op("remove", path)
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.Remove(path)
}

func (f *Flaky) RemoveAll(path string) error {
	f.mu.Lock()
	err := f.op("removeall", path)
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.RemoveAll(path)
}

// flakyFile intercepts the two per-handle mutations (Write and Sync);
// Close and Size pass through so an injected fault never leaks a
// descriptor or hides the file's real length.
type flakyFile struct {
	fs   *Flaky
	f    File
	path string
}

func (w *flakyFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	err := w.fs.op("write", w.path)
	w.fs.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return w.f.Write(p)
}

func (w *flakyFile) Sync() error {
	w.fs.mu.Lock()
	err := w.fs.op("sync", w.path)
	w.fs.mu.Unlock()
	if err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *flakyFile) Close() error { return w.f.Close() }

func (w *flakyFile) Size() (int64, error) { return w.f.Size() }
