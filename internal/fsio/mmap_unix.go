//go:build unix

package fsio

import (
	"fmt"
	"os"
	"sync"
	"syscall"
)

const mapSupported = true

// mmapMapping is a syscall.Mmap-backed Mapping. The mutex only guards
// Close against double-release; Bytes is called on the hot path without
// locking (callers must not race Bytes with Close — the store's
// refcounted handles enforce that).
type mmapMapping struct {
	mu   sync.Mutex
	data []byte
}

func (m *mmapMapping) Bytes() []byte { return m.data }

func (m *mmapMapping) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}

func mapFile(path string) (Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only handle; the mapping outlives it
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size == 0 {
		// mmap(len=0) is EINVAL; an empty file maps to an empty view
		return &mmapMapping{data: []byte{}}, nil
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("fsio: %s is too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("fsio: mmap %s: %w", path, err)
	}
	return &mmapMapping{data: data}, nil
}
