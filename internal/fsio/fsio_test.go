package fsio

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeAll(t *testing.T, f File, data []byte) {
	t.Helper()
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
}

func TestOSAppendAndSync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.chain")
	f, err := OS.Append(path)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 5 {
		t.Fatalf("size = %d, want 5", sz)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// append resumes at the end
	f, err = OS.Append(path)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("!"))
	f.Close()
	got, _ := os.ReadFile(path)
	if string(got) != "hello!" {
		t.Fatalf("content = %q", got)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
}

func TestFaultCountsAndRefusesAfterCrash(t *testing.T) {
	dir := t.TempDir()
	fs := NewFault(3)
	f, err := fs.Append(filepath.Join(dir, "x")) // step 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ab")); err != nil { // step 2
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) { // step 3: crash
		t.Fatalf("expected crash, got %v", err)
	}
	if _, err := f.Write([]byte("cd")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write must refuse, got %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() should be true")
	}
	// the unsynced 2-byte tail is torn to 1 byte, and the freshly created
	// file's parent dir was never synced, so the file itself is gone
	if _, err := os.Lstat(filepath.Join(dir, "x")); !os.IsNotExist(err) {
		t.Fatalf("unsynced new file should be lost, got %v", err)
	}
}

func TestFaultTearsUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	if err := os.WriteFile(path, []byte("durable"), 0o644); err != nil {
		t.Fatal(err)
	}
	// steps: open(1) write(2) sync(3) write(4) crash-at-5
	fs := NewFault(5)
	f, _ := fs.Append(path)
	writeAll(t, f, []byte("AAAA"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("BBBB")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	got, _ := os.ReadFile(path)
	// synced prefix "durableAAAA" survives; half of the 4 unsynced bytes
	// remain as a torn tail
	if string(got) != "durableAAAABB" {
		t.Fatalf("post-crash content = %q", got)
	}
}

func TestFaultUndoesUnsyncedRename(t *testing.T) {
	dir := t.TempDir()
	meta := filepath.Join(dir, "versions.json")
	tmp := filepath.Join(dir, "versions.json.tmp")
	if err := os.WriteFile(meta, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	// steps: create(1) write(2) sync(3) rename(4) crash at syncdir(5)
	fs := NewFault(5)
	f, err := fs.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("new"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(tmp, meta); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	got, _ := os.ReadFile(meta)
	if string(got) != "old" {
		t.Fatalf("unsynced rename must roll back: meta = %q", got)
	}
	if _, err := os.Lstat(tmp); !os.IsNotExist(err) {
		t.Fatal("tmp file (created, never dir-synced) should be gone")
	}
}

func TestFaultRenameDurableAfterSyncDir(t *testing.T) {
	dir := t.TempDir()
	meta := filepath.Join(dir, "versions.json")
	tmp := filepath.Join(dir, "versions.json.tmp")
	if err := os.WriteFile(meta, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	// crash on the step after the syncdir
	fs := NewFault(6)
	f, _ := fs.Create(tmp)
	writeAll(t, f, []byte("new"))
	f.Sync()
	f.Close()
	if err := fs.Rename(tmp, meta); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(meta); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	got, _ := os.ReadFile(meta)
	if string(got) != "new" {
		t.Fatalf("synced rename must survive: meta = %q", got)
	}
}

func TestFaultMkdirAllLostWithoutParentSync(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "arr", "chunks")
	fs := NewFault(2)
	if err := fs.MkdirAll(sub); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(filepath.Join(dir, "nope")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	if _, err := os.Lstat(filepath.Join(dir, "arr")); !os.IsNotExist(err) {
		t.Fatal("unsynced directory chain should be lost")
	}
}
