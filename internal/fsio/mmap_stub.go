//go:build !unix

package fsio

const mapSupported = false

func mapFile(path string) (Mapping, error) { return nil, ErrMapUnsupported }
