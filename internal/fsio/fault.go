package fsio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// ErrCrashed is returned by every Fault operation at and after the
// injected crash point. Match with errors.Is.
var ErrCrashed = errors.New("fsio: injected crash")

// Fault wraps the real filesystem and simulates a power cut at one
// numbered mutation step. Every mutating operation (mkdir, open, write,
// sync, rename, truncate, remove) is one step; when the step counter
// reaches CrashAt the operation does not execute, the on-disk tree is
// rewritten to what a real crash would have left behind, and every
// subsequent operation fails with ErrCrashed.
//
// The loss model, applied once at the crash point:
//
//   - renames whose parent directory was never synced are undone
//     (the moved entry goes back, the replaced destination is restored);
//   - files and directories created since their parent's last sync are
//     removed entirely;
//   - every surviving file written through the Fault is truncated to its
//     last synced length plus half of the unsynced tail, so crashes tear
//     frames mid-write rather than cutting at clean boundaries.
//
// Paths never touched through the Fault are assumed durable from before
// and are left alone. A CrashAt of 0 never crashes: the Fault then just
// counts steps, which is how tests enumerate the crash-point matrix.
type Fault struct {
	// CrashAt is the 1-based step number at which to crash; 0 disables.
	CrashAt int64

	mu      sync.Mutex
	step    int64
	crashed bool
	files   map[string]*faultFileState
	renames []renameUndo
	created []createdEntry
}

type faultFileState struct {
	synced int64 // durable length (last Sync)
	size   int64 // current real length
}

type renameUndo struct {
	dir      string // parent of newPath; a SyncDir here makes it durable
	oldPath  string
	newPath  string
	isDir    bool
	hadDst   bool
	dstBytes []byte
}

type createdEntry struct {
	dir   string // parent; a SyncDir here makes the creation durable
	path  string
	isDir bool
}

// NewFault returns a Fault that crashes before executing step crashAt
// (1-based); 0 never crashes.
func NewFault(crashAt int64) *Fault {
	return &Fault{CrashAt: crashAt, files: make(map[string]*faultFileState)}
}

// Steps returns the number of mutation steps executed (or refused) so
// far.
func (f *Fault) Steps() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.step
}

// Crashed reports whether the crash point has been reached.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// op accounts one mutation step. Callers hold f.mu.
func (f *Fault) op() error {
	if f.crashed {
		return ErrCrashed
	}
	f.step++
	if f.CrashAt > 0 && f.step >= f.CrashAt {
		f.crashed = true
		f.applyLossLocked()
		return ErrCrashed
	}
	return nil
}

// applyLossLocked rewrites the tree to the post-crash state.
func (f *Fault) applyLossLocked() {
	// 1. undo renames the crash caught before their directory sync
	for i := len(f.renames) - 1; i >= 0; i-- {
		u := f.renames[i]
		if u.isDir {
			_ = os.Rename(u.newPath, u.oldPath)
		} else {
			if cur, err := os.ReadFile(u.newPath); err == nil {
				_ = os.WriteFile(u.oldPath, cur, 0o644)
			}
			if u.hadDst {
				_ = os.WriteFile(u.newPath, u.dstBytes, 0o644)
			} else {
				_ = os.Remove(u.newPath)
			}
		}
		if st, ok := f.files[u.newPath]; ok {
			delete(f.files, u.newPath)
			f.files[u.oldPath] = st
		}
	}
	f.renames = nil
	// 2. drop files/dirs created since their parent's last sync
	for i := len(f.created) - 1; i >= 0; i-- {
		c := f.created[i]
		if c.isDir {
			_ = os.RemoveAll(c.path)
		} else {
			_ = os.Remove(c.path)
		}
		delete(f.files, c.path)
	}
	f.created = nil
	// 3. tear every unsynced tail: keep half the unsynced bytes
	for path, st := range f.files {
		if st.size > st.synced {
			keep := st.synced + (st.size-st.synced)/2
			_ = os.Truncate(path, keep)
		}
	}
}

func exists(path string) bool {
	_, err := os.Lstat(path)
	return err == nil
}

// MkdirAll creates the directory chain, recording each newly created
// level as pending until its parent is synced.
func (f *Fault) MkdirAll(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return err
	}
	// find the missing suffix of the chain before creating it
	var missing []string
	for p := filepath.Clean(path); !exists(p); p = filepath.Dir(p) {
		missing = append(missing, p)
		if p == filepath.Dir(p) {
			break
		}
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return err
	}
	for i := len(missing) - 1; i >= 0; i-- {
		f.created = append(f.created, createdEntry{dir: filepath.Dir(missing[i]), path: missing[i], isDir: true})
	}
	return nil
}

func (f *Fault) open(path string, trunc bool) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return nil, err
	}
	fresh := !exists(path)
	flags := os.O_CREATE | os.O_WRONLY
	if trunc {
		flags |= os.O_TRUNC
	} else {
		flags |= os.O_APPEND
	}
	file, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	if fresh {
		f.created = append(f.created, createdEntry{dir: filepath.Dir(path), path: path})
	}
	info, err := file.Stat()
	if err != nil {
		_ = file.Close() // the stat error is the failure; no writes happened yet
		return nil, err
	}
	st, ok := f.files[path]
	if !ok || trunc {
		// pre-existing bytes of an untracked file are durable from before;
		// a truncating open starts a fresh, fully-unsynced life
		st = &faultFileState{synced: info.Size(), size: info.Size()}
		if trunc || fresh {
			st.synced = 0
		}
		f.files[path] = st
	}
	st.size = info.Size()
	return &faultFile{fs: f, f: file, path: path}, nil
}

// Append opens path for appending.
func (f *Fault) Append(path string) (File, error) { return f.open(path, false) }

// Create opens path truncated.
func (f *Fault) Create(path string) (File, error) { return f.open(path, true) }

// Rename performs the rename but records it as undoable until the
// destination's parent directory is synced.
func (f *Fault) Rename(oldPath, newPath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return err
	}
	u := renameUndo{dir: filepath.Dir(newPath), oldPath: oldPath, newPath: newPath}
	if info, err := os.Lstat(oldPath); err == nil {
		u.isDir = info.IsDir()
	}
	if !u.isDir {
		if cur, err := os.ReadFile(newPath); err == nil {
			u.hadDst = true
			u.dstBytes = cur
		}
	}
	if err := os.Rename(oldPath, newPath); err != nil {
		return err
	}
	if st, ok := f.files[oldPath]; ok {
		delete(f.files, oldPath)
		f.files[newPath] = st
	}
	// a pending creation record for oldPath stays keyed there: on crash
	// the rename is undone first, putting the file back at oldPath, and
	// the creation loss then removes it from there
	f.renames = append(f.renames, u)
	return nil
}

// SyncDir makes renames into and creations inside path durable.
func (f *Fault) SyncDir(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return err
	}
	clean := filepath.Clean(path)
	kept := f.renames[:0]
	for _, u := range f.renames {
		if filepath.Clean(u.dir) != clean {
			kept = append(kept, u)
		}
	}
	f.renames = kept
	keptC := f.created[:0]
	for _, c := range f.created {
		if filepath.Clean(c.dir) != clean {
			keptC = append(keptC, c)
		}
	}
	f.created = keptC
	return OS.SyncDir(path)
}

// Truncate cuts the file; the new length is treated as durable.
func (f *Fault) Truncate(path string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return err
	}
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	if st, ok := f.files[path]; ok {
		if st.synced > size {
			st.synced = size
		}
		st.size = size
	}
	return nil
}

// Remove deletes one file (durable immediately).
func (f *Fault) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return err
	}
	if err := os.Remove(path); err != nil {
		return err
	}
	f.forget(path)
	return nil
}

// RemoveAll deletes a tree (durable immediately).
func (f *Fault) RemoveAll(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return err
	}
	if err := os.RemoveAll(path); err != nil {
		return err
	}
	f.forget(path)
	return nil
}

// forget drops tracking state at and under path. Callers hold f.mu.
func (f *Fault) forget(path string) {
	prefix := filepath.Clean(path) + string(filepath.Separator)
	for p := range f.files {
		if p == path || strings.HasPrefix(p, prefix) {
			delete(f.files, p)
		}
	}
	kept := f.created[:0]
	for _, c := range f.created {
		if c.path != path && !strings.HasPrefix(c.path, prefix) {
			kept = append(kept, c)
		}
	}
	f.created = kept
}

type faultFile struct {
	fs   *Fault
	f    *os.File
	path string
}

func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if err := w.fs.op(); err != nil {
		return 0, err
	}
	n, err := w.f.Write(p)
	if st, ok := w.fs.files[w.path]; ok {
		st.size += int64(n)
	}
	return n, err
}

func (w *faultFile) Sync() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if err := w.fs.op(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if st, ok := w.fs.files[w.path]; ok {
		st.synced = st.size
	}
	return nil
}

func (w *faultFile) Close() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	err := w.f.Close()
	if w.fs.crashed {
		return ErrCrashed
	}
	return err
}

func (w *faultFile) Size() (int64, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.fs.crashed {
		return 0, ErrCrashed
	}
	info, err := w.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("fsio: stat %s: %w", w.path, err)
	}
	return info.Size(), nil
}
