package fsio

import "errors"

// Read-only file mappings. Committed chunk generations are immutable
// (the manifest record is the commit point; a generation directory is
// only ever replaced wholesale, never rewritten in place), which makes
// it safe to serve chunk frames straight out of a shared read-only
// mapping instead of read()+copy. This is the read-side counterpart of
// the FS write seam above: Map is a package-level function rather than
// an FS method because fault injection only needs to intercept
// mutations — a mapping of a real file observes exactly the bytes a
// plain read would.
//
// Lifetime: a Mapping stays valid across rename and unlink of the
// underlying file (the kernel pins the inode), which is what lets the
// store defer generation unlinks until the last cached plane aliasing
// the mapping is released. Callers must not touch Bytes() after Close.

// ErrMapUnsupported is returned by Map on platforms without mmap
// support; callers fall back to plain reads.
var ErrMapUnsupported = errors.New("fsio: file mapping not supported on this platform")

// Mapping is a read-only byte view of one whole file. The view is
// fixed-length: bytes appended to the file after Map are not visible
// (callers re-Map when they need a longer view).
type Mapping interface {
	// Bytes returns the mapped contents. The slice must be treated as
	// immutable and must not be referenced after Close.
	Bytes() []byte
	// Close releases the mapping. Idempotent.
	Close() error
}

// MapSupported reports whether Map creates real kernel mappings on
// this platform. When false, Map always returns ErrMapUnsupported and
// callers use their plain-read path.
func MapSupported() bool { return mapSupported }

// Map maps path read-only in its entirety.
func Map(path string) (Mapping, error) { return mapFile(path) }
