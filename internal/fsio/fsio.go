// Package fsio is the filesystem seam under internal/core's write
// paths. Every mutation the store performs on disk — chunk appends,
// manifest-log appends, the tmp-write/rename commits (legacy
// versions.json, the CURRENT pointer), directory syncs, recovery
// truncations — goes through the FS interface, so tests
// can substitute a fault-injecting implementation (Fault) that kills the
// process-visible world at any numbered step and then simulates what a
// real power cut leaves behind: torn unsynced tails and un-persisted
// renames.
//
// Read paths stay on the plain os package: reads cannot lose data, and
// crash simulation only needs to intercept mutations. The one read-side
// seam is Map (mmap.go): read-only whole-file mappings of immutable
// chunk generations, with MapSupported gating platforms (and callers)
// back to the plain-read path.
package fsio

import (
	"io"
	"os"
)

// FS is the write-side filesystem interface. All paths are absolute or
// process-cwd-relative, exactly as the os package takes them.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string) error
	// Append opens path for appending, creating it if absent.
	Append(path string) (File, error)
	// Create opens path truncated to zero length, creating it if absent.
	Create(path string) (File, error)
	// Rename atomically replaces newPath with oldPath's entry. The
	// rename is only durable once the parent directory is synced.
	Rename(oldPath, newPath string) error
	// SyncDir fsyncs a directory, making previously renamed/created
	// entries durable.
	SyncDir(path string) error
	// Truncate cuts a file to size bytes.
	Truncate(path string, size int64) error
	// Remove deletes one file.
	Remove(path string) error
	// RemoveAll deletes a tree.
	RemoveAll(path string) error
}

// File is an open writable file.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	// Close releases the handle. A failed Close after buffered writes is
	// a write failure and must be checked.
	Close() error
	// Size returns the file's current length.
	Size() (int64, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (osFS) Append(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) RemoveAll(path string) error { return os.RemoveAll(path) }

type osFile struct{ f *os.File }

func (o osFile) Write(p []byte) (int, error) { return o.f.Write(p) }
func (o osFile) Sync() error                 { return o.f.Sync() }
func (o osFile) Close() error                { return o.f.Close() }

func (o osFile) Size() (int64, error) {
	info, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}
