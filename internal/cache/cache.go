// Package cache provides the store-wide decoded-chunk cache: a
// byte-bounded, sharded LRU of reconstructed chunk contents keyed by
// (array, epoch, version, attribute, chunk). The select path's dominant
// cost is unwinding delta chains (§II-B, Fig. 2); keeping reconstructed
// ancestor chunks resident lets repeated and overlapping queries skip the
// chain walk entirely.
//
// Entries are immutable by convention: callers must never mutate a value
// after Put or a value returned by Get. The epoch component of the key
// provides O(1) logical invalidation — bumping an array's epoch orphans
// every entry cached under the old epoch without scanning; InvalidateArray
// additionally sweeps those orphans out so their bytes are reclaimed
// promptly.
package cache

import (
	"sync"
	"sync/atomic"
)

// Key identifies one decoded chunk of one version of one array. Epoch is
// a store-managed generation counter; entries written under a stale epoch
// can never be served to readers holding the current epoch.
type Key struct {
	Array   string
	Epoch   uint64
	Version int
	Attr    string
	Chunk   string
}

// Value is a cached decoded chunk. *array.Dense and *array.Sparse both
// satisfy it.
type Value interface {
	SizeBytes() int64
}

// Stats is a snapshot of the cache counters. Hits/Misses/Evictions/
// Invalidations/Rejected are cumulative since the last ResetCounters;
// Bytes and Entries reflect current residency. Rejected counts values
// too large to admit — a persistently climbing Rejected means the
// byte budget is under-provisioned for the workload's decoded chunks.
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	Rejected      int64
	Bytes         int64
	Entries       int64
}

const numShards = 16

// Cache is a sharded LRU bounded by total byte size. A nil *Cache is a
// valid, always-missing cache, so callers can treat "caching disabled"
// uniformly.
type Cache struct {
	shardBytes int64
	shards     [numShards]shard

	// onEvict, when set, is called once for every value the cache stops
	// retaining — LRU eviction, replacement by a Put under the same key,
	// and invalidation sweeps. See SetOnEvict.
	onEvict func(Key, Value)

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	rejected      atomic.Int64
}

// dropped records one value the cache released, for callback delivery
// after the shard mutex is gone.
type dropped struct {
	k Key
	v Value
}

type shard struct {
	mu    sync.Mutex
	items map[Key]*entry
	// intrusive LRU list: root.next is most recent, root.prev is least.
	root  entry
	bytes int64
}

type entry struct {
	key        Key
	val        Value
	size       int64
	prev, next *entry
}

// New returns a cache bounded by maxBytes, or nil when maxBytes <= 0
// (caching disabled).
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	per := maxBytes / numShards
	if per < 1 {
		per = 1
	}
	c := &Cache{shardBytes: per}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.items = make(map[Key]*entry)
		sh.root.prev = &sh.root
		sh.root.next = &sh.root
	}
	return c
}

// SetOnEvict registers fn to be called once for each value the cache
// drops: LRU eviction, replacement by a Put of a different value under
// the same key, and invalidation. The callback runs outside all shard
// locks (it may perform I/O, e.g. releasing mmap-backed planes) but on
// the dropping goroutine's call path, so it must not call back into the
// cache. Set it before the cache sees concurrent use; a nil receiver is
// a no-op.
func (c *Cache) SetOnEvict(fn func(Key, Value)) {
	if c == nil {
		return
	}
	c.onEvict = fn
}

// fnv-1a over the key fields; cheap and allocation-free.
func shardIndex(k Key) int {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(k.Array)
	mix(k.Attr)
	mix(k.Chunk)
	h ^= uint64(k.Version)
	h *= 1099511628211
	h ^= k.Epoch
	h *= 1099511628211
	return int(h % numShards)
}

func (sh *shard) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (sh *shard) pushFront(e *entry) {
	e.next = sh.root.next
	e.prev = &sh.root
	sh.root.next.prev = e
	sh.root.next = e
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache) Get(k Key) (Value, bool) {
	if c == nil {
		return nil, false
	}
	sh := &c.shards[shardIndex(k)]
	sh.mu.Lock()
	e, ok := sh.items[k]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	sh.unlink(e)
	sh.pushFront(e)
	v := e.val
	sh.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put inserts or refreshes k and reports whether the value was admitted.
// Values larger than a shard's byte budget (1/16 of the total) are not
// cached at all — they would evict everything for one entry — and count
// toward Stats().Rejected.
func (c *Cache) Put(k Key, v Value) bool {
	if c == nil || v == nil {
		return false
	}
	size := v.SizeBytes()
	if size > c.shardBytes {
		c.rejected.Add(1)
		return false
	}
	var drops []dropped
	sh := &c.shards[shardIndex(k)]
	sh.mu.Lock()
	if e, ok := sh.items[k]; ok {
		if c.onEvict != nil && e.val != v {
			drops = append(drops, dropped{e.key, e.val})
		}
		sh.bytes += size - e.size
		e.val, e.size = v, size
		sh.unlink(e)
		sh.pushFront(e)
	} else {
		e := &entry{key: k, val: v, size: size}
		sh.items[k] = e
		sh.pushFront(e)
		sh.bytes += size
	}
	evicted := int64(0)
	for sh.bytes > c.shardBytes && sh.root.prev != &sh.root {
		lru := sh.root.prev
		sh.unlink(lru)
		delete(sh.items, lru.key)
		sh.bytes -= lru.size
		evicted++
		if c.onEvict != nil {
			drops = append(drops, dropped{lru.key, lru.val})
		}
	}
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
	for _, d := range drops {
		c.onEvict(d.k, d.v)
	}
	return true
}

// InvalidateArray removes every entry of the named array, across all
// epochs. Callers bump the array's epoch first so that entries a
// concurrent in-flight reader inserts afterwards (under the old epoch)
// are unreachable even if this sweep misses them.
func (c *Cache) InvalidateArray(array string) {
	c.invalidate(func(k Key) bool { return k.Array == array })
}

// InvalidateVersion removes every entry of one version of the named
// array, across all epochs, leaving the rest of the array's warm cache
// intact. Used by DeleteVersion, where surviving versions' decoded
// content is unchanged.
func (c *Cache) InvalidateVersion(array string, version int) {
	c.invalidate(func(k Key) bool { return k.Array == array && k.Version == version })
}

func (c *Cache) invalidate(match func(Key) bool) {
	if c == nil {
		return
	}
	removed := int64(0)
	var drops []dropped
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.items {
			if !match(k) {
				continue
			}
			sh.unlink(e)
			delete(sh.items, k)
			sh.bytes -= e.size
			removed++
			if c.onEvict != nil {
				drops = append(drops, dropped{k, e.val})
			}
		}
		sh.mu.Unlock()
	}
	if removed > 0 {
		c.invalidations.Add(removed)
	}
	for _, d := range drops {
		c.onEvict(d.k, d.v)
	}
}

// Stats returns a snapshot of the counters and current residency.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Rejected:      c.rejected.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Bytes += sh.bytes
		s.Entries += int64(len(sh.items))
		sh.mu.Unlock()
	}
	return s
}

// ResetCounters zeroes the cumulative counters, leaving residency alone.
func (c *Cache) ResetCounters() {
	if c == nil {
		return
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.invalidations.Store(0)
	c.rejected.Store(0)
}
