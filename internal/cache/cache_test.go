package cache

import (
	"fmt"
	"testing"
)

// fakeVal is a Value of a declared size.
type fakeVal int64

func (v fakeVal) SizeBytes() int64 { return int64(v) }

func key(arr string, version int) Key {
	return Key{Array: arr, Version: version, Attr: "A", Chunk: "chunk-0-0"}
}

func TestNilCacheIsSafe(t *testing.T) {
	var c *Cache
	if c := New(0); c != nil {
		t.Fatal("New(0) should disable the cache")
	}
	c.Put(key("a", 1), fakeVal(10))
	if _, ok := c.Get(key("a", 1)); ok {
		t.Fatal("nil cache returned a hit")
	}
	c.InvalidateArray("a")
	c.ResetCounters()
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
}

func TestGetPutAndCounters(t *testing.T) {
	c := New(1 << 20)
	k := key("a", 1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, fakeVal(100))
	got, ok := c.Get(k)
	if !ok || got.(fakeVal) != 100 {
		t.Fatalf("get = %v, %v", got, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes != 100 {
		t.Fatalf("stats = %+v", s)
	}
	c.ResetCounters()
	s = c.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
	if s.Entries != 1 || s.Bytes != 100 {
		t.Fatalf("reset dropped residency: %+v", s)
	}
}

func TestPutRefreshAdjustsBytes(t *testing.T) {
	c := New(1 << 20)
	k := key("a", 1)
	c.Put(k, fakeVal(100))
	c.Put(k, fakeVal(40))
	s := c.Stats()
	if s.Entries != 1 || s.Bytes != 40 {
		t.Fatalf("stats after refresh = %+v", s)
	}
}

// sameShardKeys returns n distinct keys that all map to one shard, so
// LRU ordering is observable deterministically.
func sameShardKeys(n int) []Key {
	want := -1
	var out []Key
	for i := 0; len(out) < n; i++ {
		k := key("lru", i)
		idx := shardIndex(k)
		if want < 0 {
			want = idx
		}
		if idx == want {
			out = append(out, k)
		}
	}
	return out
}

func TestEvictionIsLRUAndByteBounded(t *testing.T) {
	// budget of 100 bytes per shard (16 shards x 100)
	c := New(16 * 100)
	keys := sameShardKeys(12)
	// 30-byte entries: a shard holds 3
	c.Put(keys[0], fakeVal(30))
	c.Put(keys[1], fakeVal(30))
	c.Put(keys[2], fakeVal(30))
	// touch the oldest so it becomes most-recent
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("keys[0] missing before overflow")
	}
	// overflow: the LRU entry is now keys[1]
	c.Put(keys[3], fakeVal(30))
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently-used entry was evicted")
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	// keep inserting; the byte bound must hold throughout
	for i := 4; i < 12; i++ {
		c.Put(keys[i], fakeVal(30))
		if got := c.Stats().Bytes; got > 16*100 {
			t.Fatalf("cache grew to %d bytes, budget 1600", got)
		}
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := New(16 * 100) // 100 bytes per shard
	if c.Put(key("a", 1), fakeVal(101)) {
		t.Fatal("oversized value reported as admitted")
	}
	s := c.Stats()
	if s.Entries != 0 {
		t.Fatalf("oversized value was cached: %+v", s)
	}
	if s.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected)
	}
	if !c.Put(key("a", 2), fakeVal(100)) {
		t.Fatal("fitting value reported as rejected")
	}
}

func TestInvalidateArrayScopesToArray(t *testing.T) {
	c := New(1 << 20)
	for v := 0; v < 20; v++ {
		c.Put(key("a", v), fakeVal(10))
		c.Put(key("b", v), fakeVal(10))
	}
	c.InvalidateArray("a")
	for v := 0; v < 20; v++ {
		if _, ok := c.Get(key("a", v)); ok {
			t.Fatalf("a/%d survived invalidation", v)
		}
		if _, ok := c.Get(key("b", v)); !ok {
			t.Fatalf("b/%d was wrongly invalidated", v)
		}
	}
	s := c.Stats()
	if s.Invalidations != 20 {
		t.Fatalf("invalidations = %d, want 20", s.Invalidations)
	}
	if s.Bytes != 200 || s.Entries != 20 {
		t.Fatalf("residency after invalidation = %+v", s)
	}
}

func TestEpochSeparatesGenerations(t *testing.T) {
	c := New(1 << 20)
	old := Key{Array: "a", Epoch: 0, Version: 1, Attr: "A", Chunk: "chunk-0-0"}
	cur := old
	cur.Epoch = 1
	c.Put(old, fakeVal(10))
	if _, ok := c.Get(cur); ok {
		t.Fatal("entry cached under epoch 0 served to epoch-1 reader")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 16)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				k := key(fmt.Sprintf("arr%d", i%3), i%50)
				c.Put(k, fakeVal(64))
				c.Get(k)
				if i%100 == 0 {
					c.InvalidateArray("arr0")
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

// TestOnEvictFires covers every path that must deliver the eviction
// callback — LRU eviction, replacement by a different value under the
// same key, and invalidation — exactly once per dropped value, and the
// paths that must not (admission, rejection, same-value refresh).
func TestOnEvictFires(t *testing.T) {
	// one shard's budget is maxBytes/16; keep values small enough to admit
	c := New(16 * 100)
	type drop struct {
		k Key
		v Value
	}
	var drops []drop
	c.SetOnEvict(func(k Key, v Value) { drops = append(drops, drop{k, v}) })

	k1 := Key{Array: "a", Version: 1, Attr: "v", Chunk: "c0"}
	if !c.Put(k1, fakeVal(60)) {
		t.Fatal("put rejected")
	}
	if len(drops) != 0 {
		t.Fatalf("admission fired onEvict: %v", drops)
	}
	// replacement under the same key drops the old value
	if !c.Put(k1, fakeVal(61)) {
		t.Fatal("replace rejected")
	}
	if len(drops) != 1 || drops[0].k != k1 || drops[0].v != fakeVal(60) {
		t.Fatalf("replace drops = %v", drops)
	}
	// same key, same value: nothing is dropped
	drops = nil
	v := fakeVal(61)
	c.Put(k1, v)
	c.Put(k1, v)
	if len(drops) != 0 {
		t.Fatalf("same-value refresh fired onEvict: %v", drops)
	}
	// byte pressure evicts the LRU entry (k1) into the callback
	k2 := Key{Array: "a", Version: 2, Attr: "v", Chunk: "c0"}
	// find a key landing in k1's shard so the eviction is deterministic
	for i := 3; shardIndex(k2) != shardIndex(k1); i++ {
		k2.Version = i
	}
	c.Put(k2, fakeVal(80))
	if len(drops) != 1 || drops[0].k != k1 {
		t.Fatalf("eviction drops = %v", drops)
	}
	// invalidation sweeps the rest
	drops = nil
	c.InvalidateArray("a")
	if len(drops) != 1 || drops[0].k != k2 {
		t.Fatalf("invalidate drops = %v", drops)
	}
	// oversized rejection never fires the callback
	drops = nil
	if c.Put(k1, fakeVal(1000)) {
		t.Fatal("oversized value admitted")
	}
	if len(drops) != 0 {
		t.Fatalf("rejection fired onEvict: %v", drops)
	}
}
