package workload

import (
	"testing"
)

func TestHeadBias(t *testing.T) {
	ops := Head(20, 1000, 1)
	headHits := 0
	for _, op := range ops {
		if op.Kind != SelectOne || len(op.Versions) != 1 {
			t.Fatal("head workload must be single selects")
		}
		v := op.Versions[0]
		if v < 1 || v > 20 {
			t.Fatalf("version %d out of range", v)
		}
		if v == 20 {
			headHits++
		}
	}
	// ~90% (+ 1/20 of the random 10%)
	if headHits < 850 || headHits > 970 {
		t.Fatalf("head hit %d/1000 times, expected ~905", headHits)
	}
}

func TestRandomUniform(t *testing.T) {
	ops := Random(10, 5000, 2)
	counts := make([]int, 11)
	for _, op := range ops {
		counts[op.Versions[0]]++
	}
	for v := 1; v <= 10; v++ {
		if counts[v] < 300 || counts[v] > 700 {
			t.Fatalf("version %d selected %d/5000 times, expected ~500", v, counts[v])
		}
	}
}

func TestRangeShape(t *testing.T) {
	ops := Range(100, 500, 3)
	singles, ranges := 0, 0
	for _, op := range ops {
		switch op.Kind {
		case SelectOne:
			singles++
		case SelectRange:
			ranges++
			vs := op.Versions
			if len(vs) < 2 {
				t.Fatal("range query with <2 versions")
			}
			for i := 1; i < len(vs); i++ {
				if vs[i] != vs[i-1]+1 {
					t.Fatal("range not contiguous")
				}
			}
			if vs[len(vs)-1] > 100 || vs[0] < 1 {
				t.Fatal("range out of bounds")
			}
		default:
			t.Fatal("unexpected op kind")
		}
	}
	frac := float64(singles) / float64(singles+ranges)
	if frac < 0.04 || frac > 0.20 {
		t.Fatalf("single fraction %.2f, expected ~0.10", frac)
	}
}

func TestMixedComposition(t *testing.T) {
	ops := Mixed(50, 300, 4)
	if len(ops) != 300 {
		t.Fatalf("%d ops", len(ops))
	}
	kinds := map[Kind]int{}
	for _, op := range ops {
		kinds[op.Kind]++
	}
	if kinds[SelectOne] == 0 || kinds[SelectRange] == 0 {
		t.Fatalf("mixed workload missing kinds: %v", kinds)
	}
}

func TestUpdates(t *testing.T) {
	ops := Updates(7, 5, 5)
	if len(ops) != 5 {
		t.Fatalf("%d ops", len(ops))
	}
	for _, op := range ops {
		if op.Kind != Update || len(op.Versions) != 1 {
			t.Fatal("bad update op")
		}
		if op.Versions[0] < 1 || op.Versions[0] > 7 {
			t.Fatal("update version out of range")
		}
	}
}

func TestOverlappingRanges(t *testing.T) {
	// width 10, overlap 4 → starts at 1, 7, 13, ...
	ops := OverlappingRanges(22, 10, 4)
	if len(ops) != 3 {
		t.Fatalf("%d ranges: %v", len(ops), ops)
	}
	if ops[0].Versions[0] != 1 || ops[1].Versions[0] != 7 || ops[2].Versions[0] != 13 {
		t.Fatalf("range starts wrong: %v", ops)
	}
	for _, op := range ops {
		if len(op.Versions) != 10 {
			t.Fatalf("range width %d", len(op.Versions))
		}
	}
	// consecutive ranges share exactly 4 versions
	shared := 0
	in := map[int]bool{}
	for _, v := range ops[0].Versions {
		in[v] = true
	}
	for _, v := range ops[1].Versions {
		if in[v] {
			shared++
		}
	}
	if shared != 4 {
		t.Fatalf("overlap = %d, want 4", shared)
	}
}

func TestToQueries(t *testing.T) {
	ops := []Op{
		{Kind: SelectOne, Versions: []int{3}},
		{Kind: SelectOne, Versions: []int{3}},
		{Kind: SelectRange, Versions: []int{1, 2}},
		{Kind: Update, Versions: []int{4}},
	}
	qs := ToQueries(ops)
	if len(qs) != 2 {
		t.Fatalf("%d queries", len(qs))
	}
	total := 0.0
	for _, q := range qs {
		total += q.Weight
		if len(q.Versions) == 1 && q.Versions[0] == 3 && q.Weight != 2 {
			t.Fatalf("snapshot weight %v", q.Weight)
		}
	}
	if total != 3 {
		t.Fatalf("total weight %v (updates must be excluded)", total)
	}
}

func TestDeterminism(t *testing.T) {
	a := Mixed(30, 50, 9)
	b := Mixed(30, 50, 9)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || len(a[i].Versions) != len(b[i].Versions) {
			t.Fatal("nondeterministic workload")
		}
	}
}

func TestZipfianSkewAndBounds(t *testing.T) {
	const n, reps = 20, 2000
	ops := Zipfian(n, reps, 1.6, 3)
	if len(ops) != reps {
		t.Fatalf("got %d ops, want %d", len(ops), reps)
	}
	counts := make([]int, n+1)
	for _, op := range ops {
		if op.Kind != SelectOne || len(op.Versions) != 1 {
			t.Fatalf("zipfian op %v is not a single select", op)
		}
		v := op.Versions[0]
		if v < 1 || v > n {
			t.Fatalf("version %d out of range 1..%d", v, n)
		}
		counts[v]++
	}
	// the oldest version must dominate: it is the adversarial case for
	// the linear-chain baseline
	if counts[1] < reps/3 {
		t.Fatalf("version 1 hit %d/%d times; trace not skewed to the oldest", counts[1], reps)
	}
	if counts[1] <= counts[n] {
		t.Fatalf("skew inverted: v1=%d, v%d=%d", counts[1], n, counts[n])
	}
	// deterministic for a fixed seed
	again := Zipfian(n, reps, 1.6, 3)
	for i := range ops {
		if ops[i].Versions[0] != again[i].Versions[0] {
			t.Fatal("nondeterministic zipfian trace")
		}
	}
}

func TestSlidingWindowCoversAxis(t *testing.T) {
	const n, reps, width = 16, 60, 4
	ops := SlidingWindow(n, reps, width)
	if len(ops) != reps {
		t.Fatalf("got %d ops, want %d", len(ops), reps)
	}
	prevLo := 0
	for i, op := range ops {
		if op.Kind != SelectRange || len(op.Versions) != width {
			t.Fatalf("op %d = %v, want %d-wide range", i, op, width)
		}
		lo := op.Versions[0]
		for j, v := range op.Versions {
			if v != lo+j {
				t.Fatalf("op %d versions %v not contiguous", i, op.Versions)
			}
		}
		if lo < prevLo {
			t.Fatalf("window slid backwards at op %d: %d < %d", i, lo, prevLo)
		}
		if op.Versions[width-1] > n {
			t.Fatalf("op %d exceeds version axis: %v", i, op.Versions)
		}
		prevLo = lo
	}
	if ops[0].Versions[0] != 1 {
		t.Fatalf("first window starts at %d, want 1", ops[0].Versions[0])
	}
	if ops[reps-1].Versions[width-1] != n {
		t.Fatalf("last window ends at %d, want %d", ops[reps-1].Versions[width-1], n)
	}
	// width clamps to the axis
	wide := SlidingWindow(4, 3, 9)
	for _, op := range wide {
		if len(op.Versions) != 4 {
			t.Fatalf("clamped window has %d versions, want 4", len(op.Versions))
		}
	}
}
