// Package workload generates the query workloads of the paper's
// evaluation: the five Table V suites (Head, Random, Range, Mixed,
// Update) and the §V-D overlapping-range workload used for the
// workload-aware layout experiment. Workloads are sequences of abstract
// operations over version IDs; the bench harness executes them against a
// core.Store, and the layout optimizer consumes them as weighted queries.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"arrayvers/internal/layout"
)

// Kind is the type of one workload operation.
type Kind int

// Operation kinds.
const (
	// SelectOne reads one whole version.
	SelectOne Kind = iota
	// SelectRange reads a contiguous run of versions (stacked).
	SelectRange
	// Update commits a new version derived from a random existing one
	// (Table V: "a random modification is made ... each time for a
	// different version chosen uniformly at random").
	Update
)

func (k Kind) String() string {
	switch k {
	case SelectOne:
		return "select"
	case SelectRange:
		return "range"
	case Update:
		return "update"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one workload operation over version IDs 1..N.
type Op struct {
	Kind Kind
	// Versions lists the accessed version IDs (one for SelectOne/Update,
	// a contiguous run for SelectRange).
	Versions []int
}

// Head is Table V's workload (i): "the most recent version is selected
// with 90% probability, and another single random version is selected
// with 10% probability (this is repeated 10 times)".
func Head(n, reps int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, reps)
	for i := range ops {
		v := n
		if rng.Float64() >= 0.9 {
			v = 1 + rng.Intn(n)
		}
		ops[i] = Op{Kind: SelectOne, Versions: []int{v}}
	}
	return ops
}

// Random is workload (ii): "a random single version is selected (this is
// repeated 30 times)".
func Random(n, reps int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, reps)
	for i := range ops {
		ops[i] = Op{Kind: SelectOne, Versions: []int{1 + rng.Intn(n)}}
	}
	return ops
}

// Range is workload (iii): "with 10% probability, a random single matrix
// is selected and with 90% probability, a random range with a standard
// deviation of 10 is selected (this is repeated 30 times)".
func Range(n, reps int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, reps)
	for i := range ops {
		if rng.Float64() < 0.1 {
			ops[i] = Op{Kind: SelectOne, Versions: []int{1 + rng.Intn(n)}}
			continue
		}
		width := int(math.Abs(rng.NormFloat64()) * 10)
		if width < 1 {
			width = 1
		}
		lo := 1 + rng.Intn(n)
		hi := lo + width
		if hi > n {
			// slide the range back inside the version axis
			hi = n
			lo = hi - width
			if lo < 1 {
				lo = 1
			}
		}
		if hi == lo && hi < n {
			hi++
		}
		ops[i] = Op{Kind: SelectRange, Versions: contiguous(lo, hi)}
	}
	return ops
}

// Mixed is workload (iv): "a query is chosen from the three previous
// query types with equal probability (this is repeated 15 times)".
func Mixed(n, reps int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, 0, reps)
	for i := 0; i < reps; i++ {
		var o []Op
		switch rng.Intn(3) {
		case 0:
			o = Head(n, 1, rng.Int63())
		case 1:
			o = Random(n, 1, rng.Int63())
		default:
			o = Range(n, 1, rng.Int63())
		}
		ops = append(ops, o...)
	}
	return ops
}

// Updates is workload (v): reps random modifications, each against a
// different uniformly random version.
func Updates(n, reps int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, reps)
	for i := range ops {
		ops[i] = Op{Kind: Update, Versions: []int{1 + rng.Intn(n)}}
	}
	return ops
}

// Zipfian is the skewed single-version trace used by the adaptive-tuner
// experiments and tests: version ranks follow a Zipf distribution with
// exponent s (> 1), with the OLDEST version (ID 1) the hottest. Against
// the linear-chain baseline — which materializes the newest version and
// deltas backwards — this is the worst case: the most popular reads
// unwind the longest delta chains, which is exactly the skew an adaptive
// reorganizer should detect and fix.
func Zipfian(n, reps int, s float64, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	ops := make([]Op, reps)
	for i := range ops {
		ops[i] = Op{Kind: SelectOne, Versions: []int{1 + int(z.Uint64())}}
	}
	return ops
}

// SlidingWindow is a deterministic range-read trace whose window of
// `width` consecutive versions slides from the oldest to the newest
// version across the trace — the "analyst scanning history forward"
// pattern. Early ops hit old versions, late ops hit recent ones, so a
// decayed workload histogram tracks the drift.
func SlidingWindow(n, reps, width int) []Op {
	if width < 1 {
		width = 1
	}
	if width > n {
		width = n
	}
	maxLo := n - width + 1
	ops := make([]Op, reps)
	for i := range ops {
		lo := 1
		if reps > 1 {
			lo = 1 + (i*(maxLo-1))/(reps-1)
		}
		ops[i] = Op{Kind: SelectRange, Versions: contiguous(lo, lo+width-1)}
	}
	return ops
}

// OverlappingRanges is the §V-D workload-aware experiment: "sets of range
// queries retrieving `width` images each and overlapping by `overlap`
// versions exactly". With width 10 and overlap 4, ranges start every 6
// versions.
func OverlappingRanges(n, width, overlap int) []Op {
	var ops []Op
	step := width - overlap
	if step < 1 {
		step = 1
	}
	for lo := 1; lo <= n-width+1; lo += step {
		ops = append(ops, Op{Kind: SelectRange, Versions: contiguous(lo, lo+width-1)})
	}
	return ops
}

// ToQueries converts a workload into weighted layout queries: each
// distinct read access pattern becomes one query with weight equal to
// its frequency. Updates are ignored (they add versions rather than read
// them).
func ToQueries(ops []Op) []layout.Query {
	counts := map[string]layout.Query{}
	for _, op := range ops {
		if op.Kind == Update {
			continue
		}
		key := fmt.Sprint(op.Versions)
		q := counts[key]
		q.Versions = op.Versions
		q.Weight++
		counts[key] = q
	}
	out := make([]layout.Query, 0, len(counts))
	for _, q := range counts {
		out = append(out, q)
	}
	return out
}

func contiguous(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}
