package trace

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNewIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 32 {
			t.Fatalf("NewID() = %q, want 32 hex chars", id)
		}
		for _, c := range id {
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				t.Fatalf("NewID() = %q contains non-hex %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("NewID() repeated %q", id)
		}
		seen[id] = true
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Observe("cache", time.Millisecond, 10) // must not panic
	tr.Add("cache_hits", 1)
	if got := tr.ID(); got != "" {
		t.Fatalf("nil trace ID = %q, want empty", got)
	}
	if sum := tr.Finish(); len(sum.Stages) != 0 || sum.ID != "" {
		t.Fatalf("nil trace Finish = %+v, want zero", sum)
	}
}

func TestObserveAccumulates(t *testing.T) {
	tr := Join("abc", "select")
	tr.Observe("decode", 2*time.Millisecond, 100)
	tr.Observe("decode", 3*time.Millisecond, 50)
	tr.Observe("cache", time.Microsecond, 0)
	tr.Add("cache_hits", 2)
	tr.Add("cache_hits", 1)
	sum := tr.Finish()
	if sum.ID != "abc" || sum.Name != "select" {
		t.Fatalf("summary identity = %q/%q", sum.ID, sum.Name)
	}
	if len(sum.Stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(sum.Stages))
	}
	// first-observation order is preserved
	if sum.Stages[0].Stage != "decode" || sum.Stages[1].Stage != "cache" {
		t.Fatalf("stage order = %v", sum.Stages)
	}
	d := sum.Stages[0]
	if d.Count != 2 || d.Nanos != (5*time.Millisecond).Nanoseconds() || d.Bytes != 150 {
		t.Fatalf("decode stage = %+v", d)
	}
	if sum.Attrs["cache_hits"] != 3 {
		t.Fatalf("attrs = %v", sum.Attrs)
	}
	if sum.DurationNs <= 0 {
		t.Fatalf("duration = %d, want > 0", sum.DurationNs)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v, want nil", got)
	}
	tr := New("q")
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext did not round-trip")
	}
	// attaching nil leaves the context untouched
	if ctx2 := NewContext(context.Background(), nil); FromContext(ctx2) != nil {
		t.Fatal("NewContext(nil) attached a value")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	want := []int64{2, 1, 1, 1} // le=0.01 gets 0.005 and 0.01 (upper bound inclusive)
	if len(snap.Counts) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(snap.Counts), len(want))
	}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if got, want := snap.Sum, 0.005+0.01+0.05+0.5+5; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestRingWrapAndFind(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Add(Summary{ID: string(rune('a' + i))})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring kept %d, want 3", len(snap))
	}
	// newest first: e, d, c
	if snap[0].ID != "e" || snap[1].ID != "d" || snap[2].ID != "c" {
		t.Fatalf("ring order = %v", snap)
	}
	if _, ok := r.Find("d"); !ok {
		t.Fatal("Find(d) missed a retained trace")
	}
	if _, ok := r.Find("a"); ok {
		t.Fatal("Find(a) returned an evicted trace")
	}
}

// TestConcurrentRecorders hammers one trace, one histogram, and one
// ring from many goroutines; run under -race this is the span
// recorder's data-race coverage.
func TestConcurrentRecorders(t *testing.T) {
	tr := New("hammer")
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	r := NewRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Observe("decode", time.Microsecond, 1)
				tr.Add("chunks", 1)
				h.Observe(0.005)
				r.Add(tr.Finish())
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	sum := tr.Finish()
	if sum.Stages[0].Count != 8*500 || sum.Attrs["chunks"] != 8*500 {
		t.Fatalf("lost observations: %+v", sum)
	}
	if h.Snapshot().Count != 8*500 {
		t.Fatalf("histogram lost observations: %d", h.Snapshot().Count)
	}
}
