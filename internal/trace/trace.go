// Package trace is the repo's zero-dependency request-tracing
// substrate: a lightweight span recorder carried through
// context.Context, plus the two aggregate shapes built on it — an
// atomic-bucket histogram for always-on stage metrics and a bounded
// ring of completed trace summaries for the /debug/traces endpoint.
//
// A Trace accumulates wall time and bytes per named pipeline stage
// (snapshot, cache, decode, ... on the select path; stage_encode,
// data_fsync, ... on the commit path). All Trace methods are nil-safe,
// so instrumented code records unconditionally and an untraced request
// costs only a nil check.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// NewID returns a fresh 128-bit random trace ID in lowercase hex — the
// value carried in the AV-Trace-Id header.
func NewID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for the process anyway;
		// fall back to a fixed ID rather than panic in a logging path
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Trace accumulates per-stage wall time and bytes for one request. A
// nil *Trace is a valid no-op recorder.
type Trace struct {
	id    string
	name  string
	start time.Time

	mu     sync.Mutex
	order  []string // stage names in first-observation order
	stages map[string]*stageAcc
	attrs  map[string]int64
}

type stageAcc struct {
	count int64
	nanos int64
	bytes int64
}

// New starts a trace with a fresh ID.
func New(name string) *Trace { return Join(NewID(), name) }

// Join starts a trace that continues the caller-supplied ID (the wire
// propagation case); an empty id gets a fresh one.
func Join(id, name string) *Trace {
	if id == "" {
		id = NewID()
	}
	return &Trace{
		id:     id,
		name:   name,
		start:  time.Now(),
		stages: make(map[string]*stageAcc),
		attrs:  make(map[string]int64),
	}
}

// ID returns the trace ID ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Observe adds one stage observation: d of wall time and bytes of
// payload attributed to stage. Safe on a nil trace and from concurrent
// chunk workers.
func (t *Trace) Observe(stage string, d time.Duration, bytes int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	acc, ok := t.stages[stage]
	if !ok {
		acc = &stageAcc{}
		t.stages[stage] = acc
		t.order = append(t.order, stage)
	}
	acc.count++
	acc.nanos += d.Nanoseconds()
	acc.bytes += bytes
	t.mu.Unlock()
}

// Add accumulates a numeric attribute (cache_hits, chunks_decoded, ...)
// on the trace. Safe on a nil trace and from concurrent workers.
func (t *Trace) Add(attr string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs[attr] += v
	t.mu.Unlock()
}

// Finish snapshots the trace into its immutable completed form, with
// the total duration measured from Join to now. The trace may keep
// receiving observations (late workers); Finish can be called again.
func (t *Trace) Finish() Summary {
	if t == nil {
		return Summary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sum := Summary{
		ID:         t.id,
		Name:       t.name,
		Start:      t.start,
		DurationNs: time.Since(t.start).Nanoseconds(),
	}
	for _, stage := range t.order {
		acc := t.stages[stage]
		sum.Stages = append(sum.Stages, StageSummary{
			Stage: stage,
			Count: acc.count,
			Nanos: acc.nanos,
			Bytes: acc.bytes,
		})
	}
	if len(t.attrs) > 0 {
		sum.Attrs = make(map[string]int64, len(t.attrs))
		for k, v := range t.attrs {
			sum.Attrs[k] = v
		}
	}
	return sum
}

// Summary is one completed trace, as served by /debug/traces and
// printed by `avstore select -trace`.
type Summary struct {
	ID         string           `json:"id"`
	Name       string           `json:"name"`
	Start      time.Time        `json:"start"`
	DurationNs int64            `json:"duration_ns"`
	Stages     []StageSummary   `json:"stages,omitempty"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
}

// StageSummary aggregates every observation of one stage within a
// trace: how many times it ran, total wall time, total bytes.
type StageSummary struct {
	Stage string `json:"stage"`
	Count int64  `json:"count"`
	Nanos int64  `json:"nanos"`
	Bytes int64  `json:"bytes"`
}

type ctxKey struct{}

// NewContext attaches t to ctx; the instrumented pipelines retrieve it
// with FromContext. Attaching nil returns ctx unchanged.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace attached to ctx, or nil (which every
// Trace method accepts).
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Histogram is a fixed-bucket histogram with atomic counters, cheap
// enough for per-chunk observations on the select hot path. Bounds are
// upper bucket bounds in ascending order; one overflow bucket is added.
// The zero unit is whatever the caller observes (seconds for latency
// histograms, versions for the group-commit batch size).
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending upper
// bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns a consistent-enough copy for metric exposition
// (buckets are read individually; a scrape racing an Observe may be off
// by one observation, which Prometheus semantics tolerate).
func (h *Histogram) Snapshot() HistSnapshot {
	snap := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		snap.Counts[i] = h.counts[i].Load()
	}
	return snap
}

// HistSnapshot is a point-in-time histogram copy. Counts are
// per-bucket (NOT cumulative); Counts[len(Bounds)] is the overflow
// bucket. Renderers emitting Prometheus text format accumulate them
// into the cumulative `le` form.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Ring is a bounded ring of completed trace summaries — the backing
// store for GET /debug/traces. Adds overwrite the oldest entry.
type Ring struct {
	mu   sync.Mutex
	buf  []Summary
	next int
	size int
}

// NewRing builds a ring holding up to capacity summaries (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Summary, capacity)}
}

// Add records one completed trace.
func (r *Ring) Add(s Summary) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained summaries, newest first.
func (r *Ring) Snapshot() []Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Summary, 0, r.size)
	for i := 1; i <= r.size; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Find returns the newest retained summary with the given trace ID.
func (r *Ring) Find(id string) (Summary, bool) {
	for _, s := range r.Snapshot() {
		if s.ID == id {
			return s, true
		}
	}
	return Summary{}, false
}
