// Package bitpack implements fixed-width bit-level packing of integer
// sequences. The delta encoders store cellwise differences as dense
// collections of D-bit values (paper §III-B.3); this package provides the
// D-bit writer and reader, the zigzag transform used to map signed
// differences onto unsigned codes, and helpers to choose the minimal
// width D for a set of values.
//
// Widths from 0 to 64 bits are supported. Width 0 is meaningful: a run of
// identical versions produces an all-zero delta which occupies no payload
// bytes at all ("the system also supports bit depths of 0", §III-B.3).
package bitpack

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Zigzag maps a signed value onto an unsigned code such that values of
// small magnitude (positive or negative) receive small codes:
// 0→0, -1→1, 1→2, -2→3, ...
func Zigzag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// Width returns the number of bits needed to represent the unsigned code
// u: 0 for 0, otherwise the position of the highest set bit.
func Width(u uint64) int {
	return bits.Len64(u)
}

// SignedWidth returns the number of bits needed to represent the signed
// value v after zigzag encoding.
func SignedWidth(v int64) int {
	return Width(Zigzag(v))
}

// MaxSignedWidth returns the minimal width D able to encode every value
// in vs (after zigzag). An empty slice needs width 0.
func MaxSignedWidth(vs []int64) int {
	w := 0
	for _, v := range vs {
		if sw := SignedWidth(v); sw > w {
			w = sw
			if w == 64 {
				break
			}
		}
	}
	return w
}

// PackedLen returns the number of bytes occupied by n values of the given
// width.
func PackedLen(n, width int) int {
	return (n*width + 7) / 8
}

// Writer appends fixed-width unsigned codes to a byte buffer, LSB-first
// within each byte.
type Writer struct {
	buf  []byte
	acc  uint64 // bits not yet flushed
	nacc uint   // number of valid bits in acc
}

// NewWriter returns a Writer that appends to an internal buffer.
func NewWriter() *Writer { return &Writer{} }

// Write appends the low `width` bits of u.
func (w *Writer) Write(u uint64, width int) {
	if width == 0 {
		return
	}
	if width < 64 {
		u &= (1 << uint(width)) - 1
	}
	w.acc |= u << w.nacc
	if w.nacc+uint(width) >= 64 {
		// flush the full 64-bit accumulator
		for i := 0; i < 8; i++ {
			w.buf = append(w.buf, byte(w.acc>>(8*uint(i))))
		}
		rem := w.nacc + uint(width) - 64
		if w.nacc == 0 {
			w.acc = 0
		} else {
			w.acc = u >> (64 - w.nacc)
		}
		w.nacc = rem
	} else {
		w.nacc += uint(width)
	}
}

// WriteSigned zigzag-encodes v and appends it at the given width. The
// width must be at least SignedWidth(v) for lossless roundtrip.
func (w *Writer) WriteSigned(v int64, width int) {
	w.Write(Zigzag(v), width)
}

// Bytes flushes any partial byte and returns the packed buffer. The
// Writer may not be used after calling Bytes.
func (w *Writer) Bytes() []byte {
	for w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		if w.nacc >= 8 {
			w.nacc -= 8
		} else {
			w.nacc = 0
		}
	}
	return w.buf
}

// Reader extracts fixed-width unsigned codes from a packed buffer.
type Reader struct {
	buf []byte
	pos uint64 // bit position
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Read extracts the next `width`-bit code. It returns an error if the
// buffer is exhausted.
//
// The fast path loads a 64-bit word at the current byte and shifts the
// code out in one step; it covers every read whose bits fit in the
// loaded word (always true for byte-aligned widths up to 64, and for any
// width up to 57 at arbitrary alignment). Only reads within 8 bytes of
// the buffer end fall back to the bit-by-bit loop.
func (r *Reader) Read(width int) (uint64, error) {
	if width == 0 {
		return 0, nil
	}
	end := r.pos + uint64(width)
	if end > uint64(len(r.buf))*8 {
		return 0, fmt.Errorf("bitpack: read of %d bits at bit %d overruns %d-byte buffer", width, r.pos, len(r.buf))
	}
	byteIdx := r.pos >> 3
	bitIdx := r.pos & 7
	if int(bitIdx)+width <= 64 && byteIdx+8 <= uint64(len(r.buf)) {
		u := binary.LittleEndian.Uint64(r.buf[byteIdx:]) >> bitIdx
		if width < 64 {
			u &= (1 << uint(width)) - 1
		}
		r.pos = end
		return u, nil
	}
	var u uint64
	got := 0
	for got < width {
		byteIdx := (r.pos + uint64(got)) / 8
		bitIdx := (r.pos + uint64(got)) % 8
		avail := 8 - int(bitIdx)
		take := width - got
		if take > avail {
			take = avail
		}
		chunk := uint64(r.buf[byteIdx]>>bitIdx) & ((1 << uint(take)) - 1)
		u |= chunk << uint(got)
		got += take
	}
	r.pos = end
	return u, nil
}

// ReadSigned extracts the next `width`-bit code and zigzag-decodes it.
func (r *Reader) ReadSigned(width int) (int64, error) {
	u, err := r.Read(width)
	if err != nil {
		return 0, err
	}
	return Unzigzag(u), nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() uint64 {
	total := uint64(len(r.buf)) * 8
	if r.pos > total {
		return 0
	}
	return total - r.pos
}

// byteAligned reports whether width maps each code onto whole bytes, the
// precondition for the word-at-a-time bulk paths below.
func byteAligned(width int) bool {
	return width == 8 || width == 16 || width == 32 || width == 64
}

// PackSigned packs vs at the given width (which must cover every value).
// Byte-aligned widths (8/16/32/64) store codes directly as little-endian
// words, bypassing the bit accumulator entirely.
func PackSigned(vs []int64, width int) []byte {
	if byteAligned(width) {
		buf := make([]byte, PackedLen(len(vs), width))
		step := width / 8
		for i, v := range vs {
			putAligned(buf[i*step:], Zigzag(v), width)
		}
		return buf
	}
	w := NewWriter()
	for _, v := range vs {
		w.WriteSigned(v, width)
	}
	return w.Bytes()
}

// checkUnpack validates an unpack request before any allocation sized
// by n: the buffer must actually hold n width-bit codes. Width 0 is the
// exception (zero codes occupy no bytes), so its n must come from a
// trusted source — every caller here derives it from the base array's
// cell count, never from the blob being decoded.
func checkUnpack(bufLen, n, width int) error {
	if n < 0 || width < 0 || width > 64 {
		return fmt.Errorf("bitpack: bad unpack of %d values at width %d", n, width)
	}
	if width > 0 && n > (bufLen*8)/width {
		return fmt.Errorf("bitpack: unpack of %d %d-bit values overruns %d-byte buffer", n, width, bufLen)
	}
	return nil
}

// UnpackSigned extracts n signed values of the given width from buf,
// using the active unpack kernel (see kernels.go).
func UnpackSigned(buf []byte, n, width int) ([]int64, error) {
	if err := checkUnpack(len(buf), n, width); err != nil {
		return nil, err
	}
	out := make([]int64, n)
	if err := kernels[ActiveKernel()].signed(buf, n, width, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PackUnsigned packs unsigned codes at the given width. Byte-aligned
// widths store codes directly as little-endian words.
func PackUnsigned(vs []uint64, width int) []byte {
	if byteAligned(width) {
		buf := make([]byte, PackedLen(len(vs), width))
		step := width / 8
		for i, v := range vs {
			putAligned(buf[i*step:], v, width)
		}
		return buf
	}
	w := NewWriter()
	for _, v := range vs {
		w.Write(v, width)
	}
	return w.Bytes()
}

// UnpackUnsigned extracts n unsigned codes of the given width from buf,
// using the active unpack kernel (see kernels.go).
func UnpackUnsigned(buf []byte, n, width int) ([]uint64, error) {
	if err := checkUnpack(len(buf), n, width); err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	if err := kernels[ActiveKernel()].unsigned(buf, n, width, out); err != nil {
		return nil, err
	}
	return out, nil
}

func putAligned(dst []byte, u uint64, width int) {
	switch width {
	case 8:
		dst[0] = byte(u)
	case 16:
		binary.LittleEndian.PutUint16(dst, uint16(u))
	case 32:
		binary.LittleEndian.PutUint32(dst, uint32(u))
	default:
		binary.LittleEndian.PutUint64(dst, u)
	}
}
