package bitpack

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Unpack kernels. The Reader's fast path still decodes one value per
// call — a call, a position update, and a bounds check per code. The
// batched kernel amortizes all of that: it decodes straight into a
// caller slice with unrolled 64-bit window loads, one bounds check per
// unroll block, and handles the buffer tail with a single anchored load
// instead of falling back to bit-by-bit assembly.
//
// Both kernels stay compiled whatever the active selection: the scalar
// kernel is the reference the differential harness (kernels_test.go,
// FuzzKernels) drives the batched kernel against, and callers that need
// a specific kernel (tests, the avbench kernel microbench) select one
// explicitly with SetKernel.

// Kernel identifies an unpack implementation in the kernel registry.
type Kernel uint8

// Registered kernels.
const (
	// KernelScalar decodes one value per step through the Reader — the
	// reference implementation.
	KernelScalar Kernel = iota
	// KernelBatched decodes with unrolled word-at-a-time loads; the
	// default.
	KernelBatched
)

func (k Kernel) String() string {
	switch k {
	case KernelScalar:
		return "scalar"
	case KernelBatched:
		return "batched"
	default:
		return fmt.Sprintf("Kernel(%d)", uint8(k))
	}
}

// kernelImpl is one registry entry: a pair of bulk unpack
// implementations sharing the scalar kernel's exact semantics.
type kernelImpl struct {
	unsigned func(buf []byte, n, width int, out []uint64) error
	signed   func(buf []byte, n, width int, out []int64) error
}

// kernels is the kernel registry, indexed by Kernel.
var kernels = [...]kernelImpl{
	KernelScalar:  {unsigned: scalarUnpackUnsigned, signed: scalarUnpackSigned},
	KernelBatched: {unsigned: batchedUnpackUnsigned, signed: batchedUnpackSigned},
}

// activeKernel selects the kernel UnpackSigned/UnpackUnsigned (and the
// Into variants) dispatch to. Batched by default.
var activeKernel atomic.Uint32

func init() { activeKernel.Store(uint32(KernelBatched)) }

// SetKernel selects the active unpack kernel and returns the previous
// selection. Unknown kernels are ignored.
func SetKernel(k Kernel) Kernel {
	prev := ActiveKernel()
	if int(k) < len(kernels) {
		activeKernel.Store(uint32(k))
	}
	return prev
}

// ActiveKernel returns the currently selected kernel.
func ActiveKernel() Kernel { return Kernel(activeKernel.Load()) }

// Kernels lists every registered kernel, for tests and benches that
// iterate the registry.
func Kernels() []Kernel { return []Kernel{KernelScalar, KernelBatched} }

// batchedOps counts batched-kernel bulk unpacks process-wide; stores
// report it (baselined at Open) as part of kernel_batched_ops.
var batchedOps atomic.Int64

// BatchedOps returns the cumulative number of batched bulk unpacks.
func BatchedOps() int64 { return batchedOps.Load() }

// CheckUnpack is the exported form of the unpack validation: buf of
// bufLen bytes must hold n width-bit codes. Fused decoders in
// internal/delta validate with it before touching a payload.
func CheckUnpack(bufLen, n, width int) error { return checkUnpack(bufLen, n, width) }

// UnpackUnsignedInto extracts n unsigned width-bit codes from buf into
// out (which must hold at least n values) using the active kernel.
func UnpackUnsignedInto(buf []byte, n, width int, out []uint64) error {
	if err := checkUnpack(len(buf), n, width); err != nil {
		return err
	}
	if len(out) < n {
		return fmt.Errorf("bitpack: output holds %d values, need %d", len(out), n)
	}
	return kernels[ActiveKernel()].unsigned(buf, n, width, out[:n])
}

// UnpackSignedInto is UnpackUnsignedInto with zigzag decoding.
func UnpackSignedInto(buf []byte, n, width int, out []int64) error {
	if err := checkUnpack(len(buf), n, width); err != nil {
		return err
	}
	if len(out) < n {
		return fmt.Errorf("bitpack: output holds %d values, need %d", len(out), n)
	}
	return kernels[ActiveKernel()].signed(buf, n, width, out[:n])
}

// --- scalar reference kernel ---

// scalarUnpackUnsigned is the reference bulk unpack: the Reader, one
// value at a time. Deliberately the simplest correct implementation.
func scalarUnpackUnsigned(buf []byte, n, width int, out []uint64) error {
	if width == 0 {
		for i := 0; i < n; i++ {
			out[i] = 0
		}
		return nil
	}
	r := NewReader(buf)
	for i := 0; i < n; i++ {
		u, err := r.Read(width)
		if err != nil {
			return err
		}
		out[i] = u
	}
	return nil
}

func scalarUnpackSigned(buf []byte, n, width int, out []int64) error {
	if width == 0 {
		for i := 0; i < n; i++ {
			out[i] = 0
		}
		return nil
	}
	r := NewReader(buf)
	for i := 0; i < n; i++ {
		u, err := r.Read(width)
		if err != nil {
			return err
		}
		out[i] = Unzigzag(u)
	}
	return nil
}

// --- batched kernel ---

func batchedUnpackUnsigned(buf []byte, n, width int, out []uint64) error {
	batchedOps.Add(1)
	return batchedUnsigned(buf, n, width, out)
}

// signedBlockVals is the signed kernel's decode-block size. 512 values
// at any width occupy exactly 64*width bytes, so every block starts
// byte-aligned and the unsigned kernel can run on a plain sub-slice.
const signedBlockVals = 512

func batchedUnpackSigned(buf []byte, n, width int, out []int64) error {
	batchedOps.Add(1)
	if n == 0 {
		return nil
	}
	if width == 0 {
		for i := range out[:n] {
			out[i] = 0
		}
		return nil
	}
	if width <= 57 && len(buf) >= 8 {
		// fused path: one anchored window load and an inline unzigzag per
		// code, no intermediate block buffer. Same window/tail structure
		// (and the same in-bounds proof) as batchedUnsigned.
		mask := uint64(1)<<uint(width) - 1
		uw := uint64(width)
		lim := (8*(len(buf)-8)+7)/width + 1
		if lim > n {
			lim = n
		}
		i := 0
		p := uint64(0)
		for ; i+4 <= lim; i += 4 {
			u0 := binary.LittleEndian.Uint64(buf[p>>3:]) >> (p & 7) & mask
			p += uw
			u1 := binary.LittleEndian.Uint64(buf[p>>3:]) >> (p & 7) & mask
			p += uw
			u2 := binary.LittleEndian.Uint64(buf[p>>3:]) >> (p & 7) & mask
			p += uw
			u3 := binary.LittleEndian.Uint64(buf[p>>3:]) >> (p & 7) & mask
			p += uw
			dst := out[i : i+4 : i+4]
			dst[0] = Unzigzag(u0)
			dst[1] = Unzigzag(u1)
			dst[2] = Unzigzag(u2)
			dst[3] = Unzigzag(u3)
		}
		for ; i < lim; i++ {
			out[i] = Unzigzag(binary.LittleEndian.Uint64(buf[p>>3:]) >> (p & 7) & mask)
			p += uw
		}
		if i < n {
			base := uint64(len(buf)-8) * 8
			w := binary.LittleEndian.Uint64(buf[len(buf)-8:])
			for ; i < n; i++ {
				out[i] = Unzigzag(w >> (p - base) & mask)
				p += uw
			}
		}
		return nil
	}
	// wide codes (58..64 bits) and buffers too small for a window load:
	// unpack blockwise through the unsigned kernel, then unzigzag. 512
	// values at any width occupy exactly 64*width bytes, so every block
	// starts byte-aligned and runs on a plain sub-slice.
	var block [signedBlockVals]uint64
	for start := 0; start < n; start += signedBlockVals {
		m := n - start
		if m > signedBlockVals {
			m = signedBlockVals
		}
		off := start * width / 8
		if err := batchedUnsigned(buf[off:], m, width, block[:m]); err != nil {
			return err
		}
		dst := out[start : start+m]
		for j, u := range block[:m] {
			dst[j] = Unzigzag(u)
		}
	}
	return nil
}

// batchedUnsigned decodes n width-bit codes from buf into out. Callers
// have validated the request with checkUnpack (directly or via a
// byte-aligned sub-slice of a validated request).
func batchedUnsigned(buf []byte, n, width int, out []uint64) error {
	if n == 0 {
		return nil
	}
	switch width {
	case 0:
		for i := range out[:n] {
			out[i] = 0
		}
		return nil
	case 8:
		i := 0
		for ; i+8 <= n; i += 8 {
			src := buf[i : i+8 : i+8]
			dst := out[i : i+8 : i+8]
			dst[0] = uint64(src[0])
			dst[1] = uint64(src[1])
			dst[2] = uint64(src[2])
			dst[3] = uint64(src[3])
			dst[4] = uint64(src[4])
			dst[5] = uint64(src[5])
			dst[6] = uint64(src[6])
			dst[7] = uint64(src[7])
		}
		for ; i < n; i++ {
			out[i] = uint64(buf[i])
		}
		return nil
	case 16:
		i := 0
		for ; i+4 <= n; i += 4 {
			src := buf[2*i : 2*i+8 : 2*i+8]
			dst := out[i : i+4 : i+4]
			dst[0] = uint64(binary.LittleEndian.Uint16(src[0:]))
			dst[1] = uint64(binary.LittleEndian.Uint16(src[2:]))
			dst[2] = uint64(binary.LittleEndian.Uint16(src[4:]))
			dst[3] = uint64(binary.LittleEndian.Uint16(src[6:]))
		}
		for ; i < n; i++ {
			out[i] = uint64(binary.LittleEndian.Uint16(buf[2*i:]))
		}
		return nil
	case 32:
		i := 0
		for ; i+4 <= n; i += 4 {
			src := buf[4*i : 4*i+16 : 4*i+16]
			dst := out[i : i+4 : i+4]
			dst[0] = uint64(binary.LittleEndian.Uint32(src[0:]))
			dst[1] = uint64(binary.LittleEndian.Uint32(src[4:]))
			dst[2] = uint64(binary.LittleEndian.Uint32(src[8:]))
			dst[3] = uint64(binary.LittleEndian.Uint32(src[12:]))
		}
		for ; i < n; i++ {
			out[i] = uint64(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		return nil
	case 64:
		for i := 0; i < n; i++ {
			out[i] = binary.LittleEndian.Uint64(buf[8*i:])
		}
		return nil
	}
	if width > 57 {
		// 58..63 bits at arbitrary alignment can straddle a 64-bit
		// window; these widths are vanishingly rare in delta planes
		// (they imply near-full-width diffs), so the reference path
		// serves them
		return scalarUnpackUnsigned(buf, n, width, out)
	}
	// general widths 1..57: each code fits one 64-bit window load at
	// any alignment. The main loop covers every value whose window load
	// stays inside buf; the remaining values all live inside the final
	// 8 bytes (proof: i past the main loop means i*width/8 > len-8, so
	// the code's bits start at or after bit (len-8)*8 and end at or
	// before bit len*8 by checkUnpack), so one load anchored at len-8
	// finishes the tail with no bit-by-bit fallback.
	mask := uint64(1)<<uint(width) - 1
	uw := uint64(width)
	lim := 0
	if len(buf) >= 8 {
		lim = (8*(len(buf)-8) + 7) / width
		lim++
		if lim > n {
			lim = n
		}
	}
	i := 0
	p := uint64(0)
	for ; i+4 <= lim; i += 4 {
		out[i] = binary.LittleEndian.Uint64(buf[p>>3:]) >> (p & 7) & mask
		p += uw
		out[i+1] = binary.LittleEndian.Uint64(buf[p>>3:]) >> (p & 7) & mask
		p += uw
		out[i+2] = binary.LittleEndian.Uint64(buf[p>>3:]) >> (p & 7) & mask
		p += uw
		out[i+3] = binary.LittleEndian.Uint64(buf[p>>3:]) >> (p & 7) & mask
		p += uw
	}
	for ; i < lim; i++ {
		out[i] = binary.LittleEndian.Uint64(buf[p>>3:]) >> (p & 7) & mask
		p += uw
	}
	if i < n {
		if len(buf) < 8 {
			// buffer too small for any window load; bit-by-bit
			r := &Reader{buf: buf, pos: p}
			for ; i < n; i++ {
				u, err := r.Read(width)
				if err != nil {
					return err
				}
				out[i] = u
			}
			return nil
		}
		base := uint64(len(buf)-8) * 8
		w := binary.LittleEndian.Uint64(buf[len(buf)-8:])
		for ; i < n; i++ {
			out[i] = w >> (p - base) & mask
			p += uw
		}
	}
	return nil
}
