package bitpack

import (
	"math"
	"math/rand"
	"testing"
)

// Differential harness for the unpack kernel registry: every batched
// path (unrolled aligned widths, windowed general widths, the anchored
// tail load, the signed 512-value block loop) is driven against the
// scalar reference and must be bit-identical on every input.

// kernelLengths covers empty, tiny, the unroll-block edges (multiples
// of 4 and 8 plus/minus one), the signed kernel's 512-value block
// edges, and lengths whose final codes land in the anchored tail
// window.
var kernelLengths = []int{
	0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
	63, 64, 65, 100, 255, 256, 257, 511, 512, 513, 1000, 1024, 1027,
}

func maskFor(width int) uint64 {
	if width >= 64 {
		return math.MaxUint64
	}
	return uint64(1)<<uint(width) - 1
}

// withPad returns buf extended by pad random bytes; decoding must be
// unaffected by whatever follows the packed codes (window loads may
// read the padding but must mask it away).
func withPad(rng *rand.Rand, buf []byte, pad int) []byte {
	out := make([]byte, len(buf)+pad)
	copy(out, buf)
	rng.Read(out[len(buf):])
	return out
}

func TestKernelDifferentialUnsigned(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for width := 0; width <= 64; width++ {
		for _, n := range kernelLengths {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = rng.Uint64() & maskFor(width)
			}
			buf := PackUnsigned(vals, width)
			for _, pad := range []int{0, 1, 8, 13} {
				padded := withPad(rng, buf, pad)
				scalar := make([]uint64, n)
				batched := make([]uint64, n)
				if err := scalarUnpackUnsigned(padded, n, width, scalar); err != nil {
					t.Fatalf("width %d n %d pad %d: scalar: %v", width, n, pad, err)
				}
				if err := batchedUnsigned(padded, n, width, batched); err != nil {
					t.Fatalf("width %d n %d pad %d: batched: %v", width, n, pad, err)
				}
				for i := range vals {
					if scalar[i] != vals[i] {
						t.Fatalf("width %d n %d pad %d idx %d: scalar %d, packed %d", width, n, pad, i, scalar[i], vals[i])
					}
					if batched[i] != scalar[i] {
						t.Fatalf("width %d n %d pad %d idx %d: batched %d, scalar %d", width, n, pad, i, batched[i], scalar[i])
					}
				}
			}
		}
	}
}

func TestKernelDifferentialSigned(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for width := 0; width <= 64; width++ {
		for _, n := range kernelLengths {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = Unzigzag(rng.Uint64() & maskFor(width))
			}
			buf := PackSigned(vals, width)
			for _, pad := range []int{0, 1, 13} {
				padded := withPad(rng, buf, pad)
				scalar := make([]int64, n)
				batched := make([]int64, n)
				if err := scalarUnpackSigned(padded, n, width, scalar); err != nil {
					t.Fatalf("width %d n %d pad %d: scalar: %v", width, n, pad, err)
				}
				if err := batchedUnpackSigned(padded, n, width, batched); err != nil {
					t.Fatalf("width %d n %d pad %d: batched: %v", width, n, pad, err)
				}
				for i := range vals {
					if scalar[i] != vals[i] {
						t.Fatalf("width %d n %d pad %d idx %d: scalar %d, packed %d", width, n, pad, i, scalar[i], vals[i])
					}
					if batched[i] != scalar[i] {
						t.Fatalf("width %d n %d pad %d idx %d: batched %d, scalar %d", width, n, pad, i, batched[i], scalar[i])
					}
				}
			}
		}
	}
}

// TestKernelErrorParity truncates otherwise-valid buffers by one byte;
// every kernel must reject the request through the public entry points.
func TestKernelErrorParity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	prev := ActiveKernel()
	defer SetKernel(prev)
	for width := 1; width <= 64; width++ {
		for _, n := range []int{1, 5, 64, 513} {
			buf := make([]byte, PackedLen(n, width))
			rng.Read(buf)
			short := buf[:len(buf)-1]
			for _, k := range Kernels() {
				SetKernel(k)
				if err := UnpackUnsignedInto(short, n, width, make([]uint64, n)); err == nil {
					t.Fatalf("kernel %v width %d n %d: unsigned unpack of short buffer succeeded", k, width, n)
				}
				if err := UnpackSignedInto(short, n, width, make([]int64, n)); err == nil {
					t.Fatalf("kernel %v width %d n %d: signed unpack of short buffer succeeded", k, width, n)
				}
				if _, err := UnpackUnsigned(short, n, width); err == nil {
					t.Fatalf("kernel %v width %d n %d: UnpackUnsigned of short buffer succeeded", k, width, n)
				}
				if _, err := UnpackSigned(short, n, width); err == nil {
					t.Fatalf("kernel %v width %d n %d: UnpackSigned of short buffer succeeded", k, width, n)
				}
			}
		}
	}
}

func TestSetKernelDispatchAndOps(t *testing.T) {
	prev := SetKernel(KernelScalar)
	defer SetKernel(prev)
	if ActiveKernel() != KernelScalar {
		t.Fatalf("active kernel = %v after SetKernel(KernelScalar)", ActiveKernel())
	}
	buf := PackUnsigned([]uint64{1, 2, 3}, 7)
	before := BatchedOps()
	if _, err := UnpackUnsigned(buf, 3, 7); err != nil {
		t.Fatal(err)
	}
	if got := BatchedOps(); got != before {
		t.Fatalf("scalar kernel bumped BatchedOps: %d -> %d", before, got)
	}
	SetKernel(KernelBatched)
	if _, err := UnpackUnsigned(buf, 3, 7); err != nil {
		t.Fatal(err)
	}
	if got := BatchedOps(); got != before+1 {
		t.Fatalf("BatchedOps = %d, want %d", got, before+1)
	}
	// out-of-range selections are ignored
	SetKernel(Kernel(99))
	if ActiveKernel() != KernelBatched {
		t.Fatalf("unknown kernel changed selection to %v", ActiveKernel())
	}
}

func TestUnpackIntoShortOutput(t *testing.T) {
	buf := PackUnsigned([]uint64{1, 2, 3}, 8)
	if err := UnpackUnsignedInto(buf, 3, 8, make([]uint64, 2)); err == nil {
		t.Fatal("unsigned unpack into short output succeeded")
	}
	if err := UnpackSignedInto(buf, 3, 8, make([]int64, 2)); err == nil {
		t.Fatal("signed unpack into short output succeeded")
	}
}

func benchmarkKernelUnpack(b *testing.B, k Kernel, width int) {
	rng := rand.New(rand.NewSource(14))
	vals := make([]uint64, 1<<14)
	for i := range vals {
		vals[i] = rng.Uint64() & maskFor(width)
	}
	buf := PackUnsigned(vals, width)
	out := make([]uint64, len(vals))
	prev := SetKernel(k)
	defer SetKernel(prev)
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := UnpackUnsignedInto(buf, len(vals), width, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelScalarWidth7(b *testing.B)   { benchmarkKernelUnpack(b, KernelScalar, 7) }
func BenchmarkKernelBatchedWidth7(b *testing.B)  { benchmarkKernelUnpack(b, KernelBatched, 7) }
func BenchmarkKernelScalarWidth13(b *testing.B)  { benchmarkKernelUnpack(b, KernelScalar, 13) }
func BenchmarkKernelBatchedWidth13(b *testing.B) { benchmarkKernelUnpack(b, KernelBatched, 13) }
func BenchmarkKernelScalarWidth32(b *testing.B)  { benchmarkKernelUnpack(b, KernelScalar, 32) }
func BenchmarkKernelBatchedWidth32(b *testing.B) { benchmarkKernelUnpack(b, KernelBatched, 32) }
