package bitpack

import (
	"encoding/binary"
	"testing"
)

// FuzzReader feeds the bit reader and the bulk unpackers arbitrary
// buffers, counts, and widths — including invalid widths and counts the
// buffer cannot back. They must reject bad requests with an error
// before sizing any allocation, never panic, and the bulk path must
// agree with the incremental reader on whatever decodes.
func FuzzReader(f *testing.F) {
	f.Add([]byte{0x05, 0x03, 0x00, 0xde, 0xad, 0xbe, 0xef})
	f.Add(PackSigned([]int64{-3, 900, 0, 1 << 40}, 48))
	f.Add(PackUnsigned([]uint64{1, 2, 3, 4, 5}, 3))
	f.Add([]byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 || len(data) > 1<<16 {
			return
		}
		width := int(data[0]) % 70 // includes invalid widths > 64
		n := int(binary.LittleEndian.Uint16(data[1:3]))
		buf := data[3:]
		if width == 0 && n > 1<<12 {
			// width 0 occupies no input; its count must come from a
			// trusted source, so keep it small here
			n = 1 << 12
		}
		us, uerr := UnpackUnsigned(buf, n, width)
		if _, serr := UnpackSigned(buf, n, width); (serr == nil) != (uerr == nil) {
			t.Fatalf("signed/unsigned unpack disagree: %v vs %v", serr, uerr)
		}
		if uerr != nil {
			return
		}
		// the incremental reader must produce the same codes
		r := NewReader(buf)
		for i, want := range us {
			got, err := r.Read(width)
			if err != nil {
				t.Fatalf("Reader.Read failed at %d after bulk unpack succeeded: %v", i, err)
			}
			if got != want {
				t.Fatalf("code %d: reader %d != bulk %d (width %d)", i, got, want, width)
			}
		}
		// and a repack of the decoded codes must round-trip
		packed := PackUnsigned(us, width)
		if need := PackedLen(n, width); len(packed) != need {
			t.Fatalf("repack length %d, want %d", len(packed), need)
		}
		back, err := UnpackUnsigned(packed, n, width)
		if err != nil {
			t.Fatalf("repack unpack: %v", err)
		}
		for i := range back {
			if back[i] != us[i] {
				t.Fatalf("round trip mismatch at %d", i)
			}
		}
	})
}

// FuzzKernels is the differential kernel fuzzer: one arbitrary
// buffer/count/width request is decoded by every registered unpack
// kernel, which must either all reject it or all produce identical
// codes. The batched kernel is only correct if it is bit-identical to
// the scalar reference on every input, including hostile ones.
func FuzzKernels(f *testing.F) {
	f.Add([]byte{0x05, 0x03, 0xde, 0xad, 0xbe, 0xef}, uint16(3), byte(7))
	f.Add(PackUnsigned([]uint64{1 << 40, 5, 0, 9}, 48), uint16(4), byte(48))
	f.Add(PackSigned([]int64{-1, 1, -2, 2, 1000}, 13), uint16(5), byte(13))
	f.Add([]byte{0xff}, uint16(8), byte(1))
	f.Add(PackUnsigned(make([]uint64, 600), 5), uint16(600), byte(5))

	f.Fuzz(func(t *testing.T, buf []byte, nRaw uint16, widthRaw byte) {
		if len(buf) > 1<<16 {
			return
		}
		width := int(widthRaw) % 70 // includes invalid widths > 64
		n := int(nRaw)
		if width == 0 && n > 1<<12 {
			n = 1 << 12
		}
		prev := ActiveKernel()
		defer SetKernel(prev)

		SetKernel(KernelScalar)
		refU, refUErr := UnpackUnsigned(buf, n, width)
		refS, refSErr := UnpackSigned(buf, n, width)
		if (refUErr == nil) != (refSErr == nil) {
			t.Fatalf("scalar signed/unsigned disagree: %v vs %v", refSErr, refUErr)
		}

		SetKernel(KernelBatched)
		gotU, gotUErr := UnpackUnsigned(buf, n, width)
		gotS, gotSErr := UnpackSigned(buf, n, width)
		if (gotUErr == nil) != (refUErr == nil) {
			t.Fatalf("unsigned kernels disagree on error: batched %v, scalar %v", gotUErr, refUErr)
		}
		if (gotSErr == nil) != (refSErr == nil) {
			t.Fatalf("signed kernels disagree on error: batched %v, scalar %v", gotSErr, refSErr)
		}
		if refUErr != nil {
			return
		}
		for i := range refU {
			if gotU[i] != refU[i] {
				t.Fatalf("unsigned code %d: batched %x, scalar %x (width %d n %d)", i, gotU[i], refU[i], width, n)
			}
		}
		for i := range refS {
			if gotS[i] != refS[i] {
				t.Fatalf("signed code %d: batched %d, scalar %d (width %d n %d)", i, gotS[i], refS[i], width, n)
			}
		}
	})
}
