package bitpack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZigzagKnownValues(t *testing.T) {
	cases := []struct {
		v int64
		u uint64
	}{
		{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4},
		{math.MaxInt64, math.MaxUint64 - 1},
		{math.MinInt64, math.MaxUint64},
	}
	for _, c := range cases {
		if got := Zigzag(c.v); got != c.u {
			t.Errorf("Zigzag(%d) = %d, want %d", c.v, got, c.u)
		}
		if got := Unzigzag(c.u); got != c.v {
			t.Errorf("Unzigzag(%d) = %d, want %d", c.u, got, c.v)
		}
	}
}

func TestZigzagRoundtripProperty(t *testing.T) {
	f := func(v int64) bool { return Unzigzag(Zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWidth(t *testing.T) {
	cases := []struct {
		u uint64
		w int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
		{math.MaxUint64, 64},
	}
	for _, c := range cases {
		if got := Width(c.u); got != c.w {
			t.Errorf("Width(%d) = %d, want %d", c.u, got, c.w)
		}
	}
}

func TestSignedWidth(t *testing.T) {
	cases := []struct {
		v int64
		w int
	}{
		{0, 0}, {-1, 1}, {1, 2}, {-2, 2}, {127, 8}, {-128, 8}, {128, 9},
		{math.MinInt64, 64}, {math.MaxInt64, 64},
	}
	for _, c := range cases {
		if got := SignedWidth(c.v); got != c.w {
			t.Errorf("SignedWidth(%d) = %d, want %d", c.v, got, c.w)
		}
	}
}

func TestMaxSignedWidth(t *testing.T) {
	if got := MaxSignedWidth(nil); got != 0 {
		t.Errorf("MaxSignedWidth(nil) = %d, want 0", got)
	}
	if got := MaxSignedWidth([]int64{0, 0, 0}); got != 0 {
		t.Errorf("MaxSignedWidth(zeros) = %d, want 0", got)
	}
	if got := MaxSignedWidth([]int64{1, -200, 3}); got != SignedWidth(-200) {
		t.Errorf("MaxSignedWidth = %d, want %d", got, SignedWidth(-200))
	}
}

func TestPackedLen(t *testing.T) {
	if got := PackedLen(10, 0); got != 0 {
		t.Errorf("PackedLen(10,0) = %d, want 0", got)
	}
	if got := PackedLen(3, 3); got != 2 {
		t.Errorf("PackedLen(3,3) = %d, want 2", got)
	}
	if got := PackedLen(8, 8); got != 8 {
		t.Errorf("PackedLen(8,8) = %d, want 8", got)
	}
}

func TestWriterReaderAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for width := 0; width <= 64; width++ {
		n := 100
		vals := make([]uint64, n)
		var mask uint64
		if width == 64 {
			mask = math.MaxUint64
		} else {
			mask = (1 << uint(width)) - 1
		}
		for i := range vals {
			vals[i] = rng.Uint64() & mask
		}
		buf := PackUnsigned(vals, width)
		if len(buf) != PackedLen(n, width) {
			t.Fatalf("width %d: len=%d want %d", width, len(buf), PackedLen(n, width))
		}
		got, err := UnpackUnsigned(buf, n, width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("width %d idx %d: got %d want %d", width, i, got[i], vals[i])
			}
		}
	}
}

func TestSignedRoundtripAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for width := 1; width <= 64; width++ {
		n := 64
		vals := make([]int64, n)
		for i := range vals {
			// generate a value fitting in `width` signed-zigzag bits
			var mask uint64
			if width == 64 {
				mask = math.MaxUint64
			} else {
				mask = (1 << uint(width)) - 1
			}
			vals[i] = Unzigzag(rng.Uint64() & mask)
		}
		buf := PackSigned(vals, width)
		got, err := UnpackSigned(buf, n, width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("width %d idx %d: got %d want %d", width, i, got[i], vals[i])
			}
		}
	}
}

func TestMixedWidthStream(t *testing.T) {
	w := NewWriter()
	w.Write(0b101, 3)
	w.WriteSigned(-7, 5)
	w.Write(0xDEADBEEF, 32)
	w.Write(1, 1)
	buf := w.Bytes()
	r := NewReader(buf)
	if u, _ := r.Read(3); u != 0b101 {
		t.Errorf("first = %b", u)
	}
	if v, _ := r.ReadSigned(5); v != -7 {
		t.Errorf("second = %d", v)
	}
	if u, _ := r.Read(32); u != 0xDEADBEEF {
		t.Errorf("third = %x", u)
	}
	if u, _ := r.Read(1); u != 1 {
		t.Errorf("fourth = %d", u)
	}
}

func TestReaderOverrun(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.Read(8); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if _, err := r.Read(1); err == nil {
		t.Fatal("expected overrun error")
	}
}

func TestZeroWidthStream(t *testing.T) {
	buf := PackSigned([]int64{0, 0, 0, 0}, 0)
	if len(buf) != 0 {
		t.Fatalf("zero-width pack produced %d bytes", len(buf))
	}
	got, err := UnpackSigned(buf, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 0 {
			t.Fatalf("zero-width decode gave %d", v)
		}
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0})
	if r.Remaining() != 16 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
	r.Read(5)
	if r.Remaining() != 11 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestPackSignedWidthFromMax(t *testing.T) {
	f := func(raw []int64) bool {
		if len(raw) == 0 {
			return true
		}
		w := MaxSignedWidth(raw)
		buf := PackSigned(raw, w)
		got, err := UnpackSigned(buf, len(raw), w)
		if err != nil {
			return false
		}
		for i := range raw {
			if got[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPackSigned(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 1<<16)
	for i := range vals {
		vals[i] = int64(rng.Intn(1024) - 512)
	}
	w := MaxSignedWidth(vals)
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackSigned(vals, w)
	}
}

func BenchmarkUnpackSigned(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]int64, 1<<16)
	for i := range vals {
		vals[i] = int64(rng.Intn(1024) - 512)
	}
	w := MaxSignedWidth(vals)
	buf := PackSigned(vals, w)
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UnpackSigned(buf, len(vals), w); err != nil {
			b.Fatal(err)
		}
	}
}

// referenceRead is the original bit-by-bit decoder, kept as the oracle
// for the word-at-a-time fast paths in Reader.Read and for the bulk
// unpack kernels (kernels.go).
func referenceRead(buf []byte, pos uint64, width int) uint64 {
	var u uint64
	got := 0
	for got < width {
		byteIdx := (pos + uint64(got)) / 8
		bitIdx := (pos + uint64(got)) % 8
		avail := 8 - int(bitIdx)
		take := width - got
		if take > avail {
			take = avail
		}
		chunk := uint64(buf[byteIdx]>>bitIdx) & ((1 << uint(take)) - 1)
		u |= chunk << uint(got)
		got += take
	}
	return u
}

func TestReadFastPathMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	buf := make([]byte, 64)
	rng.Read(buf)
	// every width at every alignment, including positions near the buffer
	// end where the fast path must hand off to the slow loop
	for width := 1; width <= 64; width++ {
		r := NewReader(buf)
		pos := uint64(0)
		for pos+uint64(width) <= uint64(len(buf))*8 {
			want := referenceRead(buf, pos, width)
			got, err := r.Read(width)
			if err != nil {
				t.Fatalf("width %d pos %d: %v", width, pos, err)
			}
			if got != want {
				t.Fatalf("width %d pos %d: got %x want %x", width, pos, got, want)
			}
			pos += uint64(width)
		}
	}
}

func TestReadMixedWidthsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	buf := make([]byte, 256)
	rng.Read(buf)
	for trial := 0; trial < 200; trial++ {
		r := NewReader(buf)
		pos := uint64(0)
		for {
			width := rng.Intn(65)
			if pos+uint64(width) > uint64(len(buf))*8 {
				break
			}
			want := referenceRead(buf, pos, width)
			got, err := r.Read(width)
			if err != nil {
				t.Fatalf("width %d pos %d: %v", width, pos, err)
			}
			if got != want {
				t.Fatalf("width %d pos %d: got %x want %x", width, pos, got, want)
			}
			pos += uint64(width)
		}
	}
}

func TestUnpackBulkShortBuffer(t *testing.T) {
	for _, width := range []int{3, 8, 16, 32, 64} {
		buf := PackUnsigned(make([]uint64, 4), width)
		// ask for more values than the packed bits can hold (width 3 needs
		// n=6: five 3-bit codes still fit in the padding of 2 bytes)
		n := 4 + (8+width-1)/width
		if _, err := UnpackUnsigned(buf, n, width); err == nil {
			t.Fatalf("width %d: expected short-buffer error", width)
		}
	}
}

// TestUnpackExhaustiveWidthTail crosses every width with every length
// up to 130, covering each unroll remainder and every tail shape near
// the end of the buffer — where the batched kernel switches from
// window loads to the anchored final-word load and the Reader falls
// back to bit-by-bit assembly — and checks every registered kernel
// against referenceRead at each bit position.
func TestUnpackExhaustiveWidthTail(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	prev := ActiveKernel()
	defer SetKernel(prev)
	for width := 1; width <= 64; width++ {
		var mask uint64 = math.MaxUint64
		if width < 64 {
			mask = (1 << uint(width)) - 1
		}
		for n := 0; n <= 130; n++ {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = rng.Uint64() & mask
			}
			buf := PackUnsigned(vals, width)
			for _, k := range Kernels() {
				SetKernel(k)
				got, err := UnpackUnsigned(buf, n, width)
				if err != nil {
					t.Fatalf("kernel %v width %d n %d: %v", k, width, n, err)
				}
				for i := 0; i < n; i++ {
					want := referenceRead(buf, uint64(i)*uint64(width), width)
					if got[i] != want {
						t.Fatalf("kernel %v width %d n %d idx %d: got %x want %x", k, width, n, i, got[i], want)
					}
				}
			}
		}
	}
}

func benchmarkUnpackWidth(b *testing.B, width int) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, 1<<16)
	var mask uint64 = math.MaxUint64
	if width < 64 {
		mask = (1 << uint(width)) - 1
	}
	for i := range vals {
		vals[i] = rng.Uint64() & mask
	}
	buf := PackUnsigned(vals, width)
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UnpackUnsigned(buf, len(vals), width); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpackWidth7(b *testing.B)  { benchmarkUnpackWidth(b, 7) }
func BenchmarkUnpackWidth8(b *testing.B)  { benchmarkUnpackWidth(b, 8) }
func BenchmarkUnpackWidth16(b *testing.B) { benchmarkUnpackWidth(b, 16) }
func BenchmarkUnpackWidth32(b *testing.B) { benchmarkUnpackWidth(b, 32) }
func BenchmarkUnpackWidth64(b *testing.B) { benchmarkUnpackWidth(b, 64) }
