// Package cliutil holds the small pieces shared by the avstore, avql,
// and avstored commands and the server's /metrics handler: building
// store options from the common -cache-bytes / -parallelism flags,
// signal-aware cleanup, the text forms of boxes and layout policies, and
// one canonical rendering of Store.Stats() counters.
package cliutil

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"arrayvers/internal/array"
	"arrayvers/internal/core"
	"arrayvers/internal/trace"
)

// StoreOptions returns the default store options with the shared
// -cache-bytes, -parallelism, and -durable flag values applied. Durable
// opens fsync every commit and run crash recovery at Open. Only the
// daemon (which owns its store exclusively) and `avstore fsck` default
// it on; avstore/avql default it off so read-only invocations never
// mutate a store directory another process may own, and benchmarks
// keep it off so I/O accounting matches the paper.
func StoreOptions(cacheBytes int64, parallelism int, durable bool) core.Options {
	opts := core.DefaultOptions()
	opts.CacheBytes = cacheBytes
	opts.Parallelism = parallelism
	opts.Durability = durable
	return opts
}

// CleanupOnSignal runs cleanup and exits (130 on SIGINT, 143 on
// SIGTERM) when an interrupt arrives, so commands close their store
// instead of dying mid-operation. The returned stop func deregisters
// the handler; call it before a normal exit so the cleanup cannot race
// the caller's own deferred teardown.
func CleanupOnSignal(cleanup func()) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			cleanup()
			code := 130
			if sig == syscall.SIGTERM {
				code = 143
			}
			os.Exit(code)
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// ParseBox parses the "lo,lo:hi,hi" region syntax shared by the avstore
// CLI and the select query parameters (hi exclusive).
func ParseBox(spec string) (array.Box, error) {
	halves := strings.Split(spec, ":")
	if len(halves) != 2 {
		return array.Box{}, fmt.Errorf("bad box %q (want lo,lo:hi,hi)", spec)
	}
	parse := func(s string) ([]int64, error) {
		var out []int64
		for _, p := range strings.Split(s, ",") {
			v, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad box coordinate %q", p)
			}
			out = append(out, v)
		}
		return out, nil
	}
	lo, err := parse(halves[0])
	if err != nil {
		return array.Box{}, err
	}
	hi, err := parse(halves[1])
	if err != nil {
		return array.Box{}, err
	}
	return array.NewBox(lo, hi), nil
}

// FormatBox renders a box in the syntax ParseBox accepts.
func FormatBox(b array.Box) string {
	join := func(vs []int64) string {
		parts := make([]string, len(vs))
		for i, v := range vs {
			parts[i] = strconv.FormatInt(v, 10)
		}
		return strings.Join(parts, ",")
	}
	return join(b.Lo) + ":" + join(b.Hi)
}

// ParsePolicy parses a layout policy name as printed by
// core.LayoutPolicy.String.
func ParsePolicy(s string) (core.LayoutPolicy, error) {
	switch s {
	case "optimal":
		return core.PolicyOptimal, nil
	case "algorithm1":
		return core.PolicyAlgorithm1, nil
	case "algorithm2":
		return core.PolicyAlgorithm2, nil
	case "linear":
		return core.PolicyLinearChain, nil
	case "head":
		return core.PolicyHeadBiased, nil
	case "workload":
		return core.PolicyWorkloadAware, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

// Counter is one named Store.Stats() value.
type Counter struct {
	Name  string
	Value int64
}

// StatsCounters flattens the I/O and cache counters into an ordered,
// snake_case list — the one rendering shared by `avstore stats`,
// `avstore info`, and the avstored /metrics handler.
func StatsCounters(st core.IOStats) []Counter {
	return []Counter{
		{"bytes_read", st.BytesRead},
		{"bytes_written", st.BytesWritten},
		{"chunks_read", st.ChunksRead},
		{"chunks_written", st.ChunksWritten},
		{"cache_hits", st.CacheHits},
		{"cache_misses", st.CacheMisses},
		{"cache_evictions", st.CacheEvictions},
		{"cache_rejected", st.CacheRejected},
		{"cache_bytes", st.CacheBytes},
		{"cache_entries", st.CacheEntries},
		{"mmap_reads", st.MmapReads},
		{"mmap_bytes_read", st.MmapBytesRead},
		{"mmap_planes", st.MmapPlanes},
		{"mmap_plane_bytes", st.MmapPlaneBytes},
		{"mmap_deferred_unlinks", st.MmapDeferredUnlinks},
		{"kernel_batched_ops", st.KernelBatchedOps},
		{"recovery_truncated_files", st.RecoveryTruncatedFiles},
		{"recovery_truncated_bytes", st.RecoveryTruncatedBytes},
		{"recovery_removed_files", st.RecoveryRemovedFiles},
		{"recovery_dropped_versions", st.RecoveryDroppedVersions},
		{"group_commits", st.GroupCommits},
		{"group_commit_versions", st.GroupCommitVersions},
		{"manifest_records", st.ManifestRecords},
		{"manifest_appends", st.ManifestAppends},
		{"manifest_fsyncs", st.ManifestFsyncs},
		{"manifest_rotations", st.ManifestRotations},
		{"insert_orphan_files", st.InsertOrphanFiles},
		{"insert_orphan_bytes", st.InsertOrphanBytes},
		{"workload_ops", st.WorkloadOps},
		{"workload_patterns", st.WorkloadPatterns},
		{"tune_passes", st.TunePasses},
		{"tune_reorganizes", st.TuneReorganizes},
		{"degraded_entered", st.DegradedEntered},
		{"degraded_healed", st.DegradedHealed},
		{"degraded_arrays", st.DegradedArrays},
		{"store_degraded", st.StoreDegraded},
		{"writes_rejected_degraded", st.WritesRejectedDegraded},
	}
}

// WriteStats prints the counters one per line.
func WriteStats(w io.Writer, st core.IOStats) {
	for _, c := range StatsCounters(st) {
		fmt.Fprintf(w, "%-16s %d\n", c.Name, c.Value)
	}
}

// WriteTrace renders one completed trace as an EXPLAIN ANALYZE-style
// per-stage table: stage name, call count, cumulative time, share of
// the trace's total duration, and bytes handled, followed by the
// trace's counters (cache hits/misses, chunks decoded, bytes read).
// Stages appear in first-observation order, which follows the pipeline.
func WriteTrace(w io.Writer, sum trace.Summary) {
	total := time.Duration(sum.DurationNs)
	fmt.Fprintf(w, "trace %s (%s) — total %s\n", sum.ID, sum.Name, total.Round(time.Microsecond))
	if len(sum.Stages) == 0 {
		fmt.Fprintf(w, "  (no pipeline stages recorded)\n")
	} else {
		fmt.Fprintf(w, "  %-14s %8s %12s %8s %12s\n", "stage", "calls", "time", "share", "bytes")
		for _, st := range sum.Stages {
			share := "-"
			if sum.DurationNs > 0 {
				share = fmt.Sprintf("%.1f%%", 100*float64(st.Nanos)/float64(sum.DurationNs))
			}
			fmt.Fprintf(w, "  %-14s %8d %12s %8s %12d\n",
				st.Stage, st.Count, time.Duration(st.Nanos).Round(time.Microsecond), share, st.Bytes)
		}
	}
	if len(sum.Attrs) > 0 {
		keys := make([]string, 0, len(sum.Attrs))
		for k := range sum.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "  counters:")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, sum.Attrs[k])
		}
		fmt.Fprintln(w)
	}
}
