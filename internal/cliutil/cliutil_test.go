package cliutil

import (
	"strings"
	"testing"

	"arrayvers/internal/array"
	"arrayvers/internal/core"
)

func TestBoxRoundTrip(t *testing.T) {
	box := array.NewBox([]int64{-3, 0, 7}, []int64{5, 16, 9})
	got, err := ParseBox(FormatBox(box))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(box) {
		t.Fatalf("round trip: %v != %v", got, box)
	}
	for _, bad := range []string{"", "1,2", "1:2:3", "a,0:1,1"} {
		if _, err := ParseBox(bad); err == nil {
			t.Errorf("ParseBox(%q) accepted", bad)
		}
	}
}

func TestParsePolicyMatchesString(t *testing.T) {
	// every policy's String() must parse back to itself, so the client
	// and server agree on the names
	policies := []core.LayoutPolicy{
		core.PolicyOptimal, core.PolicyAlgorithm1, core.PolicyAlgorithm2,
		core.PolicyLinearChain, core.PolicyHeadBiased, core.PolicyWorkloadAware,
	}
	for _, p := range policies {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus")
	}
}

func TestStoreOptions(t *testing.T) {
	opts := StoreOptions(1<<20, 3, true)
	if opts.CacheBytes != 1<<20 || opts.Parallelism != 3 || !opts.Durability {
		t.Fatalf("opts: %+v", opts)
	}
	// zero values preserve the paper defaults
	def := StoreOptions(0, 0, false)
	if def.CacheBytes != 0 || def.ChunkBytes != core.DefaultOptions().ChunkBytes || def.Durability {
		t.Fatalf("defaults: %+v", def)
	}
}

func TestStatsCounters(t *testing.T) {
	st := core.IOStats{BytesRead: 1, CacheHits: 2, CacheEntries: 3}
	var b strings.Builder
	WriteStats(&b, st)
	out := b.String()
	for _, want := range []string{"bytes_read", "cache_hits", "cache_entries"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteStats output missing %q", want)
		}
	}
	if len(StatsCounters(st)) != 37 {
		t.Errorf("StatsCounters: %d entries", len(StatsCounters(st)))
	}
}
