package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// LockOrder machine-checks the store's documented lock hierarchy. The
// partial order (see Store/arrayState doc comments and DESIGN.md
// "Static analysis") is:
//
//	reorgMu < syncMu < commitMu < writeMu < Store.mu < ioMu < pendMu
//	        < healthMu < tuneEstMu < statsMu
//
// The analyzer builds a static acquisition graph from direct
// .Lock()/.RLock() calls, from lockArray call sites (the func-literal
// latch list is decoded and checked against the order), and from
// one-level-deep interprocedural summaries (a call made while holding
// L contributes edges L -> every lock the callee may acquire,
// transitively). It flags:
//
//   - an acquisition that violates the partial order (a lower- or
//     equal-ranked lock taken while a higher one is held)
//   - re-acquiring a lock already held on the same receiver
//     (self-deadlock)
//   - a lockArray latch list whose literal order descends
//   - cycles in the observed acquisition graph
//
// Cross-instance acquisitions within the per-array latch family
// (InsertMulti's sorted-name protocol) are exempt: the rank order
// governs one array's latches; multi-array ordering is by name, which
// a rank cannot express. Escape hatch: //avlint:allow-lock <reason>.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Directive: "lock",
	Doc:       "lock acquisitions must follow the documented partial order and form no cycles",
	Applies: func(path string) bool {
		return PathSuffix(path, "internal/core")
	},
	Run: runLockOrder,
}

// lockOrderDoc is the canonical order, embedded in diagnostics so the
// fix is in the message.
const lockOrderDoc = "reorgMu < syncMu < commitMu < writeMu < Store.mu < ioMu < pendMu < healthMu < tuneEstMu < statsMu"

// lockRank maps "Type.field" to its position in the partial order.
// Lower ranks are acquired first. Locks not listed here (writeSet.mu,
// genMaps.mu, the manifest latches, ...) are internal leaves outside
// the documented hierarchy and are ignored.
var lockRank = map[string]int{
	"arrayState.reorgMu":  0,
	"arrayState.syncMu":   10,
	"arrayState.commitMu": 20,
	"arrayState.writeMu":  30,
	"Store.mu":            40,
	"arrayState.ioMu":     50,
	"arrayState.pendMu":   60,
	"Store.healthMu":      70,
	"Store.tuneEstMu":     80,
	"Store.statsMu":       90,
}

func lockShortName(key string) string {
	if i := strings.IndexByte(key, '.'); i >= 0 && !strings.HasPrefix(key, "Store.") {
		return key[i+1:]
	}
	return key
}

func arrayFamily(key string) bool { return strings.HasPrefix(key, "arrayState.") }

// lockEvent is one step in a function body's linearized execution.
type lockEvent struct {
	kind   int // 0 acquire, 1 release, 2 call
	key    string
	inst   string // receiver expression text ("" = unknown instance)
	callee types.Object
	pos    token.Pos
	cond   bool // statement sits on a conditional path (release only honored when false)
}

type heldLock struct {
	key  string
	inst string
	pos  token.Pos
	cond bool // acquired on a conditional path
}

type lockSummary struct {
	acquires   map[string]bool // every ranked lock the function may acquire, transitively
	heldAtExit []heldLock
}

type lockEdge struct {
	from, to string
	pos      token.Pos
}

func runLockOrder(pass *Pass) {
	la := &lockAnalysis{pass: pass, info: pass.Pkg.Info}

	// Phase 1: linearize every function (and every function literal as
	// its own anonymous unit) into lock events.
	type unit struct {
		obj      types.Object // nil for literals
		name     string
		events   []lockEvent
		noExport bool // returns an unlock closure: held locks transfer to it
	}
	var units []unit
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var lits []*ast.FuncLit
			events := la.linearize(fn.Body, &lits)
			units = append(units, unit{
				obj:      pass.Pkg.Info.Defs[fn.Name],
				name:     fn.Name.Name,
				events:   events,
				noExport: returnsFunc(fn),
			})
			for i := 0; i < len(lits); i++ {
				sub := la.linearize(lits[i].Body, &lits)
				units = append(units, unit{name: fn.Name.Name + " (func literal)", events: sub})
			}
		}
	}

	// Phase 2: fixpoint over call summaries (the call graph is shallow;
	// four rounds is plenty for this package).
	summaries := map[types.Object]*lockSummary{}
	for round := 0; round < 4; round++ {
		for _, u := range units {
			if u.obj == nil {
				continue
			}
			acq, held := simulate(u.events, summaries, nil, nil)
			if u.noExport {
				// a function returning a release closure (snapshot /
				// view acquisition pattern) hands its held locks to
				// that closure; the caller frees them via a call the
				// linear scan cannot pair, so exporting them would
				// fabricate phantom held state
				held = nil
			}
			summaries[u.obj] = &lockSummary{acquires: acq, heldAtExit: held}
		}
	}

	// Phase 3: final pass — emit diagnostics and collect the global
	// acquisition graph for cycle detection.
	var edges []lockEdge
	for _, u := range units {
		reported := map[string]bool{}
		simulate(u.events, summaries, &edges, func(held heldLock, key, inst string, pos token.Pos) {
			dedup := held.key + "->" + key
			if reported[dedup] {
				return
			}
			reported[dedup] = true
			if held.key == key {
				pass.Reportf(pos, "re-acquires %s already held (acquired at %s) — self-deadlock", lockShortName(key), pass.Pkg.Fset.Position(held.pos))
				return
			}
			pass.Reportf(pos, "acquires %s while holding %s — violates the documented lock order (%s)", lockShortName(key), lockShortName(held.key), lockOrderDoc)
		})
	}
	reportLockCycles(pass, edges)
}

// simulate walks one event list maintaining the held-lock set. It
// returns the transitive acquire set and the locks held at exit. When
// violate is non-nil, order violations are reported through it and
// every observed (held, acquired) pair is appended to edges.
func simulate(events []lockEvent, summaries map[types.Object]*lockSummary, edges *[]lockEdge, violate func(held heldLock, key, inst string, pos token.Pos)) (map[string]bool, []heldLock) {
	acquires := map[string]bool{}
	var held []heldLock

	acquire := func(key, inst string, pos token.Pos, cond bool) {
		acquires[key] = true
		for _, h := range held {
			if edgeSuppressed(h, key, inst) {
				continue
			}
			if lockRank[key] > lockRank[h.key] {
				if edges != nil {
					*edges = append(*edges, lockEdge{from: h.key, to: key, pos: pos})
				}
				continue
			}
			if violate != nil {
				violate(h, key, inst, pos)
			}
			if edges != nil {
				*edges = append(*edges, lockEdge{from: h.key, to: key, pos: pos})
			}
		}
		held = append(held, heldLock{key: key, inst: inst, pos: pos, cond: cond})
	}

	for _, e := range events {
		switch e.kind {
		case 0:
			acquire(e.key, e.inst, e.pos, e.cond)
		case 1:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].key == e.key {
					// A conditional release of an unconditionally-held
					// lock is an early-return cleanup: the fall-through
					// path still holds it. A release paired with a
					// conditional acquire (same-branch lock/unlock, or
					// if/else arms) does clear.
					if !e.cond || held[i].cond {
						held = append(held[:i], held[i+1:]...)
					}
					break
				}
			}
		case 2:
			sum := summaries[e.callee]
			if sum == nil {
				break
			}
			for key := range sum.acquires {
				acquires[key] = true
				for _, h := range held {
					if edgeSuppressed(h, key, "") {
						continue
					}
					if lockRank[key] > lockRank[h.key] {
						if edges != nil {
							*edges = append(*edges, lockEdge{from: h.key, to: key, pos: e.pos})
						}
						continue
					}
					if h.key == key {
						// same lock through a call: instance unknown, skip
						continue
					}
					if violate != nil {
						violate(h, key, "", e.pos)
					}
					if edges != nil {
						*edges = append(*edges, lockEdge{from: h.key, to: key, pos: e.pos})
					}
				}
			}
			for _, h := range sum.heldAtExit {
				held = append(held, heldLock{key: h.key, inst: "", pos: e.pos, cond: e.cond})
			}
		}
	}
	// Export only pure acquisitions: a lock with ANY release event in
	// this body is managed here (possibly on branches the linear scan
	// cannot pair exactly) and must not leak into caller summaries as
	// phantom held state. Pure acquirers — lockWrite, lockMetaWrite —
	// have no release events and export correctly.
	released := map[string]bool{}
	for _, e := range events {
		if e.kind == 1 {
			released[e.key] = true
		}
	}
	exit := held[:0:0]
	for _, h := range held {
		if !released[h.key] {
			exit = append(exit, h)
		}
	}
	return acquires, exit
}

// edgeSuppressed implements the multi-instance exemption: within the
// per-array latch family, ordering across DIFFERENT arrayState
// instances is governed by the sorted-name protocol (InsertMulti), not
// by rank, so pairs with differing or unknown receivers are skipped —
// except a provably same-instance pair, which is always checked.
func edgeSuppressed(h heldLock, key, inst string) bool {
	if !arrayFamily(h.key) || !arrayFamily(key) {
		return false
	}
	if lockRank[key] > lockRank[h.key] {
		return false // ascending edges are fine to record regardless
	}
	sameInstance := h.inst != "" && h.inst == inst
	return !sameInstance
}

// lockAnalysis linearizes function bodies.
type lockAnalysis struct {
	pass *Pass
	info *types.Info
}

// linearize flattens a body into lock events in source order. cond
// marks statements on conditional paths (if/switch/select arms):
// releases there are early-return cleanups and do not clear the held
// set for the fall-through path. Function literals are collected for
// separate analysis, not inlined.
func (la *lockAnalysis) linearize(body *ast.BlockStmt, lits *[]*ast.FuncLit) []lockEvent {
	var events []lockEvent
	var deferred []lockEvent
	var walkStmt func(s ast.Stmt, cond bool)
	var walkExpr func(e ast.Expr, cond bool)

	walkExpr = func(e ast.Expr, cond bool) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				*lits = append(*lits, x)
				return false
			case *ast.CallExpr:
				if ev, ok := la.lockEventFor(x, cond); ok {
					// nested arguments first (evaluated before the call)
					for _, arg := range x.Args {
						walkExpr(arg, cond)
					}
					events = append(events, ev...)
					return false
				}
			}
			return true
		})
	}

	walkStmt = func(s ast.Stmt, cond bool) {
		switch x := s.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, st := range x.List {
				walkStmt(st, cond)
			}
		case *ast.ExprStmt:
			walkExpr(x.X, cond)
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				walkExpr(r, cond)
			}
			for _, l := range x.Lhs {
				walkExpr(l, cond)
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				walkExpr(r, cond)
			}
		case *ast.IfStmt:
			walkStmt(x.Init, cond)
			walkExpr(x.Cond, cond)
			walkStmt(x.Body, true)
			walkStmt(x.Else, true)
		case *ast.ForStmt:
			walkStmt(x.Init, cond)
			walkExpr(x.Cond, cond)
			walkStmt(x.Body, cond)
			walkStmt(x.Post, cond)
		case *ast.RangeStmt:
			walkExpr(x.X, cond)
			walkStmt(x.Body, cond)
		case *ast.SwitchStmt:
			walkStmt(x.Init, cond)
			walkExpr(x.Tag, cond)
			walkStmt(x.Body, true)
		case *ast.TypeSwitchStmt:
			walkStmt(x.Init, cond)
			walkStmt(x.Assign, cond)
			walkStmt(x.Body, true)
		case *ast.SelectStmt:
			walkStmt(x.Body, true)
		case *ast.CaseClause:
			for _, e := range x.List {
				walkExpr(e, cond)
			}
			for _, st := range x.Body {
				walkStmt(st, true)
			}
		case *ast.CommClause:
			walkStmt(x.Comm, true)
			for _, st := range x.Body {
				walkStmt(st, true)
			}
		case *ast.DeferStmt:
			// a deferred unlock keeps the lock held for the rest of the
			// body (correct for edge generation); a deferred call's
			// effects land at function end
			if evs, ok := la.lockEventFor(x.Call, cond); ok {
				for i := range evs {
					evs[i].cond = false // defers always run
				}
				deferred = append(deferred, evs...)
			} else if lit, isLit := x.Call.Fun.(*ast.FuncLit); isLit {
				*lits = append(*lits, lit)
			}
			for _, arg := range x.Call.Args {
				walkExpr(arg, cond)
			}
		case *ast.GoStmt:
			if lit, isLit := x.Call.Fun.(*ast.FuncLit); isLit {
				*lits = append(*lits, lit)
			}
			for _, arg := range x.Call.Args {
				walkExpr(arg, cond)
			}
		case *ast.LabeledStmt:
			walkStmt(x.Stmt, cond)
		case *ast.DeclStmt:
			if gd, ok := x.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							walkExpr(v, cond)
						}
					}
				}
			}
		default:
			// SendStmt, IncDecStmt, Branch, Empty: scan for calls
			if n, ok := s.(ast.Node); ok {
				ast.Inspect(n, func(nn ast.Node) bool {
					if e, ok := nn.(ast.Expr); ok {
						walkExpr(e, cond)
						return false
					}
					return true
				})
			}
		}
	}

	for _, st := range body.List {
		walkStmt(st, false)
	}
	// releases inside deferred events run at exit, unconditionally
	return append(events, deferred...)
}

// lockEventFor classifies one call expression. It returns the events
// the call contributes: a ranked Lock/RLock/Unlock/RUnlock, the
// decoded latch list of a lockArray call site, or a plain same-package
// call (for summary propagation).
func (la *lockAnalysis) lockEventFor(call *ast.CallExpr, cond bool) ([]lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		key, inst, ok := la.rankedLock(sel.X)
		if !ok {
			return nil, false
		}
		kind := 0
		if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
			kind = 1
		}
		return []lockEvent{{kind: kind, key: key, inst: inst, pos: call.Pos(), cond: cond}}, true
	case "lockArray":
		if latches, ok := la.latchListOf(call); ok {
			// The latches all belong to the ONE array this call resolves,
			// so within the call they are same-instance; across two
			// lockArray calls (InsertMulti's sorted-name loop) the
			// instances are distinct arrays. A per-call-site tag encodes
			// exactly that.
			tag := "lockArray@" + strconv.Itoa(int(call.Pos()))
			events := make([]lockEvent, 0, len(latches))
			prev := -1
			for _, l := range latches {
				if r := lockRank[l.key]; prev >= 0 && r <= prev {
					la.pass.Reportf(call.Pos(), "lockArray latch list acquires %s after a higher-ranked latch — the pick function must return latches in the documented order (%s)", lockShortName(l.key), lockOrderDoc)
				} else {
					prev = lockRank[l.key]
				}
				events = append(events, lockEvent{kind: 0, key: l.key, inst: tag, pos: call.Pos(), cond: cond})
			}
			return events, true
		}
	}
	// plain call: propagate via summary when it resolves to a
	// same-package function
	if obj := la.info.Uses[sel.Sel]; obj != nil {
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == la.pass.Pkg.Path {
			return []lockEvent{{kind: 2, callee: obj, pos: call.Pos(), cond: cond}}, true
		}
	}
	return nil, false
}

// rankedLock resolves expr ("st.writeMu", "s.mu", "h.s.healthMu") to a
// ranked lock key and its receiver text.
func (la *lockAnalysis) rankedLock(expr ast.Expr) (key, inst string, ok bool) {
	sel, isSel := expr.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	recvType := la.info.TypeOf(sel.X)
	if recvType == nil {
		return "", "", false
	}
	t := recvType
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	key = named.Obj().Name() + "." + sel.Sel.Name
	if _, ranked := lockRank[key]; !ranked {
		return "", "", false
	}
	return key, types.ExprString(sel.X), true
}

// latchListOf decodes a lockArray call's func-literal pick argument:
// `func(st *arrayState) []*sync.Mutex { return
// []*sync.Mutex{&st.syncMu, &st.commitMu} }` -> the ranked keys in
// literal order.
func (la *lockAnalysis) latchListOf(call *ast.CallExpr) ([]heldLock, bool) {
	if len(call.Args) < 2 {
		return nil, false
	}
	lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
	if !ok {
		return nil, false
	}
	var latches []heldLock
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		comp, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range comp.Elts {
			un, ok := el.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			if key, inst, ok := la.rankedLock(un.X); ok {
				latches = append(latches, heldLock{key: key, inst: inst})
			}
		}
		return false
	})
	return latches, len(latches) > 0
}

// reportLockCycles finds strongly-connected components in the observed
// acquisition graph and reports each cycle once.
func reportLockCycles(pass *Pass, edges []lockEdge) {
	adj := map[string]map[string]token.Pos{}
	for _, e := range edges {
		if e.from == e.to {
			continue // the re-acquire diagnostic already covers self-loops
		}
		if adj[e.from] == nil {
			adj[e.from] = map[string]token.Pos{}
		}
		if _, dup := adj[e.from][e.to]; !dup {
			adj[e.from][e.to] = e.pos
		}
	}
	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	reported := map[string]bool{}
	for _, start := range nodes {
		if cycle := findCycle(adj, start); cycle != nil {
			names := make([]string, len(cycle))
			for i, k := range cycle {
				names[i] = lockShortName(k)
			}
			sig := strings.Join(canonicalCycle(names), " -> ")
			if reported[sig] {
				continue
			}
			reported[sig] = true
			pos := adj[cycle[len(cycle)-1]][cycle[0]]
			pass.Reportf(pos, "lock-order cycle: %s -> %s", strings.Join(names, " -> "), names[0])
		}
	}
}

// findCycle returns a cycle through start, if one exists, as the node
// sequence [start, ..., last] with an edge last->start.
func findCycle(adj map[string]map[string]token.Pos, start string) []string {
	var path []string
	onPath := map[string]bool{}
	var dfs func(n string) []string
	visited := map[string]bool{}
	dfs = func(n string) []string {
		path = append(path, n)
		onPath[n] = true
		var tos []string
		for to := range adj[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if to == start {
				out := append([]string(nil), path...)
				return out
			}
			if onPath[to] || visited[to] {
				continue
			}
			if c := dfs(to); c != nil {
				return c
			}
		}
		path = path[:len(path)-1]
		onPath[n] = false
		visited[n] = true
		return nil
	}
	return dfs(start)
}

// returnsFunc reports whether fn declares a func-typed result (the
// release-closure convention).
func returnsFunc(fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, fld := range fn.Type.Results.List {
		if _, ok := fld.Type.(*ast.FuncType); ok {
			return true
		}
	}
	return false
}

// canonicalCycle rotates a cycle to start at its smallest element so
// equivalent cycles dedupe.
func canonicalCycle(c []string) []string {
	min := 0
	for i := range c {
		if c[i] < c[min] {
			min = i
		}
	}
	out := make([]string, 0, len(c))
	out = append(out, c[min:]...)
	out = append(out, c[:min]...)
	return out
}
