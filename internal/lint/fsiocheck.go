package lint

import (
	"go/ast"
	"go/types"
)

// FsioCheck enforces the durability boundary: inside internal/core,
// every filesystem mutation must flow through the injectable fsio.FS
// (Options.FS) so the fault matrix, the transient-fault sweeps, and
// the crash recovery tests see it. A raw os.Rename or (*os.File).Sync
// in core is a write the ~270-point crash matrix can never interrupt —
// exactly how an untested commit-protocol step slips in. Reads
// (os.Open, os.ReadFile, os.Stat, os.ReadDir) are exempt: the boundary
// exists for mutations, whose ordering the commit protocol proves.
//
// Escape hatch: //avlint:allow-os <reason> on the call's line (or the
// comment line above it).
var FsioCheck = &Analyzer{
	Name:      "fsiocheck",
	Directive: "os",
	Doc:       "raw os.* filesystem mutations inside the durability boundary must go through fsio.FS",
	Applies: func(path string) bool {
		return PathSuffix(path, "internal/core")
	},
	Run: runFsioCheck,
}

// bannedOSFuncs are the package-level os mutations the boundary
// forbids. os.Open/ReadFile/Stat stay legal — reads need no fault
// injection.
var bannedOSFuncs = map[string]bool{
	"Create":     true,
	"CreateTemp": true,
	"OpenFile":   true,
	"Rename":     true,
	"Remove":     true,
	"RemoveAll":  true,
	"Mkdir":      true,
	"MkdirAll":   true,
	"MkdirTemp":  true,
	"WriteFile":  true,
	"Truncate":   true,
	"Symlink":    true,
	"Link":       true,
	"Chmod":      true,
	"Chtimes":    true,
}

// bannedFileMethods are (*os.File) methods that mutate durable state.
// A raw handle's Sync is an fsync the fault matrix cannot count or
// fail, so it breaks the "every fsync is a numbered crash point"
// contract.
var bannedFileMethods = map[string]bool{
	"Sync":     true,
	"Truncate": true,
	"Chmod":    true,
}

func runFsioCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// package-level os.X(...)
			if ident, ok := sel.X.(*ast.Ident); ok {
				if pkgName, ok := info.Uses[ident].(*types.PkgName); ok && pkgName.Imported().Path() == "os" {
					if bannedOSFuncs[sel.Sel.Name] {
						pass.Reportf(call.Pos(), "os.%s bypasses the fsio.FS durability boundary (use Options.FS / s.fs so fault injection sees the write)", sel.Sel.Name)
					}
					return true
				}
			}
			// method on *os.File
			if bannedFileMethods[sel.Sel.Name] {
				if t := info.TypeOf(sel.X); t != nil && isOSFile(t) {
					pass.Reportf(call.Pos(), "(*os.File).%s on a raw handle bypasses the fsio.FS durability boundary (fsio.File carries the counted %s)", sel.Sel.Name, sel.Sel.Name)
				}
			}
			return true
		})
	}
}

// isOSFile reports whether t is *os.File (or os.File).
func isOSFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
