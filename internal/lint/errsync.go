package lint

import (
	"go/ast"
	"go/types"
)

// ErrSync flags discarded error results from Close, Sync, and Flush
// calls — plus the commit seam itself (commitMeta / saveMeta /
// saveMetaDoc) — inside the durable packages. A swallowed Close after
// a buffered write is silent data loss (PR 3 fixed exactly that in
// writeBlob); a swallowed commitMeta is a mutation whose durability
// nobody checked. The rule covers bare expression statements, defer,
// and go statements. An explicit `_ = f.Close()` is allowed: the
// discard is visible and greppable, which is the point.
//
// Escape hatch: //avlint:allow-err <reason>.
var ErrSync = &Analyzer{
	Name:      "errsync",
	Directive: "err",
	Doc:       "Close/Sync/Flush/commitMeta error results must not be silently discarded on durable paths",
	Applies: func(path string) bool {
		return PathSuffix(path, "internal/core") ||
			PathSuffix(path, "internal/fsio") ||
			PathSuffix(path, "internal/server")
	},
	Run: runErrSync,
}

// errSyncMethods are the flagged method names; the call only counts
// when its type signature actually returns an error.
var errSyncMethods = map[string]bool{
	"Close": true,
	"Sync":  true,
	"Flush": true,
}

// errSyncCommitFuncs are the repo's commit-seam functions: discarding
// their error discards the outcome of a durable commit point.
var errSyncCommitFuncs = map[string]bool{
	"commitMeta":  true,
	"saveMeta":    true,
	"saveMetaDoc": true,
}

func runErrSync(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = stmt.Call
			case *ast.GoStmt:
				call = stmt.Call
			}
			if call == nil {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if !errSyncMethods[name] && !errSyncCommitFuncs[name] {
				return true
			}
			if !callReturnsError(pass.Pkg.Info, call) {
				return true
			}
			if errSyncCommitFuncs[name] {
				pass.Reportf(call.Pos(), "%s error discarded: the metadata commit outcome decides durability and degraded-mode handling", name)
			} else {
				pass.Reportf(call.Pos(), "%s error discarded on a durable path (check it, or discard explicitly with `_ = x.%s()`)", name, name)
			}
			return true
		})
	}
}

// callReturnsError reports whether the call's (single or final) result
// is the built-in error type.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call.Fun)
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
