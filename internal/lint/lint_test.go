package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture tests mirror golang.org/x/tools/go/analysis/analysistest:
// each analyzer runs over a fixture tree under testdata/src/<name>/...
// (its own module, so real import paths like example/internal/core gate
// the Applies scoping), and every diagnostic must match a `// want
// "regexp"` comment on its line — in both directions. A finding with no
// want fails, and a want with no finding fails, so the fixtures pin
// true positives AND true negatives.

func TestFsioCheckFixtures(t *testing.T)     { runFixture(t, FsioCheck, "fsiocheck") }
func TestErrSyncFixtures(t *testing.T)       { runFixture(t, ErrSync, "errsync") }
func TestCtxCheckFixtures(t *testing.T)      { runFixture(t, CtxCheck, "ctxcheck") }
func TestCommitPointFixtures(t *testing.T)   { runFixture(t, CommitPoint, "commitpoint") }
func TestLockOrderFixtures(t *testing.T)     { runFixture(t, LockOrder, "lockorder") }
func TestLockOrderCycleFixture(t *testing.T) { runFixture(t, LockOrder, "lockcycle") }

// wantRx extracts the quoted or backquoted patterns of a want comment.
var wantRx = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./"+name+"/...")
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	var wants []*want
	for _, pkg := range pkgs {
		for _, e := range pkg.Errs {
			t.Errorf("fixture %s: type error: %v", name, e)
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRx.FindAllStringSubmatch(rest, -1) {
						pat := m[1]
						if m[2] != "" {
							pat = m[2]
						}
						rx, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
					}
				}
			}
		}
	}

	diags := Run(pkgs, []*Analyzer{a})
	for _, d := range diags {
		if w := takeWant(wants, d.File, d.Line, d.Message); w == nil {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// takeWant claims the first unmatched want on the diagnostic's line
// whose pattern matches the message.
func takeWant(wants []*want, file string, line int, message string) *want {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.rx.MatchString(message) {
			w.matched = true
			return w
		}
	}
	return nil
}

// TestDirectiveRequiresReason pins the escape-hatch contract at the
// framework level: a bare allow directive never suppresses.
func TestDirectiveRequiresReason(t *testing.T) {
	if directiveMatches("avlint:allow-os", "allow-os") {
		t.Error("bare directive suppressed without a reason")
	}
	if !directiveMatches("avlint:allow-os legacy bench artifact", "allow-os") {
		t.Error("directive with reason failed to suppress")
	}
	if directiveMatches("avlint:allow-oswald reason", "allow-os") {
		t.Error("prefix-overlapping directive suppressed the wrong analyzer")
	}
}

func TestPathSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"arrayvers/internal/core", "internal/core", true},
		{"example/internal/core", "internal/core", true},
		{"internal/core", "internal/core", true},
		{"arrayvers/maternal/core", "internal/core", false},
		{"arrayvers/internal/core/sub", "internal/core", false},
	}
	for _, c := range cases {
		if got := PathSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("PathSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "fsiocheck", File: "a.go", Line: 3, Col: 7, Message: "m"}
	if got, want := d.String(), "a.go:3:7: fsiocheck: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
