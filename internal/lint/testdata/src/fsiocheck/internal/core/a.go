// Package core is a fsiocheck fixture: raw os mutations inside the
// durability boundary must be flagged; reads and annotated escape
// hatches must not.
package core

import "os"

func bad(path string) error {
	if err := os.Rename(path, path+".new"); err != nil { // want `os\.Rename bypasses the fsio\.FS durability boundary`
		return err
	}
	if err := os.MkdirAll(path, 0o755); err != nil { // want `os\.MkdirAll bypasses the fsio\.FS durability boundary`
		return err
	}
	f, err := os.Create(path) // want `os\.Create bypasses the fsio\.FS durability boundary`
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil { // want `\(\*os\.File\)\.Sync on a raw handle bypasses`
		_ = f.Close()
		return err
	}
	return f.Close()
}

// reads are exempt: the boundary exists for mutations
func allowedRead(path string) ([]byte, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

func escapeHatch(path string) error {
	return os.Remove(path) //avlint:allow-os fixture exercising the escape hatch
}

func escapeHatchAbove(path string) error {
	//avlint:allow-os fixture: the directive on the line above also suppresses
	return os.Remove(path)
}

func hatchNeedsReason(path string) error {
	//avlint:allow-os
	return os.Remove(path) // want `os\.Remove bypasses the fsio\.FS durability boundary`
}
