// Package core is a lockorder fixture mirroring the store's latch
// names. Scenarios: in-order acquisition (clean), out-of-order
// acquisition (flagged), same-instance re-acquire (flagged),
// cross-instance latch pairs (suppressed: the sorted-name protocol
// governs), early-return unlock (no false positive), interprocedural
// acquisition through a summary (flagged), the lockArray latch-list
// order (flagged when descending), and the escape hatch.
package core

import "sync"

type arrayState struct {
	reorgMu  sync.Mutex
	syncMu   sync.Mutex
	commitMu sync.Mutex
	writeMu  sync.Mutex
	ioMu     sync.RWMutex
	pendMu   sync.Mutex
}

type Store struct {
	mu     sync.RWMutex
	arrays map[string]*arrayState
}

func (s *Store) lockArray(name string, pick func(st *arrayState) []*sync.Mutex) (*arrayState, error) {
	s.mu.RLock()
	st := s.arrays[name]
	s.mu.RUnlock()
	for _, m := range pick(st) {
		m.Lock()
	}
	return st, nil
}

// ascending ranks throughout: clean
func (s *Store) goodOrder(st *arrayState) {
	st.reorgMu.Lock()
	st.syncMu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	st.syncMu.Unlock()
	st.reorgMu.Unlock()
}

// pendMu ranks above ioMu: taking ioMu while holding pendMu descends
func (st *arrayState) badOrder() {
	st.pendMu.Lock()
	st.ioMu.Lock() // want `acquires ioMu while holding pendMu — violates the documented lock order`
	st.ioMu.Unlock()
	st.pendMu.Unlock()
}

// same-rank, same-instance double acquisition is a self-deadlock
func (st *arrayState) doubleLock() {
	st.pendMu.Lock()
	st.pendMu.Lock() // want `re-acquires pendMu already held`
	st.pendMu.Unlock()
	st.pendMu.Unlock()
}

// descending within ONE array's latches is flagged even though the
// same pair across two arrays (multiArray below) is not
func (st *arrayState) sameInstance() {
	st.writeMu.Lock()
	st.commitMu.Lock() // want `acquires commitMu while holding writeMu — violates the documented lock order`
	st.commitMu.Unlock()
	st.writeMu.Unlock()
}

// cross-instance latch pairs follow the sorted-name protocol
// (InsertMulti), which rank cannot express: suppressed
func multiArray(a, b *arrayState) {
	a.writeMu.Lock()
	b.syncMu.Lock()
	b.syncMu.Unlock()
	a.writeMu.Unlock()
}

// the early-return cleanup pattern: the conditional unlock must not
// clear the held set for the fall-through path, and the fall-through
// unlock must
func (s *Store) earlyReturn(ok bool) {
	s.mu.RLock()
	if !ok {
		s.mu.RUnlock()
		return
	}
	s.mu.RUnlock()
	st := &arrayState{}
	st.writeMu.Lock() // would flag against a phantom-held Store.mu otherwise
	st.writeMu.Unlock()
}

// lockWrite is a pure acquirer: its held-at-exit set propagates to
// callers through the call summary
func (s *Store) lockWrite(st *arrayState) {
	st.writeMu.Lock()
}

func (s *Store) viaSummary(st *arrayState) {
	s.mu.Lock()
	s.lockWrite(st) // want `acquires writeMu while holding Store\.mu — violates the documented lock order`
	st.writeMu.Unlock()
	s.mu.Unlock()
}

// a latch list returned out of the documented order is flagged at the
// call site (and the descending acquisition it implies is too)
func (s *Store) badLatchList() {
	st, _ := s.lockArray("x", func(st *arrayState) []*sync.Mutex { // want `lockArray latch list acquires reorgMu after a higher-ranked latch` `acquires reorgMu while holding pendMu`
		return []*sync.Mutex{&st.pendMu, &st.reorgMu}
	})
	st.reorgMu.Unlock()
	st.pendMu.Unlock()
}

// the documented latch order, decoded from the pick literal: clean
func (s *Store) goodLatchList() {
	st, _ := s.lockArray("x", func(st *arrayState) []*sync.Mutex {
		return []*sync.Mutex{&st.syncMu, &st.commitMu}
	})
	st.commitMu.Unlock()
	st.syncMu.Unlock()
}

// deferred unlocks hold to function end; ascending order stays clean
func (s *Store) withDefer(st *arrayState) {
	st.reorgMu.Lock()
	defer st.reorgMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
}

func (st *arrayState) hatch() {
	st.ioMu.Lock()
	st.writeMu.Lock() //avlint:allow-lock fixture exercising the escape hatch
	st.writeMu.Unlock()
	st.ioMu.Unlock()
}
