// Package core is a lockorder cycle fixture: two functions whose
// acquisition orders oppose each other form a cycle in the global
// acquisition graph — the classic ABBA deadlock — reported on top of
// the per-site order violation.
package core

import "sync"

type arrayState struct {
	commitMu sync.Mutex
	writeMu  sync.Mutex
}

// commitMu before writeMu: the documented direction
func (st *arrayState) ab() {
	st.commitMu.Lock()
	st.writeMu.Lock()
	st.writeMu.Unlock()
	st.commitMu.Unlock()
}

// writeMu before commitMu: opposes ab, closing the cycle
func (st *arrayState) ba() {
	st.writeMu.Lock()
	st.commitMu.Lock() // want `acquires commitMu while holding writeMu — violates the documented lock order` `lock-order cycle: commitMu -> writeMu -> commitMu`
	st.commitMu.Unlock()
	st.writeMu.Unlock()
}
