// Package core is an errsync fixture: discarded Close/Sync/Flush and
// commit-seam errors on durable paths must be flagged; explicit
// discards and error-returning uses must not.
package core

import (
	"bufio"
	"os"
)

type arrayState struct{ dirty bool }

type Store struct{}

func (s *Store) commitMeta(st *arrayState) error { return nil }

func bad(f *os.File, w *bufio.Writer, s *Store, st *arrayState) {
	f.Close()        // want `Close error discarded on a durable path`
	defer f.Sync()   // want `Sync error discarded on a durable path`
	go f.Close()     // want `Close error discarded on a durable path`
	w.Flush()        // want `Flush error discarded on a durable path`
	s.commitMeta(st) // want `commitMeta error discarded: the metadata commit outcome`
}

func good(f *os.File, s *Store, st *arrayState) error {
	_ = f.Close() // explicit discard is visible and greppable: allowed
	if err := s.commitMeta(st); err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	return f.Sync()
}

func hatch(f *os.File) {
	f.Close() //avlint:allow-err fixture exercising the escape hatch
}

// a Close that returns no error has nothing to discard
type noErrCloser struct{}

func (noErrCloser) Close() {}

func negative(c noErrCloser) {
	c.Close()
}
