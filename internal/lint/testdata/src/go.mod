module example

go 1.22
