// Package core is a ctxcheck fixture: minting context.Background/TODO
// with a caller context already in scope must be flagged; legitimate
// mint points (no context anywhere) must not.
package core

import "context"

// insertCtx mirrors the real staging context: a named type carrying a
// goroutine context, recognized via its context.Context field and its
// niladic context() accessor.
type insertCtx struct {
	goCtx context.Context
	dir   string
}

func (c *insertCtx) context() context.Context {
	if c.goCtx != nil {
		return c.goCtx
	}
	return context.Background() //avlint:allow-ctx fixture: the designated fallback for non-cancellable internal paths
}

func use(context.Context) {}

func badParam(ctx context.Context) {
	use(context.Background()) // want `context\.Background\(\) detaches this path from the caller's cancellation`
	use(ctx)
}

func badTODO(ctx context.Context) {
	use(context.TODO()) // want `context\.TODO\(\) detaches this path from the caller's cancellation`
	use(ctx)
}

func badCarrier(ictx *insertCtx) {
	use(context.Background()) // want `context\.Background\(\) detaches this path from the caller's cancellation`
	_ = ictx.dir
}

func badLocalCarrier() {
	ictx := &insertCtx{}
	_ = ictx
	use(context.Background()) // want `context\.Background\(\) detaches this path from the caller's cancellation`
}

// no context in scope anywhere: the legitimate mint point (public
// non-ctx API surface)
func okNoCtx() {
	use(context.Background())
}

// the definition that mints the context is not itself a detach
func okMint() {
	ctx := context.Background()
	use(ctx)
}

// a context defined AFTER the call was never available to it
func okDefinedLater() {
	use(context.Background())
	ctx := context.TODO()
	use(ctx)
}
