// Package server is a ctxcheck fixture for the handler layer: an
// *http.Request in scope means r.Context() is the context to thread.
package server

import (
	"context"
	"net/http"
)

func handle(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `context\.Background\(\) detaches this path from the caller's cancellation`
	_ = ctx
	_ = w
}

func handleOK(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	_ = ctx
	_ = w
}
