// Package core is a commitpoint fixture: writes to installed arrayMeta
// fields (and installer calls) must be dominated by a commit-seam call;
// staged-clone edits and post-commit installs must not be flagged.
package core

type versionMeta struct{ ID int }

type arrayMeta struct {
	Versions []versionMeta
	NextID   int
	Gen      int
	Format   int
}

type arrayState struct {
	arrayMeta
	dirty bool // runtime state, not part of the durable document
}

type manifest struct{}

func (man *manifest) commit() error { return nil }

type Store struct{ man *manifest }

func (s *Store) commitMeta(st *arrayState, m *arrayMeta) error { return nil }

// installMeta is the designated installer: its own writes ARE the
// install implementation; call sites must be commit-dominated.
//
//avlint:installer
func (st *arrayState) installMeta(m arrayMeta) {
	st.NextID = m.NextID
	st.Versions = m.Versions
	st.Gen = m.Gen
}

func (s *Store) badDirectWrite(st *arrayState) error {
	st.NextID++ // want `write to installed metadata field arrayMeta\.NextID before any commit-seam call`
	m := st.arrayMeta
	return s.commitMeta(st, &m)
}

func (s *Store) badWholeDoc(st *arrayState, m arrayMeta) {
	st.arrayMeta = m // want `write to installed metadata field arrayState\.arrayMeta before any commit-seam call`
}

func (s *Store) badInstallFirst(st *arrayState) error {
	m := st.arrayMeta
	st.installMeta(m) // want `installer installMeta called before any commit-seam call`
	return s.commitMeta(st, &m)
}

// the staged-clone protocol: edit a detached document, commit it,
// install only after the seam succeeded
func (s *Store) good(st *arrayState) error {
	m := st.arrayMeta
	m.NextID++
	m.Versions = append(m.Versions, versionMeta{ID: m.NextID})
	if err := s.commitMeta(st, &m); err != nil {
		return err
	}
	st.installMeta(m)
	return nil
}

// the manifest log's own append is equally a commit seam
func (s *Store) goodManifest(st *arrayState, m arrayMeta) error {
	if err := s.man.commit(); err != nil {
		return err
	}
	st.installMeta(m)
	st.Gen = m.Gen
	return nil
}

// loader/recovery paths carry the escape hatch: disk is the authority
func (s *Store) allowedLoad(st *arrayState) {
	st.Gen = 1 //avlint:allow-install fixture loader: the on-disk document is the authority here
	st.dirty = true
}
