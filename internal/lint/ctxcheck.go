package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxCheck flags context.Background() / context.TODO() calls in
// internal/core and internal/server code that already has a context in
// scope. A handler or hot-path helper that mints a fresh Background
// instead of threading the caller's ctx silently detaches the work
// from cancellation — an abandoned request keeps burning the decode
// pool (the exact hole PR 6's ctx threading closed). "In scope" means
// any enclosing function's receiver or parameter, or an earlier local
// definition, whose type carries a context: context.Context itself,
// *http.Request (r.Context()), or a type with a context.Context field
// or a niladic method returning one (e.g. core's insertCtx).
//
// Escape hatch: //avlint:allow-ctx <reason> — for the designated
// fallback sites (public non-Ctx API wrappers stay unflagged
// naturally, since no context is in scope there).
var CtxCheck = &Analyzer{
	Name:      "ctxcheck",
	Directive: "ctx",
	Doc:       "no context.Background()/TODO() where a caller context is already in scope",
	Applies: func(path string) bool {
		return PathSuffix(path, "internal/core") ||
			PathSuffix(path, "internal/server")
	},
	Run: runCtxCheck,
}

func runCtxCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncCtx(pass, fn)
		}
	}
	_ = info
}

func checkFuncCtx(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	// A context source available from the function's start: receiver or
	// any parameter of a context-carrying type (closures below inherit).
	fromStart := false
	if fn.Recv != nil {
		for _, fld := range fn.Recv.List {
			if t := info.TypeOf(fld.Type); t != nil && carriesContext(t) {
				fromStart = true
			}
		}
	}
	for _, fld := range fn.Type.Params.List {
		if t := info.TypeOf(fld.Type); t != nil && carriesContext(t) {
			fromStart = true
		}
	}
	// Local definitions of context-carrying values (ctx := ...,
	// ictx := &insertCtx{...}): a Background() after one of these has a
	// real context it is ignoring.
	var defs []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.AssignStmt:
			if d.Tok != token.DEFINE {
				return true
			}
			for _, lhs := range d.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if obj := info.Defs[id]; obj != nil && carriesContext(obj.Type()) {
						// the definition counts only once complete: a
						// Background() on this statement's own RHS is the
						// mint that CREATES the context, not a detach
						defs = append(defs, d.End())
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range d.Names {
				if id.Name == "_" {
					continue
				}
				if obj := info.Defs[id]; obj != nil && carriesContext(obj.Type()) {
					defs = append(defs, d.End())
				}
			}
		case *ast.FuncLit:
			// a literal's own params count as definitions at its position
			for _, fld := range d.Type.Params.List {
				if t := info.TypeOf(fld.Type); t != nil && carriesContext(t) {
					defs = append(defs, d.Pos())
				}
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := info.Uses[ident].(*types.PkgName)
		if !ok || pkgName.Imported().Path() != "context" {
			return true
		}
		inScope := fromStart
		for _, d := range defs {
			if d < call.Pos() {
				inScope = true
				break
			}
		}
		if inScope {
			pass.Reportf(call.Pos(), "context.%s() detaches this path from the caller's cancellation — a context is already in scope, thread it through", sel.Sel.Name)
		}
		return true
	})
}

// carriesContext reports whether t provides a context: context.Context
// itself, *http.Request, or a named type with a context.Context field
// or a niladic method returning context.Context.
func carriesContext(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "context" && obj.Name() == "Context":
		return true
	case obj.Pkg().Path() == "net/http" && obj.Name() == "Request":
		return true
	}
	if st, ok := named.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if isContextInterface(st.Field(i).Type()) {
				return true
			}
		}
	}
	for i := 0; i < named.NumMethods(); i++ {
		sig := named.Method(i).Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 1 && isContextInterface(sig.Results().At(0).Type()) {
			return true
		}
	}
	return false
}

func isContextInterface(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
