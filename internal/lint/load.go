package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package loading without golang.org/x/tools (the repo builds offline
// with no external modules): `go list -deps -json` enumerates the
// import graph in dependency order — dependencies strictly precede
// dependents — and go/types checks each package from source. Dependency
// packages are checked with function bodies ignored (only their
// exported API matters); target packages get full bodies and a
// populated types.Info so analyzers can resolve selections.

// Package is one loaded, type-checked package.
type Package struct {
	Path   string // import path
	Dir    string // source directory
	Module string // owning module path ("" for the standard library)
	Target bool   // named by the load patterns (not a dependency)

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Errs holds type errors in target packages. The loader tolerates
	// them (go list -e semantics) so one broken package cannot hide
	// findings elsewhere, but avlint reports them.
	Errs []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	Module     *struct {
		Path string
		Dir  string
	}
	Error *struct {
		Err string
	}
}

// Load type-checks the packages matched by patterns (and, internally,
// everything they import) rooted at dir. It returns every loaded
// module/target package; standard-library dependencies stay internal.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, true, patterns)
	if err != nil {
		return nil, err
	}
	ld := newLoader()
	var out []*Package
	for _, lp := range pkgs {
		p, err := ld.check(lp, !lp.DepOnly)
		if err != nil {
			return nil, fmt.Errorf("lint: load %s: %w", lp.ImportPath, err)
		}
		if p != nil && !lp.DepOnly {
			p.Target = true
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %v", patterns)
	}
	return out, nil
}

// goList runs `go list -e -json` (optionally -deps) and decodes the
// JSON stream. CGO_ENABLED=0 keeps every dependency — the standard
// library included — type-checkable from pure Go source.
func goList(dir string, deps bool, patterns []string) ([]*listPkg, error) {
	args := []string{"list", "-e", "-json"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(outPipe))
	var out []*listPkg
	for dec.More() {
		lp := new(listPkg)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("go list %v: decode: %v", patterns, err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// loader type-checks packages in dependency order, memoizing results so
// every dependent sees the same *types.Package.
type loader struct {
	fset   *token.FileSet
	byPath map[string]*types.Package
	loaded map[string]*Package
}

func newLoader() *loader {
	return &loader{
		fset:   token.NewFileSet(),
		byPath: map[string]*types.Package{"unsafe": types.Unsafe},
		loaded: map[string]*Package{},
	}
}

// Import satisfies types.Importer against the already-checked set —
// dependency order guarantees every import resolves.
func (ld *loader) Import(path string) (*types.Package, error) {
	if p, ok := ld.byPath[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %q not loaded", path)
}

// check parses and type-checks one listed package. full selects a
// complete check with types.Info; otherwise function bodies are
// skipped (dependencies only contribute their API).
func (ld *loader) check(lp *listPkg, full bool) (*Package, error) {
	if lp.ImportPath == "unsafe" {
		return nil, nil
	}
	if _, done := ld.byPath[lp.ImportPath]; done {
		return ld.loaded[lp.ImportPath], nil
	}
	if lp.Error != nil && len(lp.GoFiles) == 0 {
		return nil, fmt.Errorf("%s", lp.Error.Err)
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	p := &Package{
		Path: lp.ImportPath,
		Dir:  lp.Dir,
		Fset: ld.fset,
	}
	if lp.Module != nil {
		p.Module = lp.Module.Path
	}
	conf := types.Config{
		Importer:         ld,
		IgnoreFuncBodies: !full,
		FakeImportC:      true,
		Error:            func(err error) { p.Errs = append(p.Errs, err) },
	}
	if full {
		p.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
	}
	tp, _ := conf.Check(lp.ImportPath, ld.fset, files, p.Info)
	if !full {
		// dependency-package errors are irrelevant as long as the API
		// surface resolved; targets keep theirs for reporting
		p.Errs = nil
	}
	p.Files = files
	p.Types = tp
	ld.byPath[lp.ImportPath] = tp
	ld.loaded[lp.ImportPath] = p
	return p, nil
}

// PathSuffix reports whether the package import path ends in suffix at
// a path-segment boundary ("a/internal/core" matches "internal/core";
// "maternal/core" does not). Analyzers scope themselves with it so the
// same rule fires on "arrayvers/internal/core" and on a fixture
// package named "example/internal/core".
func PathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
