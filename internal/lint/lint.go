// Package lint implements avlint: custom static-analysis passes that
// enforce this repository's own durability, locking, and context
// invariants at authoring time — the rules the crash matrix, the
// transient-fault sweeps, and -race stress only probe dynamically.
// See DESIGN.md "Static analysis" for the rule catalogue and the
// escape-hatch policy.
//
// The framework mirrors the golang.org/x/tools go/analysis shape
// (Analyzer / Pass / Diagnostic, fixture tests driven by "// want"
// comments) but is built on the standard library alone: the repo
// builds offline with zero external modules, and its linters do too.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named rule set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and selects its
	// escape-hatch directive: a finding on a line carrying
	// "//avlint:allow-<Directive> <reason>" is suppressed.
	Name string
	// Directive is the allow-suffix ("os" for fsiocheck's
	// //avlint:allow-os). Defaults to Name when empty.
	Directive string
	Doc       string
	// Applies gates the analyzer to its package scope (the durability
	// boundary, the handler layer, ...). Nil means every package.
	Applies func(pkgPath string) bool
	Run     func(*Pass)
}

func (a *Analyzer) directive() string {
	if a.Directive != "" {
		return a.Directive
	}
	return a.Name
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// A Pass is one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags      *[]Diagnostic
	directives map[string]map[int]string // file -> line -> directive comment text
}

// Reportf records a finding at pos unless the line (or the comment
// line directly above it) carries the analyzer's allow directive with
// a reason. A directive without a reason does not suppress — the whole
// point of the escape hatch is a recorded justification.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowedAt checks the allow directive for the finding's line: either
// trailing on the line itself or on a comment line immediately above.
func (p *Pass) allowedAt(pos token.Position) bool {
	lines, ok := p.directives[pos.Filename]
	if !ok {
		return false
	}
	want := "allow-" + p.Analyzer.directive()
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := lines[line]; ok && directiveMatches(d, want) {
			return true
		}
	}
	return false
}

// directiveMatches reports whether text is "avlint:<name> <reason>"
// with a non-empty reason.
func directiveMatches(text, name string) bool {
	rest, ok := strings.CutPrefix(text, "avlint:"+name)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return false // a longer directive name must not match a shorter one
	}
	return strings.TrimSpace(rest) != ""
}

// FuncDirective reports whether a function's doc comment carries the
// named avlint directive (e.g. "installer" for //avlint:installer).
// Marker directives on declarations need no reason — the doc comment
// they sit in is the explanation.
func FuncDirective(fn *ast.FuncDecl, name string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == "avlint:"+name || strings.HasPrefix(text, "avlint:"+name+" ") {
			return true
		}
	}
	return false
}

// collectDirectives indexes every //avlint: comment by file and line.
// A trailing comment suppresses its own line; a standalone comment
// line suppresses the line below it.
func collectDirectives(pkg *Package) map[string]map[int]string {
	out := map[string]map[int]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "avlint:") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = map[int]string{}
					out[pos.Filename] = m
				}
				m[pos.Line] = text
			}
		}
	}
	return out
}

// Run applies every analyzer to every package it covers and returns
// the findings ordered by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags, directives: dirs}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	return diags
}

// Analyzers returns the full avlint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		FsioCheck,
		LockOrder,
		CommitPoint,
		ErrSync,
		CtxCheck,
	}
}
