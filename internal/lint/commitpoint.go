package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CommitPoint enforces the staged-metadata protocol that fixed the
// phantom-version bug (PR 5): mutators clone the durable document
// (metaClone), edit the clone, commit it through the commit seam
// (commitMeta / saveMeta / saveMetaDoc — a manifest-log append or the
// legacy versions.json rename), and only then install it into the
// live arrayState. Writing an installed arrayMeta field BEFORE the
// commit re-creates the bug class: a failed commit leaves in-memory
// metadata (a selectable phantom version) that a reopen loses.
//
// The analyzer flags every write to an arrayMeta field reached through
// an arrayState value — the live, installed copy — plus every call to
// a designated installer function (declared with //avlint:installer in
// its doc comment), unless a commit-seam call appears earlier in the
// same function body. Writes to a detached *arrayMeta / arrayMeta
// value (the staged clone) are the correct pattern and are never
// flagged. Loaders and recovery paths, where the disk is the
// authority and no commit precedes the install by design, carry
// //avlint:allow-install <reason> on the write.
var CommitPoint = &Analyzer{
	Name:      "commitpoint",
	Directive: "install",
	Doc:       "installed arrayState metadata writes must be dominated by a successful commit-seam call",
	Applies: func(path string) bool {
		return PathSuffix(path, "internal/core")
	},
	Run: runCommitPoint,
}

// commitSeamFuncs are the calls that constitute the metadata commit
// point.
var commitSeamFuncs = map[string]bool{
	"commitMeta":  true,
	"saveMeta":    true,
	"saveMetaDoc": true,
}

// commitSeamCall reports whether the call is a commit-seam invocation:
// one of commitSeamFuncs, or the manifest log's own append
// ((*manifest).commit — the seam commitMeta itself bottoms out in,
// which multi-array commits invoke directly to make N arrays durable
// in one record).
func commitSeamCall(info *types.Info, call *ast.CallExpr) bool {
	name, _ := calleeOf(info, call)
	if commitSeamFuncs[name] {
		return true
	}
	if name != "commit" {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := info.TypeOf(sel.X)
	return recv != nil && isNamed(recv, "manifest")
}

func runCommitPoint(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: collect designated installers (//avlint:installer) — their
	// own writes are the install implementation; what matters is that
	// every CALL site is commit-dominated.
	installers := map[types.Object]bool{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if FuncDirective(fn, "installer") {
				if obj := info.Defs[fn.Name]; obj != nil {
					installers[obj] = true
				}
			}
		}
	}

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if FuncDirective(fn, "installer") {
				continue // the designated install implementation
			}
			checkCommitOrder(pass, fn, installers)
		}
	}
}

// checkCommitOrder walks one function body in source order: install
// events (writes to live arrayMeta fields, calls to installers) are
// legal only after a commit-seam call has been seen.
func checkCommitOrder(pass *Pass, fn *ast.FuncDecl, installers map[types.Object]bool) {
	info := pass.Pkg.Info
	type event struct {
		pos  token.Pos
		kind int // 0 commit, 1 install-write, 2 installer-call
		what string
	}
	var events []event

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			name, obj := calleeOf(info, s)
			if commitSeamCall(info, s) {
				events = append(events, event{s.Pos(), 0, name})
			} else if obj != nil && installers[obj] {
				events = append(events, event{s.Pos(), 2, name})
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if field, ok := installedMetaWrite(info, lhs); ok {
					events = append(events, event{lhs.Pos(), 1, field})
				}
			}
		case *ast.IncDecStmt:
			if field, ok := installedMetaWrite(info, s.X); ok {
				events = append(events, event{s.X.Pos(), 1, field})
			}
		}
		return true
	})

	committed := token.NoPos
	for _, e := range events {
		if e.kind == 0 {
			if committed == token.NoPos || e.pos < committed {
				committed = e.pos
			}
		}
	}
	for _, e := range events {
		if e.kind == 0 {
			continue
		}
		if committed != token.NoPos && e.pos > committed {
			continue // install after the commit point: the correct order
		}
		switch e.kind {
		case 1:
			pass.Reportf(e.pos, "write to installed metadata field %s before any commit-seam call: stage a clone (metaClone), commit it, and install only on success (phantom-version bug class)", e.what)
		case 2:
			pass.Reportf(e.pos, "installer %s called before any commit-seam call: the staged document must be committed first (phantom-version bug class)", e.what)
		}
	}
}

// calleeOf resolves a call's method/function name and object.
func calleeOf(info *types.Info, call *ast.CallExpr) (string, types.Object) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name, info.Uses[fun.Sel]
	case *ast.Ident:
		return fun.Name, info.Uses[fun]
	}
	return "", nil
}

// installedMetaWrite reports whether expr writes an arrayMeta-owned
// field through an arrayState (the live installed copy): st.Versions,
// st.NextID, st.Gen, st.arrayMeta, ... Writes through a detached
// arrayMeta value (a staged clone) do not match.
func installedMetaWrite(info *types.Info, expr ast.Expr) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base := info.TypeOf(sel.X)
	if base == nil || !isNamed(base, "arrayState") {
		return "", false
	}
	if sel.Sel.Name == "arrayMeta" {
		return "arrayState.arrayMeta", true
	}
	// resolve the selected field's owner: only arrayMeta fields (the
	// durable document) are protected; runtime latches and staging
	// state (pending, stageNext, seq, dir, ...) are not
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !fieldOfStruct(v, "arrayMeta") {
		return "", false
	}
	return "arrayMeta." + v.Name(), true
}

// isNamed reports whether t (or its pointee) is a named type with the
// given name.
func isNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// fieldOfStruct reports whether v is a field declared in the named
// struct type (searching the declaring package's scope).
func fieldOfStruct(v *types.Var, structName string) bool {
	if !v.IsField() || v.Pkg() == nil {
		return false
	}
	obj := v.Pkg().Scope().Lookup(structName)
	if obj == nil {
		return false
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == v {
			return true
		}
	}
	return false
}
