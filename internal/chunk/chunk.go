// Package chunk implements the paper's fixed-stride chunking (§II-A,
// §III-B.1): every version of an array is split into identical fixed-size
// storage containers by defining a fixed stride in each dimension. The
// stride is derived from a target chunk byte size: with C = bytes/elem
// cells per chunk, each chunk gets dim = ceil(C^(1/d)) cells per side
// (the paper's 2D example: 1 MB / 8 B = 128 Kcells, dim = ceil(√128K) =
// 358). Chunks are addressed by their origin coordinates, and chunk keys
// follow the paper's file naming, e.g. chunk-0-0-357-357.
//
// Because chunks have a regular structure there is a straightforward
// mapping from cell coordinates to chunks and no indexing is required:
// the chunk holding cell X is at origin floor(X/dim)*dim per dimension.
package chunk

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"arrayvers/internal/array"
)

// DefaultChunkBytes is the paper's default chunk size ("by default we use
// 10 Mbyte chunks", §III-B.1). Experiments override it to keep laptop
// scale.
const DefaultChunkBytes = 10 << 20

// Chunker maps between cell space and chunk space for one array shape.
type Chunker struct {
	shape []int64 // array extents
	side  []int64 // chunk stride per dimension
}

// New derives the chunk stride from a target byte size, following the
// paper's sizing rule. Strides are clamped to the array extents.
func New(shape []int64, elemSize int, chunkBytes int64) (*Chunker, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("chunk: empty shape")
	}
	for i, s := range shape {
		if s <= 0 {
			return nil, fmt.Errorf("chunk: dimension %d has extent %d", i, s)
		}
	}
	if elemSize <= 0 || chunkBytes <= 0 {
		return nil, fmt.Errorf("chunk: elemSize %d and chunkBytes %d must be positive", elemSize, chunkBytes)
	}
	cells := chunkBytes / int64(elemSize)
	if cells < 1 {
		cells = 1
	}
	d := float64(len(shape))
	dim := int64(math.Ceil(math.Pow(float64(cells), 1/d)))
	if dim < 1 {
		dim = 1
	}
	side := make([]int64, len(shape))
	for i, s := range shape {
		side[i] = dim
		if side[i] > s {
			side[i] = s
		}
	}
	return &Chunker{shape: append([]int64(nil), shape...), side: side}, nil
}

// NewWithSide builds a Chunker with an explicit per-dimension stride.
func NewWithSide(shape, side []int64) (*Chunker, error) {
	if len(shape) == 0 || len(shape) != len(side) {
		return nil, fmt.Errorf("chunk: shape/side length mismatch")
	}
	for i := range shape {
		if shape[i] <= 0 || side[i] <= 0 {
			return nil, fmt.Errorf("chunk: non-positive extent or stride in dimension %d", i)
		}
	}
	return &Chunker{shape: append([]int64(nil), shape...), side: append([]int64(nil), side...)}, nil
}

// Shape returns the array extents.
func (c *Chunker) Shape() []int64 { return c.shape }

// Side returns the chunk stride per dimension.
func (c *Chunker) Side() []int64 { return c.side }

// NDim returns the dimensionality.
func (c *Chunker) NDim() int { return len(c.shape) }

// CountPerDim returns the number of chunks along each dimension.
func (c *Chunker) CountPerDim() []int64 {
	out := make([]int64, len(c.shape))
	for i := range c.shape {
		out[i] = (c.shape[i] + c.side[i] - 1) / c.side[i]
	}
	return out
}

// Count returns the total number of chunks.
func (c *Chunker) Count() int64 {
	n := int64(1)
	for _, k := range c.CountPerDim() {
		n *= k
	}
	return n
}

// ChunkOf returns the origin of the chunk containing the given cell,
// i.e. floor(X/dim)*dim per dimension.
func (c *Chunker) ChunkOf(cell []int64) []int64 {
	origin := make([]int64, len(cell))
	for i := range cell {
		origin[i] = cell[i] / c.side[i] * c.side[i]
	}
	return origin
}

// Box returns the cell region covered by the chunk at the given origin,
// clipped to the array bounds (edge chunks may be smaller).
func (c *Chunker) Box(origin []int64) array.Box {
	hi := make([]int64, len(origin))
	for i := range origin {
		hi[i] = origin[i] + c.side[i]
		if hi[i] > c.shape[i] {
			hi[i] = c.shape[i]
		}
	}
	return array.NewBox(origin, hi)
}

// All returns the origins of every chunk in row-major order.
func (c *Chunker) All() [][]int64 {
	return c.Overlapping(array.BoxOf(c.shape))
}

// Overlapping returns the origins of every chunk that intersects the
// query box, in row-major order. This is the chunk-selection step of the
// select path (Fig. 1).
func (c *Chunker) Overlapping(q array.Box) [][]int64 {
	full := array.BoxOf(c.shape)
	q = q.Intersect(full)
	if q.Empty() {
		return nil
	}
	ndim := len(c.shape)
	lo := make([]int64, ndim)
	hi := make([]int64, ndim) // inclusive chunk-origin bounds
	for i := 0; i < ndim; i++ {
		lo[i] = q.Lo[i] / c.side[i] * c.side[i]
		hi[i] = (q.Hi[i] - 1) / c.side[i] * c.side[i]
	}
	var out [][]int64
	cur := append([]int64(nil), lo...)
	for {
		out = append(out, append([]int64(nil), cur...))
		i := ndim - 1
		for ; i >= 0; i-- {
			cur[i] += c.side[i]
			if cur[i] <= hi[i] {
				break
			}
			cur[i] = lo[i]
		}
		if i < 0 {
			return out
		}
	}
}

// Key renders a chunk origin as the paper's chunk file stem, e.g.
// "chunk-0-0-357-357" for a 2D chunk spanning [0,357]x[0,357]. The upper
// coordinates are the inclusive cell bounds of the (unclipped) stride.
func (c *Chunker) Key(origin []int64) string {
	var b strings.Builder
	b.WriteString("chunk")
	for _, o := range origin {
		fmt.Fprintf(&b, "-%d", o)
	}
	for i, o := range origin {
		fmt.Fprintf(&b, "-%d", o+c.side[i]-1)
	}
	return b.String()
}

// ParseKey recovers the chunk origin from a Key-formatted string.
func ParseKey(key string, ndim int) ([]int64, error) {
	parts := strings.Split(key, "-")
	if len(parts) != 1+2*ndim || parts[0] != "chunk" {
		return nil, fmt.Errorf("chunk: malformed key %q for %d dims", key, ndim)
	}
	origin := make([]int64, ndim)
	for i := 0; i < ndim; i++ {
		v, err := strconv.ParseInt(parts[1+i], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("chunk: malformed key %q: %v", key, err)
		}
		origin[i] = v
	}
	return origin, nil
}

// Extract slices the chunk at the given origin out of a full dense array.
func (c *Chunker) Extract(a *array.Dense, origin []int64) (*array.Dense, error) {
	return a.Slice(c.Box(origin))
}

// ExtractSparse slices the chunk at the given origin out of a full sparse
// array.
func (c *Chunker) ExtractSparse(a *array.Sparse, origin []int64) (*array.Sparse, error) {
	return a.Slice(c.Box(origin))
}

// Assemble writes a chunk's contents back into a full-size dense array.
func (c *Chunker) Assemble(dst *array.Dense, origin []int64, chunkData *array.Dense) error {
	return dst.WriteRegion(origin, chunkData)
}
