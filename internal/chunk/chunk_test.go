package chunk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"arrayvers/internal/array"
)

func TestPaperSizingExample(t *testing.T) {
	// "in a 2D array with 8 byte cells and 1 Mbyte chunks, the system
	// would store 1 Mbyte / 8 bytes = 128 kcells/chunk. Hence each chunk
	// would have dimensionality dim = ceil(sqrt(128K)) = 358 units on a
	// side." (§III-B.1)
	c, err := New([]int64{10000, 10000}, 8, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if c.Side()[0] != 363 && c.Side()[0] != 358 {
		// ceil(sqrt(131072)) = ceil(362.04) = 363; the paper's 358 comes
		// from sqrt(128000). Accept the exact computation.
		t.Fatalf("side = %v", c.Side())
	}
	if c.Side()[0] != c.Side()[1] {
		t.Fatal("2D strides differ")
	}
}

func TestChunkOfMatchesPaperFormula(t *testing.T) {
	c, _ := NewWithSide([]int64{1000, 1000}, []int64{358, 358})
	// fX = floor(X/dim)*dim
	origin := c.ChunkOf([]int64{400, 700})
	if origin[0] != 358 || origin[1] != 358 {
		t.Fatalf("origin = %v", origin)
	}
	origin = c.ChunkOf([]int64{0, 357})
	if origin[0] != 0 || origin[1] != 0 {
		t.Fatalf("origin = %v", origin)
	}
}

func TestKeyFormat(t *testing.T) {
	c, _ := NewWithSide([]int64{1000, 1000}, []int64{358, 358})
	// paper: chunk-0-0-357-357.dat
	if got := c.Key([]int64{0, 0}); got != "chunk-0-0-357-357" {
		t.Fatalf("key = %q", got)
	}
	if got := c.Key([]int64{358, 0}); got != "chunk-358-0-715-357" {
		t.Fatalf("key = %q", got)
	}
	origin, err := ParseKey("chunk-358-0-715-357", 2)
	if err != nil {
		t.Fatal(err)
	}
	if origin[0] != 358 || origin[1] != 0 {
		t.Fatalf("parsed origin = %v", origin)
	}
	if _, err := ParseKey("chunk-1-2", 2); err == nil {
		t.Error("short key accepted")
	}
	if _, err := ParseKey("blob-0-0-1-1", 2); err == nil {
		t.Error("wrong prefix accepted")
	}
	if _, err := ParseKey("chunk-a-0-1-1", 2); err == nil {
		t.Error("non-numeric key accepted")
	}
}

func TestCounts(t *testing.T) {
	c, _ := NewWithSide([]int64{10, 25}, []int64{4, 10})
	per := c.CountPerDim()
	if per[0] != 3 || per[1] != 3 {
		t.Fatalf("countPerDim = %v", per)
	}
	if c.Count() != 9 {
		t.Fatalf("count = %d", c.Count())
	}
	if got := len(c.All()); got != 9 {
		t.Fatalf("All() returned %d chunks", got)
	}
}

func TestEdgeChunksClipped(t *testing.T) {
	c, _ := NewWithSide([]int64{10, 25}, []int64{4, 10})
	box := c.Box([]int64{8, 20})
	if box.Hi[0] != 10 || box.Hi[1] != 25 {
		t.Fatalf("edge box = %v", box)
	}
	if box.NumCells() != 2*5 {
		t.Fatalf("edge box cells = %d", box.NumCells())
	}
}

func TestOverlapping(t *testing.T) {
	c, _ := NewWithSide([]int64{100, 100}, []int64{50, 50})
	got := c.Overlapping(array.NewBox([]int64{30, 10}, []int64{70, 45}))
	// rows 30..69 span both row-chunks; cols 10..44 span only col-chunk 0
	if len(got) != 2 {
		t.Fatalf("overlapping = %v", got)
	}
	if got[0][0] != 0 || got[0][1] != 0 || got[1][0] != 50 || got[1][1] != 0 {
		t.Fatalf("overlapping = %v", got)
	}
	// full-array query touches all chunks
	if len(c.Overlapping(array.BoxOf(c.Shape()))) != 4 {
		t.Fatal("full query didn't touch all chunks")
	}
	// out-of-range query touches none
	if len(c.Overlapping(array.NewBox([]int64{200, 200}, []int64{300, 300}))) != 0 {
		t.Fatal("out-of-range query touched chunks")
	}
	// single-cell query touches exactly one
	if len(c.Overlapping(array.NewBox([]int64{99, 99}, []int64{100, 100}))) != 1 {
		t.Fatal("single-cell query wrong")
	}
}

func TestPartitionInvariant(t *testing.T) {
	// Chunks must form a disjoint cover of the array: every cell belongs
	// to exactly one chunk box.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := []int64{int64(rng.Intn(20) + 1), int64(rng.Intn(20) + 1)}
		side := []int64{int64(rng.Intn(7) + 1), int64(rng.Intn(7) + 1)}
		c, err := NewWithSide(shape, side)
		if err != nil {
			return false
		}
		covered := map[[2]int64]int{}
		for _, origin := range c.All() {
			box := c.Box(origin)
			for r := box.Lo[0]; r < box.Hi[0]; r++ {
				for col := box.Lo[1]; col < box.Hi[1]; col++ {
					covered[[2]int64{r, col}]++
				}
			}
		}
		if int64(len(covered)) != shape[0]*shape[1] {
			return false
		}
		for _, cnt := range covered {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExtractAssembleRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := array.MustDense(array.Int32, []int64{23, 17})
	for i := int64(0); i < a.NumCells(); i++ {
		a.SetBits(i, int64(rng.Intn(10000)))
	}
	c, _ := NewWithSide(a.Shape(), []int64{7, 5})
	out := array.MustDense(array.Int32, a.Shape())
	for _, origin := range c.All() {
		piece, err := c.Extract(a, origin)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Assemble(out, origin, piece); err != nil {
			t.Fatal(err)
		}
	}
	if !out.Equal(a) {
		t.Fatal("extract/assemble roundtrip mismatch")
	}
}

func TestExtractSparse(t *testing.T) {
	s := array.MustSparse(array.Int32, []int64{10, 10}, 0)
	s.SetBits(0, 1)  // (0,0)
	s.SetBits(57, 2) // (5,7)
	s.SetBits(99, 3) // (9,9)
	c, _ := NewWithSide(s.Shape(), []int64{5, 5})
	piece, err := c.ExtractSparse(s, []int64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if piece.NNZ() != 2 {
		t.Fatalf("sparse chunk NNZ = %d", piece.NNZ())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 4, 1024); err == nil {
		t.Error("empty shape accepted")
	}
	if _, err := New([]int64{0}, 4, 1024); err == nil {
		t.Error("zero extent accepted")
	}
	if _, err := New([]int64{4}, 0, 1024); err == nil {
		t.Error("zero elem accepted")
	}
	if _, err := New([]int64{4}, 4, 0); err == nil {
		t.Error("zero chunkBytes accepted")
	}
	if _, err := NewWithSide([]int64{4}, []int64{1, 2}); err == nil {
		t.Error("mismatched side accepted")
	}
	if _, err := NewWithSide([]int64{4}, []int64{0}); err == nil {
		t.Error("zero stride accepted")
	}
}

func TestTinyChunkBytes(t *testing.T) {
	// chunkBytes smaller than one cell must still produce 1-cell chunks
	c, err := New([]int64{4, 4}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != 16 {
		t.Fatalf("count = %d", c.Count())
	}
}
