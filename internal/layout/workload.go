package layout

import (
	"arrayvers/internal/matmat"
)

// Workload-aware layouts (§IV-D): given a priori knowledge of the query
// workload, minimize total I/O — the bytes of every version that must be
// read to answer the queries, CostΛ(q) = Σ_{Vi ∈ VΛ(q)} SizeΛ(Vi) — rather
// than bytes on disk. "Layouts yielding low I/O costs will typically
// materialize versions that are frequently accessed."

// Query is one workload element: the versions it accesses directly,
// weighted by its frequency. A snapshot query accesses one version; a
// range query accesses a contiguous run.
type Query struct {
	Versions []int
	Weight   float64
}

// Snapshot builds a single-version query.
func Snapshot(v int, w float64) Query { return Query{Versions: []int{v}, Weight: w} }

// Range builds a query over versions lo..hi inclusive.
func Range(lo, hi int, w float64) Query {
	var vs []int
	for v := lo; v <= hi; v++ {
		vs = append(vs, v)
	}
	return Query{Versions: vs, Weight: w}
}

// IOCost evaluates the paper's workload cost of a layout: the weighted
// sum over queries of the total encoded size of every version in the
// query's cover set VΛ(q).
func IOCost(l Layout, mm *matmat.Matrix, workload []Query) float64 {
	total := 0.0
	for _, q := range workload {
		for _, v := range l.CoverSet(q.Versions) {
			total += q.Weight * float64(l.EncodedSize(mm, v))
		}
	}
	return total
}

// CombinedCost blends I/O cost with storage cost; spaceWeight 0 optimizes
// pure I/O, large spaceWeight approaches the space-optimal objective.
func CombinedCost(l Layout, mm *matmat.Matrix, workload []Query, spaceWeight float64) float64 {
	return IOCost(l, mm, workload) + spaceWeight*float64(l.StorageCost(mm))
}

// WorkloadAware computes a layout with low I/O cost for the given
// workload. It implements the paper's divide-and-conquer heuristic in a
// local-search form: start from the space-optimal layout plus a variant
// that materializes every queried segment's hot spots, then greedily
// reassign single versions (to materialization or a different delta
// parent) while the workload cost improves. The search space visited is
// exactly the set of "interesting" layouts §IV-D enumerates — segment
// combinations arise as sequences of single-parent moves.
func WorkloadAware(mm *matmat.Matrix, workload []Query) Layout {
	best := Algorithm2(mm)
	bestCost := IOCost(best, mm, workload)

	// seed 2: materialize the most frequently accessed version of every
	// query, then re-run greedy improvement from there too.
	seed := Algorithm2(mm)
	freq := accessFrequencies(mm.N, workload)
	hottest := 0
	for i := range freq {
		if freq[i] > freq[hottest] {
			hottest = i
		}
	}
	if !seed.Materialized(hottest) {
		seed.Parent[hottest] = hottest
	}
	if seed.IsValid() {
		if c := IOCost(seed, mm, workload); c < bestCost {
			best, bestCost = seed, c
		}
	}
	// seed 3: the §IV-D segment divide-and-conquer construction.
	if seg := SegmentHeuristic(mm, workload); seg.IsValid() {
		if c := IOCost(seg, mm, workload); c < bestCost {
			best, bestCost = seg, c
		}
	}

	best = greedyImprove(best, mm, workload)
	return best
}

// greedyImprove hill-climbs over single-version parent reassignments.
func greedyImprove(l Layout, mm *matmat.Matrix, workload []Query) Layout {
	n := mm.N
	cur := l.Clone()
	curCost := IOCost(cur, mm, workload)
	for pass := 0; pass < 4*n; pass++ {
		improved := false
		for i := 0; i < n; i++ {
			orig := cur.Parent[i]
			bestP, bestC := orig, curCost
			for p := 0; p < n; p++ {
				if p == orig {
					continue
				}
				cur.Parent[i] = p
				if !cur.IsValid() {
					continue
				}
				if c := IOCost(cur, mm, workload); c < bestC {
					bestP, bestC = p, c
				}
			}
			cur.Parent[i] = bestP
			if bestP != orig {
				curCost = bestC
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

// WorkloadExhaustive finds the I/O-optimal layout by enumerating all
// valid layouts (via the augmented-graph Prüfer bijection). Exponential;
// for tests and tiny version counts only.
func WorkloadExhaustive(mm *matmat.Matrix, workload []Query) Layout {
	return Exhaustive(mm.N, func(l Layout) int64 {
		// scale to preserve float ordering in an int64 comparator
		return int64(IOCost(l, mm, workload) * 16)
	})
}

// accessFrequencies sums query weights per version.
func accessFrequencies(n int, workload []Query) []float64 {
	freq := make([]float64, n)
	for _, q := range workload {
		for _, v := range q.Versions {
			if v >= 0 && v < n {
				freq[v] += q.Weight
			}
		}
	}
	return freq
}

// HeadBiasedLayout implements the §IV-E special case for workloads
// heavily biased towards the latest version: materialize the newest
// version and store all earlier versions in the most compact way
// possible given that choice (a constrained MST where version n-1 is the
// single root).
func HeadBiasedLayout(mm *matmat.Matrix) Layout {
	n := mm.N
	l := NewLayout(n)
	if n == 1 {
		return l
	}
	parentInTree := primMST(n, func(i, j int) int64 { return mm.Cost[i][j] })
	orientFromRoots(parentInTree, []int{n - 1}, l.Parent)
	return l
}

// SegmentHeuristic is the paper's divide-and-conquer construction for
// workloads of overlapping range queries (§IV-D): the version axis is
// partitioned into segments at every query boundary; each segment is
// first stored in its most compact form (a spanning tree over the
// segment with one materialization), and adjacent segments are then
// combined — a segment's root is re-encoded as a delta against its
// neighbor when that lowers the workload's I/O cost. Following the
// paper's enumeration of "interesting" layouts, the fully-combined
// most-compact layout (its case iv, best "where materializations are
// very expensive") competes as a candidate, and the cheapest on the
// workload wins.
func SegmentHeuristic(mm *matmat.Matrix, workload []Query) Layout {
	seg := segmentedLayout(mm, workload)
	combined := Optimal(mm) // §IV-D case (iv): V1 ∪ V2 stored most compactly
	if IOCost(combined, mm, workload) < IOCost(seg, mm, workload) {
		return combined
	}
	return seg
}

func segmentedLayout(mm *matmat.Matrix, workload []Query) Layout {
	n := mm.N
	// 1. delineate segments at query boundaries
	cut := make([]bool, n+1)
	cut[0], cut[n] = true, true
	for _, q := range workload {
		if len(q.Versions) == 0 {
			continue
		}
		lo, hi := q.Versions[0], q.Versions[0]
		for _, v := range q.Versions {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo >= 0 && lo <= n {
			cut[lo] = true
		}
		if hi+1 >= 0 && hi+1 <= n {
			cut[hi+1] = true
		}
	}
	// 2. store each segment most compactly in isolation
	l := NewLayout(n)
	type segment struct{ lo, hi int } // [lo, hi)
	var segs []segment
	start := 0
	for end := 1; end <= n; end++ {
		if !cut[end] {
			continue
		}
		segs = append(segs, segment{start, end})
		applySegmentOptimal(mm, l.Parent, start, end)
		start = end
	}
	// 3. combine adjacent segments where re-encoding a segment root as a
	// delta against the neighboring segment lowers the workload cost
	cost := IOCost(l, mm, workload)
	for i := 1; i < len(segs); i++ {
		seg := segs[i]
		for r := seg.lo; r < seg.hi; r++ {
			if !l.Materialized(r) {
				continue
			}
			// candidate: hang this root off the last version of the
			// previous segment
			prevEnd := segs[i-1].hi - 1
			trial := l.Clone()
			trial.Parent[r] = prevEnd
			if !trial.IsValid() {
				continue
			}
			if c := IOCost(trial, mm, workload); c < cost {
				l, cost = trial, c
			}
		}
	}
	return l
}

// applySegmentOptimal writes the space-optimal layout of versions
// [lo, hi) into parent, with all delta bases inside the segment.
func applySegmentOptimal(mm *matmat.Matrix, parent []int, lo, hi int) {
	k := hi - lo
	sub := matmat.New(k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			sub.Cost[i][j] = mm.Cost[lo+i][lo+j]
		}
	}
	subLayout := Optimal(sub)
	for i := 0; i < k; i++ {
		if subLayout.Parent[i] == i {
			parent[lo+i] = lo + i
		} else {
			parent[lo+i] = lo + subLayout.Parent[i]
		}
	}
}
