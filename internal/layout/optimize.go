package layout

import (
	"arrayvers/internal/matmat"
)

// Space-optimal layout algorithms (§IV-C).

// Algorithm1 is the paper's Algorithm 1: build the complete undirected
// materialization graph over the versions with delta weights, take its
// minimum spanning tree, materialize the version with the cheapest
// materialization cost, and orient all other versions as deltas along the
// tree away from that root. Optimal when every materialization is more
// expensive than every delta.
//
// (The paper cites the Karger–Klein–Tarjan randomized linear-time MST;
// we use deterministic Prim in O(n²), which returns the same tree —
// n here is a version count, not a data size.)
func Algorithm1(mm *matmat.Matrix) Layout {
	n := mm.N
	l := NewLayout(n)
	if n == 1 {
		return l
	}
	parentInTree := primMST(n, func(i, j int) int64 { return mm.Cost[i][j] })
	// cheapest materialization as root
	root := 0
	for i := 1; i < n; i++ {
		if mm.Cost[i][i] < mm.Cost[root][root] {
			root = i
		}
	}
	orientFromRoots(parentInTree, []int{root}, l.Parent)
	return l
}

// Algorithm2 is the paper's Algorithm 2 (Appendix B): run Algorithm 1,
// then repeatedly split the tree by materializing any version whose
// materialization is cheaper than the most expensive delta on its path to
// a root, removing that delta. This handles the case where materializing
// more than one version yields a more compact layout.
func Algorithm2(mm *matmat.Matrix) Layout {
	l := Algorithm1(mm)
	n := mm.N
	for {
		improved := false
		for i := 0; i < n; i++ {
			if l.Materialized(i) {
				continue
			}
			// find the most expensive delta on the path from i to its root
			// that costs more than materializing i
			path := l.PathToRoot(i)
			bestGain := int64(0)
			toReplace := -1
			for _, v := range path {
				if l.Materialized(v) {
					break
				}
				deltaSize := mm.Cost[v][l.Parent[v]]
				if deltaSize > mm.Cost[i][i] && deltaSize-mm.Cost[i][i] > bestGain {
					bestGain = deltaSize - mm.Cost[i][i]
					toReplace = v
				}
			}
			if toReplace < 0 {
				continue
			}
			// Split: materialize i and re-hang the edge that previously
			// encoded toReplace. Removing toReplace's delta would orphan
			// the subtree between i and toReplace, so instead we reverse
			// the arcs on the path from i up to toReplace and materialize
			// i; every version keeps exactly one incoming arc and the
			// expensive delta disappears.
			reversePathAndMaterialize(l.Parent, i, toReplace)
			improved = true
		}
		if !improved {
			return l
		}
	}
}

// reversePathAndMaterialize reverses parent arcs along the path
// i → ... → stop and materializes i. After the call, stop's old incoming
// delta (the expensive one) is gone: stop is now encoded against the next
// node down the reversed path.
func reversePathAndMaterialize(parent []int, i, stop int) {
	prev := i
	cur := parent[i]
	parent[i] = i
	for prev != stop {
		next := parent[cur]
		parent[cur] = prev
		prev = cur
		cur = next
	}
}

// Optimal computes the exactly space-optimal valid layout by exploiting
// the bijection between valid layouts and spanning trees of the augmented
// graph: add a virtual node V whose edge to version i weighs MM(i,i);
// every spanning tree of the augmented complete graph corresponds to a
// valid layout of the same total cost (versions adjacent to V are
// materialized, all other tree edges are deltas oriented away from V).
// The MST of the augmented graph is therefore the space-optimal layout,
// generalizing Algorithms 1 and 2.
func Optimal(mm *matmat.Matrix) Layout {
	n := mm.N
	// node n is the virtual root
	weight := func(i, j int) int64 {
		switch {
		case i == n:
			return mm.Cost[j][j]
		case j == n:
			return mm.Cost[i][i]
		default:
			return mm.Cost[i][j]
		}
	}
	parentInTree := primMST(n+1, weight)
	l := NewLayout(n)
	// orient away from the virtual root: a version whose tree parent is n
	// is materialized; others delta against their tree parent.
	// parentInTree was built from node 0; rebuild adjacency and BFS from n.
	adj := make([][]int, n+1)
	for v := 1; v <= n; v++ {
		u := parentInTree[v]
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	visited := make([]bool, n+1)
	queue := []int{n}
	visited[n] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if visited[v] {
				continue
			}
			visited[v] = true
			if u == n {
				l.Parent[v] = v // materialized
			} else {
				l.Parent[v] = u
			}
			queue = append(queue, v)
		}
	}
	return l
}

// LinearChain is the baseline the paper's §V-D compares against: the
// head version is materialized and every earlier version is delta'ed
// against its successor ("a simple linear chain of deltas differenced
// backwards in time from the most recently added version").
func LinearChain(n int) Layout {
	l := NewLayout(n)
	for i := 0; i < n-1; i++ {
		l.Parent[i] = i + 1
	}
	if n > 0 {
		l.Parent[n-1] = n - 1
	}
	return l
}

// primMST computes a minimum spanning tree of the complete graph on
// nodes 0..n-1 under the given symmetric weight function, returning the
// tree-parent of every node (node 0 is its own parent).
func primMST(n int, weight func(i, j int) int64) []int {
	const inf = int64(1) << 62
	parent := make([]int, n)
	best := make([]int64, n)
	inTree := make([]bool, n)
	for i := range best {
		best[i] = inf
		parent[i] = 0
	}
	best[0] = 0
	for iter := 0; iter < n; iter++ {
		u := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (u < 0 || best[v] < best[u]) {
				u = v
			}
		}
		inTree[u] = true
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if w := weight(u, v); w < best[v] {
					best[v] = w
					parent[v] = u
				}
			}
		}
	}
	parent[0] = 0
	return parent
}

// orientFromRoots sets layout parents by BFS over the undirected tree
// defined by treeParent, starting from the given roots (which become
// materialized).
func orientFromRoots(treeParent []int, roots []int, out []int) {
	n := len(treeParent)
	adj := make([][]int, n)
	for v := 1; v < n; v++ {
		u := treeParent[v]
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	visited := make([]bool, n)
	var queue []int
	for _, r := range roots {
		out[r] = r
		visited[r] = true
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !visited[v] {
				visited[v] = true
				out[v] = u
				queue = append(queue, v)
			}
		}
	}
}

// Exhaustive enumerates every valid layout via Prüfer sequences over the
// augmented graph (n+1 nodes have (n+1)^(n-1) spanning trees; the paper
// notes this count via Cayley's formula) and returns the one with minimal
// storage cost. Exponential — intended as ground truth in tests and for
// tiny workload-aware searches. Returns the best layout under the given
// cost function.
func Exhaustive(n int, cost func(Layout) int64) Layout {
	best := NewLayout(n)
	bestCost := cost(best)
	if n == 1 {
		return best
	}
	// Prüfer sequences of length n-1 over n+1 labels enumerate all
	// spanning trees of the complete graph on n+1 nodes.
	seq := make([]int, n-1)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == len(seq) {
			l := layoutFromPrufer(seq, n)
			if c := cost(l); c < bestCost {
				bestCost = c
				best = l.Clone()
			}
			return
		}
		for v := 0; v <= n; v++ {
			seq[pos] = v
			rec(pos + 1)
		}
	}
	rec(0)
	return best
}

// layoutFromPrufer decodes a Prüfer sequence over n+1 labels (0..n, where
// n is the virtual root) into a layout.
func layoutFromPrufer(seq []int, n int) Layout {
	total := n + 1
	degree := make([]int, total)
	for i := 0; i < total; i++ {
		degree[i] = 1
	}
	for _, v := range seq {
		degree[v]++
	}
	type edge struct{ u, v int }
	var edges []edge
	used := make([]bool, total)
	for _, v := range seq {
		for u := 0; u < total; u++ {
			if !used[u] && degree[u] == 1 {
				edges = append(edges, edge{u, v})
				used[u] = true
				degree[v]--
				break
			}
		}
	}
	var last []int
	for u := 0; u < total; u++ {
		if !used[u] && degree[u] == 1 {
			last = append(last, u)
		}
	}
	edges = append(edges, edge{last[0], last[1]})
	// orient away from virtual root n
	adj := make([][]int, total)
	for _, e := range edges {
		adj[e.u] = append(adj[e.u], e.v)
		adj[e.v] = append(adj[e.v], e.u)
	}
	l := NewLayout(n)
	visited := make([]bool, total)
	queue := []int{n}
	visited[n] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if visited[v] {
				continue
			}
			visited[v] = true
			if u == n {
				l.Parent[v] = v
			} else {
				l.Parent[v] = u
			}
			queue = append(queue, v)
		}
	}
	return l
}
