// Package layout implements the paper's version-layout model and
// optimization algorithms (§IV): deciding, for each version in a series,
// whether to materialize it or to delta-encode it against another
// version.
//
// A layout assigns every version exactly one incoming arc — a self-arc
// (materialization) or an arc from another version (delta). A layout is
// valid iff every version can be reconstructed, which the paper
// characterizes as: every connected component has exactly one
// materialized version and the delta arcs form no (undirected) cycle
// (Observations 1–4). Valid layouts are therefore in bijection with
// spanning trees of the "augmented" graph that adds one virtual node
// whose edge to version i costs MM(i,i); this bijection powers both the
// exact optimizer and the exhaustive ground truth used in tests.
package layout

import (
	"fmt"

	"arrayvers/internal/matmat"
)

// Layout encodes how each of n versions is stored. Parent[i] == i means
// version i is materialized; otherwise version i is stored as a delta
// against version Parent[i].
type Layout struct {
	Parent []int
}

// NewLayout returns an all-materialized layout of n versions.
func NewLayout(n int) Layout {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return Layout{Parent: p}
}

// N returns the number of versions.
func (l Layout) N() int { return len(l.Parent) }

// Clone returns a deep copy.
func (l Layout) Clone() Layout {
	return Layout{Parent: append([]int(nil), l.Parent...)}
}

// Materialized reports whether version i is stored in native form.
func (l Layout) Materialized(i int) bool { return l.Parent[i] == i }

// Roots returns the indices of all materialized versions.
func (l Layout) Roots() []int {
	var roots []int
	for i, p := range l.Parent {
		if p == i {
			roots = append(roots, i)
		}
	}
	return roots
}

// Validate checks that the layout is structurally sound and satisfies the
// paper's validity conditions: every version reaches a materialized
// version by following parent arcs without revisiting a node
// (equivalently, no cycle of length > 1; Observation 2).
func (l Layout) Validate() error {
	n := len(l.Parent)
	if n == 0 {
		return fmt.Errorf("layout: empty")
	}
	for i, p := range l.Parent {
		if p < 0 || p >= n {
			return fmt.Errorf("layout: version %d has out-of-range parent %d", i, p)
		}
	}
	// Each node has exactly one outgoing parent pointer, so the layout is
	// a functional graph; it is valid iff every walk terminates at a
	// self-loop (a materialized version) rather than re-entering itself.
	state := make([]int8, n) // 0 unvisited, 1 in progress, 2 reaches a root
	for i := range l.Parent {
		if state[i] != 0 {
			continue
		}
		var path []int
		j := i
		for {
			if state[j] == 2 {
				break // joins a walk already known to reach a root
			}
			if state[j] == 1 {
				return fmt.Errorf("layout: cycle through version %d", j)
			}
			state[j] = 1
			path = append(path, j)
			if l.Parent[j] == j {
				break // materialized root
			}
			j = l.Parent[j]
		}
		for _, k := range path {
			state[k] = 2
		}
	}
	return nil
}

// IsValid reports whether the layout satisfies Observations 3–4.
func (l Layout) IsValid() bool { return l.Validate() == nil }

// PathToRoot returns the versions on the reconstruction path of i,
// starting at i and ending at its materialized root. Returns nil if the
// walk exceeds n steps (invalid layout).
func (l Layout) PathToRoot(i int) []int {
	n := len(l.Parent)
	path := []int{i}
	for steps := 0; l.Parent[i] != i; steps++ {
		if steps > n {
			return nil
		}
		i = l.Parent[i]
		path = append(path, i)
	}
	return path
}

// StorageCost returns the total bytes of the layout under the
// materialization matrix: MM(i,i) for materialized versions, MM(i,p) for
// delta-encoded ones.
func (l Layout) StorageCost(mm *matmat.Matrix) int64 {
	total := int64(0)
	for i, p := range l.Parent {
		total += mm.Cost[i][p]
	}
	return total
}

// EncodedSize returns the bytes used to store version i under the layout.
func (l Layout) EncodedSize(mm *matmat.Matrix, i int) int64 {
	return mm.Cost[i][l.Parent[i]]
}

// CoverSet returns the set of versions that must be read from disk to
// reconstruct all versions in `accessed`: the union of the accessed
// versions and every version on their reconstruction paths (the paper's
// VΛ(q), §IV-D).
func (l Layout) CoverSet(accessed []int) []int {
	seen := make([]bool, len(l.Parent))
	var out []int
	for _, v := range accessed {
		for _, u := range l.PathToRoot(v) {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	return out
}

// Equal reports structural equality.
func (l Layout) Equal(o Layout) bool {
	if len(l.Parent) != len(o.Parent) {
		return false
	}
	for i := range l.Parent {
		if l.Parent[i] != o.Parent[i] {
			return false
		}
	}
	return true
}

// IsLinearChain reports whether the layout is a single chain delta'ed
// backwards from one materialized head (each version's parent is the
// next version, with the last materialized).
func (l Layout) IsLinearChain() bool {
	n := len(l.Parent)
	roots := l.Roots()
	if len(roots) != 1 {
		return false
	}
	// count in-degrees of the delta arcs; a chain has in-degree <= 1
	// everywhere and forms one path.
	indeg := make([]int, n)
	for i, p := range l.Parent {
		if p != i {
			indeg[p]++
		}
	}
	ends := 0
	for i := range indeg {
		if indeg[i] > 1 {
			return false
		}
		if indeg[i] == 0 {
			ends++
		}
	}
	return ends == 1
}
