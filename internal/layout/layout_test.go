package layout

import (
	"math/rand"
	"testing"

	"arrayvers/internal/matmat"
)

// randomMatrix builds a random symmetric materialization matrix.
func randomMatrix(n int, seed int64, cheapDeltas bool) *matmat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := matmat.New(n)
	for i := 0; i < n; i++ {
		m.Cost[i][i] = int64(rng.Intn(900) + 100) // 100..999
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			var v int64
			if cheapDeltas {
				v = int64(rng.Intn(90) + 10) // always < any materialization
			} else {
				v = int64(rng.Intn(1500) + 10) // sometimes beats materialization
			}
			m.Cost[i][j] = v
			m.Cost[j][i] = v
		}
	}
	return m
}

func TestFig3ValidityExamples(t *testing.T) {
	// Fig. 3 left: three versions in a delta cycle V1→V2→V3→V1 — invalid.
	cyclic := Layout{Parent: []int{1, 2, 0}}
	if cyclic.IsValid() {
		t.Fatal("delta cycle accepted (Fig. 3 left)")
	}
	// Fig. 3 right: V1→V2→V3 with V3 materialized — valid.
	chain := Layout{Parent: []int{1, 2, 2}}
	if !chain.IsValid() {
		t.Fatal("valid chain rejected (Fig. 3 right)")
	}
}

func TestObservation1EdgeCount(t *testing.T) {
	// a layout of n versions always has n arcs — structurally guaranteed
	// by the Parent representation; check Roots+deltas partition.
	l := Layout{Parent: []int{0, 0, 1, 2, 4}}
	if !l.IsValid() {
		t.Fatal("valid forest rejected")
	}
	roots := l.Roots()
	if len(roots) != 2 || roots[0] != 0 || roots[1] != 4 {
		t.Fatalf("roots = %v", roots)
	}
}

func TestValidateErrors(t *testing.T) {
	if (Layout{Parent: nil}).IsValid() {
		t.Error("empty layout accepted")
	}
	if (Layout{Parent: []int{5}}).IsValid() {
		t.Error("out-of-range parent accepted")
	}
	if (Layout{Parent: []int{1, 0}}).IsValid() {
		t.Error("2-cycle accepted")
	}
	if (Layout{Parent: []int{1, 2, 3, 1}}).IsValid() {
		t.Error("3-cycle with tail accepted")
	}
}

func TestPathToRoot(t *testing.T) {
	l := Layout{Parent: []int{1, 2, 2, 0}}
	path := l.PathToRoot(3)
	want := []int{3, 0, 1, 2}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if p := l.PathToRoot(2); len(p) != 1 || p[0] != 2 {
		t.Fatalf("root path = %v", p)
	}
}

func TestCoverSet(t *testing.T) {
	l := Layout{Parent: []int{1, 2, 2, 0}}
	cover := l.CoverSet([]int{3, 0})
	if len(cover) != 4 {
		t.Fatalf("cover = %v", cover)
	}
	cover = l.CoverSet([]int{2})
	if len(cover) != 1 || cover[0] != 2 {
		t.Fatalf("cover = %v", cover)
	}
}

func TestAlgorithm1CheapDeltasSingleRoot(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		mm := randomMatrix(6, seed, true)
		l := Algorithm1(mm)
		if !l.IsValid() {
			t.Fatalf("seed %d: invalid layout", seed)
		}
		if len(l.Roots()) != 1 {
			t.Fatalf("seed %d: %d roots, want 1", seed, len(l.Roots()))
		}
		// root must be the cheapest materialization
		root := l.Roots()[0]
		for i := 0; i < mm.N; i++ {
			if mm.Cost[i][i] < mm.Cost[root][root] {
				t.Fatalf("seed %d: root %d not cheapest", seed, root)
			}
		}
	}
}

func TestAlgorithm1OptimalWhenDeltasCheap(t *testing.T) {
	// When every delta is cheaper than every materialization, Algorithm 1
	// is optimal (§IV-C); verify against exhaustive enumeration.
	for seed := int64(0); seed < 10; seed++ {
		mm := randomMatrix(5, seed, true)
		if !mm.DeltasAlwaysCheaper() {
			continue
		}
		got := Algorithm1(mm).StorageCost(mm)
		want := Exhaustive(mm.N, func(l Layout) int64 { return l.StorageCost(mm) }).StorageCost(mm)
		if got != want {
			t.Fatalf("seed %d: algorithm1 cost %d, optimal %d", seed, got, want)
		}
	}
}

func TestOptimalMatchesExhaustive(t *testing.T) {
	// the augmented-MST optimizer must equal brute force on arbitrary
	// matrices, including ones where materialization beats some deltas.
	for seed := int64(0); seed < 15; seed++ {
		for _, cheap := range []bool{true, false} {
			mm := randomMatrix(5, seed, cheap)
			opt := Optimal(mm)
			if !opt.IsValid() {
				t.Fatalf("seed %d: invalid optimal layout", seed)
			}
			got := opt.StorageCost(mm)
			want := Exhaustive(mm.N, func(l Layout) int64 { return l.StorageCost(mm) }).StorageCost(mm)
			if got != want {
				t.Fatalf("seed %d cheap=%v: optimal cost %d, exhaustive %d", seed, cheap, got, want)
			}
		}
	}
}

func TestAlgorithm2ImprovesOnAlgorithm1(t *testing.T) {
	improvedSomewhere := false
	for seed := int64(0); seed < 30; seed++ {
		mm := randomMatrix(6, seed, false)
		l1 := Algorithm1(mm)
		l2 := Algorithm2(mm)
		if !l2.IsValid() {
			t.Fatalf("seed %d: algorithm2 produced invalid layout", seed)
		}
		c1, c2 := l1.StorageCost(mm), l2.StorageCost(mm)
		if c2 > c1 {
			t.Fatalf("seed %d: algorithm2 cost %d worse than algorithm1 %d", seed, c2, c1)
		}
		if c2 < c1 {
			improvedSomewhere = true
		}
		// algorithm2 can't beat the true optimum
		if opt := Optimal(mm).StorageCost(mm); c2 < opt {
			t.Fatalf("seed %d: algorithm2 cost %d below optimum %d", seed, c2, opt)
		}
	}
	if !improvedSomewhere {
		t.Error("algorithm2 never split a tree across 30 random matrices")
	}
}

func TestLinearChainShape(t *testing.T) {
	l := LinearChain(5)
	if !l.IsValid() {
		t.Fatal("linear chain invalid")
	}
	if !l.IsLinearChain() {
		t.Fatal("linear chain not recognized")
	}
	if !l.Materialized(4) {
		t.Fatal("head not materialized")
	}
	for i := 0; i < 4; i++ {
		if l.Parent[i] != i+1 {
			t.Fatalf("parent[%d] = %d", i, l.Parent[i])
		}
	}
	if !LinearChain(1).IsValid() {
		t.Fatal("singleton chain invalid")
	}
}

func TestIsLinearChainNegative(t *testing.T) {
	star := Layout{Parent: []int{2, 2, 2}}
	if star.IsLinearChain() {
		t.Error("star recognized as chain")
	}
	forest := Layout{Parent: []int{0, 1, 1}}
	if forest.IsLinearChain() {
		t.Error("two-root forest recognized as chain")
	}
}

func TestOptimalDegeneratesToLinearChain(t *testing.T) {
	// E9: when consecutive versions are most similar (delta cost grows
	// with distance), the optimal layout is a linear chain (§V-D).
	n := 8
	mm := matmat.New(n)
	for i := 0; i < n; i++ {
		mm.Cost[i][i] = 1000
		for j := 0; j < n; j++ {
			if i != j {
				d := i - j
				if d < 0 {
					d = -d
				}
				mm.Cost[i][j] = int64(10 * d)
			}
		}
	}
	l := Optimal(mm)
	if !l.IsLinearChain() {
		t.Fatalf("optimal layout on smooth data is not a linear chain: %v", l.Parent)
	}
	if l.StorageCost(mm) != 1000+int64(10*(n-1)) {
		t.Fatalf("cost = %d", l.StorageCost(mm))
	}
}

func TestOptimalFindsPeriodicStructure(t *testing.T) {
	// E8: periodic data A1,A2,A3,A1,A2,A3... where only same-phase
	// versions delta well. Optimal layout must link same-phase versions,
	// using ~p materializations.
	p, reps := 3, 4
	n := p * reps
	mm := matmat.New(n)
	for i := 0; i < n; i++ {
		mm.Cost[i][i] = 800
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if i%p == j%p {
				mm.Cost[i][j] = 5 // same phase: deltas tiny
			} else {
				mm.Cost[i][j] = 3000 // cross phase: worse than materializing
			}
		}
	}
	l := Optimal(mm)
	if !l.IsValid() {
		t.Fatal("invalid layout")
	}
	wantCost := int64(p)*800 + int64(n-p)*5
	if got := l.StorageCost(mm); got != wantCost {
		t.Fatalf("periodic optimal cost %d, want %d", got, wantCost)
	}
	if len(l.Roots()) != p {
		t.Fatalf("periodic layout has %d roots, want %d", len(l.Roots()), p)
	}
	// linear chain must be far worse
	if lc := LinearChain(n).StorageCost(mm); lc <= wantCost*2 {
		t.Fatalf("linear chain cost %d unexpectedly close to optimal %d", lc, wantCost)
	}
}

func TestHeadBiasedLayout(t *testing.T) {
	mm := randomMatrix(6, 3, true)
	l := HeadBiasedLayout(mm)
	if !l.IsValid() {
		t.Fatal("invalid head-biased layout")
	}
	if !l.Materialized(5) {
		t.Fatal("head version not materialized")
	}
	if len(l.Roots()) != 1 {
		t.Fatalf("roots = %v", l.Roots())
	}
}

func TestIOCost(t *testing.T) {
	mm := matmat.New(3)
	for i := 0; i < 3; i++ {
		mm.Cost[i][i] = 100
		for j := 0; j < 3; j++ {
			if i != j {
				mm.Cost[i][j] = 10
			}
		}
	}
	chain := Layout{Parent: []int{1, 2, 2}}
	// query on v2 (materialized): reads 100 bytes
	if c := IOCost(chain, mm, []Query{Snapshot(2, 1)}); c != 100 {
		t.Fatalf("snapshot head cost = %v", c)
	}
	// query on v0: reads delta(0)+delta(1)+mat(2) = 10+10+100
	if c := IOCost(chain, mm, []Query{Snapshot(0, 1)}); c != 120 {
		t.Fatalf("snapshot tail cost = %v", c)
	}
	// range over all three = same cover
	if c := IOCost(chain, mm, []Query{Range(0, 2, 1)}); c != 120 {
		t.Fatalf("range cost = %v", c)
	}
	// weights scale linearly
	if c := IOCost(chain, mm, []Query{Snapshot(2, 2.5)}); c != 250 {
		t.Fatalf("weighted cost = %v", c)
	}
}

func TestWorkloadAwareBeatsSpaceOptimalOnHeadWorkload(t *testing.T) {
	// A workload hammering the newest version should cause the
	// workload-aware layout to materialize it, beating the space-optimal
	// layout's I/O cost (the §V-D experiment's shape).
	for seed := int64(0); seed < 10; seed++ {
		mm := randomMatrix(7, seed, true)
		wl := []Query{Snapshot(6, 0.9), Range(0, 6, 0.05)}
		spaceOpt := Optimal(mm)
		aware := WorkloadAware(mm, wl)
		if !aware.IsValid() {
			t.Fatalf("seed %d: invalid workload-aware layout", seed)
		}
		cs, ca := IOCost(spaceOpt, mm, wl), IOCost(aware, mm, wl)
		if ca > cs {
			t.Fatalf("seed %d: workload-aware I/O %v worse than space-optimal %v", seed, ca, cs)
		}
	}
}

func TestWorkloadAwareNearExhaustive(t *testing.T) {
	// On tiny instances the heuristic should come close to the I/O
	// optimum (within 25%).
	for seed := int64(0); seed < 6; seed++ {
		mm := randomMatrix(5, seed, false)
		wl := []Query{Snapshot(4, 0.5), Range(1, 3, 0.3), Snapshot(0, 0.2)}
		opt := WorkloadExhaustive(mm, wl)
		aware := WorkloadAware(mm, wl)
		co, ca := IOCost(opt, mm, wl), IOCost(aware, mm, wl)
		if ca > co*1.25 {
			t.Fatalf("seed %d: heuristic %v vs optimal %v", seed, ca, co)
		}
	}
}

func TestExhaustiveProducesValidLayouts(t *testing.T) {
	mm := randomMatrix(4, 1, false)
	l := Exhaustive(mm.N, func(l Layout) int64 { return l.StorageCost(mm) })
	if !l.IsValid() {
		t.Fatal("exhaustive returned invalid layout")
	}
}

func TestSingleVersionLayouts(t *testing.T) {
	mm := matmat.New(1)
	mm.Cost[0][0] = 50
	for _, l := range []Layout{Algorithm1(mm), Algorithm2(mm), Optimal(mm), HeadBiasedLayout(mm)} {
		if !l.IsValid() || !l.Materialized(0) {
			t.Fatal("single-version layout must materialize the version")
		}
		if l.StorageCost(mm) != 50 {
			t.Fatal("wrong cost")
		}
	}
}

func TestMatrixValidate(t *testing.T) {
	mm := randomMatrix(4, 2, true)
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
	mm.Cost[1][2] = 999999 // break symmetry
	if err := mm.Validate(); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	mm.Cost[1][2] = mm.Cost[2][1]
	mm.Cost[0][0] = -1
	if err := mm.Validate(); err == nil {
		t.Error("negative cost accepted")
	}
}

func BenchmarkOptimalLayout40Versions(b *testing.B) {
	mm := randomMatrix(40, 1, false)
	for i := 0; i < b.N; i++ {
		Optimal(mm)
	}
}

func BenchmarkAlgorithm2Layout40Versions(b *testing.B) {
	mm := randomMatrix(40, 1, false)
	for i := 0; i < b.N; i++ {
		Algorithm2(mm)
	}
}

func TestSegmentHeuristicOverlappingRanges(t *testing.T) {
	// the §IV-D setting: overlapping range queries over a version axis
	for seed := int64(0); seed < 8; seed++ {
		mm := randomMatrix(12, seed, true)
		wl := []Query{Range(0, 5, 0.5), Range(4, 9, 0.3), Range(8, 11, 0.2)}
		l := SegmentHeuristic(mm, wl)
		if !l.IsValid() {
			t.Fatalf("seed %d: invalid segment layout", seed)
		}
		// must not be worse than the plain space-optimal layout on I/O
		spaceOpt := Optimal(mm)
		if IOCost(l, mm, wl) > IOCost(spaceOpt, mm, wl) {
			t.Fatalf("seed %d: segment heuristic I/O %v worse than space-optimal %v",
				seed, IOCost(l, mm, wl), IOCost(spaceOpt, mm, wl))
		}
	}
}

func TestSegmentHeuristicSingleQueryIsOptimalTree(t *testing.T) {
	// with one query covering everything there is a single segment, so
	// the result equals the space-optimal layout
	mm := randomMatrix(7, 3, true)
	wl := []Query{Range(0, 6, 1)}
	l := SegmentHeuristic(mm, wl)
	if l.StorageCost(mm) != Optimal(mm).StorageCost(mm) {
		t.Fatalf("single-segment cost %d != optimal %d", l.StorageCost(mm), Optimal(mm).StorageCost(mm))
	}
}

func TestSegmentHeuristicEmptyWorkload(t *testing.T) {
	mm := randomMatrix(5, 4, false)
	l := SegmentHeuristic(mm, nil)
	if !l.IsValid() {
		t.Fatal("invalid layout for empty workload")
	}
}
