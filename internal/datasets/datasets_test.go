package datasets

import (
	"testing"

	"arrayvers/internal/array"
	"arrayvers/internal/delta"
)

func TestNOAADeterministicAndSimilar(t *testing.T) {
	cfg := NOAAConfig{Side: 64, Versions: 3, Attrs: 2, Seed: 1}
	a := NOAA(cfg)
	b := NOAA(cfg)
	if len(a) != 3 || len(a[0]) != 2 {
		t.Fatalf("shape: %d versions x %d attrs", len(a), len(a[0]))
	}
	if !a[0][0].Equal(b[0][0]) || !a[2][1].Equal(b[2][1]) {
		t.Fatal("NOAA not deterministic")
	}
	// consecutive versions must be similar but not identical
	if a[0][0].Equal(a[1][0]) {
		t.Fatal("consecutive NOAA versions identical")
	}
	blob, err := delta.Encode(delta.Hybrid, a[1][0], a[0][0])
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) >= a[0][0].SizeBytes() {
		t.Fatalf("NOAA consecutive delta %d bytes >= raw %d: not similar enough", len(blob), a[0][0].SizeBytes())
	}
}

func TestConceptNetSparsityAndChurn(t *testing.T) {
	cfg := ConceptNetConfig{Dim: 100_000, NNZ: 5_000, Versions: 3, Churn: 200, Seed: 2}
	snaps := ConceptNet(cfg)
	if len(snaps) != 3 {
		t.Fatalf("%d snapshots", len(snaps))
	}
	for _, s := range snaps {
		if s.NNZ() < cfg.NNZ/2 || s.NNZ() > cfg.NNZ*2 {
			t.Fatalf("nnz = %d, want ~%d", s.NNZ(), cfg.NNZ)
		}
		if s.Density() > 1e-5 {
			t.Fatalf("density %g too high", s.Density())
		}
	}
	if snaps[0].Equal(snaps[1]) {
		t.Fatal("no churn between snapshots")
	}
	// weekly deltas must be far smaller than snapshots
	blob, err := delta.EncodeSparseOps(snaps[1], snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) >= snaps[0].SizeBytes()/4 {
		t.Fatalf("CNet delta %d bytes vs snapshot %d", len(blob), snaps[0].SizeBytes())
	}
}

func TestOSMLocalizedEdits(t *testing.T) {
	cfg := OSMConfig{Side: 128, Versions: 4, Edits: 3, Seed: 3}
	tiles := OSM(cfg)
	if len(tiles) != 4 {
		t.Fatalf("%d tiles", len(tiles))
	}
	// count changed cells between consecutive versions: must be a tiny
	// fraction ("just a few changes in the road segments")
	changed := 0
	n := tiles[0].NumCells()
	for i := int64(0); i < n; i++ {
		if tiles[0].Bits(i) != tiles[1].Bits(i) {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("no edits between versions")
	}
	if float64(changed)/float64(n) > 0.05 {
		t.Fatalf("%.1f%% of cells changed; OSM edits should be localized", 100*float64(changed)/float64(n))
	}
}

func TestPanoramaPeriodicStructure(t *testing.T) {
	cfg := PanoramaConfig{Side: 64, Versions: 8, Scenes: 4, Seed: 4}
	frames := Panorama(cfg)
	// same-scene frames must delta far better than adjacent frames
	same, _ := delta.Encode(delta.Hybrid, frames[4], frames[0])
	adj, _ := delta.Encode(delta.Hybrid, frames[1], frames[0])
	if len(same)*4 >= len(adj) {
		t.Fatalf("same-scene delta %d bytes not ≪ adjacent delta %d bytes", len(same), len(adj))
	}
}

func TestPeriodicExactRecurrence(t *testing.T) {
	cfg := PeriodicConfig{Period: 3, Versions: 9, SizeBytes: 1 << 12, Seed: 5}
	vs := Periodic(cfg)
	if !vs[0].Equal(vs[3]) || !vs[1].Equal(vs[7]) {
		t.Fatal("period-3 recurrence broken")
	}
	if vs[0].Equal(vs[1]) {
		t.Fatal("distinct phases identical")
	}
	// cross-phase deltas must be large (random data)
	cross, _ := delta.Encode(delta.Hybrid, vs[1], vs[0])
	if int64(len(cross)) < vs[0].SizeBytes()/2 {
		t.Fatalf("cross-phase delta %d bytes suspiciously small", len(cross))
	}
}

func TestSmoothLinearStructure(t *testing.T) {
	vs := Smooth(32, 5, 6)
	if len(vs) != 5 {
		t.Fatalf("%d versions", len(vs))
	}
	// delta size should grow with version distance
	d1, _ := delta.Encode(delta.Sparse, vs[1], vs[0])
	d4, _ := delta.Encode(delta.Sparse, vs[4], vs[0])
	if len(d4) <= len(d1) {
		t.Fatalf("distance-4 delta %d bytes <= distance-1 delta %d bytes", len(d4), len(d1))
	}
}

func TestDefaultsApplied(t *testing.T) {
	// zero-value configs must produce sane small outputs without panics
	if got := Periodic(PeriodicConfig{Versions: 2, SizeBytes: 1024}); len(got) != 2 {
		t.Fatal("periodic defaults broken")
	}
	if got := Panorama(PanoramaConfig{Side: 16, Versions: 2}); len(got) != 2 {
		t.Fatal("panorama defaults broken")
	}
	if got := OSM(OSMConfig{Side: 32, Versions: 2, Edits: 1}); len(got) != 2 {
		t.Fatal("osm defaults broken")
	}
	if got := NOAA(NOAAConfig{Side: 16, Versions: 2, Attrs: 1}); len(got) != 2 {
		t.Fatal("noaa defaults broken")
	}
	var _ *array.Sparse = ConceptNet(ConceptNetConfig{Dim: 1000, NNZ: 50, Versions: 1, Churn: 5})[0]
}
