// Package datasets generates deterministic synthetic stand-ins for the
// four evaluation datasets of the paper's §V. The real data (NOAA RTMA
// grids, the ConceptNet matrix, OpenStreetMaps tile renderings, and the
// Switch Panorama webcam archive) is not redistributable and not
// downloadable offline; each generator reproduces the statistical
// property the paper selected that dataset for (see DESIGN.md §2):
//
//   - NOAA: dense float fields that are "very similar, but not quite
//     identical" between 15-minute versions, with sharp edges carrying
//     "scattered single-pixel variations" (Fig. 4).
//   - ConceptNet: an extremely sparse square int32 matrix with small
//     weekly churn.
//   - OSM: large dense rasters where consecutive versions differ in just
//     a few localized edits ("the street map evolves less quickly than
//     weather does").
//   - Panorama: periodic scene recurrence — adjacent frames differ
//     substantially but the same scene re-occurs, defeating linear delta
//     chains.
//   - Periodic: the §V-D synthetic pattern A1..An,A1..An of mutually
//     dissimilar arrays.
//
// All generators are seeded and reproducible.
package datasets

import (
	"math"
	"math/rand"

	"arrayvers/internal/array"
)

// NOAAConfig parameterizes the weather-field generator.
type NOAAConfig struct {
	Side     int64 // grid side (paper: ~1 MB float32 grids)
	Versions int   // number of 15-minute snapshots
	Attrs    int   // measurement types (wind, pressure, humidity, ...)
	Seed     int64
}

// NOAA generates Versions snapshots of Attrs measurement planes each.
// Fields are sums of slowly advected Gaussian blobs over a sharp-edged
// "coastline" mask, plus per-pixel sensor noise.
func NOAA(cfg NOAAConfig) [][]*array.Dense {
	if cfg.Side <= 0 {
		cfg.Side = 256
	}
	if cfg.Versions <= 0 {
		cfg.Versions = 10
	}
	if cfg.Attrs <= 0 {
		cfg.Attrs = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	type blob struct{ x, y, vx, vy, amp, sigma float64 }
	// independent blob sets per attribute
	blobs := make([][]blob, cfg.Attrs)
	for a := range blobs {
		for b := 0; b < 6; b++ {
			blobs[a] = append(blobs[a], blob{
				x: rng.Float64() * float64(cfg.Side), y: rng.Float64() * float64(cfg.Side),
				vx: rng.Float64()*2 - 1, vy: rng.Float64()*2 - 1,
				amp: 40 + rng.Float64()*60, sigma: 10 + rng.Float64()*float64(cfg.Side)/6,
			})
		}
	}
	// static sharp-edged mask ("coastline")
	maskRow := make([]float64, cfg.Side)
	cur := 0.0
	for i := range maskRow {
		if rng.Float64() < 0.03 {
			cur = rng.Float64() * 25
		}
		maskRow[i] = cur
	}
	out := make([][]*array.Dense, cfg.Versions)
	for v := 0; v < cfg.Versions; v++ {
		out[v] = make([]*array.Dense, cfg.Attrs)
		for a := 0; a < cfg.Attrs; a++ {
			d := array.MustDense(array.Float32, []int64{cfg.Side, cfg.Side})
			for r := int64(0); r < cfg.Side; r++ {
				for c := int64(0); c < cfg.Side; c++ {
					val := maskRow[c] * (1 + 0.02*float64(r%7))
					for _, bl := range blobs[a] {
						dx := float64(c) - bl.x
						dy := float64(r) - bl.y
						val += bl.amp * math.Exp(-(dx*dx+dy*dy)/(2*bl.sigma*bl.sigma))
					}
					// quantize so that small drift produces narrow deltas,
					// then add occasional single-pixel noise (Fig. 4)
					q := math.Round(val*4) / 4
					if rng.Float64() < 0.002 {
						q += float64(rng.Intn(20) - 10)
					}
					d.SetFloat(r*cfg.Side+c, q)
				}
			}
			out[v][a] = d
		}
		// advect blobs slightly between versions
		for a := range blobs {
			for b := range blobs[a] {
				blobs[a][b].x += blobs[a][b].vx
				blobs[a][b].y += blobs[a][b].vy
			}
		}
	}
	return out
}

// ConceptNetConfig parameterizes the sparse-matrix generator.
type ConceptNetConfig struct {
	Dim      int64 // square matrix side (paper: ~1,000,000)
	NNZ      int   // entries per snapshot (paper: ~430,000)
	Versions int   // weekly snapshots
	Churn    int   // edits between snapshots
	Seed     int64
}

// ConceptNet generates weekly snapshots of a sparse relationship matrix.
// Row/column indices follow a power-ish law (frequent concepts are hubs).
func ConceptNet(cfg ConceptNetConfig) []*array.Sparse {
	if cfg.Dim <= 0 {
		cfg.Dim = 1_000_000
	}
	if cfg.NNZ <= 0 {
		cfg.NNZ = 430_000
	}
	if cfg.Versions <= 0 {
		cfg.Versions = 8
	}
	if cfg.Churn <= 0 {
		cfg.Churn = cfg.NNZ / 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pick := func() int64 {
		// power-law-ish index: squaring biases towards small indices
		f := rng.Float64()
		return int64(f * f * float64(cfg.Dim))
	}
	cur := array.MustSparse(array.Int32, []int64{cfg.Dim, cfg.Dim}, 0)
	for cur.NNZ() < cfg.NNZ {
		cur.SetBits(pick()*cfg.Dim+pick(), int64(rng.Intn(100)+1))
	}
	out := make([]*array.Sparse, cfg.Versions)
	for v := 0; v < cfg.Versions; v++ {
		out[v] = cur.Clone()
		for e := 0; e < cfg.Churn; e++ {
			switch rng.Intn(3) {
			case 0: // insert
				cur.SetBits(pick()*cfg.Dim+pick(), int64(rng.Intn(100)+1))
			case 1: // update an existing entry (by random probe)
				cur.SetBits(pick()*cfg.Dim+pick(), int64(rng.Intn(100)+1))
			default: // delete (set to fill)
				cur.SetBits(pick()*cfg.Dim+pick(), 0)
			}
		}
	}
	return out
}

// OSMConfig parameterizes the map-tile generator.
type OSMConfig struct {
	Side     int64 // tile side in pixels (paper: 1 GB tiles)
	Versions int   // weekly renderings (paper: 16)
	Edits    int   // localized road edits between versions
	Seed     int64
}

// OSM generates weekly renderings of a road-map raster: a uint8 image of
// polyline "roads" over a flat background, with a handful of small
// localized edits (new/changed road segments) between versions.
func OSM(cfg OSMConfig) []*array.Dense {
	if cfg.Side <= 0 {
		cfg.Side = 1024
	}
	if cfg.Versions <= 0 {
		cfg.Versions = 16
	}
	if cfg.Edits <= 0 {
		cfg.Edits = 12
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	img := array.MustDense(array.UInt8, []int64{cfg.Side, cfg.Side})
	img.Fill(240) // map background
	// base road network
	for i := 0; i < int(cfg.Side/16)+20; i++ {
		drawRoad(img, rng, cfg.Side)
	}
	out := make([]*array.Dense, cfg.Versions)
	for v := 0; v < cfg.Versions; v++ {
		out[v] = img.Clone()
		for e := 0; e < cfg.Edits; e++ {
			drawRoad(img, rng, cfg.Side)
		}
	}
	return out
}

// drawRoad rasterizes one polyline with a random gray level.
func drawRoad(img *array.Dense, rng *rand.Rand, side int64) {
	x := float64(rng.Int63n(side))
	y := float64(rng.Int63n(side))
	angle := rng.Float64() * 2 * math.Pi
	length := 30 + rng.Intn(int(side)/4)
	shade := int64(rng.Intn(128))
	for step := 0; step < length; step++ {
		angle += (rng.Float64() - 0.5) * 0.3
		x += math.Cos(angle)
		y += math.Sin(angle)
		xi, yi := int64(x), int64(y)
		if xi < 0 || xi >= side || yi < 0 || yi >= side {
			return
		}
		img.SetBitsAt([]int64{yi, xi}, shade)
		if xi+1 < side {
			img.SetBitsAt([]int64{yi, xi + 1}, shade)
		}
	}
}

// PanoramaConfig parameterizes the periodic webcam generator.
type PanoramaConfig struct {
	Side     int64
	Versions int
	Scenes   int // number of recurring base scenes (e.g. day/dusk/night)
	Noise    int // per-frame additive noise amplitude
	Seed     int64
}

// Panorama generates frames cycling through Scenes recurring base
// scenes: adjacent frames are very different, but every Scenes-th frame
// is nearly identical — the structure that makes the optimal
// materialization tree non-linear (§V-D).
func Panorama(cfg PanoramaConfig) []*array.Dense {
	if cfg.Side <= 0 {
		cfg.Side = 256
	}
	if cfg.Versions <= 0 {
		cfg.Versions = 24
	}
	if cfg.Scenes <= 0 {
		cfg.Scenes = 4
	}
	if cfg.Noise <= 0 {
		cfg.Noise = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	scenes := make([]*array.Dense, cfg.Scenes)
	for sIdx := range scenes {
		sc := array.MustDense(array.UInt8, []int64{cfg.Side, cfg.Side})
		for i := int64(0); i < sc.NumCells(); i++ {
			sc.SetBits(i, int64(rng.Intn(256)))
		}
		scenes[sIdx] = sc
	}
	out := make([]*array.Dense, cfg.Versions)
	for v := 0; v < cfg.Versions; v++ {
		frame := scenes[v%cfg.Scenes].Clone()
		for i := int64(0); i < frame.NumCells(); i++ {
			if rng.Float64() < 0.05 {
				frame.SetBits(i, clampByte(frame.Bits(i)+int64(rng.Intn(2*cfg.Noise+1)-cfg.Noise)))
			}
		}
		out[v] = frame
	}
	return out
}

func clampByte(v int64) int64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// PeriodicConfig parameterizes the §V-D synthetic experiment: n mutually
// dissimilar arrays repeating in the pattern A1..An,A1..An...
type PeriodicConfig struct {
	Period    int   // n
	Versions  int   // total versions (paper: 40)
	SizeBytes int64 // bytes per array (paper: 8 MB)
	Seed      int64
}

// Periodic generates the repeating-array series. Arrays are random bytes
// so cross-phase deltas are "selected so that each of the n arrays
// doesn't difference well against the other n−1 arrays".
func Periodic(cfg PeriodicConfig) []*array.Dense {
	if cfg.Period <= 0 {
		cfg.Period = 2
	}
	if cfg.Versions <= 0 {
		cfg.Versions = 40
	}
	if cfg.SizeBytes <= 0 {
		cfg.SizeBytes = 8 << 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	side := int64(math.Sqrt(float64(cfg.SizeBytes)))
	bases := make([]*array.Dense, cfg.Period)
	for i := range bases {
		b := array.MustDense(array.UInt8, []int64{side, side})
		raw := b.Bytes()
		rng.Read(raw)
		bases[i] = b
	}
	out := make([]*array.Dense, cfg.Versions)
	for v := 0; v < cfg.Versions; v++ {
		out[v] = bases[v%cfg.Period].Clone()
	}
	return out
}

// Smooth generates a smoothly evolving version series (each version a
// small perturbation of the previous), the regime where a linear delta
// chain is optimal (§V-D: "on a data set where a linear chain is optimal
// ... our optimal algorithm produces a linear delta chain").
func Smooth(side int64, versions int, seed int64) []*array.Dense {
	rng := rand.New(rand.NewSource(seed))
	cur := array.MustDense(array.Int32, []int64{side, side})
	for i := int64(0); i < cur.NumCells(); i++ {
		cur.SetBits(i, int64(rng.Intn(1000)))
	}
	out := make([]*array.Dense, versions)
	for v := 0; v < versions; v++ {
		out[v] = cur.Clone()
		// drift grows with distance: consecutive versions are closest
		for i := int64(0); i < cur.NumCells(); i++ {
			if rng.Float64() < 0.2 {
				cur.SetBits(i, cur.Bits(i)+int64(rng.Intn(5)-2))
			}
		}
	}
	return out
}
