package compress

import (
	"encoding/binary"
	"fmt"
)

// JPEG2000-style codec: a multi-level reversible LeGall 5/3 integer
// wavelet transform ("JPEG 2000 uses wavelets", paper §V-A) followed by
// zigzag-varint entropy coding of the coefficients and DEFLATE. The 5/3
// lifting scheme with integer floors is exactly the reversible transform
// used in lossless JPEG 2000, so this codec is lossless.

const maxWaveletLevels = 4

func waveletCompress(data []byte, p Params) ([]byte, error) {
	elem := p.Elem
	if elem <= 0 {
		elem = 1
	}
	w, h := p.Width, p.Height
	if w <= 0 || h <= 0 || w*h*elem != len(data) {
		return nil, fmt.Errorf("compress: wavelet: %d bytes does not match %dx%d cells of %d bytes", len(data), h, w, elem)
	}
	cells := make([]int64, w*h)
	for i := range cells {
		cells[i] = readCell(data, elem, i)
	}
	levels := 0
	cw, ch := w, h
	for levels < maxWaveletLevels && cw >= 16 && ch >= 16 {
		fwdRows(cells, w, cw, ch)
		fwdCols(cells, w, cw, ch)
		cw = (cw + 1) / 2
		ch = (ch + 1) / 2
		levels++
	}
	// entropy-code coefficients
	coefs := make([]byte, 0, len(cells)*2)
	for _, c := range cells {
		coefs = binary.AppendVarint(coefs, c)
	}
	lz, err := lzCompress(coefs)
	if err != nil {
		return nil, err
	}
	out := binary.AppendUvarint(nil, uint64(levels))
	return append(out, lz...), nil
}

func waveletDecompress(blob []byte, p Params) ([]byte, error) {
	elem := p.Elem
	if elem <= 0 {
		elem = 1
	}
	w, h := p.Width, p.Height
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("compress: wavelet: missing 2D params")
	}
	levels64, k := binary.Uvarint(blob)
	if k <= 0 {
		return nil, fmt.Errorf("compress: wavelet: truncated header")
	}
	// the encoder never exceeds maxWaveletLevels; a corrupt count would
	// otherwise drive an unbounded level-reconstruction loop
	if levels64 > maxWaveletLevels {
		return nil, fmt.Errorf("compress: wavelet: %d levels exceeds maximum %d", levels64, maxWaveletLevels)
	}
	coefs, err := lzDecompress(blob[k:])
	if err != nil {
		return nil, err
	}
	cells := make([]int64, w*h)
	pos := 0
	for i := range cells {
		v, n := binary.Varint(coefs[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("compress: wavelet: truncated coefficient %d", i)
		}
		cells[i] = v
		pos += n
	}
	// reconstruct per-level sizes, then invert in reverse order
	type lvl struct{ cw, ch int }
	var lvls []lvl
	cw, ch := w, h
	for i := uint64(0); i < levels64; i++ {
		lvls = append(lvls, lvl{cw, ch})
		cw = (cw + 1) / 2
		ch = (ch + 1) / 2
	}
	for i := len(lvls) - 1; i >= 0; i-- {
		invCols(cells, w, lvls[i].cw, lvls[i].ch)
		invRows(cells, w, lvls[i].cw, lvls[i].ch)
	}
	out := make([]byte, w*h*elem)
	for i, c := range cells {
		writeCell(out, elem, i, c)
	}
	return out, nil
}

func readCell(data []byte, elem, i int) int64 {
	var v uint64
	for b := 0; b < elem; b++ {
		v |= uint64(data[i*elem+b]) << (8 * uint(b))
	}
	return int64(v)
}

func writeCell(data []byte, elem, i int, v int64) {
	for b := 0; b < elem; b++ {
		data[i*elem+b] = byte(uint64(v) >> (8 * uint(b)))
	}
}

// fwd53 applies the forward reversible 5/3 lifting to the strided signal
// x[0], x[stride], ..., of length n, rearranging into approx-first order.
func fwd53(buf []int64, base, stride, n int) {
	if n < 2 {
		return
	}
	x := make([]int64, n)
	for i := 0; i < n; i++ {
		x[i] = buf[base+i*stride]
	}
	ns := (n + 1) / 2
	nd := n / 2
	s := make([]int64, ns)
	d := make([]int64, nd)
	for i := 0; i < nd; i++ {
		right := 2*i + 2
		if right >= n {
			right = n - 2 // whole-sample symmetric extension
		}
		d[i] = x[2*i+1] - floorDiv(x[2*i]+x[right], 2)
	}
	for i := 0; i < ns; i++ {
		dl, dr := i-1, i
		if dl < 0 {
			dl = 0
		}
		if dr >= nd {
			dr = nd - 1
		}
		s[i] = x[2*i] + floorDiv(d[dl]+d[dr]+2, 4)
	}
	for i := 0; i < ns; i++ {
		buf[base+i*stride] = s[i]
	}
	for i := 0; i < nd; i++ {
		buf[base+(ns+i)*stride] = d[i]
	}
}

// inv53 inverts fwd53.
func inv53(buf []int64, base, stride, n int) {
	if n < 2 {
		return
	}
	ns := (n + 1) / 2
	nd := n / 2
	s := make([]int64, ns)
	d := make([]int64, nd)
	for i := 0; i < ns; i++ {
		s[i] = buf[base+i*stride]
	}
	for i := 0; i < nd; i++ {
		d[i] = buf[base+(ns+i)*stride]
	}
	x := make([]int64, n)
	for i := 0; i < ns; i++ {
		dl, dr := i-1, i
		if dl < 0 {
			dl = 0
		}
		if dr >= nd {
			dr = nd - 1
		}
		x[2*i] = s[i] - floorDiv(d[dl]+d[dr]+2, 4)
	}
	for i := 0; i < nd; i++ {
		right := 2*i + 2
		if right >= n {
			right = n - 2
		}
		x[2*i+1] = d[i] + floorDiv(x[2*i]+x[right], 2)
	}
	for i := 0; i < n; i++ {
		buf[base+i*stride] = x[i]
	}
}

func fwdRows(cells []int64, fullW, cw, ch int) {
	for r := 0; r < ch; r++ {
		fwd53(cells, r*fullW, 1, cw)
	}
}

func fwdCols(cells []int64, fullW, cw, ch int) {
	for c := 0; c < cw; c++ {
		fwd53(cells, c, fullW, ch)
	}
}

func invCols(cells []int64, fullW, cw, ch int) {
	for c := 0; c < cw; c++ {
		inv53(cells, c, fullW, ch)
	}
}

func invRows(cells []int64, fullW, cw, ch int) {
	for r := 0; r < ch; r++ {
		inv53(cells, r*fullW, 1, cw)
	}
}

// floorDiv is floor division for possibly-negative numerators, matching
// the JPEG 2000 specification's floor operations.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
