package compress

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var allCodecs = []Codec{None, LZ, RLE, NullSupp, PNG, Wavelet}

func imageParams(w, h, elem int) Params {
	return Params{Elem: elem, Width: w, Height: h}
}

// makeSmooth generates a compressible "image": smooth gradient plus noise.
func makeSmooth(w, h, elem int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, w*h*elem)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			v := int64(r*2+c) + int64(rng.Intn(3))
			writeCell(data, elem, r*w+c, v)
		}
	}
	return data
}

func TestRoundtripAllCodecs(t *testing.T) {
	for _, elem := range []int{1, 2, 4, 8} {
		data := makeSmooth(32, 24, elem, int64(elem))
		p := imageParams(32, 24, elem)
		for _, c := range allCodecs {
			blob, err := Compress(c, data, p)
			if err != nil {
				t.Fatalf("%v elem %d: compress: %v", c, elem, err)
			}
			back, err := Decompress(c, blob, p)
			if err != nil {
				t.Fatalf("%v elem %d: decompress: %v", c, elem, err)
			}
			if !bytes.Equal(back, data) {
				t.Fatalf("%v elem %d: roundtrip mismatch", c, elem)
			}
		}
	}
}

func TestRoundtripRandomDataProperty(t *testing.T) {
	// Lossless property on arbitrary byte strings for the structural
	// codecs (None/LZ/RLE/NullSupp operate on any elem-aligned buffer).
	f := func(raw []byte) bool {
		data := raw
		if len(data)%4 != 0 {
			data = data[:len(data)-len(data)%4]
		}
		p := Params{Elem: 4}
		for _, c := range []Codec{None, LZ, RLE, NullSupp} {
			blob, err := Compress(c, data, p)
			if err != nil {
				return false
			}
			back, err := Decompress(c, blob, p)
			if err != nil {
				return false
			}
			if !bytes.Equal(back, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRLECompressesRuns(t *testing.T) {
	data := bytes.Repeat([]byte{7, 0, 0, 0}, 1000) // 1000 identical int32 cells
	blob, err := Compress(RLE, data, Params{Elem: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) > 16 {
		t.Fatalf("RLE of constant data used %d bytes", len(blob))
	}
}

func TestNullSuppCompressesSmallValues(t *testing.T) {
	// int64 cells holding values < 256 should compress ~4x or better
	data := make([]byte, 8*1000)
	for i := 0; i < 1000; i++ {
		writeCell(data, 8, i, int64(i%200))
	}
	blob, err := Compress(NullSupp, data, Params{Elem: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) > len(data)/4 {
		t.Fatalf("nullsupp of small values used %d of %d bytes", len(blob), len(data))
	}
}

func TestPNGBeatsLZOnGradients(t *testing.T) {
	data := makeSmooth(128, 128, 1, 42)
	p := imageParams(128, 128, 1)
	png, err := Compress(PNG, data, p)
	if err != nil {
		t.Fatal(err)
	}
	lz, err := Compress(LZ, data, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(png) >= len(lz) {
		t.Fatalf("png %d bytes >= lz %d bytes on smooth gradient", len(png), len(lz))
	}
}

func TestWaveletRoundtripExtremeValues(t *testing.T) {
	// Wavelet lifting must be exactly reversible even at dtype extremes.
	w, h := 20, 20
	data := make([]byte, w*h*4)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < w*h; i++ {
		writeCell(data, 4, i, int64(uint32(rng.Uint64())))
	}
	p := imageParams(w, h, 4)
	blob, err := Compress(Wavelet, data, p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(Wavelet, blob, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("wavelet roundtrip mismatch on random uint32 data")
	}
}

func TestWaveletOddDimensions(t *testing.T) {
	for _, dims := range [][2]int{{17, 33}, {33, 17}, {1, 40}, {40, 1}, {19, 19}} {
		w, h := dims[0], dims[1]
		data := makeSmooth(w, h, 2, int64(w*h))
		p := imageParams(w, h, 2)
		blob, err := Compress(Wavelet, data, p)
		if err != nil {
			t.Fatalf("%dx%d: %v", w, h, err)
		}
		back, err := Decompress(Wavelet, blob, p)
		if err != nil {
			t.Fatalf("%dx%d: %v", w, h, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("%dx%d: roundtrip mismatch", w, h)
		}
	}
}

func TestLifting1DRoundtripProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]int64, len(raw))
		for i, v := range raw {
			x[i] = int64(v)
		}
		orig := append([]int64(nil), x...)
		fwd53(x, 0, 1, len(x))
		inv53(x, 0, 1, len(x))
		for i := range x {
			if x[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParamsValidation(t *testing.T) {
	if _, err := Compress(RLE, []byte{1, 2, 3}, Params{Elem: 2}); err == nil {
		t.Error("misaligned RLE input accepted")
	}
	if _, err := Compress(NullSupp, []byte{1, 2, 3}, Params{Elem: 2}); err == nil {
		t.Error("misaligned nullsupp input accepted")
	}
	if _, err := Compress(PNG, []byte{1, 2, 3}, imageParams(2, 2, 1)); err == nil {
		t.Error("wrong-size png input accepted")
	}
	if _, err := Compress(Wavelet, []byte{1, 2, 3}, imageParams(0, 0, 1)); err == nil {
		t.Error("missing wavelet dims accepted")
	}
	if _, err := Compress(Codec(99), nil, Params{}); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := Decompress(Codec(99), nil, Params{}); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestCorruptBlobs(t *testing.T) {
	data := makeSmooth(16, 16, 4, 5)
	p := imageParams(16, 16, 4)
	for _, c := range []Codec{LZ, RLE, NullSupp, PNG, Wavelet} {
		blob, err := Compress(c, data, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) < 4 {
			continue
		}
		if _, err := Decompress(c, blob[:2], p); err == nil {
			t.Errorf("%v: heavily truncated blob accepted", c)
		}
	}
}

func TestParseCodecRoundtrip(t *testing.T) {
	for _, c := range allCodecs {
		got, err := ParseCodec(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCodec(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCodec("bogus"); err == nil {
		t.Error("bogus codec accepted")
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {8, 4, 2}, {-8, 4, -2}, {-1, 4, -1}, {1, 4, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	for _, c := range []Codec{None, LZ, RLE, NullSupp} {
		blob, err := Compress(c, nil, Params{Elem: 4})
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		back, err := Decompress(c, blob, Params{Elem: 4})
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if len(back) != 0 {
			t.Fatalf("%v: empty roundtrip gave %d bytes", c, len(back))
		}
	}
}

func BenchmarkLZCompressSmooth(b *testing.B) {
	data := makeSmooth(512, 512, 4, 1)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Compress(LZ, data, Params{Elem: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPNGCompressSmooth(b *testing.B) {
	data := makeSmooth(512, 512, 4, 1)
	p := imageParams(512, 512, 4)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Compress(PNG, data, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWaveletCompressSmooth(b *testing.B) {
	data := makeSmooth(512, 512, 4, 1)
	p := imageParams(512, 512, 4)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Compress(Wavelet, data, p); err != nil {
			b.Fatal(err)
		}
	}
}
