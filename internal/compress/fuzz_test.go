package compress

import (
	"testing"
)

// FuzzDecompress feeds every decompressor arbitrary blobs under every
// codec and a spread of element sizes. Decoders must error on garbage
// rather than panic, and must never allocate beyond MaxDecodedBytes no
// matter what lengths the blob claims (the limit is lowered here so a
// hostile-but-capped claim cannot slow fuzzing down); whatever inflates
// successfully must deflate again.
func FuzzDecompress(f *testing.F) {
	cells := make([]byte, 64*64*4)
	for i := range cells {
		cells[i] = byte(i / 7 % 100)
	}
	p := Params{Elem: 4, Width: 64, Height: 64}
	for _, c := range []Codec{LZ, RLE, NullSupp, PNG, Wavelet} {
		if blob, err := Compress(c, cells, p); err == nil {
			f.Add(byte(c), byte(4), blob)
		}
	}
	f.Add(byte(RLE), byte(8), []byte{0xff, 0xff, 0xff, 0xff, 0x0f, 0x01, 0x01})
	f.Add(byte(PNG), byte(1), []byte{0xff, 0xff, 0x03, 0xff, 0xff, 0x03})
	f.Add(byte(Wavelet), byte(2), []byte{0x20, 0x00})

	f.Fuzz(func(t *testing.T, codecByte, elemByte byte, blob []byte) {
		if len(blob) > 1<<15 {
			return
		}
		old := MaxDecodedBytes
		MaxDecodedBytes = 1 << 20
		defer func() { MaxDecodedBytes = old }()

		codec := Codec(codecByte % 6)
		elem := int(elemByte%8) + 1
		params := Params{Elem: elem, Width: 64, Height: 64, Signed: elemByte%2 == 0}
		out, err := Decompress(codec, blob, params)
		if err != nil {
			return
		}
		if int64(len(out)) > MaxDecodedBytes {
			t.Fatalf("decoder produced %d bytes past the %d limit", len(out), MaxDecodedBytes)
		}
		// wavelet/png require exact 2D geometry to re-compress; the
		// cell-stream codecs must accept their own output
		switch codec {
		case LZ:
			if _, err := Compress(codec, out, params); err != nil {
				t.Fatalf("re-compress of decoded output failed: %v", err)
			}
		case RLE, NullSupp:
			if len(out)%elem == 0 {
				if _, err := Compress(codec, out, params); err != nil {
					t.Fatalf("re-compress of decoded output failed: %v", err)
				}
			}
		}
	})
}
