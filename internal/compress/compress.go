// Package compress is the stand-in for the SciDB compression library the
// paper builds on (§III-B.2): Run-Length encoding, Null Suppression,
// Lempel–Ziv, plus the two image-oriented codecs the authors added — a
// PNG-style codec (row filtering followed by LZ) and a JPEG2000-style
// codec (reversible LeGall 5/3 integer wavelet followed by entropy
// coding). All codecs here are lossless.
//
// The Lempel–Ziv codec is backed by the standard library's DEFLATE
// (compress/flate), which is an LZ77 variant; PNG in particular is
// exactly "LZ with pre-filtering" as the paper describes.
package compress

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
)

// Codec identifies a compression scheme.
type Codec uint8

// Supported codecs.
const (
	None Codec = iota
	LZ
	RLE
	NullSupp
	PNG
	Wavelet
)

func (c Codec) String() string {
	switch c {
	case None:
		return "none"
	case LZ:
		return "lz"
	case RLE:
		return "rle"
	case NullSupp:
		return "nullsupp"
	case PNG:
		return "png"
	case Wavelet:
		return "wavelet"
	default:
		return fmt.Sprintf("Codec(%d)", uint8(c))
	}
}

// ParseCodec converts a codec name to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "none", "":
		return None, nil
	case "lz":
		return LZ, nil
	case "rle":
		return RLE, nil
	case "nullsupp":
		return NullSupp, nil
	case "png":
		return PNG, nil
	case "wavelet":
		return Wavelet, nil
	default:
		return 0, fmt.Errorf("compress: unknown codec %q", s)
	}
}

// Params carries the structural hints the image codecs need. Elem is the
// cell size in bytes; Width and Height describe the 2D layout in cells
// (row-major, Width cells per row). Codecs that don't need a hint ignore
// Params entirely.
type Params struct {
	Elem   int
	Width  int
	Height int
	Signed bool // cells are signed integers (affects wavelet recentering)
}

// Compress encodes data with the given codec.
func Compress(c Codec, data []byte, p Params) ([]byte, error) {
	switch c {
	case None:
		return append([]byte(nil), data...), nil
	case LZ:
		return lzCompress(data)
	case RLE:
		return rleCompress(data, p.Elem)
	case NullSupp:
		return nsCompress(data, p.Elem)
	case PNG:
		return pngCompress(data, p)
	case Wavelet:
		return waveletCompress(data, p)
	default:
		return nil, fmt.Errorf("compress: unknown codec %d", c)
	}
}

// MaxDecodedBytes bounds the output any single Decompress call may
// produce. Decoders see length fields from untrusted bytes (network
// frames, possibly corrupt chunk files); a hostile header must not
// drive an allocation beyond what any legitimate chunk payload could
// need. Far above the ~10 MB default chunk size; fuzz targets lower it
// to keep executions fast.
var MaxDecodedBytes int64 = 1 << 30

// Decompress decodes a blob produced by Compress with the same codec and
// params.
func Decompress(c Codec, blob []byte, p Params) ([]byte, error) {
	switch c {
	case None:
		return append([]byte(nil), blob...), nil
	case LZ:
		return lzDecompress(blob)
	case RLE:
		return rleDecompress(blob, p.Elem)
	case NullSupp:
		return nsDecompress(blob, p.Elem)
	case PNG:
		return pngDecompress(blob, p)
	case Wavelet:
		return waveletDecompress(blob, p)
	default:
		return nil, fmt.Errorf("compress: unknown codec %d", c)
	}
}

// --- Lempel–Ziv (DEFLATE) ---

func lzCompress(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func lzDecompress(blob []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(blob))
	defer r.Close()
	// cap the inflation so a DEFLATE bomb cannot balloon memory
	out, err := io.ReadAll(io.LimitReader(r, MaxDecodedBytes+1))
	if err != nil {
		return nil, fmt.Errorf("compress: lz decode: %w", err)
	}
	if int64(len(out)) > MaxDecodedBytes {
		return nil, fmt.Errorf("compress: lz output exceeds %d byte limit", MaxDecodedBytes)
	}
	return out, nil
}

// --- Run-Length Encoding ---
//
// Cell-granularity RLE: a stream of (run length uvarint, cell value)
// tuples, the paper's "list of tuples of the form (value, # of
// repetitions)" (§V-A).

func rleCompress(data []byte, elem int) ([]byte, error) {
	if elem <= 0 {
		elem = 1
	}
	if len(data)%elem != 0 {
		return nil, fmt.Errorf("compress: rle: %d bytes not a multiple of elem %d", len(data), elem)
	}
	n := len(data) / elem
	out := binary.AppendUvarint(nil, uint64(n))
	i := 0
	for i < n {
		j := i + 1
		for j < n && bytes.Equal(data[j*elem:(j+1)*elem], data[i*elem:(i+1)*elem]) {
			j++
		}
		out = binary.AppendUvarint(out, uint64(j-i))
		out = append(out, data[i*elem:(i+1)*elem]...)
		i = j
	}
	return out, nil
}

func rleDecompress(blob []byte, elem int) ([]byte, error) {
	if elem <= 0 {
		elem = 1
	}
	n, k := binary.Uvarint(blob)
	if k <= 0 {
		return nil, fmt.Errorf("compress: rle: truncated header")
	}
	if n > uint64(MaxDecodedBytes)/uint64(elem) {
		return nil, fmt.Errorf("compress: rle: %d cells of %d bytes exceeds decode limit", n, elem)
	}
	pos := k
	// the claimed size is bounded above, but still pre-allocate
	// conservatively: the cap is attacker-chosen until the runs check out
	capHint := int64(n) * int64(elem)
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	out := make([]byte, 0, capHint)
	for uint64(len(out)) < n*uint64(elem) {
		run, k := binary.Uvarint(blob[pos:])
		if k <= 0 || run == 0 {
			return nil, fmt.Errorf("compress: rle: corrupt run at byte %d", pos)
		}
		pos += k
		if pos+elem > len(blob) {
			return nil, fmt.Errorf("compress: rle: truncated value at byte %d", pos)
		}
		val := blob[pos : pos+elem]
		pos += elem
		// clamp the run to the claimed total so one hostile run cannot
		// overshoot it (the final length check still rejects the blob)
		if max := n - uint64(len(out))/uint64(elem); run > max {
			run = max + 1
		}
		for r := uint64(0); r < run; r++ {
			out = append(out, val...)
		}
	}
	if uint64(len(out)) != n*uint64(elem) {
		return nil, fmt.Errorf("compress: rle: decoded %d bytes, want %d", len(out), n*uint64(elem))
	}
	return out, nil
}

// --- Null Suppression ---
//
// Per-cell leading-zero-byte suppression: each cell contributes a 4-bit
// significant-byte count (0..8) to a nibble stream, followed by its
// significant little-endian bytes in a byte stream.

func nsCompress(data []byte, elem int) ([]byte, error) {
	if elem <= 0 {
		elem = 1
	}
	if elem > 8 {
		return nil, fmt.Errorf("compress: nullsupp: elem %d > 8", elem)
	}
	if len(data)%elem != 0 {
		return nil, fmt.Errorf("compress: nullsupp: %d bytes not a multiple of elem %d", len(data), elem)
	}
	n := len(data) / elem
	out := binary.AppendUvarint(nil, uint64(n))
	nibbles := make([]byte, (n+1)/2)
	var payload []byte
	for i := 0; i < n; i++ {
		cell := data[i*elem : (i+1)*elem]
		sig := elem
		for sig > 0 && cell[sig-1] == 0 {
			sig--
		}
		if i%2 == 0 {
			nibbles[i/2] = byte(sig)
		} else {
			nibbles[i/2] |= byte(sig) << 4
		}
		payload = append(payload, cell[:sig]...)
	}
	out = append(out, nibbles...)
	return append(out, payload...), nil
}

func nsDecompress(blob []byte, elem int) ([]byte, error) {
	if elem <= 0 {
		elem = 1
	}
	n64, k := binary.Uvarint(blob)
	if k <= 0 {
		return nil, fmt.Errorf("compress: nullsupp: truncated header")
	}
	if n64 > uint64(MaxDecodedBytes)/uint64(elem) {
		return nil, fmt.Errorf("compress: nullsupp: %d cells of %d bytes exceeds decode limit", n64, elem)
	}
	n := int(n64)
	nibLen := (n + 1) / 2
	if k+nibLen > len(blob) {
		return nil, fmt.Errorf("compress: nullsupp: truncated nibble stream")
	}
	nibbles := blob[k : k+nibLen]
	payload := blob[k+nibLen:]
	out := make([]byte, n*elem)
	pos := 0
	for i := 0; i < n; i++ {
		var sig int
		if i%2 == 0 {
			sig = int(nibbles[i/2] & 0x0F)
		} else {
			sig = int(nibbles[i/2] >> 4)
		}
		if sig > elem || pos+sig > len(payload) {
			return nil, fmt.Errorf("compress: nullsupp: corrupt cell %d", i)
		}
		copy(out[i*elem:i*elem+sig], payload[pos:pos+sig])
		pos += sig
	}
	return out, nil
}
