package compress

import (
	"encoding/binary"
	"fmt"
)

// PNG-style codec: each row of the 2D layout is transformed by one of the
// five PNG filter types (None, Sub, Up, Average, Paeth), chosen per row by
// the minimum-sum-of-absolute-values heuristic PNG encoders use, and the
// filtered bytes are then DEFLATE-compressed. "PNG uses LZ with
// pre-filtering" (paper §V-A).

const (
	filterNone = iota
	filterSub
	filterUp
	filterAvg
	filterPaeth
)

func pngCompress(data []byte, p Params) ([]byte, error) {
	bpp := p.Elem
	if bpp <= 0 {
		bpp = 1
	}
	rowBytes := p.Width * bpp
	if rowBytes <= 0 || len(data)%rowBytes != 0 {
		return nil, fmt.Errorf("compress: png: %d bytes not divisible into rows of %d bytes", len(data), rowBytes)
	}
	rows := len(data) / rowBytes
	filtered := make([]byte, 0, rows*(rowBytes+1))
	prev := make([]byte, rowBytes) // zero row above the first
	cand := make([]byte, rowBytes)
	best := make([]byte, rowBytes)
	for r := 0; r < rows; r++ {
		row := data[r*rowBytes : (r+1)*rowBytes]
		bestType, bestScore := 0, -1
		for ft := filterNone; ft <= filterPaeth; ft++ {
			applyFilter(ft, row, prev, bpp, cand)
			score := 0
			for _, b := range cand {
				v := int(int8(b))
				if v < 0 {
					v = -v
				}
				score += v
			}
			if bestScore < 0 || score < bestScore {
				bestScore = score
				bestType = ft
				copy(best, cand)
			}
		}
		filtered = append(filtered, byte(bestType))
		filtered = append(filtered, best...)
		prev = data[r*rowBytes : (r+1)*rowBytes]
	}
	lz, err := lzCompress(filtered)
	if err != nil {
		return nil, err
	}
	out := binary.AppendUvarint(nil, uint64(rows))
	out = binary.AppendUvarint(out, uint64(rowBytes))
	return append(out, lz...), nil
}

func pngDecompress(blob []byte, p Params) ([]byte, error) {
	rows64, k := binary.Uvarint(blob)
	if k <= 0 {
		return nil, fmt.Errorf("compress: png: truncated header")
	}
	pos := k
	rowBytes64, k := binary.Uvarint(blob[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("compress: png: truncated header")
	}
	pos += k
	// header fields are untrusted: bound them before any product is used
	// to size an allocation (and so the products cannot overflow int)
	if rows64 > uint64(MaxDecodedBytes) || rowBytes64 > uint64(MaxDecodedBytes) ||
		rows64*(rowBytes64+1) > uint64(MaxDecodedBytes) {
		return nil, fmt.Errorf("compress: png: %d rows of %d bytes exceeds decode limit", rows64, rowBytes64)
	}
	rows, rowBytes := int(rows64), int(rowBytes64)
	bpp := p.Elem
	if bpp <= 0 {
		bpp = 1
	}
	filtered, err := lzDecompress(blob[pos:])
	if err != nil {
		return nil, err
	}
	if len(filtered) != rows*(rowBytes+1) {
		return nil, fmt.Errorf("compress: png: filtered stream has %d bytes, want %d", len(filtered), rows*(rowBytes+1))
	}
	out := make([]byte, rows*rowBytes)
	prev := make([]byte, rowBytes)
	for r := 0; r < rows; r++ {
		ft := int(filtered[r*(rowBytes+1)])
		src := filtered[r*(rowBytes+1)+1 : (r+1)*(rowBytes+1)]
		dst := out[r*rowBytes : (r+1)*rowBytes]
		if err := unapplyFilter(ft, src, prev, bpp, dst); err != nil {
			return nil, err
		}
		prev = dst
	}
	return out, nil
}

// applyFilter computes dst = filter(row) given the reconstructed previous
// row.
func applyFilter(ft int, row, prev []byte, bpp int, dst []byte) {
	for i := range row {
		var left, up, upLeft byte
		if i >= bpp {
			left = row[i-bpp]
			upLeft = prev[i-bpp]
		}
		up = prev[i]
		switch ft {
		case filterNone:
			dst[i] = row[i]
		case filterSub:
			dst[i] = row[i] - left
		case filterUp:
			dst[i] = row[i] - up
		case filterAvg:
			dst[i] = row[i] - byte((int(left)+int(up))/2)
		case filterPaeth:
			dst[i] = row[i] - paeth(left, up, upLeft)
		}
	}
}

func unapplyFilter(ft int, src, prev []byte, bpp int, dst []byte) error {
	for i := range src {
		var left, up, upLeft byte
		if i >= bpp {
			left = dst[i-bpp]
			upLeft = prev[i-bpp]
		}
		up = prev[i]
		switch ft {
		case filterNone:
			dst[i] = src[i]
		case filterSub:
			dst[i] = src[i] + left
		case filterUp:
			dst[i] = src[i] + up
		case filterAvg:
			dst[i] = src[i] + byte((int(left)+int(up))/2)
		case filterPaeth:
			dst[i] = src[i] + paeth(left, up, upLeft)
		default:
			return fmt.Errorf("compress: png: unknown filter type %d", ft)
		}
	}
	return nil
}

// paeth is the PNG Paeth predictor.
func paeth(a, b, c byte) byte {
	p := int(a) + int(b) - int(c)
	pa, pb, pc := abs(p-int(a)), abs(p-int(b)), abs(p-int(c))
	if pa <= pb && pa <= pc {
		return a
	}
	if pb <= pc {
		return b
	}
	return c
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
