package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"arrayvers/internal/cliutil"
	"arrayvers/internal/core"
)

// metrics tracks per-route request counters and a request latency
// histogram, rendered in Prometheus text exposition format by the
// /metrics handler next to the store's own Stats() counters.
type metrics struct {
	mu       sync.Mutex
	requests map[routeCode]int64
	buckets  []int64 // one per latencyBuckets entry, plus +Inf at the end
	count    int64
	sum      float64 // seconds

	inFlight atomic.Int64
	rejected atomic.Int64 // 429s from the in-flight semaphore
}

type routeCode struct {
	route string
	code  int
}

// latencyBuckets are the histogram upper bounds in seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[routeCode]int64),
		buckets:  make([]int64, len(latencyBuckets)+1),
	}
}

// countOnly records a request in the per-route counters without a
// latency observation — used for shed (429) requests, which would
// otherwise flood the histogram with zero-duration samples exactly when
// the latency numbers matter most.
func (m *metrics) countOnly(route string, code int) {
	m.mu.Lock()
	m.requests[routeCode{route, code}]++
	m.mu.Unlock()
}

func (m *metrics) observe(route string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[routeCode{route, code}]++
	m.count++
	m.sum += seconds
	for i, le := range latencyBuckets {
		if seconds <= le {
			m.buckets[i]++
			return
		}
	}
	m.buckets[len(latencyBuckets)]++
}

// write renders the Prometheus text format: request counters, the
// latency histogram, gauges, and the store's I/O and cache counters.
func (m *metrics) write(w io.Writer, stats core.IOStats) {
	m.mu.Lock()
	keys := make([]routeCode, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(w, "# HELP avstored_requests_total Requests served, by route and status code.\n")
	fmt.Fprintf(w, "# TYPE avstored_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "avstored_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, m.requests[k])
	}
	fmt.Fprintf(w, "# HELP avstored_request_duration_seconds Request latency histogram.\n")
	fmt.Fprintf(w, "# TYPE avstored_request_duration_seconds histogram\n")
	cum := int64(0)
	for i, le := range latencyBuckets {
		cum += m.buckets[i]
		fmt.Fprintf(w, "avstored_request_duration_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += m.buckets[len(latencyBuckets)]
	fmt.Fprintf(w, "avstored_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "avstored_request_duration_seconds_sum %g\n", m.sum)
	fmt.Fprintf(w, "avstored_request_duration_seconds_count %d\n", m.count)
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP avstored_requests_in_flight Requests currently being served.\n")
	fmt.Fprintf(w, "# TYPE avstored_requests_in_flight gauge\n")
	fmt.Fprintf(w, "avstored_requests_in_flight %d\n", m.inFlight.Load())
	fmt.Fprintf(w, "# HELP avstored_requests_rejected_total Requests rejected with 429 by the in-flight limit.\n")
	fmt.Fprintf(w, "# TYPE avstored_requests_rejected_total counter\n")
	fmt.Fprintf(w, "avstored_requests_rejected_total %d\n", m.rejected.Load())

	fmt.Fprintf(w, "# HELP avstored_store Store I/O and decoded-chunk cache counters (Store.Stats()).\n")
	for _, c := range cliutil.StatsCounters(stats) {
		fmt.Fprintf(w, "avstored_store_%s %d\n", c.Name, c.Value)
	}
}
