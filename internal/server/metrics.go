package server

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"arrayvers/internal/cliutil"
	"arrayvers/internal/core"
	"arrayvers/internal/trace"
)

// metrics tracks per-route request counters and a request latency
// histogram, rendered in Prometheus text exposition format by the
// /metrics handler next to the store's own Stats() counters.
type metrics struct {
	mu       sync.Mutex
	requests map[routeCode]int64
	buckets  []int64 // one per latencyBuckets entry, plus +Inf at the end
	count    int64
	sum      float64 // seconds

	inFlight atomic.Int64
	rejected atomic.Int64 // 429s from the in-flight semaphore

	// zcFrames/zcBytes count dense reply frames whose cell bytes went to
	// the socket as a separate writev vector (wire.WriteDenseNoCopy)
	// instead of being copied into a contiguous marshal buffer.
	zcFrames atomic.Int64
	zcBytes  atomic.Int64
}

// addZeroCopy records one vectored dense reply of n cell bytes.
func (m *metrics) addZeroCopy(n int64) {
	m.zcFrames.Add(1)
	m.zcBytes.Add(n)
}

type routeCode struct {
	route string
	code  int
}

// latencyBuckets are the histogram upper bounds in seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[routeCode]int64),
		buckets:  make([]int64, len(latencyBuckets)+1),
	}
}

// countOnly records a request in the per-route counters without a
// latency observation — used for shed (429) requests, which would
// otherwise flood the histogram with zero-duration samples exactly when
// the latency numbers matter most.
func (m *metrics) countOnly(route string, code int) {
	m.mu.Lock()
	m.requests[routeCode{route, code}]++
	m.mu.Unlock()
}

func (m *metrics) observe(route string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[routeCode{route, code}]++
	m.count++
	m.sum += seconds
	for i, le := range latencyBuckets {
		if seconds <= le {
			m.buckets[i]++
			return
		}
	}
	m.buckets[len(latencyBuckets)]++
}

// write renders the Prometheus text format: request counters, the
// latency histogram, gauges, the engine's stage-level profile, Go
// runtime stats, and the store's I/O and cache counters.
func (m *metrics) write(w io.Writer, stats core.IOStats, prof core.ProfileSnapshot) {
	m.mu.Lock()
	keys := make([]routeCode, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(w, "# HELP avstored_requests_total Requests served, by route and status code.\n")
	fmt.Fprintf(w, "# TYPE avstored_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "avstored_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, m.requests[k])
	}
	fmt.Fprintf(w, "# HELP avstored_request_duration_seconds Request latency histogram.\n")
	fmt.Fprintf(w, "# TYPE avstored_request_duration_seconds histogram\n")
	cum := int64(0)
	for i, le := range latencyBuckets {
		cum += m.buckets[i]
		fmt.Fprintf(w, "avstored_request_duration_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += m.buckets[len(latencyBuckets)]
	fmt.Fprintf(w, "avstored_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "avstored_request_duration_seconds_sum %g\n", m.sum)
	fmt.Fprintf(w, "avstored_request_duration_seconds_count %d\n", m.count)
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP avstored_requests_in_flight Requests currently being served.\n")
	fmt.Fprintf(w, "# TYPE avstored_requests_in_flight gauge\n")
	fmt.Fprintf(w, "avstored_requests_in_flight %d\n", m.inFlight.Load())
	fmt.Fprintf(w, "# HELP avstored_requests_rejected_total Requests rejected with 429 by the in-flight limit.\n")
	fmt.Fprintf(w, "# TYPE avstored_requests_rejected_total counter\n")
	fmt.Fprintf(w, "avstored_requests_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "# HELP avstored_zero_copy_frames_total Dense reply frames written with vectored I/O (no marshal copy).\n")
	fmt.Fprintf(w, "# TYPE avstored_zero_copy_frames_total counter\n")
	fmt.Fprintf(w, "avstored_zero_copy_frames_total %d\n", m.zcFrames.Load())
	fmt.Fprintf(w, "# HELP avstored_zero_copy_bytes_total Cell bytes sent to clients without a marshal copy.\n")
	fmt.Fprintf(w, "# TYPE avstored_zero_copy_bytes_total counter\n")
	fmt.Fprintf(w, "avstored_zero_copy_bytes_total %d\n", m.zcBytes.Load())

	writeProfile(w, prof)
	writeRuntime(w)

	for _, c := range cliutil.StatsCounters(stats) {
		fmt.Fprintf(w, "# HELP avstored_store_%s Store counter %s (Store.Stats()).\n", c.Name, c.Name)
		fmt.Fprintf(w, "# TYPE avstored_store_%s gauge\n", c.Name)
		fmt.Fprintf(w, "avstored_store_%s %d\n", c.Name, c.Value)
	}
}

// writeHist renders one trace.HistSnapshot as a Prometheus histogram,
// with an optional fixed label pair on every series.
func writeHist(w io.Writer, name, labels string, h trace.HistSnapshot) {
	sep := func() string {
		if labels == "" {
			return ""
		}
		return ","
	}()
	cum := int64(0)
	for i, le := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, le, cum)
	}
	cum += h.Counts[len(h.Bounds)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.Sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count)
	}
}

// writeProfile renders the store's stage-level instrumentation: select
// and commit pipeline stage latency histograms and byte totals, the
// group-commit batch-size and tuner-pass histograms, the decode-pool
// gauge, recovery duration, and per-array cache hit/miss counters.
func writeProfile(w io.Writer, prof core.ProfileSnapshot) {
	fmt.Fprintf(w, "# HELP av_select_stage_seconds Select pipeline latency by stage (snapshot, cache, read, decode, delta, materialize).\n")
	fmt.Fprintf(w, "# TYPE av_select_stage_seconds histogram\n")
	for _, st := range prof.SelectStages {
		writeHist(w, "av_select_stage_seconds", fmt.Sprintf("stage=%q", st.Stage), st.Hist)
	}
	fmt.Fprintf(w, "# HELP av_select_stage_bytes_total Bytes handled by each select pipeline stage.\n")
	fmt.Fprintf(w, "# TYPE av_select_stage_bytes_total counter\n")
	for _, st := range prof.SelectStages {
		fmt.Fprintf(w, "av_select_stage_bytes_total{stage=%q} %d\n", st.Stage, st.Bytes)
	}
	fmt.Fprintf(w, "# HELP av_commit_stage_seconds Insert/group-commit pipeline latency by stage (stage_encode, queue_wait, data_fsync, meta_commit, install).\n")
	fmt.Fprintf(w, "# TYPE av_commit_stage_seconds histogram\n")
	for _, st := range prof.CommitStages {
		writeHist(w, "av_commit_stage_seconds", fmt.Sprintf("stage=%q", st.Stage), st.Hist)
	}
	fmt.Fprintf(w, "# HELP av_commit_stage_bytes_total Bytes handled by each commit pipeline stage.\n")
	fmt.Fprintf(w, "# TYPE av_commit_stage_bytes_total counter\n")
	for _, st := range prof.CommitStages {
		fmt.Fprintf(w, "av_commit_stage_bytes_total{stage=%q} %d\n", st.Stage, st.Bytes)
	}
	fmt.Fprintf(w, "# HELP av_group_commit_batch_size Versions installed per group-commit batch.\n")
	fmt.Fprintf(w, "# TYPE av_group_commit_batch_size histogram\n")
	writeHist(w, "av_group_commit_batch_size", "", prof.GroupBatch)
	fmt.Fprintf(w, "# HELP av_tune_pass_seconds Adaptive-tuner pass duration.\n")
	fmt.Fprintf(w, "# TYPE av_tune_pass_seconds histogram\n")
	writeHist(w, "av_tune_pass_seconds", "", prof.TunePass)
	fmt.Fprintf(w, "# HELP av_decode_pool_active Decode-pool workers currently resolving chunks.\n")
	fmt.Fprintf(w, "# TYPE av_decode_pool_active gauge\n")
	fmt.Fprintf(w, "av_decode_pool_active %d\n", prof.DecodeActive)
	fmt.Fprintf(w, "# HELP av_recovery_seconds Duration of crash recovery at the last open (0 when not durable).\n")
	fmt.Fprintf(w, "# TYPE av_recovery_seconds gauge\n")
	fmt.Fprintf(w, "av_recovery_seconds %g\n", prof.RecoverySeconds)
	fmt.Fprintf(w, "# HELP av_cache_hits_total Decoded-chunk cache hits on the query path, by array.\n")
	fmt.Fprintf(w, "# TYPE av_cache_hits_total counter\n")
	for _, c := range prof.ArrayCaches {
		fmt.Fprintf(w, "av_cache_hits_total{array=%q} %d\n", c.Array, c.Hits)
	}
	fmt.Fprintf(w, "# HELP av_cache_misses_total Decoded-chunk cache misses on the query path, by array.\n")
	fmt.Fprintf(w, "# TYPE av_cache_misses_total counter\n")
	for _, c := range prof.ArrayCaches {
		fmt.Fprintf(w, "av_cache_misses_total{array=%q} %d\n", c.Array, c.Misses)
	}
	fmt.Fprintf(w, "# HELP av_cache_hit_ratio Query-path cache hit ratio since start, by array.\n")
	fmt.Fprintf(w, "# TYPE av_cache_hit_ratio gauge\n")
	for _, c := range prof.ArrayCaches {
		total := c.Hits + c.Misses
		ratio := 0.0
		if total > 0 {
			ratio = float64(c.Hits) / float64(total)
		}
		fmt.Fprintf(w, "av_cache_hit_ratio{array=%q} %g\n", c.Array, ratio)
	}
}

// writeRuntime renders Go runtime health gauges so a scrape catches
// goroutine leaks, heap growth, and GC pressure without pprof.
func writeRuntime(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP av_go_goroutines Number of live goroutines.\n")
	fmt.Fprintf(w, "# TYPE av_go_goroutines gauge\n")
	fmt.Fprintf(w, "av_go_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP av_go_heap_bytes Bytes of allocated heap objects.\n")
	fmt.Fprintf(w, "# TYPE av_go_heap_bytes gauge\n")
	fmt.Fprintf(w, "av_go_heap_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP av_go_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n")
	fmt.Fprintf(w, "# TYPE av_go_gc_pause_seconds_total counter\n")
	fmt.Fprintf(w, "av_go_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(w, "# HELP av_go_gomaxprocs The GOMAXPROCS setting.\n")
	fmt.Fprintf(w, "# TYPE av_go_gomaxprocs gauge\n")
	fmt.Fprintf(w, "av_go_gomaxprocs %d\n", runtime.GOMAXPROCS(0))
}
