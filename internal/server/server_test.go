package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arrayvers/client"
	"arrayvers/internal/array"
	"arrayvers/internal/core"
	"arrayvers/internal/fsio"
	"arrayvers/internal/layout"
	"arrayvers/internal/wire"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *core.Store, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		opts := core.DefaultOptions()
		opts.ChunkBytes = 4 << 10
		opts.CacheBytes = 16 << 20
		store, err := core.Open(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = store
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, cfg.Store, ts
}

func denseSchema(name string, side int64) array.Schema {
	return array.Schema{
		Name:  name,
		Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: side - 1}, {Name: "X", Lo: 0, Hi: side - 1}},
		Attrs: []array.Attribute{{Name: "V", Type: array.Int32}},
	}
}

func randDense(rng *rand.Rand, side int64) *array.Dense {
	d := array.MustDense(array.Int32, []int64{side, side})
	for i := int64(0); i < d.NumCells(); i++ {
		d.SetBits(i, int64(rng.Intn(1<<16)))
	}
	return d
}

// TestEndToEndConcurrentClients drives 8 concurrent clients — each with
// its own array — through create, all insert forms, every select form,
// branch, and AQL against one shared server, and checks every remote
// result byte-identical against both a locally maintained expectation
// and the embedded store underneath the server.
func TestEndToEndConcurrentClients(t *testing.T) {
	_, store, ts := newTestServer(t, Config{})
	const clients = 8
	const side = 48

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errCh <- fmt.Errorf("client %d: "+format, append([]any{ci}, args...)...)
			}
			c := client.New(ts.URL)
			rng := rand.New(rand.NewSource(int64(1000 + ci)))
			name := fmt.Sprintf("Arr%d", ci)
			if err := c.CreateArray(denseSchema(name, side)); err != nil {
				fail("create: %v", err)
				return
			}

			// three dense versions plus one delta-list version, keeping a
			// local expectation of every version's content
			var ids []int
			var want []*array.Dense
			for v := 0; v < 3; v++ {
				d := randDense(rng, side)
				want = append(want, d.Clone())
				id, err := c.Insert(name, core.DensePayload(d))
				if err != nil {
					fail("insert %d: %v", v, err)
					return
				}
				ids = append(ids, id)
			}
			updates := []core.CellUpdate{
				{Coords: []int64{0, 0}, Bits: 123456},
				{Coords: []int64{side - 1, side - 1}, Bits: -7},
			}
			last := want[2].Clone()
			for _, u := range updates {
				last.SetBitsAt(u.Coords, u.Bits)
			}
			want = append(want, last)
			id, err := c.Insert(name, core.DeltaListPayload(ids[2], updates))
			if err != nil {
				fail("delta-list insert: %v", err)
				return
			}
			ids = append(ids, id)

			// full selects: byte-identical to the local expectation AND to
			// the embedded store the server wraps
			for i, id := range ids {
				pl, err := c.Select(name, id)
				if err != nil {
					fail("select @%d: %v", id, err)
					return
				}
				if pl.Dense == nil || !pl.Dense.Equal(want[i]) {
					fail("select @%d differs from local expectation", id)
					return
				}
				direct, err := store.Select(name, id)
				if err != nil {
					fail("embedded select @%d: %v", id, err)
					return
				}
				if string(direct.Dense.Bytes()) != string(pl.Dense.Bytes()) {
					fail("select @%d not byte-identical to embedded result", id)
					return
				}
			}

			// region select
			box := array.NewBox([]int64{3, 5}, []int64{17, 29})
			pl, err := c.SelectRegion(name, ids[1], box)
			if err != nil {
				fail("select region: %v", err)
				return
			}
			wantRegion, err := want[1].Slice(box)
			if err != nil {
				fail("slice: %v", err)
				return
			}
			if !pl.Dense.Equal(wantRegion) {
				fail("region select mismatch")
				return
			}

			// multi-version stack
			stack, err := c.SelectMulti(name, ids)
			if err != nil {
				fail("select multi: %v", err)
				return
			}
			wantStack, err := array.Stack(want)
			if err != nil {
				fail("stack: %v", err)
				return
			}
			if !stack.Equal(wantStack) {
				fail("select multi mismatch")
				return
			}

			// branch, then read the branch back
			branch := name + "_b"
			if err := c.Branch(name, ids[1], branch); err != nil {
				fail("branch: %v", err)
				return
			}
			bpl, err := c.Select(branch, 1)
			if err != nil {
				fail("branch select: %v", err)
				return
			}
			if !bpl.Dense.Equal(want[1]) {
				fail("branch content mismatch")
				return
			}
			ref, err := c.BranchedFrom(branch)
			if err != nil || ref == nil || ref.Array != name || ref.Version != ids[1] {
				fail("branched-from: ref=%+v err=%v", ref, err)
				return
			}

			// AQL through the wire: names and framed array results
			res, err := c.Query(fmt.Sprintf("VERSIONS(%s);", name))
			if err != nil {
				fail("aql versions: %v", err)
				return
			}
			if len(res.Names) != len(ids) {
				fail("aql versions: %d names, want %d", len(res.Names), len(ids))
				return
			}
			res, err = c.Query(fmt.Sprintf("SELECT * FROM %s@%d;", name, ids[0]))
			if err != nil {
				fail("aql select: %v", err)
				return
			}
			if res.Dense == nil || !res.Dense.Equal(want[0]) {
				fail("aql select mismatch")
				return
			}

			// metadata
			infos, err := c.Versions(name)
			if err != nil || len(infos) != len(ids) {
				fail("versions: %d infos, err=%v", len(infos), err)
				return
			}
			info, err := c.Info(name)
			if err != nil || info.NumVersions != len(ids) {
				fail("info: %+v err=%v", info, err)
				return
			}
			vid, err := c.VersionAt(name, time.Now().Add(time.Hour))
			if err != nil || vid != ids[len(ids)-1] {
				fail("version-at: %d err=%v", vid, err)
				return
			}
			rep, err := c.Verify(name)
			if err != nil || !rep.Ok() {
				fail("verify: %+v err=%v", rep, err)
				return
			}
		}(ci)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// the server's one store saw all 16 arrays
	names, err := client.New(ts.URL).ListArrays()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2*clients {
		t.Fatalf("ListArrays: %d names, want %d", len(names), 2*clients)
	}
}

// TestSparseRoundTrip exercises the sparse payload and sparse-set wire
// paths.
func TestSparseRoundTrip(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	c := client.New(ts.URL)
	const dim = 10_000
	schema := array.Schema{
		Name:  "Sp",
		Dims:  []array.Dimension{{Name: "I", Lo: 0, Hi: dim - 1}},
		Attrs: []array.Attribute{{Name: "W", Type: array.Int64}},
	}
	if err := c.CreateArray(schema); err != nil {
		t.Fatal(err)
	}
	var ids []int
	var want []*array.Sparse
	for v := 0; v < 3; v++ {
		sp := array.MustSparse(array.Int64, []int64{dim}, 0)
		for k := int64(0); k < 50; k++ {
			sp.SetBits((k*97+int64(v)*13)%dim, k+int64(v)<<32)
		}
		want = append(want, sp.Clone())
		id, err := c.Insert("Sp", core.SparsePayload(sp))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		pl, err := c.Select("Sp", id)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Sparse == nil || !pl.Sparse.Equal(want[i]) {
			t.Fatalf("sparse select @%d mismatch", id)
		}
	}
	set, err := c.SelectSparseMulti("Sp", ids, array.Box{})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("sparse multi: %d results", len(set))
	}
	for i := range set {
		if !set[i].Equal(want[i]) {
			t.Fatalf("sparse multi element %d mismatch", i)
		}
	}
}

// TestBackpressure fills the in-flight semaphore and checks the server
// answers 429 instead of queueing.
func TestBackpressure(t *testing.T) {
	srv, _, ts := newTestServer(t, Config{MaxInFlight: 2})
	// occupy both slots
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	resp, err := http.Get(ts.URL + "/v1/arrays")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	// /healthz and /metrics stay reachable under load
	for _, path := range []string{"/healthz", "/metrics"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s under load: %d", path, r.StatusCode)
		}
	}
	// draining the semaphore restores service
	<-srv.sem
	<-srv.sem
	resp2, err := http.Get(ts.URL + "/v1/arrays")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("after drain: %d", resp2.StatusCode)
	}
}

// TestErrorMapping spot-checks the HTTP status codes for store and
// codec failures.
func TestErrorMapping(t *testing.T) {
	_, _, ts := newTestServer(t, Config{MaxFrameBytes: 1 << 20})
	c := client.New(ts.URL)

	if _, err := c.Select("nope", 1); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("select on missing array: %v", err)
	}
	if err := c.CreateArray(denseSchema("Dup", 8)); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateArray(denseSchema("Dup", 8)); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("duplicate create: %v", err)
	}
	// garbage instead of a payload frame
	resp, err := http.Post(ts.URL+"/v1/arrays/Dup/versions", FrameContentType, strings.NewReader("not a frame"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage insert body: %d, want 400", resp.StatusCode)
	}
	// an oversized frame is rejected by the configured limit
	huge := array.MustDense(array.Int32, []int64{8, 8})
	big := make([]byte, 13)
	copy(big, []byte{'A', 'V', 'F', '1', 3})
	big[5], big[6], big[7] = 0xff, 0xff, 0xff // 16 MB claimed > 1 MB limit
	resp, err = http.Post(ts.URL+"/v1/arrays/Dup/versions", FrameContentType, strings.NewReader(string(big)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized insert frame: %d, want 413", resp.StatusCode)
	}
	_ = huge
}

// TestGracefulShutdownMidTraffic runs sustained concurrent traffic,
// shuts the server down under it, and checks the store reopens clean:
// every array verifies and the newest version of each remains readable.
func TestGracefulShutdownMidTraffic(t *testing.T) {
	opts := core.DefaultOptions()
	opts.ChunkBytes = 4 << 10
	opts.CacheBytes = 16 << 20
	dir := t.TempDir()
	store, err := core.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	const writers = 4
	const side = 32
	var stop atomic.Bool
	var wg sync.WaitGroup
	for ci := 0; ci < writers; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := client.New(ts.URL)
			name := fmt.Sprintf("G%d", ci)
			if err := c.CreateArray(denseSchema(name, side)); err != nil {
				return
			}
			rng := rand.New(rand.NewSource(int64(ci)))
			var ids []int
			for !stop.Load() {
				id, err := c.Insert(name, core.DensePayload(randDense(rng, side)))
				if err != nil {
					return // connection torn down by shutdown — expected
				}
				ids = append(ids, id)
				if _, err := c.Select(name, ids[rng.Intn(len(ids))]); err != nil {
					return
				}
			}
		}(ci)
	}

	time.Sleep(100 * time.Millisecond)
	// graceful: the httptest server waits for in-flight requests
	ts.Close()
	stop.Store(true)
	wg.Wait()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// the store must reopen clean, with every array fully readable
	reopened, err := core.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	names := reopened.ListArrays()
	if len(names) == 0 {
		t.Fatal("no arrays survived the traffic")
	}
	for _, name := range names {
		rep, err := reopened.Verify(name)
		if err != nil {
			t.Fatalf("verify %s: %v", name, err)
		}
		if !rep.Ok() {
			t.Fatalf("verify %s: %v", name, rep.Problems)
		}
		infos, err := reopened.Versions(name)
		if err != nil || len(infos) == 0 {
			t.Fatalf("versions %s: %d, err=%v", name, len(infos), err)
		}
		if _, err := reopened.Select(name, infos[len(infos)-1].ID); err != nil {
			t.Fatalf("select newest of %s: %v", name, err)
		}
	}
}

// TestClosedStoreAnswers503 checks the service answers 503 once the
// store is closed underneath it.
func TestClosedStoreAnswers503(t *testing.T) {
	_, store, ts := newTestServer(t, Config{})
	c := client.New(ts.URL)
	if err := c.CreateArray(denseSchema("C", 8)); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := c.Select("C", 1)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("select on closed store: %v", err)
	}
}

// TestMetricsEndpoint checks request counters and store stats surface
// in the Prometheus text output.
func TestMetricsEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	c := client.New(ts.URL)
	if err := c.CreateArray(denseSchema("M", 16)); err != nil {
		t.Fatal(err)
	}
	d := array.MustDense(array.Int32, []int64{16, 16})
	if _, err := c.Insert("M", core.DensePayload(d)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Select("M", 1); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`avstored_requests_total{route="create",code="201"} 1`,
		`avstored_requests_total{route="insert",code="201"} 1`,
		`avstored_requests_total{route="select",code="200"} 1`,
		"avstored_request_duration_seconds_count 3",
		"avstored_requests_rejected_total 0",
		"avstored_store_chunks_written",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestTuneEndpoint drives the adaptive-tuner surface end to end over
// HTTP: remote selects feed the daemon's workload histogram (visible via
// GET workload), a forced tune pass reorganizes the skewed array, reads
// stay byte-identical afterwards, and the tune counters reach /metrics.
func TestTuneEndpoint(t *testing.T) {
	opts := core.DefaultOptions()
	opts.ChunkBytes = 4 << 10
	opts.AutoTune.MinOps = 1
	opts.AutoTune.MinSavings = 0.01
	store, err := core.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, _, ts := newTestServer(t, Config{Store: store})
	c := client.New(ts.URL)

	const side, n = 48, 8
	if err := c.CreateArray(denseSchema("T", side)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	versions := make([]*array.Dense, n)
	cur := randDense(rng, side)
	for i := range versions {
		versions[i] = cur.Clone()
		for j := int64(0); j < cur.NumCells(); j++ {
			if rng.Float64() < 0.1 {
				cur.SetBits(j, cur.Bits(j)+1)
			}
		}
		if _, err := c.Insert("T", core.DensePayload(versions[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Reorganize("T", core.ReorganizeOptions{Policy: core.PolicyLinearChain}); err != nil {
		t.Fatal(err)
	}
	// skewed remote traffic: the oldest version is hot
	for i := 0; i < 20; i++ {
		if _, err := c.Select("T", 1); err != nil {
			t.Fatal(err)
		}
	}
	wl, err := c.Workload("T")
	if err != nil {
		t.Fatal(err)
	}
	if len(wl) == 0 || wl[0].Weight < 20 || wl[0].Versions[0] != 1 {
		t.Fatalf("daemon did not record the remote selects: %v", wl)
	}
	rep, err := c.Tune("T")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reorganized {
		t.Fatalf("remote tune pass declined: %s", rep.Reason)
	}
	for i, want := range versions {
		got, err := c.Select("T", i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("version %d not byte-identical after remote tune", i+1)
		}
	}
	// seeding via the API merges into the histogram
	if err := c.RecordWorkload("T", []layout.Query{layout.Snapshot(2, 50)}); err != nil {
		t.Fatal(err)
	}
	wl, err = c.Workload("T")
	if err != nil {
		t.Fatal(err)
	}
	if len(wl) == 0 || wl[0].Weight < 50 || wl[0].Versions[0] != 2 {
		t.Fatalf("seeded workload not recorded: %v", wl)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TunePasses != 1 || st.TuneReorganizes != 1 {
		t.Fatalf("tune counters = %d/%d, want 1/1", st.TunePasses, st.TuneReorganizes)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"avstored_store_tune_passes 1", "avstored_store_tune_reorganizes 1", "avstored_store_workload_ops"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// tune of a missing array maps to 404
	if _, err := c.Tune("nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("tune of unknown array returned %v, want 404", err)
	}
}

// TestInsertBatchRoute drives the batched-insert route end to end: a
// multi-payload body (dense + delta-list) commits atomically, the ids
// come back in payload order, every member reads back byte-identical,
// and a malformed batch body is a 400 that commits nothing.
func TestInsertBatchRoute(t *testing.T) {
	_, store, ts := newTestServer(t, Config{})
	c := client.New(ts.URL)
	const side = 32
	if err := c.CreateArray(denseSchema("Batch", side)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	base := randDense(rng, side)
	id, err := c.Insert("Batch", core.DensePayload(base))
	if err != nil {
		t.Fatal(err)
	}
	next := randDense(rng, side)
	deltaWant := base.Clone()
	deltaWant.SetBitsAt([]int64{3, 4}, 4242)
	ids, err := c.InsertBatch("Batch", []core.Payload{
		core.DensePayload(next),
		core.DeltaListPayload(id, []core.CellUpdate{{Coords: []int64{3, 4}, Bits: 4242}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != id+1 || ids[1] != id+2 {
		t.Fatalf("batch ids = %v, want [%d %d]", ids, id+1, id+2)
	}
	for i, want := range []*array.Dense{next, deltaWant} {
		pl, err := c.Select("Batch", ids[i])
		if err != nil {
			t.Fatalf("batch member %d: %v", ids[i], err)
		}
		if !pl.Dense.Equal(want) {
			t.Fatalf("batch member %d corrupted over the wire", ids[i])
		}
	}
	// remote and embedded agree
	infos, err := store.Versions("Batch")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("embedded store has %d versions, want 3", len(infos))
	}

	// malformed body: first frame valid, second torn mid-frame → 400,
	// nothing committed
	var body strings.Builder
	if err := wire.WritePayload(&body, core.DensePayload(randDense(rng, side))); err != nil {
		t.Fatal(err)
	}
	torn := body.String() + "AVF1\x03garbage"
	resp, err := http.Post(ts.URL+"/v1/arrays/Batch/versions/batch", FrameContentType, strings.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("torn batch answered %d, want 400", resp.StatusCode)
	}
	if infos, _ := store.Versions("Batch"); len(infos) != 3 {
		t.Fatalf("torn batch committed something: %d versions", len(infos))
	}
}

// TestInsertMultiRoute drives the cross-array batch route end to end:
// one /v1/batch request spanning three arrays commits atomically, the
// per-array id map comes back in payload order, every member reads
// back byte-identical from both the remote and the embedded store, and
// a torn multi-batch body is a 400 that commits nothing anywhere.
func TestInsertMultiRoute(t *testing.T) {
	_, store, ts := newTestServer(t, Config{})
	c := client.New(ts.URL)
	const side = 24
	for _, name := range []string{"MulA", "MulB", "MulC"} {
		if err := c.CreateArray(denseSchema(name, side)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(77))
	want := map[string][]*array.Dense{
		"MulA": {randDense(rng, side), randDense(rng, side)},
		"MulB": {randDense(rng, side)},
		"MulC": {randDense(rng, side)},
	}
	batches := make([]core.MultiInsert, 0, len(want))
	for _, name := range []string{"MulA", "MulB", "MulC"} {
		var ps []core.Payload
		for _, d := range want[name] {
			ps = append(ps, core.DensePayload(d))
		}
		batches = append(batches, core.MultiInsert{Array: name, Payloads: ps})
	}
	ids, err := c.InsertMulti(batches)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("id map covers %d arrays, want 3", len(ids))
	}
	for name, ds := range want {
		got := ids[name]
		if len(got) != len(ds) {
			t.Fatalf("%s: %d ids, want %d", name, len(got), len(ds))
		}
		for i, d := range ds {
			pl, err := c.Select(name, got[i])
			if err != nil {
				t.Fatalf("%s@%d: %v", name, got[i], err)
			}
			if !pl.Dense.Equal(d) {
				t.Fatalf("%s@%d corrupted over the wire", name, got[i])
			}
		}
		infos, err := store.Versions(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) != len(ds) {
			t.Fatalf("embedded %s has %d versions, want %d", name, len(infos), len(ds))
		}
	}

	// torn multi body: valid part table, last payload frame truncated →
	// 400, and no array gains a version
	var buf bytes.Buffer
	if err := wire.WriteMultiBatch(&buf, []core.MultiInsert{
		{Array: "MulA", Payloads: []core.Payload{core.DensePayload(randDense(rng, side))}},
		{Array: "MulB", Payloads: []core.Payload{core.DensePayload(randDense(rng, side))}},
	}); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-9]
	resp, err := http.Post(ts.URL+"/v1/batch", FrameContentType, bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("torn multi batch answered %d, want 400", resp.StatusCode)
	}
	for name, ds := range want {
		if infos, _ := store.Versions(name); len(infos) != len(ds) {
			t.Fatalf("torn multi batch committed into %s: %d versions", name, len(infos))
		}
	}
}

// TestIdempotencyKeyScopedByRoute is the regression for the dedupe-key
// collision: the replay table must scope the client's Idempotency-Key
// by method+path, so reusing one key against two different arrays (or
// two different routes) commits twice instead of replaying the first
// array's ids against the second. Only an exact method+path+key match
// replays.
func TestIdempotencyKeyScopedByRoute(t *testing.T) {
	_, store, ts := newTestServer(t, Config{})
	c := client.New(ts.URL)
	const side = 16
	for _, name := range []string{"IdemA", "IdemB"} {
		if err := c.CreateArray(denseSchema(name, side)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(9))
	post := func(name string, d *array.Dense) (*http.Response, int) {
		t.Helper()
		var body strings.Builder
		if err := wire.WritePayload(&body, core.DensePayload(d)); err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/arrays/"+name+"/versions", strings.NewReader(body.String()))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", FrameContentType)
		req.Header.Set("Idempotency-Key", "one-shared-key")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST %s: status %d", name, resp.StatusCode)
		}
		var out struct {
			ID int `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp, out.ID
	}

	dA, dB := randDense(rng, side), randDense(rng, side)
	respA, idA := post("IdemA", dA)
	if respA.Header.Get("Idempotency-Replayed") != "" {
		t.Fatal("first insert claims to be a replay")
	}
	// same key, different array: a fresh commit, never a replay of IdemA
	respB, _ := post("IdemB", dB)
	if respB.Header.Get("Idempotency-Replayed") != "" {
		t.Fatal("same key against a different array replayed instead of committing")
	}
	if infos, _ := store.Versions("IdemB"); len(infos) != 1 {
		t.Fatalf("IdemB has %d versions, want 1 (cross-array key collision swallowed the insert)", len(infos))
	}
	// same key, same route: genuine retry, replayed with the same id
	respA2, idA2 := post("IdemA", dA)
	if respA2.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatal("retry of the same key+route was not replayed")
	}
	if idA2 != idA {
		t.Fatalf("replay returned id %d, want %d", idA2, idA)
	}
	if infos, _ := store.Versions("IdemA"); len(infos) != 1 {
		t.Fatalf("IdemA has %d versions after replay, want 1", len(infos))
	}
}

// readyzFaultFS wraps a base FS and, while armed, fails the Write of
// any MANIFEST-*.log append handle — the uncertain-commit failure that
// degrades the whole store (see core's manifest append tests).
type readyzFaultFS struct {
	fsio.FS
	mu    sync.Mutex
	armed bool
}

func (f *readyzFaultFS) arm(on bool) {
	f.mu.Lock()
	f.armed = on
	f.mu.Unlock()
}

func (f *readyzFaultFS) hot() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.armed
}

func (f *readyzFaultFS) Append(path string) (fsio.File, error) {
	file, err := f.FS.Append(path)
	base := filepath.Base(path)
	if err != nil || !strings.HasPrefix(base, "MANIFEST-") || !strings.HasSuffix(base, ".log") {
		return file, err
	}
	return &readyzFaultFile{File: file, fs: f}, nil
}

type readyzFaultFile struct {
	fsio.File
	fs *readyzFaultFS
}

func (fl *readyzFaultFile) Write(p []byte) (int, error) {
	if fl.fs.hot() {
		return 0, fsio.ErrIO
	}
	return fl.File.Write(p)
}

// TestDegradedRetryAfterFromHealInterval pins the satellite behavior:
// the 503 Retry-After hint on a degraded store is derived from the
// heal prober's cadence (ceil(HealInterval) plus at most a second of
// jitter), not a hardcoded constant — a 30s prober must tell clients
// to come back in 30-31s, on both the write path and /readyz.
func TestDegradedRetryAfterFromHealInterval(t *testing.T) {
	const side = 16
	ffs := &readyzFaultFS{FS: fsio.OS}
	opts := core.DefaultOptions()
	opts.ChunkBytes = 4 << 10
	opts.Durability = true
	opts.FS = ffs
	opts.HealInterval = 30 * time.Second
	st, err := core.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ffs.arm(false)
		st.Close()
	}()
	if err := st.CreateArray(denseSchema("Deg", side)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if _, err := st.Insert("Deg", core.DensePayload(randDense(rng, side))); err != nil {
		t.Fatal(err)
	}
	_, _, ts := newTestServer(t, Config{Store: st})

	// degrade the store: the manifest append fails mid-write, an
	// uncertain commit
	ffs.arm(true)
	if _, err := st.Insert("Deg", core.DensePayload(randDense(rng, side))); err == nil {
		t.Fatal("insert with a failing manifest append succeeded")
	}
	if h := st.Health(); !h.StoreDegraded {
		t.Fatalf("store not degraded: %+v", h)
	}

	wantRetry := func(resp *http.Response, label string) {
		t.Helper()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d, want 503", label, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "30" && ra != "31" {
			t.Fatalf("%s: Retry-After %q, want 30 or 31 (derived from the 30s heal interval)", label, ra)
		}
	}

	var body strings.Builder
	if err := wire.WritePayload(&body, core.DensePayload(randDense(rng, side))); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/arrays/Deg/versions", FrameContentType, strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wantRetry(resp, "degraded insert")

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wantRetry(resp, "readyz")
}
