package server

import (
	"container/list"
	"context"
	"sync"
)

// idemTableSize bounds the idempotency dedupe table. Entries are tiny
// (a key and a handful of version ids), so the bound is about forgetting
// old keys, not memory: a key evicted here makes a very late retry
// re-insert instead of replay, which is the documented contract —
// idempotency keys protect the retry window, not forever.
const idemTableSize = 1024

// idemEntry is one key's lifecycle: open until the first attempt
// resolves, then either a cached success (completed) or removed from
// the table entirely (failures are never cached — the client's retry
// should re-run the insert, not replay the error).
type idemEntry struct {
	done      chan struct{}
	ids       []int
	completed bool
}

// idemTable dedupes retried inserts by client-chosen Idempotency-Key.
// A retry of a key whose first attempt is still in flight coalesces:
// it waits for that attempt and replays its result, so a client whose
// ack was lost to the network gets the originally committed version
// ids instead of inserting a duplicate. Bounded LRU over completed
// entries; in-flight entries are never evicted (an evicted in-flight
// entry would let its coalesced waiters run a duplicate insert).
type idemTable struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type idemNode struct {
	key string
	e   *idemEntry
}

func newIdemTable(max int) *idemTable {
	return &idemTable{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// do runs fn exactly once per key across concurrent and retried
// requests. An empty key opts out of deduplication. replayed reports
// that the returned ids came from a previous attempt (the caller
// surfaces that to the client). A failed fn releases the key so the
// next retry attempts the insert again.
func (t *idemTable) do(ctx context.Context, key string, fn func() ([]int, error)) (ids []int, err error, replayed bool) {
	if key == "" {
		ids, err = fn()
		return ids, err, false
	}
	for {
		t.mu.Lock()
		if el, ok := t.entries[key]; ok {
			e := el.Value.(*idemNode).e
			if e.completed {
				t.order.MoveToFront(el)
				t.mu.Unlock()
				return e.ids, nil, true
			}
			t.mu.Unlock()
			// first attempt still in flight: coalesce onto it, but give
			// up when our own request is cancelled
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, ctx.Err(), false
			}
			continue // re-check: success was cached, or the key was released
		}
		e := &idemEntry{done: make(chan struct{})}
		t.entries[key] = t.order.PushFront(&idemNode{key: key, e: e})
		t.evictLocked()
		t.mu.Unlock()

		ids, err = fn()
		t.mu.Lock()
		if el, ok := t.entries[key]; ok && el.Value.(*idemNode).e == e {
			if err != nil {
				t.order.Remove(el)
				delete(t.entries, key)
			} else {
				e.ids, e.completed = ids, true
			}
		}
		t.mu.Unlock()
		close(e.done)
		return ids, err, false
	}
}

// evictLocked drops least-recently-used completed entries down to the
// bound. In-flight entries are skipped; if the table is somehow full of
// in-flight inserts it temporarily exceeds the bound rather than break
// the coalescing guarantee.
func (t *idemTable) evictLocked() {
	for el := t.order.Back(); el != nil && t.order.Len() > t.max; {
		prev := el.Prev()
		n := el.Value.(*idemNode)
		if n.e.completed {
			t.order.Remove(el)
			delete(t.entries, n.key)
		}
		el = prev
	}
}
