// Package server implements the avstored network service layer: an HTTP
// front end that exposes the full versioned-store API of internal/core to
// remote clients, multiplexing concurrent requests onto one shared
// *core.Store (and so onto its worker pool and decoded-chunk cache).
//
// Control messages are JSON; array payloads travel as internal/wire
// binary frames so dense data never round-trips through base64. The
// server adds the production scaffolding an embedded library does not
// need: a bounded in-flight-request semaphore answering 429 beyond the
// limit, per-request timeouts, request logging, and a /metrics endpoint
// in Prometheus text format surfacing Store.Stats() plus request
// counters and a latency histogram. See DESIGN.md "Service layer" for
// the route table and wire format.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"arrayvers/internal/aql"
	"arrayvers/internal/array"
	"arrayvers/internal/cliutil"
	"arrayvers/internal/core"
	"arrayvers/internal/layout"
	"arrayvers/internal/trace"
	"arrayvers/internal/wire"
)

// FrameContentType labels binary frame responses and requests.
const FrameContentType = "application/x-arrayvers-frame"

// TraceHeader carries the trace ID over the wire: a client sends it to
// have the server join its trace, and every response echoes the ID the
// request was served under (joined or freshly assigned).
const TraceHeader = "AV-Trace-Id"

// Defaults for the zero Config fields.
const (
	DefaultMaxInFlight    = 64
	DefaultRequestTimeout = 60 * time.Second
	// DefaultTraceRing is how many completed request traces
	// GET /debug/traces retains.
	DefaultTraceRing = 256
)

// Config parameterizes a Server.
type Config struct {
	// Store is the one store the server owns and serves. Required.
	Store *core.Store
	// Log receives one structured line per request (trace_id, route,
	// status, duration, bytes). Nil falls back to a text handler over
	// Logger's writer (the pre-slog shim), or slog.Default() when that
	// is nil too.
	Log *slog.Logger
	// Logger is the legacy request logger. Only its output destination
	// is used, and only when Log is nil.
	Logger *log.Logger
	// MaxInFlight bounds concurrently served requests; excess requests
	// are rejected with 429 (backpressure, not queueing). 0 means
	// DefaultMaxInFlight.
	MaxInFlight int
	// RequestTimeout bounds each request's handler; 0 means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// MaxFrameBytes bounds incoming wire frames; 0 means
	// wire.DefaultMaxFrameBytes.
	MaxFrameBytes int64
	// SlowQuery, when positive, logs any completed request trace slower
	// than this at warning level with its per-stage breakdown.
	SlowQuery time.Duration
}

// Server is the HTTP service over one store.
type Server struct {
	store     *core.Store
	engine    *aql.Engine
	log       *slog.Logger
	sem       chan struct{}
	timeout   time.Duration
	maxFrame  int64
	metrics   *metrics
	idem      *idemTable
	traces    *trace.Ring
	slowQuery time.Duration
	handler   http.Handler
}

// New builds a server from the config.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	if cfg.Log == nil {
		if cfg.Logger != nil {
			cfg.Log = slog.New(slog.NewTextHandler(cfg.Logger.Writer(), nil))
		} else {
			cfg.Log = slog.Default()
		}
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = wire.DefaultMaxFrameBytes
	}
	s := &Server{
		store:     cfg.Store,
		engine:    aql.NewEngine(cfg.Store),
		log:       cfg.Log,
		sem:       make(chan struct{}, cfg.MaxInFlight),
		timeout:   cfg.RequestTimeout,
		maxFrame:  cfg.MaxFrameBytes,
		metrics:   newMetrics(),
		idem:      newIdemTable(idemTableSize),
		traces:    trace.NewRing(DefaultTraceRing),
		slowQuery: cfg.SlowQuery,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.route(mux, "GET /v1/health", "health", s.handleHealth)
	s.route(mux, "GET /v1/stats", "stats", s.handleStats)
	s.route(mux, "POST /v1/stats/reset", "stats-reset", s.handleStatsReset)
	s.route(mux, "GET /v1/arrays", "list", s.handleList)
	s.route(mux, "POST /v1/arrays", "create", s.handleCreate)
	s.route(mux, "DELETE /v1/arrays/{name}", "drop", s.handleDrop)
	s.route(mux, "GET /v1/arrays/{name}/info", "info", s.handleInfo)
	s.route(mux, "GET /v1/arrays/{name}/schema", "schema", s.handleSchema)
	s.route(mux, "GET /v1/arrays/{name}/versions", "versions", s.handleVersions)
	s.route(mux, "GET /v1/arrays/{name}/version-at", "version-at", s.handleVersionAt)
	s.route(mux, "GET /v1/arrays/{name}/branched-from", "branched-from", s.handleBranchedFrom)
	s.route(mux, "GET /v1/arrays/{name}/verify", "verify", s.handleVerify)
	s.route(mux, "POST /v1/arrays/{name}/versions", "insert", s.handleInsert)
	s.route(mux, "POST /v1/arrays/{name}/versions/batch", "insert-batch", s.handleInsertBatch)
	s.route(mux, "POST /v1/batch", "insert-multi", s.handleInsertMulti)
	s.routeStream(mux, "GET /v1/arrays/{name}/select", "select", s.handleSelect)
	s.routeStream(mux, "GET /v1/arrays/{name}/select-multi", "select-multi", s.handleSelectMulti)
	s.routeStream(mux, "GET /v1/arrays/{name}/select-sparse-multi", "select-sparse-multi", s.handleSelectSparseMulti)
	s.route(mux, "POST /v1/arrays/{name}/branch", "branch", s.handleBranch)
	s.route(mux, "POST /v1/arrays/{name}/reorganize", "reorganize", s.handleReorganize)
	s.route(mux, "POST /v1/arrays/{name}/tune", "tune", s.handleTune)
	s.route(mux, "GET /v1/arrays/{name}/workload", "workload", s.handleWorkload)
	s.route(mux, "POST /v1/arrays/{name}/workload", "workload-record", s.handleWorkloadRecord)
	s.route(mux, "POST /v1/arrays/{name}/delete-version", "delete-version", s.handleDeleteVersion)
	s.route(mux, "POST /v1/arrays/{name}/compact", "compact", s.handleCompact)
	s.route(mux, "POST /v1/merge", "merge", s.handleMerge)
	s.routeStream(mux, "POST /v1/aql", "aql", s.handleAQL)
	s.handler = mux
	return s, nil
}

// Handler returns the fully middleware-wrapped handler, ready for an
// http.Server (or httptest).
func (s *Server) Handler() http.Handler { return s.handler }

// route registers one instrumented route: in-flight semaphore (429 when
// full), per-request timeout, then counters, latency histogram, and the
// request log line around the handler itself. /healthz and /metrics stay
// outside this wrapper so the daemon remains observable under load.
func (s *Server) route(mux *http.ServeMux, pattern, label string, h http.HandlerFunc) {
	s.register(mux, pattern, label, http.TimeoutHandler(h, s.timeout, `{"error":"request timed out"}`))
}

// routeStream registers a frame-returning (data plane) route. These skip
// http.TimeoutHandler: it would buffer the whole frame in memory a
// second time before sending, and a timeout could not cancel the
// underlying store call anyway — the handler would keep computing while
// the client got a 503. Streaming directly bounds memory at one marshal
// copy and starts the response as soon as the first bytes exist.
func (s *Server) routeStream(mux *http.ServeMux, pattern, label string, h http.HandlerFunc) {
	s.register(mux, pattern, label, h)
}

func (s *Server) register(mux *http.ServeMux, pattern, label string, inner http.Handler) {
	mux.Handle(pattern, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.metrics.rejected.Add(1)
			s.metrics.countOnly(label, http.StatusTooManyRequests)
			s.log.Warn("request rejected",
				"method", r.Method,
				"path", r.URL.Path,
				"route", label,
				"status", http.StatusTooManyRequests,
				"reason", "over in-flight limit")
			w.Header().Set("Retry-After", s.retryAfter())
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "server overloaded: in-flight request limit reached"})
			return
		}
		defer func() { <-s.sem }()
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)

		// Join the caller's trace when the request carries an ID, else
		// start a fresh one; either way the response echoes the ID so
		// the client can fetch the breakdown from /debug/traces. The
		// trace rides the request context through the store pipelines.
		tr := trace.Join(r.Header.Get(TraceHeader), label)
		w.Header().Set(TraceHeader, tr.ID())
		r = r.WithContext(trace.NewContext(r.Context(), tr))

		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		inner.ServeHTTP(sw, r)
		dur := time.Since(start)
		s.metrics.observe(label, sw.code, dur.Seconds())
		sum := tr.Finish()
		s.traces.Add(sum)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"route", label,
			"status", sw.code,
			"duration", dur.Round(time.Microsecond),
			"bytes", sw.bytes,
			"trace_id", sum.ID)
		if s.slowQuery > 0 && dur > s.slowQuery {
			s.log.Warn("slow query",
				"method", r.Method,
				"path", r.URL.Path,
				"route", label,
				"status", sw.code,
				"duration", dur.Round(time.Microsecond),
				"budget", s.slowQuery,
				"trace_id", sum.ID,
				"stages", formatStages(sum))
		}
	}))
}

// formatStages renders a trace's per-stage breakdown as one compact
// string for the slow-query log line.
func formatStages(sum trace.Summary) string {
	if len(sum.Stages) == 0 {
		return "(none)"
	}
	var b strings.Builder
	for i, st := range sum.Stages {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%s", st.Stage, time.Duration(st.Nanos).Round(time.Microsecond))
		if st.Bytes > 0 {
			fmt.Fprintf(&b, "/%dB", st.Bytes)
		}
	}
	return b.String()
}

// retryAfter derives the 429 Retry-After hint from the saturated
// in-flight pool: a bigger pool means more queued work will drain
// before a slot frees, so the hint scales with its size, and a second
// of jitter keeps the rejected cohort from re-arriving in lockstep and
// tripping the limit again all at once.
func (s *Server) retryAfter() string {
	secs := 1 + len(s.sem)/32 + rand.Intn(2)
	return strconv.Itoa(secs)
}

// degradedRetryAfter derives the degraded-mode (503) Retry-After hint
// from the store's heal-prober cadence: the soonest the store can
// plausibly be writable again is one heal interval away, so a shorter
// interval invites faster retries, and a second of jitter spreads the
// retrying cohort out — mirroring the 429 path's derived hint.
func (s *Server) degradedRetryAfter() string {
	iv := s.store.Options().HealInterval
	if iv <= 0 {
		// 0 means the store runs the default prober cadence; negative
		// disables the prober, where a short optimistic hint still beats
		// telling clients to never come back
		iv = time.Second
	}
	secs := int((iv + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs + rand.Intn(2))
}

// statusWriter records the first status code written and the response
// body size.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wrote = true
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

// --- response plumbing ---

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps a store/codec error to a status code and JSON body.
// ErrClosed and ErrFrameTooLarge are typed; the not-found/exists cases
// match the stable "core: ..."-prefixed message forms (anchored so a
// user-supplied name or path embedded in an unrelated error cannot flip
// the status).
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	msg := err.Error()
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, wire.ErrFrameTooLarge):
		code = http.StatusRequestEntityTooLarge
	case errors.Is(err, core.ErrDegraded):
		// degraded mode is transient by design (the heal prober is
		// working on it): tell well-behaved clients when to retry
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", s.degradedRetryAfter())
	case errors.Is(err, core.ErrClosed):
		code = http.StatusServiceUnavailable
	case strings.HasPrefix(msg, "core: array") && strings.HasSuffix(msg, "already exists"):
		code = http.StatusConflict
	case strings.HasPrefix(msg, "core: no array") ||
		(strings.HasPrefix(msg, "core: array") && strings.Contains(msg, "has no version")):
		code = http.StatusNotFound
	}
	writeJSON(w, code, errorBody{Error: msg})
}

func decodeJSONBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// --- query-parameter parsing ---

func versionParam(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("version")
	if raw == "" {
		return 0, errors.New("missing ?version parameter")
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad ?version parameter %q", raw)
	}
	return v, nil
}

func versionsParam(r *http.Request) ([]int, error) {
	raw := r.URL.Query().Get("versions")
	if raw == "" {
		return nil, errors.New("missing ?versions parameter")
	}
	parts := strings.Split(raw, ",")
	ids := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad ?versions element %q", p)
		}
		ids[i] = v
	}
	return ids, nil
}

// boxParam parses the optional ?box=lo,lo:hi,hi parameter; ok reports
// whether a box was present.
func boxParam(r *http.Request) (array.Box, bool, error) {
	raw := r.URL.Query().Get("box")
	if raw == "" {
		return array.Box{}, false, nil
	}
	box, err := cliutil.ParseBox(raw)
	if err != nil {
		return array.Box{}, false, err
	}
	return box, true, nil
}

// --- handlers ---

// handleHealthz is the liveness probe: it answers 200 as long as the
// process serves HTTP at all, even in degraded read-only mode — a
// degraded store is alive and still serves reads, and restarting it
// (the usual reaction to a failed liveness probe) would not fix a sick
// disk.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: it fails while any array (or
// the whole store) is degraded, so a load balancer stops routing
// writes at a node that would 503 them, and resumes once the heal
// prober has flipped the store back to writable. Stays outside the
// in-flight wrapper with /healthz so probes keep answering under load.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.store.Health()
	if h.Degraded {
		w.Header().Set("Retry-After", s.degradedRetryAfter())
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleHealth reports the full degraded-mode state (which arrays,
// why, since when) for operators; readyz is the boolean form of it.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Health())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s.store.Stats(), s.store.Profile())
}

// handleTraces serves the ring of recently completed request traces.
// With ?id=<trace-id> it returns that one trace (404 when it has been
// evicted or never existed); otherwise the whole ring, newest first,
// optionally capped by ?n=. Registered outside the in-flight wrapper
// so the profiling surface stays reachable under load, and so reading
// traces does not itself generate traces.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		sum, ok := s.traces.Find(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("server: no trace %q (evicted or unknown)", id)})
			return
		}
		writeJSON(w, http.StatusOK, sum)
		return
	}
	traces := s.traces.Snapshot()
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "server: n must be a non-negative integer"})
			return
		}
		if n < len(traces) {
			traces = traces[:n]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": traces})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Stats())
}

func (s *Server) handleStatsReset(w http.ResponseWriter, r *http.Request) {
	s.store.ResetStats()
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	names := s.store.ListArrays()
	if names == nil {
		names = []string{}
	}
	writeJSON(w, http.StatusOK, names)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var schema array.Schema
	if err := decodeJSONBody(r, &schema); err != nil {
		s.writeErr(w, err)
		return
	}
	if err := s.store.CreateArray(schema); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": schema.Name})
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	if err := s.store.DeleteArray(r.PathValue("name")); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "dropped"})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.store.Info(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	schema, err := s.store.Schema(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, schema)
}

func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	infos, err := s.store.Versions(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if infos == nil {
		infos = []core.VersionInfo{}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleVersionAt(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("time")
	t, err := time.Parse(time.RFC3339Nano, raw)
	if err != nil {
		s.writeErr(w, fmt.Errorf("bad ?time parameter %q (want RFC 3339): %w", raw, err))
		return
	}
	id, err := s.store.VersionAt(r.PathValue("name"), t)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"id": id})
}

func (s *Server) handleBranchedFrom(w http.ResponseWriter, r *http.Request) {
	ref, err := s.store.BranchedFrom(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ref)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	rep, err := s.store.Verify(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// idemKey scopes the client's Idempotency-Key header by route: the
// dedupe key is method + path + header, so reusing one key against a
// different array — or mixing the single, batch, and multi insert
// routes — can never replay another commit's version ids in place of
// performing the insert. An absent header opts out (empty key).
func idemKey(r *http.Request) string {
	h := r.Header.Get("Idempotency-Key")
	if h == "" {
		return ""
	}
	return r.Method + " " + r.URL.Path + "\x00" + h
}

// handleInsert commits one version. When the request carries an
// Idempotency-Key header, retries of the same key replay the version
// id committed by the first attempt instead of inserting a duplicate —
// the answer to "the insert succeeded but the ack was lost". The
// replayed response is marked with Idempotency-Replayed: true.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	p, err := wire.ReadPayload(r.Body, s.maxFrame)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	name := r.PathValue("name")
	ids, err, replayed := s.idem.do(r.Context(), idemKey(r), func() ([]int, error) {
		id, err := s.store.InsertCtx(r.Context(), name, p)
		if err != nil {
			return nil, err
		}
		return []int{id}, nil
	})
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if replayed {
		w.Header().Set("Idempotency-Replayed", "true")
	}
	writeJSON(w, http.StatusCreated, map[string]int{"id": ids[0]})
}

// handleInsertBatch commits a batched insert: the request body is one
// wire payload frame per version, back to back, and the whole batch
// lands in one shared metadata commit (all-or-nothing). The response
// lists the new version ids in payload order. The whole body shares
// the max-frame byte budget (and wire caps the frame count), so a
// batch cannot buffer unboundedly where a single insert could not.
func (s *Server) handleInsertBatch(w http.ResponseWriter, r *http.Request) {
	// budget: the payload bytes share maxFrame, plus header room for a
	// full MaxBatchPayloads batch of frames
	limit := s.maxFrame + int64(wire.MaxBatchPayloads)*16
	ps, err := wire.ReadPayloadBatch(http.MaxBytesReader(w, r.Body, limit), s.maxFrame)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	name := r.PathValue("name")
	ids, err, replayed := s.idem.do(r.Context(), idemKey(r), func() ([]int, error) {
		return s.store.InsertBatchCtx(r.Context(), name, ps)
	})
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if replayed {
		w.Header().Set("Idempotency-Replayed", "true")
	}
	writeJSON(w, http.StatusCreated, map[string][]int{"ids": ids})
}

// handleInsertMulti commits a cross-array batch: the request body is a
// multi-batch frame (one header frame naming the member arrays and
// their payload counts, then every payload frame back to back), and the
// whole batch lands under the manifest log's single commit point —
// either every array shows its new versions or none does. The response
// maps each array to its new version ids in payload order. The idem
// table stores one flat id list, so the map is rebuilt from the
// request's part layout on replay.
func (s *Server) handleInsertMulti(w http.ResponseWriter, r *http.Request) {
	limit := s.maxFrame + int64(wire.MaxBatchPayloads)*16
	parts, err := wire.ReadMultiBatch(http.MaxBytesReader(w, r.Body, limit), s.maxFrame)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	batches := make([]core.MultiInsert, len(parts))
	for i, p := range parts {
		batches[i] = core.MultiInsert{Array: p.Array, Payloads: p.Payloads}
	}
	flat, err, replayed := s.idem.do(r.Context(), idemKey(r), func() ([]int, error) {
		out, err := s.store.InsertMultiCtx(r.Context(), batches)
		if err != nil {
			return nil, err
		}
		ids := make([]int, 0, len(out))
		for _, b := range batches {
			ids = append(ids, out[b.Array]...)
		}
		return ids, nil
	})
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if replayed {
		w.Header().Set("Idempotency-Replayed", "true")
	}
	out := make(map[string][]int, len(batches))
	pos := 0
	for _, b := range batches {
		out[b.Array] = flat[pos : pos+len(b.Payloads)]
		pos += len(b.Payloads)
	}
	writeJSON(w, http.StatusCreated, map[string]map[string][]int{"ids": out})
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	id, err := versionParam(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	attr := r.URL.Query().Get("attr")
	box, hasBox, err := boxParam(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	// the request context cancels on client disconnect, so an abandoned
	// select stops scheduling chunk decodes instead of running to the end
	var pl core.Plane
	if hasBox {
		pl, err = s.store.SelectRegionAttrCtx(r.Context(), name, id, attr, box)
	} else {
		pl, err = s.store.SelectAttrCtx(r.Context(), name, id, attr)
	}
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", FrameContentType)
	if n, err := wire.WritePlaneNoCopy(w, pl); err == nil && n > 0 {
		s.metrics.addZeroCopy(n)
	}
}

func (s *Server) handleSelectMulti(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ids, err := versionsParam(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	box, hasBox, err := boxParam(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	var d *array.Dense
	if hasBox {
		d, err = s.store.SelectMultiRegionCtx(r.Context(), name, ids, box)
	} else {
		d, err = s.store.SelectMultiRegionCtx(r.Context(), name, ids, array.Box{})
	}
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", FrameContentType)
	if n, err := wire.WriteDenseNoCopy(w, d); err == nil {
		s.metrics.addZeroCopy(n)
	}
}

func (s *Server) handleSelectSparseMulti(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ids, err := versionsParam(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	box, _, err := boxParam(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	set, err := s.store.SelectSparseMultiCtx(r.Context(), name, ids, box)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", FrameContentType)
	_ = wire.WriteSparseSet(w, set)
}

func (s *Server) handleBranch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Version int    `json:"version"`
		NewName string `json:"newName"`
	}
	if err := decodeJSONBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	if err := s.store.Branch(r.PathValue("name"), req.Version, req.NewName); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": req.NewName})
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	var req struct {
		NewName string            `json:"newName"`
		Parents []core.VersionRef `json:"parents"`
	}
	if err := decodeJSONBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	if err := s.store.Merge(req.NewName, req.Parents); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": req.NewName})
}

// reorganizeRequest is the JSON form of core.ReorganizeOptions, with the
// policy by name (as printed by LayoutPolicy.String).
type reorganizeRequest struct {
	Policy       string         `json:"policy"`
	MatrixSample int            `json:"matrixSample,omitempty"`
	BatchK       int            `json:"batchK,omitempty"`
	Workload     []layout.Query `json:"workload,omitempty"`
}

func (s *Server) handleReorganize(w http.ResponseWriter, r *http.Request) {
	var req reorganizeRequest
	if err := decodeJSONBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	policy, err := cliutil.ParsePolicy(req.Policy)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	opts := core.ReorganizeOptions{
		Policy:       policy,
		MatrixSample: req.MatrixSample,
		BatchK:       req.BatchK,
		Workload:     req.Workload,
	}
	if err := s.store.Reorganize(r.PathValue("name"), opts); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "reorganized"})
}

// handleTune forces one adaptive-tuner pass over the array: it
// estimates the I/O cost of the current layout against the
// workload-aware one for the recorded traffic, reorganizes when the
// savings clear the threshold, and returns the TuneReport either way.
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	rep, err := s.store.Tune(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	wl, err := s.store.Workload(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if wl == nil {
		wl = []layout.Query{}
	}
	writeJSON(w, http.StatusOK, wl)
}

// handleWorkloadRecord merges client-supplied weighted queries into the
// array's recorded workload, seeding the adaptive tuner with a-priori
// knowledge instead of waiting for live traffic.
func (s *Server) handleWorkloadRecord(w http.ResponseWriter, r *http.Request) {
	var queries []layout.Query
	if err := decodeJSONBody(r, &queries); err != nil {
		s.writeErr(w, err)
		return
	}
	if err := s.store.RecordWorkload(r.PathValue("name"), queries); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
}

func (s *Server) handleDeleteVersion(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Version int  `json:"version"`
		Compact bool `json:"compact,omitempty"`
	}
	if err := decodeJSONBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	name := r.PathValue("name")
	if err := s.store.DeleteVersion(name, req.Version); err != nil {
		s.writeErr(w, err)
		return
	}
	// the delete is durable at this point; a compact failure must not
	// read as a failed delete, so it is reported alongside success
	body := map[string]string{"status": "deleted"}
	if req.Compact {
		if err := s.store.Compact(name); err != nil {
			body["compactError"] = err.Error()
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Compact(r.PathValue("name")); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "compacted"})
}

// aqlScalarResult is the JSON body of an AQL statement whose result
// carries no array payload; array results are framed instead.
type aqlScalarResult struct {
	Message string   `json:"message,omitempty"`
	Names   []string `json:"names,omitempty"`
}

func (s *Server) handleAQL(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Stmt string `json:"stmt"`
	}
	if err := decodeJSONBody(r, &req); err != nil {
		s.writeErr(w, err)
		return
	}
	res, err := s.engine.Execute(req.Stmt)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	switch {
	case res.Dense != nil:
		w.Header().Set("Content-Type", FrameContentType)
		if n, err := wire.WriteDenseNoCopy(w, res.Dense); err == nil {
			s.metrics.addZeroCopy(n)
		}
	case res.Sparse != nil:
		w.Header().Set("Content-Type", FrameContentType)
		_ = wire.WriteFrame(w, wire.KindSparse, array.MarshalSparse(res.Sparse))
	default:
		names := res.Names
		if names == nil && res.Message == "" {
			names = []string{}
		}
		writeJSON(w, http.StatusOK, aqlScalarResult{Message: res.Message, Names: names})
	}
}
