package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"arrayvers/client"
	"arrayvers/internal/array"
	"arrayvers/internal/core"
	"arrayvers/internal/trace"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output
// written from concurrent request handlers.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parseLabels splits a `k1="v1",k2="v2"` blob, validating label-name
// syntax and that every value is quoted with only legal escapes
// (backslash, quote, newline). It returns the canonical sorted form.
func parseLabels(t *testing.T, line, blob string) string {
	t.Helper()
	var pairs []string
	rest := blob
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq < 0 {
			t.Fatalf("label blob %q in %q: missing =", blob, line)
		}
		name := rest[:eq]
		if !labelNameRe.MatchString(name) {
			t.Fatalf("bad label name %q in %q", name, line)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			t.Fatalf("unquoted label value in %q", line)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					t.Fatalf("dangling escape in %q", line)
				}
				next := rest[i+1]
				if next != '\\' && next != '"' && next != 'n' {
					t.Fatalf("illegal escape \\%c in %q", next, line)
				}
				val.WriteByte(next)
				i++
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			t.Fatalf("unterminated label value in %q", line)
		}
		pairs = append(pairs, name+"="+val.String())
		rest = strings.TrimPrefix(rest, ",")
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// validatePromText checks a /metrics body against the Prometheus text
// exposition format (0.0.4): every sample line parses, every metric has
// HELP and TYPE lines before its first sample, histogram child series
// use the registered parent name, label escaping is legal, and no
// series (name + label set) appears twice.
func validatePromText(t *testing.T, body string) {
	t.Helper()
	helped := map[string]bool{}
	typed := map[string]string{}
	seen := map[string]bool{}
	sampled := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) < 2 || !metricNameRe.MatchString(fields[0]) {
				t.Fatalf("malformed HELP line %q", line)
			}
			if helped[fields[0]] {
				t.Fatalf("duplicate HELP for %q", fields[0])
			}
			helped[fields[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !metricNameRe.MatchString(fields[0]) {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown TYPE %q in %q", fields[1], line)
			}
			if _, dup := typed[fields[0]]; dup {
				t.Fatalf("duplicate TYPE for %q", fields[0])
			}
			if sampled[fields[0]] {
				t.Fatalf("TYPE for %q appears after its samples", fields[0])
			}
			typed[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unrecognized comment line %q", line)
		}

		// sample line: name[{labels}] value
		name := line
		labels := ""
		if brace := strings.Index(line, "{"); brace >= 0 {
			name = line[:brace]
			end := strings.LastIndex(line, "}")
			if end < brace {
				t.Fatalf("unbalanced braces in %q", line)
			}
			labels = line[brace+1 : end]
			rest := strings.TrimSpace(line[end+1:])
			if _, err := strconv.ParseFloat(rest, 64); err != nil {
				t.Fatalf("bad sample value in %q: %v", line, err)
			}
		} else {
			sp := strings.LastIndex(line, " ")
			if sp < 0 {
				t.Fatalf("malformed sample line %q", line)
			}
			name = line[:sp]
			if _, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64); err != nil {
				t.Fatalf("bad sample value in %q: %v", line, err)
			}
		}
		if !metricNameRe.MatchString(name) {
			t.Fatalf("bad metric name %q in %q", name, line)
		}

		// histogram children resolve to the registered parent name
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && typed[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if typed[base] == "" {
			t.Errorf("series %q has no TYPE line", name)
		}
		if !helped[base] {
			t.Errorf("series %q has no HELP line", name)
		}
		sampled[base] = true

		key := name + "{" + parseLabels(t, line, labels) + "}"
		if seen[key] {
			t.Errorf("duplicate series %q", key)
		}
		seen[key] = true
	}
	if len(seen) == 0 {
		t.Fatal("no samples in /metrics output")
	}
}

// TestMetricsPrometheusGrammar exercises every metric family (request
// counters, stage histograms for both pipelines, per-array cache
// counters, runtime gauges, store counters) and validates the full
// /metrics body against the text-format grammar.
func TestMetricsPrometheusGrammar(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	c := client.New(ts.URL)
	if err := c.CreateArray(denseSchema("G", 16)); err != nil {
		t.Fatal(err)
	}
	d := array.MustDense(array.Int32, []int64{16, 16})
	if _, err := c.Insert("G", core.DensePayload(d)); err != nil {
		t.Fatal(err)
	}
	// twice: one miss pass, one hit pass, so cache series carry both
	for i := 0; i < 2; i++ {
		if _, err := c.Select("G", 1); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	validatePromText(t, body)
	for _, want := range []string{
		`av_select_stage_seconds_bucket{stage="snapshot",le="+Inf"}`,
		`av_select_stage_bytes_total{stage="read"}`,
		`av_commit_stage_seconds_bucket{stage="stage_encode",le="+Inf"}`,
		`av_group_commit_batch_size_count`,
		`av_cache_hits_total{array="G"}`,
		`av_cache_hit_ratio{array="G"}`,
		"av_go_goroutines",
		"av_go_heap_bytes",
		"av_go_gc_pause_seconds_total",
		"av_go_gomaxprocs",
		"av_decode_pool_active",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestTracePropagationEndToEnd sends a traced remote select and checks
// the one trace ID is visible everywhere the design promises: echoed on
// the response header, recorded in the structured request log line,
// retrievable from /debug/traces, and carrying the select pipeline's
// stage breakdown.
func TestTracePropagationEndToEnd(t *testing.T) {
	logBuf := &syncBuffer{}
	_, _, ts := newTestServer(t, Config{Log: slog.New(slog.NewTextHandler(logBuf, nil))})
	c := client.New(ts.URL)
	if err := c.CreateArray(denseSchema("T", 16)); err != nil {
		t.Fatal(err)
	}
	d := array.MustDense(array.Int32, []int64{16, 16})
	if _, err := c.Insert("T", core.DensePayload(d)); err != nil {
		t.Fatal(err)
	}

	id := trace.NewID()
	if _, err := c.WithTrace(id).Select("T", 1); err != nil {
		t.Fatal(err)
	}

	// the header echo, checked on a raw request joining its own fresh
	// trace (reusing id here would push a second, stage-less summary
	// under the same id that shadows the select's in the ring)
	echoID := trace.NewID()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/arrays/T/versions", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceHeader, echoID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	drainBody(resp)
	if got := resp.Header.Get(TraceHeader); got != echoID {
		t.Errorf("response %s = %q, want the sent id %q", TraceHeader, got, echoID)
	}
	// an untraced request gets a fresh id assigned
	resp2, err := http.Get(ts.URL + "/v1/arrays/T/versions")
	if err != nil {
		t.Fatal(err)
	}
	drainBody(resp2)
	if got := resp2.Header.Get(TraceHeader); got == "" || got == id {
		t.Errorf("untraced request should get a fresh trace id, got %q", got)
	}

	// the structured request log carries the id
	if !strings.Contains(logBuf.String(), "trace_id="+id) {
		t.Errorf("request log does not mention trace_id=%s:\n%s", id, logBuf.String())
	}

	// /debug/traces serves the breakdown under the same id
	sum, err := c.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	if sum.ID != id {
		t.Errorf("trace summary id = %q, want %q", sum.ID, id)
	}
	stages := map[string]bool{}
	for _, st := range sum.Stages {
		stages[st.Stage] = true
	}
	for _, want := range []string{core.StageSnapshot, core.StageCache, core.StageMaterialize} {
		if !stages[want] {
			t.Errorf("trace %s missing stage %q (got %v)", id, want, sum.Stages)
		}
	}
	if sum.DurationNs <= 0 {
		t.Errorf("trace duration = %d, want > 0", sum.DurationNs)
	}

	// unknown ids 404 through the typed client error
	if _, err := c.Trace(strings.Repeat("f", 32)); err == nil {
		t.Error("Trace(unknown) should fail")
	}

	// the ring listing includes the trace, newest first
	all, err := c.Traces(0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range all {
		if s.ID == id {
			found = true
		}
	}
	if !found {
		t.Errorf("trace %s not in /debug/traces listing", id)
	}
}

// TestTracedConcurrentClients is the -race workout for the span
// recorder and trace ring: 8 clients issue traced inserts and selects
// while /metrics scrapes snapshot the live histograms, then every
// client's trace must be individually retrievable with its own id.
func TestTracedConcurrentClients(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	const clients = 8
	const opsPerClient = 6

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err == nil {
				drainBody(resp)
			}
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	idsCh := make(chan string, clients*opsPerClient)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := client.New(ts.URL)
			name := fmt.Sprintf("C%d", ci)
			if err := c.CreateArray(denseSchema(name, 16)); err != nil {
				errCh <- err
				return
			}
			d := array.MustDense(array.Int32, []int64{16, 16})
			if _, err := c.Insert(name, core.DensePayload(d)); err != nil {
				errCh <- err
				return
			}
			for op := 0; op < opsPerClient; op++ {
				id := trace.NewID()
				if _, err := c.WithTrace(id).Select(name, 1); err != nil {
					errCh <- fmt.Errorf("client %d op %d: %w", ci, op, err)
					return
				}
				idsCh <- id
			}
		}(ci)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	close(idsCh)
	c := client.New(ts.URL)
	for id := range idsCh {
		sum, err := c.Trace(id)
		if err != nil {
			t.Fatalf("trace %s: %v", id, err)
		}
		if sum.ID != id || len(sum.Stages) == 0 {
			t.Fatalf("trace %s: bad summary %+v", id, sum)
		}
	}
}

// TestDebugTracesEndpoint covers the endpoint's parameter handling: the
// n cap, bad n values, and the JSON shape.
func TestDebugTracesEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	c := client.New(ts.URL)
	if err := c.CreateArray(denseSchema("D", 16)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.ListArrays(); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/debug/traces?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Traces []trace.Summary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 2 {
		t.Fatalf("n=2 returned %d traces", len(out.Traces))
	}
	resp, err = http.Get(ts.URL + "/debug/traces?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	drainBody(resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("n=bogus -> %d, want 400", resp.StatusCode)
	}
}

func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}
