package array

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var allDTypes = []DataType{Int8, Int16, Int32, Int64, UInt8, UInt16, UInt32, Float32, Float64}

func TestDTypeSizes(t *testing.T) {
	want := map[DataType]int{
		Int8: 1, UInt8: 1, Int16: 2, UInt16: 2,
		Int32: 4, UInt32: 4, Float32: 4, Int64: 8, Float64: 8,
	}
	for dt, sz := range want {
		if dt.Size() != sz {
			t.Errorf("%v.Size() = %d, want %d", dt, dt.Size(), sz)
		}
	}
}

func TestParseDataTypeRoundtrip(t *testing.T) {
	for _, dt := range allDTypes {
		got, err := ParseDataType(dt.String())
		if err != nil {
			t.Fatalf("ParseDataType(%q): %v", dt.String(), err)
		}
		if got != dt {
			t.Errorf("ParseDataType(%q) = %v", dt.String(), got)
		}
	}
	if _, err := ParseDataType("bogus"); err == nil {
		t.Error("expected error for bogus dtype")
	}
	if dt, err := ParseDataType("INTEGER"); err != nil || dt != Int32 {
		t.Errorf("AQL INTEGER alias: %v %v", dt, err)
	}
	if dt, err := ParseDataType("DOUBLE"); err != nil || dt != Float64 {
		t.Errorf("AQL DOUBLE alias: %v %v", dt, err)
	}
}

func TestBitsRoundtripAllDTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dt := range allDTypes {
		buf := make([]byte, 32*dt.Size())
		for i := 0; i < 32; i++ {
			v := TruncateBits(dt, int64(rng.Uint64()))
			PutBits(buf, dt, i, v)
			if got := GetBits(buf, dt, i); got != v {
				t.Errorf("%v: PutBits/GetBits mismatch: %d vs %d", dt, got, v)
			}
		}
	}
}

func TestFloatBitsRoundtrip(t *testing.T) {
	for _, f := range []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), -0.0} {
		if got := BitsToFloat(Float64, FloatToBits(Float64, f)); got != f && !(math.IsNaN(got) && math.IsNaN(f)) {
			t.Errorf("float64 %v roundtrip gave %v", f, got)
		}
	}
	if got := BitsToFloat(Float32, FloatToBits(Float32, 1.5)); got != 1.5 {
		t.Errorf("float32 1.5 roundtrip gave %v", got)
	}
	if got := BitsToFloat(Int32, FloatToBits(Int32, 42.9)); got != 42 {
		t.Errorf("int32 42.9 truncation gave %v", got)
	}
}

func TestNewDenseValidation(t *testing.T) {
	if _, err := NewDense(DataType(99), []int64{2}); err == nil {
		t.Error("invalid dtype accepted")
	}
	if _, err := NewDense(Int32, nil); err == nil {
		t.Error("zero-dim shape accepted")
	}
	if _, err := NewDense(Int32, []int64{3, 0}); err == nil {
		t.Error("zero extent accepted")
	}
	if _, err := NewDense(Int32, []int64{3, -1}); err == nil {
		t.Error("negative extent accepted")
	}
}

func TestDenseIndexing(t *testing.T) {
	d := MustDense(Int32, []int64{3, 4, 5})
	if d.NumCells() != 60 {
		t.Fatalf("NumCells = %d", d.NumCells())
	}
	coords := []int64{2, 1, 3}
	flat := d.FlatIndex(coords)
	if flat != 2*20+1*5+3 {
		t.Fatalf("FlatIndex = %d", flat)
	}
	back := d.Coords(flat)
	for i := range coords {
		if back[i] != coords[i] {
			t.Fatalf("Coords(%d) = %v", flat, back)
		}
	}
	d.SetBitsAt(coords, -77)
	if d.BitsAt(coords) != -77 {
		t.Fatal("SetBitsAt/BitsAt mismatch")
	}
	if d.Bits(flat) != -77 {
		t.Fatal("flat read mismatch")
	}
}

func TestDenseSlice2D(t *testing.T) {
	d := MustDense(Int16, []int64{4, 6})
	for i := int64(0); i < d.NumCells(); i++ {
		d.SetBits(i, i)
	}
	box := NewBox([]int64{1, 2}, []int64{3, 5})
	s, err := d.Slice(box)
	if err != nil {
		t.Fatal(err)
	}
	wantShape := []int64{2, 3}
	for i := range wantShape {
		if s.Shape()[i] != wantShape[i] {
			t.Fatalf("slice shape %v", s.Shape())
		}
	}
	for r := int64(0); r < 2; r++ {
		for c := int64(0); c < 3; c++ {
			want := (r+1)*6 + (c + 2)
			if got := s.BitsAt([]int64{r, c}); got != want {
				t.Errorf("slice[%d,%d] = %d, want %d", r, c, got, want)
			}
		}
	}
}

func TestDenseSliceErrors(t *testing.T) {
	d := MustDense(Int8, []int64{4, 4})
	if _, err := d.Slice(NewBox([]int64{0}, []int64{2})); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := d.Slice(NewBox([]int64{0, 0}, []int64{5, 4})); err == nil {
		t.Error("out-of-bounds box accepted")
	}
	if _, err := d.Slice(NewBox([]int64{2, 2}, []int64{1, 3})); err == nil {
		t.Error("inverted box accepted")
	}
}

func TestWriteRegion(t *testing.T) {
	d := MustDense(Int32, []int64{5, 5})
	patch := MustDense(Int32, []int64{2, 3})
	for i := int64(0); i < 6; i++ {
		patch.SetBits(i, 100+i)
	}
	if err := d.WriteRegion([]int64{3, 1}, patch); err != nil {
		t.Fatal(err)
	}
	if got := d.BitsAt([]int64{3, 1}); got != 100 {
		t.Errorf("corner = %d", got)
	}
	if got := d.BitsAt([]int64{4, 3}); got != 105 {
		t.Errorf("far corner = %d", got)
	}
	if got := d.BitsAt([]int64{2, 1}); got != 0 {
		t.Errorf("outside region modified: %d", got)
	}
	if err := d.WriteRegion([]int64{4, 4}, patch); err == nil {
		t.Error("overflow region accepted")
	}
}

func TestSliceWriteRegionInverse(t *testing.T) {
	// Slicing a region then writing it back must be the identity.
	rng := rand.New(rand.NewSource(11))
	d := MustDense(Float32, []int64{7, 9})
	for i := int64(0); i < d.NumCells(); i++ {
		d.SetFloat(i, rng.Float64()*100)
	}
	box := NewBox([]int64{2, 3}, []int64{6, 8})
	s, err := d.Slice(box)
	if err != nil {
		t.Fatal(err)
	}
	clone := d.Clone()
	if err := clone.WriteRegion(box.Lo, s); err != nil {
		t.Fatal(err)
	}
	if !clone.Equal(d) {
		t.Fatal("slice+write-back is not identity")
	}
}

func TestStack(t *testing.T) {
	a := MustDense(Int8, []int64{2, 2})
	b := MustDense(Int8, []int64{2, 2})
	a.Fill(1)
	b.Fill(2)
	st, err := Stack([]*Dense{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if st.NDim() != 3 || st.Shape()[0] != 2 {
		t.Fatalf("stack shape %v", st.Shape())
	}
	if st.BitsAt([]int64{0, 1, 1}) != 1 || st.BitsAt([]int64{1, 0, 0}) != 2 {
		t.Fatal("stack content wrong")
	}
	if _, err := Stack(nil); err == nil {
		t.Error("empty stack accepted")
	}
	c := MustDense(Int8, []int64{2, 3})
	if _, err := Stack([]*Dense{a, c}); err == nil {
		t.Error("shape mismatch accepted")
	}
	d := MustDense(Int16, []int64{2, 2})
	if _, err := Stack([]*Dense{a, d}); err == nil {
		t.Error("dtype mismatch accepted")
	}
}

func TestSparseBasics(t *testing.T) {
	s := MustSparse(Int32, []int64{10, 10}, 0)
	if s.NNZ() != 0 || s.NumCells() != 100 {
		t.Fatal("fresh sparse wrong")
	}
	s.SetBits(55, 7)
	s.SetBits(3, -2)
	s.SetBits(99, 1)
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	if s.Bits(55) != 7 || s.Bits(3) != -2 || s.Bits(99) != 1 || s.Bits(50) != 0 {
		t.Fatal("sparse reads wrong")
	}
	s.SetBits(55, 0) // set back to fill removes entry
	if s.NNZ() != 2 || s.Bits(55) != 0 {
		t.Fatal("fill-removal failed")
	}
	s.SetBits(3, 9) // overwrite
	if s.Bits(3) != 9 || s.NNZ() != 2 {
		t.Fatal("overwrite failed")
	}
}

func TestSparseFromPairs(t *testing.T) {
	s, err := SparseFromPairs(Int32, []int64{4, 4}, -1, []int64{9, 2, 9, 5}, []int64{10, 20, 30, -1})
	if err != nil {
		t.Fatal(err)
	}
	// duplicate idx 9 keeps last (30); value -1 == fill dropped.
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	if s.Bits(9) != 30 || s.Bits(2) != 20 || s.Bits(5) != -1 {
		t.Fatal("pairs content wrong")
	}
	if _, err := SparseFromPairs(Int32, []int64{2}, 0, []int64{5}, []int64{1}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := SparseFromPairs(Int32, []int64{2}, 0, []int64{0, 1}, []int64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSparseDenseRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := MustDense(Int16, []int64{8, 8})
	for i := 0; i < 10; i++ {
		d.SetBits(int64(rng.Intn(64)), int64(rng.Intn(100)+1))
	}
	s, err := SparseFromDense(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(d) {
		t.Fatal("sparse/dense roundtrip mismatch")
	}
}

func TestSparseSlice(t *testing.T) {
	s := MustSparse(Int32, []int64{6, 6}, 0)
	s.SetBits(s6(1, 1), 11)
	s.SetBits(s6(2, 3), 23)
	s.SetBits(s6(5, 5), 55)
	sub, err := s.Slice(NewBox([]int64{1, 1}, []int64{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if sub.NNZ() != 2 {
		t.Fatalf("sub NNZ = %d", sub.NNZ())
	}
	if sub.Bits(0) != 11 { // (0,0) in sub = (1,1) in full
		t.Fatal("sub[0,0] wrong")
	}
	if sub.Bits(1*3+2) != 23 { // (1,2) in sub = (2,3) in full
		t.Fatal("sub[1,2] wrong")
	}
}

func s6(r, c int64) int64 { return r*6 + c }

func TestSparsePairsOrdered(t *testing.T) {
	s := MustSparse(Int32, []int64{100}, 0)
	for _, ix := range []int64{50, 3, 99, 20} {
		s.SetBits(ix, ix)
	}
	var got []int64
	s.Pairs(func(flat, bits int64) {
		got = append(got, flat)
		if bits != flat {
			t.Errorf("pair value %d at %d", bits, flat)
		}
	})
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("pairs not sorted")
		}
	}
}

func TestMarshalDenseRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dt := range allDTypes {
		d := MustDense(dt, []int64{3, 5})
		for i := int64(0); i < d.NumCells(); i++ {
			d.SetBits(i, TruncateBits(dt, int64(rng.Uint64())))
		}
		blob := MarshalDense(d)
		back, err := UnmarshalDense(blob)
		if err != nil {
			t.Fatalf("%v: %v", dt, err)
		}
		if !back.Equal(d) {
			t.Fatalf("%v: roundtrip mismatch", dt)
		}
	}
}

func TestMarshalSparseRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, dt := range allDTypes {
		s := MustSparse(dt, []int64{50, 50}, TruncateBits(dt, 42))
		for i := 0; i < 30; i++ {
			s.SetBits(int64(rng.Intn(2500)), TruncateBits(dt, int64(rng.Uint64())))
		}
		blob := MarshalSparse(s)
		back, err := UnmarshalSparse(blob)
		if err != nil {
			t.Fatalf("%v: %v", dt, err)
		}
		if !back.Equal(s) {
			t.Fatalf("%v: roundtrip mismatch", dt)
		}
	}
}

func TestUnmarshalGeneric(t *testing.T) {
	d := MustDense(Int8, []int64{2})
	s := MustSparse(Int8, []int64{2}, 0)
	db, _ := Marshal(d)
	sb, _ := Marshal(s)
	if v, err := Unmarshal(db); err != nil {
		t.Fatal(err)
	} else if _, ok := v.(*Dense); !ok {
		t.Fatal("dense blob decoded to wrong type")
	}
	if v, err := Unmarshal(sb); err != nil {
		t.Fatal(err)
	} else if _, ok := v.(*Sparse); !ok {
		t.Fatal("sparse blob decoded to wrong type")
	}
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Marshal(42); err == nil {
		t.Error("non-array accepted")
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	d := MustDense(Int32, []int64{4, 4})
	blob := MarshalDense(d)
	if _, err := UnmarshalDense(blob[:len(blob)-5]); err == nil {
		t.Error("truncated dense blob accepted")
	}
	s := MustSparse(Int32, []int64{4, 4}, 0)
	s.SetBits(3, 9)
	sb := MarshalSparse(s)
	if _, err := UnmarshalSparse(sb[:len(sb)-2]); err == nil {
		t.Error("truncated sparse blob accepted")
	}
}

func TestBoxAlgebra(t *testing.T) {
	a := NewBox([]int64{0, 0}, []int64{4, 4})
	b := NewBox([]int64{2, 2}, []int64{6, 6})
	inter := a.Intersect(b)
	if !inter.Equal(NewBox([]int64{2, 2}, []int64{4, 4})) {
		t.Fatalf("intersect = %v", inter)
	}
	if inter.NumCells() != 4 {
		t.Fatalf("intersect cells = %d", inter.NumCells())
	}
	if !a.Overlaps(b) || a.Overlaps(NewBox([]int64{4, 0}, []int64{5, 4})) {
		t.Fatal("overlaps wrong")
	}
	if !a.Contains([]int64{3, 3}) || a.Contains([]int64{4, 0}) {
		t.Fatal("contains wrong")
	}
	if !a.ContainsBox(inter) || b.ContainsBox(a) {
		t.Fatal("containsBox wrong")
	}
	tr := b.Translate([]int64{2, 2})
	if !tr.Equal(NewBox([]int64{0, 0}, []int64{4, 4})) {
		t.Fatalf("translate = %v", tr)
	}
	if BoxOf([]int64{3, 3}).NumCells() != 9 {
		t.Fatal("BoxOf wrong")
	}
	empty := NewBox([]int64{1, 1}, []int64{1, 5})
	if !empty.Empty() || empty.NumCells() != 0 {
		t.Fatal("empty box wrong")
	}
}

func TestSchemaValidate(t *testing.T) {
	good := Schema{
		Name:  "Example",
		Dims:  []Dimension{{Name: "I", Lo: 0, Hi: 2}, {Name: "J", Lo: 0, Hi: 2}},
		Attrs: []Attribute{{Name: "A", Type: Int32}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := good.NumCells(); got != 9 {
		t.Fatalf("NumCells = %d", got)
	}
	if got := good.Shape(); got[0] != 3 || got[1] != 3 {
		t.Fatalf("Shape = %v", got)
	}
	if good.AttrIndex("A") != 0 || good.AttrIndex("Z") != -1 {
		t.Fatal("AttrIndex wrong")
	}
	bad := []Schema{
		{Name: "2bad", Dims: good.Dims, Attrs: good.Attrs},
		{Name: "X", Attrs: good.Attrs},
		{Name: "X", Dims: good.Dims},
		{Name: "X", Dims: []Dimension{{Name: "I", Lo: 5, Hi: 2}}, Attrs: good.Attrs},
		{Name: "X", Dims: []Dimension{{Name: "I", Lo: 0, Hi: 2}, {Name: "I", Lo: 0, Hi: 2}}, Attrs: good.Attrs},
		{Name: "X", Dims: good.Dims, Attrs: []Attribute{{Name: "A", Type: DataType(99)}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestFlatIndexCoordsProperty(t *testing.T) {
	d := MustDense(Int8, []int64{5, 7, 3})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		coords := []int64{int64(rng.Intn(5)), int64(rng.Intn(7)), int64(rng.Intn(3))}
		flat := d.FlatIndex(coords)
		back := d.Coords(flat)
		for i := range coords {
			if back[i] != coords[i] {
				return false
			}
		}
		return flat >= 0 && flat < d.NumCells()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSparseDensityAndSize(t *testing.T) {
	s := MustSparse(Int32, []int64{10, 10}, 0)
	s.SetBits(0, 1)
	s.SetBits(1, 2)
	if s.Density() != 0.02 {
		t.Fatalf("density = %v", s.Density())
	}
	if s.SizeBytes() != 2*(8+4) {
		t.Fatalf("sizeBytes = %d", s.SizeBytes())
	}
}
