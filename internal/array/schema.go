package array

import (
	"fmt"
	"regexp"
)

// Dimension is a typed, fixed-size array dimension with an inclusive
// integer coordinate range, e.g. "I=0:2" in AQL (Appendix A) spans the
// three coordinates 0, 1, 2.
type Dimension struct {
	Name string `json:"name"`
	Lo   int64  `json:"lo"`
	Hi   int64  `json:"hi"` // inclusive, per the paper's AQL syntax
}

// Size returns the number of coordinates along the dimension.
func (d Dimension) Size() int64 { return d.Hi - d.Lo + 1 }

// Attribute is a typed per-cell value, e.g. "A::INTEGER".
type Attribute struct {
	Name string   `json:"name"`
	Type DataType `json:"type"`
}

// Schema describes a named array: its dimensions (which define the cells)
// and its attributes (the data stored in each cell), per §II-A.
type Schema struct {
	Name  string      `json:"name"`
	Dims  []Dimension `json:"dims"`
	Attrs []Attribute `json:"attrs"`
}

var nameRE = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

// Validate checks structural sanity of the schema.
func (s Schema) Validate() error {
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("array: invalid array name %q", s.Name)
	}
	if len(s.Dims) == 0 {
		return fmt.Errorf("array %q: at least one dimension required", s.Name)
	}
	if len(s.Attrs) == 0 {
		return fmt.Errorf("array %q: at least one attribute required", s.Name)
	}
	seen := map[string]bool{}
	for _, d := range s.Dims {
		if !nameRE.MatchString(d.Name) {
			return fmt.Errorf("array %q: invalid dimension name %q", s.Name, d.Name)
		}
		if seen[d.Name] {
			return fmt.Errorf("array %q: duplicate dimension %q", s.Name, d.Name)
		}
		seen[d.Name] = true
		if d.Hi < d.Lo {
			return fmt.Errorf("array %q: dimension %q has Hi %d < Lo %d", s.Name, d.Name, d.Hi, d.Lo)
		}
	}
	for _, a := range s.Attrs {
		if !nameRE.MatchString(a.Name) {
			return fmt.Errorf("array %q: invalid attribute name %q", s.Name, a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("array %q: duplicate attribute %q", s.Name, a.Name)
		}
		seen[a.Name] = true
		if !a.Type.Valid() {
			return fmt.Errorf("array %q: attribute %q has invalid type", s.Name, a.Name)
		}
	}
	return nil
}

// Shape returns the per-dimension extents.
func (s Schema) Shape() []int64 {
	shape := make([]int64, len(s.Dims))
	for i, d := range s.Dims {
		shape[i] = d.Size()
	}
	return shape
}

// NumCells returns the total number of cells defined by the dimensions.
func (s Schema) NumCells() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		n *= d.Size()
	}
	return n
}

// AttrIndex returns the index of the named attribute, or -1.
func (s Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}
