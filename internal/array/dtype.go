// Package array implements the N-dimensional array model underlying the
// versioned storage manager (paper §II, §III-A): dense and sparse arrays
// of typed cells, hyper-rectangle (box) slicing, version stacking, and a
// compact binary serialization.
//
// Cells are carried uniformly as int64 "bit patterns": integer dtypes are
// sign-extended, floating-point dtypes are reinterpreted via their IEEE-754
// bits. Cellwise deltas are wrapping differences of these patterns, which
// is lossless for every dtype and keeps differences of similar values
// narrow (similar floats share exponent and high mantissa bits).
package array

import (
	"encoding/binary"
	"fmt"
	"math"
)

// DataType identifies the fixed-size cell type of an array. The paper's
// arrays are homogeneous: every cell of an array holds the same type
// (§III-A).
type DataType uint8

// Supported cell types.
const (
	Int8 DataType = iota + 1
	Int16
	Int32
	Int64
	UInt8
	UInt16
	UInt32
	Float32
	Float64
)

// Size returns the on-disk size of one cell in bytes.
func (d DataType) Size() int {
	switch d {
	case Int8, UInt8:
		return 1
	case Int16, UInt16:
		return 2
	case Int32, UInt32, Float32:
		return 4
	case Int64, Float64:
		return 8
	default:
		panic(fmt.Sprintf("array: invalid DataType %d", d))
	}
}

// IsFloat reports whether the dtype holds IEEE-754 values.
func (d DataType) IsFloat() bool { return d == Float32 || d == Float64 }

// Valid reports whether d is a known dtype.
func (d DataType) Valid() bool { return d >= Int8 && d <= Float64 }

func (d DataType) String() string {
	switch d {
	case Int8:
		return "int8"
	case Int16:
		return "int16"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case UInt8:
		return "uint8"
	case UInt16:
		return "uint16"
	case UInt32:
		return "uint32"
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	default:
		return fmt.Sprintf("DataType(%d)", uint8(d))
	}
}

// ParseDataType converts a dtype name (as used in schemas and AQL) into a
// DataType.
func ParseDataType(s string) (DataType, error) {
	switch s {
	case "int8":
		return Int8, nil
	case "int16":
		return Int16, nil
	case "int32", "integer", "INTEGER":
		return Int32, nil
	case "int64":
		return Int64, nil
	case "uint8":
		return UInt8, nil
	case "uint16":
		return UInt16, nil
	case "uint32":
		return UInt32, nil
	case "float32":
		return Float32, nil
	case "float64", "double", "DOUBLE":
		return Float64, nil
	default:
		return 0, fmt.Errorf("array: unknown data type %q", s)
	}
}

// GetBits reads cell i of a raw little-endian buffer as an int64 bit
// pattern. Integer types are sign-extended (unsigned types zero-extended);
// float types are reinterpreted bitwise.
func GetBits(data []byte, d DataType, i int) int64 {
	switch d {
	case Int8:
		return int64(int8(data[i]))
	case UInt8:
		return int64(data[i])
	case Int16:
		return int64(int16(binary.LittleEndian.Uint16(data[i*2:])))
	case UInt16:
		return int64(binary.LittleEndian.Uint16(data[i*2:]))
	case Int32:
		return int64(int32(binary.LittleEndian.Uint32(data[i*4:])))
	case UInt32, Float32:
		return int64(binary.LittleEndian.Uint32(data[i*4:]))
	case Int64, Float64:
		return int64(binary.LittleEndian.Uint64(data[i*8:]))
	default:
		panic(fmt.Sprintf("array: invalid DataType %d", d))
	}
}

// PutBits writes bit pattern v into cell i of a raw little-endian buffer,
// truncating to the dtype's width.
func PutBits(data []byte, d DataType, i int, v int64) {
	switch d {
	case Int8, UInt8:
		data[i] = byte(v)
	case Int16, UInt16:
		binary.LittleEndian.PutUint16(data[i*2:], uint16(v))
	case Int32, UInt32, Float32:
		binary.LittleEndian.PutUint32(data[i*4:], uint32(v))
	case Int64, Float64:
		binary.LittleEndian.PutUint64(data[i*8:], uint64(v))
	default:
		panic(fmt.Sprintf("array: invalid DataType %d", d))
	}
}

// FloatToBits converts a float value into the bit pattern stored for the
// given dtype. For integer dtypes the value is truncated toward zero.
func FloatToBits(d DataType, f float64) int64 {
	switch d {
	case Float32:
		return int64(math.Float32bits(float32(f)))
	case Float64:
		return int64(math.Float64bits(f))
	default:
		return int64(f)
	}
}

// BitsToFloat converts a stored bit pattern back into a float value.
func BitsToFloat(d DataType, v int64) float64 {
	switch d {
	case Float32:
		return float64(math.Float32frombits(uint32(v)))
	case Float64:
		return math.Float64frombits(uint64(v))
	default:
		return float64(v)
	}
}

// TruncateBits reduces v to the canonical bit pattern for dtype d, i.e.
// the value GetBits would return after PutBits(v). Encoders use this to
// normalize generated values.
func TruncateBits(d DataType, v int64) int64 {
	switch d {
	case Int8:
		return int64(int8(v))
	case UInt8:
		return int64(uint8(v))
	case Int16:
		return int64(int16(v))
	case UInt16:
		return int64(uint16(v))
	case Int32:
		return int64(int32(v))
	case UInt32, Float32:
		return int64(uint32(v))
	default:
		return v
	}
}
