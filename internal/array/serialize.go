package array

import (
	"encoding/binary"
	"fmt"
)

// Binary serialization of arrays. Dense arrays are written as their raw
// row-major payload with a small header (the paper stores dense versions
// "contiguously without any prefix or header"; we keep a 1-line header so
// blobs are self-describing, and subtract it nowhere since it is O(1)).
// Sparse arrays are written as delta-varint indices plus per-dtype values.

const (
	magicDense  = 0xA17D
	magicSparse = 0xA175
)

// AppendDenseHeader appends the dense blob header — magic, dtype, ndim,
// shape varints — without the cell bytes. It exists for vectored writers
// that send the header and the (possibly mmap-backed) cell bytes as
// separate I/O vectors instead of materializing one contiguous blob;
// header + d.Bytes() is exactly a MarshalDense blob.
func AppendDenseHeader(buf []byte, d *Dense) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, magicDense)
	buf = append(buf, byte(d.dtype), byte(len(d.shape)))
	for _, s := range d.shape {
		buf = binary.AppendVarint(buf, s)
	}
	return buf
}

// MarshalDense serializes a dense array.
func MarshalDense(d *Dense) []byte {
	buf := AppendDenseHeader(make([]byte, 0, 16+len(d.data)), d)
	return append(buf, d.data...)
}

// UnmarshalDense parses a blob produced by MarshalDense.
func UnmarshalDense(blob []byte) (*Dense, error) {
	if len(blob) < 4 || binary.LittleEndian.Uint16(blob) != magicDense {
		return nil, fmt.Errorf("array: not a dense array blob")
	}
	dtype := DataType(blob[2])
	ndim := int(blob[3])
	if !dtype.Valid() {
		return nil, fmt.Errorf("array: blob has invalid dtype %d", dtype)
	}
	pos := 4
	shape := make([]int64, ndim)
	for i := 0; i < ndim; i++ {
		v, n := binary.Varint(blob[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("array: truncated dense blob header")
		}
		shape[i] = v
		pos += n
	}
	return DenseFromBytes(dtype, shape, append([]byte(nil), blob[pos:]...))
}

// MarshalSparse serializes a sparse array: header, fill, nnz, then
// delta-varint indices followed by raw values.
func MarshalSparse(s *Sparse) []byte {
	buf := make([]byte, 0, 16+len(s.idx)*(4+s.dtype.Size()))
	buf = binary.LittleEndian.AppendUint16(buf, magicSparse)
	buf = append(buf, byte(s.dtype), byte(len(s.shape)))
	for _, d := range s.shape {
		buf = binary.AppendVarint(buf, d)
	}
	buf = binary.AppendVarint(buf, s.fill)
	buf = binary.AppendUvarint(buf, uint64(len(s.idx)))
	prev := int64(0)
	for _, ix := range s.idx {
		buf = binary.AppendUvarint(buf, uint64(ix-prev))
		prev = ix
	}
	vals := make([]byte, len(s.vals)*s.dtype.Size())
	for k, v := range s.vals {
		PutBits(vals, s.dtype, k, v)
	}
	return append(buf, vals...)
}

// UnmarshalSparse parses a blob produced by MarshalSparse.
func UnmarshalSparse(blob []byte) (*Sparse, error) {
	if len(blob) < 4 || binary.LittleEndian.Uint16(blob) != magicSparse {
		return nil, fmt.Errorf("array: not a sparse array blob")
	}
	dtype := DataType(blob[2])
	ndim := int(blob[3])
	if !dtype.Valid() {
		return nil, fmt.Errorf("array: blob has invalid dtype %d", dtype)
	}
	pos := 4
	shape := make([]int64, ndim)
	for i := 0; i < ndim; i++ {
		v, n := binary.Varint(blob[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("array: truncated sparse blob header")
		}
		shape[i] = v
		pos += n
	}
	fill, n := binary.Varint(blob[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("array: truncated sparse blob fill")
	}
	pos += n
	nnz, n := binary.Uvarint(blob[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("array: truncated sparse blob count")
	}
	pos += n
	s, err := NewSparse(dtype, shape, fill)
	if err != nil {
		return nil, err
	}
	// every index gap is at least one byte and every value dtype.Size()
	// bytes, so a count the remaining input cannot back is hostile —
	// reject it before sizing any allocation by it
	if nnz > uint64(len(blob)-pos)/uint64(1+dtype.Size()) {
		return nil, fmt.Errorf("array: sparse blob claims %d pairs in %d bytes", nnz, len(blob)-pos)
	}
	total := s.NumCells()
	s.idx = make([]int64, nnz)
	prev := int64(-1)
	for k := uint64(0); k < nnz; k++ {
		d, n := binary.Uvarint(blob[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("array: truncated sparse blob index %d", k)
		}
		gap := int64(d)
		if k == 0 {
			gap++ // first index is stored as-is; prev starts at -1
		}
		if gap <= 0 || prev > total-1-gap {
			return nil, fmt.Errorf("array: sparse blob index %d out of range", k)
		}
		prev += gap
		s.idx[k] = prev
		pos += n
	}
	want := int(nnz) * dtype.Size()
	if len(blob)-pos != want {
		return nil, fmt.Errorf("array: sparse blob has %d value bytes, want %d", len(blob)-pos, want)
	}
	s.vals = make([]int64, nnz)
	for k := range s.vals {
		s.vals[k] = GetBits(blob[pos:], dtype, k)
	}
	return s, nil
}

// Marshal serializes either representation, choosing whichever form the
// array already uses.
func Marshal(a any) ([]byte, error) {
	switch v := a.(type) {
	case *Dense:
		return MarshalDense(v), nil
	case *Sparse:
		return MarshalSparse(v), nil
	default:
		return nil, fmt.Errorf("array: cannot marshal %T", a)
	}
}

// Unmarshal parses a blob produced by Marshal and returns either *Dense
// or *Sparse.
func Unmarshal(blob []byte) (any, error) {
	if len(blob) < 2 {
		return nil, fmt.Errorf("array: blob too short")
	}
	switch binary.LittleEndian.Uint16(blob) {
	case magicDense:
		return UnmarshalDense(blob)
	case magicSparse:
		return UnmarshalSparse(blob)
	default:
		return nil, fmt.Errorf("array: unknown blob magic %#x", binary.LittleEndian.Uint16(blob))
	}
}
