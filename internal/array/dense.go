package array

import (
	"fmt"
)

// Dense is a bounded rectangular array stored in row-major order
// (paper §III-A). All cells hold a value of the same DataType; cell
// values are addressed either by N-dimensional coordinates or by their
// row-major flat index.
type Dense struct {
	dtype DataType
	shape []int64
	data  []byte // row-major, little-endian, len = NumCells*dtype.Size()
}

// checkedNumCells validates a shape and returns its cell count,
// rejecting non-positive extents and products that overflow int64 —
// decoded blobs carry shapes, so a hostile shape must fail before any
// allocation sized by it.
func checkedNumCells(shape []int64) (int64, error) {
	if len(shape) == 0 {
		return 0, fmt.Errorf("array: array needs at least one dimension")
	}
	n := int64(1)
	for i, s := range shape {
		if s <= 0 {
			return 0, fmt.Errorf("array: dimension %d has non-positive extent %d", i, s)
		}
		if n > (1<<62)/s {
			return 0, fmt.Errorf("array: shape %v cell count overflows", shape)
		}
		n *= s
	}
	return n, nil
}

// NewDense allocates a zero-filled dense array.
func NewDense(dtype DataType, shape []int64) (*Dense, error) {
	if !dtype.Valid() {
		return nil, fmt.Errorf("array: invalid dtype %d", dtype)
	}
	n, err := checkedNumCells(shape)
	if err != nil {
		return nil, err
	}
	if n > (1<<62)/int64(dtype.Size()) {
		return nil, fmt.Errorf("array: shape %v byte size overflows", shape)
	}
	return &Dense{
		dtype: dtype,
		shape: append([]int64(nil), shape...),
		data:  make([]byte, n*int64(dtype.Size())),
	}, nil
}

// MustDense is NewDense panicking on error; for tests and generators.
func MustDense(dtype DataType, shape []int64) *Dense {
	d, err := NewDense(dtype, shape)
	if err != nil {
		panic(err)
	}
	return d
}

// DenseFromBytes wraps an existing row-major buffer. The buffer is not
// copied; it must have exactly NumCells*dtype.Size() bytes. The size
// check runs before any allocation, so a hostile shape cannot drive an
// oversized zero-fill.
func DenseFromBytes(dtype DataType, shape []int64, data []byte) (*Dense, error) {
	if !dtype.Valid() {
		return nil, fmt.Errorf("array: invalid dtype %d", dtype)
	}
	n, err := checkedNumCells(shape)
	if err != nil {
		return nil, err
	}
	if n > (1<<62)/int64(dtype.Size()) || int64(len(data)) != n*int64(dtype.Size()) {
		return nil, fmt.Errorf("array: buffer has %d bytes, shape %v wants %d cells of %d bytes", len(data), shape, n, dtype.Size())
	}
	return &Dense{
		dtype: dtype,
		shape: append([]int64(nil), shape...),
		data:  data,
	}, nil
}

// DType returns the cell type.
func (d *Dense) DType() DataType { return d.dtype }

// Shape returns the per-dimension extents. The caller must not modify it.
func (d *Dense) Shape() []int64 { return d.shape }

// NDim returns the dimensionality.
func (d *Dense) NDim() int { return len(d.shape) }

// NumCells returns the total cell count.
func (d *Dense) NumCells() int64 {
	n := int64(1)
	for _, s := range d.shape {
		n *= s
	}
	return n
}

// SizeBytes returns the raw payload size in bytes.
func (d *Dense) SizeBytes() int64 { return int64(len(d.data)) }

// Bytes exposes the raw row-major buffer. The caller must not resize it.
func (d *Dense) Bytes() []byte { return d.data }

// FlatIndex converts N-dimensional coordinates to the row-major flat
// index.
func (d *Dense) FlatIndex(coords []int64) int64 {
	idx := int64(0)
	for i, c := range coords {
		idx = idx*d.shape[i] + c
	}
	return idx
}

// Coords converts a flat index back to N-dimensional coordinates.
func (d *Dense) Coords(flat int64) []int64 {
	coords := make([]int64, len(d.shape))
	for i := len(d.shape) - 1; i >= 0; i-- {
		coords[i] = flat % d.shape[i]
		flat /= d.shape[i]
	}
	return coords
}

// Bits returns the bit pattern of the cell at the given flat index.
func (d *Dense) Bits(flat int64) int64 { return GetBits(d.data, d.dtype, int(flat)) }

// SetBits stores a bit pattern at the given flat index.
func (d *Dense) SetBits(flat int64, v int64) { PutBits(d.data, d.dtype, int(flat), v) }

// BitsAt returns the bit pattern of the cell at the given coordinates.
func (d *Dense) BitsAt(coords []int64) int64 { return d.Bits(d.FlatIndex(coords)) }

// SetBitsAt stores a bit pattern at the given coordinates.
func (d *Dense) SetBitsAt(coords []int64, v int64) { d.SetBits(d.FlatIndex(coords), v) }

// Float returns the cell at flat index as a float (numeric view).
func (d *Dense) Float(flat int64) float64 { return BitsToFloat(d.dtype, d.Bits(flat)) }

// SetFloat stores a numeric value at flat index, converting to the dtype.
func (d *Dense) SetFloat(flat int64, f float64) { d.SetBits(flat, FloatToBits(d.dtype, f)) }

// Fill sets every cell to the given bit pattern.
func (d *Dense) Fill(v int64) {
	n := d.NumCells()
	for i := int64(0); i < n; i++ {
		d.SetBits(i, v)
	}
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	return &Dense{
		dtype: d.dtype,
		shape: append([]int64(nil), d.shape...),
		data:  append([]byte(nil), d.data...),
	}
}

// Equal reports whether two dense arrays have identical dtype, shape and
// contents.
func (d *Dense) Equal(o *Dense) bool {
	if o == nil || d.dtype != o.dtype || len(d.shape) != len(o.shape) {
		return false
	}
	for i := range d.shape {
		if d.shape[i] != o.shape[i] {
			return false
		}
	}
	return string(d.data) == string(o.data)
}

// Slice extracts the sub-array covered by box (which must lie within the
// array bounds) into a new dense array.
func (d *Dense) Slice(box Box) (*Dense, error) {
	if err := box.Validate(); err != nil {
		return nil, err
	}
	if box.NDim() != d.NDim() {
		return nil, fmt.Errorf("array: slice box has %d dims, array has %d", box.NDim(), d.NDim())
	}
	if !BoxOf(d.shape).ContainsBox(box) {
		return nil, fmt.Errorf("array: slice box %v exceeds array shape %v", box, d.shape)
	}
	out, err := NewDense(d.dtype, box.Shape())
	if err != nil {
		return nil, err
	}
	copyRegion(out, d, box, make([]int64, d.NDim()))
	return out, nil
}

// WriteRegion copies src into d at the region starting at the given
// offset. src's shape defines the region extent.
func (d *Dense) WriteRegion(offset []int64, src *Dense) error {
	if src.NDim() != d.NDim() {
		return fmt.Errorf("array: region has %d dims, array has %d", src.NDim(), d.NDim())
	}
	if src.dtype != d.dtype {
		return fmt.Errorf("array: region dtype %v differs from array dtype %v", src.dtype, d.dtype)
	}
	hi := make([]int64, d.NDim())
	for i := range hi {
		hi[i] = offset[i] + src.shape[i]
	}
	box := Box{Lo: offset, Hi: hi}
	if !BoxOf(d.shape).ContainsBox(box) {
		return fmt.Errorf("array: region %v exceeds array shape %v", box, d.shape)
	}
	writeRegion(d, src, box)
	return nil
}

// copyRegion copies the cells of src covered by box (in src coordinates)
// into dst at dst coordinates box.Lo - dstOrigin... dst is indexed from
// dstOffset (box.Lo maps to dstOffset).
func copyRegion(dst, src *Dense, box Box, dstOffset []int64) {
	ndim := src.NDim()
	elem := src.dtype.Size()
	// iterate over all rows (all dims except the last), copy contiguous
	// runs along the last dimension.
	rowLen := box.Hi[ndim-1] - box.Lo[ndim-1]
	if rowLen <= 0 {
		return
	}
	coords := append([]int64(nil), box.Lo...)
	dstCoords := make([]int64, ndim)
	for {
		for i := 0; i < ndim; i++ {
			dstCoords[i] = coords[i] - box.Lo[i] + dstOffset[i]
		}
		srcStart := src.FlatIndex(coords) * int64(elem)
		dstStart := dst.FlatIndex(dstCoords) * int64(elem)
		copy(dst.data[dstStart:dstStart+rowLen*int64(elem)], src.data[srcStart:srcStart+rowLen*int64(elem)])
		// advance coords excluding the last dim
		i := ndim - 2
		for ; i >= 0; i-- {
			coords[i]++
			if coords[i] < box.Hi[i] {
				break
			}
			coords[i] = box.Lo[i]
		}
		if i < 0 {
			return
		}
	}
}

// writeRegion copies all of src into dst at region box (in dst coords).
func writeRegion(dst, src *Dense, box Box) {
	ndim := dst.NDim()
	elem := dst.dtype.Size()
	rowLen := box.Hi[ndim-1] - box.Lo[ndim-1]
	if rowLen <= 0 {
		return
	}
	coords := append([]int64(nil), box.Lo...)
	srcCoords := make([]int64, ndim)
	for {
		for i := 0; i < ndim; i++ {
			srcCoords[i] = coords[i] - box.Lo[i]
		}
		dstStart := dst.FlatIndex(coords) * int64(elem)
		srcStart := src.FlatIndex(srcCoords) * int64(elem)
		copy(dst.data[dstStart:dstStart+rowLen*int64(elem)], src.data[srcStart:srcStart+rowLen*int64(elem)])
		i := ndim - 2
		for ; i >= 0; i-- {
			coords[i]++
			if coords[i] < box.Hi[i] {
				break
			}
			coords[i] = box.Lo[i]
		}
		if i < 0 {
			return
		}
	}
}

// Stack combines k same-shaped N-dimensional arrays into one
// (N+1)-dimensional array whose first dimension indexes the inputs. This
// implements the paper's multi-version select: "it returns an
// N+1-dimensional array that is effectively a stack of the specified
// versions" (§II-B).
func Stack(arrays []*Dense) (*Dense, error) {
	if len(arrays) == 0 {
		return nil, fmt.Errorf("array: cannot stack zero arrays")
	}
	first := arrays[0]
	for i, a := range arrays[1:] {
		if a.dtype != first.dtype {
			return nil, fmt.Errorf("array: stack input %d has dtype %v, want %v", i+1, a.dtype, first.dtype)
		}
		if len(a.shape) != len(first.shape) {
			return nil, fmt.Errorf("array: stack input %d has %d dims, want %d", i+1, a.NDim(), first.NDim())
		}
		for j := range a.shape {
			if a.shape[j] != first.shape[j] {
				return nil, fmt.Errorf("array: stack input %d shape %v differs from %v", i+1, a.shape, first.shape)
			}
		}
	}
	shape := append([]int64{int64(len(arrays))}, first.shape...)
	out, err := NewDense(first.dtype, shape)
	if err != nil {
		return nil, err
	}
	stride := int64(len(first.data))
	for i, a := range arrays {
		copy(out.data[int64(i)*stride:], a.data)
	}
	return out, nil
}
