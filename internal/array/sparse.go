package array

import (
	"fmt"
	"sort"
)

// Sparse is a coordinate-list sparse array: a sorted list of (flat index,
// value) pairs plus a fill value used for every unspecified cell. This is
// the paper's sparse representation, "a list of (dimension, attribute)
// value pairs ... along with a default-value which is used to populate the
// attribute values for unspecified dimension values" (§II-A).
type Sparse struct {
	dtype DataType
	shape []int64
	fill  int64   // bit pattern of the default value
	idx   []int64 // sorted, unique flat indices
	vals  []int64 // bit patterns, parallel to idx
}

// NewSparse creates an empty sparse array where every cell holds the fill
// bit pattern.
func NewSparse(dtype DataType, shape []int64, fill int64) (*Sparse, error) {
	if !dtype.Valid() {
		return nil, fmt.Errorf("array: invalid dtype %d", dtype)
	}
	if _, err := checkedNumCells(shape); err != nil {
		return nil, err
	}
	return &Sparse{
		dtype: dtype,
		shape: append([]int64(nil), shape...),
		fill:  TruncateBits(dtype, fill),
	}, nil
}

// MustSparse is NewSparse panicking on error; for tests and generators.
func MustSparse(dtype DataType, shape []int64, fill int64) *Sparse {
	s, err := NewSparse(dtype, shape, fill)
	if err != nil {
		panic(err)
	}
	return s
}

// SparseFromPairs builds a sparse array from unsorted (flat index, bits)
// pairs. Duplicate indices keep the last value.
func SparseFromPairs(dtype DataType, shape []int64, fill int64, idx, vals []int64) (*Sparse, error) {
	if len(idx) != len(vals) {
		return nil, fmt.Errorf("array: %d indices but %d values", len(idx), len(vals))
	}
	s, err := NewSparse(dtype, shape, fill)
	if err != nil {
		return nil, err
	}
	n := s.NumCells()
	type pair struct{ i, v int64 }
	pairs := make([]pair, len(idx))
	for k := range idx {
		if idx[k] < 0 || idx[k] >= n {
			return nil, fmt.Errorf("array: index %d out of range [0,%d)", idx[k], n)
		}
		pairs[k] = pair{idx[k], TruncateBits(dtype, vals[k])}
	}
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].i < pairs[b].i })
	for k := range pairs {
		if k > 0 && pairs[k].i == pairs[k-1].i {
			s.vals[len(s.vals)-1] = pairs[k].v // keep last
			continue
		}
		if pairs[k].v == s.fill {
			continue // storing fill explicitly is redundant
		}
		s.idx = append(s.idx, pairs[k].i)
		s.vals = append(s.vals, pairs[k].v)
	}
	return s, nil
}

// DType returns the cell type.
func (s *Sparse) DType() DataType { return s.dtype }

// Shape returns the per-dimension extents. The caller must not modify it.
func (s *Sparse) Shape() []int64 { return s.shape }

// NDim returns the dimensionality.
func (s *Sparse) NDim() int { return len(s.shape) }

// NumCells returns the total (logical) cell count.
func (s *Sparse) NumCells() int64 {
	n := int64(1)
	for _, d := range s.shape {
		n *= d
	}
	return n
}

// NNZ returns the number of explicitly stored cells.
func (s *Sparse) NNZ() int { return len(s.idx) }

// Fill returns the default value's bit pattern.
func (s *Sparse) Fill() int64 { return s.fill }

// Density returns the fraction of cells explicitly stored.
func (s *Sparse) Density() float64 {
	n := s.NumCells()
	if n == 0 {
		return 0
	}
	return float64(len(s.idx)) / float64(n)
}

// SizeBytes estimates the serialized payload size: 8 bytes of index plus
// one cell per stored entry (matching the paper's "series of values
// preceded by their position in the array", §III-B.1).
func (s *Sparse) SizeBytes() int64 {
	return int64(len(s.idx)) * int64(8+s.dtype.Size())
}

// Bits returns the bit pattern at the given flat index.
func (s *Sparse) Bits(flat int64) int64 {
	k := sort.Search(len(s.idx), func(i int) bool { return s.idx[i] >= flat })
	if k < len(s.idx) && s.idx[k] == flat {
		return s.vals[k]
	}
	return s.fill
}

// SetBits stores a bit pattern at the given flat index. Setting a cell to
// the fill value removes it from the explicit list.
func (s *Sparse) SetBits(flat int64, v int64) {
	v = TruncateBits(s.dtype, v)
	k := sort.Search(len(s.idx), func(i int) bool { return s.idx[i] >= flat })
	present := k < len(s.idx) && s.idx[k] == flat
	switch {
	case present && v == s.fill:
		s.idx = append(s.idx[:k], s.idx[k+1:]...)
		s.vals = append(s.vals[:k], s.vals[k+1:]...)
	case present:
		s.vals[k] = v
	case v != s.fill:
		s.idx = append(s.idx, 0)
		copy(s.idx[k+1:], s.idx[k:])
		s.idx[k] = flat
		s.vals = append(s.vals, 0)
		copy(s.vals[k+1:], s.vals[k:])
		s.vals[k] = v
	}
}

// Pairs invokes fn for every explicitly stored (flat index, bits) pair in
// ascending index order.
func (s *Sparse) Pairs(fn func(flat int64, bits int64)) {
	for k := range s.idx {
		fn(s.idx[k], s.vals[k])
	}
}

// Clone returns a deep copy.
func (s *Sparse) Clone() *Sparse {
	return &Sparse{
		dtype: s.dtype,
		shape: append([]int64(nil), s.shape...),
		fill:  s.fill,
		idx:   append([]int64(nil), s.idx...),
		vals:  append([]int64(nil), s.vals...),
	}
}

// Equal reports whether two sparse arrays are logically identical (same
// dtype, shape and cell contents; fill values may differ if unused).
func (s *Sparse) Equal(o *Sparse) bool {
	if o == nil || s.dtype != o.dtype || len(s.shape) != len(o.shape) {
		return false
	}
	for i := range s.shape {
		if s.shape[i] != o.shape[i] {
			return false
		}
	}
	if s.fill != o.fill {
		// different fills can still be logically equal only if every cell
		// is explicit in at least one; cheap path: compare via ToDense for
		// small arrays is wasteful, so require identical fills here.
		return false
	}
	if len(s.idx) != len(o.idx) {
		return false
	}
	for k := range s.idx {
		if s.idx[k] != o.idx[k] || s.vals[k] != o.vals[k] {
			return false
		}
	}
	return true
}

// ToDense materializes the sparse array.
func (s *Sparse) ToDense() (*Dense, error) {
	d, err := NewDense(s.dtype, s.shape)
	if err != nil {
		return nil, err
	}
	if s.fill != 0 {
		d.Fill(s.fill)
	}
	for k := range s.idx {
		d.SetBits(s.idx[k], s.vals[k])
	}
	return d, nil
}

// SparseFromDense converts a dense array into a sparse one, treating the
// given bit pattern as the fill value.
func SparseFromDense(d *Dense, fill int64) (*Sparse, error) {
	s, err := NewSparse(d.DType(), d.Shape(), fill)
	if err != nil {
		return nil, err
	}
	n := d.NumCells()
	for i := int64(0); i < n; i++ {
		if v := d.Bits(i); v != s.fill {
			s.idx = append(s.idx, i)
			s.vals = append(s.vals, v)
		}
	}
	return s, nil
}

// Slice extracts the sub-array covered by box into a new sparse array
// with the same fill value.
func (s *Sparse) Slice(box Box) (*Sparse, error) {
	if err := box.Validate(); err != nil {
		return nil, err
	}
	if box.NDim() != s.NDim() {
		return nil, fmt.Errorf("array: slice box has %d dims, array has %d", box.NDim(), s.NDim())
	}
	if !BoxOf(s.shape).ContainsBox(box) {
		return nil, fmt.Errorf("array: slice box %v exceeds array shape %v", box, s.shape)
	}
	out, err := NewSparse(s.dtype, box.Shape(), s.fill)
	if err != nil {
		return nil, err
	}
	outShape := box.Shape()
	coords := make([]int64, s.NDim())
	for k := range s.idx {
		flat := s.idx[k]
		for i := len(s.shape) - 1; i >= 0; i-- {
			coords[i] = flat % s.shape[i]
			flat /= s.shape[i]
		}
		if !box.Contains(coords) {
			continue
		}
		outFlat := int64(0)
		for i := range coords {
			outFlat = outFlat*outShape[i] + (coords[i] - box.Lo[i])
		}
		out.idx = append(out.idx, outFlat)
		out.vals = append(out.vals, s.vals[k])
	}
	return out, nil
}
