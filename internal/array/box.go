package array

import "fmt"

// Box is an axis-aligned hyper-rectangle in cell coordinates, the unit of
// sub-array selection ("a slice of one or a collection of versions",
// paper §I). Lo is inclusive, Hi is exclusive, one entry per dimension.
type Box struct {
	Lo []int64
	Hi []int64
}

// NewBox constructs a Box from corner coordinates.
func NewBox(lo, hi []int64) Box {
	return Box{Lo: append([]int64(nil), lo...), Hi: append([]int64(nil), hi...)}
}

// BoxOf returns the full box covering an array of the given shape.
func BoxOf(shape []int64) Box {
	lo := make([]int64, len(shape))
	hi := append([]int64(nil), shape...)
	return Box{Lo: lo, Hi: hi}
}

// NDim returns the box's dimensionality.
func (b Box) NDim() int { return len(b.Lo) }

// Validate checks structural sanity: matching corner lengths and Lo <= Hi.
func (b Box) Validate() error {
	if len(b.Lo) != len(b.Hi) {
		return fmt.Errorf("array: box corners have mismatched dimensionality %d vs %d", len(b.Lo), len(b.Hi))
	}
	for i := range b.Lo {
		if b.Lo[i] > b.Hi[i] {
			return fmt.Errorf("array: box dimension %d has Lo %d > Hi %d", i, b.Lo[i], b.Hi[i])
		}
	}
	return nil
}

// Empty reports whether the box covers no cells.
func (b Box) Empty() bool {
	for i := range b.Lo {
		if b.Lo[i] >= b.Hi[i] {
			return true
		}
	}
	return len(b.Lo) == 0
}

// NumCells returns the number of cells covered by the box.
func (b Box) NumCells() int64 {
	if len(b.Lo) == 0 {
		return 0
	}
	n := int64(1)
	for i := range b.Lo {
		side := b.Hi[i] - b.Lo[i]
		if side <= 0 {
			return 0
		}
		n *= side
	}
	return n
}

// Shape returns the per-dimension extent of the box.
func (b Box) Shape() []int64 {
	s := make([]int64, len(b.Lo))
	for i := range s {
		s[i] = b.Hi[i] - b.Lo[i]
		if s[i] < 0 {
			s[i] = 0
		}
	}
	return s
}

// Intersect returns the overlap of two boxes (possibly empty).
func (b Box) Intersect(o Box) Box {
	lo := make([]int64, len(b.Lo))
	hi := make([]int64, len(b.Lo))
	for i := range b.Lo {
		lo[i] = max64(b.Lo[i], o.Lo[i])
		hi[i] = min64(b.Hi[i], o.Hi[i])
		if hi[i] < lo[i] {
			hi[i] = lo[i]
		}
	}
	return Box{Lo: lo, Hi: hi}
}

// Contains reports whether the coordinate pt lies inside the box.
func (b Box) Contains(pt []int64) bool {
	for i := range b.Lo {
		if pt[i] < b.Lo[i] || pt[i] >= b.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether o lies entirely inside b.
func (b Box) ContainsBox(o Box) bool {
	for i := range b.Lo {
		if o.Lo[i] < b.Lo[i] || o.Hi[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Overlaps reports whether the two boxes share at least one cell.
func (b Box) Overlaps(o Box) bool {
	for i := range b.Lo {
		if b.Lo[i] >= o.Hi[i] || o.Lo[i] >= b.Hi[i] {
			return false
		}
	}
	return len(b.Lo) > 0
}

// Translate returns the box shifted by -origin, i.e. re-expressed in a
// coordinate system whose origin is at `origin`.
func (b Box) Translate(origin []int64) Box {
	lo := make([]int64, len(b.Lo))
	hi := make([]int64, len(b.Lo))
	for i := range b.Lo {
		lo[i] = b.Lo[i] - origin[i]
		hi[i] = b.Hi[i] - origin[i]
	}
	return Box{Lo: lo, Hi: hi}
}

// Equal reports structural equality.
func (b Box) Equal(o Box) bool {
	if len(b.Lo) != len(o.Lo) {
		return false
	}
	for i := range b.Lo {
		if b.Lo[i] != o.Lo[i] || b.Hi[i] != o.Hi[i] {
			return false
		}
	}
	return true
}

func (b Box) String() string {
	return fmt.Sprintf("[%v,%v)", b.Lo, b.Hi)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
