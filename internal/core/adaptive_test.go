package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"arrayvers/internal/array"
	"arrayvers/internal/layout"
	"arrayvers/internal/workload"
)

// Workload-replay coverage for the adaptive reorganizer: deterministic
// traces are replayed against a store (recording into the workload
// histogram exactly as live traffic would), the tuner runs, and the
// tests assert that it converges to the offline workload-aware layout,
// that reads stay byte-identical across every tuner-triggered
// re-layout, and that a workload the current layout already serves well
// never triggers a rewrite.

// replayTrace executes a read-only workload trace against the store.
func replayTrace(t *testing.T, s *Store, name string, ops []workload.Op) {
	t.Helper()
	for _, op := range ops {
		var err error
		switch op.Kind {
		case workload.SelectOne:
			_, err = s.Select(name, op.Versions[0])
		case workload.SelectRange:
			_, err = s.SelectMulti(name, op.Versions)
		default:
			t.Fatalf("trace contains non-read op %v", op.Kind)
		}
		if err != nil {
			t.Fatalf("replay %v %v: %v", op.Kind, op.Versions, err)
		}
	}
}

// assertContent checks every version against its ground-truth content.
func assertContent(t *testing.T, s *Store, name string, versions []*array.Dense) {
	t.Helper()
	for i, want := range versions {
		got, err := s.Select(name, i+1)
		if err != nil {
			t.Fatalf("version %d unreadable: %v", i+1, err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("version %d not byte-identical", i+1)
		}
	}
}

func adaptiveOpts() Options {
	o := smallOpts()
	o.AutoTune.MinOps = 1
	return o
}

// TestTunerConvergesOnZipfTrace replays a deterministic skewed trace,
// runs one tuner pass, and asserts (a) the pass reorganizes, (b) the
// committed layout equals what offline PolicyWorkloadAware chooses for
// the same trace, (c) every version reads back byte-identical to ground
// truth, and (d) a second pass over the (decayed) histogram is a no-op —
// the tuner converges rather than oscillating.
func TestTunerConvergesOnZipfTrace(t *testing.T) {
	const n = 12
	s := testStore(t, adaptiveOpts())
	if err := s.CreateArray(schema2D("Z", 48)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(n, 48, 21)
	for _, v := range versions {
		if _, err := s.Insert("Z", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	// the untuned baseline: linear chain, pathological for a trace whose
	// hottest version is the oldest
	if err := s.Reorganize("Z", ReorganizeOptions{Policy: PolicyLinearChain}); err != nil {
		t.Fatal(err)
	}
	trace := workload.Zipfian(n, 200, 1.6, 7)

	// offline expectation on the identical trace (ComputeLayout records
	// nothing, so the histogram stays exactly the trace)
	expected, _, expIDs, err := s.ComputeLayout("Z", ReorganizeOptions{
		Policy:   PolicyWorkloadAware,
		Workload: workload.ToQueries(trace),
	})
	if err != nil {
		t.Fatal(err)
	}

	replayTrace(t, s, "Z", trace)
	rep, err := s.Tune("Z")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reorganized {
		t.Fatalf("tuner declined to reorganize the linear baseline: %s", rep.Reason)
	}
	if rep.Savings < rep.MinSavings {
		t.Fatalf("reorganized below threshold: savings %.3f < %.3f", rep.Savings, rep.MinSavings)
	}

	got, ids, err := s.CurrentLayout("Z")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(expIDs) {
		t.Fatalf("layout over %v, expected %v", ids, expIDs)
	}
	if !got.Equal(expected) {
		t.Fatalf("tuned layout %v does not match offline workload-aware layout %v", got.Parent, expected.Parent)
	}
	assertContent(t, s, "Z", versions)

	// convergence: the layout now matches the workload, so another pass
	// must not churn
	rep2, err := s.Tune("Z")
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Reorganized {
		t.Fatalf("tuner reorganized an already-tuned layout (savings %.3f)", rep2.Savings)
	}
	st := s.Stats()
	if st.TunePasses != 2 || st.TuneReorganizes != 1 {
		t.Fatalf("tune counters = %d passes / %d reorgs, want 2/1", st.TunePasses, st.TuneReorganizes)
	}
}

// TestTunerSlidingWindowTrace covers the range-query shape: a window
// sliding across the version axis. The tuner must improve the projected
// cost, keep reads byte-identical, and converge by the second pass.
func TestTunerSlidingWindowTrace(t *testing.T) {
	const n = 16
	o := adaptiveOpts()
	// range scans over a linear chain waste less than skewed snapshots
	// do, so this test exercises the shape with a lower trigger bar
	o.AutoTune.MinSavings = 0.05
	s := testStore(t, o)
	if err := s.CreateArray(schema2D("SW", 48)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(n, 48, 22)
	for _, v := range versions {
		if _, err := s.Insert("SW", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reorganize("SW", ReorganizeOptions{Policy: PolicyLinearChain}); err != nil {
		t.Fatal(err)
	}
	trace := workload.SlidingWindow(n, 60, 4)
	replayTrace(t, s, "SW", trace)
	rep, err := s.Tune("SW")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reorganized {
		t.Fatalf("tuner declined the sliding-window trace: %s", rep.Reason)
	}
	if rep.ProjectedCost >= rep.CurrentCost {
		t.Fatalf("no projected improvement: %v -> %v", rep.CurrentCost, rep.ProjectedCost)
	}
	assertContent(t, s, "SW", versions)
	rep2, err := s.Tune("SW")
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Reorganized {
		t.Fatalf("tuner oscillated on a stable sliding-window workload (savings %.3f)", rep2.Savings)
	}
}

// TestUniformTraceNeverTriggersReorganize is the no-regression guard: an
// array already laid out workload-aware for a uniform trace must not be
// rewritten when the tuner observes that same uniform traffic.
func TestUniformTraceNeverTriggersReorganize(t *testing.T) {
	const n = 8
	s := testStore(t, adaptiveOpts())
	if err := s.CreateArray(schema2D("U", 48)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(n, 48, 23)
	for _, v := range versions {
		if _, err := s.Insert("U", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	trace := workload.Random(n, 200, 9)
	if err := s.Reorganize("U", ReorganizeOptions{
		Policy:   PolicyWorkloadAware,
		Workload: workload.ToQueries(trace),
	}); err != nil {
		t.Fatal(err)
	}
	replayTrace(t, s, "U", trace)
	rep, err := s.Tune("U")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reorganized {
		t.Fatalf("uniform trace triggered a reorganize (savings %.3f)", rep.Savings)
	}
	if !strings.Contains(rep.Reason, "below threshold") {
		t.Fatalf("unexpected skip reason: %q", rep.Reason)
	}
	if got := s.Stats().TuneReorganizes; got != 0 {
		t.Fatalf("TuneReorganizes = %d, want 0", got)
	}
	assertContent(t, s, "U", versions)
}

// TestWorkloadRecorderExportAndDecay pins the Store.Workload surface:
// recorded patterns, weights, RecordWorkload seeding, per-pass decay,
// and the Stats counters.
func TestWorkloadRecorderExportAndDecay(t *testing.T) {
	s := testStore(t, smallOpts()) // default thresholds: MinOps 8 skips the pass
	if err := s.CreateArray(schema2D("W", 32)); err != nil {
		t.Fatal(err)
	}
	for _, v := range evolvingVersions(3, 32, 24) {
		if _, err := s.Insert("W", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Select("W", 2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Select("W", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SelectMulti("W", []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	wl, err := s.Workload("W")
	if err != nil {
		t.Fatal(err)
	}
	if len(wl) != 3 {
		t.Fatalf("got %d patterns, want 3: %v", len(wl), wl)
	}
	// heaviest first
	if wl[0].Weight != 3 || len(wl[0].Versions) != 1 || wl[0].Versions[0] != 2 {
		t.Fatalf("heaviest pattern = %v, want version 2 weight 3", wl[0])
	}
	st := s.Stats()
	if st.WorkloadOps != 5 || st.WorkloadPatterns != 3 {
		t.Fatalf("workload counters = %d ops / %d patterns, want 5/3", st.WorkloadOps, st.WorkloadPatterns)
	}

	// a MinOps-skipped pass must NOT decay: trickle traffic accumulates
	// across intervals instead of being drained before it can ever be
	// acted on
	rep, err := s.Tune("W")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reorganized {
		t.Fatal("5-op workload must not clear the default MinOps threshold")
	}
	wl, err = s.Workload("W")
	if err != nil {
		t.Fatal(err)
	}
	if wl[0].Weight != 3 {
		t.Fatalf("MinOps skip decayed the histogram: heaviest = %v, want 3", wl[0].Weight)
	}

	// seeding: imported queries merge into the histogram
	if err := s.RecordWorkload("W", []layout.Query{layout.Range(1, 3, 10)}); err != nil {
		t.Fatal(err)
	}
	wl, err = s.Workload("W")
	if err != nil {
		t.Fatal(err)
	}
	if wl[0].Weight != 10 || len(wl[0].Versions) != 3 {
		t.Fatalf("seeded pattern = %v, want versions 1..3 weight 10", wl[0])
	}

	// the histogram now clears MinOps (15 ops), so this pass estimates —
	// and an estimating pass decays
	if _, err := s.Tune("W"); err != nil {
		t.Fatal(err)
	}
	wl, err = s.Workload("W")
	if err != nil {
		t.Fatal(err)
	}
	if wl[0].Weight != 5 {
		t.Fatalf("estimating pass did not decay: heaviest = %v, want 5", wl[0].Weight)
	}
	if _, err := s.Workload("nope"); err == nil {
		t.Fatal("Workload of unknown array must error")
	}
	if err := s.RecordWorkload("nope", nil); err == nil {
		t.Fatal("RecordWorkload of unknown array must error")
	}
}

// TestTunerUnderConcurrentLoad runs the background tuner at a tiny
// interval against 8 concurrent select/insert goroutines (the -race
// safety net for the off-lock rewrite path), then checks that every
// version still reads back byte-identical and the store verifies.
func TestTunerUnderConcurrentLoad(t *testing.T) {
	o := concurrencyOpts()
	o.AutoTune = AutoTuneOptions{
		Interval:   2 * time.Millisecond,
		MinSavings: 0.05,
		MinOps:     4,
		Decay:      0.9,
	}
	s := testStore(t, o)
	defer s.Close()
	if err := s.CreateArray(schema2D("T", 64)); err != nil {
		t.Fatal(err)
	}
	const seedVersions = 6
	versions := evolvingVersions(seedVersions+10, 64, 25)
	for _, v := range versions[:seedVersions] {
		if _, err := s.Insert("T", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reorganize("T", ReorganizeOptions{Policy: PolicyLinearChain}); err != nil {
		t.Fatal(err)
	}
	if s.Tuner() == nil {
		t.Fatal("background tuner not running")
	}

	var wg sync.WaitGroup
	fail := make(chan error, 64)
	// 7 selecting goroutines, heavily skewed to the oldest version so
	// the background tuner has something to chase while they run
	for g := 0; g < 7; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				id := 1
				if i%5 == 4 {
					id = (g+i)%seedVersions + 1
				}
				pl, err := s.Select("T", id)
				if err != nil {
					fail <- err
					return
				}
				if !pl.Dense.Equal(versions[id-1]) {
					t.Errorf("select %d mismatch during tuner storm", id)
					return
				}
				if i%7 == 6 {
					if _, err := s.SelectMulti("T", []int{1, 2, 3}); err != nil {
						fail <- err
						return
					}
				}
			}
		}(g)
	}
	// 1 inserting goroutine (8 workers total with the selectors)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, v := range versions[seedVersions:] {
			if _, err := s.Insert("T", DensePayload(v)); err != nil {
				fail <- err
				return
			}
		}
	}()
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}

	// force one deterministic pass on top of whatever the background
	// loop managed, then check the world
	if _, err := s.Tune("T"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().TunePasses; got == 0 {
		t.Fatal("no tuner passes recorded")
	}
	assertContent(t, s, "T", versions)
	rep, err := s.Verify("T")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("store fails verify after tuner storm: %v", rep.Problems)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReorganizeDuringConcurrentInserts pins the off-lock rewrite's
// retry/fallback path: explicit reorganizes race a stream of inserts,
// and every version must stay byte-identical whichever path committed.
func TestReorganizeDuringConcurrentInserts(t *testing.T) {
	s := testStore(t, concurrencyOpts())
	if err := s.CreateArray(schema2D("R", 64)); err != nil {
		t.Fatal(err)
	}
	const seedVersions = 4
	versions := evolvingVersions(seedVersions+12, 64, 26)
	for _, v := range versions[:seedVersions] {
		if _, err := s.Insert("R", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	fail := make(chan error, 16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, v := range versions[seedVersions:] {
			if _, err := s.Insert("R", DensePayload(v)); err != nil {
				fail <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		policies := []LayoutPolicy{PolicyLinearChain, PolicyOptimal, PolicyHeadBiased, PolicyOptimal}
		for _, p := range policies {
			if err := s.Reorganize("R", ReorganizeOptions{Policy: p}); err != nil {
				fail <- err
				return
			}
		}
	}()
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}
	assertContent(t, s, "R", versions)
	rep, err := s.Verify("R")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("verify failed after racing reorganizes: %v", rep.Problems)
	}
}

// TestTuneAllForgetsDroppedArrays guards the ghost-histogram leak: an
// in-flight select can re-create a dropped array's recorder after
// DeleteArray swept it, and the background loop must forget it on the
// next pass instead of reporting "no array" forever.
func TestTuneAllForgetsDroppedArrays(t *testing.T) {
	s := testStore(t, adaptiveOpts())
	if err := s.CreateArray(schema2D("D", 32)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("D", DensePayload(evolvingVersions(1, 32, 27)[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("D", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteArray("D"); err != nil {
		t.Fatal(err)
	}
	// simulate the racing in-flight select resurrecting the recorder
	s.workload.record("D", []int{1}, 1)
	reps, err := s.TuneAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || !strings.Contains(reps[0].Reason, "no array") {
		t.Fatalf("first sweep reports %v, want one no-array report", reps)
	}
	reps, err = s.TuneAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 0 {
		t.Fatalf("ghost histogram survived the sweep: %v", reps)
	}
}

// TestLenientWorkloadSurvivesDeletedVersions pins the tuner's rewrite
// path against the snapshot/delete race: a workload referencing a
// version that no longer exists must be re-filtered at plan time under
// the lenient flag, and keep the strict error for explicit API callers.
func TestLenientWorkloadSurvivesDeletedVersions(t *testing.T) {
	s := testStore(t, adaptiveOpts())
	if err := s.CreateArray(schema2D("L", 48)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(6, 48, 28)
	for _, v := range versions {
		if _, err := s.Insert("L", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	wl := []layout.Query{layout.Snapshot(99, 5), layout.Snapshot(1, 5)}
	strict := ReorganizeOptions{Policy: PolicyWorkloadAware, Workload: wl}
	if err := s.Reorganize("L", strict); err == nil || !strings.Contains(err.Error(), "unknown version") {
		t.Fatalf("strict reorganize accepted a dangling workload reference: %v", err)
	}
	lenient := strict
	lenient.lenientWorkload = true
	if err := s.Reorganize("L", lenient); err != nil {
		t.Fatalf("lenient reorganize failed on a dangling reference: %v", err)
	}
	assertContent(t, s, "L", versions)
}

// TestTunePassLeavesCacheUntouched guards the estimation sweep's cache
// bypass: a declined tuner pass decodes every version, and none of that
// may evict or repopulate the clients' hot decoded-chunk working set.
func TestTunePassLeavesCacheUntouched(t *testing.T) {
	o := concurrencyOpts()
	o.AutoTune.MinOps = 1
	s := testStore(t, o)
	if err := s.CreateArray(schema2D("CC", 64)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(5, 64, 29)
	for _, v := range versions {
		if _, err := s.Insert("CC", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	// warm the client working set
	for i := range versions {
		if _, err := s.Select("CC", i+1); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	if before.CacheEntries == 0 {
		t.Fatal("selects populated no cache entries")
	}
	rep, err := s.Tune("CC")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reorganized {
		t.Fatalf("pass unexpectedly reorganized (savings %.3f); pick a workload below threshold", rep.Savings)
	}
	after := s.Stats()
	if after.CacheEntries != before.CacheEntries || after.CacheEvictions != before.CacheEvictions {
		t.Fatalf("tuner estimation disturbed the cache: entries %d->%d, evictions %d->%d",
			before.CacheEntries, after.CacheEntries, before.CacheEvictions, after.CacheEvictions)
	}
	if after.CacheHits != before.CacheHits || after.CacheMisses != before.CacheMisses {
		t.Fatalf("tuner estimation skewed hit-rate counters: hits %d->%d, misses %d->%d",
			before.CacheHits, after.CacheHits, before.CacheMisses, after.CacheMisses)
	}
	// warm reads still served from cache after the pass
	reads := after.ChunksRead
	if _, err := s.Select("CC", 5); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().ChunksRead; got != reads {
		t.Fatalf("hot select hit disk after a tune pass (%d extra chunk reads)", got-reads)
	}
}

// TestBatchedStrictWorkloadStillValidates pins strict/lenient symmetry:
// BatchK must not silently swallow a dangling workload reference that
// the non-batched strict path rejects.
func TestBatchedStrictWorkloadStillValidates(t *testing.T) {
	s := testStore(t, adaptiveOpts())
	if err := s.CreateArray(schema2D("B", 48)); err != nil {
		t.Fatal(err)
	}
	for _, v := range evolvingVersions(6, 48, 30) {
		if _, err := s.Insert("B", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	bad := ReorganizeOptions{
		Policy:   PolicyWorkloadAware,
		Workload: []layout.Query{layout.Snapshot(99, 5)},
		BatchK:   3,
	}
	if err := s.Reorganize("B", bad); err == nil || !strings.Contains(err.Error(), "unknown version") {
		t.Fatalf("batched strict reorganize accepted a dangling workload reference: %v", err)
	}
}

// TestTuneEstimateCachedAcrossPasses pins the seq-keyed estimate cache:
// a second pass over an array with no metadata mutations in between
// must not re-decode the version history (zero additional chunk reads),
// and any mutation must invalidate the cache.
func TestTuneEstimateCachedAcrossPasses(t *testing.T) {
	o := smallOpts()
	o.AutoTune.MinOps = 1
	s := testStore(t, o)
	if err := s.CreateArray(schema2D("EC", 48)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(4, 48, 31)
	for _, v := range versions {
		if _, err := s.Insert("EC", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	// uniform-ish traffic the space-optimal-ish insert layout already
	// serves fine, so passes estimate and decline
	for i := range versions {
		if _, err := s.Select("EC", i+1); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Tune("EC")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reorganized {
		t.Fatalf("unexpected reorganize (savings %.3f); this test wants declining passes", rep.Savings)
	}
	reads := s.Stats().ChunksRead
	if _, err := s.Tune("EC"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().ChunksRead; got != reads {
		t.Fatalf("pass over an unmutated array re-decoded history (%d extra chunk reads)", got-reads)
	}
	// a mutation invalidates the cached estimate: the next pass decodes
	if _, err := s.Insert("EC", DensePayload(evolvingVersions(1, 48, 32)[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tune("EC"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().ChunksRead; got == reads {
		t.Fatal("pass after a mutation did not re-decode the history")
	}
}
