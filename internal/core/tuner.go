package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"arrayvers/internal/layout"
	"arrayvers/internal/matmat"
)

// The adaptive reorganizer (closing the loop on §IV-D): the select path
// records every access into the workload histogram (workload.go); the
// tuner periodically snapshots the histogram, computes the
// workload-aware layout off-lock, estimates the projected I/O cost
// against the current layout's cost using the materialization matrix,
// and triggers a Reorganize only when the projected savings clear
// AutoTuneOptions.MinSavings. The rewrite rides the existing
// generation-commit protocol, so tuning is crash-safe and never blocks
// readers (see DESIGN.md "Adaptive reorganization").

// TuneReport describes one tuner pass over one array.
type TuneReport struct {
	Array string `json:"array"`
	// Ops is the total recorded (decayed) access weight considered;
	// Patterns is the number of distinct access patterns.
	Ops      float64 `json:"ops"`
	Patterns int     `json:"patterns"`
	// CurrentCost and ProjectedCost are the workload I/O costs (§IV-D,
	// CostΛ) of the layout on disk and the workload-aware candidate;
	// Savings is their fractional difference.
	CurrentCost   float64 `json:"currentCost,omitempty"`
	ProjectedCost float64 `json:"projectedCost,omitempty"`
	Savings       float64 `json:"savings,omitempty"`
	// MinSavings is the threshold the pass applied.
	MinSavings float64 `json:"minSavings"`
	// Reorganized reports whether the pass committed a re-layout;
	// otherwise Reason says why not.
	Reorganized bool   `json:"reorganized"`
	Reason      string `json:"reason,omitempty"`
}

// Tune runs one adaptive-tuner pass over the named array, regardless of
// whether the background loop is enabled: snapshot the recorded
// workload, estimate the I/O cost of the current layout vs. the
// workload-aware one, and reorganize when the projected savings reach
// AutoTune.MinSavings. The pass decays the array's workload histogram,
// so repeated passes track recent traffic.
func (s *Store) Tune(name string) (rep TuneReport, err error) {
	defer func(t0 time.Time) {
		s.prof.tunePass.Observe(time.Since(t0).Seconds())
	}(time.Now())
	at := s.opts.AutoTune.withDefaults()
	rep = TuneReport{Array: name, MinSavings: at.MinSavings}

	s.mu.RLock()
	_, ok := s.arrays[name]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return rep, ErrClosed
	}
	if !ok {
		// a dropped array's histogram and estimate can linger (an
		// in-flight select may re-create the recorder after DeleteArray
		// swept it); forget both so the background loop does not chase
		// the ghost forever
		s.workload.drop(name)
		s.dropTuneEstimate(name)
		return rep, fmt.Errorf("core: no array %q", name)
	}

	s.tunePasses.Add(1)
	// decay only on passes that actually estimated: a transient failure
	// must not drain a histogram it never acted on, and trickle traffic
	// below MinOps must be allowed to accumulate across intervals
	estimated := false
	defer func() {
		if err == nil && estimated {
			s.workload.scale(name, at.Decay)
		}
	}()

	wl, total := s.workload.queries(name)
	rep.Ops = total
	rep.Patterns = len(wl)
	if total < at.MinOps {
		rep.Reason = fmt.Sprintf("insufficient recorded workload (%.1f < %.1f ops)", total, at.MinOps)
		return rep, nil
	}

	// One metadata snapshot feeds everything: the candidate layout, the
	// current layout, and the cost matrix, so the two costs are
	// comparable. All decoding runs off-lock against the snapshot and
	// bypasses the store-wide LRU — an estimation sweep must not evict
	// the clients' hot working set or skew the hit-rate counters. The
	// decoded inputs are cached per mutation sequence, so repeated
	// passes over an unmutated array skip the decode entirely and only
	// re-evaluate costs against the fresh histogram.
	v, release, err := s.snapshotUncached(name)
	if err != nil {
		return rep, err
	}
	if len(v.ids) < 2 {
		release()
		rep.Reason = "fewer than two live versions"
		return rep, nil
	}
	est := s.cachedTuneEstimate(name, v.seq)
	var planes [][]Plane // decoded this pass (nil on an estimate-cache hit)
	if est == nil {
		var ids []int
		ids, planes, err = s.loadPlanesView(v)
		if err != nil {
			release()
			return rep, err
		}
		var mm *matmat.Matrix
		mm, err = s.buildMatrix(v.st.SparseRep, len(v.st.Schema.Attrs), planes, at.MatrixSample)
		if err != nil {
			release()
			return rep, err
		}
		est = &tuneEstimate{seq: v.seq, ids: ids, mm: mm, cur: currentLayoutOf(v, ids)}
		s.storeTuneEstimate(name, est)
	}
	release()
	estimated = true

	// queries may reference versions deleted since they were recorded
	wl = FilterWorkload(wl, est.ids)
	if len(wl) == 0 {
		rep.Reason = "recorded workload references no live versions"
		return rep, nil
	}
	wlIdx, err := remapWorkload(wl, est.ids)
	if err != nil {
		return rep, err
	}
	chosen := layout.WorkloadAware(est.mm, wlIdx)
	rep.CurrentCost = layout.IOCost(est.cur, est.mm, wlIdx)
	rep.ProjectedCost = layout.IOCost(chosen, est.mm, wlIdx)
	if rep.CurrentCost <= 0 {
		rep.Reason = "current layout has zero workload cost"
		return rep, nil
	}
	rep.Savings = 1 - rep.ProjectedCost/rep.CurrentCost
	if rep.Savings < at.MinSavings {
		rep.Reason = fmt.Sprintf("projected savings %.1f%% below threshold %.1f%%",
			rep.Savings*100, at.MinSavings*100)
		return rep, nil
	}

	// The rewrite reuses this pass's decoded planes and chosen layout as
	// long as the array's mutation sequence still matches the estimation
	// snapshot (the uncontended case decodes everything exactly once);
	// if anything mutated in between, Reorganize replans from live
	// metadata, so a racing insert can never publish a layout computed
	// from superseded contents.
	reorgOpts := ReorganizeOptions{
		Policy:       PolicyWorkloadAware,
		Workload:     wl,
		MatrixSample: at.MatrixSample,
		BatchK:       at.BatchK,
		// a version deleted between the histogram snapshot and the
		// rewrite must be re-filtered at plan time, not fail the pass
		lenientWorkload: true,
	}
	if at.BatchK == 0 && planes != nil {
		// batched rewrites slice the workload per batch, and an
		// estimate-cache hit has no decoded planes to hand over; in both
		// cases Reorganize decodes for itself
		reorgOpts.plan = &rewritePlan{seq: v.seq, ids: est.ids, planes: planes, layout: chosen}
	}
	err = s.Reorganize(name, reorgOpts)
	if err != nil {
		return rep, err
	}
	rep.Reorganized = true
	s.tuneReorgs.Add(1)
	return rep, nil
}

// TuneAll runs one tuner pass over every array with recorded traffic.
// Per-array failures are reported in the corresponding report's Reason
// and do not stop the sweep; only a closed store aborts it.
func (s *Store) TuneAll() ([]TuneReport, error) {
	var out []TuneReport
	for _, name := range s.workload.names() {
		rep, err := s.Tune(name)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return out, err
			}
			// arrays can be dropped between listing and tuning; anything
			// else (including a lost reorganize race) waits for the next
			// pass
			rep.Reason = err.Error()
		}
		out = append(out, rep)
	}
	return out, nil
}

// tuneEstimate is one array's cached estimation input, valid for one
// exact mutation sequence: the live version ids, the materialization
// matrix over them, and the layout on disk. The histogram is NOT part
// of it — costs are re-evaluated against fresh traffic on every pass.
type tuneEstimate struct {
	seq uint64
	ids []int
	mm  *matmat.Matrix
	cur layout.Layout
}

func (s *Store) cachedTuneEstimate(name string, seq uint64) *tuneEstimate {
	s.tuneEstMu.Lock()
	defer s.tuneEstMu.Unlock()
	if est := s.tuneEst[name]; est != nil && est.seq == seq {
		return est
	}
	return nil
}

func (s *Store) storeTuneEstimate(name string, est *tuneEstimate) {
	s.tuneEstMu.Lock()
	s.tuneEst[name] = est
	s.tuneEstMu.Unlock()
}

// dropTuneEstimate forgets an array's cached estimate. Required on
// delete/recreate: a fresh incarnation restarts its mutation sequence,
// so a stale entry could otherwise match a coincidentally equal seq.
func (s *Store) dropTuneEstimate(name string) {
	s.tuneEstMu.Lock()
	delete(s.tuneEst, name)
	s.tuneEstMu.Unlock()
}

// currentLayoutOf derives the layout actually on disk from a metadata
// snapshot: a version's parent is the base most of its chunks are
// delta'ed against (self when most chunks are materialized). A base no
// longer live reads as materialized, which only overestimates the
// current cost of an already-degenerate layout.
func currentLayoutOf(v *readView, ids []int) layout.Layout {
	pos := make(map[int]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	l := layout.NewLayout(len(ids))
	for i, id := range ids {
		vm, err := v.version(id)
		if err != nil {
			continue
		}
		counts := map[int]int{}
		for _, chunks := range vm.Chunks {
			for _, e := range chunks {
				counts[e.Base]++
			}
		}
		best, bestN := -1, -1
		for b, n := range counts {
			if n > bestN || (n == bestN && b > best) {
				best, bestN = b, n
			}
		}
		if p, ok := pos[best]; ok && best >= 0 && p != i {
			l.Parent[i] = p
		}
	}
	if !l.IsValid() {
		// a cyclic derivation can only come from metadata we misread;
		// treat everything as materialized (maximally pessimistic about
		// the candidate, so the tuner stays conservative)
		return layout.NewLayout(len(ids))
	}
	return l
}

// CurrentLayout reports the layout the named array currently uses on
// disk (derived from its chunk metadata) and the live version IDs each
// layout index corresponds to.
func (s *Store) CurrentLayout(name string) (layout.Layout, []int, error) {
	s.mu.RLock()
	st, ok := s.arrays[name]
	if !ok {
		s.mu.RUnlock()
		return layout.Layout{}, nil, fmt.Errorf("core: no array %q", name)
	}
	v := s.viewLocked(st, false)
	l := currentLayoutOf(v, v.ids)
	ids := append([]int(nil), v.ids...)
	s.mu.RUnlock()
	return l, ids, nil
}

// Tuner is the background auto-tune loop: every Options.AutoTune.Interval
// it runs TuneAll over the arrays with recorded traffic. It is started
// by Open when the interval is positive and stopped by Store.Close.
type Tuner struct {
	s        *Store
	interval time.Duration
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// startTuner launches the background loop if configured.
func (s *Store) startTuner() {
	if s.opts.AutoTune.Interval <= 0 {
		return
	}
	t := &Tuner{
		s:        s,
		interval: s.opts.AutoTune.Interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.tuner = t
	go t.loop()
}

// Tuner returns the store's background tuner, or nil when
// Options.AutoTune.Interval is zero.
func (s *Store) Tuner() *Tuner { return s.tuner }

func (t *Tuner) loop() {
	defer close(t.done)
	tick := time.NewTicker(t.interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			if _, err := t.s.TuneAll(); errors.Is(err, ErrClosed) {
				return
			}
		}
	}
}

// Stop terminates the loop and waits for any in-flight pass to finish.
// It is idempotent and safe to call concurrently with Close.
func (t *Tuner) Stop() {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}
