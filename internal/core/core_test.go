package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"arrayvers/internal/array"
	"arrayvers/internal/compress"
	"arrayvers/internal/layout"
)

func testStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func smallOpts() Options {
	o := DefaultOptions()
	o.ChunkBytes = 1 << 12 // 4 KB chunks so tests exercise multi-chunk paths
	return o
}

func schema2D(name string, n int64) array.Schema {
	return array.Schema{
		Name:  name,
		Dims:  []array.Dimension{{Name: "X", Lo: 0, Hi: n - 1}, {Name: "Y", Lo: 0, Hi: n - 1}},
		Attrs: []array.Attribute{{Name: "A", Type: array.Int32}},
	}
}

// evolvingVersions builds a smoothly evolving dense version series.
func evolvingVersions(n int, side int64, seed int64) []*array.Dense {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*array.Dense, n)
	cur := array.MustDense(array.Int32, []int64{side, side})
	for i := int64(0); i < cur.NumCells(); i++ {
		cur.SetBits(i, int64(rng.Intn(1000)))
	}
	for v := 0; v < n; v++ {
		out[v] = cur.Clone()
		for i := int64(0); i < cur.NumCells(); i++ {
			if rng.Float64() < 0.1 {
				cur.SetBits(i, cur.Bits(i)+int64(rng.Intn(5)-2))
			}
		}
	}
	return out
}

func TestCreateInsertSelectRoundtrip(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("Example", 50)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(3, 50, 1)
	for i, v := range versions {
		id, err := s.Insert("Example", DensePayload(v))
		if err != nil {
			t.Fatal(err)
		}
		if id != i+1 {
			t.Fatalf("version id = %d, want %d", id, i+1)
		}
	}
	for i, want := range versions {
		got, err := s.Select("Example", i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("version %d content mismatch", i+1)
		}
	}
}

func TestNoOverwriteDeltaChainsSaveSpace(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("W", 64)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(8, 64, 2)
	for _, v := range versions {
		if _, err := s.Insert("W", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := s.Info("W")
	if err != nil {
		t.Fatal(err)
	}
	rawTotal := int64(8) * versions[0].SizeBytes()
	if info.DiskBytes >= rawTotal/2 {
		t.Fatalf("delta chains use %d bytes, raw would be %d", info.DiskBytes, rawTotal)
	}
	// all but the first version should be delta'ed
	infos, _ := s.Versions("W")
	for i, vi := range infos {
		if i == 0 && len(vi.DeltaBases) != 0 {
			t.Fatalf("first version has delta bases %v", vi.DeltaBases)
		}
		if i > 0 && len(vi.DeltaBases) == 0 {
			t.Fatalf("version %d not delta'ed", vi.ID)
		}
	}
}

func TestSelectRegionReadsOnlyOverlappingChunks(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("R", 64)); err != nil {
		t.Fatal(err)
	}
	v := evolvingVersions(1, 64, 3)[0]
	if _, err := s.Insert("R", DensePayload(v)); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	// whole-array read
	if _, err := s.Select("R", 1); err != nil {
		t.Fatal(err)
	}
	full := s.Stats()
	s.ResetStats()
	// single-cell read
	got, err := s.SelectRegion("R", 1, array.NewBox([]int64{10, 10}, []int64{11, 11}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dense.NumCells() != 1 || got.Dense.Bits(0) != v.BitsAt([]int64{10, 10}) {
		t.Fatal("region content wrong")
	}
	sub := s.Stats()
	if sub.ChunksRead >= full.ChunksRead {
		t.Fatalf("subselect read %d chunks, full read %d", sub.ChunksRead, full.ChunksRead)
	}
	if sub.BytesRead >= full.BytesRead {
		t.Fatalf("subselect read %d bytes, full read %d", sub.BytesRead, full.BytesRead)
	}
}

func TestFig2ChainRead(t *testing.T) {
	// Fig. 2: three versions stored as 2x2 chunks, v3 delta'ed against
	// v2, v2 against v1; a query region overlapping 2 chunks must read
	// exactly 6 chunks (2 per version across the 3-version chain).
	o := smallOpts()
	o.ChunkBytes = 32 * 32 * 4 // 2x2 chunk grid on a 64x64 int32 array
	s := testStore(t, o)
	if err := s.CreateArray(schema2D("F", 64)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(3, 64, 4)
	for _, v := range versions {
		if _, err := s.Insert("F", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	s.ResetStats()
	// region spanning the two top chunks
	if _, err := s.SelectRegion("F", 3, array.NewBox([]int64{5, 5}, []int64{20, 60})); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().ChunksRead; got != 6 {
		t.Fatalf("chain read touched %d chunks, want 6 (Fig. 2)", got)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(schema2D("P", 40)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(4, 40, 5)
	for _, v := range versions {
		if _, err := s.Insert("P", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	// reopen
	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.ListArrays(); len(got) != 1 || got[0] != "P" {
		t.Fatalf("arrays after reopen: %v", got)
	}
	for i, want := range versions {
		got, err := s2.Select("P", i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("version %d mismatch after reopen", i+1)
		}
	}
}

func TestDeltaListInsertForm(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("D", 30)); err != nil {
		t.Fatal(err)
	}
	base := evolvingVersions(1, 30, 6)[0]
	if _, err := s.Insert("D", DensePayload(base)); err != nil {
		t.Fatal(err)
	}
	id, err := s.Insert("D", DeltaListPayload(1, []CellUpdate{
		{Coords: []int64{3, 4}, Bits: 777},
		{Coords: []int64{29, 29}, Bits: -5},
	}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Select("D", id)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Clone()
	want.SetBitsAt([]int64{3, 4}, 777)
	want.SetBitsAt([]int64{29, 29}, -5)
	if !got.Dense.Equal(want) {
		t.Fatal("delta-list insert content wrong")
	}
	// lineage records the base
	infos, _ := s.Versions("D")
	if len(infos[1].Parents) != 1 || infos[1].Parents[0] != 1 {
		t.Fatalf("delta-list parents = %v", infos[1].Parents)
	}
	// errors
	if _, err := s.Insert("D", DeltaListPayload(99, nil)); err == nil {
		t.Error("missing base accepted")
	}
	if _, err := s.Insert("D", DeltaListPayload(1, []CellUpdate{{Coords: []int64{1}, Bits: 0}})); err == nil {
		t.Error("bad coords accepted")
	}
	if _, err := s.Insert("D", DeltaListPayload(1, []CellUpdate{{Attr: "Z", Coords: []int64{0, 0}, Bits: 0}})); err == nil {
		t.Error("unknown attr accepted")
	}
}

func TestSelectMultiStacking(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("M", 20)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(3, 20, 7)
	for _, v := range versions {
		if _, err := s.Insert("M", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.SelectMulti("M", []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.NDim() != 3 || st.Shape()[0] != 2 {
		t.Fatalf("stack shape %v", st.Shape())
	}
	if st.BitsAt([]int64{0, 5, 5}) != versions[0].BitsAt([]int64{5, 5}) {
		t.Fatal("stack slab 0 wrong")
	}
	if st.BitsAt([]int64{1, 5, 5}) != versions[2].BitsAt([]int64{5, 5}) {
		t.Fatal("stack slab 1 wrong")
	}
	// region form (paper's SUBSAMPLE over Example@*)
	sub, err := s.SelectMultiRegion("M", []int{2, 3}, array.NewBox([]int64{0, 1}, []int64{2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Shape()[0] != 2 || sub.Shape()[1] != 2 || sub.Shape()[2] != 2 {
		t.Fatalf("subsample shape %v", sub.Shape())
	}
	if sub.BitsAt([]int64{0, 1, 1}) != versions[1].BitsAt([]int64{1, 2}) {
		t.Fatal("subsample content wrong")
	}
	if _, err := s.SelectMulti("M", nil); err == nil {
		t.Error("empty version list accepted")
	}
}

func TestSparseArrayVersioning(t *testing.T) {
	s := testStore(t, smallOpts())
	sch := array.Schema{
		Name:  "CNet",
		Dims:  []array.Dimension{{Name: "I", Lo: 0, Hi: 9999}, {Name: "J", Lo: 0, Hi: 9999}},
		Attrs: []array.Attribute{{Name: "W", Type: array.Int32}},
	}
	if err := s.CreateArray(sch); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	cur := array.MustSparse(array.Int32, sch.Shape(), 0)
	for i := 0; i < 400; i++ {
		cur.SetBits(rng.Int63n(int64(1e8)), int64(rng.Intn(50)+1))
	}
	var snaps []*array.Sparse
	for v := 0; v < 4; v++ {
		snaps = append(snaps, cur.Clone())
		if _, err := s.Insert("CNet", SparsePayload(cur)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			cur.SetBits(rng.Int63n(int64(1e8)), int64(rng.Intn(50)+1))
		}
	}
	for i, want := range snaps {
		got, err := s.Select("CNet", i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Sparse.Equal(want) {
			t.Fatalf("sparse version %d mismatch", i+1)
		}
	}
	// deltas must be tiny relative to materialization
	info, _ := s.Info("CNet")
	if info.DiskBytes >= 3*snaps[0].SizeBytes() {
		t.Fatalf("sparse chain uses %d bytes; one version is %d", info.DiskBytes, snaps[0].SizeBytes())
	}
	// sparse region select
	pl, err := s.SelectRegion("CNet", 1, array.NewBox([]int64{0, 0}, []int64{5000, 5000}))
	if err != nil {
		t.Fatal(err)
	}
	if !pl.IsSparse() {
		t.Fatal("region of sparse array should stay sparse")
	}
	// multi select keeps sparse representation
	vs, err := s.SelectSparseMulti("CNet", []int{1, 2, 3}, array.Box{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || !vs[2].Equal(snaps[2]) {
		t.Fatal("sparse multi-select wrong")
	}
	// mixing representations is rejected
	if _, err := s.Insert("CNet", DensePayload(array.MustDense(array.Int32, sch.Shape()))); err == nil {
		t.Error("dense payload accepted into sparse array")
	}
}

func TestBranch(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("Src", 24)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(3, 24, 9)
	for _, v := range versions {
		if _, err := s.Insert("Src", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	// branch off version 2, not the head (Appendix A: "branches are
	// formed off of a particular version of an existing array")
	if err := s.Branch("Src", 2, "Fork"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Select("Fork", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Dense.Equal(versions[1]) {
		t.Fatal("branch content mismatch")
	}
	ref, err := s.BranchedFrom("Fork")
	if err != nil || ref == nil || ref.Array != "Src" || ref.Version != 2 {
		t.Fatalf("branch provenance = %v, %v", ref, err)
	}
	// updating the branch must not disturb the source
	if _, err := s.Insert("Fork", DensePayload(versions[2])); err != nil {
		t.Fatal(err)
	}
	src2, _ := s.Select("Src", 2)
	if !src2.Dense.Equal(versions[1]) {
		t.Fatal("branch update corrupted source")
	}
	if err := s.Branch("Src", 99, "Bad"); err == nil {
		t.Error("branch of missing version accepted")
	}
	if err := s.Branch("Nope", 1, "Bad"); err == nil {
		t.Error("branch of missing array accepted")
	}
}

func TestMerge(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("A1", 16)); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(schema2D("A2", 16)); err != nil {
		t.Fatal(err)
	}
	va := evolvingVersions(2, 16, 10)
	vb := evolvingVersions(1, 16, 11)
	for _, v := range va {
		if _, err := s.Insert("A1", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Insert("A2", DensePayload(vb[0])); err != nil {
		t.Fatal(err)
	}
	err := s.Merge("Combined", []VersionRef{{"A1", 2}, {"A2", 1}, {"A1", 1}})
	if err != nil {
		t.Fatal(err)
	}
	infos, _ := s.Versions("Combined")
	if len(infos) != 3 {
		t.Fatalf("merged array has %d versions", len(infos))
	}
	for i, want := range []*array.Dense{va[1], vb[0], va[0]} {
		got, err := s.Select("Combined", i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("merged version %d mismatch", i+1)
		}
	}
	if err := s.Merge("X", []VersionRef{{"A1", 1}}); err == nil {
		t.Error("single-parent merge accepted")
	}
	if err := s.Merge("X", []VersionRef{{"A1", 1}, {"Missing", 1}}); err == nil {
		t.Error("merge with missing array accepted")
	}
}

func TestDeleteVersionReEncodesChildren(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("Del", 32)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(4, 32, 12)
	for _, v := range versions {
		if _, err := s.Insert("Del", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	// v3 is delta'ed against v2; deleting v2 must keep v3 readable
	if err := s.DeleteVersion("Del", 2); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{1, 3, 4} {
		got, err := s.Select("Del", id)
		if err != nil {
			t.Fatalf("version %d unreadable after delete: %v", id, err)
		}
		if !got.Dense.Equal(versions[id-1]) {
			t.Fatalf("version %d corrupted after delete", id)
		}
	}
	if _, err := s.Select("Del", 2); err == nil {
		t.Error("deleted version still selectable")
	}
	infos, _ := s.Versions("Del")
	if len(infos) != 3 {
		t.Fatalf("live versions = %d", len(infos))
	}
	// compaction reclaims space and keeps everything readable
	before, _ := s.Info("Del")
	if err := s.Compact("Del"); err != nil {
		t.Fatal(err)
	}
	after, _ := s.Info("Del")
	if after.DiskBytes > before.DiskBytes {
		t.Fatalf("compact grew store: %d -> %d", before.DiskBytes, after.DiskBytes)
	}
	for _, id := range []int{1, 3, 4} {
		got, err := s.Select("Del", id)
		if err != nil || !got.Dense.Equal(versions[id-1]) {
			t.Fatalf("version %d broken after compact", id)
		}
	}
}

func TestVersionAt(t *testing.T) {
	s := testStore(t, smallOpts())
	base := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	tick := 0
	s.clock = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Hour)
	}
	if err := s.CreateArray(schema2D("T", 16)); err != nil {
		t.Fatal(err)
	}
	for _, v := range evolvingVersions(3, 16, 13) {
		if _, err := s.Insert("T", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	id, err := s.VersionAt("T", base.Add(2*time.Hour+time.Minute))
	if err != nil || id != 2 {
		t.Fatalf("VersionAt = %d, %v", id, err)
	}
	if _, err := s.VersionAt("T", base); err == nil {
		t.Error("pre-history timestamp accepted")
	}
}

func TestReorganizePolicies(t *testing.T) {
	for _, policy := range []LayoutPolicy{PolicyOptimal, PolicyAlgorithm1, PolicyAlgorithm2, PolicyLinearChain, PolicyHeadBiased} {
		s := testStore(t, smallOpts())
		if err := s.CreateArray(schema2D("Re", 32)); err != nil {
			t.Fatal(err)
		}
		versions := evolvingVersions(6, 32, 14)
		for _, v := range versions {
			if _, err := s.Insert("Re", DensePayload(v)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Reorganize("Re", ReorganizeOptions{Policy: policy}); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		for i, want := range versions {
			got, err := s.Select("Re", i+1)
			if err != nil {
				t.Fatalf("%v: version %d unreadable: %v", policy, i+1, err)
			}
			if !got.Dense.Equal(want) {
				t.Fatalf("%v: version %d corrupted", policy, i+1)
			}
		}
	}
}

func TestReorganizeBatched(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("B", 32)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(7, 32, 15)
	for _, v := range versions {
		if _, err := s.Insert("B", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reorganize("B", ReorganizeOptions{Policy: PolicyOptimal, BatchK: 3}); err != nil {
		t.Fatal(err)
	}
	for i, want := range versions {
		got, err := s.Select("B", i+1)
		if err != nil || !got.Dense.Equal(want) {
			t.Fatalf("batched reorganize broke version %d: %v", i+1, err)
		}
	}
}

func TestReorganizeWorkloadAware(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("WA", 32)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(5, 32, 16)
	for _, v := range versions {
		if _, err := s.Insert("WA", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	wl := []struct{}{}
	_ = wl
	if err := s.Reorganize("WA", ReorganizeOptions{
		Policy:   PolicyWorkloadAware,
		Workload: headWorkload(5),
	}); err != nil {
		t.Fatal(err)
	}
	for i, want := range versions {
		got, err := s.Select("WA", i+1)
		if err != nil || !got.Dense.Equal(want) {
			t.Fatalf("workload-aware reorganize broke version %d: %v", i+1, err)
		}
	}
}

func TestCompressionCodecs(t *testing.T) {
	for _, codec := range []compress.Codec{compress.LZ, compress.RLE, compress.PNG, compress.Wavelet} {
		o := smallOpts()
		o.Codec = codec
		s := testStore(t, o)
		if err := s.CreateArray(schema2D("C", 32)); err != nil {
			t.Fatal(err)
		}
		versions := evolvingVersions(3, 32, 17)
		for _, v := range versions {
			if _, err := s.Insert("C", DensePayload(v)); err != nil {
				t.Fatalf("%v: %v", codec, err)
			}
		}
		for i, want := range versions {
			got, err := s.Select("C", i+1)
			if err != nil {
				t.Fatalf("%v: %v", codec, err)
			}
			if !got.Dense.Equal(want) {
				t.Fatalf("%v: version %d corrupted", codec, i+1)
			}
		}
	}
}

func TestPerVersionFilesMode(t *testing.T) {
	o := smallOpts()
	o.CoLocate = false
	s := testStore(t, o)
	if err := s.CreateArray(schema2D("PV", 32)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(3, 32, 18)
	for _, v := range versions {
		if _, err := s.Insert("PV", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range versions {
		got, err := s.Select("PV", i+1)
		if err != nil || !got.Dense.Equal(want) {
			t.Fatalf("per-version mode broke version %d", i+1)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	s := testStore(t, smallOpts())
	if _, err := s.Select("nope", 1); err == nil {
		t.Error("select on missing array accepted")
	}
	if err := s.DeleteArray("nope"); err == nil {
		t.Error("delete of missing array accepted")
	}
	if err := s.CreateArray(array.Schema{Name: "bad name!"}); err == nil {
		t.Error("invalid schema accepted")
	}
	if err := s.CreateArray(schema2D("E", 8)); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(schema2D("E", 8)); err == nil {
		t.Error("duplicate array accepted")
	}
	if _, err := s.Select("E", 1); err == nil {
		t.Error("select of missing version accepted")
	}
	wrong := array.MustDense(array.Int16, []int64{8, 8})
	if _, err := s.Insert("E", DensePayload(wrong)); err == nil {
		t.Error("dtype mismatch accepted")
	}
	wrongShape := array.MustDense(array.Int32, []int64{4, 4})
	if _, err := s.Insert("E", DensePayload(wrongShape)); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := s.Insert("E", Payload{}); err == nil {
		t.Error("empty payload accepted")
	}
	v := array.MustDense(array.Int32, []int64{8, 8})
	if _, err := s.Insert("E", DensePayload(v)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SelectRegion("E", 1, array.NewBox([]int64{0}, []int64{1})); err == nil {
		t.Error("wrong-dim box accepted")
	}
	if _, err := s.SelectRegion("E", 1, array.NewBox([]int64{100, 100}, []int64{200, 200})); err == nil {
		t.Error("out-of-range box accepted")
	}
	if _, err := s.SelectAttr("E", 1, "Nope"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestCorruptChunkFileDetected(t *testing.T) {
	dir := t.TempDir()
	o := smallOpts()
	o.Codec = compress.LZ
	s, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(schema2D("K", 32)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("K", DensePayload(evolvingVersions(1, 32, 19)[0])); err != nil {
		t.Fatal(err)
	}
	// scribble over every chunk file
	chunksDir := filepath.Join(dir, "K", "chunks")
	entries, err := os.ReadDir(chunksDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		path := filepath.Join(chunksDir, e.Name())
		info, _ := os.Stat(path)
		junk := make([]byte, info.Size())
		if err := os.WriteFile(path, junk, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Select("K", 1); err == nil {
		t.Error("corrupt chunk data went undetected")
	}
}

func TestCorruptMetadataRejectedOnOpen(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.PerArrayCommit = true // pin the legacy versions.json loader
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(schema2D("Meta", 8)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "Meta", metaFile), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, opts); err == nil {
		t.Error("corrupt metadata accepted on reopen")
	}
}

func TestMultiAttributeArrays(t *testing.T) {
	s := testStore(t, smallOpts())
	sch := array.Schema{
		Name: "Multi",
		Dims: []array.Dimension{{Name: "X", Lo: 0, Hi: 15}, {Name: "Y", Lo: 0, Hi: 15}},
		Attrs: []array.Attribute{
			{Name: "Temp", Type: array.Float32},
			{Name: "Humidity", Type: array.Float64},
		},
	}
	if err := s.CreateArray(sch); err != nil {
		t.Fatal(err)
	}
	temp := array.MustDense(array.Float32, sch.Shape())
	hum := array.MustDense(array.Float64, sch.Shape())
	for i := int64(0); i < temp.NumCells(); i++ {
		temp.SetFloat(i, float64(i)*0.5)
		hum.SetFloat(i, float64(i)*0.25)
	}
	id, err := s.Insert("Multi", Payload{Planes: []Plane{{Dense: temp}, {Dense: hum}}})
	if err != nil {
		t.Fatal(err)
	}
	gotT, err := s.SelectAttr("Multi", id, "Temp")
	if err != nil || !gotT.Dense.Equal(temp) {
		t.Fatal("Temp plane mismatch")
	}
	gotH, err := s.SelectAttr("Multi", id, "Humidity")
	if err != nil || !gotH.Dense.Equal(hum) {
		t.Fatal("Humidity plane mismatch")
	}
	// plane count mismatch rejected
	if _, err := s.Insert("Multi", Payload{Planes: []Plane{{Dense: temp}}}); err == nil {
		t.Error("missing plane accepted")
	}
}

func TestDeleteArray(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("G", 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("G", DensePayload(array.MustDense(array.Int32, []int64{8, 8}))); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteArray("G"); err != nil {
		t.Fatal(err)
	}
	if len(s.ListArrays()) != 0 {
		t.Fatal("array still listed")
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "G")); !os.IsNotExist(err) {
		t.Fatal("array directory still on disk")
	}
}

// headWorkload builds a workload hammering the newest version.
func headWorkload(n int) []layout.Query {
	return []layout.Query{
		{Versions: []int{n}, Weight: 0.9},
		{Versions: rangeInts(1, n), Weight: 0.1},
	}
}

func rangeInts(lo, hi int) []int {
	var out []int
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

func TestAdaptiveCodec(t *testing.T) {
	// adaptive mode must stay lossless on both compressible and
	// incompressible data, and skip compression for the latter
	for _, compressible := range []bool{true, false} {
		o := smallOpts()
		o.Codec = compress.LZ
		o.AdaptiveCodec = true
		o.AutoDelta = false
		s := testStore(t, o)
		if err := s.CreateArray(schema2D("AD", 64)); err != nil {
			t.Fatal(err)
		}
		v := array.MustDense(array.Int32, []int64{64, 64})
		rng := rand.New(rand.NewSource(31))
		for i := int64(0); i < v.NumCells(); i++ {
			if compressible {
				v.SetBits(i, i%3)
			} else {
				v.SetBits(i, int64(rng.Uint64()))
			}
		}
		if _, err := s.Insert("AD", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
		got, err := s.Select("AD", 1)
		if err != nil || !got.Dense.Equal(v) {
			t.Fatalf("adaptive roundtrip (compressible=%v) broken: %v", compressible, err)
		}
		info, _ := s.Info("AD")
		if compressible && info.DiskBytes >= v.SizeBytes() {
			t.Errorf("adaptive codec did not compress compressible data: %d", info.DiskBytes)
		}
		if !compressible && info.DiskBytes != v.SizeBytes() {
			t.Errorf("adaptive codec stored %d bytes for incompressible %d-byte version", info.DiskBytes, v.SizeBytes())
		}
	}
}

func TestReopenAfterReorganize(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(schema2D("RR", 32)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(5, 32, 23)
	for _, v := range versions {
		if _, err := s.Insert("RR", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reorganize("RR", ReorganizeOptions{Policy: PolicyOptimal}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range versions {
		got, err := s2.Select("RR", i+1)
		if err != nil || !got.Dense.Equal(want) {
			t.Fatalf("version %d broken after reorganize+reopen: %v", i+1, err)
		}
	}
}

func TestBranchSparseArray(t *testing.T) {
	s := testStore(t, smallOpts())
	sch := array.Schema{
		Name:  "SpSrc",
		Dims:  []array.Dimension{{Name: "I", Lo: 0, Hi: 999}, {Name: "J", Lo: 0, Hi: 999}},
		Attrs: []array.Attribute{{Name: "W", Type: array.Int32}},
	}
	if err := s.CreateArray(sch); err != nil {
		t.Fatal(err)
	}
	sp := array.MustSparse(array.Int32, sch.Shape(), 0)
	sp.SetBits(7, 70)
	if _, err := s.Insert("SpSrc", SparsePayload(sp)); err != nil {
		t.Fatal(err)
	}
	if err := s.Branch("SpSrc", 1, "SpFork"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Select("SpFork", 1)
	if err != nil || !got.IsSparse() || got.Sparse.Bits(7) != 70 {
		t.Fatalf("sparse branch broken: %v", err)
	}
}

func TestConcurrentSelects(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("CC", 32)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(4, 32, 29)
	for _, v := range versions {
		if _, err := s.Insert("CC", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				id := (g+k)%4 + 1
				got, err := s.Select("CC", id)
				if err != nil {
					errs <- err
					return
				}
				if !got.Dense.Equal(versions[id-1]) {
					errs <- fmt.Errorf("goroutine %d: version %d corrupted", g, id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func sparseSnapshots(n int, dim int64, seed int64) []*array.Sparse {
	rng := rand.New(rand.NewSource(seed))
	cur := array.MustSparse(array.Int32, []int64{dim, dim}, 0)
	for i := 0; i < 300; i++ {
		cur.SetBits(rng.Int63n(dim*dim), int64(rng.Intn(90)+1))
	}
	out := make([]*array.Sparse, n)
	for v := 0; v < n; v++ {
		out[v] = cur.Clone()
		for e := 0; e < 20; e++ {
			cur.SetBits(rng.Int63n(dim*dim), int64(rng.Intn(90)+1))
		}
	}
	return out
}

func sparseSchema(name string, dim int64) array.Schema {
	return array.Schema{
		Name:  name,
		Dims:  []array.Dimension{{Name: "I", Lo: 0, Hi: dim - 1}, {Name: "J", Lo: 0, Hi: dim - 1}},
		Attrs: []array.Attribute{{Name: "W", Type: array.Int32}},
	}
}

func TestReorganizeSparseArray(t *testing.T) {
	for _, policy := range []LayoutPolicy{PolicyOptimal, PolicyLinearChain, PolicyAlgorithm2} {
		s := testStore(t, smallOpts())
		if err := s.CreateArray(sparseSchema("SR", 5000)); err != nil {
			t.Fatal(err)
		}
		snaps := sparseSnapshots(6, 5000, 43)
		for _, sp := range snaps {
			if _, err := s.Insert("SR", SparsePayload(sp)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Reorganize("SR", ReorganizeOptions{Policy: policy}); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		for i, want := range snaps {
			got, err := s.Select("SR", i+1)
			if err != nil || !got.Sparse.Equal(want) {
				t.Fatalf("%v: sparse version %d broken: %v", policy, i+1, err)
			}
		}
		rep, err := s.Verify("SR")
		if err != nil || !rep.Ok() {
			t.Fatalf("%v: verify: %v %v", policy, rep.Problems, err)
		}
	}
}

func TestDeleteVersionSparse(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(sparseSchema("SD", 5000)); err != nil {
		t.Fatal(err)
	}
	snaps := sparseSnapshots(4, 5000, 44)
	for _, sp := range snaps {
		if _, err := s.Insert("SD", SparsePayload(sp)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DeleteVersion("SD", 2); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{1, 3, 4} {
		got, err := s.Select("SD", id)
		if err != nil || !got.Sparse.Equal(snaps[id-1]) {
			t.Fatalf("sparse version %d broken after delete: %v", id, err)
		}
	}
	if err := s.Compact("SD"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Select("SD", 4)
	if err != nil || !got.Sparse.Equal(snaps[3]) {
		t.Fatal("sparse compact broke content")
	}
}

func TestComputeLayoutAPI(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("CL", 32)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(5, 32, 45)
	for _, v := range versions {
		if _, err := s.Insert("CL", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	l, mm, ids, err := s.ComputeLayout("CL", ReorganizeOptions{Policy: PolicyOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if !l.IsValid() || mm.N != 5 || len(ids) != 5 {
		t.Fatalf("layout=%v mm.N=%d ids=%v", l.Parent, mm.N, ids)
	}
	// smoothly evolving data: optimal layout is a linear chain (E9)
	if !l.IsLinearChain() {
		t.Fatalf("optimal layout on smooth data not linear: %v", l.Parent)
	}
	if _, _, _, err := s.ComputeLayout("nope", ReorganizeOptions{}); err == nil {
		t.Error("missing array accepted")
	}
}

func TestCompactPerVersionMode(t *testing.T) {
	o := smallOpts()
	o.CoLocate = false
	s := testStore(t, o)
	if err := s.CreateArray(schema2D("PC", 32)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(4, 32, 46)
	for _, v := range versions {
		if _, err := s.Insert("PC", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DeleteVersion("PC", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact("PC"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{1, 2, 4} {
		got, err := s.Select("PC", id)
		if err != nil || !got.Dense.Equal(versions[id-1]) {
			t.Fatalf("per-version compact broke version %d: %v", id, err)
		}
	}
}

func TestMergeSparseParents(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(sparseSchema("MA", 3000)); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(sparseSchema("MB", 3000)); err != nil {
		t.Fatal(err)
	}
	a := sparseSnapshots(1, 3000, 47)[0]
	b := sparseSnapshots(1, 3000, 48)[0]
	if _, err := s.Insert("MA", SparsePayload(a)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("MB", SparsePayload(b)); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge("MC", []VersionRef{{"MA", 1}, {"MB", 1}}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Select("MC", 2)
	if err != nil || !got.Sparse.Equal(b) {
		t.Fatalf("sparse merge broken: %v", err)
	}
}

func TestAutoBatchReencode(t *testing.T) {
	// §IV-E: with AutoBatchK set, each completed batch of K versions is
	// re-encoded together under the optimal layout. Periodic content
	// (A,B,A,B) inside a batch should make same-phase versions delta
	// against each other rather than forming a lossy linear chain.
	o := smallOpts()
	o.AutoBatchK = 4
	s := testStore(t, o)
	if err := s.CreateArray(schema2D("BK", 32)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	phaseA := array.MustDense(array.Int32, []int64{32, 32})
	phaseB := array.MustDense(array.Int32, []int64{32, 32})
	for i := int64(0); i < phaseA.NumCells(); i++ {
		phaseA.SetBits(i, int64(rng.Uint32()))
		phaseB.SetBits(i, int64(rng.Uint32()))
	}
	var want []*array.Dense
	for v := 0; v < 8; v++ {
		var content *array.Dense
		if v%2 == 0 {
			content = phaseA.Clone()
		} else {
			content = phaseB.Clone()
		}
		content.SetBits(int64(v), int64(v)) // tiny per-version tweak
		want = append(want, content)
		if _, err := s.Insert("BK", DensePayload(content)); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		got, err := s.Select("BK", i+1)
		if err != nil || !got.Dense.Equal(w) {
			t.Fatalf("version %d broken after batch re-encode: %v", i+1, err)
		}
	}
	// batches must be separate: no version in batch 2 (ids 5-8) may be
	// delta-based on batch 1 (ids 1-4)
	infos, _ := s.Versions("BK")
	for _, vi := range infos[4:] {
		for _, b := range vi.DeltaBases {
			if b <= 4 {
				t.Fatalf("version %d crosses batch boundary (base %d)", vi.ID, b)
			}
		}
	}
	// the periodic structure must be exploited: same-phase deltas are
	// tiny, so the store is far below 8 materialized versions
	info, _ := s.Info("BK")
	if err := s.Compact("BK"); err != nil {
		t.Fatal(err)
	}
	info, _ = s.Info("BK")
	// floor is 4 materialized phase versions (2 per batch) + tiny deltas
	raw := int64(8) * phaseA.SizeBytes()
	if info.DiskBytes >= raw*2/3 {
		t.Fatalf("batched store uses %d bytes; raw would be %d", info.DiskBytes, raw)
	}
	rep, err := s.Verify("BK")
	if err != nil || !rep.Ok() {
		t.Fatalf("verify after batching: %v %v", rep.Problems, err)
	}
}
