package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"

	"arrayvers/internal/array"
	"arrayvers/internal/fsio"
)

// The transient-fault matrix, the surviving-process counterpart of the
// crash matrix in crash_test.go: a fixed insert → batch → delete-version
// → reorganize workload is run once against a counting fsio.Flaky, then
// re-run from scratch once per mutation step with a scripted EIO or
// ENOSPC injected at exactly that step. Unlike a crash, the process
// lives on, so the contract under test is containment: the faulted
// operation reports an error and did not happen (memory-authoritative —
// Heal reconciles the disk to the in-memory commit log), uncertain
// commit failures flip the array into degraded read-only mode, Heal
// makes the store writable again once the disk recovers, and a reopen
// agrees byte-for-byte with what the live store reported.

// transientModel is what the workload committed: live version id ->
// expected content. Ops that returned an error are absent by
// construction.
type transientModel struct {
	created bool
	content map[int]*array.Dense
	// created2/content2 track the second array ("T2"), which receives
	// its versions only through the cross-array InsertMulti path, so
	// the sweep faults every step of the shared manifest commit too.
	created2 bool
	content2 map[int]*array.Dense
}

// runTransientWorkload drives the fixed workload until completion or
// the first error, updating the model only on success.
func runTransientWorkload(s *Store, side int64) (*transientModel, error) {
	m := &transientModel{content: map[int]*array.Dense{}}
	if err := s.CreateArray(schema2D("T", side)); err != nil {
		return m, err
	}
	m.created = true

	insert := func(seed int64) error {
		content := crashContent(seed, side)
		id, err := s.Insert("T", DensePayload(content))
		if err != nil {
			return err
		}
		m.content[id] = content
		return nil
	}
	if err := insert(1); err != nil {
		return m, err
	}
	if err := insert(2); err != nil {
		return m, err
	}
	batch := []*array.Dense{crashContent(3, side), crashContent(4, side)}
	ids, err := s.InsertBatch("T", []Payload{DensePayload(batch[0]), DensePayload(batch[1])})
	if err != nil {
		return m, err
	}
	for i, id := range ids {
		m.content[id] = batch[i]
	}
	if err := s.DeleteVersion("T", 1); err != nil {
		return m, err
	}
	delete(m.content, 1)
	if err := s.Reorganize("T", ReorganizeOptions{Policy: PolicyLinearChain}); err != nil {
		return m, err
	}
	if err := insert(5); err != nil {
		return m, err
	}
	// cross-array atomic batch: T and a fresh T2 land one member each
	// under the manifest's single commit point, so a scripted fault at
	// any step of stage → sync → append → install must contain to "the
	// whole batch did not happen" on BOTH arrays.
	if err := s.CreateArray(schema2D("T2", side)); err != nil {
		return m, err
	}
	m.created2 = true
	multi := map[string]*array.Dense{"T": crashContent(6, side), "T2": crashContent(7, side)}
	out, err := s.InsertMulti([]MultiInsert{
		{Array: "T", Payloads: []Payload{DensePayload(multi["T"])}},
		{Array: "T2", Payloads: []Payload{DensePayload(multi["T2"])}},
	})
	if err != nil {
		return m, err
	}
	m.content[out["T"][0]] = multi["T"]
	m.content2 = map[int]*array.Dense{out["T2"][0]: multi["T2"]}
	return m, nil
}

// checkTransientState asserts the live store agrees with the model:
// exactly the model's versions are live, each reads back
// byte-identical, and Verify passes.
func checkTransientState(t *testing.T, s *Store, m *transientModel, label string) {
	t.Helper()
	if !m.created {
		return
	}
	infos, err := s.Versions("T")
	if err != nil {
		t.Fatalf("%s: Versions: %v", label, err)
	}
	var live []int
	for _, vi := range infos {
		live = append(live, vi.ID)
	}
	var want []int
	for id := range m.content {
		want = append(want, id)
	}
	sort.Ints(live)
	sort.Ints(want)
	if fmt.Sprint(live) != fmt.Sprint(want) {
		t.Fatalf("%s: live versions %v, want %v (no phantom or duplicate versions allowed)", label, live, want)
	}
	for id, content := range m.content {
		got, err := s.Select("T", id)
		if err != nil {
			t.Fatalf("%s: version %d unreadable: %v", label, id, err)
		}
		if !got.Dense.Equal(content) {
			t.Fatalf("%s: version %d corrupted", label, id)
		}
	}
	rep, err := s.Verify("T")
	if err != nil {
		t.Fatalf("%s: Verify: %v", label, err)
	}
	if !rep.Ok() {
		t.Fatalf("%s: Verify problems: %v", label, rep.Problems)
	}
	if !m.created2 {
		return
	}
	infos, err = s.Versions("T2")
	if err != nil {
		t.Fatalf("%s: Versions T2: %v", label, err)
	}
	if len(infos) != len(m.content2) {
		t.Fatalf("%s: T2 has %d versions, want %d (an InsertMulti fault must contain to both arrays)", label, len(infos), len(m.content2))
	}
	for id, content := range m.content2 {
		got, err := s.Select("T2", id)
		if err != nil {
			t.Fatalf("%s: T2 version %d unreadable: %v", label, id, err)
		}
		if !got.Dense.Equal(content) {
			t.Fatalf("%s: T2 version %d corrupted", label, id)
		}
	}
	rep, err = s.Verify("T2")
	if err != nil {
		t.Fatalf("%s: Verify T2: %v", label, err)
	}
	if !rep.Ok() {
		t.Fatalf("%s: Verify T2 problems: %v", label, rep.Problems)
	}
}

func TestTransientFaultSweep(t *testing.T) {
	const side = 8

	// pass 1: count the workload's mutation steps fault-free
	counting := fsio.NewFlaky(fsio.OS)
	opts := durableOpts(false, counting)
	opts.HealInterval = -1 // heal explicitly, not from the background prober
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	pinClock(s) // byte-identical manifest records in every run
	model, err := runTransientWorkload(s, side)
	if err != nil {
		t.Fatalf("counting run failed: %v", err)
	}
	total := counting.Steps()
	if total < 40 {
		t.Fatalf("workload only has %d fault points; expected a rich matrix", total)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("transient matrix: %d fault injection points", total)
	_ = model

	for _, inj := range []struct {
		name string
		err  error
	}{
		{"eio", fsio.ErrIO},
		{"enospc", fsio.ErrDiskFull},
	} {
		inj := inj
		t.Run(inj.name, func(t *testing.T) {
			for n := int64(1); n <= total; n++ {
				flaky := fsio.NewFlaky(fsio.OS)
				flaky.FailAt(n, inj.err)
				opts := durableOpts(false, flaky)
				opts.HealInterval = -1
				s, err := Open(t.TempDir(), opts)
				if err != nil {
					// the fault hit store creation itself; nothing to check
					continue
				}
				pinClock(s)
				m, werr := runTransientWorkload(s, side)
				label := fmt.Sprintf("%s step %d/%d", inj.name, n, total)

				// the disk "recovers" now; the store may or may not have
				// degraded depending on where the fault landed
				flaky.Heal()
				if werr != nil {
					if h := s.Health(); h.Degraded {
						// degraded mode must fail writes fast with the
						// typed error until healed — probed against an
						// array that is actually refusing writes (a fault
						// inside InsertMulti may degrade only one member)
						probe := ""
						if h.StoreDegraded && m.created {
							probe = "T"
						}
						for _, ah := range h.Arrays {
							probe = ah.Name
						}
						if probe != "" {
							if _, ierr := s.Insert(probe, DensePayload(crashContent(90, side))); !errors.Is(ierr, ErrDegraded) {
								t.Fatalf("%s: degraded insert to %s error = %v, want ErrDegraded", label, probe, ierr)
							}
						}
						if _, herr := s.Heal(); herr != nil {
							t.Fatalf("%s: Heal after disk recovery: %v", label, herr)
						}
						if h := s.Health(); h.Degraded {
							t.Fatalf("%s: still degraded after Heal: %+v", label, h)
						}
					}
				} else if fl := flaky.Injected(); fl == 0 {
					t.Fatalf("%s: fault never fired (step drift between runs?)", label)
				}
				// an error must mean "did not happen": live state equals
				// the successful prefix exactly
				checkTransientState(t, s, m, label+" (live)")
				// and the store must be writable again
				if m.created {
					extra := crashContent(91, side)
					id, err := s.Insert("T", DensePayload(extra))
					if err != nil {
						t.Fatalf("%s: insert after heal: %v", label, err)
					}
					m.content[id] = extra
				}
				if err := s.Close(); err != nil {
					t.Fatalf("%s: close: %v", label, err)
				}
				// reopen on the plain filesystem: recovery must agree
				// with everything the live store reported
				r, err := Open(s.dir, durableOpts(false, fsio.OS))
				if err != nil {
					t.Fatalf("%s: reopen: %v", label, err)
				}
				checkTransientState(t, r, m, label+" (reopen)")
				if err := r.Close(); err != nil {
					t.Fatalf("%s: close reopened: %v", label, err)
				}
			}
		})
	}
}

// TestDegradedReadsStayUp pins the degraded-mode contract from the read
// side: a store-wide ENOSPC degrade must keep every select form
// working while writes are rejected, and the gauges in Stats must
// track entry and heal.
func TestDegradedReadsStayUp(t *testing.T) {
	const side = 8
	flaky := fsio.NewFlaky(fsio.OS)
	opts := durableOpts(false, flaky)
	opts.HealInterval = -1
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.CreateArray(schema2D("R", side)); err != nil {
		t.Fatal(err)
	}
	content := crashContent(1, side)
	if _, err := s.Insert("R", DensePayload(content)); err != nil {
		t.Fatal(err)
	}

	// full disk: the next write attempt degrades the whole store
	flaky.FailAll(fsio.ErrDiskFull)
	if _, err := s.Insert("R", DensePayload(crashContent(2, side))); err == nil {
		t.Fatal("insert on a full disk succeeded")
	}
	if h := s.Health(); !h.Degraded || !h.StoreDegraded {
		t.Fatalf("store not degraded after ENOSPC: %+v", h)
	}
	if _, err := s.Insert("R", DensePayload(crashContent(2, side))); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded insert error = %v, want ErrDegraded", err)
	}
	// reads keep answering from the committed state
	got, err := s.Select("R", 1)
	if err != nil || !got.Dense.Equal(content) {
		t.Fatalf("degraded read broken: %v", err)
	}
	st := s.Stats()
	if st.DegradedEntered == 0 || st.StoreDegraded != 1 || st.WritesRejectedDegraded == 0 {
		t.Fatalf("degraded counters not surfaced: %+v", st)
	}

	// Heal fails while the disk is still sick, succeeds after recovery
	if _, err := s.Heal(); err == nil {
		t.Fatal("Heal succeeded on a still-broken disk")
	}
	flaky.Heal()
	if _, err := s.Heal(); err != nil {
		t.Fatalf("Heal after disk recovery: %v", err)
	}
	if h := s.Health(); h.Degraded {
		t.Fatalf("still degraded after Heal: %+v", h)
	}
	st = s.Stats()
	if st.DegradedHealed == 0 || st.StoreDegraded != 0 || st.DegradedArrays != 0 {
		t.Fatalf("heal counters not surfaced: %+v", st)
	}
	if _, err := s.Insert("R", DensePayload(crashContent(3, side))); err != nil {
		t.Fatalf("insert after heal: %v", err)
	}
}

// TestContextCancellation pins the ctx threading contract: a cancelled
// context fails selects and insert staging with the context's error,
// and a cancelled insert never creates a version.
func TestContextCancellation(t *testing.T) {
	s := testStore(t, smallOpts())
	const side = 8
	if err := s.CreateArray(schema2D("C", side)); err != nil {
		t.Fatal(err)
	}
	content := crashContent(1, side)
	if _, err := s.Insert("C", DensePayload(content)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SelectAttrCtx(ctx, "C", 1, ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("SelectAttrCtx error = %v, want context.Canceled", err)
	}
	if _, err := s.InsertCtx(ctx, "C", DensePayload(crashContent(2, side))); !errors.Is(err, context.Canceled) {
		t.Fatalf("InsertCtx error = %v, want context.Canceled", err)
	}
	infos, err := s.Versions("C")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("cancelled insert created a version: %v", infos)
	}
	// and the live context still works
	if got, err := s.SelectAttrCtx(context.Background(), "C", 1, ""); err != nil || !got.Dense.Equal(content) {
		t.Fatalf("select after cancellation: %v", err)
	}
}
