package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Open-time crash recovery (Options.Durability). The commit protocol
// (see commitMeta) guarantees that the committed metadata — a fsynced
// manifest record, or the renamed versions.json on legacy stores —
// only references payloads that were fsynced before the commit, so
// after a crash the committed state is intact and everything else on
// disk is debris from the interrupted mutation:
//
//   - a metadata tmp file that never got renamed (legacy stores), or a
//     stale versions.json superseded by the manifest (migrated stores);
//   - a chunk generation that never got committed (either a *.build
//     directory or a fully renamed one whose metadata commit was lost);
//   - chunk files created by an uncommitted insert (orphans);
//   - torn or garbage bytes past the last committed frame at the tail
//     of a chunk file (the manifest log's own torn tail is truncated
//     by openManifest before recovery runs).
//
// recoverLocked sweeps all of it, truncates the torn tails, and — as a
// defense in depth for stores that were written without Durability and
// then crashed — reconciles the version list against the payloads that
// actually survived, dropping versions whose data is gone (never the
// case for durable writers, which the crash-point matrix test asserts).

// recoverLocked recovers every array. Called from Open before the store
// is visible to anyone.
func (s *Store) recoverLocked() error {
	for _, st := range s.arrays {
		if err := s.recoverArray(st); err != nil {
			return fmt.Errorf("array %q: %w", st.Schema.Name, err)
		}
	}
	return nil
}

func (s *Store) recoverArray(st *arrayState) error {
	if err := s.sweepDebris(st, &s.recovery); err != nil {
		return err
	}
	dropped, err := s.reconcileVersions(st, &s.recovery)
	if err != nil {
		return err
	}
	if err := s.collectChunkFiles(st, &s.recovery); err != nil {
		return err
	}
	if dropped {
		if err := s.saveMeta(st); err != nil {
			return err
		}
	}
	return nil
}

// sweepDebris removes commit leftovers in the array directory: the
// metadata tmp file, heal probe scratch, generation build directories,
// and chunk generations other than the committed one. What it swept is
// recorded into rs (Open-time recovery passes &s.recovery; the runtime
// heal pass keeps its own local counts).
func (s *Store) sweepDebris(st *arrayState, rs *RecoveryStats) error {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return err
	}
	committed := chunksDirName(st.Gen)
	for _, e := range entries {
		name := e.Name()
		stale := name == metaFile+".tmp" || name == healProbeFile ||
			(strings.HasPrefix(name, "chunks") && name != committed)
		// on manifest stores the per-array versions.json is dead weight:
		// either migration debris or a leftover a pre-migration binary wrote
		if s.man != nil && name == metaFile {
			stale = true
		}
		if !stale {
			continue
		}
		if err := s.fs.RemoveAll(filepath.Join(st.dir, name)); err != nil {
			return err
		}
		rs.RemovedFiles++
	}
	// the committed generation directory must exist even if the array has
	// no chunk payloads yet (a crash can lose it only when the metadata
	// commit itself was lost, which rolls back to a state that had it)
	return s.fs.MkdirAll(st.chunksDir())
}

// reconcileVersions drops live versions whose chunk payloads did not
// survive: data missing or short in the committed generation, or a
// delta base that was itself dropped. Reports whether anything changed.
func (s *Store) reconcileVersions(st *arrayState, rs *RecoveryStats) (bool, error) {
	sizes, err := chunkFileSizes(st.chunksDir())
	if err != nil {
		return false, err
	}
	dropped := false
	for {
		again := false
		live := st.live()
		liveIDs := make(map[int]bool, len(live))
		for _, vm := range live {
			liveIDs[vm.ID] = true
		}
		for _, vm := range live {
			if versionDamaged(st, vm, sizes, liveIDs) {
				vm.Deleted = true
				rs.DroppedVersions++
				dropped = true
				again = true
			}
		}
		if !again {
			return dropped, nil
		}
	}
}

func versionDamaged(st *arrayState, vm *versionMeta, sizes map[string]int64, liveIDs map[int]bool) bool {
	for _, chunks := range vm.Chunks {
		for _, e := range chunks {
			size, ok := sizes[e.File]
			if !ok || e.Offset+frameLen(st.Format, e.Length) > size {
				return true
			}
			if e.Base >= 0 && !liveIDs[e.Base] {
				return true
			}
		}
	}
	return false
}

// collectChunkFiles garbage-collects the committed generation:
// unreferenced files (orphans of uncommitted inserts, superseded
// re-encodes) are removed, and bytes past the last committed frame of
// each referenced file — torn tails, uncommitted appends — are
// truncated away.
func (s *Store) collectChunkFiles(st *arrayState, rs *RecoveryStats) error {
	dir := st.chunksDir()
	sizes, err := chunkFileSizes(dir)
	if err != nil {
		return err
	}
	maxRef := make(map[string]int64, len(sizes))
	for _, vm := range st.live() {
		for _, chunks := range vm.Chunks {
			for _, e := range chunks {
				if end := e.Offset + frameLen(st.Format, e.Length); end > maxRef[e.File] {
					maxRef[e.File] = end
				}
			}
		}
	}
	for name, size := range sizes {
		end, referenced := maxRef[name]
		switch {
		case !referenced:
			if err := s.fs.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
			rs.RemovedFiles++
		case size > end:
			if err := s.fs.Truncate(filepath.Join(dir, name), end); err != nil {
				return err
			}
			rs.TruncatedFiles++
			rs.TruncatedBytes += size - end
		}
	}
	return nil
}

func chunkFileSizes(dir string) (map[string]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]int64{}, nil
		}
		return nil, err
	}
	sizes := make(map[string]int64, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		sizes[e.Name()] = info.Size()
	}
	return sizes, nil
}
