package core

import (
	"math/rand"
	"testing"

	"arrayvers/internal/array"
	"arrayvers/internal/fsio"
)

// Model-based randomized test: a long random sequence of store
// operations (insert, delta-list update, version delete, reorganize,
// compact, crash+reopen) is mirrored against a trivial in-memory model;
// after every step, every live version must still read back exactly.
// The crash+reopen step attempts an insert through a fault-injecting
// filesystem that dies at a random write/sync/rename step, then reopens
// with recovery on — so the randomized walk also exercises the
// recovery path against arbitrary store states.

type modelVersion struct {
	id      int
	content *array.Dense
}

func TestModelBasedRandomOps(t *testing.T) {
	const (
		side  = 24
		steps = 120
	)
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			opts := smallOpts()
			s, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.CreateArray(schema2D("Model", side)); err != nil {
				t.Fatal(err)
			}
			var model []modelVersion

			randomContent := func() *array.Dense {
				d := array.MustDense(array.Int32, []int64{side, side})
				for i := int64(0); i < d.NumCells(); i++ {
					d.SetBits(i, int64(rng.Intn(2000)))
				}
				return d
			}
			checkAll := func(step int) {
				infos, err := s.Versions("Model")
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if len(infos) != len(model) {
					t.Fatalf("step %d: store has %d versions, model has %d", step, len(infos), len(model))
				}
				for _, mv := range model {
					got, err := s.Select("Model", mv.id)
					if err != nil {
						t.Fatalf("step %d: version %d unreadable: %v", step, mv.id, err)
					}
					if !got.Dense.Equal(mv.content) {
						t.Fatalf("step %d: version %d corrupted", step, mv.id)
					}
				}
			}

			for step := 0; step < steps; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // insert a fresh or perturbed version
					var content *array.Dense
					if len(model) > 0 && rng.Intn(2) == 0 {
						content = model[rng.Intn(len(model))].content.Clone()
						for k := 0; k < 20; k++ {
							content.SetBits(rng.Int63n(content.NumCells()), int64(rng.Intn(2000)))
						}
					} else {
						content = randomContent()
					}
					id, err := s.Insert("Model", DensePayload(content))
					if err != nil {
						t.Fatalf("step %d insert: %v", step, err)
					}
					model = append(model, modelVersion{id, content})
				case op < 6 && len(model) > 0: // delta-list update
					base := model[rng.Intn(len(model))]
					var updates []CellUpdate
					want := base.content.Clone()
					for k := 0; k < 5; k++ {
						coords := []int64{rng.Int63n(side), rng.Int63n(side)}
						bits := int64(rng.Intn(5000))
						updates = append(updates, CellUpdate{Coords: coords, Bits: bits})
						want.SetBitsAt(coords, bits)
					}
					id, err := s.Insert("Model", DeltaListPayload(base.id, updates))
					if err != nil {
						t.Fatalf("step %d delta-list: %v", step, err)
					}
					model = append(model, modelVersion{id, want})
				case op == 6 && len(model) > 1: // delete a random version
					k := rng.Intn(len(model))
					if err := s.DeleteVersion("Model", model[k].id); err != nil {
						t.Fatalf("step %d delete: %v", step, err)
					}
					model = append(model[:k], model[k+1:]...)
				case op == 7 && len(model) > 0: // reorganize
					policies := []LayoutPolicy{PolicyOptimal, PolicyAlgorithm2, PolicyLinearChain, PolicyHeadBiased}
					p := policies[rng.Intn(len(policies))]
					if err := s.Reorganize("Model", ReorganizeOptions{Policy: p, MatrixSample: 512}); err != nil {
						t.Fatalf("step %d reorganize(%v): %v", step, p, err)
					}
				case op == 8 && len(model) > 0: // compact
					if err := s.Compact("Model"); err != nil {
						t.Fatalf("step %d compact: %v", step, err)
					}
				case op == 9: // crash mid-insert, then reopen with recovery
					fault := fsio.NewFault(int64(1 + rng.Intn(50)))
					fopts := opts
					fopts.FS = fault
					fopts.Durability = true
					intended := randomContent()
					inserted, insertedID := false, 0
					if fs, err := Open(dir, fopts); err == nil {
						if id, err := fs.Insert("Model", DensePayload(intended)); err == nil {
							inserted, insertedID = true, id
						}
					}
					ropts := opts
					ropts.Durability = true
					s2, err := Open(dir, ropts)
					if err != nil {
						t.Fatalf("step %d reopen after crash: %v", step, err)
					}
					s = s2
					if dropped := s.Recovery().DroppedVersions; dropped != 0 {
						t.Fatalf("step %d: recovery dropped %d committed versions", step, dropped)
					}
					if inserted {
						model = append(model, modelVersion{insertedID, intended})
						break
					}
					// the interrupted insert is atomically in or out: any id
					// the store has beyond the model must be it, with exactly
					// the intended content
					infos, err := s.Versions("Model")
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					known := map[int]bool{}
					for _, mv := range model {
						known[mv.id] = true
					}
					for _, vi := range infos {
						if known[vi.ID] {
							continue
						}
						got, err := s.Select("Model", vi.ID)
						if err != nil {
							t.Fatalf("step %d: maybe-committed version %d unreadable: %v", step, vi.ID, err)
						}
						if !got.Dense.Equal(intended) {
							t.Fatalf("step %d: maybe-committed version %d has foreign content", step, vi.ID)
						}
						model = append(model, modelVersion{vi.ID, intended})
					}
				}
				if step%10 == 9 {
					checkAll(step)
				}
			}
			checkAll(steps)
			// final integrity check
			rep, err := s.Verify("Model")
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("final verify: %v", rep.Problems)
			}
		})
	}
}
