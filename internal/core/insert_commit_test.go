package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"arrayvers/internal/array"
	"arrayvers/internal/fsio"
)

// Regression tests for the insert commit path: transactional staging
// (no phantom versions on a failed commit), failure-site orphan
// reclamation, InsertBatch atomicity, and the group-commit coalescer
// under concurrent writers.

var errInjected = errors.New("injected io failure")

// failFS wraps a filesystem and fails exactly one matching mutation,
// then behaves normally — unlike fsio.Fault, which ends the world — so
// tests can assert the store keeps working after an I/O error.
type failFS struct {
	fsio.FS
	mu    sync.Mutex
	match func(op, path string) bool
}

func (f *failFS) arm(match func(op, path string) bool) {
	f.mu.Lock()
	f.match = match
	f.mu.Unlock()
}

func (f *failFS) hit(op, path string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.match != nil && f.match(op, path) {
		f.match = nil
		return true
	}
	return false
}

func (f *failFS) Create(path string) (fsio.File, error) {
	if f.hit("create", path) {
		return nil, errInjected
	}
	return f.FS.Create(path)
}

func (f *failFS) Append(path string) (fsio.File, error) {
	if f.hit("append", path) {
		return nil, errInjected
	}
	return f.FS.Append(path)
}

func (f *failFS) Rename(oldPath, newPath string) error {
	if f.hit("rename", newPath) {
		return errInjected
	}
	return f.FS.Rename(oldPath, newPath)
}

func (f *failFS) SyncDir(path string) error {
	if f.hit("syncdir", path) {
		return errInjected
	}
	return f.FS.SyncDir(path)
}

// assertStoreAgrees reopens the store directory with recovery and
// checks that the on-disk state matches the live store's versions and
// contents exactly — the phantom-version bug made them diverge.
func assertStoreAgrees(t *testing.T, s *Store, name string, want map[int]*array.Dense) {
	t.Helper()
	check := func(label string, st *Store) {
		infos, err := st.Versions(name)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(infos) != len(want) {
			t.Fatalf("%s: %d live versions, want %d", label, len(infos), len(want))
		}
		for _, vi := range infos {
			content, ok := want[vi.ID]
			if !ok {
				t.Fatalf("%s: unexpected version %d", label, vi.ID)
			}
			got, err := st.Select(name, vi.ID)
			if err != nil {
				t.Fatalf("%s: version %d unreadable: %v", label, vi.ID, err)
			}
			if !got.Dense.Equal(content) {
				t.Fatalf("%s: version %d corrupted", label, vi.ID)
			}
		}
	}
	check("live store", s)
	// PerArrayCommit must carry over: a durable reopen of a legacy store
	// would otherwise migrate it to the manifest behind the live store's
	// back, and the live store's next commit would go unrecorded there.
	r, err := Open(s.Dir(), Options{ChunkBytes: s.opts.ChunkBytes, CoLocate: s.opts.CoLocate,
		Durability: true, PerArrayCommit: s.opts.PerArrayCommit})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := r.Recovery().DroppedVersions; got != 0 {
		t.Fatalf("reopen dropped %d committed versions", got)
	}
	check("reopened store", r)
}

// TestInsertMetaCommitFailureRollsBack is the phantom-version
// regression: a commit fault injected under the insert's metadata
// commit must leave the failed id unselectable, the in-memory state
// identical to a durable reopen, the orphaned blobs reclaimed, and the
// id reusable by the next insert. It pins the legacy per-array rename
// protocol (PerArrayCommit); the manifest-mode analog lives in
// manifest_test.go.
func TestInsertMetaCommitFailureRollsBack(t *testing.T) {
	for _, fault := range []string{"create-tmp", "rename-meta"} {
		t.Run(fault, func(t *testing.T) {
			ffs := &failFS{FS: fsio.OS}
			opts := smallOpts()
			opts.ChunkBytes = 1 << 10
			opts.Durability = true
			opts.PerArrayCommit = true
			opts.FS = ffs
			opts.HealInterval = -1 // heal explicitly, not from the background prober
			s := testStore(t, opts)
			const side = 16
			if err := s.CreateArray(schema2D("A", side)); err != nil {
				t.Fatal(err)
			}
			v1 := crashContent(1, side)
			if _, err := s.Insert("A", DensePayload(v1)); err != nil {
				t.Fatal(err)
			}
			switch fault {
			case "create-tmp":
				ffs.arm(func(op, path string) bool {
					return op == "create" && strings.HasSuffix(path, metaFile+".tmp")
				})
			case "rename-meta":
				ffs.arm(func(op, path string) bool {
					return op == "rename" && strings.HasSuffix(path, metaFile)
				})
			}
			if _, err := s.Insert("A", DensePayload(crashContent(2, side))); !errors.Is(err, errInjected) {
				t.Fatalf("insert under a meta-commit fault returned %v, want the injected failure", err)
			}
			if fault == "rename-meta" {
				// a failed metadata rename leaves the on-disk effect
				// uncertain: the array must be contained in degraded
				// read-only mode until a heal verifies the disk
				if h := s.Health(); !h.Degraded {
					t.Fatal("array not degraded after an uncertain metadata rename failure")
				}
				if _, err := s.Insert("A", DensePayload(crashContent(9, side))); !errors.Is(err, ErrDegraded) {
					t.Fatalf("insert while degraded returned %v, want ErrDegraded", err)
				}
				rep, err := s.Heal()
				if err != nil {
					t.Fatalf("heal: %v", err)
				}
				if len(rep.Healed) != 1 || rep.Healed[0] != "A" {
					t.Fatalf("heal flipped %v back to writable, want [A]", rep.Healed)
				}
				if h := s.Health(); h.Degraded {
					t.Fatal("store still degraded after a successful heal")
				}
			} else if h := s.Health(); h.Degraded {
				t.Fatal("benign pre-commit failure must not degrade the array")
			}
			// the failed version must be invisible to selects and absent
			// from metadata, in memory and after a reopen alike
			if _, err := s.Select("A", 2); err == nil {
				t.Fatal("phantom version 2 is selectable after a failed commit")
			}
			assertStoreAgrees(t, s, "A", map[int]*array.Dense{1: v1})
			// the blobs the failed insert appended must have been swept
			if st := s.Stats(); st.InsertOrphanFiles == 0 {
				t.Fatal("failed insert reclaimed no orphaned blobs")
			}
			rep, err := s.Verify("A")
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("store fails verify after failed insert: %v", rep.Problems)
			}
			if rep.DanglingBytes != 0 {
				t.Fatalf("%d orphaned bytes left dangling after the failure-site sweep", rep.DanglingBytes)
			}
			// the reserved id is reclaimed: the next insert gets id 2 and
			// the store is fully writable
			v2 := crashContent(3, side)
			id, err := s.Insert("A", DensePayload(v2))
			if err != nil {
				t.Fatalf("insert after failed commit: %v", err)
			}
			if id != 2 {
				t.Fatalf("insert after failed commit got id %d, want the reclaimed id 2", id)
			}
			assertStoreAgrees(t, s, "A", map[int]*array.Dense{1: v1, 2: v2})
		})
	}
}

// TestInsertEncodeFailureSweepsOrphans covers the stage-time failure
// site: chunk blobs appended before a mid-encode fault must be
// reclaimed immediately — on non-durable stores too, which never run a
// recovery sweep — and counted in Stats.
func TestInsertEncodeFailureSweepsOrphans(t *testing.T) {
	for _, durable := range []bool{true, false} {
		for _, coLocate := range []bool{true, false} {
			t.Run(fmt.Sprintf("durable=%v/coLocate=%v", durable, coLocate), func(t *testing.T) {
				ffs := &failFS{FS: fsio.OS}
				opts := smallOpts()
				opts.ChunkBytes = 1 << 10 // several chunks per version
				opts.CoLocate = coLocate
				opts.Durability = durable
				opts.Parallelism = 1 // deterministic append order
				opts.FS = ffs
				s := testStore(t, opts)
				const side = 32
				if err := s.CreateArray(schema2D("A", side)); err != nil {
					t.Fatal(err)
				}
				v1 := crashContent(1, side)
				if _, err := s.Insert("A", DensePayload(v1)); err != nil {
					t.Fatal(err)
				}
				// fail the third chunk append of the next insert: two blobs
				// are already on disk and must be swept
				appends := 0
				ffs.arm(func(op, path string) bool {
					if op != "append" || filepath.Base(filepath.Dir(path)) != "chunks" {
						return false
					}
					appends++
					return appends == 3
				})
				if _, err := s.Insert("A", DensePayload(crashContent(2, side))); !errors.Is(err, errInjected) {
					t.Fatalf("insert under an append fault returned %v, want the injected failure", err)
				}
				if st := s.Stats(); st.InsertOrphanFiles == 0 || st.InsertOrphanBytes == 0 {
					t.Fatalf("stage failure reclaimed nothing (files=%d bytes=%d)",
						st.InsertOrphanFiles, st.InsertOrphanBytes)
				}
				rep, err := s.Verify("A")
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Ok() {
					t.Fatalf("store fails verify after failed stage: %v", rep.Problems)
				}
				if rep.DanglingBytes != 0 {
					t.Fatalf("%d orphaned bytes left dangling on a %s store",
						rep.DanglingBytes, map[bool]string{true: "durable", false: "non-durable"}[durable])
				}
				// still fully writable, id unaffected
				if id, err := s.Insert("A", DensePayload(crashContent(3, side))); err != nil || id != 2 {
					t.Fatalf("insert after failed stage: id=%d err=%v, want id 2", id, err)
				}
			})
		}
	}
}

// TestInsertBatchAtomicAndChained pins InsertBatch semantics: one
// shared commit for the whole batch (atomic on failure), contiguous
// ids, lineage chaining member-to-member, and intra-batch delta
// encoding (later members delta against earlier ones staged in the
// same call).
func TestInsertBatchAtomicAndChained(t *testing.T) {
	ffs := &failFS{FS: fsio.OS}
	opts := smallOpts()
	opts.ChunkBytes = 1 << 10
	opts.FS = ffs
	s := testStore(t, opts)
	const side = 32
	if err := s.CreateArray(schema2D("B", side)); err != nil {
		t.Fatal(err)
	}
	series := evolvingVersions(3, side, 7)
	var ps []Payload
	for _, v := range series {
		ps = append(ps, DensePayload(v))
	}
	ids, err := s.InsertBatch("B", ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("batch ids = %v, want [1 2 3]", ids)
	}
	infos, err := s.Versions("B")
	if err != nil {
		t.Fatal(err)
	}
	for i, vi := range infos {
		if i > 0 && (len(vi.Parents) != 1 || vi.Parents[0] != ids[i-1]) {
			t.Fatalf("batch member %d has parents %v, want [%d]", vi.ID, vi.Parents, ids[i-1])
		}
		got, err := s.Select("B", vi.ID)
		if err != nil || !got.Dense.Equal(series[i]) {
			t.Fatalf("batch member %d wrong after commit (%v)", vi.ID, err)
		}
	}
	// the evolving series deltas well: at least one later member should
	// have delta-encoded against an earlier one staged in the same call
	chained := false
	for _, vi := range infos[1:] {
		if len(vi.DeltaBases) > 0 {
			chained = true
		}
	}
	if !chained {
		t.Fatal("no batch member delta-encoded against an earlier member of the same batch")
	}

	// a fault under the shared commit must abort the WHOLE batch (a
	// failed manifest-log open is benign: nothing was appended)
	ffs.arm(func(op, path string) bool {
		return op == "append" && strings.HasSuffix(path, ".log") &&
			strings.Contains(path, manifestPrefix)
	})
	if _, err := s.InsertBatch("B", []Payload{
		DensePayload(crashContent(10, side)),
		DensePayload(crashContent(11, side)),
	}); !errors.Is(err, errInjected) {
		t.Fatalf("batch under a commit fault returned %v, want the injected failure", err)
	}
	infos, err = s.Versions("B")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("failed batch committed partially: %d versions, want 3", len(infos))
	}
	if _, err := s.Select("B", 4); err == nil {
		t.Fatal("phantom batch member selectable after failed shared commit")
	}
	rep, err := s.Verify("B")
	if err != nil || !rep.Ok() {
		t.Fatalf("verify after failed batch: %v %v", err, rep.Problems)
	}
	if rep.DanglingBytes != 0 {
		t.Fatalf("failed batch left %d bytes dangling", rep.DanglingBytes)
	}
}

// TestGroupCommitStress runs 8 durable writers across 4 arrays — the
// -race safety net for the off-lock staging path and the group-commit
// coalescer. Every acknowledged insert must read back byte-identical,
// the commit counters must account for every version, and a recovery
// reopen must agree with the live store.
func TestGroupCommitStress(t *testing.T) {
	const (
		writers    = 8
		arrays     = 4
		perWriter  = 8
		side       = 16
		arrayNameF = "S%d"
	)
	for _, disable := range []bool{false, true} {
		t.Run(fmt.Sprintf("disableGroupCommit=%v", disable), func(t *testing.T) {
			opts := smallOpts()
			opts.ChunkBytes = 1 << 10
			opts.Durability = true
			opts.DisableGroupCommit = disable
			s := testStore(t, opts)
			for a := 0; a < arrays; a++ {
				if err := s.CreateArray(schema2D(fmt.Sprintf(arrayNameF, a), side)); err != nil {
					t.Fatal(err)
				}
			}
			var (
				mu        sync.Mutex
				committed = make([]map[int]*array.Dense, arrays)
				wg        sync.WaitGroup
				failc     = make(chan error, writers)
			)
			for a := range committed {
				committed[a] = map[int]*array.Dense{}
			}
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					a := w % arrays
					name := fmt.Sprintf(arrayNameF, a)
					for i := 0; i < perWriter; i++ {
						content := crashContent(int64(w*1000+i), side)
						id, err := s.Insert(name, DensePayload(content))
						if err != nil {
							failc <- err
							return
						}
						mu.Lock()
						committed[a][id] = content
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()
			close(failc)
			for err := range failc {
				t.Fatal(err)
			}
			st := s.Stats()
			total := int64(writers * perWriter)
			if st.GroupCommitVersions != total {
				t.Fatalf("GroupCommitVersions = %d, want %d", st.GroupCommitVersions, total)
			}
			if st.GroupCommits == 0 || st.GroupCommits > total {
				t.Fatalf("GroupCommits = %d out of range (1..%d)", st.GroupCommits, total)
			}
			if disable && st.GroupCommits != total {
				t.Fatalf("DisableGroupCommit coalesced anyway: %d commits for %d inserts", st.GroupCommits, total)
			}
			for a := 0; a < arrays; a++ {
				assertStoreAgrees(t, s, fmt.Sprintf(arrayNameF, a), committed[a])
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
