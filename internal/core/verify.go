package core

import (
	"fmt"
	"os"
	"sort"
)

// VerifyReport summarizes an integrity check of one array.
type VerifyReport struct {
	Array    string
	Versions int
	Chunks   int
	// Problems lists every integrity violation found; empty means the
	// array is fully readable and internally consistent.
	Problems []string
	// ChainDepths maps version ID to the length of its longest chunk
	// delta chain (1 = materialized).
	ChainDepths map[int]int
	// DanglingBytes counts bytes in chunk files not referenced by any
	// live version (reclaimable by Compact).
	DanglingBytes int64
}

// Ok reports whether the check found no problems.
func (r VerifyReport) Ok() bool { return len(r.Problems) == 0 }

// Verify runs an offline integrity check of one array: every live
// version's metadata must reference readable, decodable chunk payloads;
// every delta base must itself be a live version (no dangling or cyclic
// chains); and every chunk of the schema's chunk grid must be present in
// every version. It also measures delta-chain depths and space
// reclaimable by Compact.
func (s *Store) Verify(name string) (VerifyReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.arrays[name]
	if !ok {
		return VerifyReport{}, fmt.Errorf("core: no array %q", name)
	}
	rep := VerifyReport{Array: name, ChainDepths: map[int]int{}}
	live := st.live()
	rep.Versions = len(live)
	liveIDs := map[int]bool{}
	for _, vm := range live {
		liveIDs[vm.ID] = true
	}
	ck, err := st.chunker()
	if err != nil {
		return rep, err
	}
	var wantKeys []string
	if st.SparseRep {
		wantKeys = []string{"chunk-full"}
	} else {
		for _, origin := range ck.All() {
			wantKeys = append(wantKeys, ck.Key(origin))
		}
	}
	type fileRange struct{ off, end int64 }
	used := map[string][]fileRange{}
	for _, vm := range live {
		for _, attr := range st.Schema.Attrs {
			chunks := vm.Chunks[attr.Name]
			for _, key := range wantKeys {
				e, ok := chunks[key]
				if !ok {
					rep.Problems = append(rep.Problems,
						fmt.Sprintf("version %d: missing chunk %s/%s", vm.ID, attr.Name, key))
					continue
				}
				rep.Chunks++
				if e.Base >= 0 && !liveIDs[e.Base] {
					rep.Problems = append(rep.Problems,
						fmt.Sprintf("version %d: chunk %s/%s delta-based on non-live version %d", vm.ID, attr.Name, key, e.Base))
				}
				used[e.File] = append(used[e.File], fileRange{e.Offset, e.Offset + frameLen(st.Format, e.Length)})
			}
			// delta-chain depth and cycle detection per chunk
			for _, key := range wantKeys {
				depth, cyclic := chainDepth(st, attr.Name, key, vm.ID, len(live))
				if cyclic {
					rep.Problems = append(rep.Problems,
						fmt.Sprintf("version %d: chunk %s/%s has a cyclic or overlong delta chain", vm.ID, attr.Name, key))
				}
				if depth > rep.ChainDepths[vm.ID] {
					rep.ChainDepths[vm.ID] = depth
				}
			}
		}
		// decodability: reconstruct the whole version
		for _, attr := range st.Schema.Attrs {
			if _, err := s.readPlaneLocked(st, vm.ID, attr.Name); err != nil {
				rep.Problems = append(rep.Problems,
					fmt.Sprintf("version %d: attribute %s unreadable: %v", vm.ID, attr.Name, err))
			}
		}
	}
	// dangling bytes: file sizes minus referenced ranges
	entries, err := os.ReadDir(st.chunksDir())
	if err != nil {
		return rep, err
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		ranges := used[ent.Name()]
		sort.Slice(ranges, func(a, b int) bool { return ranges[a].off < ranges[b].off })
		covered := int64(0)
		cursor := int64(0)
		for _, r := range ranges {
			if r.end <= cursor {
				continue
			}
			start := r.off
			if start < cursor {
				start = cursor
			}
			covered += r.end - start
			cursor = r.end
		}
		if info.Size() > covered {
			rep.DanglingBytes += info.Size() - covered
		}
		if covered > info.Size() {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("file %s: metadata references %d bytes but file has %d", ent.Name(), covered, info.Size()))
		}
	}
	return rep, nil
}

// chainDepth walks a chunk's delta chain, returning its length and
// whether it is cyclic/overlong.
func chainDepth(st *arrayState, attr, key string, id, maxDepth int) (int, bool) {
	depth := 0
	for {
		depth++
		if depth > maxDepth {
			return depth, true
		}
		vm, err := st.version(id)
		if err != nil {
			return depth, true
		}
		e, ok := vm.Chunks[attr][key]
		if !ok {
			return depth, true
		}
		if e.Base < 0 {
			return depth, false
		}
		id = e.Base
	}
}
