package core

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// readView is one array's metadata as seen by a single query. The public
// select paths build a cloned view under Store.mu and then decode chunks
// against it with no store lock held, so concurrent queries (and inserts)
// never serialize on metadata access. Internal callers that already hold
// Store.mu use an uncloned view that delegates straight to the live
// arrayState.
//
// The immutable arrayState fields (dir, Schema, SparseRep, Fill,
// ChunkSide) are read through the shared pointer; only the mutable
// version list is cloned.
type readView struct {
	st    *arrayState
	epoch uint64
	// seq is the array's mutation sequence at snapshot time; an off-lock
	// rewrite commits only if it is still current (see tryReorganize).
	seq uint64
	// dir and format pin the chunk generation the snapshot reads from:
	// a destructive rewrite commits a new generation directory (and may
	// upgrade the chunk format), and a reader must keep decoding the one
	// its metadata references.
	dir    string
	format int
	// ids lists the live version IDs in version order (the order
	// Reorganize and the materialization matrix use).
	ids []int
	// noCache bypasses the store-wide decoded-chunk LRU for reads
	// through this view. Bulk scans that decode every version — tuner
	// cost estimation, rewrite plane loads — would otherwise evict the
	// clients' hot working set and skew the hit-rate counters; they
	// memoize within the scan (chunkCache) instead.
	noCache bool
	// byID holds cloned live version metadata; nil means "reading under
	// the store lock, use st directly".
	byID map[int]*versionMeta
}

// viewLocked builds a readView for st. Callers hold Store.mu (read or
// write). With clone set, the live versions' outer chunk maps are copied
// so the view stays coherent after the lock is released. The inner
// (chunk key → entry) maps are shared, not copied: every mutator
// replaces inner maps wholesale rather than writing into published ones,
// so a snapshot costs O(versions × attrs), independent of chunk count.
func (s *Store) viewLocked(st *arrayState, clone bool) *readView {
	v := &readView{st: st, epoch: s.epochs[st.Schema.Name], seq: st.seq, dir: st.chunksDir(), format: st.Format}
	live := st.live()
	v.ids = make([]int, len(live))
	for i, vm := range live {
		v.ids[i] = vm.ID
	}
	if !clone {
		return v
	}
	v.byID = make(map[int]*versionMeta)
	for _, vm := range live {
		cp := *vm
		cp.Chunks = make(map[string]map[string]chunkEntry, len(vm.Chunks))
		for attr, m := range vm.Chunks {
			cp.Chunks[attr] = m
		}
		v.byID[vm.ID] = &cp
	}
	return v
}

// snapshot takes the store lock briefly to clone the named array's
// metadata and acquire its I/O read latch, then releases the store lock.
// The returned release func must be called when the query is done. The
// latch is acquired while still under Store.mu, which is what makes it
// race-free: a destructive rewrite needs Store.mu before it can request
// the exclusive latch, so it can never slip between our snapshot and our
// latch acquisition.
//
// The cloned view is memoized on the arrayState between mutations:
// views are immutable once built, so concurrent readers share one, and
// repeated selects skip the clone entirely. A mutator clears the memo
// at the top of its critical section; since it holds Store.mu
// exclusively until done, a reader can never store a view that predates
// a mutation after that mutation's clear.
func (s *Store) snapshot(name string) (*readView, func(), error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, nil, ErrClosed
	}
	st, ok := s.arrays[name]
	if !ok {
		s.mu.RUnlock()
		return nil, nil, fmt.Errorf("core: no array %q", name)
	}
	v := st.cachedView.Load()
	if v == nil || v.epoch != s.epochs[name] {
		v = s.viewLocked(st, true)
		st.cachedView.Store(v)
	}
	st.ioMu.RLock()
	s.mu.RUnlock()
	return v, st.ioMu.RUnlock, nil
}

// snapshotUncached is snapshot for bulk scans: it returns a private
// (never memoized) clone whose reads bypass the store-wide chunk cache,
// so decoding every version of an array leaves the LRU's hot working
// set untouched.
func (s *Store) snapshotUncached(name string) (*readView, func(), error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, nil, ErrClosed
	}
	st, ok := s.arrays[name]
	if !ok {
		s.mu.RUnlock()
		return nil, nil, fmt.Errorf("core: no array %q", name)
	}
	v := s.viewLocked(st, true)
	v.noCache = true
	st.ioMu.RLock()
	s.mu.RUnlock()
	return v, st.ioMu.RUnlock, nil
}

// viewOfMeta builds a readView over a staged metadata document: reads
// resolve against the staged version set and the generation it names.
// Staged versions' payloads are already on disk (appends precede the
// commit), so the view can decode them before the install. Cache puts
// are suppressed: staged version ids are not committed yet and must
// never become visible through the store-wide LRU.
func (s *Store) viewOfMeta(st *arrayState, m *arrayMeta) *readView {
	v := &readView{
		st:      st,
		dir:     filepath.Join(st.dir, chunksDirName(m.Gen)),
		format:  m.Format,
		noCache: true,
		byID:    make(map[int]*versionMeta),
	}
	for _, vm := range m.Versions {
		if vm.Deleted {
			continue
		}
		v.ids = append(v.ids, vm.ID)
		v.byID[vm.ID] = vm
	}
	return v
}

// mutateLocked marks a metadata mutation: it bumps the sequence (which
// invalidates any in-flight off-lock rewrite build) and drops the
// memoized read view. Callers hold Store.mu exclusively.
func (st *arrayState) mutateLocked() {
	st.seq++
	st.cachedView.Store(nil)
}

func (v *readView) version(id int) (*versionMeta, error) {
	if v.byID == nil {
		return v.st.version(id)
	}
	if vm, ok := v.byID[id]; ok {
		return vm, nil
	}
	return nil, fmt.Errorf("core: array %q has no version %d", v.st.Schema.Name, id)
}

// forEachLimit runs fn(0..n-1) on up to `workers` goroutines and returns
// the first error. Remaining indices are skipped once an error occurs
// (in-flight calls run to completion) or ctx is cancelled — an
// abandoned request stops burning the worker pool at the next chunk
// boundary. workers <= 1 degenerates to a plain serial loop with zero
// goroutine overhead.
func forEachLimit(ctx context.Context, n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errMu   sync.Mutex
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				err := ctx.Err()
				if err == nil {
					err = fn(i)
				}
				if err != nil {
					errMu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}
