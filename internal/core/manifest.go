package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The store-wide manifest log (on-disk commit protocol 2).
//
// The PR 3 protocol gave every array its own commit point: a staged
// versions.json renamed into place. That shape made cross-array
// atomicity impossible by construction and charged every touched array
// its own fsync pair. The manifest replaces the N per-array rename
// commits with one append-only, checksummed log at the store root,
// following the LSM-manifest idiom:
//
//	CURRENT            {"gen":N} — names the live snapshot/log pair;
//	                   replaced by tmp-write + rename + root sync
//	MANIFEST-N.snap    one AVC1 frame: JSON {seq, arrays} — the full
//	                   store state as of sequence number seq
//	MANIFEST-N.log     AVC1 frames, one per commit: JSON
//	                   {seq, ops:[{name, drop?, meta?}...]}
//
// Every record carries whole arrayMeta documents (last-writer-wins on
// replay), reusing the PR 3 chunk frame format — 13-byte header with
// magic, version, payload length, and CRC32-C — so a torn append is
// detected exactly like a torn chunk tail. Sequence numbers are
// contiguous: the snapshot stores the last sequence it covers and the
// log must continue at seq+1, so replay can tell a clean tail from a
// missing record.
//
// THE commit point of every mutation is the manifest append (fsynced
// under Durability). Chunk payloads are still synced before it, so the
// PR 3 ordering invariant survives: once a record is durable,
// everything it references is too. Because all arrays share the one
// log, a single append can carry records for many arrays — the group
// commit coalescer merges concurrent commits across arrays into one
// fsync, and InsertMulti commits a multi-array batch as one record
// with all-or-nothing visibility.
//
// Failure handling mirrors saveMetaDoc's split: an append that fails
// before any byte is written (open failure) is benign; a failed write,
// fsync, or close leaves the log tail uncertain, so the manifest is
// poisoned — the whole store degrades read-only — until a heal
// truncates the log back to the last known-good byte. A failed CURRENT
// flip during rotation likewise poisons with the pending generation
// recorded, and the heal retries the (idempotent) flip.

const (
	// currentFile points at the live manifest generation; its presence
	// is what marks a store directory as manifest-format.
	currentFile = "CURRENT"
	// manifestPrefix prefixes the per-generation snapshot/log files.
	manifestPrefix = "MANIFEST-"
	// defaultManifestRotateBytes is the log size that triggers a
	// snapshot rotation when Options.ManifestRotateBytes is zero.
	defaultManifestRotateBytes = 4 << 20
)

func manifestSnapName(gen int) string { return fmt.Sprintf("%s%06d.snap", manifestPrefix, gen) }
func manifestLogName(gen int) string  { return fmt.Sprintf("%s%06d.log", manifestPrefix, gen) }

// manifestOp is one array's part of a commit record: either its full
// replacement metadata document or a drop marker.
type manifestOp struct {
	Name string     `json:"name"`
	Drop bool       `json:"drop,omitempty"`
	Meta *arrayMeta `json:"meta,omitempty"`
}

// manifestRecord is one committed mutation: every op in it becomes
// visible atomically at replay.
type manifestRecord struct {
	Seq int64        `json:"seq"`
	Ops []manifestOp `json:"ops"`
}

// manifestSnapshot is the full store state a generation starts from.
// Seq is the last sequence number the snapshot covers; the
// generation's log continues at Seq+1.
type manifestSnapshot struct {
	Seq    int64        `json:"seq"`
	Arrays []manifestOp `json:"arrays"`
}

// manifestCommit is one enqueued commit waiting for a leader to append
// it; done is closed once err is final.
type manifestCommit struct {
	ops  []manifestOp
	done chan struct{}
	err  error
}

// manifest is the store-wide commit log. Its writer latch (mu) is a
// leaf below every array latch and Store.mu: commit leaders call
// commit() while holding per-array commitMu (and sometimes Store.mu),
// and the manifest never takes any store or array lock back.
type manifest struct {
	s   *Store
	dir string

	// qmu guards the pending commit queue; commit() enqueues under it
	// and whichever committer wins mu drains the whole queue into one
	// append (cross-array group commit).
	qmu   sync.Mutex
	queue []*manifestCommit

	// mu is the log writer latch; everything below is guarded by it.
	mu sync.Mutex
	// gen is the live generation (CURRENT's value).
	gen int
	// nextSeq is the last sequence number committed.
	nextSeq int64
	// validOff is the byte length of the known-good log prefix; a
	// failed append leaves bytes past it in doubt until a heal
	// truncates them.
	validOff int64
	// state mirrors the committed metadata document of every array;
	// rotation snapshots it without touching Store.mu (committed docs
	// are never edited in place — mutators always clone).
	state map[string]*arrayMeta
	// poisoned holds the error that left the log tail uncertain; no
	// append runs until heal() clears it.
	poisoned error
	// pendingFlip is a rotation generation whose snapshot and log are
	// durable but whose CURRENT flip failed uncertainly; heal retries
	// the flip, which is idempotent.
	pendingFlip int
	// lazyTrunc marks a torn tail found by a non-durable open, which
	// must not mutate the directory; the first append truncates it.
	lazyTrunc bool
	// rotateAt is the log size that triggers rotation; <0 disables.
	rotateAt int64
}

func manifestRotateAt(opts Options) int64 {
	if opts.ManifestRotateBytes != 0 {
		return opts.ManifestRotateBytes
	}
	return defaultManifestRotateBytes
}

// commitMeta commits one array's staged metadata document. It is the
// seam between the two commit protocols: per-array stores rename a
// fresh versions.json into place (the PR 3 commit point), manifest
// stores append one record to the store-wide log. Callers hold the
// array's commitMu (the metadata writer latch) either way.
func (s *Store) commitMeta(st *arrayState, m *arrayMeta) error {
	if s.man == nil {
		return s.saveMetaDoc(st.dir, m)
	}
	return s.man.commit([]manifestOp{{Name: st.Schema.Name, Meta: m}})
}

// commit appends ops as one record and returns once it is durable (or
// failed). Concurrent commits — even to different arrays — coalesce:
// the committer that wins the writer latch drains the whole queue and
// pays one write + one fsync for every record in it.
func (man *manifest) commit(ops []manifestOp) error {
	c := &manifestCommit{ops: ops, done: make(chan struct{})}
	man.qmu.Lock()
	man.queue = append(man.queue, c)
	man.qmu.Unlock()
	for {
		select {
		case <-c.done:
			return c.err
		default:
		}
		man.mu.Lock()
		select {
		case <-c.done:
			man.mu.Unlock()
			return c.err
		default:
		}
		man.qmu.Lock()
		batch := man.queue
		man.queue = nil
		man.qmu.Unlock()
		man.appendLocked(batch)
		man.mu.Unlock()
	}
}

// appendLocked encodes every queued commit into one buffer, appends it
// to the log with a single write and (under Durability) a single
// fsync, and installs the committed documents into the mirror state.
// Callers hold man.mu.
func (man *manifest) appendLocked(batch []*manifestCommit) {
	if len(batch) == 0 {
		return
	}
	finish := func(err error) {
		for _, c := range batch {
			c.err = err
			close(c.done)
		}
	}
	if man.poisoned != nil {
		// definite failure: nothing was appended. The earlier failure
		// already degraded the store; report that state, not a fresh
		// uncertainty.
		finish(fmt.Errorf("core: manifest log has an unhealed tail: %w", ErrDegraded))
		return
	}
	s := man.s
	startSeq := man.nextSeq
	var buf []byte
	for _, c := range batch {
		man.nextSeq++
		raw, err := json.Marshal(&manifestRecord{Seq: man.nextSeq, Ops: c.ops})
		if err != nil {
			man.nextSeq = startSeq
			finish(err)
			return
		}
		buf = appendFrame(buf, raw)
	}
	logPath := filepath.Join(man.dir, manifestLogName(man.gen))
	if man.lazyTrunc {
		// a non-durable open saw this torn tail but could not repair it
		// (read-only opens must not mutate); cut it now, before the
		// first append would otherwise land behind garbage
		if err := s.fs.Truncate(logPath, man.validOff); err != nil {
			man.nextSeq = startSeq
			finish(err)
			return
		}
		man.lazyTrunc = false
	}
	f, err := s.fs.Append(logPath)
	if err != nil {
		// benign: the log was never opened, nothing changed on disk
		man.nextSeq = startSeq
		finish(err)
		return
	}
	_, werr := f.Write(buf)
	if werr == nil && s.opts.Durability {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		// uncertain: some prefix of the batch may be durable. The tail
		// past validOff is poisoned — appending behind it would commit
		// records that replay may never reach — so the whole store
		// degrades until the heal truncates the log back to validOff.
		man.nextSeq = startSeq
		man.poisonLocked(werr)
		finish(uncertain(werr))
		return
	}
	for _, c := range batch {
		for i := range c.ops {
			op := &c.ops[i]
			if op.Drop {
				delete(man.state, op.Name)
			} else {
				man.state[op.Name] = op.Meta
			}
		}
	}
	man.validOff += int64(len(buf))
	s.addManifestCommit(len(batch))
	finish(nil)
	if man.rotateAt >= 0 && man.validOff > man.rotateAt {
		man.rotateLocked()
	}
}

// poisonLocked marks the log tail uncertain and degrades the whole
// store: every array shares this one commit point, so none of them can
// safely commit until the heal repairs it. Callers hold man.mu.
func (man *manifest) poisonLocked(err error) {
	man.poisoned = err
	man.s.degradeStore(err)
}

// rotateLocked writes a fresh snapshot generation and flips CURRENT to
// it. Rotation is housekeeping for the commit that triggered it — that
// commit already succeeded — so a failure before the flip is benign:
// remove the debris, keep the old generation, retry at the next
// append. From the CURRENT flip on a failure is uncertain and poisons
// the manifest with the flip pending; heal retries it. Callers hold
// man.mu.
func (man *manifest) rotateLocked() {
	s := man.s
	newGen := man.gen + 1
	snap := manifestSnapshot{Seq: man.nextSeq}
	names := make([]string, 0, len(man.state))
	for n := range man.state {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		snap.Arrays = append(snap.Arrays, manifestOp{Name: n, Meta: man.state[n]})
	}
	raw, err := json.Marshal(&snap)
	if err != nil {
		return
	}
	cleanup := func(err error) {
		s.noteDiskPressure(err)
		_ = s.fs.Remove(filepath.Join(man.dir, manifestSnapName(newGen)))
		_ = s.fs.Remove(filepath.Join(man.dir, manifestLogName(newGen)))
	}
	if err := man.writeFileSync(manifestSnapName(newGen), appendFrame(nil, raw)); err != nil {
		cleanup(err)
		return
	}
	if err := man.writeFileSync(manifestLogName(newGen), nil); err != nil {
		cleanup(err)
		return
	}
	if s.opts.Durability {
		// the new generation's directory entries must be durable before
		// CURRENT can point at them
		if err := s.fs.SyncDir(man.dir); err != nil {
			cleanup(err)
			return
		}
	}
	if err := man.writeCurrent(newGen); err != nil {
		if isUncertain(err) {
			man.pendingFlip = newGen
			man.poisonLocked(err)
		} else {
			cleanup(err)
		}
		return
	}
	man.finishFlipLocked(newGen)
}

// finishFlipLocked installs a committed rotation: the generation
// advances, the log restarts empty, and the superseded generation's
// files are swept best-effort (a crashed sweep leaves debris for the
// next durable open). Callers hold man.mu.
func (man *manifest) finishFlipLocked(newGen int) {
	old := man.gen
	man.gen = newGen
	man.validOff = 0
	man.lazyTrunc = false
	man.pendingFlip = 0
	man.s.addManifestRotation()
	_ = man.s.fs.Remove(filepath.Join(man.dir, manifestSnapName(old)))
	_ = man.s.fs.Remove(filepath.Join(man.dir, manifestLogName(old)))
}

// writeFileSync creates name under the manifest dir with the given
// contents, fsynced under Durability. Failures are benign: Create
// truncates, so a retry starts clean.
func (man *manifest) writeFileSync(name string, data []byte) error {
	s := man.s
	f, err := s.fs.Create(filepath.Join(man.dir, name))
	if err != nil {
		return err
	}
	var werr error
	if len(data) > 0 {
		_, werr = f.Write(data)
	}
	if werr == nil && s.opts.Durability {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// writeCurrent atomically points CURRENT at gen: tmp write (+fsync
// under Durability), rename, parent sync. Failures through the tmp
// close are benign; the rename onward is uncertain, exactly like
// saveMetaDoc.
func (man *manifest) writeCurrent(gen int) error {
	s := man.s
	tmp := filepath.Join(man.dir, currentFile+".tmp")
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := fmt.Fprintf(f, "{\"gen\":%d}\n", gen)
	if werr == nil && s.opts.Durability {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	if err := s.fs.Rename(tmp, filepath.Join(man.dir, currentFile)); err != nil {
		return uncertain(err)
	}
	if s.opts.Durability {
		return uncertain(s.fs.SyncDir(man.dir))
	}
	return nil
}

// heal repairs the manifest after an uncertain failure: a pending
// rotation flip is retried (the new generation's files are already
// durable, so re-pointing CURRENT is idempotent), and a poisoned log
// tail is truncated back to the last byte every acknowledged commit
// covers. Called from Store.Heal's store-degraded branch.
func (man *manifest) heal() error {
	man.mu.Lock()
	defer man.mu.Unlock()
	if man.pendingFlip != 0 {
		if err := man.writeCurrent(man.pendingFlip); err != nil {
			return err
		}
		man.finishFlipLocked(man.pendingFlip)
		man.poisoned = nil
		return nil
	}
	if man.poisoned == nil {
		return nil
	}
	logPath := filepath.Join(man.dir, manifestLogName(man.gen))
	if err := man.s.fs.Truncate(logPath, man.validOff); err != nil {
		return err
	}
	man.poisoned = nil
	return nil
}

// --- open, replay, migration ---

// readCurrent parses the CURRENT pointer; os.ErrNotExist means the
// store is (still) per-array format.
func readCurrent(dir string) (int, error) {
	raw, err := os.ReadFile(filepath.Join(dir, currentFile))
	if err != nil {
		return 0, err
	}
	var cur struct {
		Gen int `json:"gen"`
	}
	if err := json.Unmarshal(raw, &cur); err != nil {
		return 0, fmt.Errorf("core: corrupt %s: %w", currentFile, err)
	}
	if cur.Gen < 1 {
		return 0, fmt.Errorf("core: corrupt %s: generation %d", currentFile, cur.Gen)
	}
	return cur.Gen, nil
}

// scanManifestFrame parses one AVC1 frame at the head of buf. ok is
// false when the bytes do not form a complete, checksum-valid frame —
// at the log tail that is a torn append, indistinguishable by design
// from a crash mid-write.
func scanManifestFrame(buf []byte) (payload []byte, size int64, ok bool) {
	if len(buf) < frameHeaderLen {
		return nil, 0, false
	}
	if string(buf[:4]) != frameMagic || buf[4] != frameVersion {
		return nil, 0, false
	}
	n := int64(binary.LittleEndian.Uint32(buf[5:9]))
	total := frameHeaderLen + n
	if int64(len(buf)) < total {
		return nil, 0, false
	}
	payload = buf[frameHeaderLen:total]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[9:13]) {
		return nil, 0, false
	}
	return payload, total, true
}

// decodeManifestSnapshot parses and validates a snapshot file's one
// frame.
func decodeManifestSnapshot(raw []byte) (manifestSnapshot, error) {
	payload, size, ok := scanManifestFrame(raw)
	if !ok || size != int64(len(raw)) {
		return manifestSnapshot{}, errors.New("corrupt snapshot frame")
	}
	var snap manifestSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return manifestSnapshot{}, fmt.Errorf("corrupt snapshot: %w", err)
	}
	for _, op := range snap.Arrays {
		if op.Drop || op.Meta == nil {
			return manifestSnapshot{}, fmt.Errorf("corrupt snapshot: array %q has no document", op.Name)
		}
		if err := op.Meta.Schema.Validate(); err != nil {
			return manifestSnapshot{}, fmt.Errorf("corrupt snapshot: array %q: %w", op.Name, err)
		}
	}
	return snap, nil
}

// openManifest replays an existing manifest (CURRENT present):
// snapshot first, then the log in sequence order. A torn tail is
// truncated under Durability (recorded in recovery stats) or replayed
// around and cut lazily by the first append otherwise. A checksum-valid
// record with a non-contiguous sequence number is corruption, not a
// torn tail, and fails the open.
func openManifest(s *Store) (*manifest, error) {
	gen, err := readCurrent(s.dir)
	if err != nil {
		return nil, err
	}
	man := &manifest{
		s:        s,
		dir:      s.dir,
		gen:      gen,
		state:    make(map[string]*arrayMeta),
		rotateAt: manifestRotateAt(s.opts),
	}
	snapRaw, err := os.ReadFile(filepath.Join(s.dir, manifestSnapName(gen)))
	if err != nil {
		return nil, fmt.Errorf("core: manifest snapshot: %w", err)
	}
	snap, err := decodeManifestSnapshot(snapRaw)
	if err != nil {
		return nil, fmt.Errorf("core: manifest snapshot %s: %w", manifestSnapName(gen), err)
	}
	for _, op := range snap.Arrays {
		man.state[op.Name] = op.Meta
	}
	man.nextSeq = snap.Seq

	logPath := filepath.Join(s.dir, manifestLogName(gen))
	logRaw, err := os.ReadFile(logPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("core: manifest log: %w", err)
	}
	var off int64
	for off < int64(len(logRaw)) {
		payload, size, ok := scanManifestFrame(logRaw[off:])
		if !ok {
			break // torn tail
		}
		var rec manifestRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, fmt.Errorf("core: manifest log %s at offset %d: corrupt record: %w", manifestLogName(gen), off, err)
		}
		if rec.Seq != man.nextSeq+1 {
			return nil, fmt.Errorf("core: manifest log %s at offset %d: sequence %d, want %d", manifestLogName(gen), off, rec.Seq, man.nextSeq+1)
		}
		for i := range rec.Ops {
			op := &rec.Ops[i]
			if op.Drop {
				delete(man.state, op.Name)
				continue
			}
			if op.Meta == nil {
				return nil, fmt.Errorf("core: manifest log %s: record %d: array %q has no document", manifestLogName(gen), rec.Seq, op.Name)
			}
			if err := op.Meta.Schema.Validate(); err != nil {
				return nil, fmt.Errorf("core: manifest log %s: record %d: array %q: %w", manifestLogName(gen), rec.Seq, op.Name, err)
			}
			man.state[op.Name] = op.Meta
		}
		man.nextSeq = rec.Seq
		off += size
	}
	man.validOff = off
	if torn := int64(len(logRaw)) - off; torn > 0 {
		if s.opts.Durability {
			if err := s.fs.Truncate(logPath, off); err != nil {
				return nil, fmt.Errorf("core: truncate torn manifest tail: %w", err)
			}
			s.recovery.TruncatedFiles++
			s.recovery.TruncatedBytes += torn
		} else {
			man.lazyTrunc = true
		}
	}
	return man, nil
}

// sweepRootLocked removes root-level crash debris on a durable open of
// a manifest store: superseded or half-written MANIFEST generations,
// CURRENT tmp files, legacy tombstones, and array directories the
// replayed state does not reference (a crashed CreateArray that never
// committed, a committed DeleteArray whose removal was interrupted, or
// a pre-migration leftover).
func (man *manifest) sweepRootLocked() error {
	s := man.s
	entries, err := os.ReadDir(man.dir)
	if err != nil {
		return err
	}
	keepSnap, keepLog := manifestSnapName(man.gen), manifestLogName(man.gen)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			if _, live := man.state[name]; live && !strings.HasSuffix(name, tombstoneSuffix) {
				continue
			}
			if err := s.fs.RemoveAll(filepath.Join(man.dir, name)); err != nil {
				return fmt.Errorf("sweep array dir %q: %w", name, err)
			}
			s.recovery.RemovedFiles++
			continue
		}
		stale := name == currentFile+".tmp" ||
			(strings.HasPrefix(name, manifestPrefix) && name != keepSnap && name != keepLog)
		if stale {
			if err := s.fs.Remove(filepath.Join(man.dir, name)); err != nil {
				return fmt.Errorf("sweep %q: %w", name, err)
			}
			s.recovery.RemovedFiles++
		}
	}
	return nil
}

// migrateToManifest upgrades a legacy per-array store in place on its
// first durable open (an empty directory is the trivial case — a new
// store is born manifest-format). The sequence is:
//
//  1. write MANIFEST-1.snap holding every loaded array's document
//  2. create an empty MANIFEST-1.log
//  3. sync the store root (both entries durable)
//  4. write CURRENT — THE migration commit point
//  5. remove each array's versions.json (+ tmp), best-effort
//
// A crash before 4 leaves a fully legacy store (the MANIFEST debris is
// overwritten by the next attempt and invisible to non-durable opens);
// a crash after 4 leaves a fully migrated store whose stray
// versions.json files the next durable open sweeps. Reads are
// byte-identical either way: the snapshot holds exactly the documents
// the legacy scan loaded.
func (s *Store) migrateToManifest() (*manifest, error) {
	man := &manifest{
		s:        s,
		dir:      s.dir,
		gen:      1,
		state:    make(map[string]*arrayMeta),
		rotateAt: manifestRotateAt(s.opts),
	}
	snap := manifestSnapshot{}
	names := make([]string, 0, len(s.arrays))
	for n := range s.arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := s.arrays[n].metaClone()
		man.state[n] = &m
		snap.Arrays = append(snap.Arrays, manifestOp{Name: n, Meta: &m})
	}
	raw, err := json.Marshal(&snap)
	if err != nil {
		return nil, err
	}
	if err := man.writeFileSync(manifestSnapName(1), appendFrame(nil, raw)); err != nil {
		return nil, err
	}
	if err := man.writeFileSync(manifestLogName(1), nil); err != nil {
		return nil, err
	}
	if s.opts.Durability {
		if err := s.fs.SyncDir(s.dir); err != nil {
			return nil, err
		}
	}
	if err := man.writeCurrent(1); err != nil {
		return nil, err
	}
	// migrated: the per-array metadata files are now dead weight. A
	// failed removal is harmless — the next durable open sweeps strays.
	for _, n := range names {
		dir := filepath.Join(s.dir, n)
		if err := s.fs.Remove(filepath.Join(dir, metaFile)); err == nil {
			s.recovery.RemovedFiles++
		}
		_ = s.fs.Remove(filepath.Join(dir, metaFile+".tmp"))
	}
	return man, nil
}

// --- stats ---

func (s *Store) addManifestCommit(records int) {
	s.statsMu.Lock()
	s.stats.ManifestRecords += int64(records)
	s.stats.ManifestAppends++
	if s.opts.Durability {
		s.stats.ManifestFsyncs++
	}
	s.statsMu.Unlock()
}

func (s *Store) addManifestRotation() {
	s.statsMu.Lock()
	s.stats.ManifestRotations++
	s.statsMu.Unlock()
}

// --- deep verification (avstore fsck) ---

// ManifestReport is VerifyManifest's result: the replayed chain's
// shape plus every integrity problem found. StrayFiles lists harmless
// crash debris a durable open would sweep; Problems are real
// corruption.
type ManifestReport struct {
	// Enabled reports whether the store uses the manifest commit
	// protocol at all (false for legacy per-array stores).
	Enabled bool `json:"enabled"`
	// Gen is the live generation CURRENT points at.
	Gen int `json:"gen"`
	// SnapshotSeq is the sequence number the snapshot covers; LastSeq
	// is the last sequence replayed from the log.
	SnapshotSeq int64 `json:"snapshotSeq"`
	LastSeq     int64 `json:"lastSeq"`
	// LogRecords counts checksum-valid records replayed from the log.
	LogRecords int64 `json:"logRecords"`
	// Arrays is the number of live arrays in the replayed state.
	Arrays int `json:"arrays"`
	// TornBytes counts unreplayable bytes at the log tail (a torn
	// final append — repaired, not a problem).
	TornBytes int64 `json:"tornBytes"`
	// StrayFiles lists crash debris: superseded MANIFEST generations,
	// CURRENT tmp files, and leftover per-array versions.json files.
	StrayFiles []string `json:"strayFiles,omitempty"`
	// Problems lists integrity violations: bad checksums mid-chain,
	// sequence gaps, undecodable documents, or committed arrays whose
	// directories are missing.
	Problems []string `json:"problems,omitempty"`
}

// Ok reports whether the manifest chain verified clean.
func (r ManifestReport) Ok() bool { return len(r.Problems) == 0 }

// VerifyManifest deep-verifies the manifest chain from disk: CURRENT,
// the snapshot frame, every log record's checksum and sequence
// continuity, and that every committed array resolves to a directory.
// It reads through the plain os layer and never repairs anything, so
// it is safe on a store opened read-only. On a live manifest store the
// writer latch is held so the log is not scanned mid-append.
func (s *Store) VerifyManifest() (ManifestReport, error) {
	if s.man != nil {
		s.man.mu.Lock()
		defer s.man.mu.Unlock()
	}
	rep := ManifestReport{}
	gen, err := readCurrent(s.dir)
	if errors.Is(err, os.ErrNotExist) {
		return rep, nil
	}
	if err != nil {
		rep.Enabled = true
		rep.Problems = append(rep.Problems, err.Error())
		return rep, nil
	}
	rep.Enabled = true
	rep.Gen = gen

	state := make(map[string]*arrayMeta)
	snapRaw, err := os.ReadFile(filepath.Join(s.dir, manifestSnapName(gen)))
	if err != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("snapshot %s unreadable: %v", manifestSnapName(gen), err))
		return rep, nil
	}
	snap, err := decodeManifestSnapshot(snapRaw)
	if err != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("snapshot %s: %v", manifestSnapName(gen), err))
		return rep, nil
	}
	for _, op := range snap.Arrays {
		state[op.Name] = op.Meta
	}
	rep.SnapshotSeq = snap.Seq
	rep.LastSeq = snap.Seq

	logName := manifestLogName(gen)
	logRaw, err := os.ReadFile(filepath.Join(s.dir, logName))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		rep.Problems = append(rep.Problems, fmt.Sprintf("log %s unreadable: %v", logName, err))
		return rep, nil
	}
	var off int64
	for off < int64(len(logRaw)) {
		payload, size, ok := scanManifestFrame(logRaw[off:])
		if !ok {
			break
		}
		var rec manifestRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("log %s offset %d: undecodable record: %v", logName, off, err))
			return rep, nil
		}
		if rec.Seq != rep.LastSeq+1 {
			rep.Problems = append(rep.Problems, fmt.Sprintf("log %s offset %d: sequence %d, want %d", logName, off, rec.Seq, rep.LastSeq+1))
			return rep, nil
		}
		for i := range rec.Ops {
			op := &rec.Ops[i]
			switch {
			case op.Drop:
				delete(state, op.Name)
			case op.Meta == nil:
				rep.Problems = append(rep.Problems, fmt.Sprintf("log %s record %d: array %q has no document", logName, rec.Seq, op.Name))
			default:
				if err := op.Meta.Schema.Validate(); err != nil {
					rep.Problems = append(rep.Problems, fmt.Sprintf("log %s record %d: array %q: %v", logName, rec.Seq, op.Name, err))
				}
				state[op.Name] = op.Meta
			}
		}
		rep.LastSeq = rec.Seq
		rep.LogRecords++
		off += size
	}
	rep.TornBytes = int64(len(logRaw)) - off
	rep.Arrays = len(state)

	// orphaned-record sweep: every committed array must resolve to a
	// directory, and leftover files (superseded generations, legacy
	// metadata inside array dirs) are reported as strays
	for name := range state {
		if info, err := os.Stat(filepath.Join(s.dir, name)); err != nil || !info.IsDir() {
			rep.Problems = append(rep.Problems, fmt.Sprintf("array %q is committed but its directory is missing", name))
		} else if _, err := os.Stat(filepath.Join(s.dir, name, metaFile)); err == nil {
			rep.StrayFiles = append(rep.StrayFiles, filepath.Join(name, metaFile))
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return rep, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			if _, live := state[name]; !live {
				rep.StrayFiles = append(rep.StrayFiles, name+string(os.PathSeparator))
			}
			continue
		}
		if name == currentFile+".tmp" ||
			(strings.HasPrefix(name, manifestPrefix) && name != manifestSnapName(gen) && name != logName) {
			rep.StrayFiles = append(rep.StrayFiles, name)
		}
	}
	sort.Strings(rep.StrayFiles)
	return rep, nil
}
