package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// MultiInsert names one array's payload batch within an InsertMulti
// call.
type MultiInsert struct {
	Array    string
	Payloads []Payload
}

// InsertMulti inserts payload batches into several arrays under ONE
// commit point: a single manifest record batch, appended and fsynced
// once, makes every member durable together. Either every array shows
// its new versions or none does — after a crash too, which the legacy
// per-array commit protocol could not promise (each array committed on
// its own rename, so a crash between renames split the batch). The
// result maps each array name to the version ids its payloads were
// assigned, in payload order.
//
// InsertMulti requires the store-wide manifest log; stores opened with
// Options.PerArrayCommit (or legacy stores opened without Durability,
// which are never migrated) return an error.
func (s *Store) InsertMulti(batches []MultiInsert) (map[string][]int, error) {
	return s.InsertMultiCtx(context.Background(), batches)
}

// InsertMultiCtx is InsertMulti honoring ctx before the commit
// pipeline begins. Once the arrays are latched the commit runs to
// completion: cancellation mid-commit could not undo the shared
// manifest append anyway, so a ctx error from this method means no
// version was created anywhere.
func (s *Store) InsertMultiCtx(ctx context.Context, batches []MultiInsert) (map[string][]int, error) {
	if len(batches) == 0 {
		return nil, fmt.Errorf("core: InsertMulti needs at least one batch")
	}
	byName := make(map[string][]Payload, len(batches))
	names := make([]string, 0, len(batches))
	for _, b := range batches {
		if b.Array == "" {
			return nil, fmt.Errorf("core: InsertMulti batch with an empty array name")
		}
		if len(b.Payloads) == 0 {
			return nil, fmt.Errorf("core: InsertMulti batch for array %q has no payloads", b.Array)
		}
		if _, dup := byName[b.Array]; dup {
			return nil, fmt.Errorf("core: InsertMulti names array %q twice", b.Array)
		}
		byName[b.Array] = b.Payloads
		names = append(names, b.Array)
	}
	if s.man == nil {
		return nil, fmt.Errorf("core: InsertMulti requires the store-wide manifest log (the store uses the per-array commit protocol)")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, n := range names {
		if err := s.writeGate(n); err != nil {
			return nil, err
		}
	}

	// Acquire every array's full commit-latch set ({syncMu, commitMu,
	// writeMu}, the insertBatchFallback set) in sorted-name order.
	// Multi-array lock ordering only matters among InsertMulti callers
	// — every other path latches a single array and never waits on a
	// second one while holding the first — so the global name order
	// makes the acquisition deadlock-free.
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	sts := make(map[string]*arrayState, len(sorted))
	held := make([]*arrayState, 0, len(sorted))
	release := func() {
		for i := len(held) - 1; i >= 0; i-- {
			held[i].writeMu.Unlock()
			held[i].commitMu.Unlock()
			held[i].syncMu.Unlock()
		}
	}
	for _, n := range sorted {
		st, err := s.lockArray(n, func(st *arrayState) []*sync.Mutex {
			return []*sync.Mutex{&st.syncMu, &st.commitMu, &st.writeMu}
		})
		if err != nil {
			release()
			return nil, err
		}
		held = append(held, st)
		sts[n] = st
	}
	defer release()

	// Drain straggler pending inserts per array (their leaders cannot
	// run while we hold the latches), so our staged documents clone a
	// settled state.
	for _, st := range held {
		if batch := st.drainPending(); len(batch) > 0 {
			s.syncStagedBatch(st, batch)
			s.finalizeBatch(st, batch, true)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	for _, n := range sorted {
		if s.arrays[n] != sts[n] {
			return nil, fmt.Errorf("core: no array %q", n)
		}
	}

	var staged []*stagedBatch
	fail := func(err error) (map[string][]int, error) {
		// like the single-array path, blobs are swept even after an
		// uncertain commit: the staged documents were never installed,
		// so the heal resolves the on-disk uncertainty in favor of the
		// in-memory state that excludes them
		for _, sb := range staged {
			sb.ws.sweep(s)
		}
		s.noteDiskPressure(err)
		return nil, err
	}
	for _, n := range sorted {
		sb, err := s.stageBatchLocked(sts[n], byName[n], "insert")
		if err != nil {
			return fail(err) // sb's own write-set is already swept
		}
		staged = append(staged, sb)
	}
	if s.opts.Durability {
		t0 := time.Now()
		var bytes int64
		for _, sb := range staged {
			if err := sb.ws.sync(s); err != nil {
				s.noteCommitFailure(sb.st, err)
				return fail(err)
			}
			if sb.ws.createdFiles() {
				if err := s.fs.SyncDir(sb.dir); err != nil {
					s.noteCommitFailure(sb.st, err)
					return fail(err)
				}
			}
			bytes += sb.ws.totalBytes()
		}
		s.prof.observeCommit(StageDataFsync, time.Since(t0), bytes)
	}
	ops := make([]manifestOp, 0, len(staged))
	for _, sb := range staged {
		ops = append(ops, manifestOp{Name: sb.st.Schema.Name, Meta: sb.staged})
	}
	t0 := time.Now()
	if err := s.man.commit(ops); err != nil {
		if isUncertain(err) {
			for _, sb := range staged {
				s.noteCommitFailure(sb.st, err)
			}
		}
		return fail(err)
	}
	s.prof.observeCommit(StageMetaCommit, time.Since(t0), 0)
	out := make(map[string][]int, len(staged))
	total := 0
	for _, sb := range staged {
		sb.st.mutateLocked()
		sb.st.installMeta(*sb.staged)
		out[sb.st.Schema.Name] = sb.ids
		total += len(sb.ids)
	}
	s.addGroupCommit(total)
	s.prof.batchSize.Observe(float64(total))
	return out, nil
}
