package core

import (
	"fmt"
	"os"

	"arrayvers/internal/array"
	"arrayvers/internal/chunk"
	"arrayvers/internal/compress"
	"arrayvers/internal/delta"
)

// The select path (§II-B, Fig. 1 right): look up the chunks needed to
// answer the query in the version metadata, read them from disk,
// decompress, unwind the delta chains, and assemble the result array.
// Four select primitives are provided: whole version, version region,
// stacked multi-version, and stacked multi-version region.

// Select returns the full content of one version's first attribute.
func (s *Store) Select(name string, id int) (Plane, error) {
	return s.SelectAttr(name, id, "")
}

// SelectAttr returns the full content of one version's named attribute
// (empty attr means the first).
func (s *Store) SelectAttr(name string, id int, attr string) (Plane, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.arrays[name]
	if !ok {
		return Plane{}, fmt.Errorf("core: no array %q", name)
	}
	return s.readPlaneLocked(st, id, s.attrName(st, attr))
}

// SelectRegion returns the hyper-rectangle box of one version's first
// attribute; only the chunks overlapping the region are read.
func (s *Store) SelectRegion(name string, id int, box array.Box) (Plane, error) {
	return s.SelectRegionAttr(name, id, "", box)
}

// SelectRegionAttr is SelectRegion for a named attribute.
func (s *Store) SelectRegionAttr(name string, id int, attr string, box array.Box) (Plane, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.arrays[name]
	if !ok {
		return Plane{}, fmt.Errorf("core: no array %q", name)
	}
	return s.readRegionLocked(st, id, s.attrName(st, attr), box)
}

// SelectMulti returns an (N+1)-dimensional stack of the given dense
// versions: "it returns an N+1-dimensional array that is effectively a
// stack of the specified versions" (§II-B). The version order is
// preserved.
func (s *Store) SelectMulti(name string, ids []int) (*array.Dense, error) {
	return s.SelectMultiRegion(name, ids, array.Box{})
}

// SelectMultiRegion stacks the given hyper-rectangle of each listed
// version into a single (N+1)-dimensional array (the fourth select form).
// A zero box selects the whole array.
func (s *Store) SelectMultiRegion(name string, ids []int, box array.Box) (*array.Dense, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.arrays[name]
	if !ok {
		return nil, fmt.Errorf("core: no array %q", name)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("core: no versions selected")
	}
	if box.NDim() == 0 {
		box = array.BoxOf(st.Schema.Shape())
	}
	attr := st.Schema.Attrs[0].Name
	slabs := make([]*array.Dense, len(ids))
	cache := newChunkCache()
	for i, id := range ids {
		pl, err := s.readRegionCached(st, id, attr, box, cache)
		if err != nil {
			return nil, err
		}
		if pl.IsSparse() {
			d, err := pl.Sparse.ToDense()
			if err != nil {
				return nil, err
			}
			slabs[i] = d
		} else {
			slabs[i] = pl.Dense
		}
	}
	return array.Stack(slabs)
}

// SelectSparseMulti returns the given region of each listed version of a
// sparse array, preserving the sparse representation (stacking terabyte-
// scale sparse coordinate spaces densely would be pathological).
func (s *Store) SelectSparseMulti(name string, ids []int, box array.Box) ([]*array.Sparse, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.arrays[name]
	if !ok {
		return nil, fmt.Errorf("core: no array %q", name)
	}
	if !st.SparseRep {
		return nil, fmt.Errorf("core: array %q is dense; use SelectMulti", name)
	}
	if box.NDim() == 0 {
		box = array.BoxOf(st.Schema.Shape())
	}
	attr := st.Schema.Attrs[0].Name
	out := make([]*array.Sparse, len(ids))
	cache := newChunkCache()
	for i, id := range ids {
		pl, err := s.readRegionCached(st, id, attr, box, cache)
		if err != nil {
			return nil, err
		}
		out[i] = pl.Sparse
	}
	return out, nil
}

func (s *Store) attrName(st *arrayState, attr string) string {
	if attr == "" {
		return st.Schema.Attrs[0].Name
	}
	return attr
}

// chunkCache memoizes reconstructed chunk contents per (chunk key,
// version) across a multi-version select, so a range query walks each
// delta chain once rather than once per selected version (the paper's
// range scans read each chunk chain a single time, Fig. 2).
type chunkCache struct {
	dense  map[string]map[int]*array.Dense
	sparse map[int]*array.Sparse
}

func newChunkCache() *chunkCache {
	return &chunkCache{dense: map[string]map[int]*array.Dense{}, sparse: map[int]*array.Sparse{}}
}

func (c *chunkCache) forChunk(key string) map[int]*array.Dense {
	if c == nil {
		return nil
	}
	m, ok := c.dense[key]
	if !ok {
		m = map[int]*array.Dense{}
		c.dense[key] = m
	}
	return m
}

// readPlaneLocked reconstructs one full attribute plane of a version.
func (s *Store) readPlaneLocked(st *arrayState, id int, attr string) (Plane, error) {
	return s.readRegionLocked(st, id, attr, array.BoxOf(st.Schema.Shape()))
}

// readRegionLocked reconstructs the part of a version's attribute plane
// covered by box, reading only the overlapping chunks.
func (s *Store) readRegionLocked(st *arrayState, id int, attr string, box array.Box) (Plane, error) {
	return s.readRegionCached(st, id, attr, box, nil)
}

// readRegionCached is readRegionLocked with an optional cross-version
// chunk cache for multi-version selects.
func (s *Store) readRegionCached(st *arrayState, id int, attr string, box array.Box, cache *chunkCache) (Plane, error) {
	if _, err := st.version(id); err != nil {
		return Plane{}, err
	}
	ai := st.Schema.AttrIndex(attr)
	if ai < 0 {
		return Plane{}, fmt.Errorf("core: array %q has no attribute %q", st.Schema.Name, attr)
	}
	if err := box.Validate(); err != nil {
		return Plane{}, err
	}
	if box.NDim() != len(st.Schema.Dims) {
		return Plane{}, fmt.Errorf("core: query box has %d dims, array has %d", box.NDim(), len(st.Schema.Dims))
	}
	full := array.BoxOf(st.Schema.Shape())
	box = box.Intersect(full)
	if box.Empty() {
		return Plane{}, fmt.Errorf("core: query region is empty")
	}
	dt := st.Schema.Attrs[ai].Type
	if st.SparseRep {
		var spCache map[int]*array.Sparse
		if cache != nil {
			spCache = cache.sparse
		}
		sp, err := s.resolveSparse(st, id, attr, spCache)
		if err != nil {
			return Plane{}, err
		}
		if box.Equal(full) {
			return Plane{Sparse: sp}, nil
		}
		sub, err := sp.Slice(box)
		if err != nil {
			return Plane{}, err
		}
		return Plane{Sparse: sub}, nil
	}
	ck, err := st.chunker()
	if err != nil {
		return Plane{}, err
	}
	out, err := array.NewDense(dt, box.Shape())
	if err != nil {
		return Plane{}, err
	}
	for _, origin := range ck.Overlapping(box) {
		chunkArr, err := s.resolveDenseChunk(st, id, attr, ck, origin, cache.forChunk(ck.Key(origin)))
		if err != nil {
			return Plane{}, err
		}
		cbox := ck.Box(origin)
		overlap := cbox.Intersect(box)
		piece, err := chunkArr.Slice(overlap.Translate(cbox.Lo))
		if err != nil {
			return Plane{}, err
		}
		if err := out.WriteRegion(overlap.Translate(box.Lo).Lo, piece); err != nil {
			return Plane{}, err
		}
	}
	return Plane{Dense: out}, nil
}

// resolveDenseChunk reconstructs one chunk of one version by unwinding
// its delta chain: "a chain of versions must be accessed, starting from
// one that is stored in native form" (§II-B, Fig. 2). cache memoizes
// chunk contents per version within one walk.
func (s *Store) resolveDenseChunk(st *arrayState, id int, attr string, ck *chunk.Chunker, origin []int64, cache map[int]*array.Dense) (*array.Dense, error) {
	if cache == nil {
		cache = make(map[int]*array.Dense)
	}
	if got, ok := cache[id]; ok {
		return got, nil
	}
	vm, err := st.version(id)
	if err != nil {
		return nil, err
	}
	key := ck.Key(origin)
	e, ok := vm.Chunks[attr][key]
	if !ok {
		return nil, fmt.Errorf("core: version %d missing chunk %s/%s", id, attr, key)
	}
	blob, err := s.readBlob(st, e)
	if err != nil {
		return nil, err
	}
	box := ck.Box(origin)
	ai := st.Schema.AttrIndex(attr)
	dt := st.Schema.Attrs[ai].Type
	raw, err := unseal(compress.Codec(e.Codec), blob, sealParams(e.Base < 0, box, dt))
	if err != nil {
		return nil, fmt.Errorf("core: chunk %s/%s of version %d: %w", attr, key, id, err)
	}
	var out *array.Dense
	if e.Base < 0 {
		out, err = array.DenseFromBytes(dt, box.Shape(), raw)
		if err != nil {
			return nil, fmt.Errorf("core: chunk %s/%s of version %d: %w", attr, key, id, err)
		}
	} else {
		baseArr, err := s.resolveDenseChunk(st, e.Base, attr, ck, origin, cache)
		if err != nil {
			return nil, err
		}
		out, err = delta.Apply(raw, baseArr)
		if err != nil {
			return nil, fmt.Errorf("core: chunk %s/%s of version %d: %w", attr, key, id, err)
		}
	}
	cache[id] = out
	return out, nil
}

// resolveSparse reconstructs a sparse version by unwinding its delta
// chain.
func (s *Store) resolveSparse(st *arrayState, id int, attr string, cache map[int]*array.Sparse) (*array.Sparse, error) {
	if cache == nil {
		cache = make(map[int]*array.Sparse)
	}
	if got, ok := cache[id]; ok {
		return got, nil
	}
	vm, err := st.version(id)
	if err != nil {
		return nil, err
	}
	e, ok := vm.Chunks[attr]["chunk-full"]
	if !ok {
		return nil, fmt.Errorf("core: version %d missing sparse container for %s", id, attr)
	}
	blob, err := s.readBlob(st, e)
	if err != nil {
		return nil, err
	}
	raw, err := unseal(compress.Codec(e.Codec), blob, compress.Params{Elem: 1})
	if err != nil {
		return nil, fmt.Errorf("core: sparse container of version %d: %w", id, err)
	}
	var out *array.Sparse
	if e.Base < 0 {
		out, err = array.UnmarshalSparse(raw)
		if err != nil {
			return nil, fmt.Errorf("core: sparse container of version %d: %w", id, err)
		}
	} else {
		baseArr, err := s.resolveSparse(st, e.Base, attr, cache)
		if err != nil {
			return nil, err
		}
		out, err = delta.ApplySparseOps(raw, baseArr)
		if err != nil {
			return nil, fmt.Errorf("core: sparse container of version %d: %w", id, err)
		}
	}
	cache[id] = out
	return out, nil
}

func removeAllQuiet(dir string) error { return os.RemoveAll(dir) }
