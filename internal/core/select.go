package core

import (
	"context"
	"fmt"
	"time"

	"arrayvers/internal/array"
	"arrayvers/internal/cache"
	"arrayvers/internal/chunk"
	"arrayvers/internal/compress"
	"arrayvers/internal/delta"
)

// The select path (§II-B, Fig. 1 right): look up the chunks needed to
// answer the query in the version metadata, read them from disk,
// decompress, unwind the delta chains, and assemble the result array.
// Four select primitives are provided: whole version, version region,
// stacked multi-version, and stacked multi-version region.
//
// Concurrency: each public select snapshots the array's metadata under
// the store lock, then reads and decodes chunks lock-free on a worker
// pool of Options.Parallelism goroutines (one task per overlapping
// chunk). Reconstructed chunks are first looked up in the store-wide LRU
// (Options.CacheBytes); on a miss the delta chain is unwound and every
// ancestor materialized along the way is inserted, so later queries for
// nearby versions start from a warm prefix of the chain.

// Select returns the full content of one version's first attribute.
func (s *Store) Select(name string, id int) (Plane, error) {
	return s.SelectAttr(name, id, "")
}

// SelectAttr returns the full content of one version's named attribute
// (empty attr means the first).
func (s *Store) SelectAttr(name string, id int, attr string) (Plane, error) {
	return s.SelectAttrCtx(context.Background(), name, id, attr)
}

// SelectAttrCtx is SelectAttr honoring ctx: once the context is
// cancelled the chunk fan-out stops scheduling work at the next chunk
// boundary, so abandoned requests do not keep burning the decode pool.
func (s *Store) SelectAttrCtx(ctx context.Context, name string, id int, attr string) (Plane, error) {
	tk := s.selTracker(ctx)
	t0 := time.Now()
	v, release, err := s.snapshot(name)
	if err != nil {
		return Plane{}, err
	}
	defer release()
	tk.observe(StageSnapshot, time.Since(t0), 0)
	pl, err := s.readRegionView(ctx, v, id, s.attrName(v.st, attr), array.BoxOf(v.st.Schema.Shape()), nil, tk)
	if err == nil {
		s.recordAccess(name, []int{id})
	}
	return pl, err
}

// SelectRegion returns the hyper-rectangle box of one version's first
// attribute; only the chunks overlapping the region are read.
func (s *Store) SelectRegion(name string, id int, box array.Box) (Plane, error) {
	return s.SelectRegionAttr(name, id, "", box)
}

// SelectRegionAttr is SelectRegion for a named attribute.
func (s *Store) SelectRegionAttr(name string, id int, attr string, box array.Box) (Plane, error) {
	return s.SelectRegionAttrCtx(context.Background(), name, id, attr, box)
}

// SelectRegionAttrCtx is SelectRegionAttr honoring ctx (see
// SelectAttrCtx).
func (s *Store) SelectRegionAttrCtx(ctx context.Context, name string, id int, attr string, box array.Box) (Plane, error) {
	tk := s.selTracker(ctx)
	t0 := time.Now()
	v, release, err := s.snapshot(name)
	if err != nil {
		return Plane{}, err
	}
	defer release()
	tk.observe(StageSnapshot, time.Since(t0), 0)
	pl, err := s.readRegionView(ctx, v, id, s.attrName(v.st, attr), box, nil, tk)
	if err == nil {
		s.recordAccess(name, []int{id})
	}
	return pl, err
}

// SelectMulti returns an (N+1)-dimensional stack of the given dense
// versions: "it returns an N+1-dimensional array that is effectively a
// stack of the specified versions" (§II-B). The version order is
// preserved.
func (s *Store) SelectMulti(name string, ids []int) (*array.Dense, error) {
	return s.SelectMultiRegion(name, ids, array.Box{})
}

// SelectMultiRegion stacks the given hyper-rectangle of each listed
// version into a single (N+1)-dimensional array (the fourth select form).
// A zero box selects the whole array.
func (s *Store) SelectMultiRegion(name string, ids []int, box array.Box) (*array.Dense, error) {
	return s.SelectMultiRegionCtx(context.Background(), name, ids, box)
}

// SelectMultiRegionCtx is SelectMultiRegion honoring ctx (see
// SelectAttrCtx).
func (s *Store) SelectMultiRegionCtx(ctx context.Context, name string, ids []int, box array.Box) (*array.Dense, error) {
	tk := s.selTracker(ctx)
	t0 := time.Now()
	v, release, err := s.snapshot(name)
	if err != nil {
		return nil, err
	}
	defer release()
	tk.observe(StageSnapshot, time.Since(t0), 0)
	if len(ids) == 0 {
		return nil, fmt.Errorf("core: no versions selected")
	}
	if box.NDim() == 0 {
		box = array.BoxOf(v.st.Schema.Shape())
	}
	attr := v.st.Schema.Attrs[0].Name
	slabs := make([]*array.Dense, len(ids))
	qc := newChunkCache()
	for i, id := range ids {
		pl, err := s.readRegionView(ctx, v, id, attr, box, qc, tk)
		if err != nil {
			return nil, err
		}
		if pl.IsSparse() {
			d, err := pl.Sparse.ToDense()
			if err != nil {
				return nil, err
			}
			slabs[i] = d
		} else {
			slabs[i] = pl.Dense
		}
	}
	s.recordAccess(name, ids)
	t0 = time.Now()
	stacked, err := array.Stack(slabs)
	if err != nil {
		return nil, err
	}
	tk.observe(StageMaterialize, time.Since(t0), stacked.SizeBytes())
	return stacked, nil
}

// SelectSparseMulti returns the given region of each listed version of a
// sparse array, preserving the sparse representation (stacking terabyte-
// scale sparse coordinate spaces densely would be pathological).
func (s *Store) SelectSparseMulti(name string, ids []int, box array.Box) ([]*array.Sparse, error) {
	return s.SelectSparseMultiCtx(context.Background(), name, ids, box)
}

// SelectSparseMultiCtx is SelectSparseMulti honoring ctx (see
// SelectAttrCtx).
func (s *Store) SelectSparseMultiCtx(ctx context.Context, name string, ids []int, box array.Box) ([]*array.Sparse, error) {
	tk := s.selTracker(ctx)
	t0 := time.Now()
	v, release, err := s.snapshot(name)
	if err != nil {
		return nil, err
	}
	defer release()
	tk.observe(StageSnapshot, time.Since(t0), 0)
	if !v.st.SparseRep {
		return nil, fmt.Errorf("core: array %q is dense; use SelectMulti", name)
	}
	if box.NDim() == 0 {
		box = array.BoxOf(v.st.Schema.Shape())
	}
	attr := v.st.Schema.Attrs[0].Name
	out := make([]*array.Sparse, len(ids))
	qc := newChunkCache()
	for i, id := range ids {
		pl, err := s.readRegionView(ctx, v, id, attr, box, qc, tk)
		if err != nil {
			return nil, err
		}
		out[i] = pl.Sparse
	}
	s.recordAccess(name, ids)
	return out, nil
}

func (s *Store) attrName(st *arrayState, attr string) string {
	if attr == "" {
		return st.Schema.Attrs[0].Name
	}
	return attr
}

// chunkCache memoizes reconstructed chunk contents per (chunk key,
// version) across a multi-version select, so a range query walks each
// delta chain once rather than once per selected version (the paper's
// range scans read each chunk chain a single time, Fig. 2) — even when
// the store-wide cache is disabled or has evicted the chain. The outer
// map is populated up front by ensure(); after that, workers touch only
// their own chunk's inner map, so no locking is needed as long as the
// per-version loop stays serial.
type chunkCache struct {
	dense  map[string]map[int]*array.Dense
	sparse map[int]sparseRes
}

// sparseRes is a resolved sparse version plus whether the object is
// shared with the store-wide cache (and therefore must be cloned before
// a caller may mutate it).
type sparseRes struct {
	sp     *array.Sparse
	shared bool
}

func newChunkCache() *chunkCache {
	return &chunkCache{dense: map[string]map[int]*array.Dense{}, sparse: map[int]sparseRes{}}
}

// ensure pre-creates the per-chunk maps for the given keys; must be
// called before chunk workers fan out.
func (c *chunkCache) ensure(keys []string) {
	if c == nil {
		return
	}
	for _, k := range keys {
		if _, ok := c.dense[k]; !ok {
			c.dense[k] = map[int]*array.Dense{}
		}
	}
}

// chunk returns the per-chunk map created by ensure (nil for a nil
// cache). Safe to call concurrently: it only reads the outer map.
func (c *chunkCache) chunk(key string) map[int]*array.Dense {
	if c == nil {
		return nil
	}
	return c.dense[key]
}

// readPlaneLocked reconstructs one full attribute plane of a version.
// Callers hold Store.mu. The nil tracker keeps these internal reads
// (verify, tuner history scans) out of the query-path stage histograms.
func (s *Store) readPlaneLocked(st *arrayState, id int, attr string) (Plane, error) {
	return s.readRegionView(context.Background(), s.viewLocked(st, false), id, attr, array.BoxOf(st.Schema.Shape()), nil, nil)
}

// readRegionView reconstructs the part of a version's attribute plane
// covered by box against a metadata view, reading only the overlapping
// chunks and fanning the per-chunk work out on the worker pool. tk (nil
// for internal readers) receives per-stage timings.
func (s *Store) readRegionView(ctx context.Context, v *readView, id int, attr string, box array.Box, qc *chunkCache, tk *opTracker) (Plane, error) {
	st := v.st
	if _, err := v.version(id); err != nil {
		return Plane{}, err
	}
	ai := st.Schema.AttrIndex(attr)
	if ai < 0 {
		return Plane{}, fmt.Errorf("core: array %q has no attribute %q", st.Schema.Name, attr)
	}
	if err := box.Validate(); err != nil {
		return Plane{}, err
	}
	if box.NDim() != len(st.Schema.Dims) {
		return Plane{}, fmt.Errorf("core: query box has %d dims, array has %d", box.NDim(), len(st.Schema.Dims))
	}
	full := array.BoxOf(st.Schema.Shape())
	box = box.Intersect(full)
	if box.Empty() {
		return Plane{}, fmt.Errorf("core: query region is empty")
	}
	dt := st.Schema.Attrs[ai].Type
	if st.SparseRep {
		var spCache map[int]sparseRes
		if qc != nil {
			spCache = qc.sparse
		}
		sp, shared, err := s.resolveSparse(v, id, attr, spCache, tk)
		if err != nil {
			return Plane{}, err
		}
		t0 := time.Now()
		if box.Equal(full) {
			// an object shared with the store-wide cache must not escape
			// to callers, who may mutate it; hand out a copy instead
			if shared {
				sp = sp.Clone()
			}
			tk.observe(StageMaterialize, time.Since(t0), sp.SizeBytes())
			return Plane{Sparse: sp}, nil
		}
		sub, err := sp.Slice(box)
		if err != nil {
			return Plane{}, err
		}
		tk.observe(StageMaterialize, time.Since(t0), sub.SizeBytes())
		return Plane{Sparse: sub}, nil
	}
	ck, err := st.chunker()
	if err != nil {
		return Plane{}, err
	}
	out, err := array.NewDense(dt, box.Shape())
	if err != nil {
		return Plane{}, err
	}
	origins := ck.Overlapping(box)
	keys := make([]string, len(origins))
	for i, origin := range origins {
		keys[i] = ck.Key(origin)
	}
	qc.ensure(keys)
	err = forEachLimit(ctx, len(origins), s.opts.Parallelism, func(i int) error {
		s.prof.decodeActive.Add(1)
		defer s.prof.decodeActive.Add(-1)
		origin := origins[i]
		chunkArr, err := s.resolveDenseChunk(v, id, attr, ck, origin, qc.chunk(keys[i]), tk)
		if err != nil {
			return err
		}
		cbox := ck.Box(origin)
		overlap := cbox.Intersect(box)
		t0 := time.Now()
		piece, err := chunkArr.Slice(overlap.Translate(cbox.Lo))
		if err != nil {
			return err
		}
		// workers write disjoint regions of out, so no locking is needed
		err = out.WriteRegion(overlap.Translate(box.Lo).Lo, piece)
		if err == nil {
			tk.observe(StageMaterialize, time.Since(t0), piece.SizeBytes())
		}
		return err
	})
	if err != nil {
		return Plane{}, err
	}
	return Plane{Dense: out}, nil
}

// resolveDenseChunk reconstructs one chunk of one version by unwinding
// its delta chain: "a chain of versions must be accessed, starting from
// one that is stored in native form" (§II-B, Fig. 2). local memoizes
// chunk contents per version within one walk; the store-wide cache is
// consulted at every link, and every version materialized while the
// chain unwinds is inserted into it. Cached arrays are shared across
// queries and must never be mutated.
func (s *Store) resolveDenseChunk(v *readView, id int, attr string, ck *chunk.Chunker, origin []int64, local map[int]*array.Dense, tk *opTracker) (*array.Dense, error) {
	if local == nil {
		local = make(map[int]*array.Dense)
	}
	if got, ok := local[id]; ok {
		return got, nil
	}
	st := v.st
	key := ck.Key(origin)
	ckey := cache.Key{Array: st.Schema.Name, Epoch: v.epoch, Version: id, Attr: attr, Chunk: key}
	if !v.noCache {
		t0 := time.Now()
		got, ok := s.chunkCache.Get(ckey)
		tk.observe(StageCache, time.Since(t0), 0)
		s.prof.cacheAccess(st.Schema.Name, ok)
		if ok {
			tk.attr("cache_hits", 1)
			var d *array.Dense
			switch val := got.(type) {
			case *mmapDense:
				d = val.Dense
			default:
				d = got.(*array.Dense)
			}
			local[id] = d
			return d, nil
		}
		tk.attr("cache_misses", 1)
	}
	vm, err := v.version(id)
	if err != nil {
		return nil, err
	}
	e, ok := vm.Chunks[attr][key]
	if !ok {
		return nil, fmt.Errorf("core: version %d missing chunk %s/%s", id, attr, key)
	}
	t0 := time.Now()
	blob, ms, err := s.readBlobShared(v.dir, v.format, e)
	if err != nil {
		return nil, err
	}
	tk.observe(StageRead, time.Since(t0), e.Length)
	tk.attr("bytes_read", e.Length)
	box := ck.Box(origin)
	ai := st.Schema.AttrIndex(attr)
	dt := st.Schema.Attrs[ai].Type
	t0 = time.Now()
	// An uncompressed payload needs no unseal copy: delta blobs are only
	// read transiently under the I/O latch, and a materialized root built
	// over mapping bytes is admitted to the cache as a zero-copy plane
	// holding a counted mapping ref. The one aliasing case that must not
	// escape is a no-cache view's root plane (bulk loads hand planes to
	// callers that outlive this query's latch), which gets a private copy.
	var raw []byte
	zeroCopy := ms != nil && compress.Codec(e.Codec) == compress.None && e.Base < 0 && !v.noCache
	if compress.Codec(e.Codec) == compress.None {
		raw = blob
		if ms != nil && e.Base < 0 && v.noCache {
			raw = append([]byte(nil), blob...)
		}
	} else {
		raw, err = unseal(compress.Codec(e.Codec), blob, sealParams(e.Base < 0, box, dt))
		if err != nil {
			return nil, fmt.Errorf("core: chunk %s/%s of version %d: %w", attr, key, id, err)
		}
	}
	var out *array.Dense
	if e.Base < 0 {
		out, err = array.DenseFromBytes(dt, box.Shape(), raw)
		if err != nil {
			return nil, fmt.Errorf("core: chunk %s/%s of version %d: %w", attr, key, id, err)
		}
		tk.observe(StageDecode, time.Since(t0), int64(len(raw)))
	} else {
		tk.observe(StageDecode, time.Since(t0), int64(len(raw)))
		baseArr, err := s.resolveDenseChunk(v, e.Base, attr, ck, origin, local, tk)
		if err != nil {
			return nil, err
		}
		t0 = time.Now()
		out, err = delta.Apply(raw, baseArr)
		if err != nil {
			return nil, fmt.Errorf("core: chunk %s/%s of version %d: %w", attr, key, id, err)
		}
		tk.observe(StageDelta, time.Since(t0), out.SizeBytes())
	}
	tk.attr("chunks_decoded", 1)
	local[id] = out
	if !v.noCache {
		if zeroCopy {
			if ms.acquire() {
				if s.chunkCache.Put(ckey, &mmapDense{Dense: out, set: ms}) {
					s.addMmapPlane(out.SizeBytes())
				} else {
					ms.release()
				}
			}
			// acquire can only fail on a drained set, which the I/O latch
			// rules out for the generation this query reads; skipping the
			// insert is the safe degradation either way
		} else {
			s.chunkCache.Put(ckey, out)
		}
	}
	return out, nil
}

// resolveSparse reconstructs a sparse version by unwinding its delta
// chain. As with dense chunks, the store-wide cache is consulted first
// and populated as the chain unwinds. The returned shared flag reports
// whether the object is owned by (or visible through) the store-wide
// cache, in which case it must not be mutated — callers serving it out
// clone first. Tracking sharedness per object keeps uncached sparse
// reads clone-free.
func (s *Store) resolveSparse(v *readView, id int, attr string, local map[int]sparseRes, tk *opTracker) (*array.Sparse, bool, error) {
	if local == nil {
		local = make(map[int]sparseRes)
	}
	if got, ok := local[id]; ok {
		return got.sp, got.shared, nil
	}
	st := v.st
	ckey := cache.Key{Array: st.Schema.Name, Epoch: v.epoch, Version: id, Attr: attr, Chunk: "chunk-full"}
	if !v.noCache {
		t0 := time.Now()
		got, ok := s.chunkCache.Get(ckey)
		tk.observe(StageCache, time.Since(t0), 0)
		s.prof.cacheAccess(st.Schema.Name, ok)
		if ok {
			tk.attr("cache_hits", 1)
			sp := got.(*array.Sparse)
			local[id] = sparseRes{sp: sp, shared: true}
			return sp, true, nil
		}
		tk.attr("cache_misses", 1)
	}
	vm, err := v.version(id)
	if err != nil {
		return nil, false, err
	}
	e, ok := vm.Chunks[attr]["chunk-full"]
	if !ok {
		return nil, false, fmt.Errorf("core: version %d missing sparse container for %s", id, attr)
	}
	t0 := time.Now()
	blob, ms, err := s.readBlobShared(v.dir, v.format, e)
	if err != nil {
		return nil, false, err
	}
	tk.observe(StageRead, time.Since(t0), e.Length)
	tk.attr("bytes_read", e.Length)
	t0 = time.Now()
	// sparse decodes may retain slices of raw (and the decoded container
	// can outlive this query via the cache), so mapping bytes are always
	// copied out; the mmap read still skips the read syscall
	raw := blob
	if compress.Codec(e.Codec) != compress.None {
		raw, err = unseal(compress.Codec(e.Codec), blob, compress.Params{Elem: 1})
		if err != nil {
			return nil, false, fmt.Errorf("core: sparse container of version %d: %w", id, err)
		}
	} else if ms != nil {
		raw = append([]byte(nil), blob...)
	}
	var out *array.Sparse
	if e.Base < 0 {
		out, err = array.UnmarshalSparse(raw)
		if err != nil {
			return nil, false, fmt.Errorf("core: sparse container of version %d: %w", id, err)
		}
		tk.observe(StageDecode, time.Since(t0), int64(len(raw)))
	} else {
		tk.observe(StageDecode, time.Since(t0), int64(len(raw)))
		baseArr, _, err := s.resolveSparse(v, e.Base, attr, local, tk)
		if err != nil {
			return nil, false, err
		}
		t0 = time.Now()
		out, err = delta.ApplySparseOps(raw, baseArr)
		if err != nil {
			return nil, false, fmt.Errorf("core: sparse container of version %d: %w", id, err)
		}
		tk.observe(StageDelta, time.Since(t0), out.SizeBytes())
	}
	tk.attr("chunks_decoded", 1)
	shared := false
	if !v.noCache {
		shared = s.chunkCache.Put(ckey, out)
	}
	local[id] = sparseRes{sp: out, shared: shared}
	return out, shared, nil
}
