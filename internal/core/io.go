package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"arrayvers/internal/array"
	"arrayvers/internal/compress"
)

// Chunk payload I/O. Two placements are supported (§III-B.3): per-version
// files ("all the deltas belonging to a given version together"), and
// co-located chain files where all frames of one chunk across versions
// are appended to a single file, eliminating seeks when a delta chain is
// read.
//
// Concurrency contract: every chunk write is an append to a file whose
// committed prefix is never disturbed — chain files grow at the tail,
// and re-encodes in per-version mode write fresh FileSeq-named files
// rather than truncating old ones — so readBlob may run with no store
// lock held: a reader's metadata snapshot only references (file, offset,
// length) triples that existed before the snapshot. writeBlob is called
// from parallel insert workers; each worker targets a distinct file, so
// writers never share a file handle. The only destructive operations
// (Reorganize, Compact, DeleteArray) build a new chunk generation
// beside the live one, commit it with a metadata commit, and remove
// the old generation under the array's exclusive I/O latch.
//
// Durability contract: with Options.Durability on, every append is
// fsynced before writeBlob returns, and mutators sync the chunks
// directory before committing metadata, so the metadata commit in
// saveMeta — a manifest-log append, or the versions.json rename on
// legacy stores — is the commit point: everything a committed version
// references is already durable, and anything past the last committed
// frame in a file is garbage that recovery truncates.

// chainFileName returns the co-located chain file for one (attr, chunk).
func chainFileName(attr, chunkKey string) string {
	return attr + "-" + chunkKey + ".chain"
}

// versionFileName returns the per-version file for one (version, attr,
// chunk). seq makes re-encodes of the same chunk land in fresh files
// (no-overwrite at the file level; Compact reclaims the superseded
// ones).
func versionFileName(id int, attr, chunkKey string, seq int64) string {
	return fmt.Sprintf("v%d-%s-%s-f%d.dat", id, attr, chunkKey, seq)
}

// writeBlob stores an encoded chunk payload and returns its location.
// The destination directory and format come from the insertCtx, which
// pins the chunk generation the mutation staged against (Gen/Format on
// the live arrayState may move underneath an off-lock stage; the commit
// validates them before installing). With a write-set attached the
// append is left unsynced and recorded — the shared commit point syncs
// every touched file once — otherwise it is fsynced in place under
// Durability, as before.
func (s *Store) writeBlob(ctx *insertCtx, id int, attr, chunkKey string, blob []byte) (file string, off int64, err error) {
	if s.opts.CoLocate {
		file = chainFileName(attr, chunkKey)
	} else {
		file = versionFileName(id, attr, chunkKey, atomic.AddInt64(&ctx.st.FileSeq, 1))
	}
	path := filepath.Join(ctx.dir, file)
	off, err = s.appendBlob(path, ctx.format, blob, ctx.ws == nil)
	if err != nil {
		return "", 0, err
	}
	if ctx.ws != nil {
		ctx.ws.record(path, off, off+frameLen(ctx.format, int64(len(blob))))
	}
	s.addWrite(int64(len(blob)))
	return file, off, nil
}

// appendBlob appends one payload (framed under formatFramed) to path and
// returns the offset its frame starts at. With Durability on and sync
// set the data is fsynced before returning; generation builds pass sync
// false and batch one fsync per file into commitGen instead. The close
// error is always checked — a failed close after a buffered write is
// silent data loss.
func (s *Store) appendBlob(path string, format int, payload []byte, sync bool) (int64, error) {
	f, err := s.fs.Append(path)
	if err != nil {
		return 0, err
	}
	off, err := f.Size()
	if err != nil {
		_ = f.Close() // the size error is the failure; nothing was written
		return 0, err
	}
	buf := payload
	if format == formatFramed {
		// the frame header stores the payload length as uint32; a payload
		// it cannot represent would commit as a permanently unreadable
		// frame, so refuse it up front (chunks are ~10 MB by design)
		if int64(len(payload)) >= 1<<32 {
			_ = f.Close() // nothing was written; the oversize payload is the failure
			return 0, fmt.Errorf("core: chunk payload of %d bytes exceeds the frame format limit", len(payload))
		}
		buf = appendFrame(make([]byte, 0, frameLen(format, int64(len(payload)))), payload)
	}
	_, werr := f.Write(buf)
	if werr == nil && sync && s.opts.Durability {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return 0, fmt.Errorf("core: append chunk to %s: %w", filepath.Base(path), werr)
	}
	return off, nil
}

// readBlob fetches an encoded chunk payload from the given chunks
// directory. Under formatFramed the frame header is validated — magic,
// length, and payload CRC32-C — so torn writes, stale offsets, and bit
// rot surface as errors instead of garbage decodes.
func (s *Store) readBlob(dir string, format int, e chunkEntry) ([]byte, error) {
	path := filepath.Join(dir, e.File)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: open chunk file: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only handle; close cannot lose data
	buf := make([]byte, frameLen(format, e.Length))
	if _, err := f.ReadAt(buf, e.Offset); err != nil {
		return nil, fmt.Errorf("core: read chunk %s@%d+%d: %w", e.File, e.Offset, e.Length, err)
	}
	blob := buf
	if format == formatFramed {
		blob, err = parseFrame(buf, e.Length)
		if err != nil {
			return nil, fmt.Errorf("core: chunk %s@%d: %w", e.File, e.Offset, err)
		}
	}
	s.addRead(e.Length)
	return blob, nil
}

// codecParams derives the compression hints for a chunk payload. The
// image codecs (PNG, Wavelet) interpret the buffer as 2D cells; they are
// only applicable to materialized dense chunks, so callers pass ok=false
// payload kinds through pickCodec first.
func codecParams(box array.Box, dt array.DataType) compress.Params {
	shape := box.Shape()
	w := int(shape[len(shape)-1])
	h := 1
	for _, s := range shape[:len(shape)-1] {
		h *= int(s)
	}
	return compress.Params{Elem: dt.Size(), Width: w, Height: h}
}

// pickCodec decides the effective codec for a payload. Image codecs fall
// back to LZ for payloads that are not raw dense cell grids (delta blobs,
// sparse encodings), whose byte streams they cannot model.
func pickCodec(requested compress.Codec, rawDense bool) compress.Codec {
	if !rawDense && (requested == compress.PNG || requested == compress.Wavelet) {
		return compress.LZ
	}
	return requested
}

// sealParams derives compression parameters: raw dense chunks expose
// their 2D cell structure; everything else (delta blobs, sparse
// encodings) is an opaque byte stream.
func sealParams(rawDense bool, box array.Box, dt array.DataType) compress.Params {
	if rawDense {
		return codecParams(box, dt)
	}
	return compress.Params{Elem: 1}
}

// seal compresses an encoded payload with the effective codec. It
// returns the stored bytes and the codec actually used; if compression
// would grow the payload it is stored uncompressed ("each chunk is
// optionally compressed", §II-A). With adaptive enabled, a prefix sample
// is compressed first and the codec is skipped when the predicted ratio
// is poor — the paper's future-work adaptive scheme.
func seal(codec compress.Codec, adaptive bool, payload []byte, p compress.Params) ([]byte, compress.Codec, error) {
	if codec == compress.None {
		return payload, compress.None, nil
	}
	if adaptive && !predictCompressible(codec, payload) {
		return payload, compress.None, nil
	}
	packed, err := compress.Compress(codec, payload, p)
	if err != nil {
		return nil, 0, err
	}
	if len(packed) >= len(payload) {
		return payload, compress.None, nil
	}
	return packed, codec, nil
}

// unseal reverses seal.
func unseal(codec compress.Codec, blob []byte, p compress.Params) ([]byte, error) {
	return compress.Decompress(codec, blob, p)
}

// adaptiveSampleBytes is the prefix length used to predict
// compressibility; adaptiveSkipRatio is the sample ratio above which
// compression is skipped.
const (
	adaptiveSampleBytes = 4096
	adaptiveSkipRatio   = 0.9
)

// predictCompressible compresses a prefix sample with LZ (the structural
// codecs share its redundancy model closely enough for a skip decision)
// and reports whether the full payload is worth compressing.
func predictCompressible(codec compress.Codec, payload []byte) bool {
	if len(payload) <= adaptiveSampleBytes {
		return true // small payloads: just try the real thing
	}
	sample := payload[:adaptiveSampleBytes]
	packed, err := compress.Compress(compress.LZ, sample, compress.Params{})
	if err != nil {
		return true
	}
	return float64(len(packed)) < adaptiveSkipRatio*float64(len(sample))
}
