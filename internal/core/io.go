package core

import (
	"fmt"
	"os"
	"path/filepath"

	"arrayvers/internal/array"
	"arrayvers/internal/compress"
)

// Chunk payload I/O. Two placements are supported (§III-B.3): per-version
// files ("all the deltas belonging to a given version together"), and
// co-located chain files where all frames of one chunk across versions
// are appended to a single file, eliminating seeks when a delta chain is
// read.
//
// Concurrency contract: chunk files are append-only between destructive
// rewrites, so readBlob may run with no store lock held — a reader's
// metadata snapshot only references (file, offset, length) triples that
// were durable before the snapshot, and appends never disturb earlier
// bytes. writeBlob is called from parallel insert workers; each worker
// targets a distinct file (chain files are per chunk key, per-version
// files are per chunk key too), so writers never share a file handle.
// The exceptions to append-only all hold the array's exclusive I/O
// latch: Reorganize/Compact/DeleteArray replace or remove files, and —
// in per-version file mode only — the re-encode paths
// (maybeBatchReencode, DeleteVersion) rewrite an existing version's
// files in place via os.WriteFile.

// chainFileName returns the co-located chain file for one (attr, chunk).
func chainFileName(attr, chunkKey string) string {
	return attr + "-" + chunkKey + ".chain"
}

// versionFileName returns the per-version file for one (version, attr,
// chunk).
func versionFileName(id int, attr, chunkKey string) string {
	return fmt.Sprintf("v%d-%s-%s.dat", id, attr, chunkKey)
}

// writeBlob stores an encoded chunk payload and returns its location.
func (s *Store) writeBlob(st *arrayState, id int, attr, chunkKey string, blob []byte) (file string, off int64, err error) {
	if s.opts.CoLocate {
		file = chainFileName(attr, chunkKey)
		path := filepath.Join(st.dir, "chunks", file)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return "", 0, err
		}
		defer f.Close()
		info, err := f.Stat()
		if err != nil {
			return "", 0, err
		}
		off = info.Size()
		if _, err := f.Write(blob); err != nil {
			return "", 0, err
		}
	} else {
		file = versionFileName(id, attr, chunkKey)
		if err := os.WriteFile(filepath.Join(st.dir, "chunks", file), blob, 0o644); err != nil {
			return "", 0, err
		}
	}
	s.addWrite(int64(len(blob)))
	return file, off, nil
}

// readBlob fetches an encoded chunk payload.
func (s *Store) readBlob(st *arrayState, e chunkEntry) ([]byte, error) {
	path := filepath.Join(st.dir, "chunks", e.File)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: open chunk file: %w", err)
	}
	defer f.Close()
	blob := make([]byte, e.Length)
	if _, err := f.ReadAt(blob, e.Offset); err != nil {
		return nil, fmt.Errorf("core: read chunk %s@%d+%d: %w", e.File, e.Offset, e.Length, err)
	}
	s.addRead(e.Length)
	return blob, nil
}

// codecParams derives the compression hints for a chunk payload. The
// image codecs (PNG, Wavelet) interpret the buffer as 2D cells; they are
// only applicable to materialized dense chunks, so callers pass ok=false
// payload kinds through pickCodec first.
func codecParams(box array.Box, dt array.DataType) compress.Params {
	shape := box.Shape()
	w := int(shape[len(shape)-1])
	h := 1
	for _, s := range shape[:len(shape)-1] {
		h *= int(s)
	}
	return compress.Params{Elem: dt.Size(), Width: w, Height: h}
}

// pickCodec decides the effective codec for a payload. Image codecs fall
// back to LZ for payloads that are not raw dense cell grids (delta blobs,
// sparse encodings), whose byte streams they cannot model.
func pickCodec(requested compress.Codec, rawDense bool) compress.Codec {
	if !rawDense && (requested == compress.PNG || requested == compress.Wavelet) {
		return compress.LZ
	}
	return requested
}

// sealParams derives compression parameters: raw dense chunks expose
// their 2D cell structure; everything else (delta blobs, sparse
// encodings) is an opaque byte stream.
func sealParams(rawDense bool, box array.Box, dt array.DataType) compress.Params {
	if rawDense {
		return codecParams(box, dt)
	}
	return compress.Params{Elem: 1}
}

// seal compresses an encoded payload with the effective codec. It
// returns the stored bytes and the codec actually used; if compression
// would grow the payload it is stored uncompressed ("each chunk is
// optionally compressed", §II-A). With adaptive enabled, a prefix sample
// is compressed first and the codec is skipped when the predicted ratio
// is poor — the paper's future-work adaptive scheme.
func seal(codec compress.Codec, adaptive bool, payload []byte, p compress.Params) ([]byte, compress.Codec, error) {
	if codec == compress.None {
		return payload, compress.None, nil
	}
	if adaptive && !predictCompressible(codec, payload) {
		return payload, compress.None, nil
	}
	packed, err := compress.Compress(codec, payload, p)
	if err != nil {
		return nil, 0, err
	}
	if len(packed) >= len(payload) {
		return payload, compress.None, nil
	}
	return packed, codec, nil
}

// unseal reverses seal.
func unseal(codec compress.Codec, blob []byte, p compress.Params) ([]byte, error) {
	return compress.Decompress(codec, blob, p)
}

// adaptiveSampleBytes is the prefix length used to predict
// compressibility; adaptiveSkipRatio is the sample ratio above which
// compression is skipped.
const (
	adaptiveSampleBytes = 4096
	adaptiveSkipRatio   = 0.9
)

// predictCompressible compresses a prefix sample with LZ (the structural
// codecs share its redundancy model closely enough for a skip decision)
// and reports whether the full payload is worth compressing.
func predictCompressible(codec compress.Codec, payload []byte) bool {
	if len(payload) <= adaptiveSampleBytes {
		return true // small payloads: just try the real thing
	}
	sample := payload[:adaptiveSampleBytes]
	packed, err := compress.Compress(compress.LZ, sample, compress.Params{})
	if err != nil {
		return true
	}
	return float64(len(packed)) < adaptiveSkipRatio*float64(len(sample))
}
