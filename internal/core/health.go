package core

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"
)

// Degraded read-only mode (see DESIGN.md "Resilience & degraded
// modes"). The commit protocol's failure sites fall into two classes:
//
//   - benign: the failure happened strictly before the commit point and
//     the failed operation's effect is known (a staging append, the
//     metadata tmp-file create/write/fsync). The mutation rolls back,
//     memory and disk agree, and the store stays writable.
//
//   - uncertain: a data or directory fsync failed (the kernel may have
//     dropped dirty pages whose write was already acknowledged), the
//     metadata rename failed (the new document may or may not be in
//     place), or the post-rename directory fsync failed (the rename IS
//     in place but may not survive a power cut — disk is ahead of
//     memory). Accepting further writes against that state could
//     compound a torn commit, so the array transitions into degraded
//     read-only mode: reads keep serving the in-memory (authoritative)
//     metadata, every mutation is refused with ErrDegraded.
//
// ENOSPC anywhere degrades the whole store: a full disk fails the next
// commit no matter which array it lands on.
//
// Healing re-establishes the invariant the commit protocol normally
// maintains — durable disk state == in-memory state — by probing the
// disk, re-committing the authoritative in-memory metadata document,
// sweeping commit debris and orphaned chunk blobs (the Open-time
// recovery sweep, run on the live store), and verifying the array end
// to end before flipping it back to writable. A background prober (the
// healer) is armed on the first degrade and retries until the disk
// recovers; Heal runs the same pass synchronously.

// ErrDegraded is returned (wrapped) by mutations refused because the
// array — or the whole store, after ENOSPC — is in degraded read-only
// mode; match it with errors.Is. Reads are unaffected.
var ErrDegraded = errors.New("core: degraded read-only mode")

// commitUncertainError marks an I/O failure at or after the commit
// point whose on-disk effect is unknown (failed rename or post-rename
// directory fsync). saveMetaDoc wraps those phases so callers can
// distinguish them from benign pre-commit failures.
type commitUncertainError struct{ err error }

func (e *commitUncertainError) Error() string { return e.err.Error() }
func (e *commitUncertainError) Unwrap() error { return e.err }

func uncertain(err error) error {
	if err == nil {
		return nil
	}
	return &commitUncertainError{err}
}

func isUncertain(err error) bool {
	var u *commitUncertainError
	return errors.As(err, &u)
}

// degradedInfo records why and since when an array (or the store) is
// read-only.
type degradedInfo struct {
	reason string
	since  time.Time
}

// ArrayHealth is one degraded array in a Health report.
type ArrayHealth struct {
	Name   string    `json:"name"`
	Reason string    `json:"reason"`
	Since  time.Time `json:"since"`
}

// Health is a snapshot of the store's degraded-mode state.
type Health struct {
	// Degraded reports whether anything — the store or any array — is
	// currently refusing writes.
	Degraded bool `json:"degraded"`
	// StoreDegraded reports store-wide read-only mode (ENOSPC).
	StoreDegraded bool      `json:"store_degraded"`
	StoreReason   string    `json:"store_reason,omitempty"`
	StoreSince    time.Time `json:"store_since,omitempty"`
	// Arrays lists per-array degraded states, sorted by name.
	Arrays []ArrayHealth `json:"arrays,omitempty"`
}

// Health reports the store's current degraded-mode state.
func (s *Store) Health() Health {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	h := Health{}
	if s.storeDegraded != nil {
		h.Degraded = true
		h.StoreDegraded = true
		h.StoreReason = s.storeDegraded.reason
		h.StoreSince = s.storeDegraded.since
	}
	for name, d := range s.degraded {
		h.Degraded = true
		h.Arrays = append(h.Arrays, ArrayHealth{Name: name, Reason: d.reason, Since: d.since})
	}
	sort.Slice(h.Arrays, func(i, j int) bool { return h.Arrays[i].Name < h.Arrays[j].Name })
	return h
}

// writeGate refuses mutations on a degraded array (or store). Mutators
// call it at entry; a failure that slips past the gate (degrade racing
// an in-flight write) just fails its own commit and re-degrades.
func (s *Store) writeGate(name string) error {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	if s.storeDegraded != nil {
		s.bumpRejected()
		return fmt.Errorf("core: store is read-only (%s): %w", s.storeDegraded.reason, ErrDegraded)
	}
	if d, ok := s.degraded[name]; ok {
		s.bumpRejected()
		return fmt.Errorf("core: array %q is read-only (%s): %w", name, d.reason, ErrDegraded)
	}
	return nil
}

func (s *Store) bumpRejected() {
	s.statsMu.Lock()
	s.stats.WritesRejectedDegraded++
	s.statsMu.Unlock()
}

// noteCommitFailure classifies a failure at an UNCERTAIN commit-protocol
// site (data fsync, chunks-dir fsync, metadata rename/dir-fsync): the
// array degrades, and ENOSPC additionally degrades the whole store.
// Callers may hold Store.mu; healthMu and statsMu are leaf locks.
func (s *Store) noteCommitFailure(st *arrayState, err error) {
	if err == nil || errors.Is(err, ErrClosed) || errors.Is(err, ErrDegraded) {
		return
	}
	if errors.Is(err, syscall.ENOSPC) {
		s.degradeStore(err)
	}
	s.degradeArray(st.Schema.Name, err)
}

// noteDiskPressure classifies a failure at a BENIGN site (staging,
// pre-commit tmp writes): the mutation rolled back cleanly, but ENOSPC
// still means the disk is full — degrade store-wide so later commits
// don't have to discover it the hard way.
func (s *Store) noteDiskPressure(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, syscall.ENOSPC) {
		s.degradeStore(err)
	}
}

func (s *Store) degradeArray(name string, cause error) {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	if _, ok := s.degraded[name]; !ok {
		s.degraded[name] = degradedInfo{reason: cause.Error(), since: s.clock()}
		s.bumpEntered()
	}
	s.ensureHealerLocked()
}

func (s *Store) degradeStore(cause error) {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	if s.storeDegraded == nil {
		s.storeDegraded = &degradedInfo{reason: cause.Error(), since: s.clock()}
		s.bumpEntered()
	}
	s.ensureHealerLocked()
}

func (s *Store) bumpEntered() {
	s.statsMu.Lock()
	s.stats.DegradedEntered++
	s.statsMu.Unlock()
}

// clearDegraded flips one array back to writable.
func (s *Store) clearDegraded(name string) {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	if _, ok := s.degraded[name]; ok {
		delete(s.degraded, name)
		s.statsMu.Lock()
		s.stats.DegradedHealed++
		s.statsMu.Unlock()
	}
}

// HealReport summarizes one Heal pass.
type HealReport struct {
	// StoreHealed reports that store-wide (ENOSPC) degradation cleared.
	StoreHealed bool
	// Healed lists arrays flipped back to writable, Failed maps arrays
	// still degraded to the reason the heal attempt failed.
	Healed []string
	Failed map[string]string
	// SweptFiles/TruncatedFiles/TruncatedBytes count what the heal's
	// recovery sweep reclaimed (orphaned blobs, stale generations,
	// uncommitted tails).
	SweptFiles     int64
	TruncatedFiles int64
	TruncatedBytes int64
}

// Heal attempts to exit degraded mode synchronously: probe the disk,
// re-commit each degraded array's authoritative in-memory metadata,
// sweep commit debris, and run Verify; arrays that pass flip back to
// writable. The background healer runs the same pass periodically; Heal
// exists for tests and operational tooling (avstore, the daemon's admin
// surface). A no-op when nothing is degraded.
func (s *Store) Heal() (HealReport, error) {
	rep := HealReport{Failed: map[string]string{}}
	s.healthMu.Lock()
	storeDeg := s.storeDegraded != nil
	names := make([]string, 0, len(s.degraded))
	for n := range s.degraded {
		names = append(names, n)
	}
	s.healthMu.Unlock()
	sort.Strings(names)
	if !storeDeg && len(names) == 0 {
		return rep, nil
	}
	if storeDeg {
		if err := s.probeDir(s.dir); err != nil {
			return rep, fmt.Errorf("core: heal probe: %w", err)
		}
		// An uncertain manifest append or CURRENT flip poisoned the log;
		// truncate the unhealed tail (or finish the flip) before declaring
		// the store writable again, or the next append would stack a record
		// on bytes whose durability is unknown.
		if s.man != nil {
			if err := s.man.heal(); err != nil {
				return rep, fmt.Errorf("core: heal manifest: %w", err)
			}
		}
		s.healthMu.Lock()
		if s.storeDegraded != nil {
			s.storeDegraded = nil
			s.statsMu.Lock()
			s.stats.DegradedHealed++
			s.statsMu.Unlock()
		}
		s.healthMu.Unlock()
		rep.StoreHealed = true
	}
	for _, name := range names {
		if err := s.healArray(name, &rep); err != nil {
			if errors.Is(err, ErrClosed) {
				return rep, err
			}
			rep.Failed[name] = err.Error()
		} else {
			rep.Healed = append(rep.Healed, name)
		}
	}
	if len(rep.Failed) > 0 {
		return rep, fmt.Errorf("core: heal: %d array(s) still degraded: %w", len(rep.Failed), ErrDegraded)
	}
	return rep, nil
}

// healProbeFile is the scratch file probeDir writes; sweepDebris treats
// it as commit debris so a crash mid-probe leaves nothing behind.
const healProbeFile = "healprobe.tmp"

// probeDir checks that dir accepts a full create→write→fsync→remove
// round trip — the cheapest honest signal that the disk recovered.
func (s *Store) probeDir(dir string) error {
	path := filepath.Join(dir, healProbeFile)
	f, err := s.fs.Create(path)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("healprobe"))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	rerr := s.fs.Remove(path)
	if werr != nil {
		return werr
	}
	return rerr
}

// healArray runs one array's heal pass. It acquires every write-side
// latch in the documented order (reorgMu, then syncMu < commitMu <
// writeMu), so no insert, delete, or rewrite can be mid-commit: the
// in-memory metadata it re-commits and sweeps against cannot move.
func (s *Store) healArray(name string, rep *HealReport) error {
	st, err := s.lockArray(name, func(st *arrayState) []*sync.Mutex {
		return []*sync.Mutex{&st.reorgMu, &st.syncMu, &st.commitMu, &st.writeMu}
	})
	if err != nil {
		if errors.Is(err, ErrClosed) {
			return err
		}
		// the array is gone (deleted or replaced); there is no state
		// left to protect
		s.clearDegraded(name)
		return nil
	}
	defer st.reorgMu.Unlock()
	defer st.syncMu.Unlock()
	defer st.commitMu.Unlock()
	defer st.writeMu.Unlock()

	// inserts staged before the degrade are still queued; their blobs
	// were never synced and the sweep below reclaims them, so fail them
	// now rather than letting them retry against a healing disk
	if batch := st.drainPending(); len(batch) > 0 {
		gateErr := fmt.Errorf("core: array %q is read-only: %w", name, ErrDegraded)
		for _, ins := range batch {
			ins.fail(gateErr)
			close(ins.done)
		}
	}

	// an uncertain DeleteArray failure can leave the directory renamed
	// to its tombstone while memory still serves the array: restore the
	// authoritative (live) name before touching anything inside it
	if _, err := os.Stat(st.dir); errors.Is(err, fs.ErrNotExist) {
		tomb := st.dir + tombstoneSuffix
		if _, terr := os.Stat(tomb); terr == nil {
			if rerr := s.fs.Rename(tomb, st.dir); rerr != nil {
				return rerr
			}
		}
	}

	if err := s.probeDir(st.dir); err != nil {
		return err
	}

	// re-commit the authoritative in-memory metadata. This single write
	// resolves every uncertain outcome the degrade recorded: a rename
	// that secretly landed (disk ahead of memory — the phantom case), a
	// rename that was lost, or a rewrite whose generation flipped in
	// memory but never committed (commitGenLocked's divergence).
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	if s.arrays[name] != st {
		s.mu.RUnlock()
		s.clearDegraded(name)
		return nil
	}
	m := st.metaClone()
	s.mu.RUnlock()
	if err := s.commitMeta(st, &m); err != nil {
		return err
	}

	// the Open-time recovery sweep, on the live store: drop commit
	// debris (tmp files, uncommitted generations) and orphaned or torn
	// chunk blobs. Readers are drained via the I/O latch first — a
	// superseded generation directory may still be pinned by a reader
	// that snapshotted before a half-committed rewrite.
	var local RecoveryStats
	st.ioMu.Lock()
	err = s.sweepDebris(st, &local)
	if err == nil {
		err = s.collectChunkFiles(st, &local)
	}
	st.ioMu.Unlock()
	if err != nil {
		return err
	}
	rep.SweptFiles += local.RemovedFiles
	rep.TruncatedFiles += local.TruncatedFiles
	rep.TruncatedBytes += local.TruncatedBytes

	vrep, err := s.Verify(name)
	if err != nil {
		return err
	}
	if !vrep.Ok() {
		return fmt.Errorf("core: heal verify found %d problem(s): %s", len(vrep.Problems), vrep.Problems[0])
	}

	s.clearDegraded(name)
	return nil
}

// defaultHealInterval is the background prober's period when
// Options.HealInterval is zero.
const defaultHealInterval = time.Second

// healer is the background heal prober. Unlike the tuner it is not
// started at Open: the first degrade arms it, and it disarms itself
// once nothing is degraded (the next degrade re-arms a fresh one).
type healer struct {
	s        *Store
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// ensureHealerLocked arms the background prober. Callers hold healthMu.
// A negative Options.HealInterval disables it (tests drive Heal
// directly).
func (s *Store) ensureHealerLocked() {
	if s.healer != nil || s.healerStopped || s.opts.HealInterval < 0 {
		return
	}
	h := &healer{s: s, stop: make(chan struct{}), done: make(chan struct{})}
	s.healer = h
	go h.loop()
}

// stopHealer terminates the background prober and waits for an
// in-flight pass to finish; called by Close.
func (s *Store) stopHealer() {
	s.healthMu.Lock()
	s.healerStopped = true
	h := s.healer
	s.healer = nil
	s.healthMu.Unlock()
	if h != nil {
		h.stopOnce.Do(func() { close(h.stop) })
		<-h.done
	}
}

func (h *healer) loop() {
	defer close(h.done)
	interval := h.s.opts.HealInterval
	if interval <= 0 {
		interval = defaultHealInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-tick.C:
			if _, err := h.s.Heal(); errors.Is(err, ErrClosed) {
				return
			}
			h.s.healthMu.Lock()
			idle := h.s.storeDegraded == nil && len(h.s.degraded) == 0
			if idle && h.s.healer == h {
				h.s.healer = nil // disarmed; the next degrade re-arms
			}
			h.s.healthMu.Unlock()
			if idle {
				return
			}
		}
	}
}
