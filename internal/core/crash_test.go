package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"arrayvers/internal/array"
	"arrayvers/internal/fsio"
)

// The crash-point matrix: a fixed insert → delta-list → delete-version →
// reorganize → compact workload is run once to count every mutating
// filesystem step (write, sync, rename, dir-sync, mkdir, remove,
// truncate), then re-run from scratch once per step with an injected
// crash at exactly that step. After each crash the store is reopened
// with recovery on; every version whose commit succeeded before the
// crash must read back byte-identical, the interrupted operation must be
// atomically in or out, Verify must pass, and recovery must never have
// dropped a committed version (the commit-protocol invariant: data is
// synced before the metadata rename).

// crashModel tracks what the workload committed.
type crashModel struct {
	// content maps committed version id -> expected cells.
	content map[int]*array.Dense
	// pendingID/pendingContent describe the operation the crash
	// interrupted, when it has a maybe-committed version to account for.
	pendingID      int
	pendingContent *array.Dense
	// pendingDeleted is the id of a version whose DeleteVersion was
	// interrupted (it may be gone or still fully readable).
	pendingDeleted int
	// pendingBatchIDs/pendingBatchContent describe an interrupted
	// InsertBatch: the batch shares one commit, so after recovery either
	// every member is present (byte-identical) or none is.
	pendingBatchIDs     []int
	pendingBatchContent []*array.Dense
	// aux tracks the second array ("Aux"), which exercises the
	// CreateArray and DeleteArray (tombstone) crash points.
	auxInsertOK  bool // Aux's single insert committed
	auxDeleteTry bool // DeleteArray("Aux") was attempted
	auxDeleteOK  bool // DeleteArray("Aux") returned success
	// tuneReorganized records whether the forced adaptive-tuner pass at
	// the end of the workload actually committed a re-layout (asserted
	// on the fault-free counting run, so the matrix provably covers the
	// tuner's commit points).
	tuneReorganized bool
	// multiArraysCreated is set once the two extra member arrays ("P",
	// "Q") of the cross-array batch both committed their CreateArray.
	multiArraysCreated bool
	// pendingMulti describes an interrupted InsertMulti spanning M, P,
	// and Q: array name -> the content its single member would hold.
	// The batch shares ONE manifest commit, so after recovery either
	// every array shows its member or none does. pendingMultiID is the
	// id M's member would get (P's and Q's members are their version 1).
	pendingMulti   map[string]*array.Dense
	pendingMultiID int
	// multiDone holds P's and Q's committed member content once the
	// cross-array batch succeeded (M's member moves into content).
	multiDone map[string]*array.Dense
}

func durableOpts(coLocate bool, fs fsio.FS) Options {
	o := smallOpts()
	o.ChunkBytes = 1 << 10 // several chunks even at side 16
	o.CoLocate = coLocate
	o.Durability = true
	o.FS = fs
	o.Parallelism = 1 // deterministic step ordering for the matrix
	o.DeltaCandidates = 2
	// the workload's forced tune pass must deterministically reorganize
	// (the skewed selects easily clear a 1% bar); the background loop
	// stays off so the matrix is single-threaded
	o.AutoTune.MinSavings = 0.01
	o.AutoTune.MinOps = 1
	// rotate the manifest log every few KB so snapshot rotation and the
	// CURRENT flip are crash/fault points of the matrices, not just the
	// steady-state append
	o.ManifestRotateBytes = 8 << 10
	return o
}

// pinClock makes commit timestamps constant so every matrix run writes
// byte-identical metadata documents: RFC3339Nano timestamps vary in
// encoded length, which would shift the manifest log's byte count and
// with it the rotation trigger — and therefore the step sequence —
// between the counting run and the per-step runs.
func pinClock(s *Store) {
	// the nanosecond part has no trailing zeros, so the encoded length
	// is the same no matter how the marshaller truncates
	fixed := time.Date(2026, 1, 2, 3, 4, 5, 123456789, time.UTC)
	s.clock = func() time.Time { return fixed }
}

func crashContent(seed, side int64) *array.Dense {
	d := array.MustDense(array.Int32, []int64{side, side})
	for i := int64(0); i < d.NumCells(); i++ {
		d.SetBits(i, (i*7+seed*131)%1000)
	}
	return d
}

// runCrashWorkload drives the workload until completion or the first
// error. It returns the model of committed state; on error the model's
// pending fields describe the interrupted operation.
func runCrashWorkload(s *Store, side int64) (*crashModel, error) {
	m := &crashModel{content: map[int]*array.Dense{}}
	if err := s.CreateArray(schema2D("M", side)); err != nil {
		return m, err
	}

	insert := func(seed int64) error {
		content := crashContent(seed, side)
		m.pendingID = nextLiveID(m)
		m.pendingContent = content
		id, err := s.Insert("M", DensePayload(content))
		if err != nil {
			return err
		}
		m.content[id] = content
		m.pendingID, m.pendingContent = 0, nil
		return nil
	}

	if err := insert(1); err != nil {
		return m, err
	}
	if err := insert(2); err != nil {
		return m, err
	}
	// delta-list update off version 1
	{
		updates := []CellUpdate{
			{Coords: []int64{0, 0}, Bits: 4242},
			{Coords: []int64{side - 1, side - 1}, Bits: 7},
		}
		want := m.content[1].Clone()
		for _, u := range updates {
			want.SetBitsAt(u.Coords, u.Bits)
		}
		m.pendingID = nextLiveID(m)
		m.pendingContent = want
		id, err := s.Insert("M", DeltaListPayload(1, updates))
		if err != nil {
			return m, err
		}
		m.content[id] = want
		m.pendingID, m.pendingContent = 0, nil
	}
	if err := insert(3); err != nil {
		return m, err
	}
	// second array: create, fill, and tombstone-delete it so the matrix
	// covers the array-lifecycle commit points too
	if err := s.CreateArray(schema2D("Aux", side)); err != nil {
		return m, err
	}
	if _, err := s.Insert("Aux", DensePayload(crashContent(77, side))); err != nil {
		return m, err
	}
	m.auxInsertOK = true
	m.auxDeleteTry = true
	if err := s.DeleteArray("Aux"); err != nil {
		return m, err
	}
	m.auxDeleteOK = true
	// delete version 2 (children may be delta'ed against it)
	m.pendingDeleted = 2
	if err := s.DeleteVersion("M", 2); err != nil {
		return m, err
	}
	delete(m.content, 2)
	m.pendingDeleted = 0
	// destructive rewrites
	if err := s.Reorganize("M", ReorganizeOptions{Policy: PolicyOptimal}); err != nil {
		return m, err
	}
	if err := insert(4); err != nil {
		return m, err
	}
	if err := s.Compact("M"); err != nil {
		return m, err
	}
	// batched insert through the group-commit path: three versions — a
	// dense payload, a delta-list off version 1, another dense — staged
	// together and published by ONE shared commit, so every fault point
	// of the coalesced fsync schedule and the single metadata rename is
	// in the matrix. Atomicity is all-or-nothing for the whole batch.
	{
		startID := nextLiveID(m)
		deltaWant := m.content[1].Clone()
		updates := []CellUpdate{
			{Coords: []int64{1, 1}, Bits: 31337},
			{Coords: []int64{side - 2, 0}, Bits: -5},
		}
		for _, u := range updates {
			deltaWant.SetBitsAt(u.Coords, u.Bits)
		}
		want := []*array.Dense{crashContent(8, side), deltaWant, crashContent(9, side)}
		m.pendingBatchIDs = []int{startID, startID + 1, startID + 2}
		m.pendingBatchContent = want
		ids, err := s.InsertBatch("M", []Payload{
			DensePayload(want[0]),
			DeltaListPayload(1, updates),
			DensePayload(want[2]),
		})
		if err != nil {
			return m, err
		}
		for i, id := range ids {
			m.content[id] = want[i]
		}
		m.pendingBatchIDs, m.pendingBatchContent = nil, nil
	}
	// cross-array atomic batch: three arrays (M plus two fresh ones)
	// land one member each under ONE manifest record batch and ONE
	// fsync — the commit the per-array protocol could not express. The
	// matrix must prove all-or-nothing visibility at every fault point
	// of append → fsync → install, including across reopen+replay.
	if err := s.CreateArray(schema2D("P", side)); err != nil {
		return m, err
	}
	if err := s.CreateArray(schema2D("Q", side)); err != nil {
		return m, err
	}
	m.multiArraysCreated = true
	{
		m.pendingMultiID = nextLiveID(m)
		m.pendingMulti = map[string]*array.Dense{
			"M": crashContent(21, side),
			"P": crashContent(22, side),
			"Q": crashContent(23, side),
		}
		out, err := s.InsertMulti([]MultiInsert{
			{Array: "M", Payloads: []Payload{DensePayload(m.pendingMulti["M"])}},
			{Array: "P", Payloads: []Payload{DensePayload(m.pendingMulti["P"])}},
			{Array: "Q", Payloads: []Payload{DensePayload(m.pendingMulti["Q"])}},
		})
		if err != nil {
			return m, err
		}
		m.content[out["M"][0]] = m.pendingMulti["M"]
		m.multiDone = map[string]*array.Dense{"P": m.pendingMulti["P"], "Q": m.pendingMulti["Q"]}
		m.pendingMulti, m.pendingMultiID = nil, 0
	}
	if err := insert(5); err != nil {
		return m, err
	}
	// adaptive tuner: put the array in the linear baseline, record a
	// hot-old-version workload (selects inject no fault points — only
	// writes count), and force a tune pass. Its workload-aware rewrite
	// commits through the same generation protocol, so every
	// write/sync/rename inside the tuner-initiated reorganize becomes a
	// crash point of the matrix.
	if err := s.Reorganize("M", ReorganizeOptions{Policy: PolicyLinearChain}); err != nil {
		return m, err
	}
	for i := 0; i < 9; i++ {
		if _, err := s.Select("M", 1); err != nil {
			return m, err
		}
	}
	if _, err := s.Select("M", 4); err != nil {
		return m, err
	}
	rep, err := s.Tune("M")
	if err != nil {
		return m, err
	}
	m.tuneReorganized = rep.Reorganized
	// one final insert so a crash injected at the tuner's post-commit
	// cleanup steps (whose errors are deliberately swallowed) still
	// surfaces through a later failing operation
	if err := insert(6); err != nil {
		return m, err
	}
	return m, nil
}

func batchContains(pos map[int]int, id int) bool {
	_, ok := pos[id]
	return ok
}

// nextLiveID predicts the id the next insert will be assigned (version
// ids are never reused, so it is one past everything ever inserted).
func nextLiveID(m *crashModel) int {
	max := 0
	for id := range m.content {
		if id > max {
			max = id
		}
	}
	if m.pendingID > max {
		max = m.pendingID
	}
	return max + 1
}

func TestCrashPointMatrix(t *testing.T) {
	const side = 16
	for _, coLocate := range []bool{true, false} {
		coLocate := coLocate
		t.Run(fmt.Sprintf("coLocate=%v", coLocate), func(t *testing.T) {
			// pass 1: count the total number of mutation steps
			counter := fsio.NewFault(0)
			s, err := Open(t.TempDir(), durableOpts(coLocate, counter))
			if err != nil {
				t.Fatal(err)
			}
			pinClock(s)
			model, err := runCrashWorkload(s, side)
			if err != nil {
				t.Fatalf("counting run failed: %v", err)
			}
			if !model.tuneReorganized {
				t.Fatal("forced tune pass did not reorganize; the matrix would not cover the tuner's commit points")
			}
			if s.Stats().ManifestRotations == 0 {
				t.Fatal("workload never rotated the manifest log; the matrix would not cover snapshot rotation and the CURRENT flip")
			}
			total := counter.Steps()
			if total < 50 {
				t.Fatalf("workload only has %d fault points; expected a rich matrix", total)
			}
			t.Logf("crash matrix: %d fault injection points", total)

			for n := int64(1); n <= total; n++ {
				fault := fsio.NewFault(n)
				dir := t.TempDir()
				s, err := Open(dir, durableOpts(coLocate, fault))
				var m *crashModel
				if err == nil {
					pinClock(s)
					m, err = runCrashWorkload(s, side)
				} else {
					m = &crashModel{content: map[int]*array.Dense{}}
				}
				if err == nil {
					t.Fatalf("crash at step %d/%d did not surface", n, total)
				}
				// the crash usually surfaces directly; when it lands inside
				// a deliberately-swallowed step (manifest rotation runs
				// after the commit point, so its failure only poisons the
				// log), the next mutator surfaces the degraded-mode
				// rejection instead — correct containment, same crash
				if !errors.Is(err, fsio.ErrCrashed) &&
					!(errors.Is(err, ErrDegraded) && fault.Crashed()) {
					t.Fatalf("crash at step %d: non-crash error %v", n, err)
				}
				checkRecovered(t, dir, n, m, side, coLocate)
			}
		})
	}
}

// TestLegacyRawFormatCompat pins the on-disk format versioning: arrays
// written before chunk frames existed (format 0, raw payloads) must
// keep reading, and a destructive rewrite must upgrade them to framed
// format 1 without changing their contents.
func TestLegacyRawFormatCompat(t *testing.T) {
	const side = 16
	dir := t.TempDir()
	opts := smallOpts()
	opts.ChunkBytes = 1 << 10
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(schema2D("Old", side)); err != nil {
		t.Fatal(err)
	}
	// rewind the array to the legacy format before anything is written,
	// exactly as a pre-frame store would load
	st := s.arrays["Old"]
	st.Format = formatRaw
	if err := s.saveMeta(st); err != nil {
		t.Fatal(err)
	}
	want := []*array.Dense{crashContent(1, side), crashContent(2, side)}
	for _, w := range want {
		if _, err := s.Insert("Old", DensePayload(w)); err != nil {
			t.Fatal(err)
		}
	}
	// reopen (with recovery) and read the raw-format payloads back
	ropts := opts
	ropts.Durability = true
	r, err := Open(dir, ropts)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		got, err := r.Select("Old", i+1)
		if err != nil {
			t.Fatalf("raw-format version %d unreadable: %v", i+1, err)
		}
		if !got.Dense.Equal(w) {
			t.Fatalf("raw-format version %d corrupted", i+1)
		}
	}
	if r.arrays["Old"].Format != formatRaw {
		t.Fatal("plain open must not silently rewrite the on-disk format")
	}
	// a rewrite upgrades to checksummed frames
	if err := r.Reorganize("Old", ReorganizeOptions{Policy: PolicyOptimal}); err != nil {
		t.Fatal(err)
	}
	if r.arrays["Old"].Format != formatFramed {
		t.Fatal("Reorganize should upgrade to the framed format")
	}
	for i, w := range want {
		got, err := r.Select("Old", i+1)
		if err != nil {
			t.Fatalf("upgraded version %d unreadable: %v", i+1, err)
		}
		if !got.Dense.Equal(w) {
			t.Fatalf("upgraded version %d corrupted", i+1)
		}
	}
	rep, err := r.Verify("Old")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("upgraded store fails verify: %v", rep.Problems)
	}
}

// TestRecoveryReconcilesLostData covers the defense-in-depth path: a
// store written *without* durability crashes in a way that loses
// committed chunk bytes. Recovery must drop the unreadable versions
// (and their delta dependents) rather than serving garbage, and leave a
// store that passes Verify.
func TestRecoveryReconcilesLostData(t *testing.T) {
	const side = 16
	dir := t.TempDir()
	opts := smallOpts()
	opts.ChunkBytes = 1 << 10
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(schema2D("M", side)); err != nil {
		t.Fatal(err)
	}
	v1 := crashContent(1, side)
	if _, err := s.Insert("M", DensePayload(v1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("M", DensePayload(crashContent(2, side))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("M", DensePayload(crashContent(3, side))); err != nil {
		t.Fatal(err)
	}
	// simulate a non-durable crash: cut the tail off every chain file,
	// destroying the later versions' frames (v2/v3 are delta chains or
	// appended frames past v1's)
	st := s.arrays["M"]
	sizes, err := chunkFileSizes(st.chunksDir())
	if err != nil {
		t.Fatal(err)
	}
	maxV1 := map[string]int64{}
	for _, chunks := range st.Versions[0].Chunks {
		for _, e := range chunks {
			if end := e.Offset + frameLen(st.Format, e.Length); end > maxV1[e.File] {
				maxV1[e.File] = end
			}
		}
	}
	for name, size := range sizes {
		cut := maxV1[name] // keep only v1's frames (plus a torn byte)
		if cut < size {
			if err := fsio.OS.Truncate(st.chunksDir()+"/"+name, cut+1); err != nil {
				t.Fatal(err)
			}
		}
	}

	ropts := opts
	ropts.Durability = true
	r, err := Open(dir, ropts)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if got := r.Recovery().DroppedVersions; got != 2 {
		t.Fatalf("recovery dropped %d versions, want 2", got)
	}
	rep, err := r.Verify("M")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("reconciled store fails verify: %v", rep.Problems)
	}
	got, err := r.Select("M", 1)
	if err != nil {
		t.Fatalf("surviving version unreadable: %v", err)
	}
	if !got.Dense.Equal(v1) {
		t.Fatal("surviving version corrupted")
	}
}

// checkRecovered reopens a crashed store with recovery and asserts the
// durability contract.
func checkRecovered(t *testing.T, dir string, step int64, m *crashModel, side int64, coLocate bool) {
	t.Helper()
	s, err := Open(dir, durableOpts(coLocate, fsio.OS))
	if err != nil {
		t.Fatalf("step %d: reopen after crash: %v", step, err)
	}
	if got := s.Recovery().DroppedVersions; got != 0 {
		t.Fatalf("step %d: recovery dropped %d committed versions", step, got)
	}
	arrays := map[string]bool{}
	for _, n := range s.ListArrays() {
		arrays[n] = true
	}
	// the Aux array's lifecycle must be atomic: a committed DeleteArray
	// can never resurrect it, a committed insert can only vanish with a
	// committed (or in-flight) delete, and whatever survives verifies
	switch {
	case m.auxDeleteOK && arrays["Aux"]:
		t.Fatalf("step %d: deleted array resurrected after recovery", step)
	case m.auxInsertOK && !m.auxDeleteTry && !arrays["Aux"]:
		t.Fatalf("step %d: array with committed data vanished", step)
	case arrays["Aux"]:
		rep, err := s.Verify("Aux")
		if err != nil {
			t.Fatalf("step %d: verify Aux: %v", step, err)
		}
		if !rep.Ok() {
			t.Fatalf("step %d: recovered Aux fails verify: %v", step, rep.Problems)
		}
		infos, err := s.Versions("Aux")
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for _, vi := range infos {
			got, err := s.Select("Aux", vi.ID)
			if err != nil || !got.Dense.Equal(crashContent(77, side)) {
				t.Fatalf("step %d: Aux version %d wrong after recovery (%v)", step, vi.ID, err)
			}
		}
	}
	// the cross-array batch's member arrays: once both CreateArrays
	// committed they can never vanish, and whatever member version
	// survives must verify and read back byte-identical
	memberVersion := func(name string) (*array.Dense, bool) {
		if !arrays[name] {
			if m.multiArraysCreated {
				t.Fatalf("step %d: committed array %s vanished", step, name)
			}
			return nil, false
		}
		rep, err := s.Verify(name)
		if err != nil {
			t.Fatalf("step %d: verify %s: %v", step, name, err)
		}
		if !rep.Ok() {
			t.Fatalf("step %d: recovered %s fails verify: %v", step, name, rep.Problems)
		}
		infos, err := s.Versions(name)
		if err != nil {
			t.Fatalf("step %d: versions %s: %v", step, name, err)
		}
		switch len(infos) {
		case 0:
			return nil, false
		case 1:
			got, err := s.Select(name, infos[0].ID)
			if err != nil {
				t.Fatalf("step %d: %s member unreadable: %v", step, name, err)
			}
			return got.Dense, true
		default:
			t.Fatalf("step %d: %s has %d versions, want at most 1", step, name, len(infos))
			return nil, false
		}
	}
	pGot, pIn := memberVersion("P")
	qGot, qIn := memberVersion("Q")
	switch {
	case m.multiDone != nil:
		// the batch committed: every member must be present
		if !pIn || !qIn {
			t.Fatalf("step %d: committed InsertMulti lost members (P=%v Q=%v)", step, pIn, qIn)
		}
		if !pGot.Equal(m.multiDone["P"]) || !qGot.Equal(m.multiDone["Q"]) {
			t.Fatalf("step %d: committed InsertMulti members corrupted", step)
		}
	case m.pendingMulti != nil:
		// interrupted mid-commit: all-or-nothing across all three arrays
		mIn := false
		if arrays["M"] {
			infos, err := s.Versions("M")
			if err != nil {
				t.Fatalf("step %d: versions M: %v", step, err)
			}
			for _, vi := range infos {
				if vi.ID == m.pendingMultiID {
					mIn = true
				}
			}
		}
		if pIn != qIn || pIn != mIn {
			t.Fatalf("step %d: interrupted InsertMulti committed partially (M=%v P=%v Q=%v)", step, mIn, pIn, qIn)
		}
		if pIn {
			if !pGot.Equal(m.pendingMulti["P"]) || !qGot.Equal(m.pendingMulti["Q"]) {
				t.Fatalf("step %d: maybe-committed InsertMulti members have wrong content", step)
			}
		}
	default:
		if pIn || qIn {
			t.Fatalf("step %d: unexpected version in P/Q before the cross-array batch ran", step)
		}
	}

	if !arrays["M"] {
		// the crash interrupted CreateArray itself
		if len(m.content) != 0 {
			t.Fatalf("step %d: array vanished with %d committed versions", step, len(m.content))
		}
		return
	}
	rep, err := s.Verify("M")
	if err != nil {
		t.Fatalf("step %d: verify: %v", step, err)
	}
	if !rep.Ok() {
		t.Fatalf("step %d: recovered store fails verify: %v", step, rep.Problems)
	}
	infos, err := s.Versions("M")
	if err != nil {
		t.Fatalf("step %d: versions: %v", step, err)
	}
	present := map[int]bool{}
	for _, vi := range infos {
		present[vi.ID] = true
	}
	// every committed version must be present and byte-identical
	for id, want := range m.content {
		if !present[id] {
			t.Fatalf("step %d: committed version %d lost", step, id)
		}
		got, err := s.Select("M", id)
		if err != nil {
			t.Fatalf("step %d: committed version %d unreadable: %v", step, id, err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("step %d: committed version %d corrupted", step, id)
		}
		delete(present, id)
	}
	// an interrupted InsertBatch shares one commit: all in or all out,
	// and whatever is in must be byte-identical
	batchPos := map[int]int{}
	for i, id := range m.pendingBatchIDs {
		batchPos[id] = i
	}
	batchPresent := 0
	for _, id := range m.pendingBatchIDs {
		if present[id] {
			batchPresent++
		}
	}
	if batchPresent != 0 && batchPresent != len(m.pendingBatchIDs) {
		t.Fatalf("step %d: interrupted InsertBatch committed partially (%d of %d members)",
			step, batchPresent, len(m.pendingBatchIDs))
	}
	// the interrupted op must be atomically in or out
	for id := range present {
		switch {
		case m.pendingBatchContent != nil && present[id] && batchContains(batchPos, id):
			got, err := s.Select("M", id)
			if err != nil {
				t.Fatalf("step %d: maybe-committed batch member %d unreadable: %v", step, id, err)
			}
			if !got.Dense.Equal(m.pendingBatchContent[batchPos[id]]) {
				t.Fatalf("step %d: maybe-committed batch member %d has wrong content", step, id)
			}
		case id == m.pendingID && m.pendingContent != nil:
			got, err := s.Select("M", id)
			if err != nil {
				t.Fatalf("step %d: maybe-committed version %d unreadable: %v", step, id, err)
			}
			if !got.Dense.Equal(m.pendingContent) {
				t.Fatalf("step %d: maybe-committed version %d has wrong content", step, id)
			}
		case id == m.pendingMultiID && m.pendingMulti != nil:
			got, err := s.Select("M", id)
			if err != nil {
				t.Fatalf("step %d: maybe-committed multi member %d unreadable: %v", step, id, err)
			}
			if !got.Dense.Equal(m.pendingMulti["M"]) {
				t.Fatalf("step %d: maybe-committed multi member %d has wrong content", step, id)
			}
		case id == m.pendingDeleted:
			// an interrupted DeleteVersion left the version live; it must
			// still read back as it did before the delete
			got, err := s.Select("M", id)
			if err != nil {
				t.Fatalf("step %d: undeleted version %d unreadable: %v", step, id, err)
			}
			if !got.Dense.Equal(crashContent(int64(id), side)) {
				t.Fatalf("step %d: undeleted version %d corrupted", step, id)
			}
		default:
			t.Fatalf("step %d: unexpected version %d in recovered store", step, id)
		}
	}
	// the recovered store must be fully writable again
	if _, err := s.Insert("M", DensePayload(crashContent(99, side))); err != nil {
		t.Fatalf("step %d: insert after recovery: %v", step, err)
	}
}
