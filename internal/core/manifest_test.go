package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"arrayvers/internal/array"
	"arrayvers/internal/fsio"
)

// Tests for the store-wide manifest commit log: replay across reopen,
// snapshot rotation, the InsertMulti cross-array commit, append-failure
// poisoning and heal, deep verification, and the in-place migration of
// legacy per-array stores — including a full crash/fault matrix over
// the migration itself (the legacy → manifest upgrade must be atomic:
// a crash leaves the store either fully legacy or fully migrated, with
// byte-identical reads either way).

// buildLegacyStore writes a store in the PR 3 per-array commit format
// (one versions.json per array) and returns the expected contents.
func buildLegacyStore(t *testing.T, dir string, side int64) map[string][]*array.Dense {
	t.Helper()
	opts := smallOpts()
	opts.ChunkBytes = 1 << 10
	opts.PerArrayCommit = true
	opts.Durability = true
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]*array.Dense{}
	for _, name := range []string{"LegA", "LegB"} {
		if err := s.CreateArray(schema2D(name, side)); err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			c := crashContent(seed*int64(len(name)), side)
			if _, err := s.Insert(name, DensePayload(c)); err != nil {
				t.Fatal(err)
			}
			want[name] = append(want[name], c)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.man != nil {
		t.Fatal("PerArrayCommit store grew a manifest")
	}
	for name := range want {
		if _, err := os.Stat(filepath.Join(dir, name, metaFile)); err != nil {
			t.Fatalf("legacy store missing %s/%s: %v", name, metaFile, err)
		}
	}
	return want
}

// checkContents asserts every expected version reads back
// byte-identical (version ids are 1-based insertion order here).
func checkContents(t *testing.T, s *Store, want map[string][]*array.Dense, label string) {
	t.Helper()
	for name, versions := range want {
		infos, err := s.Versions(name)
		if err != nil {
			t.Fatalf("%s: Versions(%s): %v", label, name, err)
		}
		if len(infos) != len(versions) {
			t.Fatalf("%s: %s has %d versions, want %d", label, name, len(infos), len(versions))
		}
		for i, c := range versions {
			got, err := s.Select(name, i+1)
			if err != nil {
				t.Fatalf("%s: %s@%d unreadable: %v", label, name, i+1, err)
			}
			if !got.Dense.Equal(c) {
				t.Fatalf("%s: %s@%d not byte-identical", label, name, i+1)
			}
		}
	}
}

// TestManifestReplayAcrossReopen pins the basic replay contract: every
// commit made through the manifest is visible after reopen (durable
// and non-durable), and the chain deep-verifies clean.
func TestManifestReplayAcrossReopen(t *testing.T) {
	const side = 8
	dir := t.TempDir()
	opts := smallOpts()
	opts.ChunkBytes = 1 << 10
	opts.Durability = true
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.man == nil {
		t.Fatal("fresh durable store did not initialize the manifest")
	}
	want := map[string][]*array.Dense{}
	for _, name := range []string{"R1", "R2", "R3"} {
		if err := s.CreateArray(schema2D(name, side)); err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 4; seed++ {
			c := crashContent(seed+int64(len(want)), side)
			if _, err := s.Insert(name, DensePayload(c)); err != nil {
				t.Fatal(err)
			}
			want[name] = append(want[name], c)
		}
	}
	// a deletion must replay too
	if err := s.CreateArray(schema2D("Doomed", side)); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteArray("Doomed"); err != nil {
		t.Fatal(err)
	}
	rep, err := s.VerifyManifest()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Enabled || !rep.Ok() {
		t.Fatalf("live manifest fails deep verify: %+v", rep)
	}
	if rep.Arrays != 3 || rep.LogRecords == 0 {
		t.Fatalf("unexpected manifest shape: %+v", rep)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for _, durable := range []bool{false, true} {
		ropts := opts
		ropts.Durability = durable
		r, err := Open(dir, ropts)
		if err != nil {
			t.Fatalf("reopen durable=%v: %v", durable, err)
		}
		if r.man == nil {
			t.Fatalf("reopen durable=%v lost the manifest", durable)
		}
		checkContents(t, r, want, fmt.Sprintf("reopen durable=%v", durable))
		if _, ok := r.arrays["Doomed"]; ok {
			t.Fatalf("reopen durable=%v resurrected a dropped array", durable)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestManifestRotation forces snapshot rotations with a tiny log
// threshold and asserts the chain survives them: one live generation,
// superseded files swept on durable reopen, every commit replayed.
func TestManifestRotation(t *testing.T) {
	const side = 8
	dir := t.TempDir()
	opts := smallOpts()
	opts.ChunkBytes = 1 << 10
	opts.Durability = true
	opts.ManifestRotateBytes = 2 << 10
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(schema2D("Rot", side)); err != nil {
		t.Fatal(err)
	}
	var want []*array.Dense
	for seed := int64(1); seed <= 20; seed++ {
		c := crashContent(seed, side)
		if _, err := s.Insert("Rot", DensePayload(c)); err != nil {
			t.Fatal(err)
		}
		want = append(want, c)
	}
	if got := s.Stats().ManifestRotations; got == 0 {
		t.Fatal("20 commits at a 2 KB threshold never rotated the log")
	}
	gen := s.man.gen
	if gen < 2 {
		t.Fatalf("generation still %d after rotations", gen)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("reopen after rotations: %v", err)
	}
	checkContents(t, r, map[string][]*array.Dense{"Rot": want}, "post-rotation reopen")
	rep, err := r.VerifyManifest()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("rotated manifest fails deep verify: %+v", rep)
	}
	if len(rep.StrayFiles) != 0 {
		t.Fatalf("durable reopen left manifest strays: %v", rep.StrayFiles)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestInsertMultiBasic pins the happy path: ids per array in payload
// order, visible immediately and after reopen, one manifest fsync for
// the whole batch.
func TestInsertMultiBasic(t *testing.T) {
	const side = 8
	dir := t.TempDir()
	opts := smallOpts()
	opts.ChunkBytes = 1 << 10
	opts.Durability = true
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A", "B", "C"} {
		if err := s.CreateArray(schema2D(name, side)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	contents := map[string][]*array.Dense{
		"A": {crashContent(1, side), crashContent(2, side)},
		"B": {crashContent(3, side)},
		"C": {crashContent(4, side)},
	}
	out, err := s.InsertMulti([]MultiInsert{
		{Array: "A", Payloads: []Payload{DensePayload(contents["A"][0]), DensePayload(contents["A"][1])}},
		{Array: "B", Payloads: []Payload{DensePayload(contents["B"][0])}},
		{Array: "C", Payloads: []Payload{DensePayload(contents["C"][0])}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out["A"]) != "[1 2]" || fmt.Sprint(out["B"]) != "[1]" || fmt.Sprint(out["C"]) != "[1]" {
		t.Fatalf("unexpected id assignment: %v", out)
	}
	st := s.Stats()
	if got := st.ManifestFsyncs - before.ManifestFsyncs; got != 1 {
		t.Fatalf("cross-array batch paid %d manifest fsyncs, want exactly 1", got)
	}
	// the whole cross-array batch is ONE commit record (with one op per
	// member array) and one physical append
	if got := st.ManifestRecords - before.ManifestRecords; got != 1 {
		t.Fatalf("cross-array batch paid %d commit records, want exactly 1", got)
	}
	if got := st.ManifestAppends - before.ManifestAppends; got != 1 {
		t.Fatalf("cross-array batch paid %d appends, want exactly 1", got)
	}
	checkContents(t, s, contents, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkContents(t, r, contents, "reopen")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// validation errors
	if _, err := s.InsertMulti(nil); err == nil {
		t.Fatal("empty InsertMulti accepted")
	}
	if _, err := r.InsertMulti([]MultiInsert{
		{Array: "A", Payloads: []Payload{DensePayload(crashContent(9, side))}},
		{Array: "A", Payloads: []Payload{DensePayload(crashContent(9, side))}},
	}); err == nil {
		t.Fatal("duplicate array name accepted")
	}
}

// TestInsertMultiRequiresManifest pins the legacy-mode error: a store
// on the per-array commit protocol cannot offer cross-array atomicity
// and must say so instead of faking it.
func TestInsertMultiRequiresManifest(t *testing.T) {
	const side = 8
	opts := smallOpts()
	opts.PerArrayCommit = true
	s := testStore(t, opts)
	if err := s.CreateArray(schema2D("L", side)); err != nil {
		t.Fatal(err)
	}
	_, err := s.InsertMulti([]MultiInsert{{Array: "L", Payloads: []Payload{DensePayload(crashContent(1, side))}}})
	if err == nil {
		t.Fatal("InsertMulti succeeded on a per-array-commit store")
	}
}

// manifestWriteFaultFS wraps a base FS and, while armed, fails the
// Write of any file opened for append under a MANIFEST-*.log name —
// the one failure mode that is genuinely uncertain (the record may be
// partially durable), which open-level fakes like fsio.Flaky cannot
// reach without also faulting the benign staging writes first.
type manifestWriteFaultFS struct {
	fsio.FS
	mu    sync.Mutex
	armed bool
}

func (f *manifestWriteFaultFS) arm(on bool) {
	f.mu.Lock()
	f.armed = on
	f.mu.Unlock()
}

func (f *manifestWriteFaultFS) hot() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.armed
}

func (f *manifestWriteFaultFS) Append(path string) (fsio.File, error) {
	file, err := f.FS.Append(path)
	base := filepath.Base(path)
	if err != nil || !strings.HasPrefix(base, manifestPrefix) || !strings.HasSuffix(base, ".log") {
		return file, err
	}
	return &manifestWriteFaultFile{File: file, fs: f}, nil
}

type manifestWriteFaultFile struct {
	fsio.File
	fs *manifestWriteFaultFS
}

func (fl *manifestWriteFaultFile) Write(p []byte) (int, error) {
	if fl.fs.hot() {
		return 0, fsio.ErrIO
	}
	return fl.File.Write(p)
}

// TestManifestAppendFailureDegradesAndHeals is the manifest analog of
// TestInsertMetaCommitFailureRollsBack: a failed log-append WRITE is an
// uncertain commit (the record may be partially durable), so the store
// must refuse further writes until Heal truncates the log back to its
// last known-good offset and re-verifies.
func TestManifestAppendFailureDegradesAndHeals(t *testing.T) {
	const side = 8
	ffs := &manifestWriteFaultFS{FS: fsio.OS}
	opts := smallOpts()
	opts.ChunkBytes = 1 << 10
	opts.Durability = true
	opts.FS = ffs
	opts.HealInterval = -1
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.CreateArray(schema2D("H", side)); err != nil {
		t.Fatal(err)
	}
	good := crashContent(1, side)
	if _, err := s.Insert("H", DensePayload(good)); err != nil {
		t.Fatal(err)
	}

	// fail exactly the manifest log append: staging succeeds, the
	// commit point does not, and the outcome is uncertain
	ffs.arm(true)
	if _, err := s.Insert("H", DensePayload(crashContent(2, side))); err == nil {
		t.Fatal("insert with a failing manifest append succeeded")
	}
	if h := s.Health(); !h.Degraded || !h.StoreDegraded {
		t.Fatalf("store not degraded after uncertain manifest append: %+v", h)
	}
	if _, err := s.Insert("H", DensePayload(crashContent(2, side))); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded insert error = %v, want ErrDegraded", err)
	}
	// committed state keeps reading
	got, err := s.Select("H", 1)
	if err != nil || !got.Dense.Equal(good) {
		t.Fatalf("degraded read broken: %v", err)
	}

	ffs.arm(false)
	if _, err := s.Heal(); err != nil {
		t.Fatalf("Heal after disk recovery: %v", err)
	}
	if h := s.Health(); h.Degraded {
		t.Fatalf("still degraded after Heal: %+v", h)
	}
	next := crashContent(3, side)
	id, err := s.Insert("H", DensePayload(next))
	if err != nil {
		t.Fatalf("insert after heal: %v", err)
	}
	got, err = s.Select("H", id)
	if err != nil || !got.Dense.Equal(next) {
		t.Fatalf("post-heal version unreadable: %v", err)
	}
	rep, err := s.VerifyManifest()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("healed manifest fails deep verify: %+v", rep)
	}
}

// TestLegacyMigration pins the in-place upgrade: a per-array store
// opened durably (without PerArrayCommit) migrates to the manifest on
// open, reads stay byte-identical, the per-array versions.json files
// are gone, and the migrated store keeps working and deep-verifies.
func TestLegacyMigration(t *testing.T) {
	const side = 8
	dir := t.TempDir()
	want := buildLegacyStore(t, dir, side)

	opts := smallOpts()
	opts.ChunkBytes = 1 << 10
	opts.Durability = true
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("migrating open: %v", err)
	}
	if s.man == nil {
		t.Fatal("durable open of a legacy store did not migrate to the manifest")
	}
	checkContents(t, s, want, "migrated")
	for name := range want {
		if _, err := os.Stat(filepath.Join(dir, name, metaFile)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("migration left %s/%s behind (err=%v)", name, metaFile, err)
		}
	}
	// the migrated store accepts cross-array batches immediately
	extra := map[string]*array.Dense{"LegA": crashContent(91, side), "LegB": crashContent(92, side)}
	out, err := s.InsertMulti([]MultiInsert{
		{Array: "LegA", Payloads: []Payload{DensePayload(extra["LegA"])}},
		{Array: "LegB", Payloads: []Payload{DensePayload(extra["LegB"])}},
	})
	if err != nil {
		t.Fatalf("InsertMulti on migrated store: %v", err)
	}
	for name, c := range extra {
		got, err := s.Select(name, out[name][0])
		if err != nil || !got.Dense.Equal(c) {
			t.Fatalf("migrated store post-insert read %s: %v", name, err)
		}
	}
	rep, err := s.VerifyManifest()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Enabled || !rep.Ok() {
		t.Fatalf("migrated manifest fails deep verify: %+v", rep)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// a pre-existing legacy store opened NON-durably must stay legacy
	// (read-only tooling never rewrites the on-disk format)
	legacyDir := t.TempDir()
	want2 := buildLegacyStore(t, legacyDir, side)
	ro, err := Open(legacyDir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ro.man != nil {
		t.Fatal("non-durable open rewrote a legacy store's format")
	}
	checkContents(t, ro, want2, "legacy non-durable")
	if _, err := os.Stat(filepath.Join(legacyDir, currentFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("non-durable open wrote CURRENT")
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationCrashMatrix is the satellite crash matrix over the
// legacy → manifest upgrade: every filesystem step of the migrating
// open is crashed once; after each crash the directory must be in
// exactly one of two states — fully legacy (no committed CURRENT) or
// fully migrated — and a durable reopen must serve every version
// byte-identical either way.
func TestMigrationCrashMatrix(t *testing.T) {
	const side = 8

	// template legacy store, rebuilt fresh per crash point (migration
	// mutates in place)
	build := func(t *testing.T, dir string) map[string][]*array.Dense {
		return buildLegacyStore(t, dir, side)
	}

	// counting run
	dir := t.TempDir()
	build(t, dir)
	counter := fsio.NewFault(0)
	opts := smallOpts()
	opts.ChunkBytes = 1 << 10
	opts.Durability = true
	opts.FS = counter
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("counting migration failed: %v", err)
	}
	if s.man == nil {
		t.Fatal("counting open did not migrate")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	total := counter.Steps()
	if total < 5 {
		t.Fatalf("migration only has %d fault points", total)
	}
	t.Logf("migration crash matrix: %d fault injection points", total)

	for n := int64(1); n <= total; n++ {
		dir := t.TempDir()
		want := build(t, dir)
		fault := fsio.NewFault(n)
		fopts := opts
		fopts.FS = fault
		if _, err := Open(dir, fopts); err == nil {
			// the crash may land after the commit point, in the benign
			// legacy-file cleanup whose errors migration swallows; the
			// open then succeeds on a fully migrated store
			if !fault.Crashed() {
				t.Fatalf("step %d/%d: crash never fired", n, total)
			}
		}

		// the on-disk state must be exactly one of the two formats:
		// a committed CURRENT means the manifest is authoritative;
		// no CURRENT means every per-array versions.json must still be
		// intact (migration must not mutate legacy state pre-commit)
		migrated := true
		if _, err := readCurrent(dir); err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("step %d: torn CURRENT after crash: %v", n, err)
			}
			migrated = false
		}
		if !migrated {
			for name := range want {
				if _, err := os.Stat(filepath.Join(dir, name, metaFile)); err != nil {
					t.Fatalf("step %d: neither format complete: CURRENT absent and %s/%s gone", n, name, metaFile)
				}
			}
		}

		ropts := smallOpts()
		ropts.ChunkBytes = 1 << 10
		ropts.Durability = true
		r, err := Open(dir, ropts)
		if err != nil {
			t.Fatalf("step %d: reopen after migration crash (migrated=%v): %v", n, migrated, err)
		}
		checkContents(t, r, want, fmt.Sprintf("step %d (migrated=%v)", n, migrated))
		// and the reopened store is writable (it completed migration)
		if _, err := r.Insert("LegA", DensePayload(crashContent(99, side))); err != nil {
			t.Fatalf("step %d: insert after recovery: %v", n, err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMigrationTransientFaults is the fsio.Flaky counterpart: a
// scripted EIO at every step of the migrating open must fail the open
// cleanly (no half-migrated store object), leave the directory
// readable in one format or the other, and a healthy retry must
// complete the migration with byte-identical reads.
func TestMigrationTransientFaults(t *testing.T) {
	const side = 8

	// counting run
	dir := t.TempDir()
	buildLegacyStore(t, dir, side)
	counting := fsio.NewFlaky(fsio.OS)
	opts := smallOpts()
	opts.ChunkBytes = 1 << 10
	opts.Durability = true
	opts.FS = counting
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("counting migration failed: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	total := counting.Steps()
	t.Logf("migration transient matrix: %d fault injection points", total)

	for n := int64(1); n <= total; n++ {
		dir := t.TempDir()
		want := buildLegacyStore(t, dir, side)
		flaky := fsio.NewFlaky(fsio.OS)
		flaky.FailAt(n, fsio.ErrIO)
		fopts := opts
		fopts.FS = flaky
		s, err := Open(dir, fopts)
		if err == nil {
			// the fault landed in a step whose failure migration
			// tolerates (benign cleanup); the store must be whole
			if flaky.Injected() == 0 {
				t.Fatalf("step %d/%d: fault never fired", n, total)
			}
			checkContents(t, s, want, fmt.Sprintf("transient step %d (tolerated)", n))
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		}

		// healthy retry on the plain filesystem
		ropts := opts
		ropts.FS = fsio.OS
		r, rerr := Open(dir, ropts)
		if rerr != nil {
			t.Fatalf("step %d: retry open: %v", n, rerr)
		}
		if r.man == nil {
			t.Fatalf("step %d: retry did not complete migration", n)
		}
		checkContents(t, r, want, fmt.Sprintf("transient step %d (retry)", n))
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
