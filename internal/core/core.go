// Package core implements the paper's primary contribution: the
// no-overwrite versioned storage manager for array data (§II). A Store
// manages named arrays, each with a tree (or, with Merge, a DAG) of
// versions. Committed versions are immutable; every update creates a new
// version.
//
// The insert path analyzes each new version so it can be encoded as a
// delta off an existing version, splits it into fixed-stride chunks,
// optionally compresses each chunk, and records the chunk locations in
// the version metadata (Fig. 1). The select path looks up the chunks
// overlapping the query region, reads and decompresses them, unwinds the
// delta chains, and assembles the result array (Fig. 2).
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arrayvers/internal/array"
	"arrayvers/internal/bitpack"
	"arrayvers/internal/cache"
	"arrayvers/internal/chunk"
	"arrayvers/internal/compress"
	"arrayvers/internal/delta"
	"arrayvers/internal/fsio"
)

// Options configures a Store.
type Options struct {
	// ChunkBytes is the target uncompressed chunk size (the paper's
	// compile-time parameter, 10 MB by default).
	ChunkBytes int64
	// Codec compresses chunk payloads after delta encoding (§III-B.2).
	Codec compress.Codec
	// DeltaMethod encodes dense chunk deltas; Hybrid by default.
	DeltaMethod delta.Method
	// AutoDelta makes Insert compare each new version against recent
	// versions and delta-encode it when that is smaller ("delta-ing is
	// performed automatically", §II-A). When false, every version is
	// materialized.
	AutoDelta bool
	// DeltaCandidates is how many recent versions Insert considers as
	// delta bases (1 = only the immediate predecessor).
	DeltaCandidates int
	// CoLocate stores all deltas of one chunk across versions in a single
	// chain file (§III-B.3: "co-locates chains of deltas belonging to
	// different versions but all corresponding to the same chunk"); when
	// false each version's chunk gets its own file. Co-location is the
	// default, "since they are more efficient".
	CoLocate bool
	// EstimateSample, when positive, sizes delta candidates from a cell
	// sample instead of full encodes (§IV-A).
	EstimateSample int
	// AdaptiveCodec enables compression per chunk only when a sample of
	// the payload predicts a worthwhile ratio — the adaptive scheme the
	// paper's §V-B leaves to future work ("it might be interesting to
	// adaptively enable LZ compression based on the data set size and the
	// anticipated compression ratios").
	AdaptiveCodec bool
	// AutoBatchK, when > 1, re-encodes every completed batch of K
	// versions with the optimal layout at insert time (§IV-E: "we can
	// accumulate a batch of K new versions, and compute the optimal
	// encoding of them together (in terms only of the other versions in
	// the batch)"). Batches are kept separate, which "also has the effect
	// of constraining the materialization matrix size and improving query
	// performance by avoiding very long delta chains". Superseded blobs
	// dangle until Compact.
	AutoBatchK int
	// Parallelism bounds the worker pool the select and insert hot paths
	// fan chunk work out on (read→decompress→delta-unwind on select,
	// encode→compress on insert). Zero or negative means GOMAXPROCS; 1
	// runs fully serial.
	Parallelism int
	// CacheBytes bounds the store-wide LRU of reconstructed chunks shared
	// across queries. Zero disables the cache (every select re-walks its
	// delta chains, the paper's Fig. 2 behavior); the cache trades memory
	// for skipping chain walks on repeated and overlapping version reads.
	CacheBytes int64
	// AutoTune configures the adaptive reorganizer: a background tuner
	// that watches the recorded select workload and re-lays arrays out
	// with PolicyWorkloadAware when the projected I/O savings clear
	// MinSavings (§IV-D closed-loop; see DESIGN.md "Adaptive
	// reorganization"). The zero value keeps the background loop off;
	// workload recording and forced Store.Tune passes work regardless.
	AutoTune AutoTuneOptions
	// Durability makes every commit crash-safe: chunk writes are fsynced
	// (file and directory) before the metadata commit, the metadata
	// commit itself is a durable manifest-log append (or, for
	// PerArrayCommit stores, a tmp-write + fsync + rename + parent-dir
	// fsync of versions.json), and Open runs crash recovery (see
	// DESIGN.md "Durability & recovery"). The first durable open of a
	// legacy store migrates it to the manifest in place unless
	// PerArrayCommit is set. Off by default so I/O accounting matches
	// the paper's tables; avstored and the avstore CLI turn it on.
	Durability bool
	// HealInterval is the background heal prober's period once an array
	// (or the whole store) has entered degraded read-only mode after an
	// uncertain commit failure (see DESIGN.md "Resilience & degraded
	// modes"). Zero means a 1s default; negative disables the background
	// prober entirely (Store.Heal still works when called directly). The
	// prober is armed lazily by the first degrade and disarms itself
	// once everything is writable again.
	HealInterval time.Duration
	// DisableGroupCommit turns off the insert group-commit coalescer:
	// every insert then pays its own chunks-dir fsync and metadata
	// commit instead of sharing one with concurrent inserts to the same
	// array. Exists for the ingest benchmark's per-insert-commit baseline
	// and for bisecting; production callers leave it off.
	DisableGroupCommit bool
	// PerArrayCommit keeps a legacy store on the PR 3 per-array
	// versions.json commit protocol instead of migrating it to the
	// store-wide manifest log on its first durable open (see DESIGN.md
	// "Manifest & commit log"). It only affects stores that have not
	// migrated yet: once a CURRENT pointer exists, the store always
	// opens manifest-format whatever this flag says. Exists for the
	// manifest benchmark's per-array baseline and for bisecting;
	// production callers leave it off. Cross-array InsertMulti requires
	// the manifest and fails under this flag.
	PerArrayCommit bool
	// ManifestRotateBytes is the manifest log size that triggers a
	// snapshot rotation. Zero means a 4 MiB default; negative disables
	// rotation (the log grows without bound).
	ManifestRotateBytes int64
	// FS overrides the filesystem used by every write path; nil means the
	// real OS. Tests inject fsio.Fault here to crash the store at an
	// arbitrary write/sync/rename step.
	FS fsio.FS
	// DisableMmap turns off the mmap-backed read path: chunk payloads are
	// then always fetched with plain positional reads and the decoded-chunk
	// cache never holds zero-copy planes. Mapping is on by default where
	// the platform supports it (see internal/fsio.MapSupported); this flag
	// exists for benchmarking the copying baseline and for bisecting.
	DisableMmap bool
}

// AutoTuneOptions parameterizes the adaptive reorganizer. Interval
// controls the background loop only; the thresholds also govern forced
// Tune passes.
type AutoTuneOptions struct {
	// Interval is the background tuner's pass period; 0 (the default)
	// disables the background loop (Tune can still be called directly).
	Interval time.Duration
	// MinSavings is the fractional projected I/O-cost reduction a
	// workload-aware re-layout must achieve before the tuner rewrites
	// anything (0 means the 0.10 default). It is the no-regression guard:
	// a workload the current layout already serves well never triggers a
	// reorganization.
	MinSavings float64
	// Decay multiplies every recorded pattern weight after each tuner
	// pass, making the histogram an exponentially decayed window of
	// recent traffic (0 means the 0.5 default; 1 disables decay).
	Decay float64
	// MinOps is the total recorded access weight an array needs before a
	// pass will even estimate costs (0 means the default of 8); it keeps
	// the tuner from thrashing on a handful of samples.
	MinOps float64
	// MatrixSample, when positive, builds the tuner's materialization
	// matrices from sampled cells (§IV-A), bounding pass cost on large
	// arrays.
	MatrixSample int
	// BatchK, when positive, re-encodes in independent batches of K
	// versions (§IV-E), bounding matrix size and delta-chain length for
	// tuner-triggered reorganizations.
	BatchK int
}

// withDefaults fills the zero thresholds.
func (a AutoTuneOptions) withDefaults() AutoTuneOptions {
	if a.MinSavings <= 0 {
		a.MinSavings = 0.10
	}
	if a.Decay <= 0 {
		a.Decay = 0.5
	}
	if a.Decay > 1 {
		a.Decay = 1
	}
	if a.MinOps <= 0 {
		a.MinOps = 8
	}
	return a
}

// DefaultCacheBytes is a reasonable decoded-chunk cache budget for
// interactive workloads (opt-in via Options.CacheBytes; the default
// Options keep the cache off so I/O accounting matches the paper's
// tables).
const DefaultCacheBytes = 256 << 20

// DefaultOptions mirrors the paper's defaults at full scale.
func DefaultOptions() Options {
	return Options{
		ChunkBytes:      chunk.DefaultChunkBytes,
		Codec:           compress.None,
		DeltaMethod:     delta.Hybrid,
		AutoDelta:       true,
		DeltaCandidates: 1,
		CoLocate:        true,
		EstimateSample:  4096,
	}
}

func (o *Options) fillDefaults() {
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = chunk.DefaultChunkBytes
	}
	if o.DeltaMethod == 0 {
		o.DeltaMethod = delta.Hybrid
	}
	if o.DeltaCandidates <= 0 {
		o.DeltaCandidates = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.FS == nil {
		o.FS = fsio.OS
	}
}

// Store is a single-node versioned storage system rooted at a directory.
//
// Locking: mu guards the array map and all version metadata. The select
// paths hold it only long enough to snapshot one array's metadata (see
// readView); chunk I/O and delta unwinding then proceed without it, so
// reads run concurrently with each other and with inserts. Destructive
// rewrites (Reorganize, Compact, DeleteArray) additionally take the
// per-array ioMu write latch so they cannot pull chunk files out from
// under an in-flight reader.
type Store struct {
	mu     sync.RWMutex
	dir    string
	opts   Options
	fs     fsio.FS // all write paths go through this (Options.FS)
	closed bool    // set by Close; guarded by mu
	arrays map[string]*arrayState
	// man is the store-wide manifest log — THE commit point of every
	// metadata mutation when non-nil (see manifest.go). Nil means the
	// store runs the legacy per-array versions.json commit protocol.
	// Set once by Open, immutable afterwards.
	man *manifest
	// epochs[name] is bumped whenever an array's on-disk encoding is
	// invalidated (Reorganize, DeleteVersion, DeleteArray); it is part of
	// every chunkCache key, so stale in-flight readers can never poison
	// the cache for the current generation. Guarded by mu.
	epochs map[string]uint64

	// chunkCache is the store-wide decoded-chunk LRU (nil when disabled).
	chunkCache *cache.Cache

	// maps manages read-only mmaps of committed chunk generations (see
	// mmap.go); inert when Options.DisableMmap is set or the platform
	// cannot map files.
	maps *genMaps

	// workload is the per-array access histogram the adaptive tuner
	// feeds on; every successful select records into it.
	workload *workloadRecorder
	// tuner is the background auto-tune loop (nil unless
	// Options.AutoTune.Interval > 0). Stopped by Close.
	tuner *Tuner
	// tunePasses/tuneReorgs count tuner activity for Stats().
	tunePasses atomic.Int64
	tuneReorgs atomic.Int64
	// tuneEst caches each array's tuner estimation inputs (cost matrix,
	// current layout) keyed by its mutation sequence, so a background
	// pass over an unmutated array re-evaluates costs against fresh
	// traffic without re-decoding the whole version history. Guarded by
	// tuneEstMu.
	tuneEstMu sync.Mutex
	tuneEst   map[string]*tuneEstimate
	// buildSeq names off-lock rewrite build directories uniquely so a
	// retried or concurrent rewrite can never scribble on another
	// build's files.
	buildSeq atomic.Int64

	// healthMu guards the degraded-mode state (see health.go). It is a
	// leaf lock: it may be taken while holding Store.mu, and statsMu may
	// be taken while holding it, but never the other way around.
	healthMu      sync.Mutex
	degraded      map[string]degradedInfo // array name -> why it is read-only
	storeDegraded *degradedInfo           // non-nil while the whole store is read-only (ENOSPC)
	healer        *healer                 // background heal prober; armed by the first degrade
	healerStopped bool                    // Close ran; never re-arm

	statsMu sync.Mutex
	stats   IOStats
	// kernelBase is the process-wide batched/fused kernel op count at
	// Open (or the last ResetStats); Stats reports the delta, so each
	// store's KernelBatchedOps starts at zero. Guarded by statsMu.
	kernelBase int64
	// recovery is what Open-time crash recovery repaired; immutable after
	// Open, merged into Stats() and never cleared by ResetStats.
	recovery RecoveryStats

	// prof is the always-on stage-level instrumentation (latency/byte
	// histograms for the select and commit pipelines, per-array cache
	// counters, decode-pool gauge); snapshot through Profile(). All its
	// state is atomic or internally locked — the hot paths record into
	// it without taking any store lock.
	prof *profile

	// clock returns commit timestamps; replaceable in tests.
	clock func() time.Time
}

// RecoveryStats summarizes what Open-time crash recovery repaired (only
// populated when Options.Durability is on).
type RecoveryStats struct {
	// TruncatedFiles/TruncatedBytes count chunk files whose torn or
	// garbage tails past the last committed frame were cut off.
	TruncatedFiles int64
	TruncatedBytes int64
	// RemovedFiles counts filesystem entries swept: metadata tmp files,
	// stale chunk generations, orphaned chunk files from uncommitted
	// inserts, and half-created array directories.
	RemovedFiles int64
	// DroppedVersions counts versions dropped because their chunk data
	// did not survive — zero for any store written with Durability on,
	// since the metadata commit point orders after the data sync.
	DroppedVersions int64
}

// IOStats counts storage-level activity since the last Reset. The cache
// counters cover the store-wide decoded-chunk LRU: CacheBytes and
// CacheEntries are current residency, the rest are cumulative.
type IOStats struct {
	BytesRead     int64
	BytesWritten  int64
	ChunksRead    int64
	ChunksWritten int64

	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	// CacheRejected counts decoded chunks too large to admit (bigger
	// than 1/16 of CacheBytes); a climbing value means the budget is too
	// small for the workload's chunks.
	CacheRejected int64
	CacheBytes    int64
	CacheEntries  int64

	// WorkloadOps is the cumulative count of recorded select accesses;
	// WorkloadPatterns is the current number of distinct access patterns
	// in the adaptive tuner's histogram.
	WorkloadOps      int64
	WorkloadPatterns int64
	// TunePasses counts adaptive-tuner passes (including ones skipped
	// below the MinOps gate); TuneReorganizes counts the passes that
	// actually triggered a re-layout.
	TunePasses      int64
	TuneReorganizes int64

	// GroupCommits counts shared durable commit points on the insert
	// path; GroupCommitVersions counts the versions they installed, so
	// GroupCommitVersions/GroupCommits is the realized coalescing factor
	// (1.0 means no concurrent inserts ever shared a commit).
	GroupCommits        int64
	GroupCommitVersions int64
	// ManifestRecords counts metadata commits through the store-wide
	// manifest log; ManifestAppends counts the physical log appends
	// that carried them, so ManifestRecords/ManifestAppends is the
	// cross-array coalescing factor. ManifestFsyncs counts log fsyncs
	// (equal to appends under Durability); ManifestRotations counts
	// snapshot rotations. All zero on legacy per-array stores.
	ManifestRecords   int64
	ManifestAppends   int64
	ManifestFsyncs    int64
	ManifestRotations int64
	// InsertOrphanFiles/InsertOrphanBytes count chunk blobs written by a
	// failed insert and reclaimed at the failure site (removed files and
	// truncated chain-file tails), instead of dangling until a durable
	// reopen's recovery sweep or a Compact.
	InsertOrphanFiles int64
	InsertOrphanBytes int64

	// DegradedEntered/DegradedHealed count transitions into and out of
	// degraded read-only mode (array-level and store-wide); the
	// difference is the number of open incidents. DegradedArrays and
	// StoreDegraded are current gauges (ResetStats leaves the live state
	// alone, so they reappear on the next Stats call while degraded).
	// WritesRejectedDegraded counts mutations refused with ErrDegraded.
	DegradedEntered        int64
	DegradedHealed         int64
	DegradedArrays         int64
	StoreDegraded          int64
	WritesRejectedDegraded int64

	// Recovery* mirror RecoveryStats: what Open-time crash recovery
	// repaired. Fixed at Open; ResetStats leaves them alone.
	RecoveryTruncatedFiles  int64
	RecoveryTruncatedBytes  int64
	RecoveryRemovedFiles    int64
	RecoveryDroppedVersions int64

	// MmapReads/MmapBytesRead count chunk frames decoded straight out of
	// a generation mapping (no read syscall, no frame copy); they are a
	// subset of ChunksRead/BytesRead. MmapPlanes/MmapPlaneBytes count
	// zero-copy planes admitted to the decoded-chunk cache — cached cell
	// data that aliases the page cache instead of the heap.
	// MmapDeferredUnlinks counts generation removals whose directory
	// unlink outlived the retiring rewrite because cached planes still
	// referenced the mapping.
	MmapReads           int64
	MmapBytesRead       int64
	MmapPlanes          int64
	MmapPlaneBytes      int64
	MmapDeferredUnlinks int64

	// KernelBatchedOps counts batched bitpack unpacks plus fused delta
	// applies executed since Open (the kernels are process-global; each
	// store baselines the counters at Open, so concurrently open stores
	// see each other's ops).
	KernelBatchedOps int64
}

// Open creates or reopens a store rooted at dir. A CURRENT pointer in
// the root marks the store manifest-format: Open replays the snapshot
// plus the log to rebuild every array (see manifest.go); otherwise the
// legacy per-array versions.json files are scanned, and the first
// durable open migrates them to the manifest in place (unless
// Options.PerArrayCommit opts out). With Options.Durability on, Open
// also runs crash recovery: it sweeps commit leftovers (metadata tmp
// files, stale manifest generations, stale chunk generations, orphaned
// chunk files), truncates torn chunk-file and manifest-log tails, and
// reconciles the version metadata against the payloads that survived;
// what it repaired is reported through Stats().
func Open(dir string, opts Options) (*Store, error) {
	opts.fillDefaults()
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("core: create store dir: %w", err)
	}
	s := &Store{
		dir:        dir,
		opts:       opts,
		fs:         opts.FS,
		arrays:     make(map[string]*arrayState),
		epochs:     make(map[string]uint64),
		chunkCache: cache.New(opts.CacheBytes),
		maps:       newGenMaps(opts.DisableMmap),
		degraded:   make(map[string]degradedInfo),
		workload:   newWorkloadRecorder(),
		tuneEst:    make(map[string]*tuneEstimate),
		prof:       newProfile(),
		clock:      time.Now,
	}
	s.kernelBase = kernelOps()
	// cached zero-copy planes pin their generation's mapping; the release
	// must follow every way an entry can leave the cache, so it hangs off
	// the cache's eviction callback rather than any one invalidation site
	s.chunkCache.SetOnEvict(func(_ cache.Key, v cache.Value) {
		if md, ok := v.(*mmapDense); ok {
			md.set.release()
		}
	})
	if _, err := os.Stat(filepath.Join(dir, currentFile)); err == nil {
		if err := s.openManifestStore(); err != nil {
			return nil, err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("core: stat %s: %w", currentFile, err)
	} else if err := s.openLegacyStore(); err != nil {
		return nil, err
	}
	s.startTuner()
	return s, nil
}

// openManifestStore replays an existing manifest store and, when
// durable, sweeps root debris and runs per-array crash recovery.
func (s *Store) openManifestStore() error {
	man, err := openManifest(s)
	if err != nil {
		return err
	}
	s.man = man
	for name, doc := range man.state {
		s.arrays[name] = &arrayState{arrayMeta: *doc, dir: filepath.Join(s.dir, name)}
	}
	if !s.opts.Durability {
		return nil
	}
	if err := man.sweepRootLocked(); err != nil {
		return fmt.Errorf("core: manifest sweep: %w", err)
	}
	t0 := time.Now()
	if err := s.recoverLocked(); err != nil {
		return fmt.Errorf("core: crash recovery: %w", err)
	}
	s.prof.recoveryNanos.Store(time.Since(t0).Nanoseconds())
	return nil
}

// openLegacyStore scans the per-array versions.json files, runs crash
// recovery when durable, and then — the first durable open without
// PerArrayCommit — migrates the store to the manifest in place. A
// fresh store (no array directories at all) is born manifest-format
// even without Durability: there is nothing to migrate, and new stores
// should all speak the same commit protocol. Only a pre-existing
// legacy store opened non-durably is left untouched, so read-only
// tooling never rewrites a store's format behind its owner's back.
func (s *Store) openLegacyStore() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("core: read store dir: %w", err)
	}
	sawDir := false
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sawDir = true
		adir := filepath.Join(s.dir, e.Name())
		if strings.HasSuffix(e.Name(), tombstoneSuffix) {
			// a committed DeleteArray whose post-commit sweep was
			// interrupted; never load it, remove it when recovering
			if s.opts.Durability {
				if err := s.fs.RemoveAll(adir); err != nil {
					return fmt.Errorf("core: sweep deleted array %q: %w", e.Name(), err)
				}
				s.recovery.RemovedFiles++
			}
			continue
		}
		st, err := loadArrayState(adir)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				// a directory without committed metadata is a crashed
				// CreateArray: the array never existed. Recovery sweeps
				// it; a non-durable open just skips it so read-only
				// tools still work on a store with crash debris
				if s.opts.Durability {
					if rerr := s.fs.RemoveAll(adir); rerr != nil {
						return fmt.Errorf("core: sweep half-created array %q: %w", e.Name(), rerr)
					}
					s.recovery.RemovedFiles++
				}
				continue
			}
			return fmt.Errorf("core: load array %q: %w", e.Name(), err)
		}
		s.arrays[st.Schema.Name] = st
	}
	if s.opts.Durability {
		t0 := time.Now()
		if err := s.recoverLocked(); err != nil {
			return fmt.Errorf("core: crash recovery: %w", err)
		}
		s.prof.recoveryNanos.Store(time.Since(t0).Nanoseconds())
	}
	if !s.opts.PerArrayCommit && (s.opts.Durability || !sawDir) {
		man, err := s.migrateToManifest()
		if err != nil {
			return fmt.Errorf("core: manifest migration: %w", err)
		}
		s.man = man
	}
	return nil
}

// Options returns the store's configuration.
func (s *Store) Options() Options { return s.opts }

// ErrClosed is returned (wrapped) by operations attempted after Close;
// match it with errors.Is.
var ErrClosed = fmt.Errorf("core: store is closed")

// Close shuts the store down: it marks the store closed (subsequent
// operations fail with a "store is closed" error), then waits for every
// in-flight query's chunk I/O to drain via the per-array latches. All
// metadata is durable at the end of each mutation, so Close has nothing
// to flush; its job is to make teardown deterministic for daemons and
// signal handlers. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	tuner := s.tuner
	arrays := make([]*arrayState, 0, len(s.arrays))
	for _, st := range s.arrays {
		arrays = append(arrays, st)
	}
	s.mu.Unlock()
	// stop the background tuner before draining the latches: an
	// in-flight pass fails fast on the closed flag and releases whatever
	// it holds
	if tuner != nil {
		tuner.Stop()
	}
	// the heal prober fails fast on the closed flag the same way
	s.stopHealer()
	for _, st := range arrays {
		// drain writers first: an in-flight stager finishes encoding,
		// then its commit leader fails fast on the closed flag and wakes
		// every waiter with ErrClosed
		st.writeMu.Lock()
		st.writeMu.Unlock()
		st.syncMu.Lock()
		st.syncMu.Unlock()
		st.commitMu.Lock()
		st.commitMu.Unlock()
		st.ioMu.Lock()
		st.ioMu.Unlock()
	}
	// with every latch drained no query can touch mapped bytes again:
	// sweep the cache so zero-copy planes release their mapping refs (a
	// retired generation's pending unlink completes here), then unmap
	// whatever is still live
	for _, st := range arrays {
		s.chunkCache.InvalidateArray(st.Schema.Name)
	}
	s.maps.closeAll()
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the I/O and cache counters.
func (s *Store) Stats() IOStats {
	s.statsMu.Lock()
	out := s.stats
	out.KernelBatchedOps = kernelOps() - s.kernelBase
	s.statsMu.Unlock()
	if s.maps != nil {
		out.MmapDeferredUnlinks = s.maps.deferred.Load()
	}
	cs := s.chunkCache.Stats()
	out.CacheHits = cs.Hits
	out.CacheMisses = cs.Misses
	out.CacheEvictions = cs.Evictions
	out.CacheRejected = cs.Rejected
	out.CacheBytes = cs.Bytes
	out.CacheEntries = cs.Entries
	out.RecoveryTruncatedFiles = s.recovery.TruncatedFiles
	out.RecoveryTruncatedBytes = s.recovery.TruncatedBytes
	out.RecoveryRemovedFiles = s.recovery.RemovedFiles
	out.RecoveryDroppedVersions = s.recovery.DroppedVersions
	out.WorkloadOps, out.WorkloadPatterns = s.workload.totals()
	out.TunePasses = s.tunePasses.Load()
	out.TuneReorganizes = s.tuneReorgs.Load()
	s.healthMu.Lock()
	out.DegradedArrays = int64(len(s.degraded))
	if s.storeDegraded != nil {
		out.StoreDegraded = 1
	}
	s.healthMu.Unlock()
	return out
}

// Recovery returns what Open-time crash recovery repaired.
func (s *Store) Recovery() RecoveryStats { return s.recovery }

// ResetStats zeroes the I/O counters and the cache's cumulative counters
// (cache residency is untouched).
func (s *Store) ResetStats() {
	s.statsMu.Lock()
	s.stats = IOStats{}
	s.kernelBase = kernelOps()
	s.statsMu.Unlock()
	s.chunkCache.ResetCounters()
}

// kernelOps is the process-wide count of batched-kernel invocations:
// bulk bitpack unpacks through the batched kernel plus fused delta
// applies.
func kernelOps() int64 {
	return bitpack.BatchedOps() + delta.FusedOps()
}

func (s *Store) addRead(bytes int64) {
	s.statsMu.Lock()
	s.stats.BytesRead += bytes
	s.stats.ChunksRead++
	s.statsMu.Unlock()
}

func (s *Store) addMmapRead(bytes int64) {
	s.statsMu.Lock()
	s.stats.BytesRead += bytes
	s.stats.ChunksRead++
	s.stats.MmapReads++
	s.stats.MmapBytesRead += bytes
	s.statsMu.Unlock()
}

func (s *Store) addMmapPlane(bytes int64) {
	s.statsMu.Lock()
	s.stats.MmapPlanes++
	s.stats.MmapPlaneBytes += bytes
	s.statsMu.Unlock()
}

func (s *Store) addWrite(bytes int64) {
	s.statsMu.Lock()
	s.stats.BytesWritten += bytes
	s.stats.ChunksWritten++
	s.statsMu.Unlock()
}

func (s *Store) addGroupCommit(versions int) {
	s.statsMu.Lock()
	s.stats.GroupCommits++
	s.stats.GroupCommitVersions += int64(versions)
	s.statsMu.Unlock()
}

func (s *Store) addInsertOrphans(files, bytes int64) {
	if files == 0 && bytes == 0 {
		return
	}
	s.statsMu.Lock()
	s.stats.InsertOrphanFiles += files
	s.stats.InsertOrphanBytes += bytes
	s.statsMu.Unlock()
}

// --- per-array state and metadata ---

// chunkEntry records where one chunk of one version lives on disk and how
// it is encoded (the Version Metadata of Fig. 1).
type chunkEntry struct {
	File   string `json:"file"`
	Offset int64  `json:"off"`
	Length int64  `json:"len"`
	Codec  uint8  `json:"codec"`
	// Base is the version this chunk is delta'ed against, or -1 when the
	// chunk is materialized.
	Base int `json:"base"`
}

// versionMeta is the per-version metadata record.
type versionMeta struct {
	ID      int       `json:"id"`
	Parents []int     `json:"parents,omitempty"`
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"` // "insert", "branch", "merge"
	Deleted bool      `json:"deleted,omitempty"`
	// Chunks maps attribute name -> chunk key -> location.
	Chunks map[string]map[string]chunkEntry `json:"chunks"`
}

// BranchRef records the provenance of a branched array.
type BranchRef struct {
	Array   string `json:"array"`
	Version int    `json:"version"`
}

// arrayMeta is the durable metadata of one named array — exactly the
// fields serialized into a manifest record (or, on legacy stores, into
// versions.json). Mutators never edit the live copy in place: they
// build a staged arrayMeta (metaClone), commit it with commitMeta, and
// install it only after the commit succeeds, so a failed commit can
// never leave in-memory metadata referencing an uncommitted version
// (see insert.go "The insert commit path"). Committed documents are
// immutable: the manifest retains the last committed doc of every
// array for its rotation snapshots, which is only sound because every
// later mutation stages against a fresh clone.
type arrayMeta struct {
	Schema       array.Schema   `json:"schema"`
	SparseRep    bool           `json:"sparseRep"`
	Fill         int64          `json:"fill"`
	ChunkSide    []int64        `json:"chunkSide"`
	NextID       int            `json:"nextId"`
	Versions     []*versionMeta `json:"versions"`
	BranchedFrom *BranchRef     `json:"branchedFrom,omitempty"`
	// Format is the on-disk chunk format: formatRaw for pre-frame stores
	// (absent in their metadata), formatFramed for checksummed frames.
	Format int `json:"format,omitempty"`
	// Gen numbers the committed chunks directory ("chunks" for 0,
	// "chunks.gN" after N destructive rewrites). Reorganize and Compact
	// build generation N+1 beside the live one and switch with the
	// metadata commit, so a crash can never leave committed metadata
	// pointing at half-rewritten payloads.
	Gen int `json:"gen,omitempty"`
	// FileSeq names per-version chunk files uniquely so re-encodes write
	// fresh files instead of truncating ones a committed version (or an
	// in-flight reader) still references. Accessed atomically: insert
	// staging bumps it with no store lock held.
	FileSeq int64 `json:"fileSeq,omitempty"`
}

// arrayState is one named array: its durable metadata plus the runtime
// latches and staging state.
type arrayState struct {
	arrayMeta

	dir string `json:"-"`

	// ioMu is the chunk-file latch: readers hold it shared for the
	// duration of their chunk I/O (acquired under Store.mu, released
	// after the query assembles), destructive rewrites hold it exclusive
	// while replacing or removing the chunks directory. Appends (Insert)
	// need no latch: a reader's metadata snapshot only references offsets
	// written before the snapshot was taken.
	ioMu sync.RWMutex

	// reorgMu serializes destructive rewrites (Reorganize, Compact) on
	// this array without blocking readers or inserts; it is always
	// acquired before Store.mu, never while holding it.
	reorgMu sync.Mutex

	// writeMu is the per-array write latch: it serializes insert staging
	// (payload resolution, plane encoding, blob appends) on this array
	// without holding Store.mu, so inserts to different arrays encode
	// and fsync concurrently. Acquired before Store.mu, never while
	// holding it.
	writeMu sync.Mutex
	// syncMu and commitMu pipeline the group commit in two stages:
	// syncMu admits one leader to the data-sync stage (drain pending,
	// fsync every staged file and the chunks dir), commitMu admits one
	// to the metadata stage (validate, install, commit via commitMeta —
	// a manifest-log append, or the versions.json rename on legacy
	// stores). A leader acquires commitMu BEFORE releasing syncMu, so
	// batches install in drain order, while the next leader's fsyncs
	// overlap this leader's metadata commit.
	//
	// commitMu doubles as the array's metadata WRITER latch: insert
	// leaders run the metadata commit with Store.mu released (so selects
	// and staging never stall behind the commit's fsyncs), which is only
	// safe because every other metadata writer on the array —
	// DeleteVersion, Reorganize, Compact — also holds commitMu across
	// its saveMeta. Lock order: syncMu < commitMu < writeMu < Store.mu
	// < pendMu; the manifest's own latches are leaves below all of
	// these (commit leaders append while holding commitMu, sometimes
	// Store.mu too, and the manifest never takes a store lock back).
	syncMu   sync.Mutex
	commitMu sync.Mutex
	// pendMu guards pending and stageNext.
	pendMu sync.Mutex
	// pending holds staged, uncommitted inserts in stage order.
	pending []*stagedInsert
	// stageNext is the id the next staged insert will reserve; always
	// >= NextID. A stage-time failure rolls its own reservation back
	// (under writeMu, so no later reservation exists); ids lost to
	// commit-time failures become permanent gaps — ids are never reused.
	stageNext int

	// seq counts metadata mutations (insert, delete-version, rewrite
	// commits). An off-lock rewrite snapshots it and only commits if it
	// is unchanged, so a build can never publish entries computed from
	// superseded contents. Guarded by Store.mu.
	seq uint64

	// cachedView memoizes the cloned metadata snapshot between
	// mutations, so repeated selects pay O(1) for metadata regardless of
	// version count. Mutators clear it at the top of their critical
	// section (they hold Store.mu exclusively, so no reader can observe
	// the window between mutation and clear); readers rebuild and store
	// it under the read lock.
	cachedView atomic.Pointer[readView]
}

func (st *arrayState) version(id int) (*versionMeta, error) {
	for _, v := range st.Versions {
		if v.ID == id && !v.Deleted {
			return v, nil
		}
	}
	return nil, fmt.Errorf("core: array %q has no version %d", st.Schema.Name, id)
}

func (st *arrayState) live() []*versionMeta {
	var out []*versionMeta
	for _, v := range st.Versions {
		if !v.Deleted {
			out = append(out, v)
		}
	}
	return out
}

func (st *arrayState) chunker() (*chunk.Chunker, error) {
	return chunk.NewWithSide(st.Schema.Shape(), st.ChunkSide)
}

const metaFile = "versions.json"

func loadArrayState(dir string) (*arrayState, error) {
	raw, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, err
	}
	var st arrayState
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("corrupt metadata: %w", err)
	}
	if err := st.Schema.Validate(); err != nil {
		return nil, fmt.Errorf("corrupt metadata: %w", err)
	}
	st.dir = dir
	return &st, nil
}

// chunksDirName is the name of the committed chunks directory for a
// generation number.
func chunksDirName(gen int) string {
	if gen == 0 {
		return "chunks"
	}
	return fmt.Sprintf("chunks.g%d", gen)
}

// chunksDir returns the array's committed chunks directory.
func (st *arrayState) chunksDir() string {
	return filepath.Join(st.dir, chunksDirName(st.Gen))
}

// metaClone snapshots the array's durable metadata for a staged
// mutation: the version slice header is cloned (pointees are shared —
// a mutator that edits a version clones that versionMeta and swaps the
// pointer in its staged slice), and FileSeq is loaded atomically since
// insert staging bumps the live counter with no store lock held.
// Callers hold Store.mu.
func (st *arrayState) metaClone() arrayMeta {
	return arrayMeta{
		Schema:       st.Schema,
		SparseRep:    st.SparseRep,
		Fill:         st.Fill,
		ChunkSide:    st.ChunkSide,
		NextID:       st.NextID,
		Versions:     append([]*versionMeta(nil), st.Versions...),
		BranchedFrom: st.BranchedFrom,
		Format:       st.Format,
		Gen:          st.Gen,
		FileSeq:      atomic.LoadInt64(&st.FileSeq),
	}
}

// installMeta publishes a committed staged arrayMeta into the live
// state. Only the fields mutators change are written: Schema, ChunkSide,
// and BranchedFrom are immutable after creation and read lock-free
// through reader views, so rewriting them (even with equal values) would
// race those reads. SparseRep/Fill are written only when they actually
// change — the first version fixing the representation — which no
// lock-free reader can observe: a reader only reaches its SparseRep read
// after its snapshot resolved the queried version, and a pre-install
// snapshot holds no versions. FileSeq is deliberately not installed:
// concurrent stagers bump the live counter atomically while a commit is
// in flight, and the staged snapshot may be behind it. Callers hold
// Store.mu exclusively.
//
//avlint:installer
func (st *arrayState) installMeta(m arrayMeta) {
	if st.SparseRep != m.SparseRep {
		st.SparseRep = m.SparseRep
	}
	if st.Fill != m.Fill {
		st.Fill = m.Fill
	}
	st.NextID = m.NextID
	st.Versions = m.Versions
	st.Format = m.Format
	st.Gen = m.Gen
}

// saveMeta commits an array's current in-memory metadata; mutators that
// stage changes first commit the staged copy with commitMeta and
// install it only on success.
func (s *Store) saveMeta(st *arrayState) error {
	m := st.metaClone()
	return s.commitMeta(st, &m)
}

// saveMetaDoc is the legacy per-array commit (PerArrayCommit stores
// and pre-migration opens; manifest stores commit through
// s.man.commit instead — see commitMeta): marshal to a tmp file,
// rename over versions.json, and — with Durability on — fsync the tmp
// file before the rename and the array directory after it. The rename
// is the commit point of the mutation: chunk payloads are synced
// before it, so once the new metadata is durable everything it
// references is too, and anything it does not reference is garbage for
// recovery and Compact to reclaim.
func (s *Store) saveMetaDoc(dir string, m *arrayMeta) error {
	raw, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, metaFile+".tmp")
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := f.Write(raw)
	if werr == nil && s.opts.Durability {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	// failures above are benign: the commit definitively did not happen
	// and the tmp file is debris. From the rename on, a failure's on-disk
	// effect is uncertain (the new document may be in place, durably or
	// not), so wrap it for the degraded-mode classifier (health.go).
	if err := s.fs.Rename(tmp, filepath.Join(dir, metaFile)); err != nil {
		return uncertain(err)
	}
	if s.opts.Durability {
		return uncertain(s.fs.SyncDir(dir))
	}
	return nil
}

// --- array lifecycle (the five basic operations, §II) ---

// CreateArray initializes a named array with the given schema. The first
// payload's representation (dense or sparse) is fixed at first insert.
func (s *Store) CreateArray(schema array.Schema) error {
	if err := schema.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.createArrayLocked(schema, nil)
}

func (s *Store) createArrayLocked(schema array.Schema, branchedFrom *BranchRef) error {
	if s.closed {
		return ErrClosed
	}
	if err := s.writeGate(schema.Name); err != nil {
		return err
	}
	if _, ok := s.arrays[schema.Name]; ok {
		return fmt.Errorf("core: array %q already exists", schema.Name)
	}
	dir := filepath.Join(s.dir, schema.Name)
	if err := s.fs.MkdirAll(filepath.Join(dir, "chunks")); err != nil {
		s.noteDiskPressure(err)
		return err
	}
	if s.opts.Durability && s.man != nil {
		// On a manifest store the directory chain must be durable BEFORE
		// the commit record: the manifest never syncs the array directory
		// again (no per-array rename commit), and chunk fsyncs inside a
		// directory whose entry a crash can drop would silently lose
		// committed data. A failure here is benign — nothing references
		// the array yet.
		err := s.fs.SyncDir(dir)
		if err == nil {
			err = s.fs.SyncDir(s.dir)
		}
		if err != nil {
			s.noteDiskPressure(err)
			_ = s.fs.RemoveAll(dir)
			return err
		}
	}
	elem := schema.Attrs[0].Type.Size()
	ck, err := chunk.New(schema.Shape(), elem, s.opts.ChunkBytes)
	if err != nil {
		return err
	}
	st := &arrayState{
		arrayMeta: arrayMeta{
			Schema:       schema,
			ChunkSide:    ck.Side(),
			NextID:       1,
			BranchedFrom: branchedFrom,
			Format:       formatFramed,
		},
		dir: dir,
	}
	err = s.saveMeta(st)
	if err == nil && s.opts.Durability && s.man == nil {
		// legacy commit: the array directory's entry in the store root
		// must survive too. (A manifest store needs no root sync — the
		// commit record is durable in the log, and recovery recreates a
		// lost directory entry from it.)
		err = uncertain(s.fs.SyncDir(s.dir))
	}
	if err != nil {
		// the array was never visible; removing its directory resolves
		// any on-disk uncertainty (a metadata rename that secretly
		// landed) by deleting it. Only if that also fails can a phantom
		// array survive to the next Open — degrade the store so writes
		// stop until the disk recovers. (On a manifest store an
		// uncertain commit already degraded the store via the poisoned
		// log, and the heal's truncation resolves the uncertainty.)
		s.noteDiskPressure(err)
		if rerr := s.fs.RemoveAll(dir); rerr != nil && isUncertain(err) {
			s.degradeStore(err)
		}
		return err
	}
	s.arrays[schema.Name] = st
	return nil
}

// tombstoneSuffix marks an array directory whose deletion committed but
// whose removal may not have finished. Array names cannot contain dots
// (array.Schema validation), so the suffix can never collide with a
// live array.
const tombstoneSuffix = ".deleting"

// DeleteArray removes an array and all of its versions. On a manifest
// store the commit point is a single drop record appended to the
// store-wide log; on a legacy store it is a rename to a tombstone name
// (made durable with a store-root sync). Either way the tree removal
// happens after the commit, so a crash can only ever leave debris for
// Open-time recovery to sweep — never a half-deleted array that
// resurrects with versions missing.
//
// The array's commitMu is held across the commit: an insert leader
// runs its metadata commit with Store.mu released, and without this
// latch a delete + same-name recreate could slip into that window,
// landing the old array's staged metadata under the recreated array's
// name.
func (s *Store) DeleteArray(name string) error {
	if err := s.writeGate(name); err != nil {
		return err
	}
	st, err := s.lockArray(name, func(st *arrayState) []*sync.Mutex {
		return []*sync.Mutex{&st.commitMu}
	})
	if err != nil {
		return err
	}
	defer st.commitMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.arrays[name] != st {
		return fmt.Errorf("core: no array %q", name)
	}
	if s.man != nil {
		st.ioMu.Lock()
		err = s.man.commit([]manifestOp{{Name: name, Drop: true}})
		if err != nil {
			st.ioMu.Unlock()
			s.noteCommitFailure(st, err)
			return err
		}
		// post-commit garbage collection; a failure just leaves an
		// unreferenced directory for the next durable open's root sweep.
		// The removal is routed through the generation-map retire so it
		// defers past cached zero-copy planes; the invalidate below (still
		// under Store.mu, with no reader able to start meanwhile) drains
		// those refs, so the unlink always lands before we return.
		dir := st.dir
		s.maps.retire(st.chunksDir(), func() { _ = s.fs.RemoveAll(dir) })
		st.ioMu.Unlock()
	} else {
		tomb := st.dir + tombstoneSuffix
		st.ioMu.Lock()
		err = s.fs.Rename(st.dir, tomb)
		if err == nil && s.opts.Durability {
			err = s.fs.SyncDir(s.dir)
		}
		st.ioMu.Unlock()
		if err != nil {
			// the tombstone rename's effect is uncertain: the directory
			// may already be renamed while memory keeps serving the
			// array. The heal restores the live name from the tombstone
			// (see healArray).
			s.noteCommitFailure(st, uncertain(err))
			return err
		}
		// post-commit garbage collection; a failure just leaves the
		// tombstone for the next Open's recovery. The mapping survives the
		// tombstone rename (it pins inodes, not names), so retire is keyed
		// by the pre-rename chunks path.
		s.maps.retire(st.chunksDir(), func() { _ = s.fs.RemoveAll(tomb) })
	}
	delete(s.arrays, name)
	s.invalidateArrayLocked(name)
	s.workload.drop(name)
	s.dropTuneEstimate(name)
	return nil
}

// invalidateArrayLocked drops the array's cached chunks and bumps its
// epoch so in-flight readers holding the old generation cannot repopulate
// the cache with entries the next reader would see. Callers hold mu.
func (s *Store) invalidateArrayLocked(name string) {
	s.epochs[name]++
	s.chunkCache.InvalidateArray(name)
}

// ListArrays returns the names of all arrays, sorted (the List operation,
// §II-C).
func (s *Store) ListArrays() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.arrays))
	for n := range s.arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Schema returns the schema of a named array.
func (s *Store) Schema(name string) (array.Schema, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.arrays[name]
	if !ok {
		return array.Schema{}, fmt.Errorf("core: no array %q", name)
	}
	return st.Schema, nil
}

// VersionInfo is the public view of a version's metadata.
type VersionInfo struct {
	ID      int
	Parents []int
	Time    time.Time
	Kind    string
	// Bytes is the total on-disk payload size of the version's chunks.
	Bytes int64
	// DeltaBases lists the distinct versions this version's chunks are
	// delta'ed against (empty for fully materialized versions).
	DeltaBases []int
}

// Versions returns the ordered list of all live versions of an array
// (the Get Versions operation, §II-C).
func (s *Store) Versions(name string) ([]VersionInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.arrays[name]
	if !ok {
		return nil, fmt.Errorf("core: no array %q", name)
	}
	var out []VersionInfo
	for _, v := range st.live() {
		out = append(out, versionInfoOf(v))
	}
	return out, nil
}

func versionInfoOf(v *versionMeta) VersionInfo {
	info := VersionInfo{ID: v.ID, Parents: append([]int(nil), v.Parents...), Time: v.Time, Kind: v.Kind}
	bases := map[int]bool{}
	for _, chunks := range v.Chunks {
		for _, e := range chunks {
			info.Bytes += e.Length
			if e.Base >= 0 {
				bases[e.Base] = true
			}
		}
	}
	for b := range bases {
		info.DeltaBases = append(info.DeltaBases, b)
	}
	sort.Ints(info.DeltaBases)
	return info
}

// VersionAt returns the ID of the newest version committed at or before
// t ("facilities to look up versions that exist at a specific date and
// time", §II-C).
func (s *Store) VersionAt(name string, t time.Time) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.arrays[name]
	if !ok {
		return 0, fmt.Errorf("core: no array %q", name)
	}
	best := 0
	for _, v := range st.live() {
		if !v.Time.After(t) && v.ID > best {
			best = v.ID
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("core: array %q has no version at or before %v", name, t)
	}
	return best, nil
}

// ArrayInfo describes an array's size and sparsity (§II-C "methods to
// retrieve properties (e.g., size, sparsity, etc.) of the arrays").
type ArrayInfo struct {
	Schema      array.Schema
	SparseRep   bool
	NumVersions int
	DiskBytes   int64
	LogicalSize int64 // uncompressed bytes of one dense version
	ChunkSide   []int64
	NumChunks   int64
}

// Info returns an array's properties.
func (s *Store) Info(name string) (ArrayInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.arrays[name]
	if !ok {
		return ArrayInfo{}, fmt.Errorf("core: no array %q", name)
	}
	ck, err := st.chunker()
	if err != nil {
		return ArrayInfo{}, err
	}
	info := ArrayInfo{
		Schema:      st.Schema,
		SparseRep:   st.SparseRep,
		NumVersions: len(st.live()),
		ChunkSide:   append([]int64(nil), st.ChunkSide...),
		NumChunks:   ck.Count(),
	}
	elem := int64(0)
	for _, a := range st.Schema.Attrs {
		elem += int64(a.Type.Size())
	}
	info.LogicalSize = st.Schema.NumCells() * elem
	for _, v := range st.live() {
		for _, chunks := range v.Chunks {
			for _, e := range chunks {
				info.DiskBytes += e.Length
			}
		}
	}
	return info, nil
}

// DiskBytes sums the on-disk payload bytes across all arrays.
func (s *Store) DiskBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := int64(0)
	for _, st := range s.arrays {
		for _, v := range st.live() {
			for _, chunks := range v.Chunks {
				for _, e := range chunks {
					total += e.Length
				}
			}
		}
	}
	return total
}
