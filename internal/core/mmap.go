package core

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"arrayvers/internal/array"
	"arrayvers/internal/fsio"
)

// Memory-mapped chunk generations. Committed chunk files are immutable
// at every offset a reader's metadata snapshot can reference (appends
// only grow the tail, rewrites build fresh generation directories), so
// the read path can map them read-only and decode frames straight out
// of the page cache instead of paying a read(2) plus a frame-sized copy
// per chunk.
//
// Lifetime protocol. One mapSet covers one chunk-generation directory
// and starts with a single "live" reference owned by the generation
// itself. Readers never take per-use references: a query pins its
// generation by holding the array's I/O read latch (snapshot acquires
// st.ioMu.RLock), and a generation is only retired under the exclusive
// latch, so every transient use of mapped bytes is bounded by a latch
// the retirer must wait out. The only mapped bytes that outlive a query
// are zero-copy planes inserted into the decoded-chunk cache; each such
// plane holds one counted reference (acquire at Put, release from the
// cache's eviction callback).
//
// Retire (Reorganize, Compact, DeleteArray) drops the live reference
// and registers the directory-removal closure; the closure runs when
// the last reference drains, which defers the unlink past any cached
// mmap-backed planes still resident. Every retire site guarantees,
// before Store.mu is released, that no future cache lookup can return
// a plane of the retired generation (invalidateArrayLocked bumps the
// epoch and sweeps), so a later eviction-triggered teardown can never
// unmap bytes a reader still sees.
type genMaps struct {
	enabled bool
	mu      sync.Mutex
	sets    map[string]*mapSet // live generations only, keyed by dir

	// deferred counts generation removals that outlived their retire
	// call because cached planes still referenced the mapping.
	deferred atomic.Int64
}

func newGenMaps(disabled bool) *genMaps {
	return &genMaps{
		enabled: !disabled && fsio.MapSupported(),
		sets:    make(map[string]*mapSet),
	}
}

// active reports whether the store maps chunk generations at all.
func (gm *genMaps) active() bool { return gm != nil && gm.enabled }

// lookup returns the live mapSet for a chunk-generation directory,
// creating it on first use. Returns nil when mapping is disabled.
// Callers hold the owning array's I/O latch (shared or exclusive), so
// the returned set cannot be retired while they use it.
func (gm *genMaps) lookup(dir string) *mapSet {
	if !gm.active() {
		return nil
	}
	gm.mu.Lock()
	defer gm.mu.Unlock()
	ms := gm.sets[dir]
	if ms == nil {
		ms = &mapSet{gm: gm, dir: dir, files: make(map[string]fsio.Mapping), refs: 1}
		gm.sets[dir] = ms
	}
	return ms
}

// retire removes dir's mapSet from the live table, drops its live
// reference, and arranges for onLast (the directory unlink) to run when
// the final reference drains — immediately, unless cached planes still
// pin the mapping. With mapping inactive or the directory never mapped,
// onLast runs inline, which reduces to the pre-mmap removal behavior.
// Callers hold the array's exclusive I/O latch (or otherwise exclude
// readers), and must make the retired generation's cache entries
// unreachable before new snapshots can start.
func (gm *genMaps) retire(dir string, onLast func()) {
	var ms *mapSet
	if gm.active() {
		gm.mu.Lock()
		ms = gm.sets[dir]
		delete(gm.sets, dir)
		gm.mu.Unlock()
	}
	if ms == nil {
		onLast()
		return
	}
	ms.mu.Lock()
	ms.retired = true
	ms.onLast = onLast
	deferredUnlink := ms.refs > 1
	ms.mu.Unlock()
	if deferredUnlink {
		gm.deferred.Add(1)
	}
	ms.release()
}

// closeAll force-closes every live mapping. Called from Store.Close
// after all array latches have drained and the decoded-chunk cache has
// been swept, so no reference can be in use.
func (gm *genMaps) closeAll() {
	if gm == nil {
		return
	}
	gm.mu.Lock()
	sets := gm.sets
	gm.sets = make(map[string]*mapSet)
	gm.mu.Unlock()
	for _, ms := range sets {
		ms.mu.Lock()
		ms.retired = true
		ms.refs = 0
		maps := ms.takeMappingsLocked()
		ms.mu.Unlock()
		for _, m := range maps {
			_ = m.Close()
		}
	}
}

// mapSet is the set of read-only mappings over one chunk-generation
// directory, one mapping per chunk file (plus superseded shorter
// mappings of files that grew, kept until teardown because cached
// planes may alias them).
type mapSet struct {
	gm  *genMaps
	dir string

	mu      sync.Mutex
	files   map[string]fsio.Mapping
	stale   []fsio.Mapping
	refs    int // live ref (until retire) + one per cached zero-copy plane
	retired bool
	closed  bool
	onLast  func()
}

// read returns the validated payload of one chunk frame as a sub-slice
// of the file's mapping. The caller must hold the array's I/O latch for
// as long as it touches the returned bytes, unless it also takes a
// counted reference (acquire) before the latch is released.
func (ms *mapSet) read(s *Store, format int, e chunkEntry) ([]byte, error) {
	need := e.Offset + frameLen(format, e.Length)
	ms.mu.Lock()
	if ms.retired {
		ms.mu.Unlock()
		return nil, fmt.Errorf("core: chunk generation %s is retired", filepath.Base(ms.dir))
	}
	m := ms.files[e.File]
	if m == nil || int64(len(m.Bytes())) < need {
		nm, err := fsio.Map(filepath.Join(ms.dir, e.File))
		if err != nil {
			ms.mu.Unlock()
			return nil, err
		}
		if int64(len(nm.Bytes())) < need {
			// the frame the metadata references is committed, so the file
			// must already be at least this long; a short file is real
			// corruption, but let the plain read path produce the error
			_ = nm.Close()
			ms.mu.Unlock()
			return nil, fmt.Errorf("core: chunk file %s shorter than mapped frame %d+%d", e.File, e.Offset, e.Length)
		}
		if m != nil {
			// the shorter mapping may back cached planes; keep it alive
			// until the whole set tears down
			ms.stale = append(ms.stale, m)
		}
		ms.files[e.File] = nm
		m = nm
	}
	data := m.Bytes()
	ms.mu.Unlock()
	buf := data[e.Offset:need]
	blob := buf
	if format == formatFramed {
		var err error
		blob, err = parseFrame(buf, e.Length)
		if err != nil {
			return nil, fmt.Errorf("core: chunk %s@%d: %w", e.File, e.Offset, err)
		}
	}
	s.addMmapRead(e.Length)
	return blob, nil
}

// acquire takes a counted reference for a cached zero-copy plane. It
// fails only on a set whose references already drained.
func (ms *mapSet) acquire() bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.refs <= 0 {
		return false
	}
	ms.refs++
	return true
}

// release drops one reference; the last one out unmaps every file and
// runs the retire closure (the deferred directory unlink).
func (ms *mapSet) release() {
	ms.mu.Lock()
	if ms.refs > 0 {
		ms.refs--
	}
	last := ms.refs == 0 && !ms.closed
	var maps []fsio.Mapping
	var onLast func()
	if last {
		ms.closed = true
		maps = ms.takeMappingsLocked()
		onLast = ms.onLast
		ms.onLast = nil
	}
	ms.mu.Unlock()
	if !last {
		return
	}
	for _, m := range maps {
		_ = m.Close()
	}
	if onLast != nil {
		onLast()
	}
}

func (ms *mapSet) takeMappingsLocked() []fsio.Mapping {
	maps := make([]fsio.Mapping, 0, len(ms.files)+len(ms.stale))
	for _, m := range ms.files {
		maps = append(maps, m)
	}
	maps = append(maps, ms.stale...)
	ms.files = nil
	ms.stale = nil
	return maps
}

// mmapDense is a decoded-chunk cache value whose cell bytes alias a
// mapped chunk file instead of the heap: a materialized (delta-chain
// root) chunk stored uncompressed needs no decode at all, so caching it
// costs no copy. Each holds one counted reference on its mapSet,
// released by the cache's eviction callback.
type mmapDense struct {
	*array.Dense
	set *mapSet
}

// readBlobShared fetches a chunk payload like readBlob, preferring the
// generation's read-only mapping; the plain read path is the fallback
// whenever mapping is disabled, unsupported, or fails. A non-nil mapSet
// return means the payload aliases the mapping and is only valid while
// the caller holds the array's I/O latch or a counted reference.
func (s *Store) readBlobShared(dir string, format int, e chunkEntry) ([]byte, *mapSet, error) {
	if ms := s.maps.lookup(dir); ms != nil {
		if blob, err := ms.read(s, format, e); err == nil {
			return blob, ms, nil
		}
	}
	blob, err := s.readBlob(dir, format, e)
	return blob, nil, err
}
