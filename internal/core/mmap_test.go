package core

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"arrayvers/internal/fsio"
)

// chunkDirs lists the chunk-generation directories currently on disk for
// one array, sorted order not guaranteed.
func chunkDirs(t *testing.T, storeDir, name string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(storeDir, name))
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "chunks") && !strings.HasPrefix(e.Name(), "chunks.build") {
			dirs = append(dirs, e.Name())
		}
	}
	return dirs
}

// TestGenMapsRefcount unit-tests the mapping lifetime protocol: the
// generation's live reference, counted references for cached planes,
// deferred unlink on retire, and the inline fallbacks.
func TestGenMapsRefcount(t *testing.T) {
	if !fsio.MapSupported() {
		t.Skip("mmap unsupported on this platform")
	}
	gm := newGenMaps(false)
	ms := gm.lookup("gen-a")
	if ms == nil {
		t.Fatal("lookup returned nil with mapping enabled")
	}
	if gm.lookup("gen-a") != ms {
		t.Fatal("second lookup did not return the same live set")
	}
	// a cached zero-copy plane takes a counted reference
	if !ms.acquire() {
		t.Fatal("acquire failed on a live set")
	}
	unlinked := false
	gm.retire("gen-a", func() { unlinked = true })
	if unlinked {
		t.Fatal("unlink ran while a cached plane still held the mapping")
	}
	if got := gm.deferred.Load(); got != 1 {
		t.Fatalf("deferred = %d, want 1", got)
	}
	// retire removed the set from the live table: a fresh lookup must not
	// resurrect the retired generation
	if gm.lookup("gen-a") == ms {
		t.Fatal("lookup returned a retired set")
	}
	// the last reference out runs the deferred unlink exactly once
	ms.release()
	if !unlinked {
		t.Fatal("deferred unlink did not run when the last reference drained")
	}
	if ms.acquire() {
		t.Fatal("acquire succeeded after the set's references drained")
	}
	unlinked = false
	ms.release() // over-release must not re-run the closure or underflow
	if unlinked {
		t.Fatal("retire closure ran twice")
	}

	// retiring a never-mapped directory unlinks inline
	ran := false
	gm.retire("gen-never-mapped", func() { ran = true })
	if !ran {
		t.Fatal("retire of an unmapped generation did not unlink inline")
	}

	// with no counted references the retire unlinks inline and is not
	// counted as deferred
	ms2 := gm.lookup("gen-b")
	ran = false
	gm.retire("gen-b", func() { ran = true })
	if !ran {
		t.Fatal("retire with only the live reference did not unlink inline")
	}
	if got := gm.deferred.Load(); got != 1 {
		t.Fatalf("inline unlink counted as deferred (deferred = %d)", got)
	}
	if ms2.acquire() {
		t.Fatal("acquire succeeded on a fully retired set")
	}

	// disabled mapping degrades to the pre-mmap behavior everywhere
	off := newGenMaps(true)
	if off.lookup("x") != nil {
		t.Fatal("disabled genMaps returned a set")
	}
	ran = false
	off.retire("x", func() { ran = true })
	if !ran {
		t.Fatal("disabled genMaps did not unlink inline")
	}

	gm.closeAll()
	gm.closeAll() // idempotent
}

// TestMmapReadPathCounters checks that the default (mmap-on) read path
// serves chunk payloads from mappings, caches zero-copy planes, and that
// DisableMmap turns all of it off without changing results.
func TestMmapReadPathCounters(t *testing.T) {
	dir := t.TempDir()
	opts := concurrencyOpts()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(schema2D("MM", 64)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(4, 64, 21)
	for _, v := range versions {
		if _, err := s.Insert("MM", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	s.ResetStats()
	for i, want := range versions {
		got, err := s.Select("MM", i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("version %d mismatch on the mmap read path", i+1)
		}
	}
	st := s.Stats()
	if fsio.MapSupported() {
		if st.MmapReads == 0 {
			t.Fatal("no chunk reads served from mappings")
		}
		if st.MmapPlanes == 0 || st.MmapPlaneBytes == 0 {
			t.Fatalf("no zero-copy planes cached (planes=%d bytes=%d)", st.MmapPlanes, st.MmapPlaneBytes)
		}
	}
	// warm selects must still be cache hits, not remapped reads
	reads := st.MmapReads
	for i, want := range versions {
		got, err := s.Select("MM", i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("version %d mismatch on warm mmap select", i+1)
		}
	}
	if got := s.Stats().MmapReads; got != reads {
		t.Fatalf("warm selects performed %d extra mapped reads", got-reads)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// the same store with mapping disabled reads identical bytes and
	// records no mmap activity
	opts.DisableMmap = true
	p, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i, want := range versions {
		got, err := p.Select("MM", i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("version %d mismatch with mmap disabled", i+1)
		}
	}
	st = p.Stats()
	if st.MmapReads != 0 || st.MmapPlanes != 0 || st.MmapDeferredUnlinks != 0 {
		t.Fatalf("DisableMmap store recorded mmap activity: %+v", st)
	}
}

// TestCompactDefersUnlinkPastCachedPlanes pins the deferred-unlink
// protocol on its one deterministic trigger: Compact retires the old
// generation while cached zero-copy planes still reference its mapping
// (the cache sweep runs after the generation flip), so the unlink must
// be deferred — and must still land before Compact returns, because the
// sweep drains the references inline.
func TestCompactDefersUnlinkPastCachedPlanes(t *testing.T) {
	if !fsio.MapSupported() {
		t.Skip("mmap unsupported on this platform")
	}
	dir := t.TempDir()
	s, err := Open(dir, concurrencyOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.CreateArray(schema2D("CD", 64)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(3, 64, 22)
	for _, v := range versions {
		if _, err := s.Insert("CD", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	// populate the cache with mmap-backed planes of the current generation
	for i := range versions {
		if _, err := s.Select("CD", i+1); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().MmapPlanes == 0 {
		t.Fatal("selects cached no zero-copy planes; the test would not exercise deferral")
	}
	if err := s.Compact("CD"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().MmapDeferredUnlinks; got == 0 {
		t.Fatal("Compact with cached zero-copy planes did not defer the old generation's unlink")
	}
	// the cache sweep drained the references, so the old directory is
	// already gone: only the committed generation remains on disk
	dirs := chunkDirs(t, dir, "CD")
	if len(dirs) != 1 {
		t.Fatalf("chunk dirs after Compact = %v, want exactly the committed generation", dirs)
	}
	for i, want := range versions {
		got, err := s.Select("CD", i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("version %d corrupted by compact", i+1)
		}
	}
}

// TestMmapGenerationLifecycleStress is the satellite stress test:
// concurrent selects hold mmap-backed cached planes while Reorganize and
// Compact retire generation after generation, then the array is deleted
// outright. Under -race this is the safety net for the mapping lifetime
// protocol — reads must stay byte-identical, nothing may touch unmapped
// memory, and every retired generation's directory must be gone at the
// end.
func TestMmapGenerationLifecycleStress(t *testing.T) {
	dir := t.TempDir()
	o := concurrencyOpts()
	o.CacheBytes = 256 << 10 // small cache: constant eviction of mmap-backed planes
	s, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.CreateArray(schema2D("G", 64)); err != nil {
		t.Fatal(err)
	}
	const seedVersions = 5
	versions := evolvingVersions(seedVersions, 64, 23)
	for _, v := range versions {
		if _, err := s.Insert("G", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	fail := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]int, seedVersions)
			for i := range ids {
				ids[i] = i + 1
			}
			for i := 0; i < 30; i++ {
				id := (g+i)%seedVersions + 1
				pl, err := s.Select("G", id)
				if err != nil {
					fail <- err
					return
				}
				if !pl.Dense.Equal(versions[id-1]) {
					t.Errorf("select %d content mismatch under generation churn", id)
					return
				}
				if _, err := s.SelectMulti("G", ids); err != nil {
					fail <- err
					return
				}
			}
		}(g)
	}
	// generation churn: alternating re-layouts and compactions, each of
	// which retires the previous generation's mapping
	wg.Add(1)
	go func() {
		defer wg.Done()
		policies := []LayoutPolicy{PolicyLinearChain, PolicyHeadBiased, PolicyOptimal}
		for i := 0; i < 3; i++ {
			if err := s.Reorganize("G", ReorganizeOptions{Policy: policies[i%len(policies)]}); err != nil {
				fail <- err
				return
			}
			if err := s.Compact("G"); err != nil {
				fail <- err
				return
			}
		}
	}()
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}
	// every retired generation's directory must have been unlinked (the
	// cache may still pin the *current* mapping, never an old one)
	dirs := chunkDirs(t, dir, "G")
	if len(dirs) != 1 {
		t.Fatalf("chunk dirs after churn = %v, want exactly the committed generation", dirs)
	}
	for i, want := range versions {
		got, err := s.Select("G", i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("version %d corrupted after generation churn", i+1)
		}
	}
	// deleting the array retires the final generation; the cached planes'
	// references are drained inline, so the whole directory is gone before
	// DeleteArray returns
	if err := s.DeleteArray("G"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "G")); !os.IsNotExist(err) {
		t.Fatalf("array dir survived DeleteArray (err=%v)", err)
	}
}

// TestStaleGenerationSweptOnReopen covers the crash window the deferred
// unlink opens: the generation flip committed, the process died before
// the deferred RemoveAll ran, and the old chunks.gN directory is still
// on disk. Recovery at the next durable open must sweep it and leave a
// store that verifies clean.
func TestStaleGenerationSweptOnReopen(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.ChunkBytes = 1 << 10
	opts.Durability = true
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(schema2D("R", 16)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(3, 16, 24)
	for _, v := range versions {
		if _, err := s.Insert("R", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reorganize("R", ReorganizeOptions{Policy: PolicyLinearChain}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// resurrect the retired generation's directory, exactly as a crash
	// between the generation commit and the deferred unlink leaves it
	stale := filepath.Join(dir, "R", "chunks")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "A.0"), []byte("orphaned generation bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Recovery().RemovedFiles == 0 {
		t.Fatal("recovery did not sweep the stale generation directory")
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale generation directory survived recovery (err=%v)", err)
	}
	rep, err := r.Verify("R")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("store fails verify after sweeping stale generation: %v", rep.Problems)
	}
	for i, want := range versions {
		got, err := r.Select("R", i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("version %d corrupted after recovery", i+1)
		}
	}
}
