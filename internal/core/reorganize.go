package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"arrayvers/internal/array"
	"arrayvers/internal/compress"
	"arrayvers/internal/delta"
	"arrayvers/internal/layout"
	"arrayvers/internal/matmat"
)

// LayoutPolicy selects how Reorganize chooses version encodings (§IV).
type LayoutPolicy int

// Supported policies.
const (
	// PolicyOptimal uses the exact space-optimal layout (augmented-graph
	// MST, generalizing Algorithms 1 and 2).
	PolicyOptimal LayoutPolicy = iota
	// PolicyAlgorithm1 uses the paper's Algorithm 1 (single
	// materialization + MST of deltas).
	PolicyAlgorithm1
	// PolicyAlgorithm2 uses the paper's Algorithm 2 (minimum spanning
	// forest refinement, Appendix B).
	PolicyAlgorithm2
	// PolicyLinearChain materializes the newest version and deltas each
	// earlier version against its successor (the §V-D baseline).
	PolicyLinearChain
	// PolicyHeadBiased materializes the newest version and stores the
	// rest most compactly given that root (§IV-E last paragraph).
	PolicyHeadBiased
	// PolicyWorkloadAware minimizes workload I/O cost (§IV-D).
	PolicyWorkloadAware
)

func (p LayoutPolicy) String() string {
	switch p {
	case PolicyOptimal:
		return "optimal"
	case PolicyAlgorithm1:
		return "algorithm1"
	case PolicyAlgorithm2:
		return "algorithm2"
	case PolicyLinearChain:
		return "linear"
	case PolicyHeadBiased:
		return "head"
	case PolicyWorkloadAware:
		return "workload"
	default:
		return fmt.Sprintf("LayoutPolicy(%d)", int(p))
	}
}

// ReorganizeOptions parameterizes Reorganize.
type ReorganizeOptions struct {
	Policy LayoutPolicy
	// Workload drives PolicyWorkloadAware; query version values are
	// version IDs.
	Workload []layout.Query
	// MatrixSample, when positive, builds the materialization matrix from
	// sampled cells (§IV-A).
	MatrixSample int
	// BatchK, when positive, re-encodes versions in independent
	// consecutive batches of K versions (§IV-E), bounding matrix size and
	// delta-chain length.
	BatchK int
	// lenientWorkload re-filters the workload against the live version
	// set at plan time instead of erroring on an unknown version. The
	// tuner sets it: its recorded queries can reference versions deleted
	// between the histogram snapshot and the rewrite, and a routine race
	// must not fail the pass. Explicit API callers keep the strict error.
	lenientWorkload bool
	// plan carries the tuner's already-decoded planes and chosen layout
	// so an uncontended tuner rewrite does not decode every version a
	// second time. It is used only if the array's mutation sequence
	// still matches plan.seq at snapshot time; otherwise the rewrite
	// replans from live metadata as usual.
	plan *rewritePlan
}

// rewritePlan is a precomputed rewrite input, valid for one exact
// mutation sequence of the array.
type rewritePlan struct {
	seq    uint64
	ids    []int
	planes [][]Plane
	layout layout.Layout
}

// ComputeLayout builds the materialization matrix for an array's live
// versions and the layout the given policy selects, without rewriting
// anything. The returned id slice maps layout indices to version IDs.
//
// The store lock is held only long enough to snapshot the array's
// metadata; version decoding and matrix construction run against the
// snapshot with no lock held, so layout planning never stalls concurrent
// inserts or selects. (BatchK is ignored here: the matrix and layout
// describe the whole version set; Reorganize applies batching.)
func (s *Store) ComputeLayout(name string, opts ReorganizeOptions) (layout.Layout, *matmat.Matrix, []int, error) {
	v, release, err := s.snapshotUncached(name)
	if err != nil {
		return layout.Layout{}, nil, nil, err
	}
	defer release()
	ids, planes, err := s.loadPlanesView(v)
	if err != nil {
		return layout.Layout{}, nil, nil, err
	}
	if len(ids) == 0 {
		return layout.NewLayout(0), matmat.New(0), ids, nil
	}
	mm, err := s.buildMatrix(v.st.SparseRep, len(v.st.Schema.Attrs), planes, opts.MatrixSample)
	if err != nil {
		return layout.Layout{}, nil, nil, err
	}
	l, err := chooseLayout(mm, ids, opts)
	if err != nil {
		return layout.Layout{}, nil, nil, err
	}
	return l, mm, ids, nil
}

// reorgRetries bounds the off-lock rebuild attempts a Reorganize makes
// before falling back to rebuilding under the exclusive store lock
// (guaranteed progress when the array mutates faster than it can be
// re-encoded).
const reorgRetries = 3

// Reorganize re-encodes every live version of an array according to the
// chosen layout policy — the "background re-organization step" of §IV-E.
// Old chunk payloads are dropped (the chunks directory is rewritten).
//
// The rewrite is built optimistically off-lock: the array's metadata is
// snapshotted under the store lock, every version is decoded and
// re-encoded into a fresh generation directory with no store lock held,
// and the result is committed under the lock only if the array's
// mutation sequence is unchanged (otherwise the build is discarded and
// retried). Readers and inserts therefore proceed concurrently with the
// bulk of the work; only the metadata swap itself serializes with them.
// Destructive rewrites on one array are serialized by a per-array latch.
func (s *Store) Reorganize(name string, opts ReorganizeOptions) error {
	if err := s.writeGate(name); err != nil {
		return err
	}
	st, err := s.lockRewrite(name)
	if err != nil {
		return err
	}
	defer st.reorgMu.Unlock()
	for attempt := 0; attempt < reorgRetries; attempt++ {
		committed, err := s.tryReorganize(name, st, opts)
		if committed || err != nil {
			return err
		}
	}
	// the array is mutating faster than the off-lock builds can keep up;
	// rebuild under the exclusive lock so the call terminates. commitMu
	// serializes the metadata commit with insert leaders, whose
	// commits run outside Store.mu.
	st.commitMu.Lock()
	defer st.commitMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.arrays[name] != st {
		return fmt.Errorf("core: no array %q", name)
	}
	return s.reorganizeLocked(st, opts)
}

// lockRewrite resolves an array and takes its rewrite latch, handling
// the race where the array is dropped or replaced while waiting. The
// caller must release st.reorgMu. The latch is always acquired without
// holding Store.mu.
func (s *Store) lockRewrite(name string) (*arrayState, error) {
	return s.lockArray(name, func(st *arrayState) []*sync.Mutex {
		return []*sync.Mutex{&st.reorgMu}
	})
}

// tryReorganize performs one optimistic off-lock rebuild attempt.
// It reports whether the rewrite committed; (false, nil) means the
// metadata moved underneath the build and the caller should retry.
func (s *Store) tryReorganize(name string, st *arrayState, opts ReorganizeOptions) (bool, error) {
	v, release, err := s.snapshotUncached(name)
	if err != nil {
		return false, err
	}
	if v.st != st {
		release()
		return false, fmt.Errorf("core: array %q was replaced during reorganize", name)
	}
	var (
		ids    []int
		planes [][]Plane
		l      layout.Layout
	)
	if p := opts.plan; p != nil && p.seq == v.seq {
		// the tuner already decoded this exact state while estimating
		ids, planes, l = p.ids, p.planes, p.layout
	} else {
		var err error
		ids, planes, err = s.loadPlanesView(v)
		if err != nil {
			release()
			return false, err
		}
		if len(ids) == 0 {
			release()
			return true, nil
		}
		l, err = s.planLayout(v.st, ids, planes, opts)
		if err != nil {
			release()
			return false, err
		}
	}
	buildDir := s.newBuildDir(st)
	entries, err := s.buildRewrite(v.st, buildDir, ids, planes, l)
	if err == nil {
		// the build dir is immutable from here on; run its per-file
		// fsync sweep before touching the store lock so the commit's
		// critical section is just the rename + metadata write
		err = s.syncBuild(buildDir)
	}
	release()
	if err != nil {
		_ = s.fs.RemoveAll(buildDir)
		s.noteDiskPressure(err)
		return false, err
	}
	// commitMu serializes this rewrite's metadata commit with insert
	// leaders, whose commits run outside Store.mu
	st.commitMu.Lock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		st.commitMu.Unlock()
		_ = s.fs.RemoveAll(buildDir)
		return false, ErrClosed
	}
	if s.arrays[name] != st || st.seq != v.seq {
		// a concurrent mutation invalidated the build: its planes (and
		// therefore its encodings) may describe superseded contents
		s.mu.Unlock()
		st.commitMu.Unlock()
		_ = s.fs.RemoveAll(buildDir)
		return false, nil
	}
	st.mutateLocked()
	oldDir, err := s.commitRewriteLocked(st, buildDir, ids, entries)
	if err != nil {
		s.mu.Unlock()
		st.commitMu.Unlock()
		// a failure before the generation rename leaves the build dir
		// behind, and non-durable stores never sweep chunks* debris
		_ = s.fs.RemoveAll(buildDir)
		return false, err
	}
	// decoded content is unchanged, but the encoding generation moved on;
	// drop cached chunks so stale in-flight readers cannot repopulate the
	// current generation (the epoch in every cache key enforces this)
	s.invalidateArrayLocked(name)
	s.mu.Unlock()
	st.commitMu.Unlock()
	// post-commit garbage collection: waiting out in-flight readers that
	// pinned the old generation happens with no store lock held, so new
	// selects (on this and every other array) proceed meanwhile. The
	// epoch bump above already made the old generation's cache entries
	// unreachable; retire defers the unlink past any still resident.
	st.ioMu.Lock()
	s.maps.retire(oldDir, func() { _ = s.fs.RemoveAll(oldDir) })
	st.ioMu.Unlock()
	return true, nil
}

// reorganizeLocked is the contended-fallback rewrite: build and commit
// while holding Store.mu exclusively. Callers hold the rewrite latch and
// Store.mu.
func (s *Store) reorganizeLocked(st *arrayState, opts ReorganizeOptions) error {
	st.mutateLocked()
	v := s.viewLocked(st, false)
	v.noCache = true
	ids, planes, err := s.loadPlanesView(v)
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return nil
	}
	l, err := s.planLayout(st, ids, planes, opts)
	if err != nil {
		return err
	}
	buildDir := s.newBuildDir(st)
	entries, err := s.buildRewrite(st, buildDir, ids, planes, l)
	if err != nil {
		_ = s.fs.RemoveAll(buildDir)
		return err
	}
	if err := s.commitRewrite(st, buildDir, ids, entries); err != nil {
		_ = s.fs.RemoveAll(buildDir)
		return err
	}
	s.invalidateArrayLocked(st.Schema.Name)
	return nil
}

// newBuildDir names a fresh, private build directory for one rewrite
// attempt. The "chunks" prefix puts leftovers from interrupted builds in
// recovery's sweep path; the sequence number keeps retried builds from
// ever sharing a directory.
func (s *Store) newBuildDir(st *arrayState) string {
	return filepath.Join(st.dir, fmt.Sprintf("chunks.build-%d", s.buildSeq.Add(1)))
}

// planLayout chooses the layout for a full rewrite, applying §IV-E
// batching when requested.
func (s *Store) planLayout(st *arrayState, ids []int, planes [][]Plane, opts ReorganizeOptions) (layout.Layout, error) {
	if opts.BatchK > 0 && opts.BatchK < len(ids) {
		if opts.Policy == PolicyWorkloadAware && !opts.lenientWorkload {
			// strict callers get the same unknown-version validation the
			// non-batched path applies, before batching slices the
			// workload per range
			if _, err := remapWorkload(opts.Workload, ids); err != nil {
				return layout.Layout{}, err
			}
		}
		// §IV-E: optimize each batch of K versions independently
		l := layout.NewLayout(len(ids))
		for lo := 0; lo < len(ids); lo += opts.BatchK {
			hi := lo + opts.BatchK
			if hi > len(ids) {
				hi = len(ids)
			}
			sub, err := s.layoutForRange(st, planes, ids, lo, hi, opts)
			if err != nil {
				return layout.Layout{}, err
			}
			for i := lo; i < hi; i++ {
				l.Parent[i] = sub.Parent[i-lo] + lo
			}
		}
		return l, nil
	}
	mm, err := s.buildMatrix(st.SparseRep, len(st.Schema.Attrs), planes, opts.MatrixSample)
	if err != nil {
		return layout.Layout{}, err
	}
	if opts.lenientWorkload && opts.Policy == PolicyWorkloadAware {
		opts.Workload = FilterWorkload(opts.Workload, ids)
	}
	return chooseLayout(mm, ids, opts)
}

func (s *Store) layoutForRange(st *arrayState, planes [][]Plane, ids []int, lo, hi int, opts ReorganizeOptions) (layout.Layout, error) {
	sub := planes[lo:hi]
	mm, err := s.buildMatrix(st.SparseRep, len(st.Schema.Attrs), sub, opts.MatrixSample)
	if err != nil {
		return layout.Layout{}, err
	}
	if opts.Policy == PolicyWorkloadAware {
		// batches are laid out independently, so each one sees only the
		// slice of the workload that falls inside it
		opts.Workload = FilterWorkload(opts.Workload, ids[lo:hi])
	}
	return chooseLayout(mm, ids[lo:hi], opts)
}

// loadPlanesView reconstructs every live version's content (all
// attributes) against a metadata snapshot, in version order. Safe to
// call with no store lock held when v is a cloned snapshot. The scan
// shares one per-call memo across versions, so each delta chain is
// walked once regardless of version count — it does not rely on (or,
// through an uncached view, touch) the store-wide LRU.
func (s *Store) loadPlanesView(v *readView) ([]int, [][]Plane, error) {
	ids := v.ids
	full := array.BoxOf(v.st.Schema.Shape())
	planes := make([][]Plane, len(ids))
	qc := newChunkCache()
	for i, id := range ids {
		planes[i] = make([]Plane, len(v.st.Schema.Attrs))
		for ai, attr := range v.st.Schema.Attrs {
			pl, err := s.readRegionView(context.Background(), v, id, attr.Name, full, qc, nil)
			if err != nil {
				return nil, nil, err
			}
			planes[i][ai] = pl
		}
	}
	return ids, planes, nil
}

// buildMatrix computes the materialization matrix over versions, summing
// costs across attributes. The representation is an explicit argument
// (rather than read from the arrayState) because a staged first commit
// may fix it before it is installed; it touches no mutable state, so it
// is safe off-lock.
func (s *Store) buildMatrix(sparse bool, nattrs int, planes [][]Plane, sample int) (*matmat.Matrix, error) {
	n := len(planes)
	total := matmat.New(n)
	for ai := 0; ai < nattrs; ai++ {
		var mm *matmat.Matrix
		var err error
		if sparse {
			vs := make([]*array.Sparse, n)
			for i := range planes {
				vs[i] = planes[i][ai].Sparse
			}
			mm, err = matmat.ComputeSparse(vs)
		} else {
			vs := make([]*array.Dense, n)
			for i := range planes {
				vs[i] = planes[i][ai].Dense
			}
			mm, err = matmat.Compute(vs, matmat.Options{Sample: sample, Seed: int64(ai)})
		}
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				total.Cost[i][j] += mm.Cost[i][j]
			}
		}
	}
	return total, nil
}

func chooseLayout(mm *matmat.Matrix, ids []int, opts ReorganizeOptions) (layout.Layout, error) {
	switch opts.Policy {
	case PolicyOptimal:
		return layout.Optimal(mm), nil
	case PolicyAlgorithm1:
		return layout.Algorithm1(mm), nil
	case PolicyAlgorithm2:
		return layout.Algorithm2(mm), nil
	case PolicyLinearChain:
		return layout.LinearChain(mm.N), nil
	case PolicyHeadBiased:
		return layout.HeadBiasedLayout(mm), nil
	case PolicyWorkloadAware:
		wl, err := remapWorkload(opts.Workload, ids)
		if err != nil {
			return layout.Layout{}, err
		}
		return layout.WorkloadAware(mm, wl), nil
	default:
		return layout.Layout{}, fmt.Errorf("core: unknown layout policy %d", opts.Policy)
	}
}

// remapWorkload translates query version IDs into layout indices.
func remapWorkload(wl []layout.Query, ids []int) ([]layout.Query, error) {
	pos := make(map[int]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	out := make([]layout.Query, len(wl))
	for qi, q := range wl {
		mapped := layout.Query{Weight: q.Weight}
		for _, v := range q.Versions {
			p, ok := pos[v]
			if !ok {
				return nil, fmt.Errorf("core: workload references unknown version %d", v)
			}
			mapped.Versions = append(mapped.Versions, p)
		}
		out[qi] = mapped
	}
	return out, nil
}

// FilterWorkload restricts workload queries to the given version IDs:
// versions outside the set are dropped from each query, and queries left
// empty are removed. The tuner uses it to shed references to deleted
// versions; batched rewrites use it to slice the workload per batch.
func FilterWorkload(wl []layout.Query, ids []int) []layout.Query {
	in := make(map[int]bool, len(ids))
	for _, id := range ids {
		in[id] = true
	}
	var out []layout.Query
	for _, q := range wl {
		var vs []int
		for _, v := range q.Versions {
			if in[v] {
				vs = append(vs, v)
			}
		}
		if len(vs) > 0 {
			out = append(out, layout.Query{Versions: vs, Weight: q.Weight})
		}
	}
	return out
}

// buildRewrite re-encodes all versions per the layout into the given
// private build directory and returns the new chunk entries, one map per
// id. It reads only immutable arrayState fields and the passed planes,
// so it runs with no store lock held; the caller pins the source
// generation via the snapshot's read latch. The rewrite always produces
// checksummed frames, so committing it also upgrades legacy raw-format
// arrays.
func (s *Store) buildRewrite(st *arrayState, buildDir string, ids []int, planes [][]Plane, l layout.Layout) ([]map[string]map[string]chunkEntry, error) {
	// the sequence restarts per process, so a crashed non-durable run
	// (which never sweeps chunks* debris at Open) can have left a stale
	// directory under this name; never append after its garbage
	if err := s.fs.RemoveAll(buildDir); err != nil {
		return nil, err
	}
	if err := s.fs.MkdirAll(buildDir); err != nil {
		return nil, err
	}
	newEntries := make([]map[string]map[string]chunkEntry, len(ids))
	for i := range ids {
		newEntries[i] = make(map[string]map[string]chunkEntry)
	}
	for ai, attr := range st.Schema.Attrs {
		if st.SparseRep {
			for i := range ids {
				payload, base, err := encodeSparseAgainst(planes, l, i, ai, ids)
				if err != nil {
					return nil, err
				}
				codec := pickCodec(s.opts.Codec, false)
				sealed, used, err := seal(codec, s.opts.AdaptiveCodec, payload, compress.Params{Elem: 1})
				if err != nil {
					return nil, err
				}
				file := chainFileName(attr.Name, "chunk-full")
				off, err := s.appendBlob(filepath.Join(buildDir, file), formatFramed, sealed, false)
				if err != nil {
					return nil, err
				}
				s.addWrite(int64(len(sealed)))
				newEntries[i][attr.Name] = map[string]chunkEntry{
					"chunk-full": {File: file, Offset: off, Length: int64(len(sealed)), Codec: uint8(used), Base: base},
				}
			}
			continue
		}
		ck, err := st.chunker()
		if err != nil {
			return nil, err
		}
		for i := range ids {
			newEntries[i][attr.Name] = make(map[string]chunkEntry)
		}
		for _, origin := range ck.All() {
			box := ck.Box(origin)
			key := ck.Key(origin)
			for i := range ids {
				target, err := planes[i][ai].Dense.Slice(box)
				if err != nil {
					return nil, err
				}
				payload := target.Bytes()
				entryBase := -1
				rawDense := true
				if p := l.Parent[i]; p != i {
					baseChunk, err := planes[p][ai].Dense.Slice(box)
					if err != nil {
						return nil, err
					}
					blob, err := delta.Encode(s.opts.DeltaMethod, target, baseChunk)
					if err != nil {
						return nil, err
					}
					if len(blob) < len(payload) {
						payload = blob
						entryBase = ids[p]
						rawDense = false
					}
				}
				codec := pickCodec(s.opts.Codec, rawDense)
				sealed, used, err := seal(codec, s.opts.AdaptiveCodec, payload, sealParams(rawDense, box, attr.Type))
				if err != nil {
					return nil, err
				}
				file := chainFileName(attr.Name, key)
				off, err := s.appendBlob(filepath.Join(buildDir, file), formatFramed, sealed, false)
				if err != nil {
					return nil, err
				}
				s.addWrite(int64(len(sealed)))
				newEntries[i][attr.Name][key] = chunkEntry{
					File: file, Offset: off, Length: int64(len(sealed)), Codec: uint8(used), Base: entryBase,
				}
			}
		}
	}
	return newEntries, nil
}

// applyEntries builds the commit callback that installs a rewrite's new
// chunk maps on the rewritten versions — shared by the off-lock and
// under-lock commit paths so they cannot drift.
func applyEntries(st *arrayState, ids []int, entries []map[string]map[string]chunkEntry) func() {
	idPos := make(map[int]int, len(ids))
	for i, id := range ids {
		idPos[id] = i
	}
	return func() {
		for _, vm := range st.Versions {
			if i, ok := idPos[vm.ID]; ok {
				vm.Chunks = entries[i]
			}
		}
	}
}

// commitRewrite is the single-call form of commitRewriteLocked for
// callers that hold Store.mu across the whole rewrite (the contended
// fallback): sync, commit, and remove the old generation in place.
func (s *Store) commitRewrite(st *arrayState, buildDir string, ids []int, entries []map[string]map[string]chunkEntry) error {
	return s.commitGen(st, st.Gen+1, buildDir, applyEntries(st, ids, entries))
}

// commitRewriteLocked publishes a fully built, already-synced rewrite:
// the build directory becomes the next chunk generation and the new
// entries replace the rewritten versions' chunk maps. It returns the
// superseded generation directory, which the caller removes under the
// I/O latch after releasing Store.mu. Callers hold Store.mu and the
// rewrite latch and have already called syncBuild.
func (s *Store) commitRewriteLocked(st *arrayState, buildDir string, ids []int, entries []map[string]map[string]chunkEntry) (string, error) {
	return s.commitGenLocked(st, st.Gen+1, buildDir, applyEntries(st, ids, entries))
}

// The commit protocol for destructive rewrites:
//
//  1. sync the build directory's files (syncBuild — runnable before any
//     lock, since a finished build is immutable), then rename it to its
//     committed generation name and sync the array directory — the new
//     payloads are now durable but unreferenced;
//  2. stage the new metadata (generation number, framed format, the
//     entries the apply callback installs) and commit it with saveMeta —
//     a manifest-log record, or the atomic versions.json rename on
//     legacy stores — this is the commit point;
//  3. remove the old generation under the exclusive I/O latch, waiting
//     out in-flight readers whose snapshots pinned it.
//
// A crash before step 2 leaves the old metadata pointing at the intact
// old generation (recovery sweeps the unreferenced new one); a crash
// after it leaves the new metadata pointing at the fully synced new
// generation (recovery sweeps the old one).

// syncBuild makes a finished build directory durable (step 1's fsync
// sweep). The build phase appends unsynced — one fsync per append would
// make rewrites O(chunks) in disk-flush cost — so each built file is
// synced exactly once here, before anything can reference it. No-op
// without Durability.
func (s *Store) syncBuild(buildDir string) error {
	if !s.opts.Durability {
		return nil
	}
	if err := s.syncDirFiles(buildDir); err != nil {
		return err
	}
	return s.fs.SyncDir(buildDir)
}

// commitGenLocked runs steps 1b–2: rename the synced build directory to
// its generation name and commit the metadata. It returns the
// superseded generation directory for the caller to remove (step 3)
// once it is safe to wait on the I/O latch. Callers hold Store.mu.
func (s *Store) commitGenLocked(st *arrayState, newGen int, buildDir string, apply func()) (string, error) {
	finalDir := filepath.Join(st.dir, chunksDirName(newGen))
	// a leftover directory with this generation name can only be debris
	// from an interrupted rewrite that never committed
	// failures here are benign (the metadata still references the old
	// generation; at worst an uncommitted directory lingers as debris
	// for recovery or heal to sweep), but ENOSPC still stops the store
	if err := s.fs.RemoveAll(finalDir); err != nil {
		s.noteDiskPressure(err)
		return "", err
	}
	if err := s.fs.Rename(buildDir, finalDir); err != nil {
		s.noteDiskPressure(err)
		return "", err
	}
	if s.opts.Durability {
		if err := s.fs.SyncDir(st.dir); err != nil {
			s.noteDiskPressure(err)
			return "", err
		}
	}
	oldDir := st.chunksDir()
	st.Gen = newGen          //avlint:allow-install generation flip precedes its commit by design: the payloads are already durable, and heal/reopen resolve the divergence when saveMeta below fails
	st.Format = formatFramed //avlint:allow-install committed together with Gen above; same divergence contract
	apply()
	if err := s.saveMeta(st); err != nil {
		// the commit did not land on disk; in-memory state keeps the new
		// generation (its payloads are all present and durable) and a
		// reopen recovers to the old metadata + old generation. Memory
		// and disk now disagree no matter how the write failed, so the
		// array degrades until the heal re-commits the in-memory view.
		s.noteCommitFailure(st, err)
		return "", err
	}
	return oldDir, nil
}

// commitGen is the single-call form for rewrites that run fully under
// Store.mu (Compact, the contended Reorganize fallback): sync, commit,
// and remove the old generation in place. A removal failure just leaves
// a stale generation for the next Open's recovery to sweep.
func (s *Store) commitGen(st *arrayState, newGen int, buildDir string, apply func()) error {
	if err := s.syncBuild(buildDir); err != nil {
		return err
	}
	oldDir, err := s.commitGenLocked(st, newGen, buildDir, apply)
	if err != nil {
		return err
	}
	// retire defers the unlink past cached zero-copy planes of the old
	// generation. Callers hold Store.mu for the rest of their critical
	// section and invalidate the array's cache before releasing it, so no
	// future lookup can return a retired-generation plane.
	st.ioMu.Lock()
	s.maps.retire(oldDir, func() { _ = s.fs.RemoveAll(oldDir) })
	st.ioMu.Unlock()
	return nil
}

func encodeSparseAgainst(planes [][]Plane, l layout.Layout, i, ai int, ids []int) ([]byte, int, error) {
	sp := planes[i][ai].Sparse
	if p := l.Parent[i]; p != i {
		blob, err := delta.EncodeSparseOps(sp, planes[p][ai].Sparse)
		if err != nil {
			return nil, 0, err
		}
		native := array.MarshalSparse(sp)
		if len(blob) < len(native) {
			return blob, ids[p], nil
		}
		return native, -1, nil
	}
	return array.MarshalSparse(sp), -1, nil
}

// syncDirFiles fsyncs every regular file in dir.
func (s *Store) syncDirFiles(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		f, err := s.fs.Append(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		serr := f.Sync()
		if cerr := f.Close(); serr == nil {
			serr = cerr
		}
		if serr != nil {
			return serr
		}
	}
	return nil
}

// DeleteVersion removes a version. Versions delta'ed against it are
// first re-encoded (against the deleted version's own base, or
// materialized), preserving the no-overwrite property for everything
// still live. Space is reclaimed by Compact.
//
// Like the insert path, the deletion is staged: the re-encoded chunk
// maps and the deletion flag are built on cloned versionMeta records in
// a staged arrayMeta, committed with one metadata rename, and installed
// into the live state only on success — a failed commit leaves memory
// and disk agreeing that the version is still live, and sweeps the
// re-encode's appended blobs. The write latch is held because the
// re-encodes append to chunk files concurrent insert staging also
// appends to.
func (s *Store) DeleteVersion(name string, id int) error {
	if err := s.writeGate(name); err != nil {
		return err
	}
	st, err := s.lockMetaWrite(name)
	if err != nil {
		return err
	}
	defer st.commitMu.Unlock()
	defer st.writeMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.arrays[name] != st {
		return fmt.Errorf("core: no array %q", name)
	}
	vm, err := st.version(id)
	if err != nil {
		return err
	}
	staged := st.metaClone()
	v := s.viewOfMeta(st, &staged)
	ws := newWriteSet()
	qc := newChunkCache()
	ctx := &insertCtx{st: st, v: v, ws: ws, qc: qc, dir: v.dir, format: staged.Format, sparse: staged.SparseRep}
	full := array.BoxOf(st.Schema.Shape())
	commit := func() error {
		// the child re-encodes below only ever append (fresh FileSeq
		// files in per-version mode, chain tails in co-located mode), so
		// in-flight readers keep decoding their snapshots without a latch.
		// re-encode every live chunk that bases on the deleted version
		for si, child := range staged.Versions {
			if child.ID == id || child.Deleted {
				continue
			}
			var cp *versionMeta
			for _, attr := range st.Schema.Attrs {
				dirty := false
				for _, e := range child.Chunks[attr.Name] {
					if e.Base == id {
						dirty = true
						break
					}
				}
				if !dirty {
					continue
				}
				pl, err := s.readRegionView(ctx.context(), v, child.ID, attr.Name, full, qc, nil)
				if err != nil {
					return err
				}
				// choose the deleted version's base as the new base when it
				// is still live, otherwise materialize; scan every chunk and
				// take the newest live base so the pick is deterministic
				// (map iteration order is not)
				newBase := 0
				for _, e := range vm.Chunks[attr.Name] {
					if e.Base >= 0 && e.Base > newBase && e.Base != id {
						if _, err := v.version(e.Base); err == nil {
							newBase = e.Base
						}
					}
				}
				entries, err := s.encodePlane(ctx, child.ID, attr, pl, newBase)
				if err != nil {
					return err
				}
				// published versions are shared with reader snapshots:
				// clone before replacing the chunk map, swap the clone in
				if cp == nil {
					c := *child
					c.Chunks = make(map[string]map[string]chunkEntry, len(child.Chunks))
					for a, m := range child.Chunks {
						c.Chunks[a] = m
					}
					cp = &c
				}
				cp.Chunks[attr.Name] = entries
			}
			if cp != nil {
				staged.Versions[si] = cp
				v.byID[child.ID] = cp
			}
		}
		for si, svm := range staged.Versions {
			if svm.ID == id {
				del := *svm
				del.Deleted = true
				staged.Versions[si] = &del
				break
			}
		}
		if s.opts.Durability {
			if err := ws.sync(s); err != nil {
				s.noteCommitFailure(st, err)
				return err
			}
			if ws.createdFiles() {
				if err := s.fs.SyncDir(ctx.dir); err != nil {
					s.noteCommitFailure(st, err)
					return err
				}
			}
		}
		if err := s.commitMeta(st, &staged); err != nil {
			if isUncertain(err) {
				s.noteCommitFailure(st, err)
			}
			return err
		}
		return nil
	}
	if err := commit(); err != nil {
		ws.sweep(s)
		s.noteDiskPressure(err)
		return err
	}
	st.mutateLocked()
	st.installMeta(staged)
	// drain in-flight readers before sweeping the cache: a reader that
	// snapshotted before the delete may otherwise re-insert entries after
	// the sweep, leaving them resident until eviction pressure finds
	// them.
	st.ioMu.Lock()
	st.ioMu.Unlock() //nolint:staticcheck // empty critical section = barrier
	// only the deleted version's decoded chunks are invalid — children
	// were re-encoded above but their decoded content is unchanged, so
	// the rest of the array's warm cache stays (no epoch bump: version
	// ids are never reused, and selects reject deleted ids before any
	// cache lookup)
	s.chunkCache.InvalidateVersion(name, id)
	return nil
}

// Compact rewrites an array's chunk files keeping only payloads
// referenced by live versions, reclaiming space left behind by
// DeleteVersion and superseded encodings. Like Reorganize, it serializes
// with other destructive rewrites on the array's rewrite latch; the copy
// itself runs under the store lock (it is pure I/O relocation, far
// cheaper than a re-encode).
func (s *Store) Compact(name string) error {
	if err := s.writeGate(name); err != nil {
		return err
	}
	st, err := s.lockRewrite(name)
	if err != nil {
		return err
	}
	defer st.reorgMu.Unlock()
	// commitMu: the generation flip commits new metadata, which must
	// serialize with insert leaders committing outside Store.mu
	st.commitMu.Lock()
	defer st.commitMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.arrays[name] != st {
		return fmt.Errorf("core: no array %q", name)
	}
	st.mutateLocked()
	buildDir := s.newBuildDir(st)
	// sweep any same-named debris a crashed non-durable run left behind
	if err := s.fs.RemoveAll(buildDir); err != nil {
		return err
	}
	if err := s.fs.MkdirAll(buildDir); err != nil {
		return err
	}
	// copy referenced payloads in a deterministic order
	type ref struct {
		vm   *versionMeta
		attr string
		key  string
	}
	var refs []ref
	for _, vm := range st.live() {
		for attr, chunks := range vm.Chunks {
			for key := range chunks {
				refs = append(refs, ref{vm, attr, key})
			}
		}
	}
	sort.Slice(refs, func(a, b int) bool {
		ra, rb := refs[a], refs[b]
		if ra.attr != rb.attr {
			return ra.attr < rb.attr
		}
		if ra.key != rb.key {
			return ra.key < rb.key
		}
		return ra.vm.ID < rb.vm.ID
	})
	// copy-on-write: inner chunk maps of published versions are shared
	// with reader snapshots and must never be written in place, so the
	// relocated entries accumulate in fresh maps that are swapped in at
	// the end
	fresh := make(map[*versionMeta]map[string]map[string]chunkEntry)
	for _, r := range refs {
		e := r.vm.Chunks[r.attr][r.key]
		blob, err := s.readBlob(st.chunksDir(), st.Format, e)
		if err != nil {
			return err
		}
		file := e.File
		if s.opts.CoLocate {
			file = chainFileName(r.attr, r.key)
		}
		// the copy re-frames every payload, upgrading raw-format arrays
		off, err := s.appendBlob(filepath.Join(buildDir, file), formatFramed, blob, false)
		if err != nil {
			return err
		}
		e.File = file
		e.Offset = off
		byAttr, ok := fresh[r.vm]
		if !ok {
			byAttr = make(map[string]map[string]chunkEntry)
			fresh[r.vm] = byAttr
		}
		if byAttr[r.attr] == nil {
			byAttr[r.attr] = make(map[string]chunkEntry, len(r.vm.Chunks[r.attr]))
		}
		byAttr[r.attr][r.key] = e
	}
	err = s.commitGen(st, st.Gen+1, buildDir, func() {
		for vm, byAttr := range fresh {
			for attr, m := range byAttr {
				vm.Chunks[attr] = m
			}
		}
	})
	if err != nil {
		_ = s.fs.RemoveAll(buildDir)
		return err
	}
	if s.maps.active() {
		// decoded content is unchanged, but cached zero-copy planes alias
		// the retired generation's mapping: bump the epoch so they can
		// never be served again, releasing their refs (and with them the
		// deferred unlink) before Store.mu is released. Without mmap the
		// warm cache stays valid and is kept.
		s.invalidateArrayLocked(name)
	}
	return nil
}
