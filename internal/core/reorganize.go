package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"arrayvers/internal/array"
	"arrayvers/internal/compress"
	"arrayvers/internal/delta"
	"arrayvers/internal/layout"
	"arrayvers/internal/matmat"
)

// LayoutPolicy selects how Reorganize chooses version encodings (§IV).
type LayoutPolicy int

// Supported policies.
const (
	// PolicyOptimal uses the exact space-optimal layout (augmented-graph
	// MST, generalizing Algorithms 1 and 2).
	PolicyOptimal LayoutPolicy = iota
	// PolicyAlgorithm1 uses the paper's Algorithm 1 (single
	// materialization + MST of deltas).
	PolicyAlgorithm1
	// PolicyAlgorithm2 uses the paper's Algorithm 2 (minimum spanning
	// forest refinement, Appendix B).
	PolicyAlgorithm2
	// PolicyLinearChain materializes the newest version and deltas each
	// earlier version against its successor (the §V-D baseline).
	PolicyLinearChain
	// PolicyHeadBiased materializes the newest version and stores the
	// rest most compactly given that root (§IV-E last paragraph).
	PolicyHeadBiased
	// PolicyWorkloadAware minimizes workload I/O cost (§IV-D).
	PolicyWorkloadAware
)

func (p LayoutPolicy) String() string {
	switch p {
	case PolicyOptimal:
		return "optimal"
	case PolicyAlgorithm1:
		return "algorithm1"
	case PolicyAlgorithm2:
		return "algorithm2"
	case PolicyLinearChain:
		return "linear"
	case PolicyHeadBiased:
		return "head"
	case PolicyWorkloadAware:
		return "workload"
	default:
		return fmt.Sprintf("LayoutPolicy(%d)", int(p))
	}
}

// ReorganizeOptions parameterizes Reorganize.
type ReorganizeOptions struct {
	Policy LayoutPolicy
	// Workload drives PolicyWorkloadAware; query version values are
	// version IDs.
	Workload []layout.Query
	// MatrixSample, when positive, builds the materialization matrix from
	// sampled cells (§IV-A).
	MatrixSample int
	// BatchK, when positive, re-encodes versions in independent
	// consecutive batches of K versions (§IV-E), bounding matrix size and
	// delta-chain length.
	BatchK int
}

// ComputeLayout builds the materialization matrix for an array's live
// versions and the layout the given policy selects, without rewriting
// anything. The returned id slice maps layout indices to version IDs.
func (s *Store) ComputeLayout(name string, opts ReorganizeOptions) (layout.Layout, *matmat.Matrix, []int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.arrays[name]
	if !ok {
		return layout.Layout{}, nil, nil, fmt.Errorf("core: no array %q", name)
	}
	ids, planes, err := s.loadAllPlanes(st)
	if err != nil {
		return layout.Layout{}, nil, nil, err
	}
	mm, err := s.buildMatrix(st, planes, opts.MatrixSample)
	if err != nil {
		return layout.Layout{}, nil, nil, err
	}
	l, err := chooseLayout(mm, ids, opts)
	if err != nil {
		return layout.Layout{}, nil, nil, err
	}
	return l, mm, ids, nil
}

// Reorganize re-encodes every live version of an array according to the
// chosen layout policy — the "background re-organization step" of §IV-E.
// Old chunk payloads are dropped (the chunks directory is rewritten).
func (s *Store) Reorganize(name string, opts ReorganizeOptions) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	st, ok := s.arrays[name]
	if !ok {
		return fmt.Errorf("core: no array %q", name)
	}
	st.cachedView.Store(nil)
	ids, planes, err := s.loadAllPlanes(st)
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return nil
	}
	var l layout.Layout
	if opts.BatchK > 0 && opts.BatchK < len(ids) {
		// §IV-E: optimize each batch of K versions independently
		l = layout.NewLayout(len(ids))
		for lo := 0; lo < len(ids); lo += opts.BatchK {
			hi := lo + opts.BatchK
			if hi > len(ids) {
				hi = len(ids)
			}
			sub, err := s.layoutForRange(st, planes, ids, lo, hi, opts)
			if err != nil {
				return err
			}
			for i := lo; i < hi; i++ {
				p := sub.Parent[i-lo] + lo
				l.Parent[i] = p
			}
		}
	} else {
		mm, err := s.buildMatrix(st, planes, opts.MatrixSample)
		if err != nil {
			return err
		}
		l, err = chooseLayout(mm, ids, opts)
		if err != nil {
			return err
		}
	}
	if err := s.rewriteLocked(st, ids, planes, l); err != nil {
		return err
	}
	// decoded content is unchanged, but the encoding generation moved on;
	// drop cached chunks so stale in-flight readers cannot repopulate the
	// current generation (the epoch in every cache key enforces this)
	s.invalidateArrayLocked(name)
	return nil
}

func (s *Store) layoutForRange(st *arrayState, planes [][]Plane, ids []int, lo, hi int, opts ReorganizeOptions) (layout.Layout, error) {
	sub := planes[lo:hi]
	mm, err := s.buildMatrix(st, sub, opts.MatrixSample)
	if err != nil {
		return layout.Layout{}, err
	}
	return chooseLayout(mm, ids[lo:hi], opts)
}

// loadAllPlanes reconstructs every live version's content (all
// attributes), in version order.
func (s *Store) loadAllPlanes(st *arrayState) ([]int, [][]Plane, error) {
	live := st.live()
	ids := make([]int, len(live))
	planes := make([][]Plane, len(live))
	for i, vm := range live {
		ids[i] = vm.ID
		planes[i] = make([]Plane, len(st.Schema.Attrs))
		for ai, attr := range st.Schema.Attrs {
			pl, err := s.readPlaneLocked(st, vm.ID, attr.Name)
			if err != nil {
				return nil, nil, err
			}
			planes[i][ai] = pl
		}
	}
	return ids, planes, nil
}

// buildMatrix computes the materialization matrix over versions, summing
// costs across attributes.
func (s *Store) buildMatrix(st *arrayState, planes [][]Plane, sample int) (*matmat.Matrix, error) {
	n := len(planes)
	total := matmat.New(n)
	for ai := range st.Schema.Attrs {
		var mm *matmat.Matrix
		var err error
		if st.SparseRep {
			vs := make([]*array.Sparse, n)
			for i := range planes {
				vs[i] = planes[i][ai].Sparse
			}
			mm, err = matmat.ComputeSparse(vs)
		} else {
			vs := make([]*array.Dense, n)
			for i := range planes {
				vs[i] = planes[i][ai].Dense
			}
			mm, err = matmat.Compute(vs, matmat.Options{Sample: sample, Seed: int64(ai)})
		}
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				total.Cost[i][j] += mm.Cost[i][j]
			}
		}
	}
	return total, nil
}

func chooseLayout(mm *matmat.Matrix, ids []int, opts ReorganizeOptions) (layout.Layout, error) {
	switch opts.Policy {
	case PolicyOptimal:
		return layout.Optimal(mm), nil
	case PolicyAlgorithm1:
		return layout.Algorithm1(mm), nil
	case PolicyAlgorithm2:
		return layout.Algorithm2(mm), nil
	case PolicyLinearChain:
		return layout.LinearChain(mm.N), nil
	case PolicyHeadBiased:
		return layout.HeadBiasedLayout(mm), nil
	case PolicyWorkloadAware:
		wl, err := remapWorkload(opts.Workload, ids)
		if err != nil {
			return layout.Layout{}, err
		}
		return layout.WorkloadAware(mm, wl), nil
	default:
		return layout.Layout{}, fmt.Errorf("core: unknown layout policy %d", opts.Policy)
	}
}

// remapWorkload translates query version IDs into layout indices.
func remapWorkload(wl []layout.Query, ids []int) ([]layout.Query, error) {
	pos := make(map[int]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	out := make([]layout.Query, len(wl))
	for qi, q := range wl {
		mapped := layout.Query{Weight: q.Weight}
		for _, v := range q.Versions {
			p, ok := pos[v]
			if !ok {
				return nil, fmt.Errorf("core: workload references unknown version %d", v)
			}
			mapped.Versions = append(mapped.Versions, p)
		}
		out[qi] = mapped
	}
	return out, nil
}

// rewriteLocked re-encodes all versions per the layout into a fresh
// chunk generation directory, then commits it via the metadata rename
// (see commitGen). The rewrite always produces checksummed frames, so
// it also upgrades legacy raw-format arrays.
func (s *Store) rewriteLocked(st *arrayState, ids []int, planes [][]Plane, l layout.Layout) error {
	newGen := st.Gen + 1
	tmpDir := filepath.Join(st.dir, chunksDirName(newGen)+".build")
	if err := s.fs.RemoveAll(tmpDir); err != nil {
		return err
	}
	if err := s.fs.MkdirAll(tmpDir); err != nil {
		return err
	}
	newEntries := make([]map[string]map[string]chunkEntry, len(ids))
	for i := range ids {
		newEntries[i] = make(map[string]map[string]chunkEntry)
	}
	for ai, attr := range st.Schema.Attrs {
		if st.SparseRep {
			for i := range ids {
				payload, base, err := encodeSparseAgainst(planes, l, i, ai, ids)
				if err != nil {
					return err
				}
				codec := pickCodec(s.opts.Codec, false)
				sealed, used, err := seal(codec, s.opts.AdaptiveCodec, payload, compress.Params{Elem: 1})
				if err != nil {
					return err
				}
				file := chainFileName(attr.Name, "chunk-full")
				off, err := s.appendBlob(filepath.Join(tmpDir, file), formatFramed, sealed, false)
				if err != nil {
					return err
				}
				s.addWrite(int64(len(sealed)))
				newEntries[i][attr.Name] = map[string]chunkEntry{
					"chunk-full": {File: file, Offset: off, Length: int64(len(sealed)), Codec: uint8(used), Base: base},
				}
			}
			continue
		}
		ck, err := st.chunker()
		if err != nil {
			return err
		}
		for i := range ids {
			newEntries[i][attr.Name] = make(map[string]chunkEntry)
		}
		for _, origin := range ck.All() {
			box := ck.Box(origin)
			key := ck.Key(origin)
			for i := range ids {
				target, err := planes[i][ai].Dense.Slice(box)
				if err != nil {
					return err
				}
				payload := target.Bytes()
				entryBase := -1
				rawDense := true
				if p := l.Parent[i]; p != i {
					baseChunk, err := planes[p][ai].Dense.Slice(box)
					if err != nil {
						return err
					}
					blob, err := delta.Encode(s.opts.DeltaMethod, target, baseChunk)
					if err != nil {
						return err
					}
					if len(blob) < len(payload) {
						payload = blob
						entryBase = ids[p]
						rawDense = false
					}
				}
				codec := pickCodec(s.opts.Codec, rawDense)
				sealed, used, err := seal(codec, s.opts.AdaptiveCodec, payload, sealParams(rawDense, box, attr.Type))
				if err != nil {
					return err
				}
				file := chainFileName(attr.Name, key)
				off, err := s.appendBlob(filepath.Join(tmpDir, file), formatFramed, sealed, false)
				if err != nil {
					return err
				}
				s.addWrite(int64(len(sealed)))
				newEntries[i][attr.Name][key] = chunkEntry{
					File: file, Offset: off, Length: int64(len(sealed)), Codec: uint8(used), Base: entryBase,
				}
			}
		}
	}
	return s.commitGen(st, newGen, tmpDir, func() {
		idPos := make(map[int]int, len(ids))
		for i, id := range ids {
			idPos[id] = i
		}
		for _, vm := range st.Versions {
			if i, ok := idPos[vm.ID]; ok {
				vm.Chunks = newEntries[i]
			}
		}
	})
}

// commitGen publishes a fully built chunk generation directory. The
// sequence is the store's commit protocol for destructive rewrites:
//
//  1. sync the build directory (its files were synced as they were
//     written), then rename it to its committed generation name and
//     sync the array directory — the new payloads are now durable but
//     unreferenced;
//  2. stage the new metadata (generation number, framed format, the
//     entries the apply callback installs) and commit it with saveMeta's
//     atomic rename — this is the commit point;
//  3. remove the old generation under the exclusive I/O latch, waiting
//     out in-flight readers whose snapshots pinned it.
//
// A crash before step 2 leaves the old metadata pointing at the intact
// old generation (recovery sweeps the unreferenced new one); a crash
// after it leaves the new metadata pointing at the fully synced new
// generation (recovery sweeps the old one).
func (s *Store) commitGen(st *arrayState, newGen int, buildDir string, apply func()) error {
	if s.opts.Durability {
		// the build phase appends unsynced (one fsync per append would
		// make rewrites O(chunks) in disk-flush cost); sync each built
		// file exactly once here, before anything can reference it
		if err := s.syncDirFiles(buildDir); err != nil {
			return err
		}
		if err := s.fs.SyncDir(buildDir); err != nil {
			return err
		}
	}
	finalDir := filepath.Join(st.dir, chunksDirName(newGen))
	// a leftover directory with this generation name can only be debris
	// from an interrupted rewrite that never committed
	if err := s.fs.RemoveAll(finalDir); err != nil {
		return err
	}
	if err := s.fs.Rename(buildDir, finalDir); err != nil {
		return err
	}
	if s.opts.Durability {
		if err := s.fs.SyncDir(st.dir); err != nil {
			return err
		}
	}
	oldDir := st.chunksDir()
	st.Gen = newGen
	st.Format = formatFramed
	apply()
	if err := s.saveMeta(st); err != nil {
		// the commit did not land on disk; in-memory state keeps the new
		// generation (its payloads are all present and durable) and a
		// reopen recovers to the old metadata + old generation
		return err
	}
	// post-commit garbage collection; a failure just leaves a stale
	// generation for the next Open's recovery to sweep
	st.ioMu.Lock()
	_ = s.fs.RemoveAll(oldDir)
	st.ioMu.Unlock()
	return nil
}

func encodeSparseAgainst(planes [][]Plane, l layout.Layout, i, ai int, ids []int) ([]byte, int, error) {
	sp := planes[i][ai].Sparse
	if p := l.Parent[i]; p != i {
		blob, err := delta.EncodeSparseOps(sp, planes[p][ai].Sparse)
		if err != nil {
			return nil, 0, err
		}
		native := array.MarshalSparse(sp)
		if len(blob) < len(native) {
			return blob, ids[p], nil
		}
		return native, -1, nil
	}
	return array.MarshalSparse(sp), -1, nil
}

// syncDirFiles fsyncs every regular file in dir.
func (s *Store) syncDirFiles(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		f, err := s.fs.Append(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		serr := f.Sync()
		if cerr := f.Close(); serr == nil {
			serr = cerr
		}
		if serr != nil {
			return serr
		}
	}
	return nil
}

// DeleteVersion removes a version. Versions delta'ed against it are
// first re-encoded (against the deleted version's own base, or
// materialized), preserving the no-overwrite property for everything
// still live. Space is reclaimed by Compact.
func (s *Store) DeleteVersion(name string, id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	st, ok := s.arrays[name]
	if !ok {
		return fmt.Errorf("core: no array %q", name)
	}
	vm, err := st.version(id)
	if err != nil {
		return err
	}
	st.cachedView.Store(nil)
	// the child re-encodes below only ever append (fresh FileSeq files in
	// per-version mode, chain tails in co-located mode), so in-flight
	// readers keep decoding their snapshots without a latch
	// re-encode every live chunk that bases on the deleted version
	for _, child := range st.live() {
		if child.ID == id {
			continue
		}
		for _, attr := range st.Schema.Attrs {
			dirty := false
			for _, e := range child.Chunks[attr.Name] {
				if e.Base == id {
					dirty = true
					break
				}
			}
			if !dirty {
				continue
			}
			pl, err := s.readPlaneLocked(st, child.ID, attr.Name)
			if err != nil {
				return err
			}
			// choose the deleted version's base as the new base when it
			// is still live, otherwise materialize; scan every chunk and
			// take the newest live base so the pick is deterministic
			// (map iteration order is not)
			newBase := 0
			for _, e := range vm.Chunks[attr.Name] {
				if e.Base >= 0 && e.Base > newBase {
					if _, err := st.version(e.Base); err == nil {
						newBase = e.Base
					}
				}
			}
			entries, err := s.encodePlane(st, child.ID, attr, pl, newBase)
			if err != nil {
				return err
			}
			child.Chunks[attr.Name] = entries
		}
	}
	vm.Deleted = true
	if err := s.syncChunks(st); err != nil {
		return err
	}
	if err := s.saveMeta(st); err != nil {
		return err
	}
	// drain in-flight readers before sweeping the cache: a reader that
	// snapshotted before the delete may otherwise re-insert entries after
	// the sweep, leaving them resident until eviction pressure finds
	// them.
	st.ioMu.Lock()
	st.ioMu.Unlock() //nolint:staticcheck // empty critical section = barrier
	// only the deleted version's decoded chunks are invalid — children
	// were re-encoded above but their decoded content is unchanged, so
	// the rest of the array's warm cache stays (no epoch bump: version
	// ids are never reused, and selects reject deleted ids before any
	// cache lookup)
	s.chunkCache.InvalidateVersion(name, id)
	return nil
}

// Compact rewrites an array's chunk files keeping only payloads
// referenced by live versions, reclaiming space left behind by
// DeleteVersion and superseded encodings.
func (s *Store) Compact(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	st, ok := s.arrays[name]
	if !ok {
		return fmt.Errorf("core: no array %q", name)
	}
	st.cachedView.Store(nil)
	newGen := st.Gen + 1
	tmpDir := filepath.Join(st.dir, chunksDirName(newGen)+".build")
	if err := s.fs.RemoveAll(tmpDir); err != nil {
		return err
	}
	if err := s.fs.MkdirAll(tmpDir); err != nil {
		return err
	}
	// copy referenced payloads in a deterministic order
	type ref struct {
		vm   *versionMeta
		attr string
		key  string
	}
	var refs []ref
	for _, vm := range st.live() {
		for attr, chunks := range vm.Chunks {
			for key := range chunks {
				refs = append(refs, ref{vm, attr, key})
			}
		}
	}
	sort.Slice(refs, func(a, b int) bool {
		ra, rb := refs[a], refs[b]
		if ra.attr != rb.attr {
			return ra.attr < rb.attr
		}
		if ra.key != rb.key {
			return ra.key < rb.key
		}
		return ra.vm.ID < rb.vm.ID
	})
	// copy-on-write: inner chunk maps of published versions are shared
	// with reader snapshots and must never be written in place, so the
	// relocated entries accumulate in fresh maps that are swapped in at
	// the end
	fresh := make(map[*versionMeta]map[string]map[string]chunkEntry)
	for _, r := range refs {
		e := r.vm.Chunks[r.attr][r.key]
		blob, err := s.readBlob(st.chunksDir(), st.Format, e)
		if err != nil {
			return err
		}
		file := e.File
		if s.opts.CoLocate {
			file = chainFileName(r.attr, r.key)
		}
		// the copy re-frames every payload, upgrading raw-format arrays
		off, err := s.appendBlob(filepath.Join(tmpDir, file), formatFramed, blob, false)
		if err != nil {
			return err
		}
		e.File = file
		e.Offset = off
		byAttr, ok := fresh[r.vm]
		if !ok {
			byAttr = make(map[string]map[string]chunkEntry)
			fresh[r.vm] = byAttr
		}
		if byAttr[r.attr] == nil {
			byAttr[r.attr] = make(map[string]chunkEntry, len(r.vm.Chunks[r.attr]))
		}
		byAttr[r.attr][r.key] = e
	}
	return s.commitGen(st, newGen, tmpDir, func() {
		for vm, byAttr := range fresh {
			for attr, m := range byAttr {
				vm.Chunks[attr] = m
			}
		}
	})
}
