package core

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"arrayvers/internal/trace"
)

// Stage names for the two instrumented pipelines. Select stages are the
// leaf operations of readRegionView/resolveDenseChunk — each delta-chain
// link times its own cache probe, blob read, frame decode, and delta
// apply, so totals add up without double counting across the recursion.
// Commit stages follow one insert from staging through the group
// commit; the shared stages (data_fsync, meta_commit, install) are
// attributed in full to every batch member, since each member's latency
// really does include the whole shared wait.
const (
	StageSnapshot    = "snapshot"    // metadata view under the store lock
	StageCache       = "cache"       // store-wide LRU probe
	StageRead        = "read"        // chunk blob read from disk
	StageDecode      = "decode"      // frame unseal + native decode
	StageDelta       = "delta"       // delta-chain apply
	StageMaterialize = "materialize" // slice + copy into the result array

	StageStageEncode = "stage_encode" // resolve + encode + unsynced append
	StageQueueWait   = "queue_wait"   // enqueue until a leader drains it
	StageDataFsync   = "data_fsync"   // group fsync of the batch's chunk files
	StageMetaCommit  = "meta_commit"  // manifest-log append (legacy: versions.json rename)
	StageInstall     = "install"      // in-memory install of the committed doc
)

// selectStageOrder / commitStageOrder fix the pipeline order for metric
// exposition and EXPLAIN output.
var (
	selectStageOrder = []string{StageSnapshot, StageCache, StageRead, StageDecode, StageDelta, StageMaterialize}
	commitStageOrder = []string{StageStageEncode, StageQueueWait, StageDataFsync, StageMetaCommit, StageInstall}
)

// stageLatencyBounds spans the per-chunk micro-operations (tens of
// microseconds) through fsync-bound commit stages (tens of
// milliseconds) up to whole slow queries.
var stageLatencyBounds = []float64{0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5}

// batchSizeBounds buckets the group-commit coalescing factor.
var batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64}

// tunePassBounds buckets adaptive-tuner pass durations.
var tunePassBounds = []float64{0.001, 0.01, 0.1, 0.5, 2.5, 10}

// stageMetric is one stage's always-on aggregate: a latency histogram
// plus a byte counter.
type stageMetric struct {
	hist  *trace.Histogram
	bytes atomic.Int64
}

// profile is the store's always-on instrumentation state. Everything in
// it is atomic or internally locked, so the hot paths record without
// taking any store lock.
type profile struct {
	selStages map[string]*stageMetric
	comStages map[string]*stageMetric
	batchSize *trace.Histogram
	tunePass  *trace.Histogram
	// decodeActive gauges chunk workers currently inside the select
	// fan-out (the decode-pool occupancy).
	decodeActive atomic.Int64
	// recoveryNanos is what Open-time crash recovery took (0 when it
	// did not run). Fixed at Open.
	recoveryNanos atomic.Int64
	// cacheByArray maps array name -> *arrayCacheCounters for the
	// per-array hit-ratio series.
	cacheByArray sync.Map
}

type arrayCacheCounters struct {
	hits   atomic.Int64
	misses atomic.Int64
}

func newProfile() *profile {
	p := &profile{
		selStages: make(map[string]*stageMetric, len(selectStageOrder)),
		comStages: make(map[string]*stageMetric, len(commitStageOrder)),
		batchSize: trace.NewHistogram(batchSizeBounds),
		tunePass:  trace.NewHistogram(tunePassBounds),
	}
	for _, st := range selectStageOrder {
		p.selStages[st] = &stageMetric{hist: trace.NewHistogram(stageLatencyBounds)}
	}
	for _, st := range commitStageOrder {
		p.comStages[st] = &stageMetric{hist: trace.NewHistogram(stageLatencyBounds)}
	}
	return p
}

func (p *profile) observeCommit(stage string, d time.Duration, bytes int64) {
	m := p.comStages[stage]
	m.hist.Observe(d.Seconds())
	if bytes != 0 {
		m.bytes.Add(bytes)
	}
}

// cacheAccess bumps the per-array cache hit/miss counters.
func (p *profile) cacheAccess(array string, hit bool) {
	got, ok := p.cacheByArray.Load(array)
	if !ok {
		got, _ = p.cacheByArray.LoadOrStore(array, &arrayCacheCounters{})
	}
	c := got.(*arrayCacheCounters)
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
}

// opTracker routes one select's stage observations to both the
// store-wide profile histograms and, when the request carried one, its
// trace. A nil tracker is a no-op, so internal readers (recovery,
// verify, the tuner's history scans) stay out of the query-path
// histograms by passing nil.
type opTracker struct {
	stages map[string]*stageMetric
	tr     *trace.Trace
}

// selTracker builds the select-path tracker for one query, picking up
// the request trace from ctx if present.
func (s *Store) selTracker(ctx context.Context) *opTracker {
	return &opTracker{stages: s.prof.selStages, tr: trace.FromContext(ctx)}
}

// observe records one stage observation. Safe on a nil tracker and
// from concurrent chunk workers.
func (t *opTracker) observe(stage string, d time.Duration, bytes int64) {
	if t == nil {
		return
	}
	m := t.stages[stage]
	m.hist.Observe(d.Seconds())
	if bytes != 0 {
		m.bytes.Add(bytes)
	}
	t.tr.Observe(stage, d, bytes)
}

// attr bumps a trace attribute (no profile analog). Safe on nil.
func (t *opTracker) attr(name string, v int64) {
	if t == nil {
		return
	}
	t.tr.Add(name, v)
}

// StageProfile is one pipeline stage's aggregate in a ProfileSnapshot.
type StageProfile struct {
	Stage string
	Hist  trace.HistSnapshot
	Bytes int64
}

// ArrayCacheProfile is one array's decoded-chunk cache traffic.
type ArrayCacheProfile struct {
	Array  string
	Hits   int64
	Misses int64
}

// ProfileSnapshot is a point-in-time copy of the store's stage-level
// instrumentation, rendered by the daemon's /metrics handler. Stage
// slices follow pipeline order; ArrayCaches is sorted by array name.
type ProfileSnapshot struct {
	SelectStages []StageProfile
	CommitStages []StageProfile
	GroupBatch   trace.HistSnapshot
	TunePass     trace.HistSnapshot
	DecodeActive int64
	// RecoverySeconds is how long Open-time crash recovery took (0 when
	// the store opened without Durability).
	RecoverySeconds float64
	ArrayCaches     []ArrayCacheProfile
}

// Profile snapshots the store's stage-level latency/byte aggregates,
// the group-commit batch-size and tuner-pass histograms, the
// decode-pool gauge, and the per-array cache counters.
func (s *Store) Profile() ProfileSnapshot {
	p := s.prof
	snap := ProfileSnapshot{
		GroupBatch:      p.batchSize.Snapshot(),
		TunePass:        p.tunePass.Snapshot(),
		DecodeActive:    p.decodeActive.Load(),
		RecoverySeconds: time.Duration(p.recoveryNanos.Load()).Seconds(),
	}
	for _, st := range selectStageOrder {
		m := p.selStages[st]
		snap.SelectStages = append(snap.SelectStages, StageProfile{Stage: st, Hist: m.hist.Snapshot(), Bytes: m.bytes.Load()})
	}
	for _, st := range commitStageOrder {
		m := p.comStages[st]
		snap.CommitStages = append(snap.CommitStages, StageProfile{Stage: st, Hist: m.hist.Snapshot(), Bytes: m.bytes.Load()})
	}
	p.cacheByArray.Range(func(k, v any) bool {
		c := v.(*arrayCacheCounters)
		snap.ArrayCaches = append(snap.ArrayCaches, ArrayCacheProfile{
			Array:  k.(string),
			Hits:   c.hits.Load(),
			Misses: c.misses.Load(),
		})
		return true
	})
	sort.Slice(snap.ArrayCaches, func(i, j int) bool { return snap.ArrayCaches[i].Array < snap.ArrayCaches[j].Array })
	return snap
}
