package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Self-describing chunk frames (on-disk format 1). Every chunk payload
// written by a format-1 array is wrapped in a fixed 13-byte header:
//
//	offset 0: 4-byte magic "AVC1"
//	offset 4: 1-byte frame format version
//	offset 5: 4-byte payload length (little-endian uint32)
//	offset 9: 4-byte CRC32-C of the payload (little-endian)
//
// The header lets readBlob verify that the bytes at a metadata-recorded
// (file, offset, length) triple really are the frame that was committed
// there — catching torn writes, misdirected reads against a stale
// offset, and bit rot — and lets recovery distinguish a clean frame
// boundary from a torn tail. Format-0 arrays (created before frames
// existed) store raw payloads and are still readable; Reorganize and
// Compact upgrade them to format 1 when they rewrite every payload.

const (
	// formatRaw is the legacy on-disk format: raw chunk payloads, no
	// frame headers.
	formatRaw = 0
	// formatFramed wraps every chunk payload in a checksummed frame.
	formatFramed = 1

	frameMagic     = "AVC1"
	frameVersion   = 1
	frameHeaderLen = 13
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameLen returns the on-disk size of a payload of n bytes under the
// given array format.
func frameLen(format int, n int64) int64 {
	if format == formatFramed {
		return n + frameHeaderLen
	}
	return n
}

// appendFrame wraps payload in a frame and appends it to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = append(dst, frameMagic...)
	dst = append(dst, frameVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// parseFrame validates a frame read from disk (header plus payload) and
// returns the payload. wantLen is the payload length the metadata
// recorded for this frame.
func parseFrame(buf []byte, wantLen int64) ([]byte, error) {
	if int64(len(buf)) < frameHeaderLen {
		return nil, fmt.Errorf("core: frame truncated: %d bytes", len(buf))
	}
	if string(buf[:4]) != frameMagic {
		return nil, fmt.Errorf("core: bad frame magic %q", buf[:4])
	}
	if buf[4] != frameVersion {
		return nil, fmt.Errorf("core: unsupported frame version %d", buf[4])
	}
	n := int64(binary.LittleEndian.Uint32(buf[5:9]))
	if n != wantLen {
		return nil, fmt.Errorf("core: frame length %d does not match metadata length %d", n, wantLen)
	}
	if int64(len(buf)) < frameHeaderLen+n {
		return nil, fmt.Errorf("core: frame payload truncated: %d of %d bytes", len(buf)-frameHeaderLen, n)
	}
	payload := buf[frameHeaderLen : frameHeaderLen+n]
	want := binary.LittleEndian.Uint32(buf[9:13])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("core: frame checksum mismatch: %08x != %08x", got, want)
	}
	return payload, nil
}
