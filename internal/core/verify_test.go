package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestVerifyHealthyStore(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("V", 32)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(5, 32, 37)
	for _, v := range versions {
		if _, err := s.Insert("V", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Verify("V")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("healthy store has problems: %v", rep.Problems)
	}
	if rep.Versions != 5 || rep.Chunks == 0 {
		t.Fatalf("report: %+v", rep)
	}
	// linear insert chain: version 5 depth must be 5
	if rep.ChainDepths[5] != 5 || rep.ChainDepths[1] != 1 {
		t.Fatalf("chain depths: %v", rep.ChainDepths)
	}
	if rep.DanglingBytes != 0 {
		t.Fatalf("dangling bytes in fresh store: %d", rep.DanglingBytes)
	}
}

func TestVerifyDetectsDanglingAfterDelete(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.CreateArray(schema2D("VD", 32)); err != nil {
		t.Fatal(err)
	}
	for _, v := range evolvingVersions(4, 32, 38) {
		if _, err := s.Insert("VD", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DeleteVersion("VD", 2); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Verify("VD")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("post-delete store has problems: %v", rep.Problems)
	}
	if rep.DanglingBytes == 0 {
		t.Fatal("delete left no dangling bytes?")
	}
	if err := s.Compact("VD"); err != nil {
		t.Fatal(err)
	}
	rep, _ = s.Verify("VD")
	if rep.DanglingBytes != 0 {
		t.Fatalf("compact left %d dangling bytes", rep.DanglingBytes)
	}
}

func TestVerifyDetectsCorruptMetadata(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.PerArrayCommit = true // sabotages versions.json directly
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(schema2D("VC", 32)); err != nil {
		t.Fatal(err)
	}
	for _, v := range evolvingVersions(3, 32, 39) {
		if _, err := s.Insert("VC", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	// sabotage the metadata: point version 3's chunks at version 99
	metaPath := filepath.Join(dir, "VC", metaFile)
	raw, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	var st arrayState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	for _, chunks := range st.Versions[2].Chunks {
		for k, e := range chunks {
			if e.Base >= 0 {
				e.Base = 99
				chunks[k] = e
			}
		}
	}
	sab, _ := json.Marshal(&st)
	if err := os.WriteFile(metaPath, sab, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Verify("VC")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("verify missed dangling delta base")
	}
}

func TestVerifyMissingArray(t *testing.T) {
	s := testStore(t, smallOpts())
	if _, err := s.Verify("nope"); err == nil {
		t.Fatal("verify of missing array accepted")
	}
}
