package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"arrayvers/internal/layout"
)

// Workload statistics collection for the adaptive reorganizer (§IV-D
// closed-loop): every successful select records the set of versions it
// accessed into a per-array histogram of access patterns. The background
// tuner (tuner.go) periodically snapshots the histogram as weighted
// layout queries, estimates the I/O cost of the current layout against
// the workload-aware one, and triggers a reorganization when the
// projected savings clear a threshold.
//
// The recorder is deliberately lock-cheap on the select hot path: each
// record touches one shard mutex chosen by a hash of the access pattern,
// so concurrent selects with different patterns never contend. Weights
// decay multiplicatively on every tuner pass (AutoTuneOptions.Decay), so
// the histogram is an exponentially decayed view of recent traffic
// rather than an all-time count, and a shifted workload re-tunes.

const (
	// workloadShards is the per-array shard count; patterns hash across
	// shards so concurrent recorders rarely share a mutex.
	workloadShards = 16
	// maxPatternsPerShard bounds the histogram's memory: when a shard
	// fills up, the lowest-weight pattern is evicted (decay makes cold
	// patterns sink to the bottom first).
	maxPatternsPerShard = 64
)

// workloadEntry is one recorded access pattern: the ordered version set
// one query touched, with its decayed access weight.
type workloadEntry struct {
	versions []int
	weight   float64
}

// workloadShard is one lock-striped slice of an array's histogram.
type workloadShard struct {
	mu   sync.Mutex
	pats map[string]*workloadEntry
}

// arrayRecorder is one array's sharded access histogram.
type arrayRecorder struct {
	shards [workloadShards]workloadShard
	ops    atomic.Int64 // cumulative recorded read ops (not decayed)
}

// workloadRecorder is the store-wide registry of per-array recorders.
type workloadRecorder struct {
	mu     sync.RWMutex
	arrays map[string]*arrayRecorder
}

func newWorkloadRecorder() *workloadRecorder {
	return &workloadRecorder{arrays: make(map[string]*arrayRecorder)}
}

// patternKey canonicalizes a version set; the ids arrive in query order
// and stay that way (two orderings of the same set are distinct patterns,
// matching workload.ToQueries semantics).
func patternKey(versions []int) (string, uint64) {
	h := fnv.New64a()
	b := make([]byte, 0, len(versions)*4)
	for _, v := range versions {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	_, _ = h.Write(b)
	return string(b), h.Sum64()
}

func (r *workloadRecorder) forArray(name string, create bool) *arrayRecorder {
	r.mu.RLock()
	ar := r.arrays[name]
	r.mu.RUnlock()
	if ar != nil || !create {
		return ar
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ar = r.arrays[name]; ar == nil {
		ar = &arrayRecorder{}
		for i := range ar.shards {
			ar.shards[i].pats = make(map[string]*workloadEntry)
		}
		r.arrays[name] = ar
	}
	return ar
}

// record adds one observed access of the given version set with the
// given weight (selects record weight 1; RecordWorkload merges imported
// queries with their own weights).
func (r *workloadRecorder) record(name string, versions []int, weight float64) {
	if len(versions) == 0 || weight <= 0 {
		return
	}
	ar := r.forArray(name, true)
	ar.ops.Add(1)
	key, h := patternKey(versions)
	sh := &ar.shards[h%workloadShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.pats[key]; ok {
		e.weight += weight
		return
	}
	if len(sh.pats) >= maxPatternsPerShard {
		evictColdest(sh.pats)
	}
	sh.pats[key] = &workloadEntry{versions: append([]int(nil), versions...), weight: weight}
}

// evictColdest removes the minimum-weight pattern from a full shard.
func evictColdest(pats map[string]*workloadEntry) {
	coldKey, coldW := "", 0.0
	first := true
	for k, e := range pats {
		if first || e.weight < coldW {
			coldKey, coldW, first = k, e.weight, false
		}
	}
	delete(pats, coldKey)
}

// queries snapshots an array's histogram as weighted layout queries
// (version values are version IDs) plus the total recorded weight. The
// result is sorted by descending weight so it is deterministic for a
// given histogram state.
func (r *workloadRecorder) queries(name string) ([]layout.Query, float64) {
	ar := r.forArray(name, false)
	if ar == nil {
		return nil, 0
	}
	var out []layout.Query
	total := 0.0
	for i := range ar.shards {
		sh := &ar.shards[i]
		sh.mu.Lock()
		for _, e := range sh.pats {
			out = append(out, layout.Query{
				Versions: append([]int(nil), e.versions...),
				Weight:   e.weight,
			})
			total += e.weight
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Weight != out[b].Weight {
			return out[a].Weight > out[b].Weight
		}
		return lessVersions(out[a].Versions, out[b].Versions)
	})
	return out, total
}

func lessVersions(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// scale multiplies every weight by f (the tuner's per-pass exponential
// decay) and drops patterns whose weight has decayed to noise.
func (r *workloadRecorder) scale(name string, f float64) {
	ar := r.forArray(name, false)
	if ar == nil {
		return
	}
	const floor = 1e-6
	for i := range ar.shards {
		sh := &ar.shards[i]
		sh.mu.Lock()
		for k, e := range sh.pats {
			e.weight *= f
			if e.weight < floor {
				delete(sh.pats, k)
			}
		}
		sh.mu.Unlock()
	}
}

// drop forgets an array's histogram (DeleteArray).
func (r *workloadRecorder) drop(name string) {
	r.mu.Lock()
	delete(r.arrays, name)
	r.mu.Unlock()
}

// names lists arrays with recorded traffic, sorted.
func (r *workloadRecorder) names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.arrays))
	for n := range r.arrays {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// totals returns the store-wide cumulative recorded ops and the current
// number of distinct patterns, for Stats().
func (r *workloadRecorder) totals() (ops, patterns int64) {
	r.mu.RLock()
	recorders := make([]*arrayRecorder, 0, len(r.arrays))
	for _, ar := range r.arrays {
		recorders = append(recorders, ar)
	}
	r.mu.RUnlock()
	for _, ar := range recorders {
		ops += ar.ops.Load()
		for i := range ar.shards {
			sh := &ar.shards[i]
			sh.mu.Lock()
			patterns += int64(len(sh.pats))
			sh.mu.Unlock()
		}
	}
	return ops, patterns
}

// --- public surface ---

// Workload returns the array's recorded access histogram as weighted
// queries (version values are version IDs), heaviest first. The weights
// are exponentially decayed by tuner passes, so they describe recent
// traffic; an array that has never been selected returns an empty slice.
func (s *Store) Workload(name string) ([]layout.Query, error) {
	s.mu.RLock()
	_, ok := s.arrays[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: no array %q", name)
	}
	wl, _ := s.workload.queries(name)
	return wl, nil
}

// RecordWorkload merges the given weighted queries into the array's
// recorded workload histogram, as if the accesses had been observed by
// the select path. It lets embedders and the avstore CLI seed the
// adaptive tuner with an a-priori workload (§IV-D) instead of waiting
// for live traffic.
func (s *Store) RecordWorkload(name string, queries []layout.Query) error {
	s.mu.RLock()
	_, ok := s.arrays[name]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("core: no array %q", name)
	}
	for _, q := range queries {
		s.workload.record(name, q.Versions, q.Weight)
	}
	return nil
}

// recordAccess notes one successful select of the given versions.
func (s *Store) recordAccess(name string, versions []int) {
	s.workload.record(name, versions, 1)
}
