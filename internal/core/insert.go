package core

import (
	"fmt"

	"arrayvers/internal/array"
	"arrayvers/internal/compress"
	"arrayvers/internal/delta"
	"arrayvers/internal/layout"
)

// Plane is the content of one attribute of one version: either a dense
// or a sparse array over the schema's dimensions.
type Plane struct {
	Dense  *array.Dense
	Sparse *array.Sparse
}

// IsSparse reports whether the plane uses the sparse representation.
func (p Plane) IsSparse() bool { return p.Sparse != nil }

func (p Plane) validate(schema array.Schema, attr array.Attribute) error {
	switch {
	case p.Dense != nil && p.Sparse != nil:
		return fmt.Errorf("core: plane has both dense and sparse content")
	case p.Dense != nil:
		if p.Dense.DType() != attr.Type {
			return fmt.Errorf("core: attribute %q expects %v, payload is %v", attr.Name, attr.Type, p.Dense.DType())
		}
		return checkShape(schema, p.Dense.Shape())
	case p.Sparse != nil:
		if p.Sparse.DType() != attr.Type {
			return fmt.Errorf("core: attribute %q expects %v, payload is %v", attr.Name, attr.Type, p.Sparse.DType())
		}
		return checkShape(schema, p.Sparse.Shape())
	default:
		return fmt.Errorf("core: empty plane")
	}
}

func checkShape(schema array.Schema, shape []int64) error {
	want := schema.Shape()
	if len(shape) != len(want) {
		return fmt.Errorf("core: payload has %d dims, schema has %d", len(shape), len(want))
	}
	for i := range want {
		if shape[i] != want[i] {
			return fmt.Errorf("core: payload shape %v, schema shape %v", shape, want)
		}
	}
	return nil
}

// CellUpdate is one element of a delta-list payload: set the cell at
// Coords (for attribute Attr, default the first) to the given bit
// pattern.
type CellUpdate struct {
	Attr   string
	Coords []int64
	Bits   int64
}

// Payload is the content of an Insert, in one of the paper's three forms
// (§II-A): dense, sparse, or a delta-list against a base version.
type Payload struct {
	// Planes carries the full content, one plane per attribute (dense or
	// sparse form).
	Planes []Plane
	// DeltaBase, when positive, selects the delta-list form: the new
	// version equals version DeltaBase except at the listed updates.
	DeltaBase int
	Updates   []CellUpdate
}

// DensePayload wraps a single-attribute dense content.
func DensePayload(d *array.Dense) Payload { return Payload{Planes: []Plane{{Dense: d}}} }

// SparsePayload wraps a single-attribute sparse content.
func SparsePayload(sp *array.Sparse) Payload { return Payload{Planes: []Plane{{Sparse: sp}}} }

// DeltaListPayload builds the delta-list insert form.
func DeltaListPayload(base int, updates []CellUpdate) Payload {
	return Payload{DeltaBase: base, Updates: updates}
}

// Insert adds a new version to the named array and returns its ID
// (temporal versions are numbered 1, 2, ... as in AQL's Example@1).
func (s *Store) Insert(name string, p Payload) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.insertLocked(name, p, "insert", nil)
}

func (s *Store) insertLocked(name string, p Payload, kind string, extraParents []int) (int, error) {
	if s.closed {
		return 0, ErrClosed
	}
	st, ok := s.arrays[name]
	if !ok {
		return 0, fmt.Errorf("core: no array %q", name)
	}
	st.mutateLocked()
	planes, parents, err := s.resolvePayload(st, p)
	if err != nil {
		return 0, err
	}
	parents = append(parents, extraParents...)
	// representation is fixed by the first inserted version
	if len(st.Versions) == 0 {
		st.SparseRep = planes[0].IsSparse()
		if st.SparseRep {
			st.Fill = planes[0].Sparse.Fill()
		}
	}
	for i, pl := range planes {
		if pl.IsSparse() != st.SparseRep {
			return 0, fmt.Errorf("core: array %q uses the %s representation; payload attribute %d does not",
				name, repName(st.SparseRep), i)
		}
		if st.SparseRep && pl.Sparse.Fill() != st.Fill {
			return 0, fmt.Errorf("core: array %q has default value %d, payload has %d", name, st.Fill, pl.Sparse.Fill())
		}
	}
	id := st.NextID
	vm := &versionMeta{
		ID:      id,
		Parents: dedupInts(parents),
		Time:    s.clock(),
		Kind:    kind,
		Chunks:  make(map[string]map[string]chunkEntry),
	}
	base := s.chooseDeltaBase(st, planes)
	for ai, attr := range st.Schema.Attrs {
		entries, err := s.encodePlane(st, id, attr, planes[ai], base)
		if err != nil {
			return 0, err
		}
		vm.Chunks[attr.Name] = entries
	}
	st.Versions = append(st.Versions, vm)
	st.NextID++
	if err := s.maybeBatchReencode(st); err != nil {
		return 0, err
	}
	if err := s.syncChunks(st); err != nil {
		return 0, err
	}
	if err := s.saveMeta(st); err != nil {
		return 0, err
	}
	return id, nil
}

// syncChunks makes the chunks directory's entries durable before a
// metadata commit: the payload bytes were already fsynced by writeBlob,
// but files created by this mutation also need their directory entry on
// disk before metadata can reference them. No-op without Durability.
func (s *Store) syncChunks(st *arrayState) error {
	if !s.opts.Durability {
		return nil
	}
	return s.fs.SyncDir(st.chunksDir())
}

// maybeBatchReencode implements §IV-E's batched update heuristic: once
// AutoBatchK versions have accumulated since the last batch boundary,
// the newest K versions are re-encoded together under the optimal layout
// computed over the batch alone. Earlier batches are left untouched.
func (s *Store) maybeBatchReencode(st *arrayState) error {
	k := s.opts.AutoBatchK
	if k <= 1 {
		return nil
	}
	live := st.live()
	if len(live) == 0 || len(live)%k != 0 {
		return nil
	}
	batch := live[len(live)-k:]
	// re-encodes only ever append: chain files grow at the tail and
	// per-version files get fresh FileSeq names, so in-flight lock-free
	// readers keep decoding the byte ranges their snapshots reference
	// and no I/O latch is needed here.
	// load batch contents
	planes := make([][]Plane, k)
	for i, vm := range batch {
		planes[i] = make([]Plane, len(st.Schema.Attrs))
		for ai, attr := range st.Schema.Attrs {
			pl, err := s.readPlaneLocked(st, vm.ID, attr.Name)
			if err != nil {
				return err
			}
			planes[i][ai] = pl
		}
	}
	mm, err := s.buildMatrix(st, planes, s.opts.EstimateSample)
	if err != nil {
		return err
	}
	l := layout.Optimal(mm)
	// re-encode every batch member per the layout; bases stay inside the
	// batch, keeping batches separate as §IV-E prescribes
	for i, vm := range batch {
		base := 0
		if p := l.Parent[i]; p != i {
			base = batch[p].ID
		}
		for ai, attr := range st.Schema.Attrs {
			entries, err := s.encodePlane(st, vm.ID, attr, planes[i][ai], base)
			if err != nil {
				return err
			}
			vm.Chunks[attr.Name] = entries
		}
	}
	return nil
}

func repName(sparse bool) string {
	if sparse {
		return "sparse"
	}
	return "dense"
}

// resolvePayload expands the three payload forms into full per-attribute
// planes and the implied lineage parents.
func (s *Store) resolvePayload(st *arrayState, p Payload) ([]Plane, []int, error) {
	var parents []int
	if last := lastLiveID(st); last > 0 {
		parents = append(parents, last)
	}
	if p.DeltaBase > 0 {
		// delta-list form: inherit the base version and apply updates
		if _, err := st.version(p.DeltaBase); err != nil {
			return nil, nil, err
		}
		planes := make([]Plane, len(st.Schema.Attrs))
		for ai, attr := range st.Schema.Attrs {
			pl, err := s.readPlaneLocked(st, p.DeltaBase, attr.Name)
			if err != nil {
				return nil, nil, err
			}
			planes[ai] = pl
		}
		for _, u := range p.Updates {
			ai := 0
			if u.Attr != "" {
				ai = st.Schema.AttrIndex(u.Attr)
				if ai < 0 {
					return nil, nil, fmt.Errorf("core: delta-list update names unknown attribute %q", u.Attr)
				}
			}
			if len(u.Coords) != len(st.Schema.Dims) {
				return nil, nil, fmt.Errorf("core: delta-list update has %d coords, schema has %d dims", len(u.Coords), len(st.Schema.Dims))
			}
			if planes[ai].IsSparse() {
				flat := flatIndex(st.Schema.Shape(), u.Coords)
				planes[ai].Sparse.SetBits(flat, u.Bits)
			} else {
				planes[ai].Dense.SetBitsAt(u.Coords, u.Bits)
			}
		}
		return planes, []int{p.DeltaBase}, nil
	}
	if len(p.Planes) != len(st.Schema.Attrs) {
		return nil, nil, fmt.Errorf("core: payload has %d planes, schema has %d attributes", len(p.Planes), len(st.Schema.Attrs))
	}
	for ai, attr := range st.Schema.Attrs {
		if err := p.Planes[ai].validate(st.Schema, attr); err != nil {
			return nil, nil, err
		}
	}
	return p.Planes, parents, nil
}

func flatIndex(shape, coords []int64) int64 {
	idx := int64(0)
	for i, c := range coords {
		idx = idx*shape[i] + c
	}
	return idx
}

func lastLiveID(st *arrayState) int {
	best := 0
	for _, v := range st.live() {
		if v.ID > best {
			best = v.ID
		}
	}
	return best
}

func dedupInts(in []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range in {
		if v > 0 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// chooseDeltaBase picks the version the new content should be delta'ed
// against, comparing the estimated delta size against the newest
// DeltaCandidates versions with the materialized size ("the payload is
// analyzed so it can be encoded as a delta off of an existing version",
// §II-A). Returns 0 to materialize.
func (s *Store) chooseDeltaBase(st *arrayState, planes []Plane) int {
	if !s.opts.AutoDelta || len(st.Versions) == 0 {
		return 0
	}
	live := st.live()
	if len(live) == 0 {
		return 0
	}
	k := s.opts.DeltaCandidates
	if k > len(live) {
		k = len(live)
	}
	pl := planes[0]
	var matSize int64
	if pl.IsSparse() {
		matSize = delta.SparseMaterializedSize(pl.Sparse)
	} else {
		matSize = delta.MaterializedSize(pl.Dense)
	}
	bestBase, bestSize := 0, matSize
	for i := len(live) - k; i < len(live); i++ {
		cand := live[i].ID
		basePl, err := s.readPlaneLocked(st, cand, st.Schema.Attrs[0].Name)
		if err != nil {
			continue
		}
		var size int64
		if pl.IsSparse() {
			blob, err := delta.EncodeSparseOps(pl.Sparse, basePl.Sparse)
			if err != nil {
				continue
			}
			size = int64(len(blob))
		} else {
			size = delta.EstimateSize(pl.Dense, basePl.Dense, s.opts.EstimateSample, int64(cand))
		}
		if size < bestSize {
			bestBase, bestSize = cand, size
		}
	}
	return bestBase
}

// encodePlane chunks one attribute's content and writes every chunk,
// delta-encoding against the corresponding chunk of the base version when
// that is smaller ("disk space usage is calculated by trying both methods
// and choosing the more economical one", §III-B.3).
func (s *Store) encodePlane(st *arrayState, id int, attr array.Attribute, pl Plane, base int) (map[string]chunkEntry, error) {
	entries := make(map[string]chunkEntry)
	if st.SparseRep {
		// sparse versions are stored as a single container (their entire
		// coordinate list); chunk-level subdivision buys nothing when the
		// data is this sparse.
		key := "chunk-full"
		payload, entryBase, err := s.encodeSparseChunk(st, attr.Name, pl.Sparse, base)
		if err != nil {
			return nil, err
		}
		codec := pickCodec(s.opts.Codec, false)
		sealed, used, err := seal(codec, s.opts.AdaptiveCodec, payload, compress.Params{Elem: 1})
		if err != nil {
			return nil, err
		}
		file, off, err := s.writeBlob(st, id, attr.Name, key, sealed)
		if err != nil {
			return nil, err
		}
		entries[key] = chunkEntry{File: file, Offset: off, Length: int64(len(sealed)), Codec: uint8(used), Base: entryBase}
		return entries, nil
	}
	ck, err := st.chunker()
	if err != nil {
		return nil, err
	}
	// Fan the per-chunk encode+compress+write out on the worker pool.
	// Chunks are independent: each worker appends to its own chunk's
	// chain file (or writes its own per-version file), so the only shared
	// state is the store cache and the I/O counters, both internally
	// locked. Workers read metadata through an uncloned view — the caller
	// holds Store.mu exclusively and mutates nothing until encodePlane
	// returns.
	v := s.viewLocked(st, false)
	origins := ck.All()
	results := make([]chunkEntry, len(origins))
	keys := make([]string, len(origins))
	err = forEachLimit(len(origins), s.opts.Parallelism, func(i int) error {
		origin := origins[i]
		box := ck.Box(origin)
		key := ck.Key(origin)
		keys[i] = key
		target, err := pl.Dense.Slice(box)
		if err != nil {
			return err
		}
		payload := target.Bytes()
		entryBase := -1
		rawDense := true
		if base > 0 {
			baseChunk, err := s.resolveDenseChunk(v, base, attr.Name, ck, origin, nil)
			if err != nil {
				return err
			}
			blob, err := delta.Encode(s.opts.DeltaMethod, target, baseChunk)
			if err != nil {
				return err
			}
			if len(blob) < len(payload) {
				payload = blob
				entryBase = base
				rawDense = false
			}
		}
		codec := pickCodec(s.opts.Codec, rawDense)
		sealed, used, err := seal(codec, s.opts.AdaptiveCodec, payload, sealParams(rawDense, box, attr.Type))
		if err != nil {
			return err
		}
		file, off, err := s.writeBlob(st, id, attr.Name, key, sealed)
		if err != nil {
			return err
		}
		results[i] = chunkEntry{File: file, Offset: off, Length: int64(len(sealed)), Codec: uint8(used), Base: entryBase}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, key := range keys {
		entries[key] = results[i]
	}
	return entries, nil
}

// encodeSparseChunk encodes a sparse version either natively or as
// sparse-ops against the base, whichever is smaller.
func (s *Store) encodeSparseChunk(st *arrayState, attr string, sp *array.Sparse, base int) ([]byte, int, error) {
	native := array.MarshalSparse(sp)
	if base <= 0 {
		return native, -1, nil
	}
	basePl, err := s.readPlaneLocked(st, base, attr)
	if err != nil {
		return nil, 0, err
	}
	blob, err := delta.EncodeSparseOps(sp, basePl.Sparse)
	if err != nil {
		return nil, 0, err
	}
	if len(blob) < len(native) {
		return blob, base, nil
	}
	return native, -1, nil
}

// Branch creates a new named array whose first version is a copy of the
// given version of an existing array (§II-A: "Branch operates identically
// to Insert except that a new named version is created"; Appendix A:
// "branches are formed off of a particular version of an existing array
// ... they create a new array with a new name").
func (s *Store) Branch(srcName string, srcVersion int, newName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	st, ok := s.arrays[srcName]
	if !ok {
		return fmt.Errorf("core: no array %q", srcName)
	}
	if _, err := st.version(srcVersion); err != nil {
		return err
	}
	planes := make([]Plane, len(st.Schema.Attrs))
	for ai, attr := range st.Schema.Attrs {
		pl, err := s.readPlaneLocked(st, srcVersion, attr.Name)
		if err != nil {
			return err
		}
		planes[ai] = pl
	}
	schema := st.Schema
	schema.Name = newName
	if err := s.createArrayLocked(schema, &BranchRef{Array: srcName, Version: srcVersion}); err != nil {
		return err
	}
	if _, err := s.insertLocked(newName, Payload{Planes: planes}, "branch", nil); err != nil {
		s.rollbackArrayLocked(newName)
		return err
	}
	return nil
}

// BranchedFrom returns the provenance of a branched array, or nil.
func (s *Store) BranchedFrom(name string) (*BranchRef, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.arrays[name]
	if !ok {
		return nil, fmt.Errorf("core: no array %q", name)
	}
	return st.BranchedFrom, nil
}

// VersionRef addresses a version of a named array.
type VersionRef struct {
	Array   string
	Version int
}

// Merge is the inverse of Branch (§II-A): it combines two or more parent
// versions into a new array whose version sequence is the parents in
// order. It does not combine data from two arrays into one array; the
// result's history records all parents, making the version hierarchy a
// graph rather than a tree.
func (s *Store) Merge(newName string, parents []VersionRef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(parents) < 2 {
		return fmt.Errorf("core: merge requires at least two parent versions")
	}
	first, ok := s.arrays[parents[0].Array]
	if !ok {
		return fmt.Errorf("core: no array %q", parents[0].Array)
	}
	schema := first.Schema
	schema.Name = newName
	for _, p := range parents[1:] {
		st, ok := s.arrays[p.Array]
		if !ok {
			return fmt.Errorf("core: no array %q", p.Array)
		}
		if err := checkShape(schema, st.Schema.Shape()); err != nil {
			return fmt.Errorf("core: merge parents have incompatible shapes: %w", err)
		}
		if len(st.Schema.Attrs) != len(schema.Attrs) {
			return fmt.Errorf("core: merge parents have different attribute counts")
		}
		for i := range schema.Attrs {
			if st.Schema.Attrs[i].Type != schema.Attrs[i].Type {
				return fmt.Errorf("core: merge parents disagree on attribute %d type", i)
			}
		}
	}
	if err := s.createArrayLocked(schema, nil); err != nil {
		return err
	}
	for _, p := range parents {
		st := s.arrays[p.Array]
		if _, err := st.version(p.Version); err != nil {
			s.rollbackArrayLocked(newName)
			return err
		}
		planes := make([]Plane, len(st.Schema.Attrs))
		for ai, attr := range st.Schema.Attrs {
			pl, err := s.readPlaneLocked(st, p.Version, attr.Name)
			if err != nil {
				s.rollbackArrayLocked(newName)
				return err
			}
			planes[ai] = pl
		}
		if _, err := s.insertLocked(newName, Payload{Planes: planes}, "merge", nil); err != nil {
			s.rollbackArrayLocked(newName)
			return err
		}
	}
	return nil
}

func (s *Store) rollbackArrayLocked(name string) {
	if st, ok := s.arrays[name]; ok {
		// through the FS seam so a fault-injected crash cannot "remove"
		// files a dead process never could
		_ = s.fs.RemoveAll(st.dir)
		delete(s.arrays, name)
		s.invalidateArrayLocked(name)
		s.workload.drop(name)
		s.dropTuneEstimate(name)
	}
}
