package core

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"arrayvers/internal/array"
	"arrayvers/internal/compress"
	"arrayvers/internal/delta"
	"arrayvers/internal/layout"
	"arrayvers/internal/trace"
)

// The insert commit path.
//
// An insert runs in two phases. *Staging* resolves the payload, picks a
// delta base, and encodes every chunk — appending blobs to the chunk
// files — against a cloned metadata snapshot, holding only the array's
// writeMu (which serializes appenders on one array) and its shared I/O
// latch (which pins the chunk generation); Store.mu is held just long
// enough to take the snapshot, so inserts to different arrays encode
// and fsync concurrently, and never stall readers. *Commit* installs
// the staged versions: a group-commit leader drains every staged insert
// pending on the array, makes their payloads durable with one fsync per
// touched file plus one chunks-dir fsync shared by the whole batch,
// validates each against the live state (generation unchanged, delta
// bases still live), and publishes them all with a single metadata
// commit — one record appended to the store-wide manifest log, or the
// versions.json rename on legacy PerArrayCommit stores (commitMeta is
// the seam between the two protocols).
//
// Nothing is installed into the live arrayState until that commit
// succeeds: mutators build a staged arrayMeta and install it only after
// commitMeta returns, so a failed commit leaves in-memory metadata
// exactly equal to on-disk metadata (no phantom versions a select could
// read but a reopen would lose), and the blobs a failed stage appended
// are reclaimed at the failure site (writeSet.sweep).

// Plane is the content of one attribute of one version: either a dense
// or a sparse array over the schema's dimensions.
type Plane struct {
	Dense  *array.Dense
	Sparse *array.Sparse
}

// IsSparse reports whether the plane uses the sparse representation.
func (p Plane) IsSparse() bool { return p.Sparse != nil }

func (p Plane) validate(schema array.Schema, attr array.Attribute) error {
	switch {
	case p.Dense != nil && p.Sparse != nil:
		return fmt.Errorf("core: plane has both dense and sparse content")
	case p.Dense != nil:
		if p.Dense.DType() != attr.Type {
			return fmt.Errorf("core: attribute %q expects %v, payload is %v", attr.Name, attr.Type, p.Dense.DType())
		}
		return checkShape(schema, p.Dense.Shape())
	case p.Sparse != nil:
		if p.Sparse.DType() != attr.Type {
			return fmt.Errorf("core: attribute %q expects %v, payload is %v", attr.Name, attr.Type, p.Sparse.DType())
		}
		return checkShape(schema, p.Sparse.Shape())
	default:
		return fmt.Errorf("core: empty plane")
	}
}

func checkShape(schema array.Schema, shape []int64) error {
	want := schema.Shape()
	if len(shape) != len(want) {
		return fmt.Errorf("core: payload has %d dims, schema has %d", len(shape), len(want))
	}
	for i := range want {
		if shape[i] != want[i] {
			return fmt.Errorf("core: payload shape %v, schema shape %v", shape, want)
		}
	}
	return nil
}

// CellUpdate is one element of a delta-list payload: set the cell at
// Coords (for attribute Attr, default the first) to the given bit
// pattern.
type CellUpdate struct {
	Attr   string
	Coords []int64
	Bits   int64
}

// Payload is the content of an Insert, in one of the paper's three forms
// (§II-A): dense, sparse, or a delta-list against a base version.
type Payload struct {
	// Planes carries the full content, one plane per attribute (dense or
	// sparse form).
	Planes []Plane
	// DeltaBase, when positive, selects the delta-list form: the new
	// version equals version DeltaBase except at the listed updates.
	DeltaBase int
	Updates   []CellUpdate
}

// DensePayload wraps a single-attribute dense content.
func DensePayload(d *array.Dense) Payload { return Payload{Planes: []Plane{{Dense: d}}} }

// SparsePayload wraps a single-attribute sparse content.
func SparsePayload(sp *array.Sparse) Payload { return Payload{Planes: []Plane{{Sparse: sp}}} }

// DeltaListPayload builds the delta-list insert form.
func DeltaListPayload(base int, updates []CellUpdate) Payload {
	return Payload{DeltaBase: base, Updates: updates}
}

// insertCtx carries the filesystem coordinates one staged mutation
// encodes against: the metadata view it resolves bases through, the
// chunk directory and format of the generation it pinned, the
// representation it encodes with, the write-set recording its appends,
// and a per-stage chunk memo so repeated base reads walk each delta
// chain once. Cache puts through ctx.v are always suppressed (noCache):
// staged version ids are not committed and must never become visible
// through the store-wide LRU.
type insertCtx struct {
	st     *arrayState
	v      *readView
	ws     *writeSet
	qc     *chunkCache
	dir    string
	format int
	sparse bool
	goCtx  context.Context // caller's cancellation; nil means Background
}

// context returns the caller's context, defaulting to Background for
// internal paths (fallback commit, Branch, Merge) that stage without
// one. Cancellation is only honored during staging — a payload that
// reached the shared commit queue always runs to completion, so a
// group-commit leader never aborts followers' work.
func (c *insertCtx) context() context.Context {
	if c.goCtx != nil {
		return c.goCtx
	}
	return context.Background() //avlint:allow-ctx the designated fallback for internal non-cancellable staging (fallback commit, Branch, Merge); every cancellable path sets goCtx
}

// writeSet tracks the chunk-file byte ranges appended by one staged
// mutation, for the two jobs that follow staging: fsyncing each touched
// file exactly once at the shared commit point, and reclaiming the
// bytes if the mutation fails before committing.
type writeSet struct {
	mu    sync.Mutex
	files map[string]*fileSpan
}

type fileSpan struct {
	start int64 // offset of this mutation's first byte in the file
	end   int64 // offset one past this mutation's last byte
}

func newWriteSet() *writeSet { return &writeSet{files: map[string]*fileSpan{}} }

// record merges one append into the set. Within one staged mutation the
// array's writeMu excludes other appenders, so a file's recorded spans
// are contiguous and min/max merging is exact.
func (w *writeSet) record(path string, start, end int64) {
	w.mu.Lock()
	if sp, ok := w.files[path]; ok {
		if start < sp.start {
			sp.start = start
		}
		if end > sp.end {
			sp.end = end
		}
	} else {
		w.files[path] = &fileSpan{start: start, end: end}
	}
	w.mu.Unlock()
}

// sortedPaths returns the touched files in a deterministic order, so
// the fault-injection matrix sees the same fsync/sweep step sequence on
// every run.
func (w *writeSet) sortedPaths() []string {
	paths := make([]string, 0, len(w.files))
	for p := range w.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

func (w *writeSet) empty() bool { return len(w.files) == 0 }

// totalBytes sums the staged spans — the payload volume this mutation
// appended, reported as the commit stages' byte attribution.
func (w *writeSet) totalBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var n int64
	for _, sp := range w.files {
		n += sp.end - sp.start
	}
	return n
}

// createdFiles reports whether the mutation created any chunk file (a
// span starting at offset zero; a pre-existing file is never appended
// at zero). Only creations need the chunks directory fsynced before
// the metadata commit — an append to an existing file changes no
// directory entry, and fsyncing the file persists its inode size — so
// steady-state appends skip the directory flush entirely.
func (w *writeSet) createdFiles() bool {
	for _, sp := range w.files {
		if sp.start == 0 {
			return true
		}
	}
	return false
}

// syncFile fsyncs one chunk file through the FS seam. The close error
// is merged — a failed close after kernel-buffered writes is silent
// data loss.
func (s *Store) syncFile(path string) error {
	f, err := s.fs.Append(path)
	if err != nil {
		return err
	}
	serr := f.Sync()
	if cerr := f.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// sync fsyncs every file in the set — the data-durability step of the
// shared commit. Callers sync the chunks directory afterwards.
func (w *writeSet) sync(s *Store) error {
	for _, path := range w.sortedPaths() {
		if err := s.syncFile(path); err != nil {
			return err
		}
	}
	return nil
}

// sweep reclaims the staged bytes after a failure. A file whose current
// size equals the recorded span's end has seen no later appends, so the
// span is the file's tail: the file is removed when the span started at
// offset zero (the failed mutation created it) and truncated back
// otherwise. A file someone appended to after us is left alone — the
// bytes become dangling (Verify counts them, Compact reclaims them) —
// so the sweep can never cut another stager's staged frames. Callers
// must hold the array's writeMu so no append can land between the size
// check and the truncate. Best-effort: errors are ignored (the store
// may be mid-crash, or the whole generation already swept by a
// rewrite); what was reclaimed feeds Stats.
func (w *writeSet) sweep(s *Store) {
	var files, bytes int64
	for _, path := range w.sortedPaths() {
		sp := w.files[path]
		// the size check is a read, which (like readBlob and recovery's
		// directory scans) stays on the plain os package per the fsio
		// contract; only the Remove/Truncate mutations go through the seam
		info, err := os.Stat(path)
		if err != nil || info.Size() != sp.end {
			continue
		}
		if sp.start == 0 {
			if s.fs.Remove(path) == nil {
				files++
				bytes += sp.end
			}
		} else if s.fs.Truncate(path, sp.start) == nil {
			files++
			bytes += sp.end - sp.start
		}
	}
	s.addInsertOrphans(files, bytes)
}

// stagedInsert is one insert (a whole InsertBatch call) staged on an
// array, awaiting its shared commit.
type stagedInsert struct {
	vms    []*versionMeta // staged versions with reserved ids, in order
	sparse bool           // representation the payloads were encoded with
	fill   int64
	gen    int // chunk generation the blobs were appended into
	format int
	ws     *writeSet

	// tr is the staging request's trace (nil when untraced); the
	// group-commit leader attributes the shared commit stages to it, so
	// a traced insert sees the fsync/rename wait it actually rode.
	tr *trace.Trace
	// enqueuedAt marks when the insert entered the pending queue; zeroed
	// once its queue_wait has been observed (re-drain rounds and the
	// DisableGroupCommit requeue must not double-count).
	enqueuedAt time.Time

	// outcome, final once done is closed
	done  chan struct{}
	ids   []int
	err   error
	retry bool // staging was invalidated (generation moved / base died)
}

func (ins *stagedInsert) fail(err error) {
	if ins.err == nil && !ins.retry {
		ins.err = err
	}
}

// insertRetries bounds the optimistic stage attempts before an insert
// falls back to committing under the store lock (guaranteed progress
// when the array is rewritten faster than staging can revalidate).
const insertRetries = 3

// Insert adds a new version to the named array and returns its ID
// (temporal versions are numbered 1, 2, ... as in AQL's Example@1).
func (s *Store) Insert(name string, p Payload) (int, error) {
	return s.InsertCtx(context.Background(), name, p)
}

// InsertCtx is Insert honoring ctx during the staging (resolve +
// encode) phase. Once the payload reaches the shared commit queue the
// commit always runs to completion: cancellation can never abort a
// group commit other inserts are riding on, so a ctx error from this
// method means no version was created.
func (s *Store) InsertCtx(ctx context.Context, name string, p Payload) (int, error) {
	ids, err := s.InsertBatchCtx(ctx, name, []Payload{p})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// InsertBatch adds a batch of versions to the named array in one shared
// commit and returns their IDs in payload order. The batch is atomic:
// either every payload becomes a committed version or none does (one
// metadata commit covers them all). Payloads are resolved in
// order, so later batch members delta-encode against earlier ones when
// that is smaller, and each member's lineage parent is its predecessor
// in the batch. Delta-list payloads must reference already-committed
// versions.
//
// Concurrent durable inserts to the same array coalesce: whichever
// insert reaches the commit point first becomes the group-commit leader
// and publishes every insert staged behind it with one fsync schedule
// and one metadata rename, so ingest throughput scales past the
// single-commit fsync latency (see DESIGN.md "Write path & group
// commit").
func (s *Store) InsertBatch(name string, ps []Payload) ([]int, error) {
	return s.InsertBatchCtx(context.Background(), name, ps)
}

// InsertBatchCtx is InsertBatch honoring ctx during staging (see
// InsertCtx for the cancellation contract).
func (s *Store) InsertBatchCtx(ctx context.Context, name string, ps []Payload) ([]int, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("core: empty insert batch")
	}
	if err := s.writeGate(name); err != nil {
		return nil, err
	}
	for attempt := 0; attempt < insertRetries; attempt++ {
		ids, retry, err := s.tryInsertBatch(ctx, name, ps)
		if !retry {
			return ids, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.insertBatchFallback(name, ps)
}

// lockArray resolves an array and acquires the latches pick selects —
// which MUST be returned in the documented latch order (syncMu <
// commitMu < writeMu) — then re-verifies the array was not dropped or
// replaced while waiting, retrying if it was. The caller releases the
// latches in reverse order. Latches are always acquired without
// holding Store.mu.
func (s *Store) lockArray(name string, pick func(st *arrayState) []*sync.Mutex) (*arrayState, error) {
	for {
		s.mu.RLock()
		st, ok := s.arrays[name]
		closed := s.closed
		s.mu.RUnlock()
		if closed {
			return nil, ErrClosed
		}
		if !ok {
			return nil, fmt.Errorf("core: no array %q", name)
		}
		latches := pick(st)
		for _, l := range latches {
			l.Lock()
		}
		s.mu.RLock()
		cur := s.arrays[name]
		s.mu.RUnlock()
		if cur == st {
			return st, nil
		}
		// dropped or replaced while we waited; retry
		for i := len(latches) - 1; i >= 0; i-- {
			latches[i].Unlock()
		}
	}
}

// lockWrite takes the array's write latch (insert staging). The caller
// releases st.writeMu.
func (s *Store) lockWrite(name string) (*arrayState, error) {
	return s.lockArray(name, func(st *arrayState) []*sync.Mutex {
		return []*sync.Mutex{&st.writeMu}
	})
}

// lockMetaWrite is lockWrite plus the metadata writer latch
// (commitMu), for mutators outside the insert pipeline that both
// append to chunk files and rewrite the metadata (DeleteVersion). The
// caller releases st.writeMu then st.commitMu.
func (s *Store) lockMetaWrite(name string) (*arrayState, error) {
	return s.lockArray(name, func(st *arrayState) []*sync.Mutex {
		return []*sync.Mutex{&st.commitMu, &st.writeMu}
	})
}

// tryInsertBatch performs one optimistic stage + commit attempt.
// retry=true means the staged encoding was invalidated by a concurrent
// rewrite or delete and the caller should re-stage.
func (s *Store) tryInsertBatch(ctx context.Context, name string, ps []Payload) (ids []int, retry bool, err error) {
	st, err := s.lockWrite(name)
	if err != nil {
		return nil, false, err
	}
	ins, err := s.stageBatch(ctx, st, ps, "insert")
	if err != nil {
		st.writeMu.Unlock()
		return nil, false, err
	}
	ins.enqueuedAt = time.Now()
	st.pendMu.Lock()
	st.pending = append(st.pending, ins)
	st.pendMu.Unlock()
	st.writeMu.Unlock()
	s.awaitCommit(st, ins)
	if ins.retry || ins.err != nil {
		// reclaim the staged blobs; under the write latch so the size
		// checks cannot race another stager's appends
		st.writeMu.Lock()
		ins.ws.sweep(s)
		// reclaim the reserved ids too when they are still the top of
		// the reservation space (no later stage reserved past us), so a
		// retried or failed insert does not leave a version-id gap
		st.pendMu.Lock()
		if st.stageNext == ins.vms[len(ins.vms)-1].ID+1 {
			st.stageNext = ins.vms[0].ID
		}
		st.pendMu.Unlock()
		st.writeMu.Unlock()
		return nil, ins.retry, ins.err
	}
	return ins.ids, false, nil
}

// stageBatch resolves and encodes a batch of payloads against a private
// metadata snapshot, appending chunk blobs (unsynced) to the pinned
// generation. On success the returned stagedInsert is ready to enqueue;
// on error every appended blob has been reclaimed and the reserved ids
// returned to the pool. Callers hold st.writeMu.
func (s *Store) stageBatch(ctx context.Context, st *arrayState, ps []Payload, kind string) (*stagedInsert, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// snapshot under the store lock: metadata view, generation pin (the
	// I/O read latch is acquired before the lock drops, so a rewrite
	// cannot remove the generation out from under the appends), id
	// reservation, and the staged-but-uncommitted representation.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	name := st.Schema.Name
	if s.arrays[name] != st {
		s.mu.RUnlock()
		return nil, fmt.Errorf("core: no array %q", name)
	}
	v := s.viewLocked(st, true)
	v.noCache = true
	repFixed := len(st.Versions) > 0
	sparse, fill := st.SparseRep, st.Fill
	st.pendMu.Lock()
	// stageNext only moves forward past the committed NextID: an empty
	// pending queue does NOT mean no outstanding reservations — a leader
	// drains the queue before its commit installs, so resetting here
	// could hand two inserts the same id. Ids lost to commit-time
	// failures stay gaps (never reused); stage-time failures roll their
	// reservation back below.
	if st.stageNext < st.NextID {
		st.stageNext = st.NextID
	}
	baseID := st.stageNext
	st.stageNext += len(ps)
	if !repFixed && len(st.pending) > 0 {
		// an uncommitted first insert already fixed the representation;
		// encode consistently with it (the commit re-validates)
		last := st.pending[len(st.pending)-1]
		repFixed, sparse, fill = true, last.sparse, last.fill
	}
	st.pendMu.Unlock()
	st.ioMu.RLock()
	gen, format := st.Gen, st.Format
	s.mu.RUnlock()
	defer st.ioMu.RUnlock()

	unreserve := func() {
		st.pendMu.Lock()
		if st.stageNext == baseID+len(ps) {
			st.stageNext = baseID
		}
		st.pendMu.Unlock()
	}
	ins := &stagedInsert{
		gen:    gen,
		format: format,
		ws:     newWriteSet(),
		tr:     trace.FromContext(ctx),
		done:   make(chan struct{}),
	}
	ictx := &insertCtx{st: st, v: v, ws: ins.ws, qc: newChunkCache(), dir: v.dir, format: format, sparse: sparse, goCtx: ctx}
	fail := func(err error) (*stagedInsert, error) {
		ins.ws.sweep(s)
		unreserve()
		s.noteDiskPressure(err) // staging failures are benign, ENOSPC is not
		return nil, err
	}
	encStart := time.Now()
	for j, p := range ps {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		vm, err := s.stagePayload(ictx, p, baseID+j, kind, &repFixed, &sparse, &fill)
		if err != nil {
			return fail(err)
		}
		ins.vms = append(ins.vms, vm)
	}
	encDur := time.Since(encStart)
	s.prof.observeCommit(StageStageEncode, encDur, ins.ws.totalBytes())
	ins.tr.Observe(StageStageEncode, encDur, ins.ws.totalBytes())
	ins.sparse, ins.fill = sparse, fill
	return ins, nil
}

// stagePayload resolves, validates, and encodes one payload as version
// id. The representation state (repFixed/sparse/fill) carries across a
// staging session: the first version of an empty array fixes it, later
// payloads must match. The staged version is published through the
// context's view, so later payloads of the same session chain their
// lineage to it and may delta-encode against it — versions staged by
// OTHER sessions stay invisible (their commit may still fail), which
// is why concurrent single inserts that coalesce into one group commit
// become siblings of the last committed version rather than a chain.
func (s *Store) stagePayload(ctx *insertCtx, p Payload, id int, kind string, repFixed *bool, sparse *bool, fill *int64) (*versionMeta, error) {
	st := ctx.st
	planes, parents, err := s.resolvePayload(ctx, p)
	if err != nil {
		return nil, err
	}
	// the representation is fixed by the first inserted version
	if !*repFixed {
		*sparse = planes[0].IsSparse()
		if *sparse {
			*fill = planes[0].Sparse.Fill()
		}
		ctx.sparse = *sparse
		*repFixed = true
	}
	for i, pl := range planes {
		if pl.IsSparse() != *sparse {
			return nil, fmt.Errorf("core: array %q uses the %s representation; payload attribute %d does not",
				st.Schema.Name, repName(*sparse), i)
		}
		if *sparse && pl.Sparse.Fill() != *fill {
			return nil, fmt.Errorf("core: array %q has default value %d, payload has %d",
				st.Schema.Name, *fill, pl.Sparse.Fill())
		}
	}
	vm := &versionMeta{
		ID:      id,
		Parents: dedupInts(parents),
		Time:    s.clock(),
		Kind:    kind,
		Chunks:  make(map[string]map[string]chunkEntry),
	}
	base := s.chooseDeltaBase(ctx, planes)
	for ai, attr := range st.Schema.Attrs {
		entries, err := s.encodePlane(ctx, id, attr, planes[ai], base)
		if err != nil {
			return nil, err
		}
		vm.Chunks[attr.Name] = entries
	}
	ctx.v.byID[id] = vm
	ctx.v.ids = append(ctx.v.ids, id)
	return vm, nil
}

// awaitCommit blocks until mine's outcome is final. Whichever staged
// insert acquires the sync-stage latch first becomes a leader: it
// drains every insert pending on the array, makes their payloads
// durable, and publishes them all with one metadata commit. The two
// commit stages are pipelined — a leader acquires the metadata latch
// before releasing the sync latch (preserving drain order), so the
// next leader's fsync schedule overlaps this leader's metadata
// commit. Inserts staged while a commit is in flight ride the next
// leader (or a re-drain round of the current one) — the commit window
// is the duration of the commit in front, no timers involved.
func (s *Store) awaitCommit(st *arrayState, mine *stagedInsert) {
	for {
		select {
		case <-mine.done:
			return
		default:
		}
		st.syncMu.Lock()
		select {
		case <-mine.done:
			st.syncMu.Unlock()
			return
		default:
		}
		// mine is not done, therefore still pending: the drain below
		// includes it, and every drained insert is finalized before the
		// latches are released
		batch := st.drainPending()
		if s.opts.DisableGroupCommit && len(batch) > 1 {
			// per-insert-commit baseline: commit the head alone, requeue
			// the rest in order
			st.pendMu.Lock()
			st.pending = append(append([]*stagedInsert(nil), batch[1:]...), st.pending...)
			st.pendMu.Unlock()
			batch = batch[:1]
		}
		// Sync stage: fsync the batch, then keep draining inserts that
		// staged while those fsyncs ran (bounded rounds, so a steady
		// stager stream cannot starve the commit) — coalescing deepens
		// to the natural arrival rate without any timer.
		s.syncStagedBatch(st, batch)
		if !s.opts.DisableGroupCommit {
			for round := 0; round < 5; round++ {
				more := st.drainPending()
				if len(more) == 0 {
					break
				}
				s.syncStagedBatch(st, more)
				batch = append(batch, more...)
			}
		}
		// stage handoff: commitMu before syncMu releases, so batches
		// install in drain order while the next leader starts syncing
		st.commitMu.Lock()
		st.syncMu.Unlock()
		s.finalizeBatch(st, batch, false)
		st.commitMu.Unlock()
	}
}

func (st *arrayState) drainPending() []*stagedInsert {
	st.pendMu.Lock()
	batch := st.pending
	st.pending = nil
	st.pendMu.Unlock()
	return batch
}

// finalizeBatch is the metadata stage of the group commit: validate
// every synced staged insert against the live state, commit the staged
// document with a single metadata commit (a manifest-log record, or
// the versions.json rename on legacy stores), and install it. The
// commit runs with Store.mu RELEASED — commitMu (held by the caller)
// is the metadata writer latch, serializing it against every
// other metadata writer on the array — so concurrent selects and the
// next leader's staging never stall behind the commit's fsyncs. Every
// insert in the batch has its outcome finalized (done closed) before
// it returns. latched reports that the caller already holds st.writeMu
// (the under-lock fallback) — otherwise it is taken only when the
// AutoBatchK re-encode could append.
func (s *Store) finalizeBatch(st *arrayState, batch []*stagedInsert, latched bool) {
	if len(batch) == 0 {
		return
	}
	if s.opts.AutoBatchK > 1 && !latched {
		// the batched-update re-encode appends to chunk files; appends
		// require the write latch (see writeSet.sweep and appendBlob)
		st.writeMu.Lock()
		defer st.writeMu.Unlock()
	}
	s.mu.Lock()
	if s.closed || s.arrays[st.Schema.Name] != st {
		err := error(ErrClosed)
		if !s.closed {
			err = fmt.Errorf("core: no array %q", st.Schema.Name)
		}
		s.mu.Unlock()
		for _, ins := range batch {
			ins.retry = false
			ins.fail(err)
		}
		for _, ins := range batch {
			close(ins.done)
		}
		return
	}
	ok, staged, ws, installed := s.validateBatchLocked(st, batch)
	s.mu.Unlock()
	if len(ok) > 0 {
		var commitErr error
		if s.opts.Durability && !ws.empty() {
			// the AutoBatchK re-encode appended fresh blobs; they must be
			// durable before the metadata that references them
			commitErr = ws.sync(s)
			if commitErr == nil && ws.createdFiles() {
				commitErr = s.fs.SyncDir(filepath.Join(st.dir, chunksDirName(staged.Gen)))
			}
		}
		if commitErr != nil {
			// a failed data or chunks-dir fsync may have dropped
			// already-written pages: on-disk effect uncertain, contain
			// it by degrading the array before anyone writes behind it
			s.noteCommitFailure(st, commitErr)
		}
		if commitErr == nil {
			t0 := time.Now()
			commitErr = s.commitMeta(st, staged)
			metaDur := time.Since(t0)
			s.prof.observeCommit(StageMetaCommit, metaDur, 0)
			for _, ins := range ok {
				ins.tr.Observe(StageMetaCommit, metaDur, 0)
			}
			if isUncertain(commitErr) {
				// the rename (or its durability fsync) failed: the new
				// document may be in place while memory rolls back
				s.noteCommitFailure(st, commitErr)
			} else {
				s.noteDiskPressure(commitErr) // benign unless ENOSPC
			}
		}
		installStart := time.Now()
		s.mu.Lock()
		if commitErr == nil && s.arrays[st.Schema.Name] != st {
			// DeleteArray won the race after our rename landed (or swept
			// the directory first, failing the rename): either way the
			// array is gone and the inserts with it
			commitErr = fmt.Errorf("core: no array %q", st.Schema.Name)
		}
		if commitErr == nil {
			st.mutateLocked()
			st.installMeta(*staged)
			s.addGroupCommit(installed)
			for _, ins := range ok {
				ids := make([]int, len(ins.vms))
				for i, vm := range ins.vms {
					ids[i] = vm.ID
				}
				ins.ids = ids
			}
		}
		s.mu.Unlock()
		if commitErr == nil {
			installDur := time.Since(installStart)
			s.prof.observeCommit(StageInstall, installDur, 0)
			s.prof.batchSize.Observe(float64(installed))
			for _, ins := range ok {
				ins.tr.Observe(StageInstall, installDur, 0)
			}
		}
		if commitErr != nil {
			// the commit did not land: in-memory state is untouched, so
			// the staged versions never existed — the stagers sweep their
			// blobs, the re-encode's are swept here (writeMu is held
			// whenever ws is non-empty)
			ws.sweep(s)
			for _, ins := range ok {
				ins.fail(commitErr)
			}
		}
	}
	for _, ins := range batch {
		close(ins.done)
	}
}

// syncStagedBatch makes one round of staged inserts durable. The
// batch's write-sets are merged first, so a chunk file every member
// appended to (the common co-located case: one chain file per chunk)
// is fsynced ONCE for the whole batch — this sharing is where group
// commit's throughput comes from — then each touched chunks directory
// is fsynced once. A missing file means a rewrite swept the generation
// mid-stage: every insert that touched it is marked for re-stage
// rather than failed. No-op without Durability.
func (s *Store) syncStagedBatch(st *arrayState, batch []*stagedInsert) {
	// the leader has picked the batch up: close out each member's
	// queue_wait exactly once (re-drain rounds and the per-insert-commit
	// requeue see a zeroed mark)
	now := time.Now()
	for _, ins := range batch {
		if ins.enqueuedAt.IsZero() {
			continue
		}
		wait := now.Sub(ins.enqueuedAt)
		ins.enqueuedAt = time.Time{}
		s.prof.observeCommit(StageQueueWait, wait, 0)
		ins.tr.Observe(StageQueueWait, wait, 0)
	}
	if !s.opts.Durability {
		return
	}
	fsyncStart := time.Now()
	defer func() {
		d := time.Since(fsyncStart)
		var total int64
		for _, ins := range batch {
			b := ins.ws.totalBytes()
			total += b
			// the whole shared fsync schedule is each member's wait
			ins.tr.Observe(StageDataFsync, d, b)
		}
		s.prof.observeCommit(StageDataFsync, d, total)
	}()
	byPath := map[string][]*stagedInsert{}
	dirs := map[string]bool{}
	for _, ins := range batch {
		if ins.err != nil || ins.retry {
			continue
		}
		for path := range ins.ws.files {
			byPath[path] = append(byPath[path], ins)
		}
		if ins.ws.createdFiles() {
			dirs[filepath.Join(st.dir, chunksDirName(ins.gen))] = true
		}
	}
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths) // deterministic step order for the crash matrix
	for _, path := range paths {
		touchers := byPath[path]
		alive := false
		for _, ins := range touchers {
			if ins.err == nil && !ins.retry {
				alive = true
				break
			}
		}
		if !alive {
			continue
		}
		if err := s.syncFile(path); err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				// a failed data fsync may have dropped already-written
				// pages; the on-disk effect is uncertain
				s.noteCommitFailure(st, err)
			}
			for _, ins := range touchers {
				if errors.Is(err, fs.ErrNotExist) {
					ins.retry = true
				} else {
					ins.fail(err)
				}
			}
		}
	}
	dirNames := make([]string, 0, len(dirs))
	for d := range dirs {
		dirNames = append(dirNames, d)
	}
	sort.Strings(dirNames)
	for _, d := range dirNames {
		if err := s.fs.SyncDir(d); err != nil {
			s.noteCommitFailure(st, err)
			for _, ins := range batch {
				ins.fail(err)
			}
		}
	}
}

// validateBatchLocked validates each staged insert against the live
// state and builds the staged metadata document installing every
// survivor (marked in ok); the caller commits the document off-lock
// and installs it. ws collects AutoBatchK re-encode appends that still
// need fsyncing before the commit. Callers hold Store.mu (and writeMu
// when AutoBatchK can append).
func (s *Store) validateBatchLocked(st *arrayState, batch []*stagedInsert) (ok []*stagedInsert, staged *arrayMeta, ws *writeSet, installed int) {
	liveIDs := make(map[int]bool)
	for _, vm := range st.live() {
		liveIDs[vm.ID] = true
	}
	for _, ins := range batch {
		if ins.err != nil || ins.retry {
			continue
		}
		if ins.gen != st.Gen || ins.format != st.Format {
			// a rewrite committed a new generation: the staged blobs live
			// in the superseded directory and die with it
			ins.retry = true
			continue
		}
		repSparse, repFill := st.SparseRep, st.Fill
		repOpen := len(st.Versions) == 0
		if repOpen && len(ok) > 0 {
			repSparse, repFill, repOpen = ok[0].sparse, ok[0].fill, false
		}
		if !repOpen && (ins.sparse != repSparse || (ins.sparse && ins.fill != repFill)) {
			ins.fail(fmt.Errorf("core: array %q uses the %s representation; staged payload does not",
				st.Schema.Name, repName(repSparse)))
			continue
		}
		if stale := staleBase(ins, liveIDs); stale != 0 {
			// a delta base was deleted between stage and commit
			ins.retry = true
			continue
		}
		for _, vm := range ins.vms {
			liveIDs[vm.ID] = true
		}
		ok = append(ok, ins)
	}
	if len(ok) == 0 {
		return nil, nil, nil, 0
	}
	doc := st.metaClone()
	staged = &doc
	if len(staged.Versions) == 0 {
		staged.SparseRep, staged.Fill = ok[0].sparse, ok[0].fill
	}
	ws = newWriteSet()
	qc := newChunkCache()
	for _, ins := range ok {
		for _, vm := range ins.vms {
			staged.Versions = append(staged.Versions, vm)
			if vm.ID >= staged.NextID {
				staged.NextID = vm.ID + 1
			}
			installed++
			if err := s.batchReencodeStaged(st, staged, ws, qc); err != nil {
				// a re-encode failure fails the whole batch: the document
				// already interleaves its members
				for _, ins := range ok {
					ins.fail(err)
				}
				ws.sweep(s)
				return nil, nil, nil, 0
			}
		}
	}
	return ok, staged, ws, installed
}

// staleBase returns a delta base referenced by the staged insert that
// is no longer live (0 if none). liveIDs includes versions installed
// earlier in the same batch.
func staleBase(ins *stagedInsert, liveIDs map[int]bool) int {
	for _, vm := range ins.vms {
		for _, chunks := range vm.Chunks {
			for _, e := range chunks {
				if e.Base >= 0 && !liveIDs[e.Base] {
					return e.Base
				}
			}
		}
		// within the batch, later members may base on earlier ones
		liveIDs[vm.ID] = true
	}
	return 0
}

// insertBatchFallback is the contended path: after insertRetries
// invalidated stagings, commit under the store lock, where generations
// cannot move. It acquires both commit-stage latches (so no leader is
// mid-pipeline and every drained batch has installed) plus the write
// latch (so no new staging can reserve ids), then drains and commits
// any straggler pending inserts before committing its own batch under
// Store.mu.
func (s *Store) insertBatchFallback(name string, ps []Payload) ([]int, error) {
	st, err := s.lockArray(name, func(st *arrayState) []*sync.Mutex {
		return []*sync.Mutex{&st.syncMu, &st.commitMu, &st.writeMu}
	})
	if err != nil {
		return nil, err
	}
	defer st.syncMu.Unlock()
	defer st.commitMu.Unlock()
	defer st.writeMu.Unlock()
	if batch := st.drainPending(); len(batch) > 0 {
		s.syncStagedBatch(st, batch)
		s.finalizeBatch(st, batch, true)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.arrays[name] != st {
		return nil, fmt.Errorf("core: no array %q", name)
	}
	return s.insertBatchLocked(st, ps, "insert")
}

// insertBatchLocked stages and commits a batch while holding Store.mu
// exclusively — the fallback for contended inserts (which additionally
// holds the write and commit latches) and the path Branch and Merge
// use on their freshly created arrays (which no concurrent stager can
// reach: the array becomes visible only when the caller releases
// Store.mu). Like the optimistic path, nothing is installed into the
// live state until the metadata commit succeeds.
func (s *Store) insertBatchLocked(st *arrayState, ps []Payload, kind string) ([]int, error) {
	sb, err := s.stageBatchLocked(st, ps, kind)
	if err != nil {
		return nil, err
	}
	fail := func(err error) ([]int, error) {
		// safe without further locking: callers either hold writeMu or
		// own the array exclusively (see above)
		sb.ws.sweep(s)
		s.noteDiskPressure(err)
		return nil, err
	}
	if s.opts.Durability {
		t0 := time.Now()
		if err := sb.ws.sync(s); err != nil {
			s.noteCommitFailure(st, err)
			return fail(err)
		}
		if sb.ws.createdFiles() {
			if err := s.fs.SyncDir(sb.dir); err != nil {
				s.noteCommitFailure(st, err)
				return fail(err)
			}
		}
		s.prof.observeCommit(StageDataFsync, time.Since(t0), sb.ws.totalBytes())
	}
	t0 := time.Now()
	if err := s.commitMeta(st, sb.staged); err != nil {
		if isUncertain(err) {
			s.noteCommitFailure(st, err)
		}
		return fail(err)
	}
	s.prof.observeCommit(StageMetaCommit, time.Since(t0), 0)
	st.mutateLocked()
	st.installMeta(*sb.staged)
	s.addGroupCommit(len(sb.ids))
	s.prof.batchSize.Observe(float64(len(sb.ids)))
	return sb.ids, nil
}

// stagedBatch is one array's staged-but-uncommitted insert batch: the
// cloned metadata document holding the new versions, the write-set of
// chunk blobs backing them, the reserved ids, and the directory whose
// entries must be synced before the commit.
type stagedBatch struct {
	st     *arrayState
	staged *arrayMeta
	ws     *writeSet
	ids    []int
	dir    string
}

// stageBatchLocked stages ps into a cloned metadata document without
// committing anything. Callers own the array exclusively (Store.mu
// held, or the array not yet visible); on failure the write-set has
// already been swept.
func (s *Store) stageBatchLocked(st *arrayState, ps []Payload, kind string) (*stagedBatch, error) {
	staged := st.metaClone()
	v := s.viewOfMeta(st, &staged)
	ws := newWriteSet()
	qc := newChunkCache()
	sparse, fill := staged.SparseRep, staged.Fill
	repFixed := len(staged.Versions) > 0
	ctx := &insertCtx{st: st, v: v, ws: ws, qc: qc, dir: v.dir, format: staged.Format, sparse: sparse}
	fail := func(err error) (*stagedBatch, error) {
		ws.sweep(s)
		s.noteDiskPressure(err)
		return nil, err
	}
	var ids []int
	for _, p := range ps {
		id := staged.NextID
		vm, err := s.stagePayload(ctx, p, id, kind, &repFixed, &sparse, &fill)
		if err != nil {
			return fail(err)
		}
		staged.Versions = append(staged.Versions, vm)
		staged.NextID = id + 1
		staged.SparseRep, staged.Fill = sparse, fill
		ids = append(ids, id)
		if err := s.batchReencodeStaged(st, &staged, ws, qc); err != nil {
			return fail(err)
		}
	}
	return &stagedBatch{st: st, staged: &staged, ws: ws, ids: ids, dir: ctx.dir}, nil
}

// batchReencodeStaged implements §IV-E's batched update heuristic on a
// staged metadata document: once AutoBatchK versions have accumulated
// since the last batch boundary, the newest K versions are re-encoded
// together under the optimal layout computed over the batch alone.
// Earlier batches are left untouched. Committed versionMeta records are
// cloned before their chunk maps are replaced — published versions are
// shared with reader snapshots and must never be edited in place — and
// the clones are swapped into the staged slice, so nothing is visible
// until the caller's commit installs the document.
func (s *Store) batchReencodeStaged(st *arrayState, staged *arrayMeta, ws *writeSet, qc *chunkCache) error {
	k := s.opts.AutoBatchK
	if k <= 1 {
		return nil
	}
	var live []*versionMeta
	for _, vm := range staged.Versions {
		if !vm.Deleted {
			live = append(live, vm)
		}
	}
	if len(live) == 0 || len(live)%k != 0 {
		return nil
	}
	batch := live[len(live)-k:]
	v := s.viewOfMeta(st, staged)
	ictx := &insertCtx{st: st, v: v, ws: ws, qc: qc, dir: v.dir, format: staged.Format, sparse: staged.SparseRep}
	// load batch contents; re-encodes only ever append (chain files grow
	// at the tail, per-version files get fresh FileSeq names), so
	// in-flight lock-free readers keep decoding the byte ranges their
	// snapshots reference
	full := array.BoxOf(st.Schema.Shape())
	planes := make([][]Plane, k)
	for i, vm := range batch {
		planes[i] = make([]Plane, len(st.Schema.Attrs))
		for ai, attr := range st.Schema.Attrs {
			pl, err := s.readRegionView(ictx.context(), v, vm.ID, attr.Name, full, qc, nil)
			if err != nil {
				return err
			}
			planes[i][ai] = pl
		}
	}
	mm, err := s.buildMatrix(staged.SparseRep, len(st.Schema.Attrs), planes, s.opts.EstimateSample)
	if err != nil {
		return err
	}
	l := layout.Optimal(mm)
	// re-encode every batch member per the layout; bases stay inside the
	// batch, keeping batches separate as §IV-E prescribes
	for i, vm := range batch {
		base := 0
		if p := l.Parent[i]; p != i {
			base = batch[p].ID
		}
		cp := *vm
		cp.Chunks = make(map[string]map[string]chunkEntry, len(vm.Chunks))
		for attr, m := range vm.Chunks {
			cp.Chunks[attr] = m
		}
		for ai, attr := range st.Schema.Attrs {
			entries, err := s.encodePlane(ictx, vm.ID, attr, planes[i][ai], base)
			if err != nil {
				return err
			}
			cp.Chunks[attr.Name] = entries
		}
		for si, svm := range staged.Versions {
			if svm == vm {
				staged.Versions[si] = &cp
				break
			}
		}
		v.byID[vm.ID] = &cp
	}
	return nil
}

func repName(sparse bool) string {
	if sparse {
		return "sparse"
	}
	return "dense"
}

// resolvePayload expands the three payload forms into full per-attribute
// planes and the implied lineage parents, resolving content through the
// staging context's metadata view (which includes earlier members of
// the same batch).
func (s *Store) resolvePayload(ctx *insertCtx, p Payload) ([]Plane, []int, error) {
	st, v := ctx.st, ctx.v
	var parents []int
	if last := lastLiveIDView(v); last > 0 {
		parents = append(parents, last)
	}
	if p.DeltaBase > 0 {
		// delta-list form: inherit the base version and apply updates
		if _, err := v.version(p.DeltaBase); err != nil {
			return nil, nil, err
		}
		full := array.BoxOf(st.Schema.Shape())
		planes := make([]Plane, len(st.Schema.Attrs))
		for ai, attr := range st.Schema.Attrs {
			pl, err := s.readRegionView(ctx.context(), v, p.DeltaBase, attr.Name, full, ctx.qc, nil)
			if err != nil {
				return nil, nil, err
			}
			if pl.Sparse != nil {
				// the stage-wide chunk memo shares decoded sparse planes
				// across reads; the updates below must not corrupt it
				pl.Sparse = pl.Sparse.Clone()
			}
			planes[ai] = pl
		}
		for _, u := range p.Updates {
			ai := 0
			if u.Attr != "" {
				ai = st.Schema.AttrIndex(u.Attr)
				if ai < 0 {
					return nil, nil, fmt.Errorf("core: delta-list update names unknown attribute %q", u.Attr)
				}
			}
			if len(u.Coords) != len(st.Schema.Dims) {
				return nil, nil, fmt.Errorf("core: delta-list update has %d coords, schema has %d dims", len(u.Coords), len(st.Schema.Dims))
			}
			if planes[ai].IsSparse() {
				flat := flatIndex(st.Schema.Shape(), u.Coords)
				planes[ai].Sparse.SetBits(flat, u.Bits)
			} else {
				planes[ai].Dense.SetBitsAt(u.Coords, u.Bits)
			}
		}
		return planes, []int{p.DeltaBase}, nil
	}
	if len(p.Planes) != len(st.Schema.Attrs) {
		return nil, nil, fmt.Errorf("core: payload has %d planes, schema has %d attributes", len(p.Planes), len(st.Schema.Attrs))
	}
	for ai, attr := range st.Schema.Attrs {
		if err := p.Planes[ai].validate(st.Schema, attr); err != nil {
			return nil, nil, err
		}
	}
	return p.Planes, parents, nil
}

func flatIndex(shape, coords []int64) int64 {
	idx := int64(0)
	for i, c := range coords {
		idx = idx*shape[i] + c
	}
	return idx
}

// lastLiveIDView returns the highest live version id visible through
// the view (including staged batch members), or 0.
func lastLiveIDView(v *readView) int {
	best := 0
	for _, id := range v.ids {
		if id > best {
			best = id
		}
	}
	return best
}

func dedupInts(in []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range in {
		if v > 0 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// chooseDeltaBase picks the version the new content should be delta'ed
// against, comparing the estimated delta size against the newest
// DeltaCandidates versions with the materialized size ("the payload is
// analyzed so it can be encoded as a delta off of an existing version",
// §II-A). Candidates come from the staging view, so later members of a
// batch can delta against earlier ones. Returns 0 to materialize.
func (s *Store) chooseDeltaBase(ctx *insertCtx, planes []Plane) int {
	v := ctx.v
	if !s.opts.AutoDelta || len(v.ids) == 0 {
		return 0
	}
	k := s.opts.DeltaCandidates
	if k > len(v.ids) {
		k = len(v.ids)
	}
	pl := planes[0]
	var matSize int64
	if pl.IsSparse() {
		matSize = delta.SparseMaterializedSize(pl.Sparse)
	} else {
		matSize = delta.MaterializedSize(pl.Dense)
	}
	attr0 := ctx.st.Schema.Attrs[0].Name
	full := array.BoxOf(ctx.st.Schema.Shape())
	bestBase, bestSize := 0, matSize
	for i := len(v.ids) - k; i < len(v.ids); i++ {
		cand := v.ids[i]
		basePl, err := s.readRegionView(ctx.context(), v, cand, attr0, full, ctx.qc, nil)
		if err != nil {
			continue
		}
		var size int64
		if pl.IsSparse() {
			blob, err := delta.EncodeSparseOps(pl.Sparse, basePl.Sparse)
			if err != nil {
				continue
			}
			size = int64(len(blob))
		} else {
			size = delta.EstimateSize(pl.Dense, basePl.Dense, s.opts.EstimateSample, int64(cand))
		}
		if size < bestSize {
			bestBase, bestSize = cand, size
		}
	}
	return bestBase
}

// encodePlane chunks one attribute's content and writes every chunk,
// delta-encoding against the corresponding chunk of the base version when
// that is smaller ("disk space usage is calculated by trying both methods
// and choosing the more economical one", §III-B.3).
func (s *Store) encodePlane(ctx *insertCtx, id int, attr array.Attribute, pl Plane, base int) (map[string]chunkEntry, error) {
	st := ctx.st
	entries := make(map[string]chunkEntry)
	if ctx.sparse {
		// sparse versions are stored as a single container (their entire
		// coordinate list); chunk-level subdivision buys nothing when the
		// data is this sparse.
		key := "chunk-full"
		payload, entryBase, err := s.encodeSparseChunk(ctx, attr.Name, pl.Sparse, base)
		if err != nil {
			return nil, err
		}
		codec := pickCodec(s.opts.Codec, false)
		sealed, used, err := seal(codec, s.opts.AdaptiveCodec, payload, compress.Params{Elem: 1})
		if err != nil {
			return nil, err
		}
		file, off, err := s.writeBlob(ctx, id, attr.Name, key, sealed)
		if err != nil {
			return nil, err
		}
		entries[key] = chunkEntry{File: file, Offset: off, Length: int64(len(sealed)), Codec: uint8(used), Base: entryBase}
		return entries, nil
	}
	ck, err := st.chunker()
	if err != nil {
		return nil, err
	}
	// Fan the per-chunk encode+compress+write out on the worker pool.
	// Chunks are independent: each worker appends to its own chunk's
	// chain file (or writes its own per-version file), so the only shared
	// state is the stage-wide chunk memo and the I/O counters, both
	// internally locked. The metadata view is private to the staging
	// mutation and frozen for the duration of the fan-out.
	v := ctx.v
	origins := ck.All()
	results := make([]chunkEntry, len(origins))
	keys := make([]string, len(origins))
	for i, origin := range origins {
		keys[i] = ck.Key(origin)
	}
	ctx.qc.ensure(keys)
	err = forEachLimit(ctx.context(), len(origins), s.opts.Parallelism, func(i int) error {
		origin := origins[i]
		box := ck.Box(origin)
		key := keys[i]
		target, err := pl.Dense.Slice(box)
		if err != nil {
			return err
		}
		payload := target.Bytes()
		entryBase := -1
		rawDense := true
		if base > 0 {
			baseChunk, err := s.resolveDenseChunk(v, base, attr.Name, ck, origin, ctx.qc.chunk(key), nil)
			if err != nil {
				return err
			}
			blob, err := delta.Encode(s.opts.DeltaMethod, target, baseChunk)
			if err != nil {
				return err
			}
			if len(blob) < len(payload) {
				payload = blob
				entryBase = base
				rawDense = false
			}
		}
		codec := pickCodec(s.opts.Codec, rawDense)
		sealed, used, err := seal(codec, s.opts.AdaptiveCodec, payload, sealParams(rawDense, box, attr.Type))
		if err != nil {
			return err
		}
		file, off, err := s.writeBlob(ctx, id, attr.Name, key, sealed)
		if err != nil {
			return err
		}
		results[i] = chunkEntry{File: file, Offset: off, Length: int64(len(sealed)), Codec: uint8(used), Base: entryBase}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, key := range keys {
		entries[key] = results[i]
	}
	return entries, nil
}

// encodeSparseChunk encodes a sparse version either natively or as
// sparse-ops against the base, whichever is smaller.
func (s *Store) encodeSparseChunk(ctx *insertCtx, attr string, sp *array.Sparse, base int) ([]byte, int, error) {
	native := array.MarshalSparse(sp)
	if base <= 0 {
		return native, -1, nil
	}
	full := array.BoxOf(ctx.st.Schema.Shape())
	basePl, err := s.readRegionView(ctx.context(), ctx.v, base, attr, full, ctx.qc, nil)
	if err != nil {
		return nil, 0, err
	}
	blob, err := delta.EncodeSparseOps(sp, basePl.Sparse)
	if err != nil {
		return nil, 0, err
	}
	if len(blob) < len(native) {
		return blob, base, nil
	}
	return native, -1, nil
}

// Branch creates a new named array whose first version is a copy of the
// given version of an existing array (§II-A: "Branch operates identically
// to Insert except that a new named version is created"; Appendix A:
// "branches are formed off of a particular version of an existing array
// ... they create a new array with a new name").
func (s *Store) Branch(srcName string, srcVersion int, newName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	st, ok := s.arrays[srcName]
	if !ok {
		return fmt.Errorf("core: no array %q", srcName)
	}
	if _, err := st.version(srcVersion); err != nil {
		return err
	}
	planes := make([]Plane, len(st.Schema.Attrs))
	for ai, attr := range st.Schema.Attrs {
		pl, err := s.readPlaneLocked(st, srcVersion, attr.Name)
		if err != nil {
			return err
		}
		planes[ai] = pl
	}
	schema := st.Schema
	schema.Name = newName
	if err := s.createArrayLocked(schema, &BranchRef{Array: srcName, Version: srcVersion}); err != nil {
		return err
	}
	if _, err := s.insertBatchLocked(s.arrays[newName], []Payload{{Planes: planes}}, "branch"); err != nil {
		s.rollbackArrayLocked(newName)
		return err
	}
	return nil
}

// BranchedFrom returns the provenance of a branched array, or nil.
func (s *Store) BranchedFrom(name string) (*BranchRef, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.arrays[name]
	if !ok {
		return nil, fmt.Errorf("core: no array %q", name)
	}
	return st.BranchedFrom, nil
}

// VersionRef addresses a version of a named array.
type VersionRef struct {
	Array   string
	Version int
}

// Merge is the inverse of Branch (§II-A): it combines two or more parent
// versions into a new array whose version sequence is the parents in
// order. It does not combine data from two arrays into one array; the
// result's history records all parents, making the version hierarchy a
// graph rather than a tree.
func (s *Store) Merge(newName string, parents []VersionRef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(parents) < 2 {
		return fmt.Errorf("core: merge requires at least two parent versions")
	}
	first, ok := s.arrays[parents[0].Array]
	if !ok {
		return fmt.Errorf("core: no array %q", parents[0].Array)
	}
	schema := first.Schema
	schema.Name = newName
	for _, p := range parents[1:] {
		st, ok := s.arrays[p.Array]
		if !ok {
			return fmt.Errorf("core: no array %q", p.Array)
		}
		if err := checkShape(schema, st.Schema.Shape()); err != nil {
			return fmt.Errorf("core: merge parents have incompatible shapes: %w", err)
		}
		if len(st.Schema.Attrs) != len(schema.Attrs) {
			return fmt.Errorf("core: merge parents have different attribute counts")
		}
		for i := range schema.Attrs {
			if st.Schema.Attrs[i].Type != schema.Attrs[i].Type {
				return fmt.Errorf("core: merge parents disagree on attribute %d type", i)
			}
		}
	}
	if err := s.createArrayLocked(schema, nil); err != nil {
		return err
	}
	for _, p := range parents {
		st := s.arrays[p.Array]
		if _, err := st.version(p.Version); err != nil {
			s.rollbackArrayLocked(newName)
			return err
		}
		planes := make([]Plane, len(st.Schema.Attrs))
		for ai, attr := range st.Schema.Attrs {
			pl, err := s.readPlaneLocked(st, p.Version, attr.Name)
			if err != nil {
				s.rollbackArrayLocked(newName)
				return err
			}
			planes[ai] = pl
		}
		if _, err := s.insertBatchLocked(s.arrays[newName], []Payload{{Planes: planes}}, "merge"); err != nil {
			s.rollbackArrayLocked(newName)
			return err
		}
	}
	return nil
}

func (s *Store) rollbackArrayLocked(name string) {
	if st, ok := s.arrays[name]; ok {
		// through the FS seam so a fault-injected crash cannot "remove"
		// files a dead process never could
		_ = s.fs.RemoveAll(st.dir)
		delete(s.arrays, name)
		s.invalidateArrayLocked(name)
		s.workload.drop(name)
		s.dropTuneEstimate(name)
	}
}
