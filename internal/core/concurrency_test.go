package core

import (
	"strings"
	"sync"
	"testing"

	"arrayvers/internal/array"
)

// concurrencyOpts enables the hot-path machinery the stress tests
// exercise: multi-chunk arrays, the worker pool, and the store cache.
func concurrencyOpts() Options {
	o := smallOpts()
	o.Parallelism = 4
	o.CacheBytes = 4 << 20
	return o
}

// TestConcurrentSelectInsertReorganize hammers one store from selecting,
// inserting, and reorganizing goroutines at once. Run under -race this
// is the safety net for the narrowed locking: metadata snapshots, the
// shared chunk cache, parallel chunk workers, and the I/O latch all get
// exercised against concurrent mutation.
func TestConcurrentSelectInsertReorganize(t *testing.T) {
	s := testStore(t, concurrencyOpts())
	if err := s.CreateArray(schema2D("C", 64)); err != nil {
		t.Fatal(err)
	}
	const seedVersions = 6
	versions := evolvingVersions(seedVersions+8, 64, 11)
	for _, v := range versions[:seedVersions] {
		if _, err := s.Insert("C", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	fail := make(chan error, 64)
	// selecting goroutines: full selects, stacked multi-selects, and
	// region selects over the seed versions (which stay live throughout)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]int, seedVersions)
			for i := range ids {
				ids[i] = i + 1
			}
			for i := 0; i < 25; i++ {
				id := (g+i)%seedVersions + 1
				pl, err := s.Select("C", id)
				if err != nil {
					fail <- err
					return
				}
				if !pl.Dense.Equal(versions[id-1]) {
					t.Errorf("select %d content mismatch", id)
					return
				}
				if _, err := s.SelectMulti("C", ids); err != nil {
					fail <- err
					return
				}
				if _, err := s.SelectRegion("C", id, array.NewBox([]int64{8, 8}, []int64{40, 40})); err != nil {
					fail <- err
					return
				}
			}
		}(g)
	}
	// inserting goroutine
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, v := range versions[seedVersions:] {
			if _, err := s.Insert("C", DensePayload(v)); err != nil {
				fail <- err
				return
			}
		}
	}()
	// reorganizing goroutine
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := s.Reorganize("C", ReorganizeOptions{Policy: PolicyLinearChain}); err != nil {
				fail <- err
				return
			}
		}
	}()
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}
	// everything must still decode correctly after the storm
	for i, want := range versions {
		got, err := s.Select("C", i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("version %d corrupted after concurrent workload", i+1)
		}
	}
}

// TestCacheServesRepeatedSelects checks that a second select of the same
// version is served from the store cache without touching disk.
func TestCacheServesRepeatedSelects(t *testing.T) {
	s := testStore(t, concurrencyOpts())
	if err := s.CreateArray(schema2D("H", 64)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(4, 64, 12)
	for _, v := range versions {
		if _, err := s.Insert("H", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	s.ResetStats()
	if _, err := s.Select("H", 4); err != nil {
		t.Fatal(err)
	}
	first := s.Stats()
	if first.CacheMisses == 0 {
		t.Fatal("cold select recorded no cache misses")
	}
	if _, err := s.Select("H", 4); err != nil {
		t.Fatal(err)
	}
	second := s.Stats()
	if second.CacheHits == 0 {
		t.Fatal("warm select recorded no cache hits")
	}
	if second.ChunksRead != first.ChunksRead {
		t.Fatalf("warm select read %d chunks from disk", second.ChunksRead-first.ChunksRead)
	}
	// the warm select of the chain head must not have re-walked ancestors
	pl, err := s.Select("H", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Dense.Equal(versions[3]) {
		t.Fatal("cached content mismatch")
	}
}

// TestCacheInvalidatedOnReorganize checks that Reorganize drops the
// array's cached chunks and later selects still see correct content.
func TestCacheInvalidatedOnReorganize(t *testing.T) {
	s := testStore(t, concurrencyOpts())
	if err := s.CreateArray(schema2D("I", 64)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(5, 64, 13)
	for _, v := range versions {
		if _, err := s.Insert("I", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	for i := range versions {
		if _, err := s.Select("I", i+1); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().CacheEntries == 0 {
		t.Fatal("selects populated no cache entries")
	}
	if err := s.Reorganize("I", ReorganizeOptions{Policy: PolicyHeadBiased}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().CacheEntries; got != 0 {
		t.Fatalf("reorganize left %d cache entries", got)
	}
	for i, want := range versions {
		got, err := s.Select("I", i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("version %d mismatch after reorganize", i+1)
		}
	}
}

// TestCacheInvalidatedOnDeleteVersion checks DeleteVersion invalidation.
func TestCacheInvalidatedOnDeleteVersion(t *testing.T) {
	s := testStore(t, concurrencyOpts())
	if err := s.CreateArray(schema2D("D", 64)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(4, 64, 14)
	for _, v := range versions {
		if _, err := s.Insert("D", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	for i := range versions {
		if _, err := s.Select("D", i+1); err != nil {
			t.Fatal(err)
		}
	}
	entriesBefore := s.Stats().CacheEntries
	if err := s.DeleteVersion("D", 2); err != nil {
		t.Fatal(err)
	}
	// invalidation is targeted: only the deleted version's chunks drop,
	// the rest of the warm cache survives
	after := s.Stats()
	if after.CacheEntries >= entriesBefore {
		t.Fatalf("delete-version dropped no cache entries (%d -> %d)", entriesBefore, after.CacheEntries)
	}
	if after.CacheEntries == 0 {
		t.Fatal("delete-version flushed the whole array's cache")
	}
	if _, err := s.Select("D", 2); err == nil {
		t.Fatal("deleted version still selectable")
	}
	// surviving versions decode correctly and stay warm (no disk reads)
	readsBefore := s.Stats().ChunksRead
	for _, id := range []int{1, 3, 4} {
		got, err := s.Select("D", id)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Dense.Equal(versions[id-1]) {
			t.Fatalf("version %d mismatch after delete", id)
		}
	}
	if got := s.Stats().ChunksRead; got != readsBefore {
		t.Fatalf("surviving versions were not served from cache (%d extra chunk reads)", got-readsBefore)
	}
}

// TestCacheEpochAfterDeleteAndRecreate is the nastiest invalidation
// case: delete an array, recreate one with the same name and version
// numbering but different content, and make sure reads cannot be served
// from the old generation's cache entries.
func TestCacheEpochAfterDeleteAndRecreate(t *testing.T) {
	s := testStore(t, concurrencyOpts())
	if err := s.CreateArray(schema2D("E", 64)); err != nil {
		t.Fatal(err)
	}
	oldContent := evolvingVersions(1, 64, 15)[0]
	if _, err := s.Insert("E", DensePayload(oldContent)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("E", 1); err != nil {
		t.Fatal(err) // populate the cache
	}
	if err := s.DeleteArray("E"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(schema2D("E", 64)); err != nil {
		t.Fatal(err)
	}
	newContent := evolvingVersions(1, 64, 16)[0]
	if _, err := s.Insert("E", DensePayload(newContent)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Select("E", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Dense.Equal(newContent) {
		t.Fatal("select served stale content from the deleted array's cache")
	}
}

// TestSparseDeltaListInsertDoesNotCorruptCache guards the clone-on-serve
// rule: the delta-list insert form mutates the plane it reads from the
// base version, which must never alias a cache-resident sparse array.
func TestSparseDeltaListInsertDoesNotCorruptCache(t *testing.T) {
	o := concurrencyOpts()
	s := testStore(t, o)
	schema := schema2D("S", 32)
	if err := s.CreateArray(schema); err != nil {
		t.Fatal(err)
	}
	sp := array.MustSparse(array.Int32, []int64{32, 32}, 0)
	sp.SetBits(5, 7)
	sp.SetBits(100, 9)
	if _, err := s.Insert("S", SparsePayload(sp)); err != nil {
		t.Fatal(err)
	}
	// populate the cache with version 1's content
	before, err := s.Select("S", 1)
	if err != nil {
		t.Fatal(err)
	}
	// delta-list insert off version 1 flips a cell
	if _, err := s.Insert("S", DeltaListPayload(1, []CellUpdate{{Coords: []int64{0, 5}, Bits: 42}})); err != nil {
		t.Fatal(err)
	}
	after, err := s.Select("S", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Sparse.Equal(before.Sparse) {
		t.Fatal("delta-list insert mutated the cached base version")
	}
	v2, err := s.Select("S", 2)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Sparse.Bits(5) != 42 {
		t.Fatalf("version 2 update lost: cell = %d", v2.Sparse.Bits(5))
	}
}

// TestParallelSelectMatchesSerial decodes the same store with a serial
// uncached reader and a parallel cached reader and compares results.
func TestParallelSelectMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	build := smallOpts()
	build.Parallelism = 1
	s, err := Open(dir, build)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateArray(schema2D("M", 64)); err != nil {
		t.Fatal(err)
	}
	versions := evolvingVersions(6, 64, 17)
	ids := make([]int, len(versions))
	for i, v := range versions {
		if ids[i], err = s.Insert("M", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	serial, err := s.SelectMulti("M", ids)
	if err != nil {
		t.Fatal(err)
	}
	tuned := smallOpts()
	tuned.Parallelism = 8
	tuned.CacheBytes = 8 << 20
	s2, err := Open(dir, tuned)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := s2.SelectMulti("M", ids)
	if err != nil {
		t.Fatal(err)
	}
	if !parallel.Equal(serial) {
		t.Fatal("parallel cached select disagrees with serial uncached select")
	}
	// run it again warm to cover the all-hits path
	warm, err := s2.SelectMulti("M", ids)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Equal(serial) {
		t.Fatal("warm select disagrees with serial select")
	}
}

// TestConcurrentSelectWithPerVersionReencode is the regression test for
// the per-version-file rewrite race: with CoLocate off, maybeBatchReencode
// and DeleteVersion rewrite existing versions' chunk files in place
// (os.WriteFile truncates), which must exclude in-flight lock-free
// readers via the I/O latch. Without the latch this fails with decode
// errors like "delta: unknown method byte".
func TestConcurrentSelectWithPerVersionReencode(t *testing.T) {
	o := concurrencyOpts()
	o.CoLocate = false
	o.AutoBatchK = 2
	s := testStore(t, o)
	if err := s.CreateArray(schema2D("PV", 64)); err != nil {
		t.Fatal(err)
	}
	const seedVersions = 4
	versions := evolvingVersions(seedVersions+20, 64, 18)
	for _, v := range versions[:seedVersions] {
		if _, err := s.Insert("PV", DensePayload(v)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	fail := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := []int{1, 2, 3, 4}
			for i := 0; i < 40; i++ {
				if _, err := s.SelectMulti("PV", ids); err != nil {
					fail <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, v := range versions[seedVersions:] {
			if _, err := s.Insert("PV", DensePayload(v)); err != nil {
				fail <- err
				return
			}
		}
		// exercise the DeleteVersion re-encode path under load too
		if err := s.DeleteVersion("PV", 3); err != nil {
			fail <- err
		}
	}()
	wg.Wait()
	close(fail)
	for err := range fail {
		// readers may observe version 3 disappearing; that's the one
		// legitimate error under this schedule
		if !strings.Contains(err.Error(), "no version 3") {
			t.Fatal(err)
		}
	}
	for i, want := range versions[:seedVersions] {
		if i+1 == 3 {
			continue
		}
		got, err := s.Select("PV", i+1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Dense.Equal(want) {
			t.Fatalf("version %d corrupted", i+1)
		}
	}
}
