package delta

import (
	"testing"

	"arrayvers/internal/array"
)

func fuzzBase() *array.Dense {
	d := array.MustDense(array.Int32, []int64{8, 8})
	for i := int64(0); i < d.NumCells(); i++ {
		d.SetBits(i, i*13%500-200)
	}
	return d
}

func fuzzSparseBase() *array.Sparse {
	sp := array.MustSparse(array.Int16, []int64{64, 64}, 7)
	for i := int64(0); i < 30; i++ {
		sp.SetBits(i*111%4096, i-15)
	}
	return sp
}

// FuzzApply hurls arbitrary blobs at every delta decoder — the five
// dense Apply methods, the bidirectional Unapply path, the sparse-ops
// decoder, and the byte-level bsdiff patcher. A hostile blob must come
// back as an error, never a panic or an allocation unmoored from the
// input size; base arrays are never mutated.
func FuzzApply(f *testing.F) {
	base := fuzzBase()
	target := fuzzBase()
	for i := int64(0); i < 12; i++ {
		target.SetBits(i*5, target.Bits(i*5)+1000)
	}
	// seed corpus: one valid blob per method
	for _, m := range []Method{Dense, Sparse, Hybrid, BlockMatch, BSDiff} {
		if blob, err := Encode(m, target, base); err == nil {
			f.Add(blob)
		}
	}
	spBase := fuzzSparseBase()
	spTarget := spBase.Clone()
	spTarget.SetBits(5, 123)
	if blob, err := EncodeSparseOps(spTarget, spBase); err == nil {
		f.Add(blob)
	}
	f.Add(BytesDiff([]byte("old content old content"), []byte("new content, rather longer")))
	f.Add([]byte{byte(Hybrid), 3, 200}) // implausible width
	f.Add([]byte{byte(Sparse), 3, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, blob []byte) {
		if len(blob) > 1<<16 {
			return
		}
		base := fuzzBase()
		pristine := base.Clone()
		if out, err := Apply(blob, base); err == nil && out == nil {
			t.Fatal("Apply returned nil array without error")
		}
		if out, err := Unapply(blob, base); err == nil && out == nil {
			t.Fatal("Unapply returned nil array without error")
		}
		if !base.Equal(pristine) {
			t.Fatal("Apply/Unapply mutated the base array")
		}
		sp := fuzzSparseBase()
		spPristine := sp.Clone()
		_, _ = ApplySparseOps(blob, sp)
		_, _ = UnapplySparseOps(blob, sp)
		if !sp.Equal(spPristine) {
			t.Fatal("sparse ops mutated the base array")
		}
		_, _ = BytesPatch([]byte("old content old content"), blob)
		_, _ = MethodOf(blob)
	})
}

// FuzzFusedApply is the differential kernel fuzzer for the cellwise
// decoders: an arbitrary blob is applied (and unapplied) under both the
// scalar and fused kernels, which must either both reject it or both
// produce identical arrays.
func FuzzFusedApply(f *testing.F) {
	base := fuzzBase()
	target := fuzzBase()
	for i := int64(0); i < 12; i++ {
		target.SetBits(i*5, target.Bits(i*5)+1000)
	}
	for _, m := range []Method{Dense, Hybrid} {
		if blob, err := Encode(m, target, base); err == nil {
			f.Add(blob)
		}
	}
	if blob, err := Encode(Dense, base, base); err == nil {
		f.Add(blob) // width-0 plane
	}
	f.Add([]byte{byte(Hybrid), 3, 200})     // implausible width
	f.Add([]byte{byte(Dense), 3, 65, 0, 0}) // width out of range
	f.Add([]byte{byte(Hybrid), 3, 2, 0xff}) // truncated plane

	f.Fuzz(func(t *testing.T, blob []byte) {
		if len(blob) > 1<<16 {
			return
		}
		prevK := ActiveKernel()
		defer SetKernel(prevK)
		base := fuzzBase()
		pristine := base.Clone()
		for _, unapply := range []bool{false, true} {
			SetKernel(KernelScalar)
			var sOut, fOut *array.Dense
			var sErr, fErr error
			if unapply {
				sOut, sErr = Unapply(blob, base)
			} else {
				sOut, sErr = Apply(blob, base)
			}
			SetKernel(KernelFused)
			if unapply {
				fOut, fErr = Unapply(blob, base)
			} else {
				fOut, fErr = Apply(blob, base)
			}
			if (sErr == nil) != (fErr == nil) {
				t.Fatalf("kernels disagree on error (unapply=%v): scalar %v, fused %v", unapply, sErr, fErr)
			}
			if sErr == nil && !fOut.Equal(sOut) {
				t.Fatalf("kernels disagree on output (unapply=%v)", unapply)
			}
			if !base.Equal(pristine) {
				t.Fatal("apply mutated the base array")
			}
		}
	})
}
