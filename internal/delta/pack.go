package delta

import "arrayvers/internal/bitpack"

// thin aliases over the bitpack substrate, keeping call sites terse.

func signedWidth(v int64) int { return bitpack.SignedWidth(v) }

func packSigned(vs []int64, width int) []byte { return bitpack.PackSigned(vs, width) }

func unpackSigned(buf []byte, n int64, width int) ([]int64, error) {
	return bitpack.UnpackSigned(buf, int(n), width)
}
