package delta

import (
	"math/rand"
	"testing"

	"arrayvers/internal/array"
)

// Differential harness for the fused apply kernel: every dtype × method
// × direction is encoded once and decoded by both kernels, which must
// produce bit-identical arrays (and agree on errors for hostile blobs —
// FuzzFusedApply covers those).

var fusedDTypes = []array.DataType{
	array.Int8, array.Int16, array.Int32, array.Int64,
	array.UInt8, array.UInt16, array.UInt32,
	array.Float32, array.Float64,
}

// randomPair builds a base and a mutated target of the same shape:
// mostly small diffs, a sprinkling of wide outliers (so Hybrid gets a
// real overlay), and runs of identical cells.
func randomPair(t *testing.T, rng *rand.Rand, dt array.DataType, shape []int64) (target, base *array.Dense) {
	t.Helper()
	base, err := array.NewDense(dt, shape)
	if err != nil {
		t.Fatal(err)
	}
	target, err = array.NewDense(dt, shape)
	if err != nil {
		t.Fatal(err)
	}
	n := base.NumCells()
	for i := int64(0); i < n; i++ {
		b := rng.Int63() - (1 << 62)
		base.SetBits(i, array.TruncateBits(dt, b))
		switch rng.Intn(10) {
		case 0: // identical
			target.SetBits(i, base.Bits(i))
		case 1: // wide outlier
			target.SetBits(i, array.TruncateBits(dt, rng.Int63()-(1<<62)))
		default: // small diff
			target.SetBits(i, array.TruncateBits(dt, base.Bits(i)+int64(rng.Intn(31)-15)))
		}
	}
	return target, base
}

func applyWithKernel(t *testing.T, k Kernel, blob []byte, from *array.Dense, unapply bool) *array.Dense {
	t.Helper()
	prev := SetKernel(k)
	defer SetKernel(prev)
	var out *array.Dense
	var err error
	if unapply {
		out, err = Unapply(blob, from)
	} else {
		out, err = Apply(blob, from)
	}
	if err != nil {
		t.Fatalf("kernel %v apply: %v", k, err)
	}
	return out
}

func TestFusedDifferentialAllDTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := [][]int64{{1}, {3}, {16, 16}, {7, 37}, {255}, {256}, {257}, {1000}}
	for _, dt := range fusedDTypes {
		for _, shape := range shapes {
			for _, m := range []Method{Dense, Hybrid} {
				target, base := randomPair(t, rng, dt, shape)
				blob, err := Encode(m, target, base)
				if err != nil {
					t.Fatalf("%v %v %v: encode: %v", dt, shape, m, err)
				}
				scalar := applyWithKernel(t, KernelScalar, blob, base, false)
				fused := applyWithKernel(t, KernelFused, blob, base, false)
				if !scalar.Equal(target) {
					t.Fatalf("%v %v %v: scalar apply does not reconstruct target", dt, shape, m)
				}
				if !fused.Equal(scalar) {
					t.Fatalf("%v %v %v: fused apply differs from scalar", dt, shape, m)
				}
				// reverse direction: reconstruct base from target
				scalarBack := applyWithKernel(t, KernelScalar, blob, target, true)
				fusedBack := applyWithKernel(t, KernelFused, blob, target, true)
				if !scalarBack.Equal(base) {
					t.Fatalf("%v %v %v: scalar unapply does not reconstruct base", dt, shape, m)
				}
				if !fusedBack.Equal(scalarBack) {
					t.Fatalf("%v %v %v: fused unapply differs from scalar", dt, shape, m)
				}
			}
		}
	}
}

// TestFusedIdenticalVersions covers the width-0 plane: a delta between
// identical arrays decodes through the fused kernel's zero-width path.
func TestFusedIdenticalVersions(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, m := range []Method{Dense, Hybrid} {
		target, _ := randomPair(t, rng, array.Int32, []int64{40, 10})
		blob, err := Encode(m, target, target)
		if err != nil {
			t.Fatal(err)
		}
		scalar := applyWithKernel(t, KernelScalar, blob, target, false)
		fused := applyWithKernel(t, KernelFused, blob, target, false)
		if !fused.Equal(scalar) || !fused.Equal(target) {
			t.Fatalf("%v: width-0 fused apply differs", m)
		}
	}
}

// TestFusedAllOutliers forces a hybrid overlay covering every cell: the
// encoder may pick width 0 with all cells in the overlay, and the fused
// kernel's overlay patching must still override the plane everywhere.
func TestFusedAllOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := array.MustDense(array.Int64, []int64{300})
	target := array.MustDense(array.Int64, []int64{300})
	for i := int64(0); i < 300; i++ {
		base.SetBits(i, rng.Int63())
		target.SetBits(i, rng.Int63())
	}
	blob, err := Encode(Hybrid, target, base)
	if err != nil {
		t.Fatal(err)
	}
	scalar := applyWithKernel(t, KernelScalar, blob, base, false)
	fused := applyWithKernel(t, KernelFused, blob, base, false)
	if !scalar.Equal(target) {
		t.Fatal("scalar apply does not reconstruct target")
	}
	if !fused.Equal(scalar) {
		t.Fatal("fused apply differs from scalar")
	}
}

// TestFusedChain walks a chain of deltas — the shape of a real version
// chain — alternating kernels between links, so a fused output feeds a
// scalar apply and vice versa.
func TestFusedChain(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	versions := make([]*array.Dense, 8)
	versions[0] = array.MustDense(array.Int16, []int64{12, 31})
	for i := int64(0); i < versions[0].NumCells(); i++ {
		versions[0].SetBits(i, int64(rng.Intn(1000)))
	}
	blobs := make([][]byte, 0, len(versions)-1)
	for v := 1; v < len(versions); v++ {
		next := versions[v-1].Clone()
		for i := int64(0); i < next.NumCells(); i += int64(1 + rng.Intn(4)) {
			next.SetBits(i, array.TruncateBits(array.Int16, next.Bits(i)+int64(rng.Intn(9)-4)))
		}
		versions[v] = next
		blob, err := Encode(Hybrid, next, versions[v-1])
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	cur := versions[0]
	for v, blob := range blobs {
		k := KernelFused
		if v%2 == 0 {
			k = KernelScalar
		}
		cur = applyWithKernel(t, k, blob, cur, false)
		if !cur.Equal(versions[v+1]) {
			t.Fatalf("chain link %d: reconstruction differs", v+1)
		}
	}
	// and back down the chain
	for v := len(blobs) - 1; v >= 0; v-- {
		k := KernelScalar
		if v%2 == 0 {
			k = KernelFused
		}
		cur = applyWithKernel(t, k, blobs[v], cur, true)
		if !cur.Equal(versions[v]) {
			t.Fatalf("chain link %d: reverse reconstruction differs", v)
		}
	}
}

func TestFusedOpsCounter(t *testing.T) {
	prev := SetKernel(KernelFused)
	defer SetKernel(prev)
	rng := rand.New(rand.NewSource(25))
	target, base := randomPair(t, rng, array.Int32, []int64{64})
	blob, err := Encode(Dense, target, base)
	if err != nil {
		t.Fatal(err)
	}
	before := FusedOps()
	if _, err := Apply(blob, base); err != nil {
		t.Fatal(err)
	}
	if got := FusedOps(); got != before+1 {
		t.Fatalf("FusedOps = %d, want %d", got, before+1)
	}
	SetKernel(KernelScalar)
	if _, err := Apply(blob, base); err != nil {
		t.Fatal(err)
	}
	if got := FusedOps(); got != before+1 {
		t.Fatalf("scalar apply bumped FusedOps to %d", got)
	}
}

func benchmarkApplyKernel(b *testing.B, k Kernel, m Method) {
	rng := rand.New(rand.NewSource(26))
	base := array.MustDense(array.Int32, []int64{128, 128})
	target := array.MustDense(array.Int32, []int64{128, 128})
	for i := int64(0); i < base.NumCells(); i++ {
		v := int64(rng.Intn(100000))
		base.SetBits(i, v)
		d := int64(rng.Intn(15) - 7)
		if rng.Intn(100) == 0 {
			d = int64(rng.Intn(1 << 20))
		}
		target.SetBits(i, array.TruncateBits(array.Int32, v+d))
	}
	blob, err := Encode(m, target, base)
	if err != nil {
		b.Fatal(err)
	}
	prev := SetKernel(k)
	defer SetKernel(prev)
	b.SetBytes(base.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(blob, base); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyScalarHybrid(b *testing.B) { benchmarkApplyKernel(b, KernelScalar, Hybrid) }
func BenchmarkApplyFusedHybrid(b *testing.B)  { benchmarkApplyKernel(b, KernelFused, Hybrid) }
func BenchmarkApplyScalarDense(b *testing.B)  { benchmarkApplyKernel(b, KernelScalar, Dense) }
func BenchmarkApplyFusedDense(b *testing.B)   { benchmarkApplyKernel(b, KernelFused, Dense) }
