package delta

import (
	"math/rand"

	"arrayvers/internal/array"
)

// Sampled delta-size estimation (paper §IV-A): "computing the space S to
// store the deltas based on a random sample of R of the total of N cells
// for a pair of matrices and then computing S×R/N yields a fairly
// approximate estimate of the actual delta size, even for S/N values of
// .1% or less."

// EstimateSize estimates the hybrid-delta encoded size of (target − base)
// from a random sample of R cells, scaled by N/R. If sample <= 0 or
// sample >= N the exact size is computed instead.
func EstimateSize(target, base *array.Dense, sample int, seed int64) int64 {
	n := target.NumCells()
	if sample <= 0 || int64(sample) >= n {
		return int64(len(encodeHybrid(target, base)))
	}
	rng := rand.New(rand.NewSource(seed))
	dt := target.DType()
	diffs := make([]int64, sample)
	widths := make([]int, sample)
	maxW := 0
	for i := range diffs {
		flat := rng.Int63n(n)
		d := wrapDiff(dt, target.Bits(flat), base.Bits(flat))
		diffs[i] = d
		widths[i] = signedWidth(d)
		if widths[i] > maxW {
			maxW = widths[i]
		}
	}
	width := chooseHybridWidth(diffs, widths, maxW, int64(sample))
	sampleBytes := (int64(sample)*int64(width) + 7) / 8
	for i := range diffs {
		if widths[i] > width {
			// outlier: index gap + value varint
			sampleBytes += int64(uvarintLen(uint64(n)/uint64(sample))) + int64(varintLen(diffs[i]))
		}
	}
	return sampleBytes * n / int64(sample)
}

// MaterializedSize returns the bytes needed to store a dense version in
// native (uncompressed) form: the raw cell payload, "without any prefix
// or header" (§III-B.1).
func MaterializedSize(a *array.Dense) int64 { return a.SizeBytes() }

// SparseMaterializedSize returns the bytes needed to store a sparse
// version in native form (positions + values).
func SparseMaterializedSize(s *array.Sparse) int64 { return s.SizeBytes() }
