package delta

import "sort"

// Suffix sorting by prefix doubling (Manber–Myers), implemented from
// scratch as the substrate for the BSDiff-style differencer. The original
// bsdiff (Percival '03, cited as [6] in the paper) uses Larsson–Sadakane
// qsufsort; prefix doubling has the same output and an O(n log² n) bound,
// which is ample here — the paper itself reports bsdiff as by far the
// slowest differencing method (Table I).

// suffixArray returns sa such that sa[i] is the start offset of the i-th
// lexicographically smallest suffix of data.
func suffixArray(data []byte) []int32 {
	n := len(data)
	sa := make([]int32, n)
	rank := make([]int32, n)
	tmp := make([]int32, n)
	for i := 0; i < n; i++ {
		sa[i] = int32(i)
		rank[i] = int32(data[i])
	}
	for k := 1; ; k *= 2 {
		rankAt := func(i int32) int32 {
			if int(i) < n {
				return rank[i]
			}
			return -1
		}
		less := func(a, b int32) bool {
			if rank[a] != rank[b] {
				return rank[a] < rank[b]
			}
			return rankAt(a+int32(k)) < rankAt(b+int32(k))
		}
		sort.Slice(sa, func(i, j int) bool { return less(sa[i], sa[j]) })
		if n > 0 {
			tmp[sa[0]] = 0
			for i := 1; i < n; i++ {
				tmp[sa[i]] = tmp[sa[i-1]]
				if less(sa[i-1], sa[i]) {
					tmp[sa[i]]++
				}
			}
			copy(rank, tmp)
			if rank[sa[n-1]] == int32(n-1) {
				break
			}
		} else {
			break
		}
	}
	return sa
}

// matchLen returns the length of the common prefix of a and b.
func matchLen(a, b []byte) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// saSearch finds the longest prefix of target present in old, returning
// (length, position in old), via binary search over the suffix array.
func saSearch(sa []int32, old, target []byte) (length, pos int) {
	lo, hi := 0, len(sa)
	for lo < hi {
		mid := (lo + hi) / 2
		if lessPrefix(old[sa[mid]:], target) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	best, bestPos := 0, 0
	for _, k := range []int{lo - 1, lo} {
		if k < 0 || k >= len(sa) {
			continue
		}
		if l := matchLen(old[sa[k]:], target); l > best {
			best, bestPos = l, int(sa[k])
		}
	}
	return best, bestPos
}

// lessPrefix reports whether suffix a sorts strictly before target,
// treating a shared prefix as a tie broken by length.
func lessPrefix(a, b []byte) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
