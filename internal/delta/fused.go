package delta

import (
	"encoding/binary"
	"sync/atomic"

	"arrayvers/internal/array"
	"arrayvers/internal/bitpack"
)

// Fused unpack+apply kernels. The scalar decode path materializes an
// n-value []int64 diff plane and then walks it with the generic
// Bits/SetBits cell accessors — two full passes plus an 8n-byte
// allocation per chunk. The fused kernel deletes the intermediate
// plane: diffs are unpacked in byte-aligned blocks into a stack buffer
// and added straight into the output's backing bytes at the dtype's
// native width.
//
// The scalar apply bodies in cellwise.go stay compiled as the reference
// implementation; the differential harness (fused_test.go,
// FuzzFusedApply) drives the fused kernel against them and requires
// bit-identical output.

// Kernel identifies a delta-apply implementation.
type Kernel uint8

// Registered kernels.
const (
	// KernelScalar unpacks the full diff plane and applies it through
	// the generic cell accessors — the reference implementation.
	KernelScalar Kernel = iota
	// KernelFused unpacks and applies blockwise with native-width
	// arithmetic, skipping the intermediate plane; the default.
	KernelFused
)

func (k Kernel) String() string {
	switch k {
	case KernelScalar:
		return "scalar"
	case KernelFused:
		return "fused"
	default:
		return "Kernel(?)"
	}
}

var activeKernel atomic.Uint32

func init() { activeKernel.Store(uint32(KernelFused)) }

// SetKernel selects the apply kernel for the cellwise dense/hybrid
// methods and returns the previous selection.
func SetKernel(k Kernel) Kernel {
	prev := ActiveKernel()
	if k <= KernelFused {
		activeKernel.Store(uint32(k))
	}
	return prev
}

// ActiveKernel returns the currently selected apply kernel.
func ActiveKernel() Kernel { return Kernel(activeKernel.Load()) }

// Kernels lists every registered apply kernel.
func Kernels() []Kernel { return []Kernel{KernelScalar, KernelFused} }

// fusedOps counts fused applies process-wide; stores report it
// (baselined at Open) as part of kernel_batched_ops.
var fusedOps atomic.Int64

// FusedOps returns the cumulative number of fused delta applies.
func FusedOps() int64 { return fusedOps.Load() }

// fusedBlockVals is the fused decode-block size. 256 values at any
// width occupy exactly 32*width bytes, so every block starts
// byte-aligned and can be unpacked from a plain sub-slice of the packed
// plane.
const fusedBlockVals = 256

// fusedApply reconstructs out = from ± decode(packed), where packed
// holds NumCells zigzag codes of the given width, then patches the
// overlay cells (hybrid outliers; the packed plane stores 0 there) with
// out[idx] = from[idx] ± val, replicating the scalar path's
// patch-plane-then-add order.
//
// Equivalence to the scalar path: the scalar kernel computes
// TruncateBits(dt, from.Bits(i) + diff) and stores the low k bytes;
// the low k bytes of a sum depend only on the low k bytes of the
// addends, so native k-byte wrapping addition over the backing bytes is
// bit-identical. Subtraction is folded in by negating the diffs.
func fusedApply(packed []byte, width int, from *array.Dense, overlayIdx, overlayVal []int64, reverse bool) (*array.Dense, error) {
	fusedOps.Add(1)
	n := from.NumCells()
	dt := from.DType()
	out, err := array.NewDense(dt, from.Shape())
	if err != nil {
		return nil, err
	}
	src := from.Bytes()
	dst := out.Bytes()
	esz := dt.Size()
	var block [fusedBlockVals]uint64
	for start := int64(0); start < n; start += fusedBlockVals {
		m := int(n - start)
		if m > fusedBlockVals {
			m = fusedBlockVals
		}
		off := start * int64(width) / 8
		if err := bitpack.UnpackUnsignedInto(packed[off:], m, width, block[:]); err != nil {
			return nil, err
		}
		diffs := block[:m]
		for j := range diffs {
			diffs[j] = uint64(bitpack.Unzigzag(diffs[j]))
		}
		if reverse {
			for j := range diffs {
				diffs[j] = -diffs[j]
			}
		}
		switch esz {
		case 1:
			o := start
			for j := range diffs {
				dst[o] = src[o] + byte(diffs[j])
				o++
			}
		case 2:
			o := 2 * start
			for j := range diffs {
				binary.LittleEndian.PutUint16(dst[o:], binary.LittleEndian.Uint16(src[o:])+uint16(diffs[j]))
				o += 2
			}
		case 4:
			o := 4 * start
			for j := range diffs {
				binary.LittleEndian.PutUint32(dst[o:], binary.LittleEndian.Uint32(src[o:])+uint32(diffs[j]))
				o += 4
			}
		case 8:
			o := 8 * start
			for j := range diffs {
				binary.LittleEndian.PutUint64(dst[o:], binary.LittleEndian.Uint64(src[o:])+diffs[j])
				o += 8
			}
		default:
			// no native word width for this dtype; generic accessors
			for j := range diffs {
				i := start + int64(j)
				out.SetBits(i, wrapAdd(dt, from.Bits(i), int64(diffs[j])))
			}
		}
	}
	for i, ix := range overlayIdx {
		d := overlayVal[i]
		if reverse {
			out.SetBits(ix, wrapSub(dt, from.Bits(ix), d))
		} else {
			out.SetBits(ix, wrapAdd(dt, from.Bits(ix), d))
		}
	}
	return out, nil
}
