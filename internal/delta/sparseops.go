package delta

import (
	"encoding/binary"
	"fmt"

	"arrayvers/internal/array"
)

// SparseOps is the delta between two *sparse* array versions, used for
// sparse datasets such as ConceptNet: a merged edit list recording, for
// every flat index where the two versions differ, both the base and the
// target bit patterns. Carrying both sides keeps the delta bidirectional
// at the cost of a few bytes per edit. Both versions must share dtype,
// shape and fill value.
//
// Layout: [method][dtype] | fill varint | nedits uvarint |
//         uvarint index gaps | varint(old−fill) | varint(new−fill).

// EncodeSparseOps computes a bidirectional delta blob between two sparse
// versions.
func EncodeSparseOps(target, base *array.Sparse) ([]byte, error) {
	if target.DType() != base.DType() {
		return nil, fmt.Errorf("delta: dtype mismatch %v vs %v", target.DType(), base.DType())
	}
	if target.NDim() != base.NDim() {
		return nil, fmt.Errorf("delta: dimensionality mismatch %d vs %d", target.NDim(), base.NDim())
	}
	for i, s := range target.Shape() {
		if base.Shape()[i] != s {
			return nil, fmt.Errorf("delta: shape mismatch %v vs %v", target.Shape(), base.Shape())
		}
	}
	if target.Fill() != base.Fill() {
		return nil, fmt.Errorf("delta: fill mismatch %d vs %d", target.Fill(), base.Fill())
	}
	fill := target.Fill()
	// merge the two sorted pair lists
	type entry struct{ idx, oldV, newV int64 }
	var edits []entry
	var tIdx, tVal, bIdx, bVal []int64
	target.Pairs(func(i, v int64) { tIdx = append(tIdx, i); tVal = append(tVal, v) })
	base.Pairs(func(i, v int64) { bIdx = append(bIdx, i); bVal = append(bVal, v) })
	ti, bi := 0, 0
	for ti < len(tIdx) || bi < len(bIdx) {
		switch {
		case bi >= len(bIdx) || (ti < len(tIdx) && tIdx[ti] < bIdx[bi]):
			edits = append(edits, entry{tIdx[ti], fill, tVal[ti]})
			ti++
		case ti >= len(tIdx) || bIdx[bi] < tIdx[ti]:
			edits = append(edits, entry{bIdx[bi], bVal[bi], fill})
			bi++
		default: // same index
			if tVal[ti] != bVal[bi] {
				edits = append(edits, entry{tIdx[ti], bVal[bi], tVal[ti]})
			}
			ti++
			bi++
		}
	}
	out := []byte{byte(SparseOps), byte(target.DType())}
	out = binary.AppendVarint(out, fill)
	out = binary.AppendUvarint(out, uint64(len(edits)))
	prev := int64(0)
	for _, e := range edits {
		out = binary.AppendUvarint(out, uint64(e.idx-prev))
		prev = e.idx
	}
	for _, e := range edits {
		out = binary.AppendVarint(out, wrapDiff(target.DType(), e.oldV, fill))
	}
	for _, e := range edits {
		out = binary.AppendVarint(out, wrapDiff(target.DType(), e.newV, fill))
	}
	return out, nil
}

// ApplySparseOps reconstructs the target sparse array from the base.
func ApplySparseOps(blob []byte, base *array.Sparse) (*array.Sparse, error) {
	return applySparseOps(blob, base, false)
}

// UnapplySparseOps reconstructs the base sparse array from the target.
func UnapplySparseOps(blob []byte, target *array.Sparse) (*array.Sparse, error) {
	return applySparseOps(blob, target, true)
}

func applySparseOps(blob []byte, from *array.Sparse, reverse bool) (*array.Sparse, error) {
	if len(blob) < 2 || Method(blob[0]) != SparseOps {
		return nil, fmt.Errorf("delta: not a sparseops blob")
	}
	if array.DataType(blob[1]) != from.DType() {
		return nil, fmt.Errorf("delta: sparseops dtype %v, base dtype %v", array.DataType(blob[1]), from.DType())
	}
	pos := 2
	fill, k := binary.Varint(blob[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("delta: truncated sparseops fill")
	}
	pos += k
	if fill != from.Fill() {
		return nil, fmt.Errorf("delta: sparseops fill %d, array fill %d", fill, from.Fill())
	}
	n, k := binary.Uvarint(blob[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("delta: truncated sparseops count")
	}
	pos += k
	// every edit carries an index gap plus two value varints, one byte
	// minimum each; reject counts the input cannot back before allocating
	if n > uint64(len(blob)-pos)/3 {
		return nil, fmt.Errorf("delta: sparseops claims %d edits in %d bytes", n, len(blob)-pos)
	}
	idx := make([]int64, n)
	prev := int64(0)
	for i := range idx {
		g, k := binary.Uvarint(blob[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("delta: truncated sparseops index %d", i)
		}
		prev += int64(g)
		idx[i] = prev
		pos += k
	}
	dt := from.DType()
	readVals := func() ([]int64, error) {
		vals := make([]int64, n)
		for i := range vals {
			d, k := binary.Varint(blob[pos:])
			if k <= 0 {
				return nil, fmt.Errorf("delta: truncated sparseops value %d", i)
			}
			pos += k
			vals[i] = wrapAdd(dt, fill, d)
		}
		return vals, nil
	}
	oldV, err := readVals()
	if err != nil {
		return nil, err
	}
	newV, err := readVals()
	if err != nil {
		return nil, err
	}
	out := from.Clone()
	total := from.NumCells()
	for i := range idx {
		if idx[i] < 0 || idx[i] >= total {
			return nil, fmt.Errorf("delta: sparseops index %d out of range", idx[i])
		}
		if reverse {
			out.SetBits(idx[i], oldV[i])
		} else {
			out.SetBits(idx[i], newV[i])
		}
	}
	return out, nil
}
