package delta

import (
	"encoding/binary"
	"fmt"

	"arrayvers/internal/compress"
)

// Byte-level bsdiff API for consumers that version opaque binary blobs —
// the SVN-like and Git-like baseline stores (§V-C) both difference
// arbitrary binary file contents.

// BytesDiff computes a bsdiff-style patch such that
// BytesPatch(old, patch) == new.
func BytesDiff(old, new []byte) []byte {
	ctrl, diff, extra := bsdiffStreams(old, new)
	cc, _ := compress.Compress(compress.LZ, ctrl, compress.Params{})
	dc, _ := compress.Compress(compress.LZ, diff, compress.Params{})
	ec, _ := compress.Compress(compress.LZ, extra, compress.Params{})
	out := binary.AppendUvarint(nil, uint64(len(new)))
	out = binary.AppendUvarint(out, uint64(len(cc)))
	out = binary.AppendUvarint(out, uint64(len(dc)))
	out = binary.AppendUvarint(out, uint64(len(ec)))
	out = append(out, cc...)
	out = append(out, dc...)
	return append(out, ec...)
}

// BytesPatch applies a patch produced by BytesDiff.
func BytesPatch(old, patch []byte) ([]byte, error) {
	pos := 0
	readU := func() (uint64, error) {
		v, k := binary.Uvarint(patch[pos:])
		if k <= 0 {
			return 0, fmt.Errorf("delta: truncated patch header")
		}
		pos += k
		return v, nil
	}
	newLen, err := readU()
	if err != nil {
		return nil, err
	}
	ccLen, err := readU()
	if err != nil {
		return nil, err
	}
	dcLen, err := readU()
	if err != nil {
		return nil, err
	}
	ecLen, err := readU()
	if err != nil {
		return nil, err
	}
	rest := uint64(len(patch) - pos)
	if ccLen > rest || dcLen > rest || ecLen > rest || ccLen+dcLen+ecLen != rest {
		return nil, fmt.Errorf("delta: patch stream lengths do not match")
	}
	ctrl, err := compress.Decompress(compress.LZ, patch[pos:pos+int(ccLen)], compress.Params{})
	if err != nil {
		return nil, err
	}
	pos += int(ccLen)
	diff, err := compress.Decompress(compress.LZ, patch[pos:pos+int(dcLen)], compress.Params{})
	if err != nil {
		return nil, err
	}
	pos += int(dcLen)
	extra, err := compress.Decompress(compress.LZ, patch[pos:pos+int(ecLen)], compress.Params{})
	if err != nil {
		return nil, err
	}
	// every output byte is copied from the diff or extra stream, so a
	// claimed length those streams cannot back is hostile — reject it
	// before allocating the output
	if newLen > uint64(len(diff))+uint64(len(extra)) {
		return nil, fmt.Errorf("delta: patch claims %d output bytes backed by %d", newLen, len(diff)+len(extra))
	}
	out := make([]byte, newLen)
	var cpos, opos, npos, dpos, epos int
	for npos < int(newLen) {
		lenf, k := binary.Uvarint(ctrl[cpos:])
		if k <= 0 {
			return nil, fmt.Errorf("delta: truncated patch ctrl")
		}
		cpos += k
		extraLen, k := binary.Uvarint(ctrl[cpos:])
		if k <= 0 {
			return nil, fmt.Errorf("delta: truncated patch ctrl")
		}
		cpos += k
		if lenf > uint64(len(diff)) || extraLen > uint64(len(extra)) {
			return nil, fmt.Errorf("delta: patch segment lengths out of range")
		}
		seek, k := binary.Varint(ctrl[cpos:])
		if k <= 0 {
			return nil, fmt.Errorf("delta: truncated patch ctrl")
		}
		cpos += k
		if npos+int(lenf) > int(newLen) || dpos+int(lenf) > len(diff) || opos+int(lenf) > len(old) {
			return nil, fmt.Errorf("delta: patch diff segment out of range")
		}
		for i := 0; i < int(lenf); i++ {
			out[npos+i] = old[opos+i] + diff[dpos+i]
		}
		npos += int(lenf)
		dpos += int(lenf)
		opos += int(lenf)
		if npos+int(extraLen) > int(newLen) || epos+int(extraLen) > len(extra) {
			return nil, fmt.Errorf("delta: patch extra segment out of range")
		}
		copy(out[npos:npos+int(extraLen)], extra[epos:epos+int(extraLen)])
		npos += int(extraLen)
		epos += int(extraLen)
		opos += int(seek)
		if opos < 0 || opos > len(old) {
			return nil, fmt.Errorf("delta: patch seek out of range")
		}
	}
	return out, nil
}
