package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"arrayvers/internal/array"
)

var denseMethods = []Method{Dense, Sparse, Hybrid, BlockMatch, BSDiff}

// makePair builds a base array and a similar target (mostly small
// perturbations with a few large outliers), mirroring the NOAA data's
// "very similar, but not quite identical" structure.
func makePair(dt array.DataType, shape []int64, seed int64) (target, base *array.Dense) {
	rng := rand.New(rand.NewSource(seed))
	base = array.MustDense(dt, shape)
	n := base.NumCells()
	for i := int64(0); i < n; i++ {
		base.SetBits(i, array.TruncateBits(dt, int64(rng.Intn(1000))))
	}
	target = base.Clone()
	for i := int64(0); i < n; i++ {
		if rng.Float64() < 0.3 {
			target.SetBits(i, array.TruncateBits(dt, base.Bits(i)+int64(rng.Intn(7)-3)))
		}
		if rng.Float64() < 0.01 {
			target.SetBits(i, array.TruncateBits(dt, int64(rng.Uint64())))
		}
	}
	return target, base
}

func TestEncodeApplyRoundtripAllMethods(t *testing.T) {
	dtypes := []array.DataType{array.Int8, array.Int16, array.Int32, array.Int64, array.UInt8, array.UInt16, array.UInt32, array.Float32, array.Float64}
	for _, dt := range dtypes {
		target, base := makePair(dt, []int64{24, 20}, int64(dt))
		for _, m := range denseMethods {
			blob, err := Encode(m, target, base)
			if err != nil {
				t.Fatalf("%v/%v: encode: %v", m, dt, err)
			}
			got, err := Apply(blob, base)
			if err != nil {
				t.Fatalf("%v/%v: apply: %v", m, dt, err)
			}
			if !got.Equal(target) {
				t.Fatalf("%v/%v: apply mismatch", m, dt)
			}
			if gotM, _ := MethodOf(blob); gotM != m {
				t.Fatalf("%v/%v: MethodOf = %v", m, dt, gotM)
			}
		}
	}
}

func TestUnapplyBidirectionalMethods(t *testing.T) {
	for _, m := range []Method{Dense, Sparse, Hybrid} {
		target, base := makePair(array.Int32, []int64{16, 16}, 99)
		blob, err := Encode(m, target, base)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Unapply(blob, target)
		if err != nil {
			t.Fatalf("%v: unapply: %v", m, err)
		}
		if !back.Equal(base) {
			t.Fatalf("%v: unapply mismatch", m)
		}
		if !m.Bidirectional() {
			t.Fatalf("%v should report bidirectional", m)
		}
	}
	for _, m := range []Method{BlockMatch, BSDiff} {
		if m.Bidirectional() {
			t.Fatalf("%v should be forward-only", m)
		}
		target, base := makePair(array.Int32, []int64{16, 16}, 7)
		blob, err := Encode(m, target, base)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Unapply(blob, target); err == nil {
			t.Fatalf("%v: unapply should fail", m)
		}
	}
}

func TestIdenticalArraysNegligibleDelta(t *testing.T) {
	a := array.MustDense(array.Int32, []int64{64, 64})
	a.Fill(42)
	for _, m := range []Method{Dense, Sparse, Hybrid} {
		blob, err := Encode(m, a, a.Clone())
		if err != nil {
			t.Fatal(err)
		}
		// paper: "if Ai and Aj are identical, the delta data will use
		// negligible space on disk"
		if len(blob) > 8 {
			t.Errorf("%v: identical-array delta uses %d bytes", m, len(blob))
		}
		got, err := Apply(blob, a)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(a) {
			t.Fatalf("%v: identity apply mismatch", m)
		}
	}
}

func TestSimilarArraysBeatMaterialization(t *testing.T) {
	// Sparse and Hybrid must beat materialization on NOAA-like data even
	// with rare wide outliers; Dense (uniform width) only beats it when
	// all diffs are narrow, so test it on outlier-free data separately.
	target, base := makePair(array.Int32, []int64{64, 64}, 5)
	raw := int(MaterializedSize(target))
	for _, m := range []Method{Sparse, Hybrid} {
		blob, _ := Encode(m, target, base)
		if len(blob) >= raw {
			t.Errorf("%v: delta %d bytes >= raw %d bytes on similar arrays", m, len(blob), raw)
		}
	}
	narrowTarget := base.Clone()
	for i := int64(0); i < narrowTarget.NumCells(); i++ {
		narrowTarget.SetBits(i, base.Bits(i)+i%3)
	}
	blob, _ := Encode(Dense, narrowTarget, base)
	if len(blob) >= raw {
		t.Errorf("dense: delta %d bytes >= raw %d bytes on narrow diffs", len(blob), raw)
	}
}

func TestHybridNoWorseThanDenseOrSparse(t *testing.T) {
	// The hybrid split is chosen by cost minimization, so it should be
	// within a small constant of the better of dense and sparse.
	for seed := int64(0); seed < 5; seed++ {
		target, base := makePair(array.Int32, []int64{32, 32}, seed)
		d, _ := Encode(Dense, target, base)
		s, _ := Encode(Sparse, target, base)
		h, _ := Encode(Hybrid, target, base)
		best := len(d)
		if len(s) < best {
			best = len(s)
		}
		if len(h) > best+best/8+16 {
			t.Errorf("seed %d: hybrid %d bytes vs best %d", seed, len(h), best)
		}
	}
}

func TestBlockMatchShiftedImage(t *testing.T) {
	// A target that is a pure translation of the base should compress far
	// better with block matching than with plain cellwise deltas.
	h, w := int64(64), int64(64)
	base := array.MustDense(array.UInt8, []int64{h, w})
	rng := rand.New(rand.NewSource(21))
	for i := int64(0); i < base.NumCells(); i++ {
		base.SetBits(i, int64(rng.Intn(256)))
	}
	target := array.MustDense(array.UInt8, []int64{h, w})
	// shift by (3, 5), borders keep base values
	for r := int64(0); r < h; r++ {
		for c := int64(0); c < w; c++ {
			sr, sc := r+3, c+5
			if sr < h && sc < w {
				target.SetBitsAt([]int64{r, c}, base.BitsAt([]int64{sr, sc}))
			} else {
				target.SetBitsAt([]int64{r, c}, base.BitsAt([]int64{r, c}))
			}
		}
	}
	bm, err := Encode(BlockMatch, target, base)
	if err != nil {
		t.Fatal(err)
	}
	dn, _ := Encode(Dense, target, base)
	if len(bm) >= len(dn) {
		t.Errorf("blockmatch %d bytes >= dense %d bytes on shifted image", len(bm), len(dn))
	}
	got, err := Apply(bm, base)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(target) {
		t.Fatal("blockmatch roundtrip mismatch")
	}
}

func TestBlockMatchNon2DRejected(t *testing.T) {
	a := array.MustDense(array.Int8, []int64{4, 4, 4})
	if _, err := Encode(BlockMatch, a, a.Clone()); err == nil {
		t.Fatal("3D blockmatch accepted")
	}
}

func TestBSDiffRandomBuffers(t *testing.T) {
	// bsdiff must roundtrip even on adversarial inputs
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := int64(1 + rng.Intn(40))
		base := array.MustDense(array.UInt8, []int64{n})
		target := array.MustDense(array.UInt8, []int64{n})
		for i := int64(0); i < n; i++ {
			base.SetBits(i, int64(rng.Intn(256)))
			target.SetBits(i, int64(rng.Intn(256)))
		}
		blob, err := Encode(BSDiff, target, base)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Apply(blob, base)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Equal(target) {
			t.Fatalf("trial %d: bsdiff roundtrip mismatch", trial)
		}
	}
}

func TestBSDiffSimilarBuffersCompress(t *testing.T) {
	target, base := makePair(array.UInt8, []int64{128, 128}, 77)
	blob, err := Encode(BSDiff, target, base)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) >= MaterializedSize(target) {
		t.Errorf("bsdiff %d bytes >= raw %d", len(blob), MaterializedSize(target))
	}
}

func TestShapeAndDTypeMismatchRejected(t *testing.T) {
	a := array.MustDense(array.Int32, []int64{4, 4})
	b := array.MustDense(array.Int32, []int64{4, 5})
	c := array.MustDense(array.Int16, []int64{4, 4})
	d3 := array.MustDense(array.Int32, []int64{4, 4, 1})
	for _, m := range denseMethods {
		if _, err := Encode(m, a, b); err == nil {
			t.Errorf("%v: shape mismatch accepted", m)
		}
		if _, err := Encode(m, a, c); err == nil {
			t.Errorf("%v: dtype mismatch accepted", m)
		}
		if _, err := Encode(m, a, d3); err == nil {
			t.Errorf("%v: ndim mismatch accepted", m)
		}
	}
}

func TestApplyWrongBaseDTypeRejected(t *testing.T) {
	target, base := makePair(array.Int32, []int64{8, 8}, 3)
	blob, _ := Encode(Dense, target, base)
	wrong := array.MustDense(array.Int16, []int64{8, 8})
	if _, err := Apply(blob, wrong); err == nil {
		t.Fatal("wrong-dtype base accepted")
	}
}

func TestCorruptBlobRejected(t *testing.T) {
	target, base := makePair(array.Int32, []int64{8, 8}, 3)
	for _, m := range denseMethods {
		blob, _ := Encode(m, target, base)
		if _, err := Apply(blob[:2], base); err == nil {
			t.Errorf("%v: truncated blob accepted", m)
		}
		if _, err := Apply([]byte{0xFF, 0xFF}, base); err == nil {
			t.Errorf("%v: garbage method byte accepted", m)
		}
	}
	if _, err := Apply(nil, base); err == nil {
		t.Error("empty blob accepted")
	}
}

func TestWrapDiffAddProperty(t *testing.T) {
	dtypes := []array.DataType{array.Int8, array.UInt8, array.Int16, array.Int32, array.UInt32, array.Int64, array.Float32, array.Float64}
	f := func(tRaw, bRaw int64) bool {
		for _, dt := range dtypes {
			tb := array.TruncateBits(dt, tRaw)
			bb := array.TruncateBits(dt, bRaw)
			d := wrapDiff(dt, tb, bb)
			if wrapAdd(dt, bb, d) != tb {
				return false
			}
			if wrapSub(dt, tb, d) != bb {
				return false
			}
			// the representative must fit within the dtype's bit width
			if signedWidth(d) > dt.Size()*8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRoundtripPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		target, base := makePair(array.Int16, []int64{9, 7}, seed)
		for _, m := range []Method{Dense, Sparse, Hybrid} {
			blob, err := Encode(m, target, base)
			if err != nil {
				return false
			}
			got, err := Apply(blob, base)
			if err != nil || !got.Equal(target) {
				return false
			}
			back, err := Unapply(blob, target)
			if err != nil || !back.Equal(base) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSparseOpsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := array.MustSparse(array.Int32, []int64{1000, 1000}, 0)
	for i := 0; i < 500; i++ {
		base.SetBits(rng.Int63n(1000*1000), int64(rng.Intn(100)+1))
	}
	target := base.Clone()
	// churn: inserts, updates, deletes
	target.Pairs(func(flat, bits int64) {})
	for i := 0; i < 50; i++ {
		target.SetBits(rng.Int63n(1000*1000), int64(rng.Intn(100)+1)) // insert/update
	}
	deleted := 0
	base.Pairs(func(flat, bits int64) {
		if deleted < 20 && flat%37 == 0 {
			target.SetBits(flat, 0)
			deleted++
		}
	})
	blob, err := EncodeSparseOps(target, base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ApplySparseOps(blob, base)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(target) {
		t.Fatal("sparseops apply mismatch")
	}
	back, err := UnapplySparseOps(blob, target)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(base) {
		t.Fatal("sparseops unapply mismatch")
	}
	// delta should be far smaller than materializing
	if int64(len(blob)) >= SparseMaterializedSize(target) {
		t.Errorf("sparseops %d bytes >= materialized %d", len(blob), SparseMaterializedSize(target))
	}
}

func TestSparseOpsValidation(t *testing.T) {
	a := array.MustSparse(array.Int32, []int64{10}, 0)
	b := array.MustSparse(array.Int32, []int64{11}, 0)
	c := array.MustSparse(array.Int16, []int64{10}, 0)
	d := array.MustSparse(array.Int32, []int64{10}, 5)
	if _, err := EncodeSparseOps(a, b); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := EncodeSparseOps(a, c); err == nil {
		t.Error("dtype mismatch accepted")
	}
	if _, err := EncodeSparseOps(a, d); err == nil {
		t.Error("fill mismatch accepted")
	}
	if _, err := ApplySparseOps([]byte{1, 2}, a); err == nil {
		t.Error("garbage blob accepted")
	}
}

func TestEstimateSizeAccuracy(t *testing.T) {
	target, base := makePair(array.Int32, []int64{128, 128}, 51)
	exact := EstimateSize(target, base, 0, 1)
	est := EstimateSize(target, base, 1024, 1)
	ratio := float64(est) / float64(exact)
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("sampled estimate %d vs exact %d (ratio %.2f)", est, exact, ratio)
	}
}

func TestSuffixArraySorted(t *testing.T) {
	data := []byte("banana_bandana_ananas")
	sa := suffixArray(data)
	if len(sa) != len(data) {
		t.Fatalf("sa length %d", len(sa))
	}
	for i := 1; i < len(sa); i++ {
		if bytes.Compare(data[sa[i-1]:], data[sa[i]:]) >= 0 {
			t.Fatalf("suffixes %d and %d out of order", i-1, i)
		}
	}
}

func TestSuffixArrayProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 200 {
			data = data[:200]
		}
		sa := suffixArray(data)
		if len(sa) != len(data) {
			return false
		}
		seen := make(map[int32]bool, len(sa))
		for i := range sa {
			if seen[sa[i]] {
				return false
			}
			seen[sa[i]] = true
			if i > 0 && bytes.Compare(data[sa[i-1]:], data[sa[i]:]) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSASearchFindsLongestMatch(t *testing.T) {
	old := []byte("the quick brown fox jumps over the lazy dog")
	sa := suffixArray(old)
	l, p := saSearch(sa, old, []byte("brown fox leaps"))
	if l != len("brown fox ") {
		t.Fatalf("match length %d", l)
	}
	if string(old[p:p+l]) != "brown fox " {
		t.Fatalf("match at %d = %q", p, old[p:p+l])
	}
	// "zzzz" matches only the single 'z' of "lazy"
	l, _ = saSearch(sa, old, []byte("zzzz"))
	if l != 1 {
		t.Fatalf("match length %d, want 1", l)
	}
	l, _ = saSearch(sa, old, []byte("!!!!"))
	if l != 0 {
		t.Fatalf("phantom match length %d", l)
	}
}

func TestParseMethodRoundtrip(t *testing.T) {
	for _, m := range []Method{Dense, Sparse, Hybrid, BlockMatch, BSDiff, SparseOps} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Error("bogus method accepted")
	}
}

func BenchmarkEncodeDense(b *testing.B)  { benchEncode(b, Dense) }
func BenchmarkEncodeSparse(b *testing.B) { benchEncode(b, Sparse) }
func BenchmarkEncodeHybrid(b *testing.B) { benchEncode(b, Hybrid) }
func BenchmarkEncodeBSDiff(b *testing.B) { benchEncode(b, BSDiff) }

func benchEncode(b *testing.B, m Method) {
	target, base := makePair(array.Float32, []int64{256, 256}, 1)
	b.SetBytes(target.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m, target, base); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyHybrid(b *testing.B) {
	target, base := makePair(array.Float32, []int64{256, 256}, 1)
	blob, err := Encode(Hybrid, target, base)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(target.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(blob, base); err != nil {
			b.Fatal(err)
		}
	}
}
