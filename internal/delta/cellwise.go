package delta

import (
	"encoding/binary"
	"fmt"

	"arrayvers/internal/array"
	"arrayvers/internal/bitpack"
)

// Cellwise delta methods: dense (uniform D-bit packing), sparse
// (position+difference pairs), and hybrid (D-bit dense part plus a sparse
// overlay of wide outliers).

// --- Dense ---
//
// Layout: header | width byte | bit-packed zigzag diffs (NumCells values).
// Width 0 encodes "identical arrays" and occupies no payload at all
// ("if Ai and Aj are identical, the delta data will use negligible space
// on disk", §III-B.3).

func encodeDense(target, base *array.Dense) []byte {
	n := target.NumCells()
	dt := target.DType()
	diffs := make([]int64, n)
	width := 0
	for i := int64(0); i < n; i++ {
		d := wrapDiff(dt, target.Bits(i), base.Bits(i))
		diffs[i] = d
		if w := signedWidth(d); w > width {
			width = w
		}
	}
	out := putHeader(Dense, dt)
	out = append(out, byte(width))
	return append(out, packSigned(diffs, width)...)
}

func applyDense(blob []byte, from *array.Dense, reverse bool) (*array.Dense, error) {
	if err := readHeader(blob, Dense, from); err != nil {
		return nil, err
	}
	if len(blob) < 3 {
		return nil, fmt.Errorf("delta: truncated dense delta")
	}
	width := int(blob[2])
	n := from.NumCells()
	if ActiveKernel() == KernelFused {
		if err := bitpack.CheckUnpack(len(blob)-3, int(n), width); err != nil {
			return nil, err
		}
		return fusedApply(blob[3:], width, from, nil, nil, reverse)
	}
	diffs, err := unpackSigned(blob[3:], n, width)
	if err != nil {
		return nil, err
	}
	dt := from.DType()
	out, err := array.NewDense(dt, from.Shape())
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < n; i++ {
		if reverse {
			out.SetBits(i, wrapSub(dt, from.Bits(i), diffs[i]))
		} else {
			out.SetBits(i, wrapAdd(dt, from.Bits(i), diffs[i]))
		}
	}
	return out, nil
}

// --- Sparse ---
//
// Layout: header | nnz uvarint | uvarint index gaps | varint diffs.
// Only cells whose difference is nonzero are stored ("relatively few
// differences will have nonzero values", §V-A).

func encodeSparse(target, base *array.Dense) []byte {
	n := target.NumCells()
	dt := target.DType()
	var idx []int64
	var diffs []int64
	for i := int64(0); i < n; i++ {
		if d := wrapDiff(dt, target.Bits(i), base.Bits(i)); d != 0 {
			idx = append(idx, i)
			diffs = append(diffs, d)
		}
	}
	out := putHeader(Sparse, dt)
	out = binary.AppendUvarint(out, uint64(len(idx)))
	prev := int64(0)
	for _, ix := range idx {
		out = binary.AppendUvarint(out, uint64(ix-prev))
		prev = ix
	}
	for _, d := range diffs {
		out = binary.AppendVarint(out, d)
	}
	return out
}

func applySparse(blob []byte, from *array.Dense, reverse bool) (*array.Dense, error) {
	if err := readHeader(blob, Sparse, from); err != nil {
		return nil, err
	}
	pos := 2
	nnz, k := binary.Uvarint(blob[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("delta: truncated sparse delta count")
	}
	pos += k
	// each entry needs at least one index byte and one value byte; a
	// count the input cannot back must not size an allocation
	if nnz > uint64(len(blob)-pos)/2 {
		return nil, fmt.Errorf("delta: sparse delta claims %d entries in %d bytes", nnz, len(blob)-pos)
	}
	idx := make([]int64, nnz)
	prev := int64(0)
	for i := range idx {
		g, k := binary.Uvarint(blob[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("delta: truncated sparse delta index %d", i)
		}
		prev += int64(g)
		idx[i] = prev
		pos += k
	}
	out := from.Clone()
	dt := from.DType()
	n := from.NumCells()
	for i := range idx {
		d, k := binary.Varint(blob[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("delta: truncated sparse delta value %d", i)
		}
		pos += k
		if idx[i] < 0 || idx[i] >= n {
			return nil, fmt.Errorf("delta: sparse delta index %d out of range", idx[i])
		}
		if reverse {
			out.SetBits(idx[i], wrapSub(dt, from.Bits(idx[i]), d))
		} else {
			out.SetBits(idx[i], wrapAdd(dt, from.Bits(idx[i]), d))
		}
	}
	return out, nil
}

// --- Hybrid ---
//
// The difference array is split at an optimal width threshold D: every
// cell is stored in a D-bit dense plane (outliers as 0), and cells whose
// difference needs more than D bits go into a sparse overlay. The
// threshold is chosen by exact cost minimization over all candidate
// widths, which generalizes the paper's fraction-F rule.
//
// Layout: header | width byte | packed dense plane | nnz uvarint |
//         uvarint index gaps | varint outlier diffs.

func encodeHybrid(target, base *array.Dense) []byte {
	n := target.NumCells()
	dt := target.DType()
	diffs := make([]int64, n)
	widths := make([]int, n)
	maxW := 0
	for i := int64(0); i < n; i++ {
		d := wrapDiff(dt, target.Bits(i), base.Bits(i))
		diffs[i] = d
		widths[i] = signedWidth(d)
		if widths[i] > maxW {
			maxW = widths[i]
		}
	}
	width := chooseHybridWidth(diffs, widths, maxW, n)
	out := putHeader(Hybrid, dt)
	out = append(out, byte(width))
	// dense plane: outliers become 0
	plane := make([]int64, n)
	var outIdx, outDiff []int64
	for i := int64(0); i < n; i++ {
		if widths[i] <= width {
			plane[i] = diffs[i]
		} else {
			outIdx = append(outIdx, i)
			outDiff = append(outDiff, diffs[i])
		}
	}
	out = append(out, packSigned(plane, width)...)
	out = binary.AppendUvarint(out, uint64(len(outIdx)))
	prev := int64(0)
	for _, ix := range outIdx {
		out = binary.AppendUvarint(out, uint64(ix-prev))
		prev = ix
	}
	for _, d := range outDiff {
		out = binary.AppendVarint(out, d)
	}
	return out
}

// chooseHybridWidth picks the dense-plane width minimizing the exact
// encoded size: n*D bits for the plane plus index+value varints for every
// cell wider than D.
func chooseHybridWidth(diffs []int64, widths []int, maxW int, n int64) int {
	// per-width outlier cost via suffix sums
	valCost := make([]int64, maxW+2)  // varint bytes of outliers wider than D
	cntWider := make([]int64, maxW+2) // number of outliers wider than D
	for i := range diffs {
		w := widths[i]
		valCost[w] += int64(varintLen(diffs[i]))
		cntWider[w]++
	}
	// turn into suffix sums: cost for threshold D = sum over w > D
	for w := maxW - 1; w >= 0; w-- {
		valCost[w] += valCost[w+1]
		cntWider[w] += cntWider[w+1]
	}
	bestW, bestCost := maxW, int64(1)<<62
	for D := 0; D <= maxW; D++ {
		planeBytes := (n*int64(D) + 7) / 8
		var outliers, vBytes int64
		if D+1 <= maxW {
			outliers = cntWider[D+1]
			vBytes = valCost[D+1]
		}
		// index gaps: approximate each as uvarint of the average gap
		idxBytes := int64(0)
		if outliers > 0 {
			avgGap := uint64(n) / uint64(outliers)
			idxBytes = outliers * int64(uvarintLen(avgGap))
		}
		cost := planeBytes + vBytes + idxBytes
		if cost < bestCost {
			bestCost = cost
			bestW = D
		}
	}
	return bestW
}

func applyHybrid(blob []byte, from *array.Dense, reverse bool) (*array.Dense, error) {
	if err := readHeader(blob, Hybrid, from); err != nil {
		return nil, err
	}
	if len(blob) < 3 {
		return nil, fmt.Errorf("delta: truncated hybrid delta")
	}
	width := int(blob[2])
	if width > 64 {
		return nil, fmt.Errorf("delta: hybrid width %d out of range", width)
	}
	n := from.NumCells()
	planeBytes := int((n*int64(width) + 7) / 8)
	if len(blob) < 3+planeBytes {
		return nil, fmt.Errorf("delta: truncated hybrid dense plane")
	}
	// parse the sparse overlay before touching the dense plane, so the
	// fused kernel can skip materializing the plane entirely
	pos := 3 + planeBytes
	nnz, k := binary.Uvarint(blob[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("delta: truncated hybrid overlay count")
	}
	pos += k
	// each overlay entry needs at least an index byte and a value byte
	if nnz > uint64(len(blob)-pos)/2 {
		return nil, fmt.Errorf("delta: hybrid overlay claims %d entries in %d bytes", nnz, len(blob)-pos)
	}
	idx := make([]int64, nnz)
	prev := int64(0)
	for i := range idx {
		g, k := binary.Uvarint(blob[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("delta: truncated hybrid overlay index %d", i)
		}
		prev += int64(g)
		idx[i] = prev
		pos += k
	}
	vals := make([]int64, nnz)
	for i := range idx {
		d, k := binary.Varint(blob[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("delta: truncated hybrid overlay value %d", i)
		}
		pos += k
		if idx[i] < 0 || idx[i] >= n {
			return nil, fmt.Errorf("delta: hybrid overlay index %d out of range", idx[i])
		}
		vals[i] = d
	}
	if ActiveKernel() == KernelFused {
		return fusedApply(blob[3:3+planeBytes], width, from, idx, vals, reverse)
	}
	plane, err := unpackSigned(blob[3:3+planeBytes], n, width)
	if err != nil {
		return nil, err
	}
	// outlier cells override whatever the packed plane stored (the
	// encoder writes 0 there)
	for i := range idx {
		plane[idx[i]] = vals[i]
	}
	dt := from.DType()
	out, err := array.NewDense(dt, from.Shape())
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < n; i++ {
		if reverse {
			out.SetBits(i, wrapSub(dt, from.Bits(i), plane[i]))
		} else {
			out.SetBits(i, wrapAdd(dt, from.Bits(i), plane[i]))
		}
	}
	return out, nil
}
