package delta

import (
	"encoding/binary"
	"fmt"

	"arrayvers/internal/array"
)

// The MPEG-2-like matcher (§V-A): "the target array is broken up into
// 16x16 chunks and each chunk is compared to every possible region in a
// 16-cell radius around its origin, in case the image has shifted in one
// direction." The per-block motion vectors are stored followed by a
// hybrid-encoded residual of the whole array. 2D arrays only;
// forward-only (motion compensation is not invertible).

// DefaultBlockSize and DefaultSearchRadius reproduce the paper's
// parameters.
const (
	DefaultBlockSize    = 16
	DefaultSearchRadius = 16
)

// EncodeBlockMatchRadius is Encode(BlockMatch, ...) with an explicit
// block size and search radius; the cost of the matcher is "roughly
// proportional to the number of comparisons it is doing" (§V-A), so
// benchmarks expose the radius as a scale knob.
func EncodeBlockMatchRadius(target, base *array.Dense, blockSize, radius int) ([]byte, error) {
	if err := checkPair(target, base); err != nil {
		return nil, err
	}
	return encodeBlockMatch(target, base, blockSize, radius)
}

func encodeBlockMatch(target, base *array.Dense, blockSize, radius int) ([]byte, error) {
	if target.NDim() != 2 {
		return nil, fmt.Errorf("delta: blockmatch requires a 2D array, got %dD", target.NDim())
	}
	h, w := target.Shape()[0], target.Shape()[1]
	dt := target.DType()
	bh := int((h + int64(blockSize) - 1) / int64(blockSize))
	bw := int((w + int64(blockSize) - 1) / int64(blockSize))
	vectors := make([]int8, 0, bh*bw*2)
	// predicted array built block by block from the best-matching base
	// region
	pred, err := array.NewDense(dt, target.Shape())
	if err != nil {
		return nil, err
	}
	for br := 0; br < bh; br++ {
		for bc := 0; bc < bw; bc++ {
			r0 := int64(br * blockSize)
			c0 := int64(bc * blockSize)
			r1 := min64(r0+int64(blockSize), h)
			c1 := min64(c0+int64(blockSize), w)
			bestDy, bestDx := 0, 0
			bestCost := int64(-1)
			for dy := -radius; dy <= radius; dy++ {
				if r0+int64(dy) < 0 || r1+int64(dy) > h {
					continue
				}
				for dx := -radius; dx <= radius; dx++ {
					if c0+int64(dx) < 0 || c1+int64(dx) > w {
						continue
					}
					cost := blockCost(target, base, r0, c0, r1, c1, int64(dy), int64(dx), bestCost)
					if bestCost < 0 || cost < bestCost {
						bestCost = cost
						bestDy, bestDx = dy, dx
						if cost == 0 {
							dy = radius + 1 // early out
							break
						}
					}
				}
			}
			vectors = append(vectors, int8(bestDy), int8(bestDx))
			// copy matched base region into the prediction
			for r := r0; r < r1; r++ {
				for c := c0; c < c1; c++ {
					pred.SetBitsAt([]int64{r, c}, base.BitsAt([]int64{r + int64(bestDy), c + int64(bestDx)}))
				}
			}
		}
	}
	residual := encodeHybrid(target, pred)
	out := putHeader(BlockMatch, dt)
	out = append(out, byte(blockSize))
	out = binary.AppendUvarint(out, uint64(len(vectors)/2))
	for _, v := range vectors {
		out = append(out, byte(v))
	}
	out = binary.AppendUvarint(out, uint64(len(residual)))
	return append(out, residual...), nil
}

// blockCost sums |target−shifted base| over a block, bailing out early
// once the running cost exceeds the best seen so far.
func blockCost(target, base *array.Dense, r0, c0, r1, c1, dy, dx int64, bail int64) int64 {
	dt := target.DType()
	cost := int64(0)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			d := wrapDiff(dt, target.BitsAt([]int64{r, c}), base.BitsAt([]int64{r + dy, c + dx}))
			if d < 0 {
				d = -d
			}
			cost += d
			if bail >= 0 && cost >= bail {
				return cost
			}
		}
	}
	return cost
}

func applyBlockMatch(blob []byte, base *array.Dense) (*array.Dense, error) {
	if err := readHeader(blob, BlockMatch, base); err != nil {
		return nil, err
	}
	if base.NDim() != 2 {
		return nil, fmt.Errorf("delta: blockmatch base must be 2D")
	}
	if len(blob) < 3 {
		return nil, fmt.Errorf("delta: truncated blockmatch delta")
	}
	blockSize := int(blob[2])
	if blockSize == 0 {
		return nil, fmt.Errorf("delta: blockmatch block size 0")
	}
	pos := 3
	nblocks, k := binary.Uvarint(blob[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("delta: truncated blockmatch count")
	}
	pos += k
	// every block vector occupies two bytes; reject counts the input
	// cannot back (also keeps pos+2*nblocks from overflowing)
	if nblocks > uint64(len(blob)-pos)/2 {
		return nil, fmt.Errorf("delta: truncated blockmatch vectors")
	}
	h, w := base.Shape()[0], base.Shape()[1]
	bh := int((h + int64(blockSize) - 1) / int64(blockSize))
	bw := int((w + int64(blockSize) - 1) / int64(blockSize))
	if int(nblocks) != bh*bw {
		return nil, fmt.Errorf("delta: blockmatch has %d vectors, want %d", nblocks, bh*bw)
	}
	pred, err := array.NewDense(base.DType(), base.Shape())
	if err != nil {
		return nil, err
	}
	for b := 0; b < int(nblocks); b++ {
		dy := int64(int8(blob[pos+b*2]))
		dx := int64(int8(blob[pos+b*2+1]))
		br := b / bw
		bc := b % bw
		r0 := int64(br * blockSize)
		c0 := int64(bc * blockSize)
		r1 := min64(r0+int64(blockSize), h)
		c1 := min64(c0+int64(blockSize), w)
		if r0+dy < 0 || r1+dy > h || c0+dx < 0 || c1+dx > w {
			return nil, fmt.Errorf("delta: blockmatch vector (%d,%d) out of range for block %d", dy, dx, b)
		}
		for r := r0; r < r1; r++ {
			for c := c0; c < c1; c++ {
				pred.SetBitsAt([]int64{r, c}, base.BitsAt([]int64{r + dy, c + dx}))
			}
		}
	}
	pos += int(nblocks) * 2
	rlen, k := binary.Uvarint(blob[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("delta: truncated blockmatch residual length")
	}
	pos += k
	if len(blob) < pos+int(rlen) {
		return nil, fmt.Errorf("delta: truncated blockmatch residual")
	}
	return applyHybrid(blob[pos:pos+int(rlen)], pred, false)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
