package delta

import (
	"encoding/binary"

	"arrayvers/internal/array"
)

// BSDiff-style binary differencing (Percival '03, the paper's [6]):
// suffix-sort the base, scan the target finding approximate matches, and
// emit three streams — control triples (diffLen, extraLen, seekAdjust),
// bytewise differences against matched base regions, and literal extra
// bytes. Streams are DEFLATE-compressed (original bsdiff uses bzip2,
// which the Go standard library can only decompress).
//
// Forward-only, byte-granularity: it ignores the array structure
// entirely, which is exactly why the paper includes it — an
// "arbitrary-binary-differencing algorithm" baseline.

func encodeBSDiff(target, base *array.Dense) []byte {
	out := putHeader(BSDiff, target.DType())
	return append(out, BytesDiff(base.Bytes(), target.Bytes())...)
}

// bsdiffStreams runs the core bsdiff scan.
func bsdiffStreams(old, new []byte) (ctrl, diff, extra []byte) {
	sa := suffixArray(old)
	var scan, lenM, pos int
	lastscan, lastpos, lastoffset := 0, 0, 0
	for scan < len(new) {
		oldscore := 0
		scan += lenM
		for scsc := scan; scan < len(new); scan++ {
			lenM, pos = saSearch(sa, old, new[scan:])
			for ; scsc < scan+lenM; scsc++ {
				if scsc+lastoffset < len(old) && old[scsc+lastoffset] == new[scsc] {
					oldscore++
				}
			}
			if (lenM == oldscore && lenM != 0) || lenM > oldscore+8 {
				break
			}
			if scan+lastoffset < len(old) && old[scan+lastoffset] == new[scan] {
				oldscore--
			}
		}
		if lenM == oldscore && scan != len(new) {
			continue
		}
		// extend the previous match forward and the new match backward,
		// choosing lengths that maximize 2*matches − length
		lenf := extendForward(old, new, lastpos, lastscan, scan)
		lenb := 0
		if scan < len(new) {
			lenb = extendBackward(old, new, pos, scan, lastscan+lenf)
		}
		// resolve overlap between forward and backward extensions
		if lastscan+lenf > scan-lenb {
			overlap := (lastscan + lenf) - (scan - lenb)
			s, sBest, lenBest := 0, 0, 0
			for i := 0; i < overlap; i++ {
				if new[lastscan+lenf-overlap+i] == old[lastpos+lenf-overlap+i] {
					s++
				}
				if new[scan-lenb+i] == old[pos-lenb+i] {
					s--
				}
				if s > sBest {
					sBest = s
					lenBest = i + 1
				}
			}
			lenf += lenBest - overlap
			lenb -= lenBest
		}
		// emit: diff bytes for the matched forward region
		for i := 0; i < lenf; i++ {
			diff = append(diff, new[lastscan+i]-old[lastpos+i])
		}
		extraLen := (scan - lenb) - (lastscan + lenf)
		extra = append(extra, new[lastscan+lenf:lastscan+lenf+extraLen]...)
		seek := (pos - lenb) - (lastpos + lenf)
		ctrl = binary.AppendUvarint(ctrl, uint64(lenf))
		ctrl = binary.AppendUvarint(ctrl, uint64(extraLen))
		ctrl = binary.AppendVarint(ctrl, int64(seek))
		lastscan = scan - lenb
		lastpos = pos - lenb
		lastoffset = pos - scan
	}
	return ctrl, diff, extra
}

// extendForward chooses the forward extension length from (lastscan,
// lastpos) maximizing 2*matches − length, bounded by scan.
func extendForward(old, new []byte, lastpos, lastscan, scan int) int {
	lenf, s := 0, 0
	for i := 0; lastscan+i < scan && lastpos+i < len(old); {
		if old[lastpos+i] == new[lastscan+i] {
			s++
		}
		i++
		if s*2-i > lenf*2-lenf {
			lenf = i
		}
	}
	return lenf
}

// extendBackward chooses the backward extension length ending at (scan,
// pos) maximizing 2*matches − length, bounded below by lowScan.
func extendBackward(old, new []byte, pos, scan, lowScan int) int {
	lenb, s := 0, 0
	for i := 1; scan >= lowScan+i && pos >= i; i++ {
		if old[pos-i] == new[scan-i] {
			s++
		}
		if s*2-i > lenb*2-lenb {
			lenb = i
		}
	}
	return lenb
}

func applyBSDiff(blob []byte, base *array.Dense) (*array.Dense, error) {
	if err := readHeader(blob, BSDiff, base); err != nil {
		return nil, err
	}
	out, err := BytesPatch(base.Bytes(), blob[2:])
	if err != nil {
		return nil, err
	}
	return array.DenseFromBytes(base.DType(), base.Shape(), out)
}
