// Package delta implements the paper's delta-encoding algorithms
// (§III-B.3, evaluated in Table I): a delta is the cellwise difference
// between two versions, stored with as few bits per cell as possible.
//
// Five methods are provided:
//
//   - Dense: bit-packs every difference at the minimal uniform width D.
//   - Sparse: stores only the (position, difference) pairs of cells that
//     changed.
//   - Hybrid: computes an optimal threshold and splits the difference
//     array into a D-bit dense part plus a separate sparse overlay of
//     wide outliers ("if more than a fraction F of cells can be encoded
//     using D' > D bits per cell, we create a separate matrix").
//   - BlockMatch: the MPEG-2-like matcher — 16×16 blocks, each compared
//     against every offset within a 16-cell radius, residual stored as a
//     hybrid delta.
//   - BSDiff: byte-level binary differencing over a suffix array, after
//     Percival '03.
//
// Cellwise methods (Dense, Sparse, Hybrid) decode in both directions:
// Apply reconstructs the target from the base and Unapply reconstructs
// the base from the target, matching the paper's note that version chains
// are walked "in both directions, by adding or subtracting the delta".
// BlockMatch and BSDiff are forward-only.
package delta

import (
	"encoding/binary"
	"fmt"

	"arrayvers/internal/array"
)

// Method identifies a delta-encoding algorithm.
type Method uint8

// Supported methods. SparseOps is the sparse-array-to-sparse-array delta
// used for sparse versions (e.g. the ConceptNet workload).
const (
	Dense Method = iota + 1
	Sparse
	Hybrid
	BlockMatch
	BSDiff
	SparseOps
)

func (m Method) String() string {
	switch m {
	case Dense:
		return "dense"
	case Sparse:
		return "sparse"
	case Hybrid:
		return "hybrid"
	case BlockMatch:
		return "blockmatch"
	case BSDiff:
		return "bsdiff"
	case SparseOps:
		return "sparseops"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// ParseMethod converts a method name to a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "dense":
		return Dense, nil
	case "sparse":
		return Sparse, nil
	case "hybrid":
		return Hybrid, nil
	case "blockmatch", "mpeg2":
		return BlockMatch, nil
	case "bsdiff":
		return BSDiff, nil
	case "sparseops":
		return SparseOps, nil
	default:
		return 0, fmt.Errorf("delta: unknown method %q", s)
	}
}

// Bidirectional reports whether the method supports Unapply.
func (m Method) Bidirectional() bool {
	switch m {
	case Dense, Sparse, Hybrid, SparseOps:
		return true
	default:
		return false
	}
}

// MethodOf returns the method a delta blob was encoded with.
func MethodOf(blob []byte) (Method, error) {
	if len(blob) == 0 {
		return 0, fmt.Errorf("delta: empty blob")
	}
	m := Method(blob[0])
	if m < Dense || m > SparseOps {
		return 0, fmt.Errorf("delta: unknown method byte %d", blob[0])
	}
	return m, nil
}

// wrapDiff computes the wrapping difference of two cell bit patterns,
// reduced to the dtype's width and sign-extended: the representative of
// t−b (mod 2^k) with the smallest magnitude. Wrapping keeps differences
// narrow even across the dtype's overflow boundary.
func wrapDiff(dt array.DataType, t, b int64) int64 {
	raw := uint64(t) - uint64(b)
	k := uint(dt.Size() * 8)
	if k == 64 {
		return int64(raw)
	}
	return int64(raw<<(64-k)) >> (64 - k)
}

// wrapAdd inverts wrapDiff: reconstructs the target bit pattern from the
// base pattern and the difference.
func wrapAdd(dt array.DataType, b, d int64) int64 {
	return array.TruncateBits(dt, int64(uint64(b)+uint64(d)))
}

// wrapSub reconstructs the base bit pattern from the target pattern and
// the difference.
func wrapSub(dt array.DataType, t, d int64) int64 {
	return array.TruncateBits(dt, int64(uint64(t)-uint64(d)))
}

// checkPair validates that two dense arrays can be delta'ed: "deltas can
// only be created between arrays of the same dimensionality" (§III-B.3) —
// and, chunk-identically, the same shape and dtype.
func checkPair(target, base *array.Dense) error {
	if target.DType() != base.DType() {
		return fmt.Errorf("delta: dtype mismatch %v vs %v", target.DType(), base.DType())
	}
	if target.NDim() != base.NDim() {
		return fmt.Errorf("delta: dimensionality mismatch %d vs %d", target.NDim(), base.NDim())
	}
	for i, s := range target.Shape() {
		if base.Shape()[i] != s {
			return fmt.Errorf("delta: shape mismatch %v vs %v", target.Shape(), base.Shape())
		}
	}
	return nil
}

// Encode computes a delta blob such that Apply(blob, base) reconstructs
// target.
func Encode(m Method, target, base *array.Dense) ([]byte, error) {
	if err := checkPair(target, base); err != nil {
		return nil, err
	}
	switch m {
	case Dense:
		return encodeDense(target, base), nil
	case Sparse:
		return encodeSparse(target, base), nil
	case Hybrid:
		return encodeHybrid(target, base), nil
	case BlockMatch:
		return encodeBlockMatch(target, base, DefaultBlockSize, DefaultSearchRadius)
	case BSDiff:
		return encodeBSDiff(target, base), nil
	default:
		return nil, fmt.Errorf("delta: cannot Encode with method %v", m)
	}
}

// Apply reconstructs the target array from a delta blob and its base.
func Apply(blob []byte, base *array.Dense) (*array.Dense, error) {
	m, err := MethodOf(blob)
	if err != nil {
		return nil, err
	}
	switch m {
	case Dense:
		return applyDense(blob, base, false)
	case Sparse:
		return applySparse(blob, base, false)
	case Hybrid:
		return applyHybrid(blob, base, false)
	case BlockMatch:
		return applyBlockMatch(blob, base)
	case BSDiff:
		return applyBSDiff(blob, base)
	default:
		return nil, fmt.Errorf("delta: cannot Apply blob of method %v to a dense base", m)
	}
}

// Unapply reconstructs the base array from a delta blob and its target.
// Only bidirectional (cellwise) methods support this.
func Unapply(blob []byte, target *array.Dense) (*array.Dense, error) {
	m, err := MethodOf(blob)
	if err != nil {
		return nil, err
	}
	switch m {
	case Dense:
		return applyDense(blob, target, true)
	case Sparse:
		return applySparse(blob, target, true)
	case Hybrid:
		return applyHybrid(blob, target, true)
	default:
		return nil, fmt.Errorf("delta: method %v is forward-only", m)
	}
}

// header layout shared by the dense-array methods:
// [method byte][dtype byte][payload...]; shape travels with the base at
// decode time (every version of an array is chunked identically, §III-B).

func putHeader(m Method, dt array.DataType) []byte {
	return []byte{byte(m), byte(dt)}
}

func readHeader(blob []byte, want Method, base *array.Dense) error {
	if len(blob) < 2 {
		return fmt.Errorf("delta: truncated blob")
	}
	if Method(blob[0]) != want {
		return fmt.Errorf("delta: blob method %v, want %v", Method(blob[0]), want)
	}
	if array.DataType(blob[1]) != base.DType() {
		return fmt.Errorf("delta: blob dtype %v, base dtype %v", array.DataType(blob[1]), base.DType())
	}
	return nil
}

// appendUvarint/readUvarint helpers for payload streams.

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func varintLen(v int64) int {
	return uvarintLen(uint64((v << 1) ^ (v >> 63)))
}

var _ = binary.MaxVarintLen64
