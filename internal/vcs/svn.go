// Package vcs reimplements the storage strategies of the two
// general-purpose version-control systems the paper compares against
// (§V-C): an SVN-like store (FSFS-style skip-deltas over uncompressed
// fulltexts) and a Git-like store (content-addressed zlib-compressed
// objects with similarity-sorted delta packing). Both version arbitrary
// binary files; neither knows anything about array structure — which is
// precisely the comparison the paper draws.
package vcs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"arrayvers/internal/delta"
)

// SVNOptions configures the SVN-like store.
type SVNOptions struct {
	// MaxDeltaBytes caps the file size eligible for binary deltification;
	// larger commits are stored as fulltext. Subversion's deltification
	// performs poorly on very large binaries — the paper observed SVN
	// storing the full 16 GB of OSM tiles with no compression while
	// compressing the ~1 MB NOAA grids about 2x. 0 means no cap.
	MaxDeltaBytes int64
}

// SVN is a skip-delta revision store: revision r of a file is stored as
// a binary delta against revision r with its lowest set bit cleared
// (r=0 fulltext, r=5 vs 4, r=6 vs 4, r=8 vs 0, ...), bounding every
// reconstruction chain to O(log r) patches. Fulltexts are stored
// uncompressed, which is why SVN "does not efficiently support
// sub-selects (because the stored data is not compressed)".
type SVN struct {
	mu   sync.Mutex
	dir  string
	opts SVNOptions
	meta svnMeta
}

type svnMeta struct {
	// Files maps path -> per-revision record.
	Files map[string][]svnRev `json:"files"`
}

type svnRev struct {
	File     string `json:"file"`
	Fulltext bool   `json:"fulltext"`
	Base     int    `json:"base"` // revision index the delta applies to
}

// NewSVN creates or reopens an SVN-like repository at dir.
func NewSVN(dir string, opts SVNOptions) (*SVN, error) {
	if err := os.MkdirAll(filepath.Join(dir, "revs"), 0o755); err != nil {
		return nil, err
	}
	s := &SVN{dir: dir, opts: opts, meta: svnMeta{Files: map[string][]svnRev{}}}
	raw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err == nil {
		if err := json.Unmarshal(raw, &s.meta); err != nil {
			return nil, fmt.Errorf("vcs: corrupt svn metadata: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return s, nil
}

// skipDeltaBase returns the base revision for revision r under the
// skip-delta rule (clear the lowest set bit).
func skipDeltaBase(r int) int {
	return r & (r - 1)
}

// Commit stores a new revision of the file at path and returns its
// revision number (0-based).
func (s *SVN) Commit(path string, content []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	revs := s.meta.Files[path]
	r := len(revs)
	rec := svnRev{File: fmt.Sprintf("%s.r%d", sanitize(path), r)}
	var payload []byte
	if r == 0 || (s.opts.MaxDeltaBytes > 0 && int64(len(content)) > s.opts.MaxDeltaBytes) {
		rec.Fulltext = true
		payload = content
	} else {
		base := skipDeltaBase(r)
		baseContent, err := s.checkoutLocked(path, base)
		if err != nil {
			return 0, err
		}
		patch := delta.BytesDiff(baseContent, content)
		if len(patch) < len(content) {
			rec.Base = base
			payload = patch
		} else {
			rec.Fulltext = true
			payload = content
		}
	}
	if err := os.WriteFile(filepath.Join(s.dir, "revs", rec.File), payload, 0o644); err != nil {
		return 0, err
	}
	s.meta.Files[path] = append(revs, rec)
	return r, s.save()
}

// Checkout reconstructs revision r of the file at path.
func (s *SVN) Checkout(path string, r int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkoutLocked(path, r)
}

func (s *SVN) checkoutLocked(path string, r int) ([]byte, error) {
	revs, ok := s.meta.Files[path]
	if !ok || r < 0 || r >= len(revs) {
		return nil, fmt.Errorf("vcs: svn has no revision %d of %q", r, path)
	}
	rec := revs[r]
	payload, err := os.ReadFile(filepath.Join(s.dir, "revs", rec.File))
	if err != nil {
		return nil, err
	}
	if rec.Fulltext {
		return payload, nil
	}
	base, err := s.checkoutLocked(path, rec.Base)
	if err != nil {
		return nil, err
	}
	return delta.BytesPatch(base, payload)
}

// Revisions returns the number of revisions of a file.
func (s *SVN) Revisions(path string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.meta.Files[path])
}

// DiskBytes returns the repository payload size.
func (s *SVN) DiskBytes() (int64, error) {
	return dirBytes(filepath.Join(s.dir, "revs"))
}

func (s *SVN) save() error {
	raw, err := json.Marshal(s.meta)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.dir, "meta.json"), raw, 0o644)
}

func sanitize(path string) string {
	out := make([]rune, 0, len(path))
	for _, r := range path {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func dirBytes(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}
