package vcs

import (
	"crypto/sha1"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"arrayvers/internal/compress"
	"arrayvers/internal/delta"
)

// GitOptions configures the Git-like store.
type GitOptions struct {
	// MemoryBudget caps the estimated working set of commit and repack
	// operations, reproducing the paper's observation that "Git ran out
	// of memory on our test machine" when loading 1 GB OSM tiles (their
	// machine had 8 GB of RAM). Git's deltification keeps the candidate
	// window plus a suffix structure in memory, modeled here as
	// (window+1+overhead)×object size. 0 disables the budget.
	MemoryBudget int64
	// Window is the delta-candidate window used by Repack (git's
	// --window, default 10).
	Window int
	// MaxDepth bounds delta-chain depth in a pack (git's --depth).
	MaxDepth int
}

// ErrOutOfMemory is returned when an operation's estimated working set
// exceeds the configured memory budget.
var ErrOutOfMemory = fmt.Errorf("vcs: git: out of memory (working set exceeds memory budget)")

// memOverheadFactor models the suffix-array and bookkeeping overhead per
// object byte during deltification.
const memOverheadFactor = 6

// Git is a content-addressed object store: Commit writes zlib-compressed
// loose objects named by the SHA-1 of their content; Repack sorts objects
// by similarity (path, then size — the heuristic Git's pack machinery
// uses) and delta-chains each against its best window neighbor.
type Git struct {
	mu   sync.Mutex
	dir  string
	opts GitOptions
	meta gitMeta
}

type gitMeta struct {
	// Refs maps path -> ordered object ids, one per committed version.
	Refs map[string][]string `json:"refs"`
	// Objects maps id -> storage record.
	Objects map[string]*gitObject `json:"objects"`
}

type gitObject struct {
	File string `json:"file"`
	// Base is the object id this object is delta'ed against in the pack
	// (empty for full objects).
	Base string `json:"base,omitempty"`
	Size int64  `json:"size"` // original content size
}

// NewGit creates or reopens a Git-like repository at dir.
func NewGit(dir string, opts GitOptions) (*Git, error) {
	if opts.Window <= 0 {
		opts.Window = 10
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 50
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, err
	}
	g := &Git{dir: dir, opts: opts, meta: gitMeta{Refs: map[string][]string{}, Objects: map[string]*gitObject{}}}
	raw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err == nil {
		if err := json.Unmarshal(raw, &g.meta); err != nil {
			return nil, fmt.Errorf("vcs: corrupt git metadata: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return g, nil
}

// Commit stores a new version of the file at path, returning the object
// id.
func (g *Git) Commit(path string, content []byte) (string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.opts.MemoryBudget > 0 && int64(len(content))*2 > g.opts.MemoryBudget {
		return "", ErrOutOfMemory
	}
	sum := sha1.Sum(content)
	id := hex.EncodeToString(sum[:])
	if _, ok := g.meta.Objects[id]; !ok {
		packed, err := compress.Compress(compress.LZ, content, compress.Params{})
		if err != nil {
			return "", err
		}
		file := filepath.Join("objects", id)
		if err := os.WriteFile(filepath.Join(g.dir, file), packed, 0o644); err != nil {
			return "", err
		}
		g.meta.Objects[id] = &gitObject{File: file, Size: int64(len(content))}
	}
	g.meta.Refs[path] = append(g.meta.Refs[path], id)
	return id, g.save()
}

// Checkout reconstructs version v (0-based) of the file at path.
func (g *Git) Checkout(path string, v int) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ids := g.meta.Refs[path]
	if v < 0 || v >= len(ids) {
		return nil, fmt.Errorf("vcs: git has no version %d of %q", v, path)
	}
	return g.resolve(ids[v], 0)
}

func (g *Git) resolve(id string, depth int) ([]byte, error) {
	if depth > g.opts.MaxDepth+1 {
		return nil, fmt.Errorf("vcs: git delta chain too deep at %s", id)
	}
	obj, ok := g.meta.Objects[id]
	if !ok {
		return nil, fmt.Errorf("vcs: git missing object %s", id)
	}
	packed, err := os.ReadFile(filepath.Join(g.dir, obj.File))
	if err != nil {
		return nil, err
	}
	payload, err := compress.Decompress(compress.LZ, packed, compress.Params{})
	if err != nil {
		return nil, err
	}
	if obj.Base == "" {
		return payload, nil
	}
	base, err := g.resolve(obj.Base, depth+1)
	if err != nil {
		return nil, err
	}
	return delta.BytesPatch(base, payload)
}

// Repack is the analogue of `git repack`: objects are sorted by (path,
// size) similarity and each is delta'ed against the best candidate in
// the preceding window, keeping the delta when it beats the compressed
// full object. Fails with ErrOutOfMemory when the working set estimate
// exceeds the budget.
func (g *Git) Repack() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	type cand struct {
		id   string
		path string
		size int64
	}
	var cands []cand
	seen := map[string]bool{}
	for path, ids := range g.meta.Refs {
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				cands = append(cands, cand{id, path, g.meta.Objects[id].Size})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].path != cands[j].path {
			return cands[i].path < cands[j].path
		}
		if cands[i].size != cands[j].size {
			return cands[i].size < cands[j].size
		}
		return cands[i].id < cands[j].id
	})
	// memory model: window of raw objects plus suffix overhead on the
	// largest object
	var maxSize int64
	for _, c := range cands {
		if c.size > maxSize {
			maxSize = c.size
		}
	}
	if g.opts.MemoryBudget > 0 {
		need := int64(g.opts.Window+1)*maxSize + memOverheadFactor*maxSize
		if need > g.opts.MemoryBudget {
			return ErrOutOfMemory
		}
	}
	depth := map[string]int{}
	for i, c := range cands {
		content, err := g.resolve(c.id, 0)
		if err != nil {
			return err
		}
		fullPacked, err := compress.Compress(compress.LZ, content, compress.Params{})
		if err != nil {
			return err
		}
		bestPayload := fullPacked
		bestBase := ""
		lo := i - g.opts.Window
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			if depth[cands[j].id] >= g.opts.MaxDepth {
				continue
			}
			baseContent, err := g.resolve(cands[j].id, 0)
			if err != nil {
				return err
			}
			patch := delta.BytesDiff(baseContent, content)
			packed, err := compress.Compress(compress.LZ, patch, compress.Params{})
			if err != nil {
				return err
			}
			if len(packed) < len(bestPayload) {
				bestPayload = packed
				bestBase = cands[j].id
			}
		}
		obj := g.meta.Objects[c.id]
		// rewrite the object in place with its new encoding
		if err := os.WriteFile(filepath.Join(g.dir, obj.File), bestPayload, 0o644); err != nil {
			return err
		}
		obj.Base = bestBase
		if bestBase != "" {
			depth[c.id] = depth[bestBase] + 1
		}
	}
	return g.save()
}

// Versions returns the number of committed versions of a file.
func (g *Git) Versions(path string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.meta.Refs[path])
}

// DiskBytes returns the repository payload size.
func (g *Git) DiskBytes() (int64, error) {
	return dirBytes(filepath.Join(g.dir, "objects"))
}

func (g *Git) save() error {
	raw, err := json.Marshal(g.meta)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(g.dir, "meta.json"), raw, 0o644)
}
