package vcs

import (
	"bytes"
	"math/rand"
	"testing"
)

// makeVersions builds a series of similar binary file contents.
func makeVersions(n, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	cur := make([]byte, size)
	rng.Read(cur)
	out := make([][]byte, n)
	for v := 0; v < n; v++ {
		out[v] = append([]byte(nil), cur...)
		// mutate ~1% of bytes
		for k := 0; k < size/100+1; k++ {
			cur[rng.Intn(size)] = byte(rng.Intn(256))
		}
	}
	return out
}

func TestSVNCommitCheckoutRoundtrip(t *testing.T) {
	s, err := NewSVN(t.TempDir(), SVNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	versions := makeVersions(9, 4096, 1)
	for i, v := range versions {
		r, err := s.Commit("file.dat", v)
		if err != nil {
			t.Fatal(err)
		}
		if r != i {
			t.Fatalf("revision %d, want %d", r, i)
		}
	}
	for i, want := range versions {
		got, err := s.Checkout("file.dat", i)
		if err != nil {
			t.Fatalf("rev %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rev %d content mismatch", i)
		}
	}
	if s.Revisions("file.dat") != 9 {
		t.Fatal("revision count wrong")
	}
	if _, err := s.Checkout("file.dat", 99); err == nil {
		t.Error("missing revision accepted")
	}
	if _, err := s.Checkout("nope", 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSVNSkipDeltaBases(t *testing.T) {
	cases := map[int]int{1: 0, 2: 0, 3: 2, 4: 0, 5: 4, 6: 4, 7: 6, 8: 0, 12: 8}
	for r, want := range cases {
		if got := skipDeltaBase(r); got != want {
			t.Errorf("skipDeltaBase(%d) = %d, want %d", r, got, want)
		}
	}
}

func TestSVNDeltasCompressSimilarVersions(t *testing.T) {
	s, err := NewSVN(t.TempDir(), SVNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	versions := makeVersions(8, 1<<15, 2)
	for _, v := range versions {
		if _, err := s.Commit("a.dat", v); err != nil {
			t.Fatal(err)
		}
	}
	size, err := s.DiskBytes()
	if err != nil {
		t.Fatal(err)
	}
	raw := int64(8 * (1 << 15))
	if size >= raw/2 {
		t.Fatalf("svn used %d bytes for %d raw bytes; deltas ineffective", size, raw)
	}
}

func TestSVNMaxDeltaBytesDisablesDeltification(t *testing.T) {
	// the OSM regime: files above the deltification cap are stored
	// fulltext, so the repo is as large as the raw data
	s, err := NewSVN(t.TempDir(), SVNOptions{MaxDeltaBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	versions := makeVersions(4, 1<<14, 3)
	for _, v := range versions {
		if _, err := s.Commit("big.dat", v); err != nil {
			t.Fatal(err)
		}
	}
	size, _ := s.DiskBytes()
	if size < int64(4*(1<<14)) {
		t.Fatalf("capped svn used %d bytes; expected >= raw %d", size, 4*(1<<14))
	}
	// content still correct
	got, err := s.Checkout("big.dat", 3)
	if err != nil || !bytes.Equal(got, versions[3]) {
		t.Fatal("capped svn corrupted content")
	}
}

func TestSVNPersistence(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewSVN(dir, SVNOptions{})
	versions := makeVersions(3, 2048, 4)
	for _, v := range versions {
		if _, err := s.Commit("p.dat", v); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := NewSVN(dir, SVNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Checkout("p.dat", 2)
	if err != nil || !bytes.Equal(got, versions[2]) {
		t.Fatal("svn reopen broke content")
	}
}

func TestGitCommitCheckoutRoundtrip(t *testing.T) {
	g, err := NewGit(t.TempDir(), GitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	versions := makeVersions(6, 4096, 5)
	for _, v := range versions {
		if _, err := g.Commit("file.dat", v); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range versions {
		got, err := g.Checkout("file.dat", i)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("version %d mismatch: %v", i, err)
		}
	}
	if g.Versions("file.dat") != 6 {
		t.Fatal("version count wrong")
	}
	if _, err := g.Checkout("file.dat", 99); err == nil {
		t.Error("missing version accepted")
	}
}

func TestGitRepackShrinksAndPreservesContent(t *testing.T) {
	g, err := NewGit(t.TempDir(), GitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	versions := makeVersions(8, 1<<15, 6)
	for _, v := range versions {
		if _, err := g.Commit("r.dat", v); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := g.DiskBytes()
	if err := g.Repack(); err != nil {
		t.Fatal(err)
	}
	after, _ := g.DiskBytes()
	if after >= before {
		t.Fatalf("repack did not shrink: %d -> %d", before, after)
	}
	for i, want := range versions {
		got, err := g.Checkout("r.dat", i)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("version %d broken after repack: %v", i, err)
		}
	}
}

func TestGitOutOfMemory(t *testing.T) {
	// the OSM regime: objects larger than the memory budget kill the
	// import (the paper: "Git ran out of memory on our test machine")
	g, err := NewGit(t.TempDir(), GitOptions{MemoryBudget: 4096})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 1<<14)
	if _, err := g.Commit("huge.dat", big); err != ErrOutOfMemory {
		t.Fatalf("commit of huge object returned %v, want ErrOutOfMemory", err)
	}
	// repack-level OOM: commits fit but the window working set does not
	g2, err := NewGit(t.TempDir(), GitOptions{MemoryBudget: 1 << 15, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range makeVersions(3, 1<<13, 7) {
		if _, err := g2.Commit("t.dat", v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g2.Repack(); err != ErrOutOfMemory {
		t.Fatalf("repack returned %v, want ErrOutOfMemory", err)
	}
}

func TestGitContentAddressingDeduplicates(t *testing.T) {
	g, err := NewGit(t.TempDir(), GitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("identical payload")
	id1, err := g.Commit("a.dat", content)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := g.Commit("b.dat", content)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatal("identical contents got different object ids")
	}
}

func TestGitPersistence(t *testing.T) {
	dir := t.TempDir()
	g, _ := NewGit(dir, GitOptions{})
	versions := makeVersions(3, 2048, 8)
	for _, v := range versions {
		if _, err := g.Commit("p.dat", v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Repack(); err != nil {
		t.Fatal(err)
	}
	g2, err := NewGit(dir, GitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g2.Checkout("p.dat", 1)
	if err != nil || !bytes.Equal(got, versions[1]) {
		t.Fatal("git reopen broke content")
	}
}

func TestGitMultiFileRepack(t *testing.T) {
	g, err := NewGit(t.TempDir(), GitOptions{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	fa := makeVersions(4, 4096, 9)
	fb := makeVersions(4, 4096, 10)
	for i := 0; i < 4; i++ {
		if _, err := g.Commit("a.dat", fa[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Commit("b.dat", fb[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Repack(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got, err := g.Checkout("a.dat", i); err != nil || !bytes.Equal(got, fa[i]) {
			t.Fatalf("a.dat v%d broken", i)
		}
		if got, err := g.Checkout("b.dat", i); err != nil || !bytes.Equal(got, fb[i]) {
			t.Fatalf("b.dat v%d broken", i)
		}
	}
}
