// Package matmat builds the paper's Materialization Matrix (§IV-A): an
// n×n symmetric matrix over a series of versions where the diagonal
// MM(i,i) is the space needed to materialize version i and the
// off-diagonal MM(i,j) is the space taken by a delta between versions i
// and j. The matrix drives the layout optimization algorithms.
//
// Construction takes O(n²) pairwise comparisons; a sampling mode
// estimates each delta size from a random subset of R cells scaled by
// N/R, as §IV-A describes.
package matmat

import (
	"fmt"

	"arrayvers/internal/array"
	"arrayvers/internal/delta"
)

// Matrix is the materialization matrix for n versions.
type Matrix struct {
	N    int
	Cost [][]int64 // Cost[i][j]: i==j materialization size, else delta size
}

// Options controls matrix construction.
type Options struct {
	// Sample, when positive, estimates each pairwise delta size from this
	// many sampled cells instead of encoding the full delta.
	Sample int
	// Seed drives the sampling RNG.
	Seed int64
}

// New allocates an empty n×n matrix.
func New(n int) *Matrix {
	m := &Matrix{N: n, Cost: make([][]int64, n)}
	for i := range m.Cost {
		m.Cost[i] = make([]int64, n)
	}
	return m
}

// Compute builds the matrix for a series of dense versions using hybrid
// delta sizes (the best cellwise method per Table I) and raw
// materialization sizes.
func Compute(versions []*array.Dense, opts Options) (*Matrix, error) {
	n := len(versions)
	if n == 0 {
		return nil, fmt.Errorf("matmat: no versions")
	}
	m := New(n)
	for i := 0; i < n; i++ {
		m.Cost[i][i] = delta.MaterializedSize(versions[i])
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			var size int64
			if opts.Sample > 0 {
				size = delta.EstimateSize(versions[i], versions[j], opts.Sample, opts.Seed+int64(i)*1000003+int64(j))
			} else {
				blob, err := delta.Encode(delta.Hybrid, versions[i], versions[j])
				if err != nil {
					return nil, fmt.Errorf("matmat: delta %d vs %d: %w", i, j, err)
				}
				size = int64(len(blob))
			}
			m.Cost[i][j] = size
			m.Cost[j][i] = size
		}
	}
	return m, nil
}

// ComputeSparse builds the matrix for a series of sparse versions using
// sparse-ops delta sizes.
func ComputeSparse(versions []*array.Sparse) (*Matrix, error) {
	n := len(versions)
	if n == 0 {
		return nil, fmt.Errorf("matmat: no versions")
	}
	m := New(n)
	for i := 0; i < n; i++ {
		m.Cost[i][i] = delta.SparseMaterializedSize(versions[i])
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			blob, err := delta.EncodeSparseOps(versions[i], versions[j])
			if err != nil {
				return nil, fmt.Errorf("matmat: sparse delta %d vs %d: %w", i, j, err)
			}
			m.Cost[i][j] = int64(len(blob))
			m.Cost[j][i] = int64(len(blob))
		}
	}
	return m, nil
}

// Validate checks structural sanity: square, symmetric, non-negative.
func (m *Matrix) Validate() error {
	if m.N != len(m.Cost) {
		return fmt.Errorf("matmat: N=%d but %d rows", m.N, len(m.Cost))
	}
	for i := range m.Cost {
		if len(m.Cost[i]) != m.N {
			return fmt.Errorf("matmat: row %d has %d columns", i, len(m.Cost[i]))
		}
		for j := range m.Cost[i] {
			if m.Cost[i][j] < 0 {
				return fmt.Errorf("matmat: negative cost at (%d,%d)", i, j)
			}
			if m.Cost[i][j] != m.Cost[j][i] {
				return fmt.Errorf("matmat: asymmetric at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// DeltasAlwaysCheaper reports whether every delta is cheaper than every
// materialization — the assumption under which Algorithm 1 alone is
// optimal ("MM(i,i) > MM(i,j) ∀ j ≠ i", §IV-C).
func (m *Matrix) DeltasAlwaysCheaper() bool {
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if i != j && m.Cost[i][j] >= m.Cost[i][i] {
				return false
			}
		}
	}
	return true
}
