package matmat

import (
	"math/rand"
	"testing"

	"arrayvers/internal/array"
)

func versionSeries(n int, side int64, seed int64) []*array.Dense {
	rng := rand.New(rand.NewSource(seed))
	cur := array.MustDense(array.Int32, []int64{side, side})
	for i := int64(0); i < cur.NumCells(); i++ {
		cur.SetBits(i, int64(rng.Intn(500)))
	}
	out := make([]*array.Dense, n)
	for v := 0; v < n; v++ {
		out[v] = cur.Clone()
		for i := int64(0); i < cur.NumCells(); i++ {
			if rng.Float64() < 0.1 {
				cur.SetBits(i, cur.Bits(i)+int64(rng.Intn(5)-2))
			}
		}
	}
	return out
}

func TestComputeExact(t *testing.T) {
	vs := versionSeries(5, 32, 1)
	mm, err := Compute(vs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
	// diagonal = raw materialization size
	for i := range vs {
		if mm.Cost[i][i] != vs[i].SizeBytes() {
			t.Fatalf("MM(%d,%d) = %d, want %d", i, i, mm.Cost[i][i], vs[i].SizeBytes())
		}
	}
	// delta cost grows with version distance on this smooth series
	if mm.Cost[0][1] >= mm.Cost[0][4] {
		t.Fatalf("MM(0,1)=%d not < MM(0,4)=%d", mm.Cost[0][1], mm.Cost[0][4])
	}
	if !mm.DeltasAlwaysCheaper() {
		t.Fatal("similar versions should always delta cheaper than materializing")
	}
}

func TestComputeSampledApproximatesExact(t *testing.T) {
	vs := versionSeries(4, 64, 2)
	exact, err := Compute(vs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Compute(vs, Options{Sample: 512, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sampled.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < exact.N; i++ {
		for j := 0; j < i; j++ {
			ratio := float64(sampled.Cost[i][j]) / float64(exact.Cost[i][j])
			if ratio < 0.3 || ratio > 3.0 {
				t.Errorf("MM(%d,%d): sampled %d vs exact %d (ratio %.2f)",
					i, j, sampled.Cost[i][j], exact.Cost[i][j], ratio)
			}
		}
	}
}

func TestComputeSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := array.MustSparse(array.Int32, []int64{10000, 10000}, 0)
	for i := 0; i < 200; i++ {
		base.SetBits(rng.Int63n(1e8), int64(rng.Intn(50)+1))
	}
	v2 := base.Clone()
	for i := 0; i < 10; i++ {
		v2.SetBits(rng.Int63n(1e8), int64(rng.Intn(50)+1))
	}
	mm, err := ComputeSparse([]*array.Sparse{base, v2})
	if err != nil {
		t.Fatal(err)
	}
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
	if mm.Cost[0][1] >= mm.Cost[0][0] {
		t.Fatalf("sparse delta %d not below materialization %d", mm.Cost[0][1], mm.Cost[0][0])
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil, Options{}); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := ComputeSparse(nil); err == nil {
		t.Error("empty sparse series accepted")
	}
	a := array.MustDense(array.Int32, []int64{4})
	b := array.MustDense(array.Int32, []int64{5})
	if _, err := Compute([]*array.Dense{a, b}, Options{}); err == nil {
		t.Error("mismatched shapes accepted")
	}
}
