package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"arrayvers/internal/array"
	"arrayvers/internal/core"
	"arrayvers/internal/datasets"
	"arrayvers/internal/workload"
)

// Materialization — E8/E9 (§V-D): the optimal materialization algorithm
// vs a simple linear delta chain, on the Panorama substitute, on the
// synthetic periodic patterns (n=2, n=3), and on smoothly evolving data
// where the optimal layout must degenerate to a linear chain.
func Materialization(workDir string, sc Scale) (Table, error) {
	t := Table{
		Title:   "§V-D — Optimal materialization vs linear delta chain",
		Columns: []string{"Data Set", "Layout", "Data Size", "Load/Reorg Time"},
	}

	runCase := func(label string, versions []*array.Dense) error {
		for _, policy := range []core.LayoutPolicy{core.PolicyLinearChain, core.PolicyOptimal} {
			dir := filepath.Join(workDir, "mat-"+sanitizeName(label)+policy.String())
			opts := core.DefaultOptions()
			opts.ChunkBytes = sc.ChunkBytes
			s, err := core.Open(dir, opts)
			if err != nil {
				return err
			}
			sch := array.Schema{
				Name:  "A",
				Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: versions[0].Shape()[0] - 1}, {Name: "X", Lo: 0, Hi: versions[0].Shape()[1] - 1}},
				Attrs: []array.Attribute{{Name: "V", Type: versions[0].DType()}},
			}
			if err := s.CreateArray(sch); err != nil {
				return err
			}
			var loadTime time.Duration
			d, err := timed(func() error {
				for _, v := range versions {
					if _, err := s.Insert("A", core.DensePayload(v)); err != nil {
						return err
					}
				}
				// reorganization is where the layout algorithm runs; its
				// cost is dominated by the O(n²) materialization matrix in
				// the optimal case, as the paper reports
				return s.Reorganize("A", core.ReorganizeOptions{Policy: policy, MatrixSample: 2048})
			})
			if err != nil {
				return err
			}
			loadTime = d
			size := s.DiskBytes()
			t.Rows = append(t.Rows, []string{label, policy.String(), fmtBytes(size), fmtDur(loadTime)})
			os.RemoveAll(dir)
		}
		return nil
	}

	pano := datasets.Panorama(datasets.PanoramaConfig{
		Side: sc.PanoSide, Versions: sc.PanoVersions, Scenes: sc.PanoScenes, Seed: sc.Seed,
	})
	if err := runCase("Panorama", pano); err != nil {
		return Table{}, fmt.Errorf("panorama: %w", err)
	}
	for _, n := range []int{2, 3} {
		per := datasets.Periodic(datasets.PeriodicConfig{
			Period: n, Versions: sc.PeriodicVersions, SizeBytes: sc.PeriodicBytes, Seed: sc.Seed + int64(n),
		})
		if err := runCase(fmt.Sprintf("Periodic n=%d", n), per); err != nil {
			return Table{}, fmt.Errorf("periodic n=%d: %w", n, err)
		}
	}

	// E9: smooth data — report whether the optimal layout is a linear
	// chain, as §V-D confirms
	smooth := datasets.Smooth(sc.NOAASide, 8, sc.Seed)
	dir := filepath.Join(workDir, "mat-smooth")
	opts := core.DefaultOptions()
	opts.ChunkBytes = sc.ChunkBytes
	s, err := core.Open(dir, opts)
	if err != nil {
		return Table{}, err
	}
	sch := array.Schema{
		Name:  "A",
		Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: sc.NOAASide - 1}, {Name: "X", Lo: 0, Hi: sc.NOAASide - 1}},
		Attrs: []array.Attribute{{Name: "V", Type: array.Int32}},
	}
	if err := s.CreateArray(sch); err != nil {
		return Table{}, err
	}
	for _, v := range smooth {
		if _, err := s.Insert("A", core.DensePayload(v)); err != nil {
			return Table{}, err
		}
	}
	l, _, _, err := s.ComputeLayout("A", core.ReorganizeOptions{Policy: core.PolicyOptimal})
	if err != nil {
		return Table{}, err
	}
	if l.IsLinearChain() {
		t.Notes = append(t.Notes, "smooth data: optimal layout degenerates to a linear delta chain (as §V-D)")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf("smooth data: optimal layout is NOT a linear chain: %v", l.Parent))
	}
	os.RemoveAll(dir)
	return t, nil
}

// WorkloadAware — E10 (§V-D last ¶): overlapping range queries (10
// versions wide, overlapping by 4) executed on the space-optimal layout
// vs the I/O-optimal (workload-aware) layout.
func WorkloadAware(workDir string, sc Scale) (Table, error) {
	nVersions := sc.PanoVersions // enough versions for several overlapping ranges
	noaa := datasets.NOAA(datasets.NOAAConfig{Side: sc.NOAASide, Versions: nVersions, Attrs: 1, Seed: sc.Seed})
	width, overlap := 10, 4
	if nVersions < width+2 {
		width = nVersions/2 + 1
		overlap = width / 2
	}
	ops := workload.OverlappingRanges(nVersions, width, overlap)
	queries := workload.ToQueries(ops)

	t := Table{
		Title:   fmt.Sprintf("§V-D — Workload-aware layout (ranges of %d overlapping by %d)", width, overlap),
		Columns: []string{"Layout", "Data Size", "Workload Time", "Bytes Read"},
	}
	for _, cfg := range []struct {
		label  string
		policy core.LayoutPolicy
	}{
		{"space optimal", core.PolicyOptimal},
		{"I/O optimal", core.PolicyWorkloadAware},
	} {
		dir := filepath.Join(workDir, "wa-"+sanitizeName(cfg.label))
		opts := core.DefaultOptions()
		opts.ChunkBytes = sc.ChunkBytes
		s, err := core.Open(dir, opts)
		if err != nil {
			return Table{}, err
		}
		sch := array.Schema{
			Name:  "W",
			Dims:  []array.Dimension{{Name: "Y", Lo: 0, Hi: sc.NOAASide - 1}, {Name: "X", Lo: 0, Hi: sc.NOAASide - 1}},
			Attrs: []array.Attribute{{Name: "V", Type: array.Float32}},
		}
		if err := s.CreateArray(sch); err != nil {
			return Table{}, err
		}
		for _, v := range noaa {
			if _, err := s.Insert("W", core.DensePayload(v[0])); err != nil {
				return Table{}, err
			}
		}
		if err := s.Reorganize("W", core.ReorganizeOptions{
			Policy:   cfg.policy,
			Workload: queries,
		}); err != nil {
			return Table{}, fmt.Errorf("%s: %w", cfg.label, err)
		}
		size := s.DiskBytes()
		s.ResetStats()
		// average over several runs, as the paper does (30 runs)
		const runs = 5
		d, err := timed(func() error {
			for r := 0; r < runs; r++ {
				if err := runOps(s, "W", ops, sc.Seed); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Table{}, err
		}
		read := s.Stats().BytesRead
		t.Rows = append(t.Rows, []string{cfg.label, fmtBytes(size), fmtDur(d / runs), fmtBytes(read / runs)})
		os.RemoveAll(dir)
	}
	return t, nil
}
